package satin

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport/wire"
)

// inbox funnels jobs that arrive OFF the worker goroutine — adopted
// steal replies, returned jobs, reclaimed orphans, Submit roots — into
// the worker's world. The lock-free deque has a single owner (the
// worker); everyone else appends here and the worker drains between
// tasks. Contention is rare (one entry per remote event, not per
// spawn), so a plain mutex-guarded slice is the right tool.
type inbox struct {
	mu    sync.Mutex
	size  atomic.Int32 // mirror of len(jobs): the worker's lock-free emptiness probe
	jobs  []jobMsg
	spare []jobMsg // drained buffer awaiting reuse (double buffering)
}

func (b *inbox) add(j jobMsg) {
	b.mu.Lock()
	b.jobs = append(b.jobs, j)
	b.size.Store(int32(len(b.jobs)))
	b.mu.Unlock()
}

func (b *inbox) drain() []jobMsg {
	if b.size.Load() == 0 {
		// The common case on the worker's pop path: nothing arrived, no
		// lock taken. A racing add is not lost — its wakeUp lands after
		// the append, so the worker re-polls.
		return nil
	}
	b.mu.Lock()
	js := b.jobs
	b.jobs = b.spare
	b.spare = nil
	b.size.Store(0)
	b.mu.Unlock()
	return js
}

// recycle returns a drained buffer for reuse once its entries have
// been consumed, so steady-state drains allocate nothing.
func (b *inbox) recycle(js []jobMsg) {
	for i := range js {
		js[i] = jobMsg{} // release task payload references
	}
	b.mu.Lock()
	if b.spare == nil {
		b.spare = js[:0]
	}
	b.mu.Unlock()
}

// steal takes the oldest inbox entry. Thieves fall back here when the
// deque is empty: a Submit while the worker is pinned inside a task
// must still be visible to idle peers (the inbox is not worker-only
// the way the deque bottom is, so handing entries out is safe).
func (b *inbox) steal() (jobMsg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.jobs) == 0 {
		return jobMsg{}, false
	}
	j := b.jobs[0]
	b.jobs[0] = jobMsg{} // release the payload reference
	b.jobs = b.jobs[1:]
	b.size.Store(int32(len(b.jobs)))
	return j, true
}

// drainInbox moves inbox arrivals onto the deque. Worker goroutine
// only: pushing is an owner operation.
func (n *Node) drainInbox() {
	js := n.inbox.drain()
	if js == nil {
		return
	}
	for _, j := range js {
		n.jobs.Push(j)
	}
	n.inbox.recycle(js)
}

// worker is the node's single computation goroutine: run a due speed
// benchmark, else pop the newest job (work-first, splitting subtrees
// down to leaves), else steal, else park until woken.
func (n *Node) worker() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		stopped, leaving := n.stopped, n.leaving
		n.mu.Unlock()
		if stopped {
			return
		}
		if leaving {
			if n.tryFinishLeave() {
				return
			}
		}
		if n.stats.benchDue() {
			n.runBench()
			continue
		}
		if j, ok := n.popNewest(); ok {
			n.executeJob(j)
			continue
		}
		if leaving {
			// Deque drained but self-owned work is still outstanding:
			// wait for results (or reclaims) instead of spinning.
			n.waitForWork(2 * time.Millisecond)
			continue
		}
		if j, ok := n.trySteal(); ok {
			n.executeJob(j)
			continue
		}
		n.waitForWork(2 * time.Millisecond)
	}
}

// popNewest takes the newest job: inbox arrivals first land on the
// deque, then the bottom is popped. Worker goroutine only (owner
// operations throughout) — Context.Sync qualifies, it runs inside
// task code on the worker.
func (n *Node) popNewest() (jobMsg, bool) {
	n.drainInbox()
	return n.jobs.PopBottom()
}

func (n *Node) wakeUp() {
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// enterState switches the worker's accounting bucket.
func (n *Node) enterState(next int) { n.stats.enterState(next) }

// waitForWork parks the worker briefly. Waiting on a wide-area steal
// that should long have returned means the WAN path is congested,
// which the monitoring must surface as inter-cluster overhead;
// ordinary round-trip waits stay idle time.
func (n *Node) waitForWork(d time.Duration) {
	if n.stealer.eng.AsyncStalled(n.monotonicSeconds(), n.cfg.InterWaitThreshold.Seconds()) {
		n.enterState(int(metrics.Inter))
	} else {
		n.enterState(stateIdle)
	}
	select {
	case <-n.wake:
	case <-time.After(d):
	case <-n.stopCh:
	}
	n.enterState(stateIdle)
}

// getContext / putContext keep a small free list of execution
// contexts. Worker goroutine only (executeJob and runBench run there,
// including Sync's nested executions), so no lock. A Context is
// invalid once its task returns — task code must not retain it.
func (n *Node) getContext(bench bool) *Context {
	if k := len(n.ctxFree); k > 0 {
		c := n.ctxFree[k-1]
		n.ctxFree = n.ctxFree[:k-1]
		c.benchMode = bench
		return c
	}
	return &Context{node: n, benchMode: bench}
}

func (n *Node) putContext(c *Context) {
	for i := range c.frame {
		c.frame[i] = nil // release future references
	}
	c.frame = c.frame[:0]
	c.benchMode = false
	if len(n.ctxFree) < 32 {
		n.ctxFree = append(n.ctxFree, c)
	}
}

func (n *Node) executeJob(j jobMsg) {
	n.enterState(int(metrics.Busy))
	ctx := n.getContext(false)
	val, err := safeExecute(j.Task, ctx)
	n.putContext(ctx)
	n.enterState(stateIdle)
	if errors.Is(err, errNodeStopped) {
		// Execution was cut short by Kill: this is not a task result.
		// Say nothing; the owner recomputes the job when the failure
		// detector reports us dead.
		return
	}
	if j.Owner == n.cfg.ID {
		n.completeLocal(j.ID, val, err)
		return
	}
	res := resultMsg{ID: j.ID, Value: val, Err: errString(err)}
	if sendErr := wire.Send(n.wc, satinEP(j.Owner), res); sendErr != nil {
		// Unregistered result type (the encode failure restarted the
		// session): deliver the error instead so the owner's sync does
		// not hang.
		wire.Send(n.wc, satinEP(j.Owner), resultMsg{ID: j.ID, Err: sendErr.Error()})
	}
}

// safeExecute converts panics in task code into errors; a crashing task
// must not take the whole node down (the computation would deadlock).
func safeExecute(t Task, ctx *Context) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("satin: task panic: %v", r)
		}
	}()
	return t.Execute(ctx)
}

// runBench runs the application-specific speed benchmark and re-arms
// it at the frequency the overhead budget allows.
func (n *Node) runBench() {
	n.stats.clearBench()
	bench := n.cfg.Bench
	if bench == nil {
		return
	}
	n.enterState(int(metrics.Bench))
	start := time.Now()
	ctx := n.getContext(true)
	_, _ = safeExecute(bench, ctx)
	n.putContext(ctx)
	n.enterState(stateIdle)
	dur := time.Since(start).Seconds()
	if dur <= 0 {
		dur = 1e-9
	}
	n.stats.setSpeed(n.cfg.BenchWork / dur)
	interval := time.Duration(dur / n.cfg.BenchBudget * float64(time.Second))
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	time.AfterFunc(interval, func() {
		n.mu.Lock()
		rearm := !n.stopped && !n.leaving
		n.mu.Unlock()
		if rearm {
			n.stats.armBench()
		}
		n.wakeUp()
	})
}
