package satin

import (
	"testing"
	"time"
)

// The ISSUE 7 spawn-sync ceiling: one task spawning and syncing 256
// trivial children must stay under 300 allocations (BENCH_5 measured
// 986 before the value pending-map, Future slab, Context free list and
// deque node recycling). The ceiling is far above the ~20 measured so
// background goroutines (heartbeats, the registry) cannot flake it,
// while still catching a regression back to per-spawn boxing.
func TestSpawnSyncAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("live node benchmark-style test")
	}
	g, err := NewGrid(GridConfig{
		Clusters: []ClusterSpec{{Name: "c0", Nodes: 1}},
		Registry: fastReg(),
		Node:     NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := nodes[0]
	for i := 0; i < 3; i++ { // warm every pool past its first burst
		if _, err := n.Run(tspawnN{N: 256}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := n.Run(tspawnN{N: 256}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 300 {
		t.Fatalf("spawn-sync of 256 children allocates %.0f/op, ceiling 300", allocs)
	}
}
