package satin

import (
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/wirefmt"
	"repro/internal/wirefmt/frametest"
)

// parityTask is a registered task type so Task payloads can round-trip
// through both codecs in the parity suite.
type parityTask struct {
	N     int
	Label string
}

func (p parityTask) Execute(*Context) (any, error) { return p.N, nil }

func init() {
	Register(parityTask{})
	gob.Register("")
	gob.Register(0)
}

// TestWireParity is the ISSUE 7 golden suite for the runtime protocol:
// every registered control-frame kind, encoded by the binary codec and
// by a fresh gob session, must decode to identical values across an
// edge-case table (zero values, max integers, unicode IDs, empty
// slices, absent payloads).
func TestWireParity(t *testing.T) {
	uni := NodeID("узел/θ-7")
	frametest.Parity[stealMsg, *stealMsg](t, []stealMsg{
		{},
		{Thief: "n0", Cluster: "c0", Seq: 1},
		{Thief: uni, Cluster: "grappe-é", Seq: ^uint64(0)},
	})
	frametest.Parity[stealReplyMsg, *stealReplyMsg](t, []stealReplyMsg{
		{},
		{Seq: 7, HasJob: false},
		{Seq: ^uint64(0), HasJob: true, Job: jobMsg{ID: 42, Owner: uni, Task: parityTask{N: -3, Label: "日本語"}}},
	})
	frametest.Parity[resultMsg, *resultMsg](t, []resultMsg{
		{},
		{ID: 9, Value: 123, Err: ""},
		{ID: ^uint64(0), Value: strings.Repeat("x", 300), Err: "boom: перелом"},
		{ID: 3, Value: nil, Err: "task panic"},
	})
	frametest.Parity[holdingMsg, *holdingMsg](t, []holdingMsg{
		{},
		{ID: ^uint64(0), Holder: uni},
	})
	frametest.Parity[returnJobMsg, *returnJobMsg](t, []returnJobMsg{
		{},
		{Job: jobMsg{ID: 5, Owner: "n1", Task: parityTask{N: 8}}},
	})
}

// TestWireCorrupt walks every truncation and byte flip of a
// representative encoding of each frame kind through the decoder: no
// panics, no over-reads.
func TestWireCorrupt(t *testing.T) {
	enc := func(f wirefmt.Frame) []byte {
		b, err := f.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	frametest.Corrupt[stealMsg, *stealMsg](t, enc(&stealMsg{Thief: "n0", Cluster: "c0", Seq: 77}))
	frametest.Corrupt[stealReplyMsg, *stealReplyMsg](t, enc(&stealReplyMsg{Seq: 2, HasJob: true, Job: jobMsg{ID: 1, Owner: "n1", Task: parityTask{N: 4}}}))
	frametest.Corrupt[resultMsg, *resultMsg](t, enc(&resultMsg{ID: 11, Value: 5, Err: "e"}))
	frametest.Corrupt[holdingMsg, *holdingMsg](t, enc(&holdingMsg{ID: 3, Holder: "n2"}))
	frametest.Corrupt[returnJobMsg, *returnJobMsg](t, enc(&returnJobMsg{Job: jobMsg{ID: 6, Owner: "n0", Task: parityTask{Label: "l"}}}))
}

// TestJobMsgRejectsNonTaskPayload: a gob payload that decodes fine but
// is not a Task must fail the frame, not panic a type assertion later.
func TestJobMsgRejectsNonTaskPayload(t *testing.T) {
	b := wirefmt.AppendUvarint(nil, 1)
	b = wirefmt.AppendString(b, "n0")
	var err error
	if b, err = wirefmt.AppendGob(b, "just a string"); err != nil {
		t.Fatal(err)
	}
	var m jobMsg
	r := wirefmt.NewReader(b)
	if err := m.DecodeWire(&r); err == nil {
		t.Fatalf("non-Task payload decoded silently into %+v", m)
	}
	if m.Task != nil {
		t.Fatalf("rejected payload left Task set: %#v", m.Task)
	}
}
