package satin

import (
	"sync"

	"repro/internal/registry"
	"repro/internal/steal"
	"repro/internal/transport/wire"
)

// membershipView is the node's window on the registry: the client
// session plus the departed-set that filters late messages from nodes
// already seen leaving or dying. Its lock is a leaf in the node's
// hierarchy — membership methods never acquire n.mu (callers holding
// n.mu may call in here, never the reverse).
type membershipView struct {
	mu       sync.Mutex
	reg      *registry.Client
	departed map[NodeID]bool
}

func (v *membershipView) init() {
	v.departed = make(map[NodeID]bool)
}

func (v *membershipView) setClient(reg *registry.Client) {
	v.mu.Lock()
	v.reg = reg
	v.mu.Unlock()
}

func (v *membershipView) client() *registry.Client {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.reg
}

func (v *membershipView) isDeparted(id NodeID) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.departed[id]
}

func (v *membershipView) markDeparted(id NodeID) {
	v.mu.Lock()
	v.departed[id] = true
	v.mu.Unlock()
}

func (v *membershipView) clearDeparted(id NodeID) {
	v.mu.Lock()
	delete(v.departed, id)
	v.mu.Unlock()
}

// stealables snapshots the current membership as steal-kernel input.
// Members without a cluster are non-workers (the adaptation
// coordinator's registry session): never steal from them. The engine
// itself filters out the calling node.
func (v *membershipView) stealables() []steal.Member {
	reg := v.client()
	if reg == nil {
		return nil
	}
	members := reg.Members()
	out := make([]steal.Member, 0, len(members))
	for _, m := range members {
		if m.Cluster == "" {
			continue
		}
		out = append(out, steal.Member{ID: m.ID, Cluster: m.Cluster})
	}
	return out
}

// clusterOf looks a live member's cluster up ("" when unknown).
func (v *membershipView) clusterOf(id NodeID) ClusterID {
	reg := v.client()
	if reg == nil {
		return ""
	}
	for _, m := range reg.Members() {
		if m.ID == id {
			return m.Cluster
		}
	}
	return ""
}

// eventLoop consumes registry events: deaths trigger recomputation of
// jobs the dead node held; the "leave" signal starts a graceful exit.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case ev, ok := <-n.members.client().Events():
			if !ok {
				return
			}
			switch ev.Kind {
			case registry.Joined:
				// A node ID can be reused after its slot is released
				// back to the scheduler: a rejoin clears its departed
				// mark so it can steal again.
				n.members.clearDeparted(ev.Node.ID)
			case registry.Died, registry.Left:
				n.reclaimFrom(ev.Node.ID)
			case registry.SignalEvent:
				if ev.Signal == "leave" {
					n.mu.Lock()
					n.leaving = true
					n.mu.Unlock()
					n.wakeUp()
				}
			}
		}
	}
}

// reclaimFrom re-enqueues every pending job the departed node held —
// Satin's orphan recomputation. A graceful leaver also returns jobs
// explicitly; the Future deduplicates if both paths deliver. The
// departed mark goes in BEFORE n.mu is taken, so onHolding's check
// under n.mu can never observe a holder that is about to die without
// the mark being visible.
func (n *Node) reclaimFrom(dead NodeID) {
	if dead == n.cfg.ID {
		return
	}
	n.members.markDeparted(dead)
	n.mu.Lock()
	var reclaimed []jobMsg
	for id, pj := range n.pending {
		if pj.holder == dead {
			pj.holder = n.cfg.ID
			n.pending[id] = pj
			reclaimed = append(reclaimed, jobMsg{ID: id, Owner: n.cfg.ID, Task: pj.task})
		}
	}
	n.mu.Unlock()
	if len(reclaimed) > 0 {
		for _, j := range reclaimed {
			n.inbox.add(j)
		}
		n.wakeUp()
	}
}

// countInterBytes books a received frame's wire bytes as inter-cluster
// traffic when the sender sits in another cluster — the byte counts
// behind the coordinator's achieved-bandwidth estimate, which feeds the
// learned minimum-bandwidth requirement.
func (n *Node) countInterBytes(m wire.Meta) {
	if m.Bytes == 0 {
		return
	}
	from := NodeID("")
	if len(m.From) > len("satin:") {
		from = NodeID(m.From[len("satin:"):])
	}
	if from == "" || from == n.cfg.ID {
		return
	}
	if c := n.members.clusterOf(from); c != "" && c != n.cfg.Cluster {
		n.stats.addInterBytes(float64(m.Bytes))
	}
}
