package satin

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/transport"
)

// ClusterSpec is one emulated site: a capacity of identical processors.
type ClusterSpec struct {
	Name  ClusterID
	Nodes int
	// Coordinator overrides the node-level coordinator endpoint for
	// this cluster's nodes — used for hierarchical deployments where
	// each cluster reports to its own sub-coordinator
	// (adapt.SubEndpointName) instead of the main one.
	Coordinator string
}

// NodePool is the scheduler substrate a grid allocates processors
// from. A private *sched.Pool (built by NewGrid when Pool is nil)
// preserves the single-job behaviour: the grid owns all capacity. A
// shared pool.Client hands the grid a fair-share-arbitrated slice of a
// pool owned by the multi-job service, so several grids in one process
// bid for the same processors instead of each assuming it owns them.
type NodePool interface {
	// AcquireN hands out up to n free nodes of one cluster.
	AcquireN(cluster ClusterID, n int) []sched.NodeRef
	// RequestBandwidth allocates up to n nodes, locality-aware, skipping
	// clusters below the minimum uplink bandwidth (0 = no bound).
	RequestBandwidth(n int, prefer []ClusterID, veto sched.Filter, minBW float64) []sched.NodeRef
	// Release returns a node to the pool (graceful leave).
	Release(ref sched.NodeRef)
	// FreeIn returns the free node count of one cluster.
	FreeIn(cluster ClusterID) int
	// MarkDead permanently removes a crashed node.
	MarkDead(node NodeID)
}

// GridConfig describes an emulated multi-cluster deployment: clusters
// joined by WAN links, all inside one process. The link emulation
// (latency + bandwidth, shapeable at runtime) is what lets the real
// runtime reproduce the paper's scenarios without five universities.
type GridConfig struct {
	Clusters []ClusterSpec

	// Pool, when set, is the shared node pool this grid allocates from
	// (typically a pool.Client with fair-share arbitration). The grid
	// then never assumes it owns the scheduler: every StartNodes and
	// Provision is a bid that may be granted only partially. Nil means
	// the grid builds a private pool over Clusters — the single-job
	// behaviour.
	Pool NodePool

	LANLatency   time.Duration // default 200µs
	WANLatency   time.Duration // default 5ms
	LANBandwidth float64       // bytes/s, default 100 MB/s
	WANBandwidth float64       // bytes/s, default 50 MB/s

	Registry registry.Options

	// Seed makes a whole-grid run reproducible from one value: every
	// node's RNG derives its stream from it (steal.SeedFor: Seed ^
	// hash(nodeID)), and seeded deployments log it on startup so a
	// failure report carries everything needed to replay the run.
	Seed int64

	// StealPolicy selects the victim-selection algorithm for every node
	// (default StealCRS; StealRandom is the ablation baseline).
	StealPolicy StealPolicy

	// WrapFabric, when set, wraps the grid's in-process fabric before
	// the registry or any node attaches. The chaos harness interposes
	// its fault-injecting transport here; everything — steal traffic,
	// reports, heartbeats — then flows through the wrapper.
	WrapFabric func(transport.Fabric) transport.Fabric

	// Node carries the per-node defaults (benchmark, monitoring,
	// coordinator endpoint, steal timeouts); ID/Cluster/Fabric are
	// filled per started node, and Seed is filled from the grid-level
	// Seed above.
	Node NodeConfig
}

func (c *GridConfig) defaults() {
	if c.LANLatency == 0 {
		c.LANLatency = 200 * time.Microsecond
	}
	if c.WANLatency == 0 {
		c.WANLatency = 5 * time.Millisecond
	}
	if c.LANBandwidth == 0 {
		c.LANBandwidth = 100e6
	}
	if c.WANBandwidth == 0 {
		c.WANBandwidth = 50e6
	}
}

// Grid is a running emulated deployment. It doubles as the scheduler
// (Zorilla's role): the adaptation coordinator asks it for nodes via
// Provision and removes them through registry signals.
type Grid struct {
	cfg    GridConfig
	inproc *transport.InProc // the raw emulated network (owned, closed last)
	fabric transport.Fabric  // what everyone attaches to (possibly wrapped)
	regSrv *registry.Server
	pool   NodePool

	mu     sync.Mutex
	nodes  map[NodeID]*Node
	shaped map[ClusterID]float64 // WAN bandwidth override per cluster
	load   map[ClusterID]float64 // ambient load applied to new nodes
	closed bool
}

// NewGrid builds the fabric, registry and scheduler pool.
func NewGrid(cfg GridConfig) (*Grid, error) {
	cfg.defaults()
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("satin: grid needs at least one cluster")
	}
	pool := cfg.Pool
	if pool == nil {
		// Single-job deployment: the grid owns a private pool over its
		// own clusters. A multi-job service passes a shared pool.Client
		// instead, so capacity is arbitrated across grids.
		var t topo.Topology
		for _, c := range cfg.Clusters {
			t.Clusters = append(t.Clusters, topo.Cluster{
				ID: c.Name, Nodes: c.Nodes, Speed: 1,
				LANLatency: cfg.LANLatency.Seconds(), LANBandwidth: cfg.LANBandwidth,
				WANLatency: cfg.WANLatency.Seconds() / 2, UplinkBandwidth: cfg.WANBandwidth,
			})
		}
		p, err := sched.NewPool(t)
		if err != nil {
			return nil, err
		}
		pool = p
	}
	g := &Grid{
		cfg:    cfg,
		pool:   pool,
		nodes:  make(map[NodeID]*Node),
		shaped: make(map[ClusterID]float64),
		load:   make(map[ClusterID]float64),
	}
	if g.cfg.Node.Epoch.IsZero() {
		// One shared report-timeline origin for every node this grid
		// starts, including later Provisions — per grid, never
		// process-wide.
		g.cfg.Node.Epoch = time.Now()
	}
	g.inproc = transport.NewInProc(g.link)
	g.fabric = g.inproc
	if cfg.WrapFabric != nil {
		g.fabric = cfg.WrapFabric(g.inproc)
	}
	if cfg.StealPolicy != StealCRS {
		g.cfg.Node.StealPolicy = cfg.StealPolicy
	}
	if cfg.Seed != 0 {
		g.cfg.Node.Seed = cfg.Seed
		log.Printf("satin: grid seed=%d (%d clusters)", cfg.Seed, len(cfg.Clusters))
	}
	srv, err := registry.NewServer(g.fabric, cfg.Registry)
	if err != nil {
		g.inproc.Close()
		return nil, err
	}
	g.regSrv = srv
	return g, nil
}

// Fabric exposes the grid's transport (the coordinator attaches here).
func (g *Grid) Fabric() transport.Fabric { return g.fabric }

// Registry exposes the central registry server.
func (g *Grid) Registry() *registry.Server { return g.regSrv }

// clusterOf extracts the cluster from an endpoint name such as
// "satin:fs0/03" or "reg:fs0/03" (node names come from topo.NodeName).
func clusterOf(ep string) ClusterID {
	if i := strings.IndexByte(ep, ':'); i >= 0 {
		ep = ep[i+1:]
	}
	if i := strings.IndexByte(ep, '/'); i >= 0 {
		return ClusterID(ep[:i])
	}
	return "" // registry, coordinator, and other infrastructure
}

// link computes the current emulated parameters of a directed link.
func (g *Grid) link(from, to string) transport.LinkParams {
	cf, ct := clusterOf(from), clusterOf(to)
	if cf != "" && cf == ct {
		return transport.LinkParams{Latency: g.cfg.LANLatency, Bandwidth: g.cfg.LANBandwidth}
	}
	bw := g.cfg.WANBandwidth
	g.mu.Lock()
	for _, c := range []ClusterID{cf, ct} {
		if c == "" {
			continue
		}
		if s, ok := g.shaped[c]; ok && s < bw {
			bw = s
		}
	}
	g.mu.Unlock()
	lat := g.cfg.WANLatency
	if cf == "" || ct == "" {
		lat = g.cfg.WANLatency / 2 // infrastructure sits on the backbone
	}
	return transport.LinkParams{Latency: lat, Bandwidth: bw}
}

// Shape throttles (or restores) a cluster's WAN bandwidth at runtime —
// the paper's traffic-shaping experiment.
func (g *Grid) Shape(cluster ClusterID, bandwidth float64) {
	g.mu.Lock()
	if bandwidth <= 0 {
		delete(g.shaped, cluster)
	} else {
		g.shaped[cluster] = bandwidth
	}
	g.mu.Unlock()
}

// SetClusterLoad puts a competing CPU load on every current node of a
// cluster and on nodes started there later.
func (g *Grid) SetClusterLoad(cluster ClusterID, factor float64) {
	g.mu.Lock()
	g.load[cluster] = factor
	var affected []*Node
	for _, n := range g.nodes {
		if n.Cluster() == cluster {
			affected = append(affected, n)
		}
	}
	g.mu.Unlock()
	for _, n := range affected {
		n.SetLoadFactor(factor)
	}
}

// StartNodes brings count nodes of one cluster into the computation.
func (g *Grid) StartNodes(cluster ClusterID, count int) ([]*Node, error) {
	refs := g.pool.AcquireN(cluster, count)
	if len(refs) < count {
		for _, r := range refs {
			g.pool.Release(r)
		}
		return nil, fmt.Errorf("satin: cluster %s has only %d free nodes, need %d",
			cluster, g.pool.FreeIn(cluster), count)
	}
	nodes := make([]*Node, 0, len(refs))
	for i, ref := range refs {
		n, err := g.startRef(ref)
		if err != nil {
			// Return the not-yet-started remainder of the batch to the
			// pool; startRef released its own ref on failure.
			for _, rest := range refs[i+1:] {
				g.pool.Release(rest)
			}
			return nodes, err
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

func (g *Grid) startRef(ref sched.NodeRef) (*Node, error) {
	cfg := g.cfg.Node
	cfg.ID = ref.Node
	cfg.Cluster = ref.Cluster
	cfg.Fabric = g.fabric
	cfg.Registry = g.cfg.Registry
	for _, spec := range g.cfg.Clusters {
		if spec.Name == ref.Cluster && spec.Coordinator != "" {
			cfg.Coordinator = spec.Coordinator
		}
	}
	n, err := StartNode(cfg)
	if err != nil {
		g.pool.Release(ref)
		return nil, err
	}
	n.onStop = func(stopped *Node) {
		g.mu.Lock()
		delete(g.nodes, stopped.ID())
		g.mu.Unlock()
		g.pool.Release(ref)
	}
	g.mu.Lock()
	if f := g.load[ref.Cluster]; f > 0 {
		n.SetLoadFactor(f)
	}
	g.nodes[n.ID()] = n
	g.mu.Unlock()
	return n, nil
}

// Provision implements the adaptation coordinator's "give me n nodes"
// request with Zorilla-style locality: clusters already in use first.
// Clusters whose uplink is below the coordinator's learned minimum
// bandwidth are never handed out (minBandwidth 0 = no bound).
func (g *Grid) Provision(count int, minBandwidth float64, veto func(NodeID, ClusterID) bool) int {
	g.mu.Lock()
	per := make(map[ClusterID]int)
	for _, n := range g.nodes {
		per[n.Cluster()]++
	}
	g.mu.Unlock()
	prefer := make([]ClusterID, 0, len(per))
	for c := range per {
		prefer = append(prefer, c)
	}
	refs := g.pool.RequestBandwidth(count, prefer, veto, minBandwidth)
	started := 0
	for _, ref := range refs {
		if _, err := g.startRef(ref); err == nil {
			started++
		}
	}
	return started
}

// Node returns a live node by ID (nil if gone).
func (g *Grid) Node(id NodeID) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nodes[id]
}

// Nodes returns the live nodes.
func (g *Grid) Nodes() []*Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	return out
}

// NodeCount returns the number of live nodes.
func (g *Grid) NodeCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.nodes)
}

// CrashCluster kills every node of a cluster abruptly and marks the
// capacity dead in the scheduler, so replacements must come from
// elsewhere — the paper's crash scenario.
func (g *Grid) CrashCluster(cluster ClusterID) int {
	// Kill the free capacity FIRST so a concurrent Provision cannot
	// start fresh nodes on the dying site between the live-victim
	// snapshot and their deaths.
	for {
		refs := g.pool.AcquireN(cluster, 1)
		if len(refs) == 0 {
			break
		}
		g.pool.MarkDead(refs[0].Node)
		g.pool.Release(refs[0])
	}
	g.mu.Lock()
	var victims []*Node
	for _, n := range g.nodes {
		if n.Cluster() == cluster {
			victims = append(victims, n)
		}
	}
	g.mu.Unlock()
	for _, n := range victims {
		g.pool.MarkDead(n.ID())
		n.Kill()
	}
	return len(victims)
}

// Close tears the whole deployment down.
func (g *Grid) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	var all []*Node
	for _, n := range g.nodes {
		all = append(all, n)
	}
	g.mu.Unlock()
	for _, n := range all {
		n.Kill()
	}
	g.regSrv.Close()
	g.inproc.Close()
}
