package satin

import (
	"fmt"
	"time"

	"repro/internal/deque"
	"repro/internal/registry"
	"repro/internal/steal"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"sync"
)

// NodeConfig configures one runtime node.
type NodeConfig struct {
	ID      NodeID
	Cluster ClusterID

	// Fabric carries both the registry session and the steal/result
	// traffic.
	Fabric transport.Fabric
	// Registry tunes membership heartbeats and failure detection.
	Registry registry.Options

	// Epoch is the origin of the node's report timeline (Report.Start/
	// End are seconds since it). NewGrid stamps one shared epoch onto
	// every node it starts so their periods line up; zero means "this
	// node's start time". It is per grid, never process-wide: two grids
	// in one process must not share a timeline.
	Epoch time.Time

	// Coordinator, when set, is the endpoint name the node sends its
	// per-period statistics reports to (the adaptation coordinator).
	Coordinator string
	// MonitorPeriod is the statistics period (default 2s — the real
	// runtime runs at millisecond task scale, so periods shrink with it).
	MonitorPeriod time.Duration

	// Bench is the application-specific speed benchmark: the
	// application itself with a small problem size. It must be a
	// sequential task (no spawns). BenchWork is its nominal size in
	// work units; the measured speed is BenchWork divided by the wall
	// time of one run. BenchBudget bounds the benchmarking overhead.
	Bench       Task
	BenchWork   float64
	BenchBudget float64

	// LocalStealTimeout / WANStealTimeout bound synchronous local and
	// asynchronous wide-area steal attempts.
	LocalStealTimeout time.Duration
	WANStealTimeout   time.Duration

	// InterWaitThreshold: waiting on an outstanding wide-area steal
	// counts as inter-cluster communication overhead only once the
	// steal has been in flight this long — a healthy WAN round trip
	// stays idle time, a saturated link shows up as inter overhead.
	InterWaitThreshold time.Duration

	// StealPolicy selects the victim-selection algorithm (default
	// StealCRS; StealRandom is the ablation baseline).
	StealPolicy StealPolicy

	// Seed makes victim selection reproducible per node.
	Seed int64
}

func (c *NodeConfig) defaults() {
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = 2 * time.Second
	}
	if c.BenchBudget == 0 {
		c.BenchBudget = 0.03
	}
	if c.LocalStealTimeout == 0 {
		c.LocalStealTimeout = 250 * time.Millisecond
	}
	if c.WANStealTimeout == 0 {
		c.WANStealTimeout = 3 * time.Second
	}
	if c.InterWaitThreshold == 0 {
		c.InterWaitThreshold = 50 * time.Millisecond
	}
}

// pendingJob is a spawned job this node owns. Stored BY VALUE in the
// pending map — spawn registers one per child on the hot path, and a
// value entry costs no allocation — so mutations must write the entry
// back.
type pendingJob struct {
	task   Task
	fut    *Future
	holder NodeID // who currently holds it ("" never; self = local)
}

// futureSlab hands out Futures from blocks of 64, amortising the
// per-spawn allocation the hot path used to pay. Guarded by n.mu
// (registerJob already holds it). Blocks are garbage once all their
// futures resolve and drop out of reach.
type futureSlab struct {
	block []Future
	next  int
}

func (s *futureSlab) get() *Future {
	if s.next == len(s.block) {
		s.block = make([]Future, 64)
		s.next = 0
	}
	f := &s.block[s.next]
	s.next++
	return f
}

// Node is one processor of the runtime, decomposed into components
// with narrow locks so the spawn/pop hot path never serialises
// against steal handlers, membership events or statistics:
//
//   - jobs:    lock-free Chase–Lev deque — the worker goroutine owns
//     the bottom (Spawn push, popNewest pop), steal handlers CAS the
//     top. No lock on the path every task traverses.
//   - inbox:   the funnel for jobs arriving off the worker goroutine
//     (adopted steals, returned jobs, reclaims, Submit roots); the
//     worker drains it into the deque between tasks.
//   - mu:      shrunk to the genuinely shared job-OWNERSHIP state:
//     the pending table, ID allocation and the leaving/stopped flags.
//   - members: membership view (registry client, departed set).
//   - stealer: the CRS engine (internal/steal) plus reply waiters.
//   - stats:   accounting buckets, load factor and benchmark pacing.
//
// Lock hierarchy: n.mu may acquire members' or stats' internal locks;
// never the reverse.
type Node struct {
	cfg NodeConfig
	wc  *wire.Conn

	jobs    *deque.Deque[jobMsg]
	inbox   inbox
	ctxFree []*Context // worker-confined Context free list

	mu      sync.Mutex
	pending map[uint64]pendingJob
	futs    futureSlab
	nextID  uint64
	leaving bool
	stopped bool

	members membershipView
	stealer stealer
	stats   statsTracker

	wake   chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup

	onStop func(*Node) // deployment bookkeeping hook
}

func satinEP(id NodeID) string { return "satin:" + string(id) }

// StartNode joins the registry and starts the worker.
func StartNode(cfg NodeConfig) (*Node, error) {
	cfg.defaults()
	if cfg.ID == "" || cfg.Fabric == nil {
		return nil, fmt.Errorf("satin: NodeConfig needs ID and Fabric")
	}
	ep, err := cfg.Fabric.Endpoint(satinEP(cfg.ID))
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		wc:      wire.New(ep),
		jobs:    deque.New[jobMsg](),
		pending: make(map[uint64]pendingJob),
		wake:    make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	n.members.init()
	n.stealer.init(&cfg)
	n.stats.init(&cfg)
	// Handlers go live before the registry join: a peer that learns of
	// this node through the join broadcast may steal from it before
	// Join even returns here.
	wire.Handle(n.wc, n.onSteal)
	wire.Handle(n.wc, n.onStealReply)
	wire.Handle(n.wc, n.onResult)
	wire.Handle(n.wc, n.onHolding)
	wire.Handle(n.wc, n.onReturnJob)
	reg, err := registry.Join(cfg.Fabric, registry.NodeInfo{ID: cfg.ID, Cluster: cfg.Cluster}, cfg.Registry)
	if err != nil {
		n.wc.Close()
		return nil, err
	}
	n.members.setClient(reg)
	n.wg.Add(2)
	go n.eventLoop()
	go n.worker()
	if cfg.Coordinator != "" {
		n.wg.Add(1)
		go n.reportLoop()
	}
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Cluster returns the node's site.
func (n *Node) Cluster() ClusterID { return n.cfg.Cluster }

// SetLoadFactor emulates a competing CPU load: application work (and
// the benchmark) takes (1+f) times as long. This is the real-runtime
// counterpart of the paper's artificial-load experiments.
func (n *Node) SetLoadFactor(f float64) { n.stats.setLoad(f) }

// StealStats snapshots the node's steal-attempt counters (victim
// selection lives in internal/steal; the counts distinguish
// latency-hidden asynchronous WAN attempts from synchronous ones the
// Random ablation pays in the idle path).
func (n *Node) StealStats() steal.Stats { return n.stealer.eng.Stats() }

// registerJob allocates an ID and records ownership of a new job.
func (n *Node) registerJob(t Task) (uint64, *Future) {
	n.mu.Lock()
	n.nextID++
	id := n.nextID
	fut := n.futs.get()
	n.pending[id] = pendingJob{task: t, fut: fut, holder: n.cfg.ID}
	n.mu.Unlock()
	return id, fut
}

// spawnJob enters a job from task code. Only the worker goroutine
// calls it (via Context.Spawn), so the deque push is an owner
// operation — lock-free.
func (n *Node) spawnJob(t Task) *Future {
	id, fut := n.registerJob(t)
	n.jobs.Push(jobMsg{ID: id, Owner: n.cfg.ID, Task: t})
	return fut
}

// Submit enters a root task owned by this node and returns its future.
// Callable from any goroutine: the job travels through the inbox and
// the worker adopts it.
func (n *Node) Submit(t Task) *Future {
	id, fut := n.registerJob(t)
	n.inbox.add(jobMsg{ID: id, Owner: n.cfg.ID, Task: t})
	n.wakeUp()
	return fut
}

// Run submits a root task and blocks until it completes.
func (n *Node) Run(t Task) (any, error) {
	fut := n.Submit(t)
	fut.Wait()
	return fut.Result()
}

// Leaving reports whether the node was asked to leave.
func (n *Node) Leaving() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaving
}

// Stopped reports whether the node has shut down.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// SignalLeave asks the node to leave at the next job boundary (the
// coordinator normally does this through the registry; the method
// exists for direct orchestration and tests).
func (n *Node) SignalLeave() {
	n.mu.Lock()
	n.leaving = true
	n.mu.Unlock()
	n.wakeUp()
}

// Kill stops the node abruptly, simulating a crash: no leave message,
// no returned jobs; peers find out through the failure detector.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	// Fail every locally owned future: a caller blocked in Future.Wait
	// (e.g. Node.Run on this node) must not hang forever on a dead
	// node — nobody will ever deliver those results here.
	pending := n.pending
	n.pending = make(map[uint64]pendingJob)
	n.mu.Unlock()
	for _, pj := range pending {
		pj.fut.complete(nil, errNodeStopped)
	}
	close(n.stopCh)
	n.wakeUp()
	n.members.client().Close()
	n.wc.Close()
	n.wg.Wait()
	if n.onStop != nil {
		n.onStop(n)
	}
}

func (n *Node) completeLocal(id uint64, val any, err error) {
	n.mu.Lock()
	pj, ok := n.pending[id]
	if ok {
		delete(n.pending, id)
	}
	n.mu.Unlock()
	if ok {
		pj.fut.complete(val, err)
		n.wakeUp()
	}
}

// setHolder updates who holds an owned job, for recomputation if the
// holder dies.
func (n *Node) setHolder(id uint64, holder NodeID) {
	n.mu.Lock()
	if pj, ok := n.pending[id]; ok {
		pj.holder = holder
		n.pending[id] = pj
	}
	n.mu.Unlock()
}

// noteHolding tells the job's owner who holds it now, so the owner can
// recompute it if this node dies (the fault-tolerance bookkeeping).
func (n *Node) noteHolding(j jobMsg) {
	if j.Owner == n.cfg.ID {
		n.setHolder(j.ID, n.cfg.ID)
		return
	}
	wire.Send(n.wc, satinEP(j.Owner), holdingMsg{ID: j.ID, Holder: n.cfg.ID})
}

// ---- malleability ----

// tryFinishLeave completes a graceful departure once no self-owned
// work remains: foreign jobs in the deque go back to their owners,
// then the node leaves the registry. Returns true when the node is
// done. Worker goroutine only (it drains the deque's owner end).
func (n *Node) tryFinishLeave() bool {
	n.mu.Lock()
	if n.stopped {
		// Kill won the race; the node is already down, stopCh closed.
		n.mu.Unlock()
		return true
	}
	if len(n.pending) > 0 {
		// This node still owns unfinished jobs (it is executing a
		// subtree): it must keep working before it may leave.
		n.mu.Unlock()
		return false
	}
	n.mu.Unlock()

	// Drain everything this node holds. The worker owns the deque
	// bottom, so nobody else pops here; thieves may race us for
	// individual jobs, which is fine — a stolen job is simply no
	// longer ours to return.
	n.drainInbox()
	var foreign []jobMsg
	for {
		j, ok := n.jobs.PopBottom()
		if !ok {
			break
		}
		if j.Owner == n.cfg.ID {
			// Own work still queued (a Submit raced the pending
			// check): put everything back and keep working.
			n.jobs.Push(j)
			for _, f := range foreign {
				n.jobs.Push(f)
			}
			return false
		}
		foreign = append(foreign, j)
	}

	n.mu.Lock()
	if n.stopped {
		// Kill raced the drain: crash semantics, the drained copies
		// are lost and owners recompute via the failure detector.
		n.mu.Unlock()
		return true
	}
	if len(n.pending) > 0 {
		n.mu.Unlock()
		for _, f := range foreign {
			n.jobs.Push(f)
		}
		return false
	}
	n.stopped = true
	n.mu.Unlock()
	foreign = append(foreign, n.inbox.drain()...) // late adoptions
	for _, j := range foreign {
		// A failed send (unencodable task, owner gone) loses the copy;
		// the owner recomputes when the failure detector reports us.
		wire.Send(n.wc, satinEP(j.Owner), returnJobMsg{Job: j})
	}
	close(n.stopCh)
	n.members.client().Leave()
	n.wc.Close()
	// The worker (our caller) returns after this; notify once every
	// companion goroutine has drained.
	go func() {
		n.wg.Wait()
		if n.onStop != nil {
			n.onStop(n)
		}
	}()
	return true
}

// ---- owner-side message handling ----

func (n *Node) onResult(rm resultMsg, m wire.Meta) {
	n.countInterBytes(m)
	n.completeLocal(rm.ID, rm.Value, stringErr(rm.Err))
}

func (n *Node) onHolding(hm holdingMsg, _ wire.Meta) {
	n.mu.Lock()
	reclaim := false
	var job jobMsg
	if pj, ok := n.pending[hm.ID]; ok {
		if n.members.isDeparted(hm.Holder) {
			// The notification lost the race with the holder's
			// death event: recompute here and now, or the job
			// would point at a dead node forever.
			pj.holder = n.cfg.ID
			job = jobMsg{ID: hm.ID, Owner: n.cfg.ID, Task: pj.task}
			reclaim = true
		} else {
			pj.holder = hm.Holder
		}
		n.pending[hm.ID] = pj
	}
	n.mu.Unlock()
	if reclaim {
		n.inbox.add(job)
		n.wakeUp()
	}
}

func (n *Node) onReturnJob(rj returnJobMsg, _ wire.Meta) {
	if rj.Job.Owner == n.cfg.ID {
		n.mu.Lock()
		pj, ok := n.pending[rj.Job.ID]
		if ok {
			pj.holder = n.cfg.ID
			n.pending[rj.Job.ID] = pj
		}
		n.mu.Unlock()
		if !ok {
			return // already completed elsewhere; drop the duplicate
		}
	}
	n.inbox.add(rj.Job)
	n.wakeUp()
}
