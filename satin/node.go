package satin

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// NodeConfig configures one runtime node.
type NodeConfig struct {
	ID      NodeID
	Cluster ClusterID

	// Fabric carries both the registry session and the steal/result
	// traffic.
	Fabric transport.Fabric
	// Registry tunes membership heartbeats and failure detection.
	Registry registry.Options

	// Coordinator, when set, is the endpoint name the node sends its
	// per-period statistics reports to (the adaptation coordinator).
	Coordinator string
	// MonitorPeriod is the statistics period (default 2s — the real
	// runtime runs at millisecond task scale, so periods shrink with it).
	MonitorPeriod time.Duration

	// Bench is the application-specific speed benchmark: the
	// application itself with a small problem size. It must be a
	// sequential task (no spawns). BenchWork is its nominal size in
	// work units; the measured speed is BenchWork divided by the wall
	// time of one run. BenchBudget bounds the benchmarking overhead.
	Bench       Task
	BenchWork   float64
	BenchBudget float64

	// LocalStealTimeout / WANStealTimeout bound synchronous local and
	// asynchronous wide-area steal attempts.
	LocalStealTimeout time.Duration
	WANStealTimeout   time.Duration

	// InterWaitThreshold: waiting on an outstanding wide-area steal
	// counts as inter-cluster communication overhead only once the
	// steal has been in flight this long — a healthy WAN round trip
	// stays idle time, a saturated link shows up as inter overhead.
	InterWaitThreshold time.Duration

	// Seed makes victim selection reproducible per node.
	Seed int64
}

func (c *NodeConfig) defaults() {
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = 2 * time.Second
	}
	if c.BenchBudget == 0 {
		c.BenchBudget = 0.03
	}
	if c.LocalStealTimeout == 0 {
		c.LocalStealTimeout = 250 * time.Millisecond
	}
	if c.WANStealTimeout == 0 {
		c.WANStealTimeout = 3 * time.Second
	}
	if c.InterWaitThreshold == 0 {
		c.InterWaitThreshold = 50 * time.Millisecond
	}
}

// worker states (metrics buckets plus implicit idle)
const stateIdle = -1

// pendingJob is a spawned job this node owns.
type pendingJob struct {
	task   Task
	fut    *Future
	holder NodeID // who currently holds it ("" never; self = local)
}

// Node is one processor of the runtime.
type Node struct {
	cfg NodeConfig
	reg *registry.Client // written once under mu before the worker starts
	wc  *wire.Conn
	rng *rand.Rand // guarded by mu

	mu           sync.Mutex
	deque        []jobMsg
	pending      map[uint64]*pendingJob
	nextID       uint64
	nextSeq      uint64
	stealWaiters map[uint64]chan bool
	leaving      bool
	stopped      bool
	departed     map[NodeID]bool // members seen leaving/dying, for late messages
	load         float64
	wanInFlight  bool
	wanSince     time.Time // when the outstanding WAN steal was issued
	benchPending bool

	acc        *metrics.Accumulator
	curState   int
	stateSince time.Time

	wake   chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup

	onStop func(*Node) // deployment bookkeeping hook
}

func satinEP(id NodeID) string { return "satin:" + string(id) }

func hashID(id NodeID) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// StartNode joins the registry and starts the worker.
func StartNode(cfg NodeConfig) (*Node, error) {
	cfg.defaults()
	if cfg.ID == "" || cfg.Fabric == nil {
		return nil, fmt.Errorf("satin: NodeConfig needs ID and Fabric")
	}
	ep, err := cfg.Fabric.Endpoint(satinEP(cfg.ID))
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:          cfg,
		wc:           wire.New(ep),
		rng:          rand.New(rand.NewSource(cfg.Seed ^ hashID(cfg.ID))),
		pending:      make(map[uint64]*pendingJob),
		departed:     make(map[NodeID]bool),
		stealWaiters: make(map[uint64]chan bool),
		acc:          metrics.NewAccumulator(cfg.ID, cfg.Cluster, 0),
		curState:     stateIdle,
		stateSince:   time.Now(),
		wake:         make(chan struct{}, 1),
		stopCh:       make(chan struct{}),
	}
	if cfg.Bench != nil {
		n.benchPending = true
	}
	// Handlers go live before the registry join: a peer that learns of
	// this node through the join broadcast may steal from it before
	// Join even returns here.
	wire.Handle(n.wc, n.onSteal)
	wire.Handle(n.wc, n.onStealReply)
	wire.Handle(n.wc, n.onResult)
	wire.Handle(n.wc, n.onHolding)
	wire.Handle(n.wc, n.onReturnJob)
	reg, err := registry.Join(cfg.Fabric, registry.NodeInfo{ID: cfg.ID, Cluster: cfg.Cluster}, cfg.Registry)
	if err != nil {
		n.wc.Close()
		return nil, err
	}
	n.mu.Lock()
	n.reg = reg
	n.mu.Unlock()
	n.wg.Add(2)
	go n.eventLoop()
	go n.worker()
	if cfg.Coordinator != "" {
		n.wg.Add(1)
		go n.reportLoop()
	}
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Cluster returns the node's site.
func (n *Node) Cluster() ClusterID { return n.cfg.Cluster }

// SetLoadFactor emulates a competing CPU load: application work (and
// the benchmark) takes (1+f) times as long. This is the real-runtime
// counterpart of the paper's artificial-load experiments.
func (n *Node) SetLoadFactor(f float64) {
	n.mu.Lock()
	n.load = f
	n.mu.Unlock()
}

// Submit enters a root task owned by this node and returns its future.
func (n *Node) Submit(t Task) *Future {
	fut := n.spawnJob(t)
	n.wakeUp()
	return fut
}

// Run submits a root task and blocks until it completes.
func (n *Node) Run(t Task) (any, error) {
	fut := n.Submit(t)
	fut.Wait()
	return fut.Result()
}

// Leaving reports whether the node was asked to leave.
func (n *Node) Leaving() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaving
}

// Stopped reports whether the node has shut down.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// SignalLeave asks the node to leave at the next job boundary (the
// coordinator normally does this through the registry; the method
// exists for direct orchestration and tests).
func (n *Node) SignalLeave() {
	n.mu.Lock()
	n.leaving = true
	n.mu.Unlock()
	n.wakeUp()
}

// Kill stops the node abruptly, simulating a crash: no leave message,
// no returned jobs; peers find out through the failure detector.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	// Fail every locally owned future: a caller blocked in Future.Wait
	// (e.g. Node.Run on this node) must not hang forever on a dead
	// node — nobody will ever deliver those results here.
	pending := n.pending
	n.pending = make(map[uint64]*pendingJob)
	n.mu.Unlock()
	for _, pj := range pending {
		pj.fut.complete(nil, errNodeStopped)
	}
	close(n.stopCh)
	n.wakeUp()
	n.reg.Close()
	n.wc.Close()
	n.wg.Wait()
	if n.onStop != nil {
		n.onStop(n)
	}
}

// Report snapshots the node's statistics for the elapsed period.
func (n *Node) Report() metrics.Report {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.snapshotLocked()
}

func (n *Node) snapshotLocked() metrics.Report {
	// Fold the in-progress state into the period before snapshotting.
	now := time.Now()
	el := now.Sub(n.stateSince).Seconds()
	if n.curState >= 0 && el > 0 {
		n.acc.Add(metrics.Bucket(n.curState), el)
	}
	n.stateSince = now
	return n.acc.Snapshot(monotonicSeconds())
}

var startTime = time.Now()

func monotonicSeconds() float64 { return time.Since(startTime).Seconds() }

// ---- worker ----

func (n *Node) worker() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		stopped, leaving := n.stopped, n.leaving
		bench := n.benchPending
		n.mu.Unlock()
		if stopped {
			return
		}
		if leaving {
			if n.tryFinishLeave() {
				return
			}
		}
		if bench {
			n.runBench()
			continue
		}
		if j, ok := n.popNewest(); ok {
			n.executeJob(j)
			continue
		}
		if leaving {
			// Deque drained but self-owned work is still outstanding:
			// wait for results (or reclaims) instead of spinning.
			n.waitForWork(2 * time.Millisecond)
			continue
		}
		if j, ok := n.trySteal(); ok {
			n.executeJob(j)
			continue
		}
		n.waitForWork(2 * time.Millisecond)
	}
}

func (n *Node) popNewest() (jobMsg, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.deque) == 0 {
		return jobMsg{}, false
	}
	j := n.deque[len(n.deque)-1]
	n.deque = n.deque[:len(n.deque)-1]
	return j, true
}

func (n *Node) wakeUp() {
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// enterState switches the worker's accounting bucket. A competing load
// factor stretches busy and benchmark intervals by sleeping, emulating
// time-sharing with the load.
func (n *Node) enterState(next int) {
	n.mu.Lock()
	prev := n.curState
	el := time.Since(n.stateSince)
	load := n.load
	n.mu.Unlock()
	if load > 0 && el > 0 &&
		(prev == int(metrics.Busy) || prev == int(metrics.Bench)) {
		time.Sleep(time.Duration(float64(el) * load))
	}
	n.mu.Lock()
	if n.curState >= 0 {
		if el2 := time.Since(n.stateSince).Seconds(); el2 > 0 {
			n.acc.Add(metrics.Bucket(n.curState), el2)
		}
	}
	n.curState = next
	n.stateSince = time.Now()
	n.mu.Unlock()
}

func (n *Node) executeJob(j jobMsg) {
	n.enterState(int(metrics.Busy))
	ctx := &Context{node: n}
	val, err := safeExecute(j.Task, ctx)
	n.enterState(stateIdle)
	if errors.Is(err, errNodeStopped) {
		// Execution was cut short by Kill: this is not a task result.
		// Say nothing; the owner recomputes the job when the failure
		// detector reports us dead.
		return
	}
	if j.Owner == n.cfg.ID {
		n.completeLocal(j.ID, val, err)
		return
	}
	res := resultMsg{ID: j.ID, Value: val, Err: errString(err)}
	if sendErr := wire.Send(n.wc, satinEP(j.Owner), res); sendErr != nil {
		// Unregistered result type (the encode failure restarted the
		// session): deliver the error instead so the owner's sync does
		// not hang.
		wire.Send(n.wc, satinEP(j.Owner), resultMsg{ID: j.ID, Err: sendErr.Error()})
	}
}

// safeExecute converts panics in task code into errors; a crashing task
// must not take the whole node down (the computation would deadlock).
func safeExecute(t Task, ctx *Context) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("satin: task panic: %v", r)
		}
	}()
	return t.Execute(ctx)
}

func (n *Node) completeLocal(id uint64, val any, err error) {
	n.mu.Lock()
	pj, ok := n.pending[id]
	if ok {
		delete(n.pending, id)
	}
	n.mu.Unlock()
	if ok {
		pj.fut.complete(val, err)
		n.wakeUp()
	}
}

func (n *Node) spawnJob(t Task) *Future {
	n.mu.Lock()
	n.nextID++
	id := n.nextID
	fut := &Future{}
	n.pending[id] = &pendingJob{task: t, fut: fut, holder: n.cfg.ID}
	n.deque = append(n.deque, jobMsg{ID: id, Owner: n.cfg.ID, Task: t})
	n.mu.Unlock()
	return fut
}

// ---- stealing (CRS) ----

// trySteal implements cluster-aware random work stealing: keep one
// asynchronous wide-area steal outstanding while issuing synchronous
// local steals, so WAN latency hides behind LAN attempts.
func (n *Node) trySteal() (jobMsg, bool) {
	members := n.reg.Members()
	var locals, remotes []registry.NodeInfo
	for _, m := range members {
		if m.ID == n.cfg.ID || m.Cluster == "" {
			// Members without a cluster are non-workers (the
			// adaptation coordinator's registry session): never steal
			// from them.
			continue
		}
		if m.Cluster == n.cfg.Cluster {
			locals = append(locals, m)
		} else {
			remotes = append(remotes, m)
		}
	}
	n.mu.Lock()
	launchWAN := len(remotes) > 0 && !n.wanInFlight
	if launchWAN {
		n.wanInFlight = true
		n.wanSince = time.Now()
	}
	var wanVictim registry.NodeInfo
	if launchWAN {
		wanVictim = remotes[n.rng.Intn(len(remotes))]
	}
	var localVictim registry.NodeInfo
	haveLocal := len(locals) > 0
	if haveLocal {
		localVictim = locals[n.rng.Intn(len(locals))]
	}
	n.mu.Unlock()

	if launchWAN {
		go n.wanSteal(wanVictim)
	}
	if !haveLocal {
		return jobMsg{}, false
	}
	n.enterState(int(metrics.Intra))
	gotJob := n.stealFrom(localVictim.ID, n.cfg.LocalStealTimeout)
	n.enterState(stateIdle)
	if !gotJob {
		return jobMsg{}, false
	}
	// The reply handler adopted the job into our deque (ownership
	// transfers there, never through a channel a timed-out waiter may
	// have abandoned); take the freshest entry.
	return n.popNewest()
}

// wanSteal runs the asynchronous wide-area steal: a successful job is
// adopted into the deque by the reply handler; here we only clear the
// in-flight flag CRS keys on.
func (n *Node) wanSteal(victim registry.NodeInfo) {
	n.stealFrom(victim.ID, n.cfg.WANStealTimeout)
	n.mu.Lock()
	n.wanInFlight = false
	n.mu.Unlock()
	n.wakeUp()
}

// stealFrom sends one steal request and waits for the reply; it
// reports whether the victim granted a job (which the reply handler
// already adopted into the deque).
func (n *Node) stealFrom(victim NodeID, timeout time.Duration) bool {
	n.mu.Lock()
	n.nextSeq++
	seq := n.nextSeq
	ch := make(chan bool, 1)
	n.stealWaiters[seq] = ch
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.stealWaiters, seq)
		n.mu.Unlock()
	}()
	if err := wire.Send(n.wc, satinEP(victim), stealMsg{Thief: n.cfg.ID, Cluster: n.cfg.Cluster, Seq: seq}); err != nil {
		return false
	}
	select {
	case got := <-ch:
		return got
	case <-time.After(timeout):
		return false
	case <-n.stopCh:
		return false
	}
}

// noteHolding tells the job's owner who holds it now, so the owner can
// recompute it if this node dies (the fault-tolerance bookkeeping).
func (n *Node) noteHolding(j jobMsg) {
	if j.Owner == n.cfg.ID {
		n.mu.Lock()
		if pj, ok := n.pending[j.ID]; ok {
			pj.holder = n.cfg.ID
		}
		n.mu.Unlock()
		return
	}
	wire.Send(n.wc, satinEP(j.Owner), holdingMsg{ID: j.ID, Holder: n.cfg.ID})
}

func (n *Node) waitForWork(d time.Duration) {
	n.mu.Lock()
	wanStalled := n.wanInFlight && time.Since(n.wanSince) > n.cfg.InterWaitThreshold
	n.mu.Unlock()
	if wanStalled {
		// Waiting on a wide-area steal that should long have returned:
		// the WAN path is congested, which the monitoring must surface
		// as inter-cluster communication overhead. Ordinary round-trip
		// waits stay idle time.
		n.enterState(int(metrics.Inter))
	} else {
		n.enterState(stateIdle)
	}
	select {
	case <-n.wake:
	case <-time.After(d):
	case <-n.stopCh:
	}
	n.enterState(stateIdle)
}

// ---- benchmarking ----

func (n *Node) runBench() {
	n.mu.Lock()
	n.benchPending = false
	bench := n.cfg.Bench
	n.mu.Unlock()
	if bench == nil {
		return
	}
	n.enterState(int(metrics.Bench))
	start := time.Now()
	ctx := &Context{node: n, benchMode: true}
	_, _ = safeExecute(bench, ctx)
	n.enterState(stateIdle)
	dur := time.Since(start).Seconds()
	if dur <= 0 {
		dur = 1e-9
	}
	speed := n.cfg.BenchWork / dur
	n.mu.Lock()
	n.acc.SetSpeed(speed)
	n.mu.Unlock()
	interval := time.Duration(dur / n.cfg.BenchBudget * float64(time.Second))
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	time.AfterFunc(interval, func() {
		n.mu.Lock()
		if !n.stopped && !n.leaving {
			n.benchPending = true
		}
		n.mu.Unlock()
		n.wakeUp()
	})
}

// ---- malleability & fault tolerance ----

// tryFinishLeave completes a graceful departure once no self-owned
// work remains: foreign jobs in the deque go back to their owners,
// then the node leaves the registry. Returns true when the node is
// done.
func (n *Node) tryFinishLeave() bool {
	n.mu.Lock()
	if len(n.pending) > 0 {
		// This node still owns unfinished jobs (it is executing a
		// subtree): it must keep working before it may leave.
		n.mu.Unlock()
		return false
	}
	if n.stopped {
		// Kill won the race while the worker was between its loop-top
		// check and here; the node is already down and stopCh closed.
		n.mu.Unlock()
		return true
	}
	var foreign []jobMsg
	var keep []jobMsg
	for _, j := range n.deque {
		if j.Owner != n.cfg.ID {
			foreign = append(foreign, j)
		} else {
			keep = append(keep, j)
		}
	}
	if len(keep) > 0 {
		n.mu.Unlock()
		return false
	}
	n.deque = nil
	n.stopped = true
	n.mu.Unlock()
	for _, j := range foreign {
		// A failed send (unencodable task, owner gone) loses the copy;
		// the owner recomputes when the failure detector reports us.
		wire.Send(n.wc, satinEP(j.Owner), returnJobMsg{Job: j})
	}
	close(n.stopCh)
	n.reg.Leave()
	n.wc.Close()
	// The worker (our caller) returns after this; notify once every
	// companion goroutine has drained.
	go func() {
		n.wg.Wait()
		if n.onStop != nil {
			n.onStop(n)
		}
	}()
	return true
}

// eventLoop consumes registry events: deaths trigger recomputation of
// jobs the dead node held; the "leave" signal starts a graceful exit.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case ev, ok := <-n.reg.Events():
			if !ok {
				return
			}
			switch ev.Kind {
			case registry.Joined:
				// A node ID can be reused after its slot is released
				// back to the scheduler: a rejoin clears its departed
				// mark so it can steal again.
				n.mu.Lock()
				delete(n.departed, ev.Node.ID)
				n.mu.Unlock()
			case registry.Died, registry.Left:
				n.reclaimFrom(ev.Node.ID)
			case registry.SignalEvent:
				if ev.Signal == "leave" {
					n.mu.Lock()
					n.leaving = true
					n.mu.Unlock()
					n.wakeUp()
				}
			}
		}
	}
}

// reclaimFrom re-enqueues every pending job the departed node held —
// Satin's orphan recomputation. A graceful leaver also returns jobs
// explicitly; the Future deduplicates if both paths deliver.
func (n *Node) reclaimFrom(dead NodeID) {
	if dead == n.cfg.ID {
		return
	}
	n.mu.Lock()
	n.departed[dead] = true
	var reclaimed int
	for id, pj := range n.pending {
		if pj.holder == dead {
			pj.holder = n.cfg.ID
			n.deque = append(n.deque, jobMsg{ID: id, Owner: n.cfg.ID, Task: pj.task})
			reclaimed++
		}
	}
	n.mu.Unlock()
	if reclaimed > 0 {
		n.wakeUp()
	}
}

// ---- message handling ----

func (n *Node) onSteal(sm stealMsg, _ wire.Meta) {
	n.mu.Lock()
	var reply stealReplyMsg
	reply.Seq = sm.Seq
	if !n.stopped && !n.leaving && !n.departed[sm.Thief] && len(n.deque) > 0 {
		j := n.deque[0] // oldest = biggest subtree
		n.deque = n.deque[1:]
		reply.HasJob = true
		reply.Job = j
		if j.Owner == n.cfg.ID {
			if pj, ok := n.pending[j.ID]; ok {
				pj.holder = sm.Thief
			}
		}
	}
	n.mu.Unlock()
	if reply.HasJob && reply.Job.Owner != n.cfg.ID && reply.Job.Owner != sm.Thief {
		// Tell the third-party owner immediately where its job went:
		// if the thief dies before its own notification, the owner
		// must still know whom to watch for recomputation.
		wire.Send(n.wc, satinEP(reply.Job.Owner), holdingMsg{ID: reply.Job.ID, Holder: sm.Thief})
	}
	if err := wire.Send(n.wc, satinEP(sm.Thief), reply); err != nil {
		// Task type not registered for gob (or the thief is gone): hand
		// the job back to ourselves and fail the steal.
		if reply.HasJob {
			n.mu.Lock()
			n.deque = append([]jobMsg{reply.Job}, n.deque...)
			if reply.Job.Owner == n.cfg.ID {
				if pj, ok := n.pending[reply.Job.ID]; ok {
					pj.holder = n.cfg.ID
				}
			}
			n.mu.Unlock()
		}
		wire.Send(n.wc, satinEP(sm.Thief), stealReplyMsg{Seq: sm.Seq})
	}
}

func (n *Node) onStealReply(sr stealReplyMsg, m wire.Meta) {
	n.countInterBytes(m)
	returnIt := false
	if sr.HasJob {
		// Adopt the job here, whatever happened to the waiter: a
		// reply that lost a race with the steal timeout must not
		// lose the job (its owner already recorded us as holder).
		n.mu.Lock()
		if n.stopped {
			returnIt = true
		} else {
			n.deque = append(n.deque, sr.Job)
		}
		n.mu.Unlock()
		if !returnIt {
			n.noteHolding(sr.Job)
			n.wakeUp()
		}
	}
	if returnIt {
		wire.Send(n.wc, satinEP(sr.Job.Owner), returnJobMsg{Job: sr.Job})
	}
	n.mu.Lock()
	ch := n.stealWaiters[sr.Seq]
	n.mu.Unlock()
	if ch != nil {
		select {
		case ch <- sr.HasJob:
		default:
		}
	}
}

func (n *Node) onResult(rm resultMsg, m wire.Meta) {
	n.countInterBytes(m)
	n.completeLocal(rm.ID, rm.Value, stringErr(rm.Err))
}

func (n *Node) onHolding(hm holdingMsg, _ wire.Meta) {
	n.mu.Lock()
	reclaim := false
	if pj, ok := n.pending[hm.ID]; ok {
		if n.departed[hm.Holder] {
			// The notification lost the race with the holder's
			// death event: recompute here and now, or the job
			// would point at a dead node forever.
			pj.holder = n.cfg.ID
			n.deque = append(n.deque, jobMsg{ID: hm.ID, Owner: n.cfg.ID, Task: pj.task})
			reclaim = true
		} else {
			pj.holder = hm.Holder
		}
	}
	n.mu.Unlock()
	if reclaim {
		n.wakeUp()
	}
}

func (n *Node) onReturnJob(rj returnJobMsg, _ wire.Meta) {
	n.mu.Lock()
	if rj.Job.Owner == n.cfg.ID {
		if pj, ok := n.pending[rj.Job.ID]; ok {
			pj.holder = n.cfg.ID
			n.deque = append(n.deque, rj.Job)
		}
	} else {
		n.deque = append(n.deque, rj.Job)
	}
	n.mu.Unlock()
	n.wakeUp()
}

// countInterBytes books a received frame's wire bytes as inter-cluster
// traffic when the sender sits in another cluster — the byte counts
// behind the coordinator's achieved-bandwidth estimate, which feeds the
// learned minimum-bandwidth requirement.
func (n *Node) countInterBytes(m wire.Meta) {
	if m.Bytes == 0 {
		return
	}
	from := NodeID("")
	if len(m.From) > len("satin:") {
		from = NodeID(m.From[len("satin:"):])
	}
	if from == "" || from == n.cfg.ID {
		return
	}
	n.mu.Lock()
	reg := n.reg
	n.mu.Unlock()
	if reg == nil {
		// A frame raced our own registry join; membership is unknown yet.
		return
	}
	for _, mem := range reg.Members() {
		if mem.ID == from {
			if mem.Cluster != "" && mem.Cluster != n.cfg.Cluster {
				n.mu.Lock()
				n.acc.AddInterBytes(float64(m.Bytes))
				n.mu.Unlock()
			}
			return
		}
	}
}

// reportLoop pushes per-period statistics to the coordinator.
func (n *Node) reportLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.MonitorPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			wire.Send(n.wc, n.cfg.Coordinator, n.Report())
		}
	}
}
