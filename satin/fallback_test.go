package satin

import (
	"testing"
	"time"
)

// tgate occupies a node's worker: Execute announces it started, then
// blocks until released. It never crosses the wire successfully (chan
// fields are not gob-encodable), which is fine — a steal attempt takes
// the encode-fallback path and hands the job back.
type tgate struct {
	Started chan struct{}
	Release chan struct{}
}

func (g tgate) Execute(*Context) (any, error) {
	g.Started <- struct{}{}
	<-g.Release
	return 0, nil
}

// unregisteredResult is deliberately never gob-registered: a task
// returning it produces a result frame that cannot be encoded.
type unregisteredResult struct{ X int }

type tbadResult struct{}

func (tbadResult) Execute(*Context) (any, error) { return unregisteredResult{X: 1}, nil }

func init() {
	Register(tgate{})
	Register(tbadResult{})
}

// A remotely executed task whose result type is not registered must
// surface as an error on the spawner's future — never a silent drop
// that leaves the owner waiting forever.
func TestUnencodableResultSurfacesAsError(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 2})
	nodes, err := g.StartNodes("c0", 2)
	if err != nil {
		t.Fatal(err)
	}
	a := nodes[0]

	// Pin A's worker inside the gate so the bad job can only be stolen
	// and executed by the other node, forcing its result over the wire.
	gate := tgate{Started: make(chan struct{}, 1), Release: make(chan struct{})}
	gateFut := a.Submit(gate)
	<-gate.Started

	fut := a.Submit(tbadResult{})
	done := make(chan struct{})
	go func() { fut.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("spawner hung: unencodable remote result was dropped")
	}
	if _, err := fut.Result(); err == nil {
		t.Fatal("unencodable remote result completed without an error")
	} else {
		t.Logf("spawner saw: %v", err)
	}

	close(gate.Release)
	gateFut.Wait()
}
