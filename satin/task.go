// Package satin is a Go rendition of the Satin divide-and-conquer
// runtime the paper builds on: applications spawn subtasks that are
// load-balanced across nodes with cluster-aware random work stealing
// (CRS), nodes can join and leave a running computation (malleability),
// and work lost to crashes or departures is recomputed from its owner
// (fault tolerance) — the properties the paper's §2 assumes and §4
// implements.
//
// Tasks are plain Go values implementing Task; they and their result
// types must be registered (Register/RegisterValue) because stolen
// jobs and their results travel between nodes as gob frames.
//
// A typical divide-and-conquer application:
//
//	type Fib struct{ N int }
//
//	func (f Fib) Execute(ctx *satin.Context) (any, error) {
//		if f.N < 2 {
//			return f.N, nil
//		}
//		a := ctx.Spawn(Fib{N: f.N - 1})
//		b := ctx.Spawn(Fib{N: f.N - 2})
//		if err := ctx.Sync(); err != nil {
//			return nil, err
//		}
//		return a.Int() + b.Int(), nil
//	}
package satin

import (
	"encoding/gob"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport/wire"
)

// NodeID identifies a runtime node; ClusterID its site.
type (
	NodeID    = core.NodeID
	ClusterID = core.ClusterID
)

// Task is a unit of distributable work. Execute runs on whichever node
// ends up holding the task; it may spawn subtasks through the Context.
// Implementations must be gob-encodable values (no unexported fields
// carrying state) and registered with Register.
type Task interface {
	Execute(ctx *Context) (any, error)
}

// Register makes a task type transferable between nodes.
func Register(t Task) { gob.Register(t) }

// RegisterValue makes a result type transferable between nodes; basic
// types (ints, floats, strings, slices of them) work out of the box.
func RegisterValue(v any) { gob.Register(v) }

// wire messages of the runtime protocol
type stealMsg struct {
	Thief   NodeID
	Cluster ClusterID
	Seq     uint64
}

type stealReplyMsg struct {
	Seq    uint64
	HasJob bool
	Job    jobMsg
}

type jobMsg struct {
	ID    uint64
	Owner NodeID
	Task  Task
}

type resultMsg struct {
	ID    uint64
	Value any
	Err   string
}

type holdingMsg struct {
	ID     uint64
	Holder NodeID
}

type returnJobMsg struct {
	Job jobMsg
}

func init() {
	wire.Register[stealMsg]("steal")
	wire.Register[stealReplyMsg]("steal-reply")
	wire.Register[resultMsg]("result")
	wire.Register[holdingMsg]("holding")
	wire.Register[returnJobMsg]("return-job")
	// The statistics report shares its kind with the adapt package's
	// coordinator side; Register is idempotent for identical pairs.
	wire.Register[metrics.Report]("report")
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func stringErr(s string) error {
	if s == "" {
		return nil
	}
	return fmt.Errorf("%s", s)
}
