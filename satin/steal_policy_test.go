package satin

import (
	"testing"
	"time"
)

// runPolicyGrid runs one divide-and-conquer workload on a 2-cluster
// in-proc grid under the given steal policy and returns the number of
// synchronous cross-cluster steal attempts the nodes issued — the WAN
// round trips paid in the idle path.
func runPolicyGrid(t *testing.T, policy StealPolicy) int64 {
	t.Helper()
	g, err := NewGrid(GridConfig{
		Clusters:    []ClusterSpec{{Name: "c0", Nodes: 2}, {Name: "c1", Nodes: 2}},
		Registry:    fastReg(),
		LANLatency:  50 * time.Microsecond,
		WANLatency:  1 * time.Millisecond,
		Seed:        42,
		StealPolicy: policy,
		Node: NodeConfig{
			Registry:          fastReg(),
			LocalStealTimeout: 50 * time.Millisecond,
			WANStealTimeout:   200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var nodes []*Node
	for _, c := range []ClusterID{"c0", "c1"} {
		ns, err := g.StartNodes(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, ns...)
	}
	time.Sleep(100 * time.Millisecond) // let membership settle
	want := fibLeaves(13)
	res, err := nodes[0].Run(tfib{N: 13, Leaf: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Fatalf("fib(13) = %v, want %d", res, want)
	}
	var wide int64
	for _, n := range nodes {
		wide += n.StealStats().SyncWide
	}
	return wide
}

// TestRandomPaysMoreWANRoundTripsThanCRS is the ablation the paper's
// load-balancing substrate rests on: plain random stealing pays WAN
// round trips synchronously in the idle path, while CRS keeps
// synchronous attempts strictly local (its single wide-area steal is
// asynchronous, hidden behind LAN attempts).
func TestRandomPaysMoreWANRoundTripsThanCRS(t *testing.T) {
	crs := runPolicyGrid(t, StealCRS)
	rnd := runPolicyGrid(t, StealRandom)
	if crs != 0 {
		t.Fatalf("CRS issued %d synchronous cross-cluster steals; must be 0 by construction", crs)
	}
	if rnd <= crs {
		t.Fatalf("random stealing paid %d synchronous WAN round trips, CRS %d; random must pay strictly more", rnd, crs)
	}
	t.Logf("synchronous WAN steal attempts: CRS=%d random=%d", crs, rnd)
}
