package satin

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tpayload carries a heap payload whose collectability the retention
// test tracks through a finalizer.
type tpayload struct{ Data *[]byte }

func (p tpayload) Execute(*Context) (any, error) { return len(*p.Data), nil }

// tnop is a trivial task used to flush the worker past previous jobs.
type tnop struct{}

func (tnop) Execute(*Context) (any, error) { return nil, nil }

// retentionCollected counts finalized payloads across a test run.
var retentionCollected atomic.Int32

// tspawnPayloads spawns Count payload-carrying children in one burst —
// the shape that made the old slice-backed deque retain every vacated
// slot of the burst.
type tspawnPayloads struct{ Count int }

func (s tspawnPayloads) Execute(ctx *Context) (any, error) {
	for i := 0; i < s.Count; i++ {
		data := make([]byte, 1<<16)
		p := &data
		runtime.SetFinalizer(p, func(*[]byte) { retentionCollected.Add(1) })
		ctx.Spawn(tpayload{Data: p})
	}
	return nil, ctx.Sync()
}

func init() {
	Register(tpayload{})
	Register(tnop{})
	Register(tspawnPayloads{})
}

// TestCompletedJobPayloadCollectable pins the fix for the job-payload
// retention bug: the old slice-backed deque shrank with s = s[:len-1]
// and never zeroed the vacated slot, so a completed job's task (and
// its captured data) stayed reachable from the backing array. The
// Chase–Lev deque zeroes consumed slots, and the inbox releases its
// references on drain/steal, so payloads become garbage as soon as
// their jobs complete.
func TestCompletedJobPayloadCollectable(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 1})
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		t.Fatal(err)
	}
	n := nodes[0]

	const jobs = 32
	retentionCollected.Store(0)
	if _, err := n.Run(tspawnPayloads{Count: jobs}); err != nil {
		t.Fatal(err)
	}
	// Push unrelated work through so no payload job is the most recent
	// thing on the worker's stack.
	if _, err := n.Run(tnop{}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for retentionCollected.Load() < jobs && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := retentionCollected.Load(); got < jobs {
		t.Fatalf("only %d/%d completed-job payloads were collected; the runtime retains references", got, jobs)
	}
}

// TestConcurrentSubmitExactlyOnce races many submitters against the
// worker and the steal handlers: every submitted job must execute
// exactly once (the inbox funnels non-owner producers into the
// single-owner deque without dropping or duplicating).
func TestConcurrentSubmitExactlyOnce(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 2})
	nodes, err := g.StartNodes("c0", 2)
	if err != nil {
		t.Fatal(err)
	}
	n := nodes[0]

	const submitters, perSubmitter = 8, 50
	futs := make([][]*Future, submitters)
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				futs[s] = append(futs[s], n.Submit(tfib{N: 2}))
			}
		}(s)
	}
	wg.Wait()
	for s := range futs {
		for i, f := range futs[s] {
			f.Wait()
			if v, err := f.Result(); err != nil || v != 2 {
				t.Fatalf("submitter %d job %d: got (%v, %v), want (2, nil)", s, i, v, err)
			}
		}
	}
}
