package satin

import (
	"errors"
	"testing"
	"time"

	"repro/internal/registry"
)

// tfib is the classic divide-and-conquer test workload: counts calls
// of the Fibonacci recursion, burning a little real time per leaf so
// stealing has something to balance.
type tfib struct {
	N    int
	Leaf time.Duration
}

func (f tfib) Execute(ctx *Context) (any, error) {
	if f.N < 2 {
		if f.Leaf > 0 {
			time.Sleep(f.Leaf)
		}
		return 1, nil
	}
	a := ctx.Spawn(tfib{N: f.N - 1, Leaf: f.Leaf})
	b := ctx.Spawn(tfib{N: f.N - 2, Leaf: f.Leaf})
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	return a.Int() + b.Int(), nil
}

// terr fails on purpose.
type terr struct{ Boom bool }

func (t terr) Execute(ctx *Context) (any, error) {
	if t.Boom {
		return nil, errors.New("boom")
	}
	panic("kaboom")
}

func init() {
	Register(tfib{})
	Register(terr{})
}

func fibLeaves(n int) int {
	if n < 2 {
		return 1
	}
	return fibLeaves(n-1) + fibLeaves(n-2)
}

func fastReg() registry.Options {
	return registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
}

func testGrid(t *testing.T, clusters ...ClusterSpec) *Grid {
	t.Helper()
	g, err := NewGrid(GridConfig{
		Clusters:   clusters,
		Registry:   fastReg(),
		LANLatency: 50 * time.Microsecond,
		WANLatency: 1 * time.Millisecond,
		Node: NodeConfig{
			Registry:          fastReg(),
			LocalStealTimeout: 100 * time.Millisecond,
			WANStealTimeout:   500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func TestSingleNodeExecutes(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 1})
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		t.Fatal(err)
	}
	val, err := nodes[0].Run(tfib{N: 12})
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(12) {
		t.Fatalf("fib(12) = %v, want %d", val, fibLeaves(12))
	}
}

func TestMultiNodeDistributes(t *testing.T) {
	g := testGrid(t,
		ClusterSpec{Name: "c0", Nodes: 2},
		ClusterSpec{Name: "c1", Nodes: 2},
	)
	if _, err := g.StartNodes("c0", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.StartNodes("c1", 2); err != nil {
		t.Fatal(err)
	}
	master := g.Nodes()[0]
	for _, n := range g.Nodes() {
		if n.ID() < master.ID() {
			master = n
		}
	}
	val, err := master.Run(tfib{N: 15, Leaf: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(15) {
		t.Fatalf("fib(15) = %v, want %d", val, fibLeaves(15))
	}
	// Work must actually have been distributed: at least one other
	// node accumulated busy time.
	busyElsewhere := 0
	for _, n := range g.Nodes() {
		if n.ID() == master.ID() {
			continue
		}
		if rep := n.Report(); rep.BusySec > 0 {
			busyElsewhere++
		}
	}
	if busyElsewhere == 0 {
		t.Error("no stealing happened: all work stayed on the master")
	}
}

func TestErrorPropagates(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 1})
	nodes, _ := g.StartNodes("c0", 1)
	if _, err := nodes[0].Run(terr{Boom: true}); err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 1})
	nodes, _ := g.StartNodes("c0", 1)
	_, err := nodes[0].Run(terr{Boom: false})
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
}

func TestGracefulLeaveMidRun(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 4})
	nodes, err := g.StartNodes("c0", 4)
	if err != nil {
		t.Fatal(err)
	}
	master := nodes[0]
	fut := master.Submit(tfib{N: 17, Leaf: 200 * time.Microsecond})
	time.Sleep(50 * time.Millisecond) // let work spread
	// Two workers leave mid-computation (the coordinator's shrink).
	g.Registry().Signal(nodes[2].ID(), "leave")
	g.Registry().Signal(nodes[3].ID(), "leave")
	fut.Wait()
	val, err := fut.Result()
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(17) {
		t.Fatalf("fib(17) = %v, want %d (leave corrupted the computation)", val, fibLeaves(17))
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.NodeCount() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("leavers never stopped: %d nodes live", g.NodeCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCrashRecomputesOrphans(t *testing.T) {
	g := testGrid(t, ClusterSpec{Name: "c0", Nodes: 4})
	nodes, err := g.StartNodes("c0", 4)
	if err != nil {
		t.Fatal(err)
	}
	master := nodes[0]
	fut := master.Submit(tfib{N: 17, Leaf: 200 * time.Microsecond})
	time.Sleep(50 * time.Millisecond)
	nodes[3].Kill() // abrupt: orphaned jobs must be recomputed
	fut.Wait()
	val, err := fut.Result()
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(17) {
		t.Fatalf("fib(17) = %v, want %d (crash lost work)", val, fibLeaves(17))
	}
}

func TestProvisionAddsNodes(t *testing.T) {
	g := testGrid(t,
		ClusterSpec{Name: "c0", Nodes: 2},
		ClusterSpec{Name: "c1", Nodes: 2},
	)
	if _, err := g.StartNodes("c0", 1); err != nil {
		t.Fatal(err)
	}
	added := g.Provision(2, 0, nil)
	if added != 2 {
		t.Fatalf("Provision added %d, want 2", added)
	}
	// Locality: the occupied cluster c0 fills first.
	perCluster := map[ClusterID]int{}
	for _, n := range g.Nodes() {
		perCluster[n.Cluster()]++
	}
	if perCluster["c0"] != 2 {
		t.Errorf("locality violated: %v", perCluster)
	}
	veto := func(id NodeID, c ClusterID) bool { return true }
	if added := g.Provision(1, 0, veto); added != 0 {
		t.Errorf("veto ignored: added %d", added)
	}
}

func TestBenchmarkMeasuresSpeedAndLoad(t *testing.T) {
	g, err := NewGrid(GridConfig{
		Clusters: []ClusterSpec{{Name: "c0", Nodes: 2}},
		Registry: fastReg(),
		Node: NodeConfig{
			Registry:    fastReg(),
			Bench:       tfib{N: 10, Leaf: 20 * time.Microsecond},
			BenchWork:   float64(fibLeaves(10)),
			BenchBudget: 0.5, // rerun quickly for the test
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	nodes, err := g.StartNodes("c0", 2)
	if err != nil {
		t.Fatal(err)
	}
	nodes[1].SetLoadFactor(3)
	waitSpeed := func(n *Node) float64 {
		deadline := time.Now().Add(3 * time.Second)
		for {
			if s := n.Report().Speed; s > 0 {
				return s
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never measured a speed", n.ID())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Let both benchmark at least twice so the loaded node's slowdown shows.
	time.Sleep(300 * time.Millisecond)
	fast, slow := waitSpeed(nodes[0]), waitSpeed(nodes[1])
	if slow >= fast*0.7 {
		t.Errorf("loaded node speed %.0f not clearly below unloaded %.0f", slow, fast)
	}
}

func TestCrashedClusterCapacityUnavailable(t *testing.T) {
	g := testGrid(t,
		ClusterSpec{Name: "c0", Nodes: 2},
		ClusterSpec{Name: "c1", Nodes: 2},
	)
	if _, err := g.StartNodes("c1", 1); err != nil {
		t.Fatal(err)
	}
	killed := g.CrashCluster("c1")
	if killed != 1 {
		t.Fatalf("killed %d, want 1", killed)
	}
	// Provisioning can only use the surviving cluster now.
	added := g.Provision(4, 0, nil)
	if added != 2 {
		t.Fatalf("added %d after cluster crash, want 2 (c0 only)", added)
	}
	for _, n := range g.Nodes() {
		if n.Cluster() == "c1" {
			t.Fatalf("node revived in crashed cluster: %s", n.ID())
		}
	}
}

func TestFutureAccessors(t *testing.T) {
	f := &Future{}
	if f.Done() || f.Value() != nil || f.Err() != nil || f.Int() != 0 || f.Float() != 0 {
		t.Fatal("zero future should be empty")
	}
	if !f.complete(7, nil) {
		t.Fatal("first complete failed")
	}
	if f.complete(9, nil) {
		t.Fatal("duplicate complete succeeded")
	}
	if f.Int() != 7 || f.Float() != 7 {
		t.Fatalf("accessors: %d %f", f.Int(), f.Float())
	}
	f.Wait() // already done: returns immediately
	f2 := &Future{}
	go func() {
		time.Sleep(20 * time.Millisecond)
		f2.complete(1.5, nil)
	}()
	f2.Wait()
	if f2.Float() != 1.5 {
		t.Fatalf("Float = %v", f2.Float())
	}
}
