package satin

import "repro/internal/wirefmt"

// Binary codecs for the runtime protocol's control frames (ISSUE 7):
// the fixed-shape fields are hand-encoded with wirefmt primitives, and
// the open-ended user payloads — Task values and task results — ride
// inside as length-prefixed gob blobs. Gob's type registry is exactly
// the right tool for those, and embedding them keeps
// Register/RegisterValue the only user-facing registration API.

func (m *stealMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, string(m.Thief))
	b = wirefmt.AppendString(b, string(m.Cluster))
	b = wirefmt.AppendUvarint(b, m.Seq)
	return b, nil
}

func (m *stealMsg) DecodeWire(r *wirefmt.Reader) error {
	m.Thief = NodeID(r.String())
	m.Cluster = ClusterID(r.String())
	m.Seq = r.Uvarint()
	return r.Err()
}

// jobMsg never travels alone — it nests inside steal replies and
// returned jobs — but implementing Frame directly keeps the containers
// one-line delegations.
func (m *jobMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.ID)
	b = wirefmt.AppendString(b, string(m.Owner))
	return wirefmt.AppendGob(b, m.Task)
}

func (m *jobMsg) DecodeWire(r *wirefmt.Reader) error {
	m.ID = r.Uvarint()
	m.Owner = NodeID(r.String())
	var v any
	if err := r.Gob(&v); err != nil {
		return err
	}
	if v != nil {
		t, ok := v.(Task)
		if !ok {
			r.Fail("job payload does not implement Task")
			return r.Err()
		}
		m.Task = t
	}
	return r.Err()
}

func (m *stealReplyMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Seq)
	b = wirefmt.AppendBool(b, m.HasJob)
	return m.Job.AppendWire(b)
}

func (m *stealReplyMsg) DecodeWire(r *wirefmt.Reader) error {
	m.Seq = r.Uvarint()
	m.HasJob = r.Bool()
	return m.Job.DecodeWire(r)
}

func (m *resultMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.ID)
	var err error
	if b, err = wirefmt.AppendGob(b, m.Value); err != nil {
		return nil, err
	}
	return wirefmt.AppendString(b, m.Err), nil
}

func (m *resultMsg) DecodeWire(r *wirefmt.Reader) error {
	m.ID = r.Uvarint()
	if err := r.Gob(&m.Value); err != nil {
		return err
	}
	m.Err = r.String()
	return r.Err()
}

func (m *holdingMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.ID)
	b = wirefmt.AppendString(b, string(m.Holder))
	return b, nil
}

func (m *holdingMsg) DecodeWire(r *wirefmt.Reader) error {
	m.ID = r.Uvarint()
	m.Holder = NodeID(r.String())
	return r.Err()
}

func (m *returnJobMsg) AppendWire(b []byte) ([]byte, error) {
	return m.Job.AppendWire(b)
}

func (m *returnJobMsg) DecodeWire(r *wirefmt.Reader) error {
	return m.Job.DecodeWire(r)
}
