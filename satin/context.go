package satin

import (
	"errors"
	"time"

	"repro/internal/metrics"
)

// errNodeStopped unblocks Sync on a killed node; the unfinished work is
// recomputed by its owners.
var errNodeStopped = errors.New("satin: node stopped")

// Context is a task's handle to the runtime during execution. Each
// task execution gets its own Context; Spawn/Sync pairs express the
// divide-and-conquer structure exactly as Satin's spawn/sync
// annotations do.
type Context struct {
	node      *Node
	frame     []*Future
	benchMode bool // benchmark runs execute spawns inline, unstealable
}

// NodeID returns the executing node's identity.
func (c *Context) NodeID() NodeID { return c.node.cfg.ID }

// Cluster returns the executing node's site.
func (c *Context) Cluster() ClusterID { return c.node.cfg.Cluster }

// Spawn submits t for potentially-parallel execution and returns its
// future. The job lands on this node's deque; idle peers may steal it.
// Results are valid after the next Sync.
func (c *Context) Spawn(t Task) *Future {
	if c.benchMode {
		// The speed benchmark must measure THIS processor: execute
		// inline instead of exposing work to thieves.
		fut := &Future{}
		val, err := safeExecute(t, &Context{node: c.node, benchMode: true})
		fut.complete(val, err)
		c.frame = append(c.frame, fut)
		return fut
	}
	fut := c.node.spawnJob(t)
	c.frame = append(c.frame, fut)
	return fut
}

// Sync blocks until every task spawned through this context since the
// previous Sync has completed. While waiting, the worker executes
// other ready jobs (work-first) and steals — the node is never parked
// while work exists anywhere. Sync returns the first error among the
// children.
func (c *Context) Sync() error {
	n := c.node
	for {
		if n.Stopped() {
			// The node was killed mid-execution: unblock so the worker
			// can exit; the result goes nowhere (peers recompute).
			return errNodeStopped
		}
		allDone := true
		for _, f := range c.frame {
			if !f.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			var firstErr error
			for _, f := range c.frame {
				if err := f.Err(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			c.frame = c.frame[:0]
			return firstErr
		}
		if j, ok := n.popNewest(); ok {
			n.executeJob(j)
			// Re-enter busy: we are still inside the parent task.
			n.enterState(int(metrics.Busy))
			continue
		}
		if j, ok := n.trySteal(); ok {
			n.executeJob(j)
			n.enterState(int(metrics.Busy))
			continue
		}
		n.waitForWork(2 * time.Millisecond)
		n.enterState(int(metrics.Busy))
	}
}
