package satin

import (
	"testing"
	"time"
)

// tspawnN spawns N trivial children and syncs — the spawn/sync hot
// path the lock-free deque exists for.
type tspawnN struct{ N int }

func (s tspawnN) Execute(ctx *Context) (any, error) {
	for i := 0; i < s.N; i++ {
		ctx.Spawn(tnop{})
	}
	return s.N, ctx.Sync()
}

func init() { Register(tspawnN{}) }

// BenchmarkSpawnSync measures end-to-end spawn+execute+sync throughput
// on a single node: one op is one task spawning 256 children. The
// deque push/pop on this path is lock-free; before the refactor every
// spawn and pop went through the node's big mutex.
func BenchmarkSpawnSync(b *testing.B) {
	g, err := NewGrid(GridConfig{
		Clusters: []ClusterSpec{{Name: "c0", Nodes: 1}},
		Registry: fastReg(),
		Node:     NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		b.Fatal(err)
	}
	n := nodes[0]
	if _, err := n.Run(tspawnN{N: 1}); err != nil { // warm up
		b.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Run(tspawnN{N: 256}); err != nil {
			b.Fatal(err)
		}
	}
}
