package satin

import (
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/transport"
)

// The runtime over real TCP sockets: a hub, a registry and three nodes
// exchanging gob-encoded jobs and results through the loopback
// interface — the deployment mode for nodes in separate processes.
func TestSatinOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	fab := transport.NewTCP(hub.Addr())

	srv, err := registry.NewServer(fab, fastReg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var nodes []*Node
	for _, id := range []NodeID{"tcp/00", "tcp/01", "tcp/02"} {
		n, err := StartNode(NodeConfig{
			ID:                id,
			Cluster:           "tcp",
			Fabric:            fab,
			Registry:          fastReg(),
			LocalStealTimeout: 200 * time.Millisecond,
			WANStealTimeout:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Kill()
		}
	}()

	val, err := nodes[0].Run(tfib{N: 16, Leaf: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(16) {
		t.Fatalf("fib(16) over TCP = %v, want %d", val, fibLeaves(16))
	}
	// Work should have crossed the sockets.
	moved := 0
	for _, n := range nodes[1:] {
		if n.Report().BusySec > 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no work crossed the TCP fabric")
	}
}
