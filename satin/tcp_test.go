package satin

import (
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/transport"
)

// The runtime over real TCP sockets: a hub, a registry and three nodes
// exchanging gob-encoded jobs and results through the loopback
// interface — the deployment mode for nodes in separate processes.
func TestSatinOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	fab := transport.NewTCP(hub.Addr())

	srv, err := registry.NewServer(fab, fastReg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var nodes []*Node
	for _, id := range []NodeID{"tcp/00", "tcp/01", "tcp/02"} {
		n, err := StartNode(NodeConfig{
			ID:                id,
			Cluster:           "tcp",
			Fabric:            fab,
			Registry:          fastReg(),
			LocalStealTimeout: 200 * time.Millisecond,
			WANStealTimeout:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Kill()
		}
	}()

	val, err := nodes[0].Run(tfib{N: 16, Leaf: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(16) {
		t.Fatalf("fib(16) over TCP = %v, want %d", val, fibLeaves(16))
	}
	// Work should have crossed the sockets.
	moved := 0
	for _, n := range nodes[1:] {
		if n.Report().BusySec > 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no work crossed the TCP fabric")
	}
}

// A connection reset mid-message must surface as a node failure — the
// registry declares the victim dead, its orphaned jobs are recomputed —
// never as a hang. The hub kills both of the victim's sockets (work
// protocol and registry heartbeat) with linger disabled, the abrupt
// way a crashed process or a mid-path firewall drops a grid connection.
func TestChaosTCPConnectionReset(t *testing.T) {
	hub, err := transport.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	fab := transport.NewTCP(hub.Addr())

	srv, err := registry.NewServer(fab, fastReg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var nodes []*Node
	for _, id := range []NodeID{"tcp/00", "tcp/01", "tcp/02"} {
		n, err := StartNode(NodeConfig{
			ID:                id,
			Cluster:           "tcp",
			Fabric:            fab,
			Registry:          fastReg(),
			LocalStealTimeout: 200 * time.Millisecond,
			WANStealTimeout:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Kill()
		}
	}()

	fut := nodes[0].Submit(tfib{N: 18, Leaf: 500 * time.Microsecond})
	time.Sleep(100 * time.Millisecond) // let work spread onto the victim

	// Reset both of tcp/02's connections mid-computation.
	if !hub.DropEndpoint("satin:tcp/02") {
		t.Fatal("victim work endpoint was not connected")
	}
	hub.DropEndpoint("reg:tcp/02")

	done := make(chan struct{})
	go func() {
		fut.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("computation hung after connection reset")
	}
	val, err := fut.Result()
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != fibLeaves(18) {
		t.Fatalf("fib(18) after reset = %v, want %d (lost orphans?)", val, fibLeaves(18))
	}

	// The reset must have surfaced as a node failure: the registry
	// declares tcp/02 dead once its heartbeats stop arriving.
	deadline := time.Now().Add(5 * time.Second)
	for {
		present := false
		for _, m := range srv.Members() {
			if m.ID == "tcp/02" {
				present = true
			}
		}
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registry never declared the reset node dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
