package satin

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestLoadStretchSurvivesSnapshots is the regression test for the
// accounting race where enterState computed the load stretch from the
// fold origin (stateSince) that a concurrent snapshot() advances: on a
// frequently-monitored node the stretch shrank to (time since last
// report) and the emulated competing load silently vanished — the
// saved wall time leaked into idle. The stretch must derive from the
// true state entry time, which snapshots never touch.
func TestLoadStretchSurvivesSnapshots(t *testing.T) {
	var s statsTracker
	s.init(&NodeConfig{ID: "n0", Cluster: "c0"})
	s.setLoad(4)

	const work = 40 * time.Millisecond

	// A monitoring loop snapshotting every 5ms — far more often than
	// the paper's period, to make the race deterministic in effect.
	var mu sync.Mutex
	var busy float64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				rep := s.snapshot()
				mu.Lock()
				busy += rep.BusySec
				mu.Unlock()
			}
		}
	}()

	s.enterState(int(metrics.Busy))
	time.Sleep(work) // the "task"
	s.enterState(stateIdle)

	close(stop)
	wg.Wait()
	rep := s.snapshot()
	busy += rep.BusySec

	// With load 4 the 40ms of work must be stretched to ~200ms of
	// accounted busy time. The racy code accounted ~40ms work plus a
	// stretch of only ~(snapshot interval)*4 ≈ 20ms, i.e. ~60-70ms
	// total. 140ms separates the two regimes with a wide margin for
	// scheduler jitter.
	want := 0.140
	if busy < want {
		t.Fatalf("accounted busy %.3fs, want >= %.3fs: load stretch was lost to concurrent snapshots", busy, want)
	}
}

// TestGridEpochPerGrid is the regression test for the process-wide
// report clock: every grid in a process shared one package-level
// startTime, so a grid created later reported periods whose bounds
// started at the age of the process, not the age of the grid — and two
// grids' timelines could never be compared. Each grid must stamp its
// own epoch.
func TestGridEpochPerGrid(t *testing.T) {
	gridA, err := NewGrid(GridConfig{
		Clusters: []ClusterSpec{{Name: "a0", Nodes: 1}},
		Registry: fastReg(),
		Node:     NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gridA.Close()
	if _, err := gridA.StartNodes("a0", 1); err != nil {
		t.Fatal(err)
	}

	// Age the process past the threshold before the second grid exists.
	time.Sleep(250 * time.Millisecond)

	gridB, err := NewGrid(GridConfig{
		Clusters: []ClusterSpec{{Name: "b0", Nodes: 1}},
		Registry: fastReg(),
		Node:     NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gridB.Close()
	nodes, err := gridB.StartNodes("b0", 1)
	if err != nil {
		t.Fatal(err)
	}

	rep := nodes[0].Report()
	// On grid B's own timeline its first report ends moments after 0.
	// On the shared process clock it would end at >= 0.25.
	if rep.End >= 0.2 {
		t.Fatalf("first report of a fresh grid ends at t=%.3fs: node clock is process-wide, not per grid", rep.End)
	}
}

// TestReportSendFailureCounted pins down that a node whose statistics
// reports cannot reach the coordinator says so: the satin/report_err
// counter moves (and the loop keeps running instead of silently
// dropping every period on the floor).
func TestReportSendFailureCounted(t *testing.T) {
	before := obs.Default.Counter("satin/report_err").Value()
	g, err := NewGrid(GridConfig{
		Clusters: []ClusterSpec{{Name: "c0", Nodes: 1}},
		Registry: fastReg(),
		Node: NodeConfig{
			Registry:      fastReg(),
			Coordinator:   "no-such-endpoint",
			MonitorPeriod: 20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.StartNodes("c0", 1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if obs.Default.Counter("satin/report_err").Value() > before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("satin/report_err never moved: failed coordinator sends are dropped silently")
}
