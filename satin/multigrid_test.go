package satin

import (
	"sync"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/topo"
)

// TestTwoGridsSharedPool runs two grids in one process over one shared
// arbiter — the multi-job service's deployment shape. Each grid has
// its own fabric, registry and report epoch; only capacity is shared.
func TestTwoGridsSharedPool(t *testing.T) {
	arb, err := pool.New(topo.Topology{Clusters: []topo.Cluster{
		{ID: "fs0", Nodes: 4, Speed: 1, LANLatency: 5e-5, LANBandwidth: 1e8,
			WANLatency: 5e-4, UplinkBandwidth: 5e7},
	}}, pool.Config{})
	if err != nil {
		t.Fatal(err)
	}

	newGrid := func(client *pool.Client) *Grid {
		g, err := NewGrid(GridConfig{
			Clusters:   []ClusterSpec{{Name: "fs0", Nodes: 4}},
			Pool:       client,
			Registry:   fastReg(),
			LANLatency: 50 * time.Microsecond,
			WANLatency: time.Millisecond,
			Node: NodeConfig{
				Registry:          fastReg(),
				LocalStealTimeout: 100 * time.Millisecond,
				WANStealTimeout:   500 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(g.Close)
		return g
	}
	c1, _ := arb.Register("g1", 1, 0)
	c2, _ := arb.Register("g2", 1, 0)
	g1 := newGrid(c1)
	time.Sleep(5 * time.Millisecond)
	g2 := newGrid(c2)

	// Per-grid report epochs must be independent: each grid anchors its
	// own timeline when it is built, never a process-wide one.
	if g1.cfg.Node.Epoch.IsZero() || g2.cfg.Node.Epoch.IsZero() {
		t.Fatal("grids must anchor a report epoch")
	}
	if !g2.cfg.Node.Epoch.After(g1.cfg.Node.Epoch) {
		t.Fatalf("epochs not per-grid: g1 %v, g2 %v", g1.cfg.Node.Epoch, g2.cfg.Node.Epoch)
	}

	n1, err := g1.StartNodes("fs0", 2)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := g2.StartNodes("fs0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if free := arb.Free(); free != 0 {
		t.Fatalf("4 nodes across two grids should exhaust the pool, %d free", free)
	}

	// Both computations complete concurrently, each within its own grid.
	var wg sync.WaitGroup
	results := make([]any, 2)
	errs := make([]error, 2)
	for i, master := range []*Node{n1[0], n2[0]} {
		wg.Add(1)
		go func(i int, m *Node) {
			defer wg.Done()
			results[i], errs[i] = m.Run(tfib{N: 15})
		}(i, master)
	}
	wg.Wait()
	want := fibLeaves(15)
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("grid %d: %v", i+1, errs[i])
		}
		if results[i].(int) != want {
			t.Fatalf("grid %d: got %v, want %d — grids cross-contaminated", i+1, results[i], want)
		}
	}

	// Node sets never overlap: the shared pool hands each node to
	// exactly one grid.
	for _, n := range g1.Nodes() {
		if g2.Node(n.ID()) != nil {
			t.Fatalf("node %s appears in both grids", n.ID())
		}
	}

	// Tearing one grid down returns its capacity to the shared pool for
	// the other to claim.
	g1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for arb.Free() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if arb.Free() < 2 {
		t.Fatalf("closed grid's nodes not back in the pool: %d free", arb.Free())
	}
	if _, err := g2.StartNodes("fs0", 2); err != nil {
		t.Fatalf("surviving grid cannot claim freed capacity: %v", err)
	}
	if g2.NodeCount() != 4 {
		t.Fatalf("g2 should now hold 4 nodes, has %d", g2.NodeCount())
	}
}
