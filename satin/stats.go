package satin

import (
	"log"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/transport/wire"
)

// worker states (metrics buckets plus implicit idle)
const stateIdle = -1

// Process-global observability instruments fed by every node's report
// loop. Queue depth is also published per node as a gauge so the
// endpoint shows the imbalance CRS is supposed to erase.
var (
	obsReportErr  = obs.Default.Counter("satin/report_err")
	obsReportSent = obs.Default.Counter("satin/report_sent")
	obsQueueDepth = obs.Default.Histogram("satin/queue_depth", obs.DepthBuckets)
)

// statsTracker is the node's accounting component: the per-period
// metric buckets, the emulated competing load, and the benchmark
// pacing flag. It has its own narrow lock so that snapshotting from
// the report loop never serialises against job ownership under n.mu.
type statsTracker struct {
	epoch time.Time // monotonic origin for this node's report timeline

	mu           sync.Mutex
	acc          *metrics.Accumulator
	load         float64
	curState     int
	stateSince   time.Time // fold origin: advanced by every fold (enterState AND snapshot)
	stateEntered time.Time // true state entry: advanced only by enterState
	benchPending bool
}

func (s *statsTracker) init(cfg *NodeConfig) {
	s.epoch = cfg.Epoch
	if s.epoch.IsZero() {
		s.epoch = time.Now()
	}
	s.acc = metrics.NewAccumulator(cfg.ID, cfg.Cluster, 0)
	s.curState = stateIdle
	now := time.Now()
	s.stateSince = now
	s.stateEntered = now
	s.benchPending = cfg.Bench != nil
}

// monotonic is the node's report clock: seconds since its grid epoch.
func (s *statsTracker) monotonic() float64 { return time.Since(s.epoch).Seconds() }

func (s *statsTracker) setLoad(f float64) {
	s.mu.Lock()
	s.load = f
	s.mu.Unlock()
}

func (s *statsTracker) benchDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.benchPending
}

func (s *statsTracker) clearBench() {
	s.mu.Lock()
	s.benchPending = false
	s.mu.Unlock()
}

func (s *statsTracker) armBench() {
	s.mu.Lock()
	s.benchPending = true
	s.mu.Unlock()
}

func (s *statsTracker) setSpeed(speed float64) {
	s.mu.Lock()
	s.acc.SetSpeed(speed)
	s.mu.Unlock()
}

func (s *statsTracker) addInterBytes(b float64) {
	s.mu.Lock()
	s.acc.AddInterBytes(b)
	s.mu.Unlock()
}

// enterState switches the accounting bucket. A competing load factor
// stretches busy and benchmark intervals by sleeping, emulating
// time-sharing with the load.
//
// The stretch length derives from stateEntered, never stateSince: a
// concurrent snapshot() folds the in-progress interval and advances
// stateSince, and computing the sleep from it would silently shrink
// the stretch to (time since last report) — on a frequently-monitored
// node the emulated load all but vanished and the saved wall time
// leaked into idle. Folding still uses stateSince so time is never
// double-counted against snapshot's folds.
func (s *statsTracker) enterState(next int) {
	s.mu.Lock()
	now := time.Now()
	stretched := now.Sub(s.stateEntered)
	if s.load > 0 && stretched > 0 &&
		(s.curState == int(metrics.Busy) || s.curState == int(metrics.Bench)) {
		// Stretch the interval by sleeping outside the lock, then fold
		// the stretched elapsed time in a second critical section.
		load := s.load
		s.mu.Unlock()
		time.Sleep(time.Duration(float64(stretched) * load))
		s.mu.Lock()
		now = time.Now()
	}
	if el := now.Sub(s.stateSince); s.curState >= 0 && el > 0 {
		s.acc.Add(metrics.Bucket(s.curState), el.Seconds())
	}
	s.curState = next
	s.stateSince = now
	s.stateEntered = now
	s.mu.Unlock()
}

// snapshot folds the in-progress state into the period and returns the
// report. It advances the fold origin (stateSince) but NOT the state
// entry time: an in-progress busy stretch keeps its full length.
func (s *statsTracker) snapshot() metrics.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	el := now.Sub(s.stateSince).Seconds()
	if s.curState >= 0 && el > 0 {
		s.acc.Add(metrics.Bucket(s.curState), el)
	}
	s.stateSince = now
	return s.acc.Snapshot(s.monotonic())
}

// Report snapshots the node's statistics for the elapsed period.
func (n *Node) Report() metrics.Report { return n.stats.snapshot() }

// monotonicSeconds is the node's clock for the steal engine and the
// report timeline: seconds since the node's grid epoch (NodeConfig.
// Epoch), not since some process-wide instant — two grids in one
// process must not share a timeline.
func (n *Node) monotonicSeconds() float64 { return n.stats.monotonic() }

// queueDepth is the node's current backlog: deque plus inbox.
func (n *Node) queueDepth() int {
	return n.jobs.Len() + int(n.inbox.size.Load())
}

// reportLoop pushes per-period statistics to the coordinator. Send
// failures are counted (satin/report_err) and logged once per failure
// streak — a coordinator that was evicted or crashed must not silently
// blind the adaptation loop.
func (n *Node) reportLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.MonitorPeriod)
	defer ticker.Stop()
	gauge := obs.Default.Gauge("satin/queue_depth/" + string(n.cfg.ID))
	failing := false // reportLoop-goroutine-local; logged on transitions
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			depth := n.queueDepth()
			gauge.Set(float64(depth))
			obsQueueDepth.Observe(float64(depth))
			if err := wire.Send(n.wc, n.cfg.Coordinator, n.Report()); err != nil {
				obsReportErr.Inc()
				if !failing {
					failing = true
					log.Printf("satin: node %s: statistics report to %q failed: %v", n.cfg.ID, n.cfg.Coordinator, err)
				}
			} else {
				obsReportSent.Inc()
				if failing {
					failing = false
					log.Printf("satin: node %s: statistics reports to %q recovered", n.cfg.ID, n.cfg.Coordinator)
				}
			}
		}
	}
}
