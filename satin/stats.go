package satin

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport/wire"
)

// worker states (metrics buckets plus implicit idle)
const stateIdle = -1

// statsTracker is the node's accounting component: the per-period
// metric buckets, the emulated competing load, and the benchmark
// pacing flag. It has its own narrow lock so that snapshotting from
// the report loop never serialises against job ownership under n.mu.
type statsTracker struct {
	mu           sync.Mutex
	acc          *metrics.Accumulator
	load         float64
	curState     int
	stateSince   time.Time
	benchPending bool
}

func (s *statsTracker) init(cfg *NodeConfig) {
	s.acc = metrics.NewAccumulator(cfg.ID, cfg.Cluster, 0)
	s.curState = stateIdle
	s.stateSince = time.Now()
	s.benchPending = cfg.Bench != nil
}

func (s *statsTracker) setLoad(f float64) {
	s.mu.Lock()
	s.load = f
	s.mu.Unlock()
}

func (s *statsTracker) benchDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.benchPending
}

func (s *statsTracker) clearBench() {
	s.mu.Lock()
	s.benchPending = false
	s.mu.Unlock()
}

func (s *statsTracker) armBench() {
	s.mu.Lock()
	s.benchPending = true
	s.mu.Unlock()
}

func (s *statsTracker) setSpeed(speed float64) {
	s.mu.Lock()
	s.acc.SetSpeed(speed)
	s.mu.Unlock()
}

func (s *statsTracker) addInterBytes(b float64) {
	s.mu.Lock()
	s.acc.AddInterBytes(b)
	s.mu.Unlock()
}

// enterState switches the accounting bucket. A competing load factor
// stretches busy and benchmark intervals by sleeping, emulating
// time-sharing with the load.
func (s *statsTracker) enterState(next int) {
	s.mu.Lock()
	now := time.Now()
	el := now.Sub(s.stateSince)
	if s.load > 0 && el > 0 &&
		(s.curState == int(metrics.Busy) || s.curState == int(metrics.Bench)) {
		// Stretch the interval by sleeping outside the lock, then fold
		// the stretched elapsed time in a second critical section.
		load := s.load
		s.mu.Unlock()
		time.Sleep(time.Duration(float64(el) * load))
		s.mu.Lock()
		now = time.Now()
		el = now.Sub(s.stateSince)
	}
	if s.curState >= 0 && el > 0 {
		s.acc.Add(metrics.Bucket(s.curState), el.Seconds())
	}
	s.curState = next
	s.stateSince = now
	s.mu.Unlock()
}

// snapshot folds the in-progress state into the period and returns the
// report.
func (s *statsTracker) snapshot() metrics.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	el := now.Sub(s.stateSince).Seconds()
	if s.curState >= 0 && el > 0 {
		s.acc.Add(metrics.Bucket(s.curState), el)
	}
	s.stateSince = now
	return s.acc.Snapshot(monotonicSeconds())
}

// Report snapshots the node's statistics for the elapsed period.
func (n *Node) Report() metrics.Report { return n.stats.snapshot() }

var startTime = time.Now()

func monotonicSeconds() float64 { return time.Since(startTime).Seconds() }

// reportLoop pushes per-period statistics to the coordinator.
func (n *Node) reportLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.MonitorPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			wire.Send(n.wc, n.cfg.Coordinator, n.Report())
		}
	}
}
