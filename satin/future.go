package satin

import "sync"

// Future is the eventual result of a spawned task. It resolves when the
// task completes locally or its result message arrives from the thief
// that executed it. Access the value only after the owning frame's
// Sync returned (or after Wait for root tasks).
type Future struct {
	mu     sync.Mutex
	done   bool
	val    any
	err    error
	notify chan struct{}
}

func (f *Future) complete(val any, err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return false // duplicate result (e.g. recomputation raced a late reply)
	}
	f.done = true
	f.val = val
	f.err = err
	if f.notify != nil {
		close(f.notify)
	}
	return true
}

// Wait blocks until the future resolves. Intended for root tasks
// submitted with Node.Submit; inside task code use Sync instead.
func (f *Future) Wait() {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	if f.notify == nil {
		f.notify = make(chan struct{})
	}
	ch := f.notify
	f.mu.Unlock()
	<-ch
}

// Done reports whether the result is available.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Result returns the value and error; valid after Sync.
func (f *Future) Result() (any, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.err
}

// Value returns the raw value (nil if errored or pending).
func (f *Future) Value() any {
	v, _ := f.Result()
	return v
}

// Err returns the task's error, if any.
func (f *Future) Err() error {
	_, err := f.Result()
	return err
}

// Int is a convenience accessor for integer-valued tasks.
func (f *Future) Int() int {
	if v, ok := f.Value().(int); ok {
		return v
	}
	return 0
}

// Float is a convenience accessor for float-valued tasks.
func (f *Future) Float() float64 {
	switch v := f.Value().(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return 0
}
