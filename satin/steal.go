package satin

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/steal"
	"repro/internal/transport/wire"
)

// Steal round-trip instruments, by attempt kind: "local" is the
// synchronous same-cluster attempt, "wan" a synchronous cross-cluster
// attempt (Random policy pays these in the idle path), "wan_async" the
// latency-hidden CRS wide-area slot. Timed around the full
// request/reply round trip including the emulated link.
var (
	obsStealRTT = map[string]*obs.Histogram{
		"local":     obs.Default.Histogram("satin/steal_rtt/local", obs.LatencyBuckets),
		"wan":       obs.Default.Histogram("satin/steal_rtt/wan", obs.LatencyBuckets),
		"wan_async": obs.Default.Histogram("satin/steal_rtt/wan_async", obs.LatencyBuckets),
	}
	obsStealOK = map[string]*obs.Counter{
		"local":     obs.Default.Counter("satin/steal_ok/local"),
		"wan":       obs.Default.Counter("satin/steal_ok/wan"),
		"wan_async": obs.Default.Counter("satin/steal_ok/wan_async"),
	}
	obsStealFail = map[string]*obs.Counter{
		"local":     obs.Default.Counter("satin/steal_fail/local"),
		"wan":       obs.Default.Counter("satin/steal_fail/wan"),
		"wan_async": obs.Default.Counter("satin/steal_fail/wan_async"),
	}
)

// StealPolicy selects the victim-selection algorithm. The policy
// itself lives in internal/steal — one kernel drives both this runtime
// and the internal/des simulator.
type StealPolicy = steal.Policy

const (
	// StealCRS is cluster-aware random stealing: one asynchronous
	// wide-area steal outstanding while synchronous local steals run —
	// Satin's algorithm, the default.
	StealCRS = steal.CRS
	// StealRandom picks victims uniformly from all nodes and steals
	// synchronously, paying the WAN round trip in the idle path — the
	// baseline CRS was invented to beat.
	StealRandom = steal.Random
)

// stealer is the node's thief side: the shared CRS policy engine plus
// the reply-waiter bookkeeping of the request/reply protocol. Its lock
// covers only the waiter map — victim selection locks inside the
// engine, and neither ever holds n.mu.
type stealer struct {
	eng *steal.Engine

	mu      sync.Mutex
	waiters map[uint64]chan bool
	nextSeq uint64
}

func (s *stealer) init(cfg *NodeConfig) {
	s.eng = steal.New(cfg.StealPolicy, cfg.ID, cfg.Cluster, steal.SeedFor(cfg.Seed, cfg.ID))
	s.waiters = make(map[uint64]chan bool)
}

func (s *stealer) addWaiter() (uint64, chan bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	ch := make(chan bool, 1)
	s.waiters[s.nextSeq] = ch
	return s.nextSeq, ch
}

func (s *stealer) dropWaiter(seq uint64) {
	s.mu.Lock()
	delete(s.waiters, seq)
	s.mu.Unlock()
}

func (s *stealer) replyArrived(seq uint64, got bool) {
	s.mu.Lock()
	ch := s.waiters[seq]
	s.mu.Unlock()
	if ch != nil {
		select {
		case ch <- got:
		default:
		}
	}
}

// trySteal runs one round of the steal policy: the engine picks
// victims from the current membership snapshot, this node contacts
// them. Under CRS the wide-area victim is contacted asynchronously
// (latency hidden behind the synchronous local attempt); under
// StealRandom the one victim is contacted synchronously wherever it
// sits, paying any WAN round trip in the idle path.
func (n *Node) trySteal() (jobMsg, bool) {
	d := n.stealer.eng.Next(n.monotonicSeconds(), n.members.stealables())
	if d.HasAsync {
		go n.wanSteal(d.Async.ID)
	}
	if !d.HasSync {
		return jobMsg{}, false
	}
	bucket, timeout, kind := metrics.Intra, n.cfg.LocalStealTimeout, "local"
	if d.SyncWide {
		bucket, timeout, kind = metrics.Inter, n.cfg.WANStealTimeout, "wan"
	}
	n.enterState(int(bucket))
	gotJob := n.stealFrom(d.Sync.ID, timeout, kind)
	n.stealer.eng.SyncDone(gotJob)
	n.enterState(stateIdle)
	if !gotJob {
		return jobMsg{}, false
	}
	// The reply handler adopted the job through the inbox (ownership
	// transfers there, never through a channel a timed-out waiter may
	// have abandoned); take the freshest entry.
	return n.popNewest()
}

// wanSteal runs the asynchronous wide-area steal: a successful job is
// adopted by the reply handler; here we only settle the engine's
// async slot CRS keys on.
func (n *Node) wanSteal(victim NodeID) {
	got := n.stealFrom(victim, n.cfg.WANStealTimeout, "wan_async")
	n.stealer.eng.AsyncDone(got)
	n.wakeUp()
}

// stealFrom sends one steal request and waits for the reply; it
// reports whether the victim granted a job (which the reply handler
// already adopted into the inbox). kind labels the attempt for the
// round-trip instruments ("local", "wan", "wan_async").
func (n *Node) stealFrom(victim NodeID, timeout time.Duration, kind string) bool {
	start := time.Now()
	got := func() bool {
		seq, ch := n.stealer.addWaiter()
		defer n.stealer.dropWaiter(seq)
		if err := wire.Send(n.wc, satinEP(victim), stealMsg{Thief: n.cfg.ID, Cluster: n.cfg.Cluster, Seq: seq}); err != nil {
			return false
		}
		select {
		case g := <-ch:
			return g
		case <-time.After(timeout):
			return false
		case <-n.stopCh:
			return false
		}
	}()
	obsStealRTT[kind].Observe(time.Since(start).Seconds())
	if got {
		obsStealOK[kind].Inc()
	} else {
		obsStealFail[kind].Inc()
	}
	return got
}

// onSteal serves a thief: take the oldest job (biggest subtree) off
// the top of the deque and ship it. The deque steal is lock-free —
// this handler never touches the worker's push/pop path; n.mu is
// taken only to read lifecycle flags and update job ownership.
func (n *Node) onSteal(sm stealMsg, _ wire.Meta) {
	reply := stealReplyMsg{Seq: sm.Seq}
	n.mu.Lock()
	serving := !n.stopped && !n.leaving
	n.mu.Unlock()
	if serving && !n.members.isDeparted(sm.Thief) {
		j, ok := n.jobs.Steal()
		if !ok {
			// Nothing on the deque: serve inbox arrivals the worker has
			// not drained yet (it may be pinned inside a long task).
			j, ok = n.inbox.steal()
		}
		if ok {
			reply.HasJob = true
			reply.Job = j
			if j.Owner == n.cfg.ID {
				n.setHolder(j.ID, sm.Thief)
			}
		}
	}
	if reply.HasJob && reply.Job.Owner != n.cfg.ID && reply.Job.Owner != sm.Thief {
		// Tell the third-party owner immediately where its job went:
		// if the thief dies before its own notification, the owner
		// must still know whom to watch for recomputation.
		wire.Send(n.wc, satinEP(reply.Job.Owner), holdingMsg{ID: reply.Job.ID, Holder: sm.Thief})
	}
	if err := wire.Send(n.wc, satinEP(sm.Thief), reply); err != nil {
		// Task type not registered for gob (or the thief is gone): hand
		// the job back to ourselves and fail the steal.
		if reply.HasJob {
			if reply.Job.Owner == n.cfg.ID {
				n.setHolder(reply.Job.ID, n.cfg.ID)
			}
			n.inbox.add(reply.Job)
			n.wakeUp()
		}
		wire.Send(n.wc, satinEP(sm.Thief), stealReplyMsg{Seq: sm.Seq})
	}
}

func (n *Node) onStealReply(sr stealReplyMsg, m wire.Meta) {
	n.countInterBytes(m)
	if sr.HasJob {
		// Adopt the job here, whatever happened to the waiter: a
		// reply that lost a race with the steal timeout must not
		// lose the job (its owner already recorded us as holder).
		n.mu.Lock()
		stopped := n.stopped
		n.mu.Unlock()
		if stopped {
			wire.Send(n.wc, satinEP(sr.Job.Owner), returnJobMsg{Job: sr.Job})
		} else {
			n.inbox.add(sr.Job)
			n.noteHolding(sr.Job)
			n.wakeUp()
		}
	}
	n.stealer.replyArrived(sr.Seq, sr.HasJob)
}
