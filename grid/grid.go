// Package grid is the simulation face of the library: it builds
// heterogeneous multi-cluster topologies (including the DAS-2 system
// of the paper's evaluation), describes iterative divide-and-conquer
// workloads, runs them on a deterministic discrete-event simulator
// with or without the adaptation coordinator, and ships the paper's
// six evaluation scenarios ready to reproduce.
//
// Quick start:
//
//	p := grid.Params{
//		Topo: grid.DAS2(),
//		Spec: grid.BarnesHut(100000, 30),
//		Seed: 42,
//		Initial: []grid.Alloc{{Cluster: "fs0", Count: 12}},
//	}
//	p.Mon = grid.DefaultMonitor()
//	th := grid.DefaultThresholds()
//	p.Adapt = &th
//	res, err := grid.Simulate(p)
//
// The per-iteration durations, coordinator periods and annotations in
// the Result are what the paper's Figures 3–7 plot.
package grid

import (
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/expt"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Topology types.
type (
	// Topology is a set of clusters joined by a WAN.
	Topology = topo.Topology
	// Cluster is one site: nodes, speeds, LAN, uplink.
	Cluster = topo.Cluster
	// NodeID identifies a processor.
	NodeID = core.NodeID
	// ClusterID identifies a site.
	ClusterID = core.ClusterID
)

// Workload types.
type (
	// Workload describes an iterative divide-and-conquer application.
	Workload = workload.Spec
)

// Simulation types.
type (
	// Params configures one simulated run.
	Params = des.Params
	// Result is everything a run produces.
	Result = des.Result
	// Alloc is part of an initial allocation.
	Alloc = des.Alloc
	// MonitorParams tunes monitoring and benchmarking.
	MonitorParams = des.MonitorParams
	// Injection disturbs the environment mid-run.
	Injection = des.Injection
	// IterRecord is one application iteration.
	IterRecord = des.IterRecord
	// PeriodRecord is one coordinator tick.
	PeriodRecord = des.PeriodRecord
	// Thresholds is the adaptation configuration (E_min/E_max, α β γ).
	Thresholds = core.Config
)

// Injection kinds.
const (
	// InjSetLoad puts a competing CPU load on nodes.
	InjSetLoad = des.InjSetLoad
	// InjShapeUplink changes a cluster's uplink bandwidth.
	InjShapeUplink = des.InjShapeUplink
	// InjCrash fails nodes abruptly.
	InjCrash = des.InjCrash
)

// Experiment types.
type (
	// Scenario is one experiment of the paper's evaluation.
	Scenario = expt.Scenario
	// Outcome holds a scenario's per-variant results.
	Outcome = expt.Outcome
	// Variant selects no-adapt / adaptive / monitor-only.
	Variant = expt.Variant
)

// Run variants.
const (
	// NoAdapt is the paper's "runtime 1".
	NoAdapt = expt.NoAdapt
	// Adaptive is "runtime 2".
	Adaptive = expt.Adaptive
	// MonitorOnly is "runtime 3".
	MonitorOnly = expt.MonitorOnly
)

// DAS2 returns the five-cluster Distributed ASCI Supercomputer 2.
func DAS2() Topology { return topo.DAS2() }

// BarnesHut returns the calibrated Barnes-Hut workload model.
func BarnesHut(nBodies, iterations int) Workload {
	return workload.BarnesHut(nBodies, iterations)
}

// VaryingParallelism scales a workload's per-iteration work.
func VaryingParallelism(base Workload, scale func(iter int) float64) Workload {
	return workload.VaryingParallelism(base, scale)
}

// DefaultMonitor returns the paper's monitoring setup (3-minute
// periods, ~3% benchmark budget).
func DefaultMonitor() MonitorParams { return des.DefaultMonitor() }

// DefaultThresholds returns the paper's adaptation thresholds.
func DefaultThresholds() Thresholds { return core.DefaultConfig() }

// Simulate executes one run on the discrete-event simulator.
func Simulate(p Params) (*Result, error) { return des.Run(p) }

// Scenarios returns the paper's evaluation scenarios (1, 2a–2c, 3–6)
// plus the varying-parallelism extension.
func Scenarios() []Scenario { return expt.All() }

// ScenarioByID finds one scenario.
func ScenarioByID(id string) (Scenario, bool) { return expt.ByID(id) }

// RunScenario executes a scenario in the given variants (all three
// when none are named).
func RunScenario(sc Scenario, variants ...Variant) (*Outcome, error) {
	return expt.Run(sc, variants...)
}
