package grid_test

import (
	"testing"

	"repro/grid"
)

func TestSimulateQuickstart(t *testing.T) {
	p := grid.Params{
		Topo: grid.DAS2(),
		Spec: grid.BarnesHut(100000, 5),
		Seed: 1,
		Initial: []grid.Alloc{
			{Cluster: "fs0", Count: 12},
			{Cluster: "fs1", Count: 12},
		},
	}
	res, err := grid.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Iterations) != 5 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSimulateAdaptive(t *testing.T) {
	p := grid.Params{
		Topo:    grid.DAS2(),
		Spec:    grid.BarnesHut(100000, 30),
		Seed:    1,
		Initial: []grid.Alloc{{Cluster: "fs0", Count: 8}},
	}
	p.Mon = grid.DefaultMonitor()
	th := grid.DefaultThresholds()
	p.Adapt = &th
	res, err := grid.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalNodes <= 8 {
		t.Fatalf("adaptive run did not grow: final=%d", res.FinalNodes)
	}
	if len(res.Periods) == 0 {
		t.Fatal("no coordinator periods")
	}
}

func TestSimulateRejectsBadParams(t *testing.T) {
	if _, err := grid.Simulate(grid.Params{}); err == nil {
		t.Fatal("empty params accepted")
	}
	p := grid.Params{
		Topo:    grid.DAS2(),
		Spec:    grid.BarnesHut(1000, 3),
		Initial: []grid.Alloc{{Cluster: "nope", Count: 3}},
	}
	if _, err := grid.Simulate(p); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestScenarioRegistry(t *testing.T) {
	scs := grid.Scenarios()
	if len(scs) < 8 {
		t.Fatalf("got %d scenarios, want >= 8 (1, 2a-2c, 3-7)", len(scs))
	}
	ids := map[string]bool{}
	for _, sc := range scs {
		if sc.ID == "" || sc.Build == nil {
			t.Errorf("malformed scenario %+v", sc.ID)
		}
		if ids[sc.ID] {
			t.Errorf("duplicate scenario id %s", sc.ID)
		}
		ids[sc.ID] = true
	}
	for _, want := range []string{"1", "2a", "2b", "2c", "3", "4", "5", "6"} {
		if !ids[want] {
			t.Errorf("missing scenario %s", want)
		}
	}
	if _, ok := grid.ScenarioByID("4"); !ok {
		t.Error("ScenarioByID(4) failed")
	}
	if _, ok := grid.ScenarioByID("zzz"); ok {
		t.Error("ScenarioByID(zzz) found something")
	}
}

func TestRunScenarioSingleVariant(t *testing.T) {
	sc, _ := grid.ScenarioByID("1")
	// Shorten: rebuild with fewer iterations via the scenario's own
	// Build, then run just one variant for speed.
	out, err := grid.RunScenario(sc, grid.NoAdapt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[grid.NoAdapt] == nil || !out.Results[grid.NoAdapt].Completed {
		t.Fatalf("outcome = %+v", out.Results)
	}
	if out.Results[grid.Adaptive] != nil {
		t.Error("unrequested variant ran")
	}
}

func TestVaryingParallelism(t *testing.T) {
	w := grid.VaryingParallelism(grid.BarnesHut(100000, 10), func(i int) float64 {
		if i >= 5 {
			return 0.5
		}
		return 1
	})
	if w.IterWork(0) <= w.IterWork(7) {
		t.Fatalf("scaling not applied: %v vs %v", w.IterWork(0), w.IterWork(7))
	}
}
