#!/usr/bin/env bash
# End-to-end smoke of the multi-job grid service: start satind, submit
# two jobs concurrently through the client, assert both results come
# back correct and the observability endpoint exposes per-job
# counters, then drain the daemon with SIGTERM — checking the drain
# flushes BOTH the event and sample timelines and that the durable
# record store replays the adaptive job's trajectory.
set -euo pipefail

ADDR=127.0.0.1:17711
OBS=127.0.0.1:17712
BIN=${BIN:-/tmp/satind-smoke}
LOG=${LOG:-/tmp/satind-smoke.log}
DB=${DB:-/tmp/satind-smoke.db}

go build -o "$BIN" ./cmd/satind
rm -f "$DB"

"$BIN" -addr "$ADDR" -clusters 2 -nodes 3 -obs-addr "$OBS" \
  -record-db "$DB" -record-run smoke > "$LOG" 2>&1 &
DAEMON=$!
trap 'kill -9 $DAEMON 2>/dev/null || true' EXIT

# Wait for the daemon's listeners; the hub port comes up last (after
# the obs endpoint and the record store open), so waiting on it covers
# all three.
for i in $(seq 1 50); do
  timeout 1 bash -c "exec 3<>/dev/tcp/${ADDR%:*}/${ADDR#*:}" 2>/dev/null && break
  sleep 0.2
done
curl -fsS "http://$OBS/metrics" > /dev/null

J1=$("$BIN" submit -addr "$ADDR" -app fib -size 24 -iters 2 -min-nodes 3 -adapt)
J2=$("$BIN" submit -addr "$ADDR" -app nqueens -size 9)
echo "submitted: $J1 $J2"

R1=$("$BIN" result -addr "$ADDR" -id "$J1" -wait)
R2=$("$BIN" result -addr "$ADDR" -id "$J2" -wait)
echo "$R1"
echo "$R2"
grep -q "done (ok)" <<<"$R1"
grep -q "done (ok)" <<<"$R2"

# Per-job observability: each job's iteration counter is its own
# series in the Prometheus exposition.
curl -fsS "http://$OBS/metrics" > /tmp/satind-metrics.txt
grep -q "repro_counter{name=\"job/$J1/iterations\"} 2" /tmp/satind-metrics.txt
grep -q "repro_counter{name=\"job/$J2/iterations\"} 1" /tmp/satind-metrics.txt
grep -q 'repro_counter{name="job/state/done"} 2' /tmp/satind-metrics.txt

# Graceful drain: SIGTERM must exit 0 after flushing.
kill -TERM $DAEMON
for i in $(seq 1 50); do
  kill -0 $DAEMON 2>/dev/null || break
  sleep 0.2
done
if kill -0 $DAEMON 2>/dev/null; then
  echo "satind did not exit after SIGTERM" >&2
  exit 1
fi
trap - EXIT

# The SIGTERM drain must flush BOTH timelines: event lines (kind) and
# sample lines (counters snapshots) — losing the sample series on
# shutdown was a real bug.
grep -q '"kind":"job-state"' "$LOG"
grep -q '"counters"' "$LOG"

# Durable store: the adaptive job's trajectory must replay from disk
# after the daemon is gone.
go build -o /tmp/replay-smoke-bin ./cmd/replay
/tmp/replay-smoke-bin -db "$DB" | grep -q smoke
/tmp/replay-smoke-bin -db "$DB" -run smoke -job "$J1" -periods > /tmp/satind-replayed.txt
grep -q '^time_s' /tmp/satind-replayed.txt
test "$(wc -l < /tmp/satind-replayed.txt)" -ge 2   # header + >=1 period
echo "replayed $J1: $(($(wc -l < /tmp/satind-replayed.txt) - 1)) periods from $DB"
echo "satind smoke ok"
