#!/usr/bin/env bash
# End-to-end smoke of the multi-job grid service: start satind, submit
# two jobs concurrently through the client, assert both results come
# back correct and the observability endpoint exposes per-job
# counters, then drain the daemon with SIGTERM.
set -euo pipefail

ADDR=127.0.0.1:17711
OBS=127.0.0.1:17712
BIN=${BIN:-/tmp/satind-smoke}
LOG=${LOG:-/tmp/satind-smoke.log}

go build -o "$BIN" ./cmd/satind

"$BIN" -addr "$ADDR" -clusters 2 -nodes 3 -obs-addr "$OBS" > "$LOG" 2>&1 &
DAEMON=$!
trap 'kill -9 $DAEMON 2>/dev/null || true' EXIT

# Wait for the daemon's listeners; the wire handshake then confirms
# the control route end to end.
for i in $(seq 1 50); do
  curl -fsS "http://$OBS/metrics" > /dev/null 2>&1 && break
  sleep 0.2
done

J1=$("$BIN" submit -addr "$ADDR" -app fib -size 24 -iters 2 -min-nodes 3 -adapt)
J2=$("$BIN" submit -addr "$ADDR" -app nqueens -size 9)
echo "submitted: $J1 $J2"

R1=$("$BIN" result -addr "$ADDR" -id "$J1" -wait)
R2=$("$BIN" result -addr "$ADDR" -id "$J2" -wait)
echo "$R1"
echo "$R2"
grep -q "done (ok)" <<<"$R1"
grep -q "done (ok)" <<<"$R2"

# Per-job observability: each job's iteration counter is its own
# series in the Prometheus exposition.
curl -fsS "http://$OBS/metrics" > /tmp/satind-metrics.txt
grep -q "repro_counter{name=\"job/$J1/iterations\"} 2" /tmp/satind-metrics.txt
grep -q "repro_counter{name=\"job/$J2/iterations\"} 1" /tmp/satind-metrics.txt
grep -q 'repro_counter{name="job/state/done"} 2' /tmp/satind-metrics.txt

# Graceful drain: SIGTERM must exit 0 after flushing.
kill -TERM $DAEMON
for i in $(seq 1 50); do
  kill -0 $DAEMON 2>/dev/null || break
  sleep 0.2
done
if kill -0 $DAEMON 2>/dev/null; then
  echo "satind did not exit after SIGTERM" >&2
  exit 1
fi
trap - EXIT
echo "satind smoke ok"
