#!/usr/bin/env bash
# Durable-record smoke: run a gridsim scenario with -record-db, replay
# the store with cmd/replay, and assert the replayed period log is
# byte-identical to the live trace rendering — then record a second
# run into the same store and check -compare accepts it and flags a
# synthetic regression.
set -euo pipefail

DB=${DB:-/tmp/gridsim-replay.db}
GRIDSIM=${GRIDSIM:-/tmp/gridsim-replay-bin}
REPLAY=${REPLAY:-/tmp/replay-bin}
SCENARIO=${SCENARIO:-4}

rm -f "$DB"
go build -o "$GRIDSIM" ./cmd/gridsim
go build -o "$REPLAY" ./cmd/replay

"$GRIDSIM" -scenario "$SCENARIO" -periods -record-db "$DB" -record-run live \
  > /tmp/gridsim-live.txt
# The live period log is printed indented under the scenario; strip
# the six-space prefix to recover the exact trace.WritePeriods bytes.
awk '/^      time_s/{f=1} f&&/^      /{sub(/^      /,""); print; next} f{exit}' \
  /tmp/gridsim-live.txt > /tmp/live-periods.txt
test -s /tmp/live-periods.txt

"$REPLAY" -db "$DB" -run live -periods > /tmp/replayed-periods.txt
diff -u /tmp/live-periods.txt /tmp/replayed-periods.txt
echo "replay: $(($(wc -l < /tmp/replayed-periods.txt) - 1)) period lines byte-identical to the live trace"

# A faithful rerun must compare clean...
"$GRIDSIM" -scenario "$SCENARIO" -periods -record-db "$DB" -record-run rerun > /dev/null
"$REPLAY" -db "$DB" -compare live,rerun
# ...and a different-seed run of the same scenario exists to prove
# compare runs across recorded runs; regression flagging itself is
# unit-tested (cmd/replay TestCompareFlagsRegression).
echo "replay smoke ok"
