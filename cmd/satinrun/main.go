// Command satinrun executes a divide-and-conquer application on the
// real satin runtime: an emulated multi-cluster grid of worker nodes
// with cluster-aware random work stealing, optionally watched by the
// adaptation coordinator, optionally with a throttled cluster link or
// a competing CPU load — the paper's system end to end, in one
// process.
//
// Examples:
//
//	satinrun -app fib -size 26 -clusters 2 -nodes 4
//	satinrun -app nqueens -size 10 -clusters 3 -nodes 2
//	satinrun -app barneshut -size 2000 -iters 5
//	satinrun -app fib -adapt -iters 30 -shape fs1=5000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/trace"
	"repro/satin"
)

func main() {
	var (
		app      = flag.String("app", "fib", "fib | nqueens | integrate | tsp | knapsack | barneshut")
		size     = flag.Int("size", 24, "problem size (fib N, queens N, tsp cities, bodies)")
		clusters = flag.Int("clusters", 2, "number of emulated clusters")
		nodes    = flag.Int("nodes", 4, "nodes per cluster")
		iters    = flag.Int("iters", 1, "repetitions (iterative application)")
		adaptOn  = flag.Bool("adapt", false, "run the adaptation coordinator")
		period   = flag.Duration("period", 500*time.Millisecond, "monitoring period")
		shape    = flag.String("shape", "", "throttle a cluster's WAN link: fs1=5000 (bytes/s)")
		load     = flag.String("load", "", "competing CPU load on a cluster: fs1=3")
		verbose  = flag.Bool("v", false, "print per-node statistics")
		wireObs  = flag.Bool("wire-stats", false, "print the wire-layer frame/byte/error counters")
		obsAddr  = flag.String("obs-addr", "", "serve /metrics (Prometheus), /events (JSONL) and /debug/pprof on this address (e.g. :9090; :0 picks a port)")
	)
	flag.Parse()
	// Counters are also exported as the expvar "obs" for anything that
	// scrapes this process.
	obs.Publish()
	var rec *record.Recorder
	if *obsAddr != "" {
		rec = record.New(4096, 1024)
		srv, err := record.Serve(*obsAddr, obs.Default, rec, time.Second)
		if err != nil {
			log.Fatalf("satinrun: obs endpoint: %v", err)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint on http://%s (/metrics /events /samples /debug/pprof)\n", srv.Addr())
	}
	if *clusters < 1 || *nodes < 1 || *iters < 1 {
		fmt.Fprintln(os.Stderr, "satinrun: -clusters, -nodes and -iters must be >= 1")
		os.Exit(2)
	}

	var specs []satin.ClusterSpec
	for i := 0; i < *clusters; i++ {
		specs = append(specs, satin.ClusterSpec{
			Name: satin.ClusterID(fmt.Sprintf("fs%d", i)), Nodes: *nodes * 2,
		})
	}
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: specs,
		Node: satin.NodeConfig{
			Coordinator:   coordName(*adaptOn),
			MonitorPeriod: *period,
			Bench:         apps.Fib{N: 18, SeqCutoff: 18},
			BenchWork:     float64(apps.FibLeaves(18)),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	for _, c := range specs {
		if _, err := g.StartNodes(c.Name, *nodes); err != nil {
			log.Fatal(err)
		}
	}
	master := g.Node("fs0/00")

	var coord *adapt.Coordinator
	if *adaptOn {
		cfg := adapt.Config{
			Period:    *period,
			Protected: []adapt.NodeID{master.ID()},
		}
		if rec != nil {
			// Every period becomes a structured event; decisions get
			// their own kind so `grep '"decision"'` over /events is the
			// adaptation timeline.
			cfg.Observer = func(pr adapt.PeriodRecord) {
				rec.RecordAt(pr.Time, "period", pr)
				if pr.Action != "" && pr.Action != "none" {
					rec.RecordAt(pr.Time, "decision", pr)
				}
			}
		}
		coord, err = adapt.Start(g.Fabric(), g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer coord.Stop()
	}
	applyDisturbance(g, *shape, *load)

	task, check := buildTask(*app, *size)
	if rec != nil {
		rec.Record("run", map[string]any{
			"app": *app, "size": *size, "clusters": *clusters,
			"nodes": *nodes, "iters": *iters, "adapt": *adaptOn,
		})
	}
	fmt.Printf("%s(size %d) on %d nodes in %d clusters, %d iteration(s)\n",
		*app, *size, *clusters**nodes, *clusters, *iters)
	total := time.Duration(0)
	for i := 0; i < *iters; i++ {
		start := time.Now()
		val, err := master.Run(task)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		total += el
		if rec != nil {
			rec.Record("iteration", map[string]any{
				"i": i, "seconds": el.Seconds(), "nodes": g.NodeCount(),
			})
		}
		ok := ""
		if check != nil {
			if check(val) {
				ok = "result ok"
			} else {
				ok = fmt.Sprintf("WRONG RESULT: %v", val)
			}
		}
		fmt.Printf("  iteration %2d: %8v (%2d nodes) %s\n",
			i, el.Round(time.Millisecond), g.NodeCount(), ok)
	}
	fmt.Printf("total: %v, mean %v/iteration\n",
		total.Round(time.Millisecond), (total / time.Duration(*iters)).Round(time.Millisecond))

	if *verbose {
		ns := g.Nodes()
		sort.Slice(ns, func(i, j int) bool { return ns[i].ID() < ns[j].ID() })
		fmt.Println("per-node statistics:")
		for _, n := range ns {
			rep := n.Report()
			fmt.Printf("  %-10s busy=%.2fs intra=%.2fs inter=%.2fs bench=%.2fs speed=%.0f\n",
				n.ID(), rep.BusySec, rep.IntraSec, rep.InterSec, rep.BenchSec, rep.Speed)
		}
	}
	if coord != nil {
		// The same unified period log the simulator prints (both are
		// the shared kernel's coord.PeriodRecord).
		fmt.Println("coordinator period log:")
		trace.WritePeriods(os.Stdout, coord.History())
		if anns := coord.Annotations(); len(anns) > 0 {
			fmt.Println("adaptation timeline:")
			trace.WriteAnnotations(os.Stdout, anns)
		}
		fmt.Printf("learned: %s\n", coord.Requirements())
	}
	if *wireObs {
		fmt.Println("wire-layer counters:")
		obs.Default.WriteText(os.Stdout)
	}
}

func coordName(on bool) string {
	if on {
		return adapt.EndpointName
	}
	return ""
}

func applyDisturbance(g *satin.Grid, shape, load string) {
	if shape != "" {
		cluster, v := splitKV(shape)
		g.Shape(satin.ClusterID(cluster), v)
		fmt.Printf("throttled %s WAN link to %.0f B/s\n", cluster, v)
	}
	if load != "" {
		cluster, v := splitKV(load)
		g.SetClusterLoad(satin.ClusterID(cluster), v)
		fmt.Printf("competing load %.1fx on %s\n", v, cluster)
	}
}

func splitKV(s string) (string, float64) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		fmt.Fprintf(os.Stderr, "satinrun: expected cluster=value, got %q\n", s)
		os.Exit(2)
	}
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "satinrun: bad value in %q: %v\n", s, err)
		os.Exit(2)
	}
	return parts[0], v
}

func buildTask(app string, size int) (satin.Task, func(any) bool) {
	switch app {
	case "fib":
		want := apps.FibLeaves(size)
		return apps.Fib{N: size, SeqCutoff: 12, LeafDelay: 3 * time.Millisecond},
			func(v any) bool { return v.(int) == want }
	case "nqueens":
		want := apps.QueensSolutions(size)
		return apps.NQueens{N: size, SpawnDepth: 3},
			func(v any) bool { return want < 0 || v.(int) == want }
	case "integrate":
		return apps.Integrate{Fn: "spiky", A: -3, B: 3, Eps: 1e-10}, nil
	case "tsp":
		return apps.NewTSP(apps.RandomCities(size, 42), 3), nil
	case "knapsack":
		k := apps.RandomKnapsack(size, 42)
		want := apps.KnapsackDP(k.Weights, k.Values, k.Capacity)
		return k, func(v any) bool { return v.(int) == want }
	case "barneshut":
		bodies := apps.Plummer(size, 42)
		return apps.BHForces{Bodies: bodies, Lo: 0, Hi: len(bodies), Theta: 0.5, Grain: 128},
			func(v any) bool { return len(v.([]apps.Accel)) == len(bodies) }
	default:
		fmt.Fprintf(os.Stderr, "satinrun: unknown app %q\n", app)
		os.Exit(2)
		return nil, nil
	}
}
