// Command satinrun executes a divide-and-conquer application on the
// real satin runtime: an emulated multi-cluster grid of worker nodes
// with cluster-aware random work stealing, optionally watched by the
// adaptation coordinator, optionally with a throttled cluster link or
// a competing CPU load — the paper's system end to end, in one
// process.
//
// It is a thin client of the job layer: one job submitted to an
// in-process manager, live iteration printing, wait, exit. The same
// layer served long-lived over the wire is cmd/satind.
//
// Examples:
//
//	satinrun -app fib -size 26 -clusters 2 -nodes 4
//	satinrun -app nqueens -size 10 -clusters 3 -nodes 2
//	satinrun -app barneshut -size 2000 -iters 5
//	satinrun -app fib -adapt -iters 30 -shape fs1=5000
//	satinrun -class stream -rate 20 -items 200 -target 1 -adapt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sigdrain"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/satin"
)

func main() {
	var (
		app      = flag.String("app", "fib", "fib | nqueens | integrate | tsp | knapsack | barneshut")
		size     = flag.Int("size", 24, "problem size (fib N, queens N, tsp cities, bodies)")
		clusters = flag.Int("clusters", 2, "number of emulated clusters")
		nodes    = flag.Int("nodes", 4, "nodes per cluster")
		iters    = flag.Int("iters", 1, "repetitions (iterative application)")
		class    = flag.String("class", "batch", "workload class: batch | stream")
		stages   = flag.String("stages", "decode=0.05,transform=0.15,encode=0.05", "stream pipeline: name=seconds[/bytes],...")
		rate     = flag.Float64("rate", 10, "stream: item arrival rate (items/s)")
		items    = flag.Int("items", 100, "stream: total items to emit")
		target   = flag.Float64("target", 2, "stream: end-to-end latency SLO (seconds)")
		adaptOn  = flag.Bool("adapt", false, "run the adaptation coordinator")
		period   = flag.Duration("period", 500*time.Millisecond, "monitoring period")
		shape    = flag.String("shape", "", "throttle a cluster's WAN link: fs1=5000 (bytes/s)")
		load     = flag.String("load", "", "competing CPU load on a cluster: fs1=3")
		verbose  = flag.Bool("v", false, "print per-node statistics")
		wireObs  = flag.Bool("wire-stats", false, "print the wire-layer frame/byte/error counters")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics (Prometheus), /events (JSONL) and /debug/pprof on this address (e.g. :9090; :0 picks a port)")
		recordDB  = flag.String("record-db", "", "append the run's events/samples/decisions to this durable record store (replay with cmd/replay)")
		recordRun = flag.String("record-run", "", "run ID for -record-db rows (default satinrun-<unixtime>)")
	)
	flag.Parse()
	// Counters are also exported as the expvar "obs" for anything that
	// scrapes this process.
	obs.Publish()
	var rec *record.Recorder
	var db *store.DB
	if *obsAddr != "" || *recordDB != "" {
		rec = record.New(4096, 1024)
	}
	if *obsAddr != "" {
		srv, err := record.Serve(*obsAddr, obs.Default, rec, time.Second)
		if err != nil {
			log.Fatalf("satinrun: obs endpoint: %v", err)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint on http://%s (/metrics /events /samples /debug/pprof)\n", srv.Addr())
	}
	if *recordDB != "" {
		run := *recordRun
		if run == "" {
			run = fmt.Sprintf("satinrun-%d", time.Now().Unix())
		}
		var err error
		db, err = store.Open(*recordDB, run, obs.Default)
		if err != nil {
			log.Fatalf("satinrun: record store: %v", err)
		}
		defer db.Close()
		rec.SetSink(db)
		fmt.Printf("recording to %s (run %q)\n", *recordDB, run)
	}
	if *clusters < 1 || *nodes < 1 || *iters < 1 {
		fmt.Fprintln(os.Stderr, "satinrun: -clusters, -nodes and -iters must be >= 1")
		os.Exit(2)
	}

	var specs []satin.ClusterSpec
	for i := 0; i < *clusters; i++ {
		specs = append(specs, satin.ClusterSpec{
			Name: satin.ClusterID(fmt.Sprintf("fs%d", i)), Nodes: *nodes * 2,
		})
	}
	// Malformed -shape/-load used to be silently ignored; now they are
	// validated against the deployment before anything starts — and the
	// -class/-stages pair gets the same treatment.
	jobSpec := job.Spec{
		App: *app, Size: *size, Iters: *iters,
		MinNodes: *clusters * *nodes,
		Adapt:    *adaptOn, Period: *period,
	}
	switch *class {
	case "batch":
	case "stream":
		st, err := job.ParseStages(*stages)
		if err != nil {
			fmt.Fprintf(os.Stderr, "satinrun: -stages: %v\n", err)
			os.Exit(2)
		}
		stream := workload.StreamSpec{
			Name: "cli", Stages: st,
			RateHz: *rate, Items: *items, TargetLatency: *target,
		}
		if err := stream.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "satinrun: stream spec: %v\n", err)
			os.Exit(2)
		}
		jobSpec.Class = "stream"
		jobSpec.Stream = &stream
	default:
		fmt.Fprintf(os.Stderr, "satinrun: -class must be batch or stream, got %q\n", *class)
		os.Exit(2)
	}
	if *shape != "" {
		cluster, v, err := job.ParseKV(*shape, specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "satinrun: -shape: %v\n", err)
			os.Exit(2)
		}
		jobSpec.Shape = map[string]float64{string(cluster): v}
	}
	if *load != "" {
		cluster, v, err := job.ParseKV(*load, specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "satinrun: -load: %v\n", err)
			os.Exit(2)
		}
		jobSpec.Load = map[string]float64{string(cluster): v}
	}

	m, err := job.NewManager(job.Config{
		Clusters: specs,
		Period:   *period,
		Recorder: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		rec.Record("run", map[string]any{
			"app": *app, "size": *size, "clusters": *clusters,
			"nodes": *nodes, "iters": *iters, "adapt": *adaptOn,
		})
	}
	if jobSpec.Class == "stream" {
		fmt.Printf("stream of %d items at %.1f/s (%d stages, SLO %.1fs) on %d nodes in %d clusters\n",
			*items, *rate, len(jobSpec.Stream.Stages), *target, *clusters**nodes, *clusters)
	} else {
		fmt.Printf("%s(size %d) on %d nodes in %d clusters, %d iteration(s)\n",
			*app, *size, *clusters**nodes, *clusters, *iters)
	}
	if *shape != "" {
		for c, v := range jobSpec.Shape {
			fmt.Printf("throttled %s WAN link to %.0f B/s\n", c, v)
		}
	}
	if *load != "" {
		for c, v := range jobSpec.Load {
			fmt.Printf("competing load %.1fx on %s\n", v, c)
		}
	}

	label := "iteration"
	if jobSpec.Class == "stream" {
		label = "window" // a streaming job's unit of progress; seconds is its mean latency
	}
	total := time.Duration(0)
	count := 0
	j, err := m.SubmitJob(jobSpec, job.Hooks{
		OnIteration: func(i int, seconds float64, nodes int) {
			el := time.Duration(seconds * float64(time.Second))
			total += el
			count++
			fmt.Printf("  %s %2d: %8v (%2d nodes)\n",
				label, i, el.Round(time.Millisecond), nodes)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// First SIGINT/SIGTERM cancels the job and flushes; a second one
	// force-quits.
	release := sigdrain.Install("satinrun", func() int {
		j.Cancel()
		m.Drain(10 * time.Second)
		if rec != nil {
			// Terminal snapshot, then both timelines: the event log
			// alone cannot reconstruct the metric trajectory.
			rec.Sample(obs.Default)
			_ = rec.WriteEventsJSONL(os.Stderr)
			_ = rec.WriteSamplesJSONL(os.Stderr)
		}
		if db != nil {
			_ = db.Close() // deferred Close won't run on the os.Exit path
		}
		return 130
	})
	defer release()
	<-j.Done()

	res := j.Result()
	switch j.State() {
	case job.Done:
		if res.Check != "" && res.Check != "ok" {
			fmt.Println(res.Check)
		} else if res.Check == "ok" {
			fmt.Println("result ok")
		}
	default:
		log.Fatalf("satinrun: job %s: %s", j.State(), res.Err)
	}
	if jobSpec.Class == "stream" {
		fmt.Printf("%d items in %d windows, mean latency %.3fs, max %.3fs\n",
			res.StreamCompleted, count, res.StreamMeanLatency, res.StreamMaxLatency)
	} else {
		fmt.Printf("total: %v, mean %v/iteration\n",
			total.Round(time.Millisecond), (total / time.Duration(*iters)).Round(time.Millisecond))
	}

	if *verbose {
		reports := res.NodeReports
		sort.Slice(reports, func(i, k int) bool { return reports[i].Node < reports[k].Node })
		fmt.Println("per-node statistics:")
		for _, rep := range reports {
			fmt.Printf("  %-10s busy=%.2fs intra=%.2fs inter=%.2fs bench=%.2fs speed=%.0f\n",
				rep.Node, rep.BusySec, rep.IntraSec, rep.InterSec, rep.BenchSec, rep.Speed)
		}
	}
	if *adaptOn {
		// The same unified period log the simulator prints (both are
		// the shared kernel's coord.PeriodRecord).
		fmt.Println("coordinator period log:")
		trace.WritePeriods(os.Stdout, res.History)
		if len(res.Annotations) > 0 {
			fmt.Println("adaptation timeline:")
			trace.WriteAnnotations(os.Stdout, res.Annotations)
		}
		fmt.Printf("learned: %s\n", res.Learned)
	}
	if *wireObs {
		fmt.Println("wire-layer counters:")
		obs.Default.WriteText(os.Stdout)
	}
	m.Close()
}
