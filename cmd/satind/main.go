// Command satind is the long-lived multi-job grid service: one shared
// node pool (the emulated multi-cluster grid), a job manager running
// many computations concurrently with fair-share arbitration between
// their adaptation coordinators, and a submit/status/cancel/result
// protocol served over the TCP hub on the typed wire layer.
//
// Daemon:
//
//	satind -addr :7711 -clusters 2 -nodes 4 -obs-addr :9090
//
// Client (same binary, subcommand first):
//
//	satind submit -addr :7711 -app fib -size 24 -iters 3 -adapt
//	satind submit -addr :7711 -class stream -rate 20 -items 200 -target 1 -adapt
//	satind status -addr :7711
//	satind status -addr :7711 -id job-001
//	satind cancel -addr :7711 -id job-001
//	satind result -addr :7711 -id job-001 -wait
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sigdrain"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
	"repro/satin"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit", "status", "cancel", "result":
			client(os.Args[1], os.Args[2:])
			return
		}
	}
	daemon(os.Args[1:])
}

// ---- daemon mode ----

func daemon(args []string) {
	fs := flag.NewFlagSet("satind", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":7711", "TCP hub address to serve the control protocol on")
		clusters = fs.Int("clusters", 2, "number of emulated clusters")
		nodes    = fs.Int("nodes", 4, "nodes per cluster")
		maxAct   = fs.Int("max-active", 8, "maximum concurrently running jobs")
		period   = fs.Duration("period", 500*time.Millisecond, "default monitoring period")
		patience = fs.Duration("patience", 5*time.Second, "provisioning patience before a job starts undersized")
		drainTmo = fs.Duration("drain-timeout", 30*time.Second, "SIGTERM: how long to wait for running jobs")
		obsAddr   = fs.String("obs-addr", "", "serve /metrics, /events and /debug/pprof on this address (:0 picks a port)")
		recordDB  = fs.String("record-db", "", "append events/samples/per-job decisions to this durable record store (replay with cmd/replay)")
		recordRun = fs.String("record-run", "", "run ID for -record-db rows (default satind-<unixtime>)")
		seed      = fs.Int64("seed", 0, "reproducible job seeds (job n runs with seed+n)")
	)
	fs.Parse(args)
	if *clusters < 1 || *nodes < 1 {
		fmt.Fprintln(os.Stderr, "satind: -clusters and -nodes must be >= 1")
		os.Exit(2)
	}
	obs.Publish()
	var rec *record.Recorder
	var db *store.DB
	if *obsAddr != "" || *recordDB != "" {
		rec = record.New(4096, 1024)
	}
	if *obsAddr != "" {
		srv, err := record.Serve(*obsAddr, obs.Default, rec, time.Second)
		if err != nil {
			log.Fatalf("satind: obs endpoint: %v", err)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint on http://%s (/metrics /events /samples /debug/pprof)\n", srv.Addr())
	}
	if *recordDB != "" {
		run := *recordRun
		if run == "" {
			run = fmt.Sprintf("satind-%d", time.Now().Unix())
		}
		var err error
		db, err = store.Open(*recordDB, run, obs.Default)
		if err != nil {
			log.Fatalf("satind: record store: %v", err)
		}
		rec.SetSink(db)
		fmt.Printf("recording to %s (run %q)\n", *recordDB, run)
	}

	var specs []satin.ClusterSpec
	for i := 0; i < *clusters; i++ {
		specs = append(specs, satin.ClusterSpec{
			Name: satin.ClusterID(fmt.Sprintf("fs%d", i)), Nodes: *nodes,
		})
	}
	m, err := job.NewManager(job.Config{
		Clusters:          specs,
		MaxActive:         *maxAct,
		Period:            *period,
		ProvisionPatience: *patience,
		Recorder:          rec,
		Seed:              *seed,
	})
	if err != nil {
		log.Fatalf("satind: %v", err)
	}
	hub, err := transport.NewTCPHub(*addr)
	if err != nil {
		log.Fatalf("satind: listen: %v", err)
	}
	srv, err := job.Serve(transport.NewTCP(hub.Addr()), m)
	if err != nil {
		log.Fatalf("satind: serve: %v", err)
	}

	release := sigdrain.Install("satind", func() int {
		cancelled := m.Drain(*drainTmo)
		m.Close()
		srv.Close()
		hub.Close()
		if rec != nil {
			// Terminal snapshot first: a run shorter than one sample
			// period would otherwise die with an empty sample timeline.
			rec.Sample(obs.Default)
			// Flush BOTH retained timelines before the process dies —
			// /events and /samples are gone once the listener closes,
			// and losing the sample series on shutdown was exactly the
			// bug: the event log alone cannot reconstruct the metric
			// trajectory.
			_ = rec.WriteEventsJSONL(os.Stderr)
			_ = rec.WriteSamplesJSONL(os.Stderr)
		}
		if db != nil {
			// Drain the sink's queue to disk; Close is idempotent.
			if err := db.Close(); err != nil {
				log.Printf("satind: record store close: %v", err)
			}
		}
		if cancelled > 0 {
			log.Printf("satind: drained, %d job(s) cancelled", cancelled)
		}
		return 0
	})
	defer release()

	fmt.Printf("satind serving on %s: %d clusters x %d nodes (%d processors), max %d active jobs\n",
		hub.Addr(), *clusters, *nodes, m.Capacity(), *maxAct)
	select {} // work happens on manager and fabric goroutines
}

// ---- client mode ----

func client(cmd string, args []string) {
	fs := flag.NewFlagSet("satind "+cmd, flag.ExitOnError)
	var (
		addr = fs.String("addr", "127.0.0.1:7711", "daemon's hub address")
		tmo  = fs.Duration("timeout", 10*time.Second, "reply timeout")
		id   = fs.String("id", "", "job ID")
		// submit flags
		app      = fs.String("app", "fib", "fib | nqueens | integrate | tsp | knapsack | barneshut")
		size     = fs.Int("size", 24, "problem size")
		iters    = fs.Int("iters", 1, "repetitions")
		minNodes = fs.Int("min-nodes", 1, "provisioning target before the run starts")
		maxNodes = fs.Int("max-nodes", 0, "allocation cap (0 = none)")
		weight   = fs.Float64("weight", 1, "fair-share weight in the pool")
		adaptOn  = fs.Bool("adapt", false, "run the adaptation coordinator")
		class    = fs.String("class", "batch", "workload class: batch | stream")
		stages   = fs.String("stages", "decode=0.05,transform=0.15,encode=0.05", "stream pipeline: name=seconds[/bytes],...")
		rate     = fs.Float64("rate", 10, "stream: item arrival rate (items/s)")
		items    = fs.Int("items", 100, "stream: total items to emit")
		target   = fs.Float64("target", 2, "stream: end-to-end latency SLO (seconds)")
		period   = fs.Duration("period", 0, "monitoring period override")
		shape    = fs.String("shape", "", "throttle a cluster's WAN link: fs1=5000 (bytes/s)")
		load     = fs.String("load", "", "competing CPU load on a cluster: fs1=3")
		wait     = fs.Bool("wait", false, "result: block until the job finishes")
	)
	fs.Parse(args)

	ctl, err := job.Dial(transport.NewTCP(*addr),
		fmt.Sprintf("satinctl-%d", os.Getpid()))
	if err != nil {
		log.Fatalf("satind %s: %v", cmd, err)
	}
	defer ctl.Close()

	switch cmd {
	case "submit":
		spec := job.Spec{
			App: *app, Size: *size, Iters: *iters,
			MinNodes: *minNodes, MaxNodes: *maxNodes, Weight: *weight,
			Adapt: *adaptOn, Period: *period,
		}
		// The workload class is validated client-side like the other
		// flag grammar (malformed stage spec → exit 2 with usage); the
		// daemon revalidates the whole spec at submit.
		switch *class {
		case "batch":
		case "stream":
			st, err := job.ParseStages(*stages)
			if err != nil {
				fmt.Fprintf(os.Stderr, "satind submit: -stages: %v\n", err)
				os.Exit(2)
			}
			stream := workload.StreamSpec{
				Name: "cli", Stages: st,
				RateHz: *rate, Items: *items, TargetLatency: *target,
			}
			if err := stream.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "satind submit: stream spec: %v\n", err)
				os.Exit(2)
			}
			spec.Class = "stream"
			spec.Stream = &stream
		default:
			fmt.Fprintf(os.Stderr, "satind submit: -class must be batch or stream, got %q\n", *class)
			os.Exit(2)
		}
		// Disturbance specs are parsed here for shape but validated
		// (including cluster names) by the daemon, which knows the
		// deployment.
		if *shape != "" {
			name, v, err := splitKV(*shape)
			if err != nil {
				fmt.Fprintf(os.Stderr, "satind submit: -shape: %v\n", err)
				os.Exit(2)
			}
			spec.Shape = map[string]float64{name: v}
		}
		if *load != "" {
			name, v, err := splitKV(*load)
			if err != nil {
				fmt.Fprintf(os.Stderr, "satind submit: -load: %v\n", err)
				os.Exit(2)
			}
			spec.Load = map[string]float64{name: v}
		}
		jid, err := ctl.Submit(spec, *tmo)
		if err != nil {
			log.Fatalf("satind submit: %v", err)
		}
		fmt.Println(jid)
	case "status":
		jobs, err := ctl.Status(*id, *tmo)
		if err != nil {
			log.Fatalf("satind status: %v", err)
		}
		fmt.Printf("%-10s %-10s %6s %6s %6s %6s %9s  %s\n",
			"ID", "APP", "SIZE", "STATE", "NODES", "DONE", "SECONDS", "ERR")
		for _, s := range jobs {
			name := s.App
			if s.Class == "stream" {
				name = "stream"
			}
			fmt.Printf("%-10s %-10s %6d %6s %6d %6d %9.2f  %s\n",
				s.ID, name, s.Size, s.State, s.Nodes, s.Done, s.Seconds, s.Err)
		}
	case "cancel":
		if *id == "" {
			fmt.Fprintln(os.Stderr, "satind cancel: -id required")
			os.Exit(2)
		}
		if err := ctl.Cancel(*id, *tmo); err != nil {
			log.Fatalf("satind cancel: %v", err)
		}
		fmt.Printf("%s cancelled\n", *id)
	case "result":
		if *id == "" {
			fmt.Fprintln(os.Stderr, "satind result: -id required")
			os.Exit(2)
		}
		// A waiting fetch is bounded by the job, not the RPC timeout.
		rtmo := *tmo
		if *wait && rtmo < time.Hour {
			rtmo = time.Hour
		}
		r, err := ctl.Result(*id, *wait, rtmo)
		if err != nil {
			log.Fatalf("satind result: %v", err)
		}
		fmt.Printf("%s: %s", r.ID, r.State)
		if r.Check != "" {
			fmt.Printf(" (%s)", r.Check)
		}
		fmt.Println()
		if r.Result != "" {
			fmt.Printf("  result: %s\n", r.Result)
		}
		for i, s := range r.Iterations {
			fmt.Printf("  iteration %2d: %.3fs\n", i, s)
		}
		if r.Learned != "" {
			fmt.Printf("  learned: %s\n", r.Learned)
		}
		if r.Err != "" {
			fmt.Printf("  error: %s\n", r.Err)
			os.Exit(1)
		}
		if r.State != "done" {
			os.Exit(1)
		}
	}
}

// splitKV parses "cluster=value" client-side (numeric sanity only; the
// daemon validates cluster names against its deployment).
func splitKV(s string) (string, float64, error) {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("expected cluster=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", s, err)
	}
	if v <= 0 {
		return "", 0, fmt.Errorf("value in %q must be > 0", s)
	}
	return name, v, nil
}
