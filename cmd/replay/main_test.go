package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/store"
	"repro/internal/trace"
)

// trajectory is a realistic adaptive-run period log with awkward
// floats — the shapes that must survive JSON round-tripping exactly.
func trajectory(scale float64) []coord.PeriodRecord {
	return []coord.PeriodRecord{
		{Time: 30, WAE: 0.123456789 * scale, Nodes: 8, Stats: 8},
		{Time: 60, WAE: 0.25 * scale, Nodes: 8, Stats: 8, Action: "add", Detail: "grow toward band", Added: 12},
		{Time: 90.5, WAE: 0.61 * scale, Nodes: 20, Stats: 20},
		{Time: 120, WAE: 0.5800000000000001 * scale, Nodes: 20, Stats: 20, Action: "evict-cluster", Detail: "fs2 throttled", Removed: 12},
		{Time: 150, WAE: 0.66 * scale, Nodes: 8, Stats: 8},
	}
}

// recordRun streams a trajectory through the real pipeline — recorder
// with a store sink, exactly as the binaries wire it.
func recordRun(t *testing.T, path, run string, prs []coord.PeriodRecord) {
	t.Helper()
	db, err := store.Open(path, run, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rec := record.New(1024, 64)
	rec.SetSink(db)
	for _, pr := range prs {
		rec.RecordAt(pr.Time, "period", pr)
		if pr.Action != "" {
			rec.RecordAt(pr.Time, "decision", pr)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// The acceptance bar: the replayed period log renders byte-identically
// to the live trace rendering of the same records.
func TestReplayByteIdenticalToLiveTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.db")
	prs := trajectory(1)
	recordRun(t, path, "live", prs)

	var live strings.Builder
	trace.WritePeriods(&live, prs)

	l, err := store.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var replayed strings.Builder
	if err := render(&replayed, l, "live", "", true); err != nil {
		t.Fatal(err)
	}
	if live.String() != replayed.String() {
		t.Fatalf("replayed period log diverges from live rendering:\n--- live\n%s--- replayed\n%s",
			live.String(), replayed.String())
	}

	ds, err := decisionsOf(l, "live", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Record.Action != "add" || ds[1].Record.Removed != 12 {
		t.Fatalf("decision log = %+v", ds)
	}
}

// Per-job reconstruction: a multi-job (satind-style) run keeps each
// job's trajectory separable.
func TestReplayPerJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.db")
	db, err := store.Open(path, "svc", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rec := record.New(1024, 64)
	rec.SetSink(db)
	rec.RecordJob("job-001", "period", coord.PeriodRecord{Time: 1, WAE: 0.5, Nodes: 4})
	rec.RecordJob("job-002", "period", coord.PeriodRecord{Time: 1, WAE: 0.9, Nodes: 2})
	rec.RecordJob("job-001", "decision", coord.PeriodRecord{Time: 2, Action: "add", Added: 2})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := store.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := periodsOf(l, "svc", "job-001")
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 1 || p1[0].WAE != 0.5 {
		t.Fatalf("job-001 periods = %+v", p1)
	}
	ds, err := decisionsOf(l, "svc", "job-002")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("job-002 leaked job-001's decisions: %+v", ds)
	}
}

// -compare must flag an injected regression (slower run, worse
// health) and pass a faithful rerun.
func TestCompareFlagsRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.db")
	good := trajectory(1)
	recordRun(t, path, "base", good)
	recordRun(t, path, "same", good)

	// The injected regression: health collapses and the run drags on.
	bad := trajectory(0.5)
	bad = append(bad, coord.PeriodRecord{Time: 400, WAE: 0.2, Nodes: 8})
	recordRun(t, path, "regressed", bad)

	l, err := store.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	regressed, err := compareRuns(&out, l, "base", "same", "", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("identical rerun flagged as regression:\n%s", out.String())
	}
	out.Reset()
	regressed, err = compareRuns(&out, l, "base", "regressed", "", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("injected regression not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION verdict:\n%s", out.String())
	}
}
