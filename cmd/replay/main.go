// Command replay reconstructs past runs from the durable record store
// (internal/store, written by gridsim/satinrun/satind behind
// -record-db) or from a recorder's /events JSONL export, and renders
// them exactly the way internal/trace prints them live — so a run's
// objective-health/WAE trajectory and decision log can be inspected,
// and two runs can be diffed for regressions, long after the
// processes that produced them are gone.
//
// Usage:
//
//	replay -db run.db                      # list runs (and their jobs)
//	replay -db run.db -run ID -periods     # the run's period log, as printed live
//	replay -db run.db -run ID [-job J]     # summary + decision log (per job)
//	replay -db run.db -compare A,B         # diff two runs' trajectories
//	replay -events events.jsonl -periods   # same, from an /events export
//
// -compare exits 1 when run B regresses beyond -tolerance against run
// A (longer runtime, or worse mean/final objective health), so it can
// gate CI the way bench-check does for microbenchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/coord"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "record store written with -record-db")
		eventsIn  = flag.String("events", "", "JSONL export of a recorder's /events endpoint")
		runID     = flag.String("run", "", "run to replay (default: the last run in the store)")
		jobID     = flag.String("job", "", "restrict to one job of a multi-job (satind) run")
		periods   = flag.Bool("periods", false, "print only the period log, exactly as the live trace renders it")
		compare   = flag.String("compare", "", "two run IDs 'A,B': diff B's trajectory against A's")
		tolerance = flag.Float64("tolerance", 0.2, "compare: relative regression allowed before exiting 1")
	)
	flag.Parse()

	l, err := load(*dbPath, *eventsIn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(2)
	}
	if l.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "replay: skipped %d undecodable line(s) (torn write?)\n", l.Skipped)
	}

	if *compare != "" {
		a, b, ok := strings.Cut(*compare, ",")
		if !ok || a == "" || b == "" {
			fmt.Fprintln(os.Stderr, "replay: -compare wants two run IDs: runA,runB")
			os.Exit(2)
		}
		regressed, err := compareRuns(os.Stdout, l, a, b, *jobID, *tolerance)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	runs := l.Runs()
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "replay: no runs recorded")
		os.Exit(2)
	}
	if *runID == "" && !*periods && *jobID == "" {
		// Bare listing: what's in the store.
		for _, run := range runs {
			jobs := l.Jobs(run)
			fmt.Printf("%-24s %4d events  %4d decisions  %4d samples",
				run, len(l.Events(run, "")), len(l.Decisions(run, "")), len(l.Samples(run)))
			if len(jobs) > 0 {
				fmt.Printf("  jobs: %s", strings.Join(jobs, " "))
			}
			fmt.Println()
		}
		return
	}
	run := *runID
	if run == "" {
		run = runs[len(runs)-1]
	}
	if err := render(os.Stdout, l, run, *jobID, *periods); err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(2)
	}
}

func load(dbPath, eventsIn string) (*store.Log, error) {
	switch {
	case dbPath != "" && eventsIn != "":
		return nil, fmt.Errorf("-db and -events are mutually exclusive")
	case dbPath != "":
		return store.ReadLog(dbPath)
	case eventsIn != "":
		f, err := os.Open(eventsIn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return store.FromEventsJSONL(f, "export")
	default:
		return nil, fmt.Errorf("need -db or -events (see -h)")
	}
}

// periodsOf reconstructs a run's coordinator period log — the same
// []coord.PeriodRecord the live drivers hand to trace.WritePeriods.
func periodsOf(l *store.Log, run, job string) ([]coord.PeriodRecord, error) {
	var out []coord.PeriodRecord
	for _, row := range l.Events(run, job) {
		if row.Kind != "period" || row.Data == nil {
			continue
		}
		var pr coord.PeriodRecord
		if err := unmarshalRecord(row.Data, &pr); err != nil {
			return nil, fmt.Errorf("run %s: bad period record: %w", run, err)
		}
		out = append(out, pr)
	}
	return out, nil
}

// decisionsOf reconstructs a run's decision log.
func decisionsOf(l *store.Log, run, job string) ([]trace.Decision, error) {
	var out []trace.Decision
	for _, row := range l.Decisions(run, job) {
		if row.Data == nil {
			continue
		}
		var pr coord.PeriodRecord
		if err := unmarshalRecord(row.Data, &pr); err != nil {
			return nil, fmt.Errorf("run %s: bad decision record: %w", run, err)
		}
		out = append(out, trace.Decision{Time: row.Time, Job: row.Job, Record: pr})
	}
	return out, nil
}

// render prints one run: with periods set, ONLY the period table,
// byte-identical to the live trace.WritePeriods rendering (so CI can
// diff it against a live run's output); otherwise a summary plus the
// decision log.
func render(w io.Writer, l *store.Log, run, job string, periods bool) error {
	prs, err := periodsOf(l, run, job)
	if err != nil {
		return err
	}
	if periods {
		trace.WritePeriods(w, prs)
		return nil
	}
	ds, err := decisionsOf(l, run, job)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "run %s: %d periods, %d decisions", run, len(prs), len(ds))
	if job != "" {
		fmt.Fprintf(w, " (job %s)", job)
	}
	fmt.Fprintln(w)
	if s := summarize(prs); s.count > 0 {
		fmt.Fprintf(w, "runtime %.0f s, health mean %.3f final %.3f, final nodes %d\n",
			s.runtime, s.meanHealth, s.finalHealth, s.finalNodes)
	}
	if len(ds) > 0 {
		trace.WriteDecisions(w, ds)
	}
	return nil
}

// summary condenses a trajectory into the numbers compare diffs.
type summary struct {
	count       int
	runtime     float64 // last period's timestamp
	meanHealth  float64
	finalHealth float64
	finalNodes  int
	actions     int
}

func summarize(prs []coord.PeriodRecord) summary {
	var s summary
	for _, pr := range prs {
		s.count++
		s.meanHealth += pr.WAE
		s.runtime = pr.Time
		s.finalHealth = pr.WAE
		s.finalNodes = pr.Nodes
		if pr.Action != "" && pr.Action != "none" {
			s.actions++
		}
	}
	if s.count > 0 {
		s.meanHealth /= float64(s.count)
	}
	return s
}

// compareRuns diffs run B against baseline run A and reports whether
// B regressed beyond tol: runtime grew, or mean/final objective
// health fell, by more than the tolerated fraction.
func compareRuns(w io.Writer, l *store.Log, runA, runB, job string, tol float64) (regressed bool, err error) {
	pa, err := periodsOf(l, runA, job)
	if err != nil {
		return false, err
	}
	pb, err := periodsOf(l, runB, job)
	if err != nil {
		return false, err
	}
	if len(pa) == 0 || len(pb) == 0 {
		return false, fmt.Errorf("compare: run %q has %d periods, run %q has %d — nothing to diff",
			runA, len(pa), runB, len(pb))
	}
	sa, sb := summarize(pa), summarize(pb)
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "metric", runA, runB, "delta")
	row := func(name string, a, b float64, format string) {
		delta := "-"
		if a != 0 {
			delta = fmt.Sprintf("%+.1f%%", (b-a)/a*100)
		}
		fmt.Fprintf(w, "%-14s "+format+" "+format+" %10s\n", name, a, b, delta)
	}
	row("runtime_s", sa.runtime, sb.runtime, "%14.0f")
	row("health_mean", sa.meanHealth, sb.meanHealth, "%14.3f")
	row("health_final", sa.finalHealth, sb.finalHealth, "%14.3f")
	row("nodes_final", float64(sa.finalNodes), float64(sb.finalNodes), "%14.0f")
	row("actions", float64(sa.actions), float64(sb.actions), "%14.0f")

	var reasons []string
	if sa.runtime > 0 && sb.runtime > sa.runtime*(1+tol) {
		reasons = append(reasons, fmt.Sprintf("runtime %+.1f%% (tolerance %.0f%%)",
			(sb.runtime-sa.runtime)/sa.runtime*100, tol*100))
	}
	if sa.meanHealth > 0 && sb.meanHealth < sa.meanHealth*(1-tol) {
		reasons = append(reasons, fmt.Sprintf("mean health %+.1f%% (tolerance %.0f%%)",
			(sb.meanHealth-sa.meanHealth)/sa.meanHealth*100, tol*100))
	}
	if sa.finalHealth > 0 && sb.finalHealth < sa.finalHealth*(1-tol) {
		reasons = append(reasons, fmt.Sprintf("final health %+.1f%% (tolerance %.0f%%)",
			(sb.finalHealth-sa.finalHealth)/sa.finalHealth*100, tol*100))
	}
	if len(reasons) > 0 {
		fmt.Fprintf(w, "REGRESSION: %s vs %s: %s\n", runB, runA, strings.Join(reasons, "; "))
		return true, nil
	}
	fmt.Fprintf(w, "ok: %s within %.0f%% of %s\n", runB, tol*100, runA)
	return false, nil
}

// unmarshalRecord decodes a persisted period/decision payload. The
// live drivers store coord.PeriodRecord either bare or (historical
// shape) wrapped as {"job":..,"record":{..}}; accept both.
func unmarshalRecord(raw []byte, pr *coord.PeriodRecord) error {
	var wrapped struct {
		Record *coord.PeriodRecord `json:"record"`
	}
	if err := json.Unmarshal(raw, &wrapped); err == nil && wrapped.Record != nil {
		*pr = *wrapped.Record
		return nil
	}
	return json.Unmarshal(raw, pr)
}
