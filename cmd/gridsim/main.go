// Command gridsim reproduces the paper's evaluation: it runs the
// Barnes-Hut scenarios on the simulated DAS-2 grid in the requested
// variants and prints the runtime table (Figure 1), the coordinator's
// period log, and the per-iteration series (Figures 3–7), optionally
// exporting the series as CSV.
//
// Usage:
//
//	gridsim -scenario all              # every scenario, all variants
//	gridsim -scenario 4 -periods      # one scenario with the WAE log
//	gridsim -scenario all -csv out/   # also write figure CSV data
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		scenario  = flag.String("scenario", "all", "scenario id (1, 2a..2c, 3..7) or 'all'")
		seed      = flag.Int64("seed", 42, "simulation seed")
		csvDir    = flag.String("csv", "", "directory to write per-scenario iteration CSVs")
		svgDir    = flag.String("svg", "", "directory to write per-scenario figure SVGs")
		periods   = flag.Bool("periods", false, "print the adaptive coordinator's period log")
		list      = flag.Bool("list", false, "list scenarios and exit")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics (Prometheus), /events (JSONL) and /debug/pprof on this address while scenarios run")
		recordDB  = flag.String("record-db", "", "append the run's events/samples/decisions to this durable record store (replay with cmd/replay)")
		recordRun = flag.String("record-run", "", "run ID for -record-db rows (default gridsim-<unixtime>)")
	)
	flag.Parse()

	var rec *record.Recorder
	if *obsAddr != "" || *recordDB != "" {
		rec = record.New(8192, 1024)
	}
	if *obsAddr != "" {
		srv, err := record.Serve(*obsAddr, obs.Default, rec, time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: obs endpoint: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint on http://%s\n", srv.Addr())
	}

	// The DES emits events stamped with virtual time; put the
	// recorder's own clock — which stamps registry samples and ad-hoc
	// Record calls — on that same axis, so /events and /samples (and
	// everything a sink persists) can be joined post-hoc. The clock
	// follows the latest coordinator tick of the running scenario.
	var vnow atomic.Uint64
	var decorate func(v expt.Variant, p *des.Params)
	if rec != nil {
		rec.SetClock(func() float64 { return math.Float64frombits(vnow.Load()) })
		decorate = func(v expt.Variant, p *des.Params) {
			if v != expt.Adaptive {
				return // only the adaptive run is recorded below
			}
			prev := p.Observe
			p.Observe = func(pr des.PeriodRecord, reqs *core.Requirements, perCluster map[core.ClusterID]int) {
				vnow.Store(math.Float64bits(pr.Time))
				if prev != nil {
					prev(pr, reqs, perCluster)
				}
			}
		}
	}
	if *recordDB != "" {
		run := *recordRun
		if run == "" {
			run = fmt.Sprintf("gridsim-%d", time.Now().Unix())
		}
		db, err := store.Open(*recordDB, run, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: record store: %v\n", err)
			os.Exit(1)
		}
		defer db.Close()
		rec.SetSink(db)
		fmt.Printf("recording to %s (run %q)\n", *recordDB, run)
	}

	if *list {
		for _, sc := range expt.All() {
			fmt.Printf("%-3s %-32s %s\n", sc.ID, sc.Name, sc.Figure)
		}
		return
	}

	var scenarios []expt.Scenario
	if *scenario == "all" {
		scenarios = expt.All()
	} else {
		sc, ok := expt.ByID(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "gridsim: unknown scenario %q (try -list)\n", *scenario)
			os.Exit(2)
		}
		scenarios = []expt.Scenario{sc}
	}

	var rows []trace.RuntimeRow
	for _, sc := range scenarios {
		sc.Seed = *seed
		fmt.Printf("=== scenario %s: %s (%s)\n", sc.ID, sc.Name, sc.Figure)
		fmt.Printf("    %s\n", sc.Description)
		out, err := expt.RunWith(sc, decorate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		na := out.Results[expt.NoAdapt]
		ad := out.Results[expt.Adaptive]
		mo := out.Results[expt.MonitorOnly]
		if rec != nil {
			// Re-emit the adaptive run on the recorder's event axis at
			// the simulator's own virtual timestamps.
			rec.Record("scenario", map[string]any{"id": sc.ID, "name": sc.Name})
			for _, pr := range ad.Periods {
				rec.RecordAt(pr.Time, "period", pr)
				if pr.Action != "" && pr.Action != "none" {
					rec.RecordAt(pr.Time, "decision", pr)
				}
			}
			for _, an := range ad.Annotations {
				rec.RecordAt(an.Time, "annotation", an)
			}
		}
		rows = append(rows, trace.RuntimeRow{
			Label:       fmt.Sprintf("%s %s", sc.ID, sc.Name),
			NoAdapt:     na.Runtime,
			Adaptive:    ad.Runtime,
			MonitorOnly: mo.Runtime,
		})
		fmt.Printf("    runtime: no-adapt %.0f s | adaptive %.0f s | monitor-only %.0f s | improvement %.0f%%\n",
			na.Runtime, ad.Runtime, mo.Runtime, out.Improvement()*100)
		if na.StreamCompleted > 0 {
			// Streaming scenario: the figure of merit is end-to-end item
			// latency against the SLO target, not runtime.
			fmt.Printf("    stream latency (mean/max s): no-adapt %.1f/%.1f | adaptive %.1f/%.1f | monitor-only %.1f/%.1f\n",
				na.MeanStreamLatency(), na.StreamMaxLatency,
				ad.MeanStreamLatency(), ad.StreamMaxLatency,
				mo.MeanStreamLatency(), mo.StreamMaxLatency)
		}
		fmt.Printf("    nodes: adaptive final %d (peak %d) | iterations no-adapt %s\n",
			ad.FinalNodes, ad.PeakNodes, trace.Sparkline(series(na), 60))
		fmt.Printf("    %36s adaptive %s\n", "", trace.Sparkline(series(ad), 60))
		if len(ad.Annotations) > 0 {
			fmt.Println("    timeline:")
			trace.WriteAnnotations(prefixWriter{"      "}, ad.Annotations)
		}
		if *periods {
			trace.WritePeriods(prefixWriter{"      "}, ad.Periods)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, sc.ID, out); err != nil {
				fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
				os.Exit(1)
			}
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}

	fmt.Println("=== Figure 1: runtimes per scenario")
	trace.WriteRuntimeTable(os.Stdout, rows)
}

// series converts a simulator result into the runtime-independent view
// the trace renderers consume.
func series(r *des.Result) trace.Series {
	s := trace.Series{Periods: r.Periods, Annotations: r.Annotations}
	for _, it := range r.Iterations {
		s.Iterations = append(s.Iterations, trace.Iteration(it))
	}
	return s
}

func writeCSV(dir, id string, out *expt.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("scenario-%s-iterations.csv", id)))
	if err != nil {
		return err
	}
	defer f.Close()
	m := make(map[string]trace.Series, len(out.Results))
	for v, r := range out.Results {
		m[string(v)] = series(r)
	}
	trace.WriteIterationsCSV(f, m)
	return nil
}

func writeSVG(dir string, sc expt.Scenario, out *expt.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("scenario-%s.svg", sc.ID)))
	if err != nil {
		return err
	}
	defer f.Close()
	m := make(map[string]trace.Series, len(out.Results))
	for v, r := range out.Results {
		if v == expt.MonitorOnly {
			continue // the figures plot the NA vs AD series
		}
		m[string(v)] = series(r)
	}
	trace.WriteIterationsSVG(f, fmt.Sprintf("Scenario %s: %s", sc.ID, sc.Name), m)
	return nil
}

// prefixWriter indents each output chunk; adequate for line-oriented
// renderers that write whole lines per call.
type prefixWriter struct{ prefix string }

func (p prefixWriter) Write(b []byte) (int, error) {
	os.Stdout.WriteString(p.prefix)
	n, err := os.Stdout.Write(b)
	return n, err
}
