// Command bench runs the repo's performance baselines programmatically
// and writes them as one JSON document, so CI can archive a comparable
// per-PR artifact (BENCH_5.json) without parsing `go test -bench`
// output:
//
//   - deque: lock-free Chase–Lev push/pop (the spawn/sync hot path)
//   - steal_kernel: one CRS Next/SyncDone round against a 16-node view
//   - wire_roundtrip: a typed frame through the binary control-frame
//     codec and an ideal in-process fabric (the production path since
//     ISSUE 7)
//   - wire_roundtrip_session_gob: the same frame through the session
//     gob stream — the historical arm, kept so the codec switch stays
//     measurable against BENCH_5
//   - coord_tick_10k: one sharded root-kernel tick over a 10,000-node
//     world condensed into 100 cluster summaries — the O(clusters)
//     coordination cost of the ISSUE 8 hierarchy
//   - spawn_sync: end-to-end spawn+execute+sync of 256 children on one
//     live satin node
//   - fib_e2e: fib(20) across 2 clusters x 2 nodes — steals, WAN
//     emulation and accounting included
//   - stream_e2e: one 256-item streaming window (the ISSUE 9 workload
//     class's unit of execution) spread over 2 clusters x 2 nodes —
//     the per-window cost of the open-loop pipeline driver
//
// With -against, the fresh results are compared to a committed
// baseline document and any shared benchmark that regressed beyond the
// tolerance fails the run — the CI regression gate.
//
// Usage: bench [-out BENCH_8.json] [-against BENCH_8.json] [-skip-e2e]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/registry"
	"repro/internal/steal"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/wirefmt"
	"repro/satin"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type document struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	UnixTime   int64    `json:"unix_time"`
	Results    []result `json:"results"`
}

// spawnN spawns N trivial children and syncs (mirrors the satin
// package's internal spawn/sync benchmark).
type spawnN struct{ N int }

func (s spawnN) Execute(ctx *satin.Context) (any, error) {
	for i := 0; i < s.N; i++ {
		ctx.Spawn(nop{})
	}
	return s.N, ctx.Sync()
}

type nop struct{}

func (nop) Execute(*satin.Context) (any, error) { return nil, nil }

// benchPayload mirrors the shape of satin's steal-reply message. It
// has no binary codec on purpose: it keeps the session-gob arm honest.
type benchPayload struct {
	Seq    uint64
	HasJob bool
	ID     uint64
	Owner  string
	Args   [4]int
}

// benchPayloadBin is the same shape with the hand-rolled binary codec,
// as the production control frames encode since ISSUE 7.
type benchPayloadBin struct {
	Seq    uint64
	HasJob bool
	ID     uint64
	Owner  string
	Args   [4]int
}

func (m *benchPayloadBin) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Seq)
	b = wirefmt.AppendBool(b, m.HasJob)
	b = wirefmt.AppendUvarint(b, m.ID)
	b = wirefmt.AppendString(b, m.Owner)
	for _, a := range m.Args {
		b = wirefmt.AppendVarint(b, int64(a))
	}
	return b, nil
}

func (m *benchPayloadBin) DecodeWire(r *wirefmt.Reader) error {
	m.Seq = r.Uvarint()
	m.HasJob = r.Bool()
	m.ID = r.Uvarint()
	m.Owner = r.String()
	for i := range m.Args {
		m.Args[i] = int(r.Varint())
	}
	return r.Err()
}

func init() {
	satin.Register(spawnN{})
	satin.Register(nop{})
	wire.Register[benchPayload]("bench-payload")
	wire.Register[benchPayloadBin]("bench-payload-bin")
}

func fastReg() registry.Options {
	return registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
}

func main() {
	out := flag.String("out", "BENCH_8.json", "output JSON path (- for stdout)")
	against := flag.String("against", "", "baseline JSON document; fail on regression beyond tolerance")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression vs -against")
	skipE2E := flag.Bool("skip-e2e", false, "skip the multi-node end-to-end benchmarks")
	flag.Parse()

	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		UnixTime:   time.Now().Unix(),
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		doc.Results = append(doc.Results, result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %-16s %10d iters %12.1f ns/op\n",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}

	run("deque", benchDeque)
	run("steal_kernel", benchStealKernel)
	run("wire_roundtrip", benchWireRoundTrip)
	run("wire_roundtrip_session_gob", benchWireRoundTripGob)
	run("coord_tick_10k", benchCoordTick10k)
	if !*skipE2E {
		run("spawn_sync", benchSpawnSync)
		run("fib_e2e", benchFibE2E)
		run("stream_e2e", benchStreamE2E)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s (%d results)\n", *out, len(doc.Results))
	}
	if *against != "" {
		if err := compare(*against, doc, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no regression beyond %.0f%% vs %s\n", *tolerance*100, *against)
	}
}

// e2eNames are the live multi-goroutine benchmarks: their wall time on
// a shared CI runner is noisy, so they get triple the tolerance of the
// single-threaded microbenchmarks.
var e2eNames = map[string]bool{"spawn_sync": true, "fib_e2e": true, "stream_e2e": true}

// compare fails when any benchmark shared between doc and the baseline
// regressed in ns/op beyond the tolerance, or allocated meaningfully
// more. Benchmarks present on only one side are ignored, so arms can
// be added or retired without breaking the gate.
func compare(path string, doc document, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base document
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	byName := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	var bad []string
	for _, r := range doc.Results {
		b, ok := byName[r.Name]
		if !ok {
			continue
		}
		allowed := tol
		if e2eNames[r.Name] {
			allowed = 3 * tol
		}
		if r.NsPerOp > b.NsPerOp*(1+allowed) {
			bad = append(bad, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.0f%% > %.0f%% allowed)",
				r.Name, r.NsPerOp, b.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, allowed*100))
		}
		// Allocations are deterministic per op; a small absolute slack
		// absorbs runtime background noise around zero-alloc baselines.
		if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+allowed)+8 {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op vs baseline %d",
				r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("regressions vs %s:\n  %s", path, strings.Join(bad, "\n  "))
	}
	return nil
}

// benchDeque: one op = push then pop at the owner end.
func benchDeque(b *testing.B) {
	d := deque.New[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		if _, ok := d.PopBottom(); !ok {
			b.Fatal("deque lost an element")
		}
	}
}

// benchStealKernel: one op = one CRS round (Next + settle both slots)
// against a fixed 16-node, 2-cluster membership snapshot.
func benchStealKernel(b *testing.B) {
	members := make([]steal.Member, 0, 16)
	for i := 0; i < 16; i++ {
		cl := core.ClusterID("c0")
		if i >= 8 {
			cl = "c1"
		}
		members = append(members, steal.Member{
			ID: core.NodeID(fmt.Sprintf("n%02d", i)), Cluster: cl,
		})
	}
	eng := steal.New(steal.CRS, "n00", "c0", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := eng.Next(float64(i), members)
		if d.HasSync {
			eng.SyncDone(false)
		}
		if d.HasAsync {
			eng.AsyncDone(false)
		}
	}
}

// benchWireRoundTrip: one op = one typed frame through the binary
// control-frame codec, delivered through an ideal in-process fabric,
// decoded and dispatched — the production control path.
func benchWireRoundTrip(b *testing.B) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, err := f.Endpoint("a")
	if err != nil {
		b.Fatal(err)
	}
	epB, err := f.Endpoint("b")
	if err != nil {
		b.Fatal(err)
	}
	ca, cb := wire.New(epA), wire.New(epB)
	done := make(chan struct{}, 1)
	wire.Handle(cb, func(v benchPayloadBin, _ wire.Meta) { done <- struct{}{} })
	v := benchPayloadBin{Seq: 42, HasJob: true, ID: 7, Owner: "fs0/03", Args: [4]int{1, 2, 3, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.Send(ca, "b", v); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// benchWireRoundTripGob: the historical arm — the same frame shape
// through the session gob stream, as every control frame travelled
// before ISSUE 7.
func benchWireRoundTripGob(b *testing.B) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, err := f.Endpoint("a")
	if err != nil {
		b.Fatal(err)
	}
	epB, err := f.Endpoint("b")
	if err != nil {
		b.Fatal(err)
	}
	ca, cb := wire.New(epA), wire.New(epB)
	done := make(chan struct{}, 1)
	wire.Handle(cb, func(v benchPayload, _ wire.Meta) { done <- struct{}{} })
	v := benchPayload{Seq: 42, HasJob: true, ID: 7, Owner: "fs0/03", Args: [4]int{1, 2, 3, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.Send(ca, "b", v); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// benchRootActuator satisfies coord.RootActuator with no-ops: the
// benchmarked summaries sit mid-band, so the tick never acts.
type benchRootActuator struct{}

func (benchRootActuator) Provision(int, float64, coord.Veto) int        { return 0 }
func (benchRootActuator) Evict([]core.NodeID, string) []core.NodeID     { return nil }
func (benchRootActuator) ObservedBandwidth(core.ClusterID) float64      { return 0 }
func (benchRootActuator) Annotate(string)                               {}
func (benchRootActuator) ClusterNodes(core.ClusterID) []core.NodeID     { return nil }

// benchCoordTick10k: one op = one sharded root-kernel tick over a
// 10,000-node world condensed into 100 cluster summaries of 100 nodes
// each (8 eviction proposals per summary) — the per-period root cost
// the ISSUE 8 hierarchy keeps O(clusters).
func benchCoordTick10k(b *testing.B) {
	ecfg := core.DefaultConfig()
	rk, err := coord.NewRoot(coord.Config{Engine: &ecfg}, benchRootActuator{})
	if err != nil {
		b.Fatal(err)
	}
	const clusters, perCluster, proposals = 100, 100, 8
	ids := make([]core.ClusterID, 0, clusters)
	for i := 0; i < clusters; i++ {
		c := core.ClusterID(fmt.Sprintf("c%04d", i))
		sum := coord.ClusterSummary{
			Cluster: c, Seq: 1, Time: 100,
			Nodes: perCluster, Stats: perCluster,
			SpeedMax: 100, SpeedMin: 100,
			WorkSum:  40 * perCluster, // eff 0.4 at speed 100: mid-band
			EffSum:   0.4 * perCluster,
			SpeedSum: 100 * perCluster,
			InterSum: 0.05 * perCluster,
		}
		for p := 0; p < proposals; p++ {
			sum.Proposals = append(sum.Proposals, coord.NodeSample{
				Node:  core.NodeID(fmt.Sprintf("%s-n%03d", c, p)),
				Speed: 100, Idle: 0.55, InterComm: 0.05,
			})
		}
		ids = append(ids, c)
		rk.Ingest(sum)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := rk.Tick(100, ids, clusters*perCluster)
		if rec.Action != "none" {
			b.Fatalf("benchmark tick acted: %q (%s)", rec.Action, rec.Detail)
		}
	}
}

// benchSpawnSync: one op = a task spawning 256 trivial children and
// syncing on one live node.
func benchSpawnSync(b *testing.B) {
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{{Name: "c0", Nodes: 1}},
		Registry: fastReg(),
		Node:     satin.NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		b.Fatal(err)
	}
	n := nodes[0]
	if _, err := n.Run(spawnN{N: 1}); err != nil { // warm up
		b.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Run(spawnN{N: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFibE2E: one op = fib(20) with sequential cutoff 12 across 2
// clusters x 2 nodes — the whole runtime including steals and the
// emulated WAN.
func benchFibE2E(b *testing.B) {
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "fs0", Nodes: 2},
			{Name: "fs1", Nodes: 2},
		},
		Registry: fastReg(),
		Seed:     42,
		Node:     satin.NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	for _, c := range []satin.ClusterID{"fs0", "fs1"} {
		if _, err := g.StartNodes(c, 2); err != nil {
			b.Fatal(err)
		}
	}
	n := g.Node("fs0/00")
	want := apps.FibLeaves(20)
	task := apps.Fib{N: 20, SeqCutoff: 12}
	if _, err := n.Run(apps.Fib{N: 12, SeqCutoff: 12}); err != nil { // warm up
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := n.Run(task)
		if err != nil {
			b.Fatal(err)
		}
		if v.(int) != want {
			b.Fatalf("fib(20) = %v, want %d", v, want)
		}
	}
}

// benchStreamE2E: one op = one 256-item streaming window across 2
// clusters x 2 nodes — the ISSUE 9 workload class's unit of execution
// on the real runtime. WorkPerItem is zero so the measured cost is the
// window machinery (divide, steal, sync, latency accounting), not
// sleeps.
func benchStreamE2E(b *testing.B) {
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "fs0", Nodes: 2},
			{Name: "fs1", Nodes: 2},
		},
		Registry: fastReg(),
		Seed:     42,
		Node:     satin.NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	for _, c := range []satin.ClusterID{"fs0", "fs1"} {
		if _, err := g.StartNodes(c, 2); err != nil {
			b.Fatal(err)
		}
	}
	n := g.Node("fs0/00")
	window := apps.StreamWindow{Items: 256, Grain: 8}
	if _, err := n.Run(apps.StreamWindow{Items: 16, Grain: 8}); err != nil { // warm up
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := n.Run(window)
		if err != nil {
			b.Fatal(err)
		}
		if v.(int) != window.Items {
			b.Fatalf("window processed %v of %d items", v, window.Items)
		}
	}
}
