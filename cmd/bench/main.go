// Command bench runs the repo's performance baselines programmatically
// and writes them as one JSON document, so CI can archive a comparable
// per-PR artifact (BENCH_5.json) without parsing `go test -bench`
// output:
//
//   - deque: lock-free Chase–Lev push/pop (the spawn/sync hot path)
//   - steal_kernel: one CRS Next/SyncDone round against a 16-node view
//   - wire_roundtrip: a typed frame through the session codec and an
//     ideal in-process fabric
//   - spawn_sync: end-to-end spawn+execute+sync of 256 children on one
//     live satin node
//   - fib_e2e: fib(20) across 2 clusters x 2 nodes — steals, WAN
//     emulation and accounting included
//
// Usage: bench [-out BENCH_5.json] [-skip-e2e]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/registry"
	"repro/internal/steal"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/satin"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type document struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	UnixTime   int64    `json:"unix_time"`
	Results    []result `json:"results"`
}

// spawnN spawns N trivial children and syncs (mirrors the satin
// package's internal spawn/sync benchmark).
type spawnN struct{ N int }

func (s spawnN) Execute(ctx *satin.Context) (any, error) {
	for i := 0; i < s.N; i++ {
		ctx.Spawn(nop{})
	}
	return s.N, ctx.Sync()
}

type nop struct{}

func (nop) Execute(*satin.Context) (any, error) { return nil, nil }

// benchPayload mirrors the shape of satin's steal-reply message.
type benchPayload struct {
	Seq    uint64
	HasJob bool
	ID     uint64
	Owner  string
	Args   [4]int
}

func init() {
	satin.Register(spawnN{})
	satin.Register(nop{})
	wire.Register[benchPayload]("bench-payload")
}

func fastReg() registry.Options {
	return registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
}

func main() {
	out := flag.String("out", "BENCH_5.json", "output JSON path (- for stdout)")
	skipE2E := flag.Bool("skip-e2e", false, "skip the multi-node end-to-end benchmarks")
	flag.Parse()

	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		UnixTime:   time.Now().Unix(),
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		doc.Results = append(doc.Results, result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %-16s %10d iters %12.1f ns/op\n",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}

	run("deque", benchDeque)
	run("steal_kernel", benchStealKernel)
	run("wire_roundtrip", benchWireRoundTrip)
	if !*skipE2E {
		run("spawn_sync", benchSpawnSync)
		run("fib_e2e", benchFibE2E)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d results)\n", *out, len(doc.Results))
}

// benchDeque: one op = push then pop at the owner end.
func benchDeque(b *testing.B) {
	d := deque.New[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		if _, ok := d.PopBottom(); !ok {
			b.Fatal("deque lost an element")
		}
	}
}

// benchStealKernel: one op = one CRS round (Next + settle both slots)
// against a fixed 16-node, 2-cluster membership snapshot.
func benchStealKernel(b *testing.B) {
	members := make([]steal.Member, 0, 16)
	for i := 0; i < 16; i++ {
		cl := core.ClusterID("c0")
		if i >= 8 {
			cl = "c1"
		}
		members = append(members, steal.Member{
			ID: core.NodeID(fmt.Sprintf("n%02d", i)), Cluster: cl,
		})
	}
	eng := steal.New(steal.CRS, "n00", "c0", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := eng.Next(float64(i), members)
		if d.Sync != nil {
			eng.SyncDone(false)
		}
		if d.Async != nil {
			eng.AsyncDone(false)
		}
	}
}

// benchWireRoundTrip: one op = one typed frame encoded, delivered
// through an ideal in-process fabric, decoded and dispatched.
func benchWireRoundTrip(b *testing.B) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, err := f.Endpoint("a")
	if err != nil {
		b.Fatal(err)
	}
	epB, err := f.Endpoint("b")
	if err != nil {
		b.Fatal(err)
	}
	ca, cb := wire.New(epA), wire.New(epB)
	done := make(chan struct{}, 1)
	wire.Handle(cb, func(v benchPayload, _ wire.Meta) { done <- struct{}{} })
	v := benchPayload{Seq: 42, HasJob: true, ID: 7, Owner: "fs0/03", Args: [4]int{1, 2, 3, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.Send(ca, "b", v); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// benchSpawnSync: one op = a task spawning 256 trivial children and
// syncing on one live node.
func benchSpawnSync(b *testing.B) {
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{{Name: "c0", Nodes: 1}},
		Registry: fastReg(),
		Node:     satin.NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		b.Fatal(err)
	}
	n := nodes[0]
	if _, err := n.Run(spawnN{N: 1}); err != nil { // warm up
		b.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Run(spawnN{N: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFibE2E: one op = fib(20) with sequential cutoff 12 across 2
// clusters x 2 nodes — the whole runtime including steals and the
// emulated WAN.
func benchFibE2E(b *testing.B) {
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "fs0", Nodes: 2},
			{Name: "fs1", Nodes: 2},
		},
		Registry: fastReg(),
		Seed:     42,
		Node:     satin.NodeConfig{Registry: fastReg()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	for _, c := range []satin.ClusterID{"fs0", "fs1"} {
		if _, err := g.StartNodes(c, 2); err != nil {
			b.Fatal(err)
		}
	}
	n := g.Node("fs0/00")
	want := apps.FibLeaves(20)
	task := apps.Fib{N: 20, SeqCutoff: 12}
	if _, err := n.Run(apps.Fib{N: 12, SeqCutoff: 12}); err != nil { // warm up
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := n.Run(task)
		if err != nil {
			b.Fatal(err)
		}
		if v.(int) != want {
			b.Fatalf("fib(20) = %v, want %d", v, want)
		}
	}
}
