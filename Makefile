# Reproduction of "Self-adaptive applications on the grid" — build and
# verification entry points. `make verify` is the gate every change
# must pass: it compiles everything, runs go vet, and runs the whole
# test suite under the race detector (the adaptation kernel is fed
# concurrently by transport handlers in the real runtime, so -race is
# not optional here).

GO ?= go

.PHONY: build test vet race verify gridsim chaos bench bench-check fuzz-smoke satind-smoke replay-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet race

# Run the paper's evaluation scenarios (Figure 1 table + period logs).
gridsim:
	$(GO) run ./cmd/gridsim -scenario all

# Deque/steal/runtime microbenchmarks (one iteration each: a smoke run
# that proves every benchmark still compiles and executes; for timing
# numbers use -benchtime/-count as in EXPERIMENTS.md), followed by the
# JSON baseline harness CI archives per PR (cmd/bench). Refreshes the
# committed BENCH_8.json.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -count=1 ./internal/deque ./internal/steal ./satin ./internal/transport/wire ./internal/coord
	$(GO) run ./cmd/bench -out BENCH_8.json

# Regression gate: run the harness fresh and compare against the
# committed baseline, failing on >35% ns/op (or alloc) regression on
# any shared benchmark (e2e arms get 3x slack). Single runs of the
# sub-microsecond kernels swing ~20% run-to-run on a shared 1-CPU
# runner, so the gate is sized to catch real regressions (2x), not
# scheduler noise.
bench-check:
	$(GO) run ./cmd/bench -out BENCH_8.ci.json -against BENCH_8.json -tolerance 0.35

# Short fuzz smoke over the adversarial-input decoders (`go test -fuzz`
# accepts one target per invocation, hence one line each): the wirefmt
# reader, the binary control-frame decoder, and the batch envelope
# parser.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReader -fuzztime=10s ./internal/wirefmt
	$(GO) test -run=NONE -fuzz=FuzzBinaryFrameDecode -fuzztime=10s ./internal/transport/wire
	$(GO) test -run=NONE -fuzz=FuzzBatchEnvelope -fuzztime=10s ./internal/transport/wire

# End-to-end smoke of the multi-job service: start satind, run two
# jobs concurrently through the client, check results and per-job
# metrics, drain with SIGTERM.
satind-smoke:
	./scripts/satind_smoke.sh

# Durable-record smoke: gridsim with -record-db, then cmd/replay must
# reproduce the live period log byte-for-byte from the store and
# -compare must accept a faithful rerun.
replay-smoke:
	./scripts/replay_smoke.sh

# Chaos harness: the full seeded scenario corpora (24 randomized batch
# DES scenarios, 24 sharded-tree scenarios with coordinator kills, and
# 24 streaming scenarios checked against the latency-SLO invariants),
# the fault-transport unit tests, and the live-runtime chaos tests —
# all under the race detector. A failure prints its seed; replay one
# scenario with
#   go test ./internal/chaos -run 'ChaosCorpusDES/seed=N'
chaos:
	$(GO) test -race -run Chaos ./...
