# Reproduction of "Self-adaptive applications on the grid" — build and
# verification entry points. `make verify` is the gate every change
# must pass: it compiles everything, runs go vet, and runs the whole
# test suite under the race detector (the adaptation kernel is fed
# concurrently by transport handlers in the real runtime, so -race is
# not optional here).

GO ?= go

.PHONY: build test vet race verify gridsim chaos bench satind-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet race

# Run the paper's evaluation scenarios (Figure 1 table + period logs).
gridsim:
	$(GO) run ./cmd/gridsim -scenario all

# Deque/steal/runtime microbenchmarks (one iteration each: a smoke run
# that proves every benchmark still compiles and executes; for timing
# numbers use -benchtime/-count as in EXPERIMENTS.md), followed by the
# JSON baseline harness CI archives per PR (cmd/bench).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -count=1 ./internal/deque ./internal/steal ./satin
	$(GO) run ./cmd/bench -out BENCH_5.json

# End-to-end smoke of the multi-job service: start satind, run two
# jobs concurrently through the client, check results and per-job
# metrics, drain with SIGTERM.
satind-smoke:
	./scripts/satind_smoke.sh

# Chaos harness: the full seeded scenario corpus (24 randomized
# DES scenarios), the fault-transport unit tests, and the live-runtime
# chaos tests — all under the race detector. A failure prints its seed;
# replay one scenario with
#   go test ./internal/chaos -run 'ChaosCorpusDES/seed=N'
chaos:
	$(GO) test -race -run Chaos ./...
