package adapt_test

// Scripted-report chaos tests: instead of running a real workload,
// these drive the coordinator with fake registry members and
// hand-crafted metrics.Reports, so the decision path under test
// (cluster-eviction fallback, blacklist persistence across repeated
// shrinks) is hit deterministically every run.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/adapt"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// scriptWorker is a registry member that obeys "leave" signals like a
// real satin node: it departs gracefully and never comes back.
type scriptWorker struct {
	id      core.NodeID
	cluster core.ClusterID
	cli     *registry.Client
	left    chan struct{}
}

func startScriptWorker(t *testing.T, f transport.Fabric, id core.NodeID, cluster core.ClusterID) *scriptWorker {
	t.Helper()
	cli, err := registry.Join(f, registry.NodeInfo{ID: id, Cluster: cluster}, fastReg())
	if err != nil {
		t.Fatal(err)
	}
	w := &scriptWorker{id: id, cluster: cluster, cli: cli, left: make(chan struct{})}
	go func() {
		for ev := range cli.Events() {
			if ev.Kind == registry.SignalEvent && ev.Signal == "leave" {
				cli.Leave()
				close(w.left)
				return
			}
		}
	}()
	t.Cleanup(func() { cli.Close() })
	return w
}

func (w *scriptWorker) gone() bool {
	select {
	case <-w.left:
		return true
	default:
		return false
	}
}

// scriptProvisioner records every provisioning request and what the
// veto said about a fixed candidate pool.
type scriptProvisioner struct {
	mu         sync.Mutex
	calls      int
	candidates []registry.NodeInfo
	vetoed     map[core.NodeID]bool
}

func (p *scriptProvisioner) Provision(n int, minBW float64, veto func(adapt.NodeID, adapt.ClusterID) bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	for _, c := range p.candidates {
		if veto(c.ID, c.Cluster) {
			if p.vetoed == nil {
				p.vetoed = map[core.NodeID]bool{}
			}
			p.vetoed[c.ID] = true
		}
	}
	return 0 // grants nothing: the node set only ever shrinks
}

func (p *scriptProvisioner) snapshot() (int, map[core.NodeID]bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[core.NodeID]bool, len(p.vetoed))
	for id := range p.vetoed {
		out[id] = true
	}
	return p.calls, out
}

var feederSeq atomic.Int64

// feeder periodically reports scripted statistics for every worker
// still in the computation.
func feedReports(t *testing.T, f transport.Fabric, stop chan struct{},
	report func(w *scriptWorker, start, end float64) metrics.Report, workers []*scriptWorker) {
	t.Helper()
	ep, err := f.Endpoint(fmt.Sprintf("feeder-%d", feederSeq.Add(1)))
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.New(ep)
	go func() {
		defer wc.Close()
		period := 0
		const dur = 0.1
		for {
			select {
			case <-stop:
				return
			case <-time.After(60 * time.Millisecond):
			}
			start := float64(period) * dur
			for _, w := range workers {
				if w.gone() {
					continue
				}
				wire.Send(wc, adapt.EndpointName, report(w, start, start+dur))
			}
			period++
		}
	}()
}

// The cluster-eviction fallback: a badly connected cluster holds only
// the protected master, so evacuating it is impossible — the
// coordinator must fall back to shedding the worst ordinary nodes
// elsewhere, must NOT blacklist the cluster it could not actually
// evict, and must never touch the master.
func TestChaosClusterEvictionFallback(t *testing.T) {
	fab := transport.NewInProc(nil)
	defer fab.Close()
	if _, err := registry.NewServer(fab, fastReg()); err != nil {
		t.Fatal(err)
	}

	master := startScriptWorker(t, fab, "bad/00", "bad")
	var others []*scriptWorker
	for _, id := range []core.NodeID{"ok/00", "ok/01", "ok/02", "ok/03"} {
		others = append(others, startScriptWorker(t, fab, id, "ok"))
	}
	workers := append([]*scriptWorker{master}, others...)

	prov := &scriptProvisioner{}
	coord, err := adapt.Start(fab, prov, adapt.Config{
		Period:    150 * time.Millisecond,
		Protected: []adapt.NodeID{master.id},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	// Script: WAE ~0.2 (below E_min) and the "bad" cluster spends 50%
	// of its time in inter-cluster communication — exceptional against
	// the others' 5%, so the engine decides remove-cluster("bad").
	stop := make(chan struct{})
	defer close(stop)
	feedReports(t, fab, stop, func(w *scriptWorker, start, end float64) metrics.Report {
		dur := end - start
		rep := metrics.Report{Node: w.id, Cluster: w.cluster, Start: start, End: end, Speed: 1}
		if w.cluster == "bad" {
			rep.BusySec, rep.IdleSec, rep.InterSec = 0.2*dur, 0.3*dur, 0.5*dur
		} else {
			rep.BusySec, rep.IdleSec, rep.InterSec = 0.2*dur, 0.75*dur, 0.05*dur
		}
		return rep
	}, workers)

	// The fallback must shed ordinary nodes since the offending
	// cluster cannot be evacuated.
	deadline := time.Now().Add(10 * time.Second)
	lastBlacklist := 0
	for {
		evicted := 0
		for _, w := range others {
			if w.gone() {
				evicted++
			}
		}
		// Blacklists only grow, even while we poll mid-flight.
		if n := len(coord.Requirements().BlacklistedNodes()); n < lastBlacklist {
			t.Fatalf("node blacklist shrank: %d -> %d", lastBlacklist, n)
		} else {
			lastBlacklist = n
		}
		if evicted >= 2 {
			break
		}
		if time.Now().After(deadline) {
			for _, h := range coord.History() {
				t.Logf("WAE=%.3f stats=%d action=%q (+%d -%d) %s",
					h.WAE, h.Stats, h.Action, h.Added, h.Removed, h.Detail)
			}
			t.Fatalf("fallback never evicted ordinary nodes (%d gone)", evicted)
		}
		time.Sleep(30 * time.Millisecond)
	}

	if master.gone() {
		t.Error("protected master was evicted")
	}
	// The cluster itself must not be blacklisted: nothing actually
	// left it, so concluding "this site is unusable" would be wrong.
	if bl := coord.Requirements().BlacklistedClusters(); len(bl) != 0 {
		t.Errorf("cluster blacklisted despite failed evacuation: %v", bl)
	}
	// The record must say what happened: a remove-cluster decision
	// that removed ordinary nodes instead.
	sawFallback := false
	for _, h := range coord.History() {
		if h.Action == "remove-cluster" && h.Removed > 0 {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("history records no remove-cluster tick with fallback removals")
	}
	for _, id := range coord.Requirements().BlacklistedNodes() {
		if id == master.id {
			t.Error("protected master on the blacklist")
		}
	}
}

// Blacklist persistence under repeated shrinks: every shrink round
// adds to the blacklist, never replaces it, and once the coordinator
// wants to grow again the veto bars every previously evicted node from
// re-entry.
func TestChaosBlacklistPersistsAcrossShrinks(t *testing.T) {
	fab := transport.NewInProc(nil)
	defer fab.Close()
	if _, err := registry.NewServer(fab, fastReg()); err != nil {
		t.Fatal(err)
	}

	ids := []core.NodeID{"c0/00", "c0/01", "c0/02", "c0/03", "c0/04", "c0/05"}
	var workers []*scriptWorker
	for _, id := range ids {
		workers = append(workers, startScriptWorker(t, fab, id, "c0"))
	}
	master := workers[0]

	prov := &scriptProvisioner{}
	for _, id := range ids {
		prov.candidates = append(prov.candidates, registry.NodeInfo{ID: id, Cluster: "c0"})
	}
	coord, err := adapt.Start(fab, prov, adapt.Config{
		Period:    150 * time.Millisecond,
		Protected: []adapt.NodeID{master.id},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	// Phase 1: everyone nearly idle — WAE far below E_min, so the
	// coordinator sheds nodes round after round (fresh statistics in
	// between, so consecutive shrinks are legitimate).
	stop1 := make(chan struct{})
	feedReports(t, fab, stop1, func(w *scriptWorker, start, end float64) metrics.Report {
		dur := end - start
		return metrics.Report{Node: w.id, Cluster: w.cluster, Start: start, End: end,
			Speed: 1, BusySec: 0.1 * dur, IdleSec: 0.9 * dur}
	}, workers)

	deadline := time.Now().Add(10 * time.Second)
	lastBlacklist := 0
	shrunkTo := func() int {
		n := 0
		for _, w := range workers {
			if !w.gone() {
				n++
			}
		}
		return n
	}
	for shrunkTo() > 2 {
		if n := len(coord.Requirements().BlacklistedNodes()); n < lastBlacklist {
			t.Fatalf("node blacklist shrank between rounds: %d -> %d", lastBlacklist, n)
		} else {
			lastBlacklist = n
		}
		if time.Now().After(deadline) {
			t.Fatalf("repeated shrinks stalled with %d workers left (blacklist %d)",
				shrunkTo(), lastBlacklist)
		}
		time.Sleep(30 * time.Millisecond)
	}
	close(stop1)
	if master.gone() {
		t.Fatal("protected master was evicted")
	}
	evictedCount := len(ids) - shrunkTo()
	if got := len(coord.Requirements().BlacklistedNodes()); got != evictedCount {
		t.Errorf("blacklist has %d nodes, %d were evicted", got, evictedCount)
	}

	// Phase 2: the survivors are suddenly fully busy — WAE above
	// E_max, so the coordinator asks for more nodes. The veto handed
	// to the provisioner must reject every evicted node.
	var survivors []*scriptWorker
	for _, w := range workers {
		if !w.gone() {
			survivors = append(survivors, w)
		}
	}
	stop2 := make(chan struct{})
	defer close(stop2)
	feedReports(t, fab, stop2, func(w *scriptWorker, start, end float64) metrics.Report {
		dur := end - start
		return metrics.Report{Node: w.id, Cluster: w.cluster, Start: start + 100, End: end + 100,
			Speed: 1, BusySec: 0.95 * dur, IdleSec: 0.05 * dur}
	}, survivors)

	deadline = time.Now().Add(10 * time.Second)
	for {
		calls, vetoed := prov.snapshot()
		if calls > 0 {
			missing := 0
			for _, w := range workers {
				if w.gone() && !vetoed[w.id] {
					missing++
				}
			}
			if missing == 0 {
				break // every evicted node was barred from re-entry
			}
		}
		if time.Now().After(deadline) {
			calls, vetoed := prov.snapshot()
			t.Fatalf("provisioner never saw all evicted nodes vetoed (calls=%d vetoed=%v blacklist=%v)",
				calls, vetoed, coord.Requirements().BlacklistedNodes())
		}
		time.Sleep(30 * time.Millisecond)
	}
}
