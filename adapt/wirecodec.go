package adapt

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wirefmt"
)

// Binary codec for the sub→main report batch (ISSUE 7); the per-report
// encoding lives with metrics.Report itself.

// AppendWire implements wirefmt.Frame.
func (m *reportBatch) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, string(m.Cluster))
	b = wirefmt.AppendUvarint(b, uint64(len(m.Reports)))
	var err error
	for i := range m.Reports {
		if b, err = m.Reports[i].AppendWire(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeWire implements wirefmt.Frame.
func (m *reportBatch) DecodeWire(r *wirefmt.Reader) error {
	m.Cluster = core.ClusterID(r.String())
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n == 0 {
		return nil // empty decodes as nil, matching gob
	}
	if n > uint64(r.Remaining()) {
		r.Fail("report count exceeds frame")
		return r.Err()
	}
	m.Reports = make([]metrics.Report, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var rep metrics.Report
		if err := rep.DecodeWire(r); err != nil {
			return err
		}
		m.Reports = append(m.Reports, rep)
	}
	return r.Err()
}

// Binary codecs for the sharded-coordination control frames (ISSUE 8).
// The ClusterSummary codec lives with coord.ClusterSummary itself; the
// ack and reset frames are encoded here.

// AppendWire implements wirefmt.Frame.
func (m *summaryAck) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, string(m.Cluster))
	b = wirefmt.AppendUvarint(b, m.Seq)
	b = wirefmt.AppendUvarint(b, m.Epoch)
	return m.Req.AppendWire(b)
}

// DecodeWire implements wirefmt.Frame.
func (m *summaryAck) DecodeWire(r *wirefmt.Reader) error {
	m.Cluster = core.ClusterID(r.String())
	m.Seq = r.Uvarint()
	m.Epoch = r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	return m.Req.DecodeWire(r)
}

// AppendWire implements wirefmt.Frame.
func (m *shardReset) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Epoch)
	return m.Req.AppendWire(b)
}

// DecodeWire implements wirefmt.Frame.
func (m *shardReset) DecodeWire(r *wirefmt.Reader) error {
	m.Epoch = r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	return m.Req.DecodeWire(r)
}
