package adapt_test

// Live sharded-tree tests (ISSUE 8): scripted reports drive real
// sub-kernel-mode SubCoordinators against a real sharded root over the
// in-process fabric, so the failover path — missed acks, election,
// requirements carryover, resumed adaptation — runs with real
// goroutines, timers and registry failure detection (and under -race
// in CI's chaos slice).

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/adapt"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// feedSubReports periodically reports scripted statistics for every
// worker still in the computation — to the worker's per-cluster
// sub-coordinator endpoint, as hierarchical deployments do. The offset
// shifts the report timestamps so a later feeding phase always looks
// fresher than an earlier one.
func feedSubReports(t *testing.T, f transport.Fabric, stop chan struct{}, offset float64,
	report func(w *scriptWorker, start, end float64) metrics.Report, workers []*scriptWorker) {
	t.Helper()
	ep, err := f.Endpoint(fmt.Sprintf("shard-feeder-%d", feederSeq.Add(1)))
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.New(ep)
	go func() {
		defer wc.Close()
		period := 0
		const dur = 0.1
		for {
			select {
			case <-stop:
				return
			case <-time.After(60 * time.Millisecond):
			}
			start := offset + float64(period)*dur
			for _, w := range workers {
				if w.gone() {
					continue
				}
				wire.Send(wc, adapt.SubEndpointName(w.cluster), report(w, start, start+dur))
			}
			period++
		}
	}()
}

// TestChaosShardedRootFailover kills the live sharded root mid-run.
// The sub-coordinators must notice through missed acks, elect a
// successor (deterministically the lowest sub endpoint — cluster ca),
// carry the learned blacklist over, and converge the grid back into
// the [E_min, E_max] band under the new root.
func TestChaosShardedRootFailover(t *testing.T) {
	fab := transport.NewInProc(nil)
	defer fab.Close()
	if _, err := registry.NewServer(fab, fastReg()); err != nil {
		t.Fatal(err)
	}

	var workers []*scriptWorker
	for _, id := range []core.NodeID{"ca/00", "ca/01", "ca/02"} {
		workers = append(workers, startScriptWorker(t, fab, id, "ca"))
	}
	for _, id := range []core.NodeID{"cb/00", "cb/01", "cb/02"} {
		workers = append(workers, startScriptWorker(t, fab, id, "cb"))
	}
	master := workers[0]

	const period = 150 * time.Millisecond
	prov := &scriptProvisioner{}
	root, err := adapt.Start(fab, prov, adapt.Config{
		Sharded:   true,
		Period:    period,
		Protected: []adapt.NodeID{master.id},
		Registry:  fastReg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rootStopped := false
	defer func() {
		if !rootStopped {
			root.Stop()
		}
	}()

	subCfg := adapt.SubConfig{
		Period:        period,
		FailoverAfter: 2,
		Prov:          prov,
		Registry:      fastReg(),
		Root: adapt.Config{
			Period:    period,
			Protected: []adapt.NodeID{master.id},
			Registry:  fastReg(),
		},
	}
	subs := map[adapt.ClusterID]*adapt.SubCoordinator{}
	for _, cl := range []adapt.ClusterID{"ca", "cb"} {
		sub, err := adapt.StartSubKernel(fab, cl, subCfg)
		if err != nil {
			t.Fatal(err)
		}
		subs[cl] = sub
		defer sub.Stop()
	}

	// Phase 1: idle-heavy statistics — WAE far below E_min — until the
	// root has shed and blacklisted at least one node.
	stop1 := make(chan struct{})
	feedSubReports(t, fab, stop1, 0, func(w *scriptWorker, start, end float64) metrics.Report {
		dur := end - start
		return metrics.Report{Node: w.id, Cluster: w.cluster, Start: start, End: end,
			Speed: 1, BusySec: 0.1 * dur, IdleSec: 0.9 * dur}
	}, workers)

	deadline := time.Now().Add(10 * time.Second)
	var preBlacklist []core.NodeID
	for {
		preBlacklist = root.Requirements().BlacklistedNodes()
		if len(preBlacklist) > 0 {
			break
		}
		if time.Now().After(deadline) {
			close(stop1)
			for _, h := range root.History() {
				t.Logf("WAE=%.3f stats=%d action=%q (+%d -%d) %s",
					h.WAE, h.Stats, h.Action, h.Added, h.Removed, h.Detail)
			}
			t.Fatal("sharded root never evicted and blacklisted a node")
		}
		time.Sleep(30 * time.Millisecond)
	}
	close(stop1)

	// Let a few ack rounds distribute the updated requirements cache to
	// the subs (the failover seed), then kill the root.
	time.Sleep(3 * period)
	root.Stop()
	rootStopped = true

	// The subs detect the silence and one elects itself. Cluster ca owns
	// the lowest endpoint name, so it should win; we accept either sub
	// (the registry's failure detector may reorder under load) — the
	// invariants under test are that exactly one succeeds and recovers.
	var promoted *adapt.Coordinator
	deadline = time.Now().Add(10 * time.Second)
	for promoted == nil {
		for cl, sub := range subs {
			if p := sub.Promoted(); p != nil {
				promoted = p
				t.Logf("cluster %s promoted itself", cl)
				break
			}
		}
		if promoted == nil {
			if time.Now().After(deadline) {
				t.Fatal("no sub-coordinator promoted itself after root death")
			}
			time.Sleep(30 * time.Millisecond)
		}
	}
	defer promoted.Stop()
	if other := subs["ca"].Promoted(); other == nil {
		// cb must only win when ca genuinely dropped off the registry.
		t.Logf("note: cb won the election (ca's registry entry lapsed)")
	}

	// Blacklist carryover: the successor re-bootstraps requirements from
	// the subs' cached ReqState; blacklists must never regress.
	deadline = time.Now().Add(10 * time.Second)
	for {
		have := map[core.NodeID]bool{}
		for _, id := range promoted.Requirements().BlacklistedNodes() {
			have[id] = true
		}
		missing := 0
		for _, id := range preBlacklist {
			if !have[id] {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blacklist regressed across failover: pre %v, post %v",
				preBlacklist, promoted.Requirements().BlacklistedNodes())
		}
		time.Sleep(30 * time.Millisecond)
	}

	// Phase 2: in-band statistics (efficiency 0.4) — the successor must
	// see the grid back inside [E_min, E_max] on fresh reports.
	stop2 := make(chan struct{})
	defer close(stop2)
	feedSubReports(t, fab, stop2, 1000, func(w *scriptWorker, start, end float64) metrics.Report {
		dur := end - start
		return metrics.Report{Node: w.id, Cluster: w.cluster, Start: start, End: end,
			Speed: 1, BusySec: 0.4 * dur, IdleSec: 0.6 * dur}
	}, workers)

	th := adapt.DefaultThresholds()
	deadline = time.Now().Add(10 * time.Second)
	for {
		inBand := false
		for _, h := range promoted.History() {
			if h.Stats > 0 && h.WAE >= th.EMin && h.WAE <= th.EMax {
				inBand = true
				break
			}
		}
		if inBand {
			break
		}
		if time.Now().After(deadline) {
			for _, h := range promoted.History() {
				t.Logf("WAE=%.3f stats=%d action=%q (+%d -%d) %s",
					h.WAE, h.Stats, h.Action, h.Added, h.Removed, h.Detail)
			}
			t.Fatal("successor never saw the grid back in the efficiency band")
		}
		time.Sleep(30 * time.Millisecond)
	}

	if master.gone() {
		t.Error("protected master was evicted during failover")
	}
}

// TestShardedStreamSLOGrowsOnViolation drives ISSUE 9's streaming
// objective through the live sharded tree: per-cluster stream partials
// fed to sub-kernel-mode SubCoordinators must travel inside
// ClusterSummary frames, sum at the root, and push its StreamSLO
// objective into a proportional grow decision — the sharded analogue of
// the flat coordinator path the job layer exercises.
func TestShardedStreamSLOGrowsOnViolation(t *testing.T) {
	fab := transport.NewInProc(nil)
	defer fab.Close()
	if _, err := registry.NewServer(fab, fastReg()); err != nil {
		t.Fatal(err)
	}

	var workers []*scriptWorker
	for _, id := range []core.NodeID{"ca/00", "ca/01"} {
		workers = append(workers, startScriptWorker(t, fab, id, "ca"))
	}
	for _, id := range []core.NodeID{"cb/00", "cb/01"} {
		workers = append(workers, startScriptWorker(t, fab, id, "cb"))
	}

	const period = 100 * time.Millisecond
	slo := adapt.DefaultStreamSLO(1) // 1s latency target
	prov := &scriptProvisioner{}
	root, err := adapt.Start(fab, prov, adapt.Config{
		Sharded:   true,
		Period:    period,
		Registry:  fastReg(),
		StreamSLO: &slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Stop()

	subs := map[adapt.ClusterID]*adapt.SubCoordinator{}
	for _, cl := range []adapt.ClusterID{"ca", "cb"} {
		sub, err := adapt.StartSubKernel(fab, cl, adapt.SubConfig{
			Period: period, Prov: prov, Registry: fastReg(),
		})
		if err != nil {
			t.Fatal(err)
		}
		subs[cl] = sub
		defer sub.Stop()
	}

	// Busy, healthy node statistics — under the streaming objective the
	// efficiency band must not matter; only the latency does.
	stop := make(chan struct{})
	defer close(stop)
	feedSubReports(t, fab, stop, 0, func(w *scriptWorker, start, end float64) metrics.Report {
		dur := end - start
		return metrics.Report{Node: w.id, Cluster: w.cluster, Start: start, End: end,
			Speed: 1, BusySec: 0.9 * dur, IdleSec: 0.1 * dur}
	}, workers)
	// Each cluster completes items at a 4s mean latency — four times the
	// target, an unambiguous SLO violation every period.
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			subs["ca"].ObserveStream(adapt.StreamObs{Arrived: 5, Completed: 5, LatencySum: 20})
			subs["cb"].ObserveStream(adapt.StreamObs{Arrived: 5, Completed: 5, LatencySum: 20, Backlog: 2})
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		grew := false
		for _, h := range root.History() {
			if h.Action == "add" && h.Stats > 0 {
				if h.WAE >= 1 {
					t.Fatalf("grow decision with healthy stream: health %.3f (%s)", h.WAE, h.Detail)
				}
				if !strings.Contains(h.Detail, "stream health") {
					t.Fatalf("grow reason is not the streaming objective's: %q", h.Detail)
				}
				grew = true
				break
			}
		}
		if grew {
			break
		}
		if time.Now().After(deadline) {
			for _, h := range root.History() {
				t.Logf("health=%.3f stats=%d action=%q (+%d -%d) %s",
					h.WAE, h.Stats, h.Action, h.Added, h.Removed, h.Detail)
			}
			t.Fatal("sharded root never grew on a sustained stream SLO violation")
		}
		time.Sleep(30 * time.Millisecond)
	}
}

// TestSubFlushRetriesUntilRootReturns pins the relay-mode outage fix:
// a batch the sub cannot deliver (coordinator down) is counted on the
// forward_failures counter and retained, then redelivered once the
// coordinator endpoint exists again — never silently dropped.
func TestSubFlushRetriesUntilRootReturns(t *testing.T) {
	fab := transport.NewInProc(nil)
	defer fab.Close()
	if _, err := registry.NewServer(fab, fastReg()); err != nil {
		t.Fatal(err)
	}

	const period = 100 * time.Millisecond
	sub, err := adapt.StartSub(fab, "c0", period)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Stop()

	ep, err := fab.Endpoint("pusher")
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.New(ep)
	defer wc.Close()

	// The only report this test ever sends arrives while no coordinator
	// exists: any batch the coordinator later receives must be the
	// retained one.
	failures := obs.Default.Counter("adapt/forward_failures")
	before := failures.Value()
	rep := metrics.Report{Node: "c0/00", Cluster: "c0", End: 0.1,
		BusySec: 0.05, IdleSec: 0.05, Speed: 1}
	if err := wire.Send(wc, adapt.SubEndpointName("c0"), rep); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for failures.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("flush to the missing coordinator never failed visibly")
		}
		time.Sleep(10 * time.Millisecond)
	}

	coord, err := adapt.Start(fab, &scriptProvisioner{}, adapt.Config{
		Period: period, MonitorOnly: true, Registry: fastReg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	deadline = time.Now().Add(5 * time.Second)
	for coord.MessagesReceived() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retained batch was never redelivered after the outage")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
