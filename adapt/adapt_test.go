package adapt_test

import (
	"strings"
	"testing"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/internal/registry"
	"repro/satin"
)

func fastReg() registry.Options {
	return registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
}

func newGrid(t *testing.T, period time.Duration, clusters ...satin.ClusterSpec) *satin.Grid {
	t.Helper()
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters:   clusters,
		Registry:   fastReg(),
		LANLatency: 50 * time.Microsecond,
		WANLatency: time.Millisecond,
		Node: satin.NodeConfig{
			Registry:          fastReg(),
			Coordinator:       adapt.EndpointName,
			MonitorPeriod:     period,
			Bench:             apps.Fib{N: 16, SeqCutoff: 16},
			BenchWork:         float64(apps.FibLeaves(16)),
			BenchBudget:       0.05,
			LocalStealTimeout: 50 * time.Millisecond,
			WANStealTimeout:   300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// driveWork keeps the master busy with back-to-back parallel jobs
// until stop closes — an iterative application.
func driveWork(master *satin.Node, task satin.Task, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		fut := master.Submit(task)
		fut.Wait()
	}
}

func TestCoordinatorGrowsUnderHighEfficiency(t *testing.T) {
	period := 400 * time.Millisecond
	g := newGrid(t, period, satin.ClusterSpec{Name: "c0", Nodes: 6})
	nodes, err := g.StartNodes("c0", 1)
	if err != nil {
		t.Fatal(err)
	}
	master := nodes[0]
	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:    period,
		Protected: []adapt.NodeID{master.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		driveWork(master, apps.Fib{N: 21, SeqCutoff: 10, LeafDelay: 2 * time.Millisecond}, stop)
	}()

	deadline := time.Now().Add(8 * time.Second)
	for g.NodeCount() < 3 {
		if time.Now().After(deadline) {
			for _, h := range coord.History() {
				t.Logf("WAE=%.3f nodes=%d action=%s (+%d -%d) %s",
					h.WAE, h.Nodes, h.Action, h.Added, h.Removed, h.Detail)
			}
			t.Fatalf("coordinator never grew the node set: %d nodes", g.NodeCount())
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	<-done
	grew := false
	for _, h := range coord.History() {
		if h.Action == "add" && h.Added > 0 {
			grew = true
		}
	}
	if !grew {
		t.Error("history records no add action")
	}
}

func TestCoordinatorShrinksWhenIdle(t *testing.T) {
	period := 400 * time.Millisecond
	g := newGrid(t, period, satin.ClusterSpec{Name: "c0", Nodes: 6})
	nodes, err := g.StartNodes("c0", 6)
	if err != nil {
		t.Fatal(err)
	}
	master := nodes[0]
	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:    period,
		Protected: []adapt.NodeID{master.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	// Nearly no work: six nodes sit idle, WAE collapses, the
	// coordinator must release capacity.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fut := master.Submit(apps.Fib{N: 5, SeqCutoff: 10})
			fut.Wait()
			time.Sleep(20 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(8 * time.Second)
	for g.NodeCount() > 3 {
		if time.Now().After(deadline) {
			for _, h := range coord.History() {
				t.Logf("WAE=%.3f nodes=%d action=%s (+%d -%d)",
					h.WAE, h.Nodes, h.Action, h.Added, h.Removed)
			}
			t.Fatalf("coordinator never shrank an idle node set: %d nodes", g.NodeCount())
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	<-done
	// The removed nodes are blacklisted (the paper's conservative
	// policy) and the master survived.
	if master.Stopped() {
		t.Error("protected master was removed")
	}
	if len(coord.Requirements().BlacklistedNodes()) == 0 {
		t.Error("removed nodes were not blacklisted")
	}
}

func TestMonitorOnlyNeverActs(t *testing.T) {
	period := 300 * time.Millisecond
	g := newGrid(t, period, satin.ClusterSpec{Name: "c0", Nodes: 4})
	nodes, err := g.StartNodes("c0", 4)
	if err != nil {
		t.Fatal(err)
	}
	master := nodes[0]
	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:      period,
		MonitorOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	// A trickle of work keeps the measured WAE genuinely positive
	// (a fully idle grid's WAE is exactly zero), while the mostly-idle
	// node set is one an acting coordinator would shrink.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fut := master.Submit(apps.Fib{N: 12, SeqCutoff: 10})
			fut.Wait()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	time.Sleep(2 * time.Second)
	close(stop)
	<-done
	if got := g.NodeCount(); got != 4 {
		t.Fatalf("monitor-only run changed the node set: %d nodes", got)
	}
	hist := coord.History()
	if len(hist) == 0 {
		t.Fatal("no periods recorded")
	}
	recorded := false
	for _, h := range hist {
		if h.WAE > 0 {
			recorded = true
		}
		if h.Added != 0 || h.Removed != 0 {
			t.Fatalf("monitor-only acted: %+v", h)
		}
	}
	if !recorded {
		t.Error("WAE never computed despite reports")
	}
}

func TestDefaultThresholdsMatchPaper(t *testing.T) {
	th := adapt.DefaultThresholds()
	if th.EMin != 0.30 || th.EMax != 0.50 {
		t.Fatalf("thresholds = %+v, want EMin 0.30 EMax 0.50", th)
	}
	stats := []adapt.NodeStats{
		{Node: "a", Cluster: "c", Speed: 10, Idle: 0.5},
		{Node: "b", Cluster: "c", Speed: 5, Idle: 0.5},
	}
	wae := adapt.WeightedAverageEfficiency(stats)
	if wae <= 0 || wae >= 1 {
		t.Fatalf("WAE = %v", wae)
	}
}

// The §7 hierarchy: nodes report to per-cluster sub-coordinators,
// which batch to the main coordinator. The main coordinator still sees
// every node's statistics but handles O(clusters) messages per period
// instead of O(nodes).
func TestHierarchicalCoordinator(t *testing.T) {
	period := 300 * time.Millisecond
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "c0", Nodes: 4, Coordinator: adapt.SubEndpointName("c0")},
			{Name: "c1", Nodes: 4, Coordinator: adapt.SubEndpointName("c1")},
		},
		Registry: fastReg(),
		Node: satin.NodeConfig{
			Registry:      fastReg(),
			MonitorPeriod: period,
			Bench:         apps.Fib{N: 14, SeqCutoff: 14},
			BenchWork:     float64(apps.FibLeaves(14)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:      period,
		MonitorOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	var subs []*adapt.SubCoordinator
	for _, c := range []adapt.ClusterID{"c0", "c1"} {
		sub, err := adapt.StartSub(g.Fabric(), c, period)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	defer func() {
		for _, s := range subs {
			s.Stop()
		}
	}()

	for _, c := range []satin.ClusterID{"c0", "c1"} {
		if _, err := g.StartNodes(c, 4); err != nil {
			t.Fatal(err)
		}
	}

	// Run for several periods; the main coordinator must assemble a
	// full 8-node view out of batched messages.
	deadline := time.Now().Add(6 * time.Second)
	for {
		hist := coord.History()
		// The decision detail names how many node reports the engine
		// saw: "on 8 nodes" proves every report crossed the hierarchy.
		if len(hist) >= 3 &&
			strings.Contains(hist[len(hist)-1].Detail, "on 8 nodes") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("main coordinator never assembled the hierarchical view: %+v", hist)
		}
		time.Sleep(50 * time.Millisecond)
	}
	periods := len(coord.History())
	msgs := coord.MessagesReceived()
	// Flat reporting would deliver ~8 messages per period; batching
	// caps it at ~2 (one per sub-coordinator).
	if msgs > periods*4 {
		t.Errorf("main coordinator handled %d messages over %d periods — batching not effective", msgs, periods)
	}
	t.Logf("periods=%d messages=%d (flat would be ~%d)", periods, msgs, periods*8)
}
