// Package adapt is the adaptation coordinator of the paper: an extra
// process that periodically collects per-processor statistics
// (communication and idle time fractions plus benchmarked speeds),
// computes the weighted average efficiency, and keeps it between the
// E_min/E_max thresholds by asking the grid scheduler for nodes or
// signalling the worst nodes to leave — all without any application
// performance model.
//
// The adaptation policy itself lives in internal/coord, shared with the
// discrete-event simulator (internal/des): this package is only the
// real-runtime driver. It feeds the kernel the reports arriving over
// the transport fabric, derives the live set from an Ibis-style
// registry, and applies the kernel's effects (provisioning via the grid
// scheduler, evicting via registry leave signals).
package adapt

import (
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

func init() {
	// "report" is shared with the satin package's sender side; Register
	// is idempotent for identical (kind, type) pairs.
	wire.Register[metrics.Report]("report")
	wire.Register[reportBatch]("report-batch")
}

// Re-exported core types so downstream users need only this package.
type (
	// NodeID identifies a processor.
	NodeID = core.NodeID
	// ClusterID identifies a site.
	ClusterID = core.ClusterID
	// NodeStats is one processor's per-period statistics.
	NodeStats = core.NodeStats
	// Thresholds holds E_min/E_max and the badness coefficients.
	Thresholds = core.Config
	// Decision is the engine's verdict for one monitoring period.
	Decision = core.Decision
	// Requirements is the learned blacklist + minimum bandwidth.
	Requirements = core.Requirements
	// StreamObs is one monitoring period's streaming observation.
	StreamObs = core.StreamObs
	// StreamSLOConfig tunes the streaming latency objective.
	StreamSLOConfig = core.StreamSLOConfig
)

// DefaultThresholds returns the paper's configuration: E_min 0.30,
// E_max 0.50, α/β/γ badness weights, 25% cluster-drop threshold.
func DefaultThresholds() Thresholds { return core.DefaultConfig() }

// DefaultStreamSLO returns the streaming objective's defaults for a
// latency target.
func DefaultStreamSLO(targetLatency float64) StreamSLOConfig {
	return core.DefaultStreamSLO(targetLatency)
}

// WeightedAverageEfficiency re-exports the paper's metric.
func WeightedAverageEfficiency(stats []NodeStats) float64 {
	return core.WeightedAverageEfficiency(stats)
}

// Provisioner supplies processors — the grid scheduler's role
// (satin.Grid implements it).
type Provisioner interface {
	// Provision starts up to n new nodes whose cluster uplink meets the
	// learned minimum bandwidth (0 = no bound), skipping any the veto
	// rejects, and returns how many actually started.
	Provision(n int, minBandwidth float64, veto func(NodeID, ClusterID) bool) int
}

// EndpointName is the coordinator's well-known transport endpoint.
const EndpointName = "coordinator"

// Config tunes the coordinator.
type Config struct {
	// Thresholds configure the decision engine (DefaultThresholds()).
	Thresholds Thresholds
	// Period is the monitoring period. Nodes report on their own
	// clocks; the coordinator decides once per period on whatever
	// reports are in (the paper tolerates the skew explicitly).
	Period time.Duration
	// Protected nodes are never removed — the node hosting the root of
	// the computation (and, in the paper's deployment, the process the
	// user started).
	Protected []NodeID
	// MonitorOnly computes and records but never acts ("runtime 3").
	MonitorOnly bool
	// Observer, when set, receives every period record right after it is
	// appended to History — the hook the observability recorder hangs on.
	// Called from the coordinator's tick goroutine outside any lock;
	// keep it fast and never call back into the coordinator.
	Observer func(PeriodRecord)
	// Pressure, when set, is the shared node pool's reclaim signal
	// (pool.Client.Pressure): how many nodes this job holds beyond its
	// fair share while other jobs are starved. The kernel yields that
	// many of its worst nodes — without blacklisting them — at the next
	// tick. Leave nil for single-job deployments that own their pool.
	Pressure func() int
	// StreamSLO switches the coordinator to the streaming latency
	// objective (core.StreamSLO) instead of the WAE band: the job's
	// driver feeds period observations through ObserveStream and the
	// kernel grows or shrinks to keep mean latency at the target.
	// Thresholds then only contribute their badness weights.
	StreamSLO *core.StreamSLOConfig
	// Sharded runs the hierarchical tree's root (ISSUE 8): the
	// coordinator consumes ClusterSummary frames from sub-kernel-mode
	// SubCoordinators (StartSubKernel) instead of raw reports, so its
	// state and per-period message load are O(clusters).
	Sharded bool
	// Registry tunes the coordinator's registry client (zero = default
	// heartbeat/failure-detection intervals).
	Registry registry.Options
}

// PeriodRecord is one coordinator tick, kept for inspection. It is the
// same record type the simulator logs (Time is seconds since Start),
// emitted by the shared adaptation kernel.
type PeriodRecord = coord.PeriodRecord

// Annotation marks an adaptation event on the run's time axis.
type Annotation = coord.Annotation

// Coordinator is the running adaptation process.
type Coordinator struct {
	cfg   Config
	kern  *coord.Kernel     // flat mode (nil when sharded)
	rootk *coord.RootKernel // sharded mode (nil when flat)
	prov  Provisioner
	wc    *wire.Conn
	reg   *registry.Client
	start time.Time

	mu          sync.Mutex
	history     []PeriodRecord
	annotations []Annotation
	messages    int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start launches the coordinator on the fabric. It joins the registry
// with an empty cluster, which marks it as a non-worker (nodes never
// steal from it).
func Start(f transport.Fabric, prov Provisioner, cfg Config) (*Coordinator, error) {
	if cfg.Period == 0 {
		cfg.Period = 2 * time.Second
	}
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	ep, err := f.Endpoint(EndpointName)
	if err != nil {
		return nil, err
	}
	reg, err := registry.Join(f, registry.NodeInfo{ID: EndpointName, Cluster: ""}, cfg.Registry)
	if err != nil {
		ep.Close()
		return nil, err
	}
	c := &Coordinator{
		cfg:   cfg,
		prov:  prov,
		wc:    wire.New(ep),
		reg:   reg,
		start: time.Now(),
		stop:  make(chan struct{}),
	}
	th := cfg.Thresholds
	kcfg := coord.Config{
		Engine:      &th,
		MonitorOnly: cfg.MonitorOnly,
		Pressure:    cfg.Pressure,
	}
	if cfg.StreamSLO != nil {
		// A fresh objective per coordinator: StreamSLO carries hysteresis
		// state that must never be shared between kernels.
		obj, err := core.NewStreamSLO(*cfg.StreamSLO)
		if err != nil {
			reg.Close()
			c.wc.Close()
			return nil, err
		}
		kcfg.Objective = obj
	}
	if cfg.Sharded {
		rootk, err := coord.NewRoot(kcfg, runtimeActuator{c})
		if err != nil {
			reg.Close()
			c.wc.Close()
			return nil, err
		}
		c.rootk = rootk
		c.rootk.Protect(cfg.Protected...)
		wire.Handle(c.wc, c.onSummary)
	} else {
		kern, err := coord.New(kcfg, runtimeActuator{c})
		if err != nil {
			reg.Close()
			c.wc.Close()
			return nil, err
		}
		c.kern = kern
		c.kern.Protect(cfg.Protected...)
		wire.Handle(c.wc, c.onReport)
		wire.Handle(c.wc, c.onReportBatch)
	}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Stop shuts the coordinator down. Safe to call multiple times and
// from concurrent goroutines.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
		c.reg.Close()
		c.wc.Close()
	})
}

// Protect marks a node as unremovable (e.g. after electing a new root
// host).
func (c *Coordinator) Protect(id NodeID) {
	if c.rootk != nil {
		c.rootk.Protect(id)
		return
	}
	c.kern.Protect(id)
}

// History returns the period records so far.
func (c *Coordinator) History() []PeriodRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PeriodRecord(nil), c.history...)
}

// Annotations returns the adaptation events recorded so far.
func (c *Coordinator) Annotations() []Annotation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Annotation(nil), c.annotations...)
}

// Requirements exposes what the run has taught the coordinator.
func (c *Coordinator) Requirements() *Requirements {
	if c.rootk != nil {
		return c.rootk.Requirements()
	}
	return c.kern.Requirements()
}

// ObserveStream merges a streaming-workload observation into the
// coordinator's current monitoring period (the job driver calls it once
// per completed window). Flat mode only: the sharded root receives its
// stream partials inside ClusterSummary frames instead.
func (c *Coordinator) ObserveStream(o core.StreamObs) {
	if c.kern != nil {
		c.kern.ObserveStream(o)
	}
}

func (c *Coordinator) onReport(rep metrics.Report, _ wire.Meta) {
	c.kern.Report(rep)
	c.mu.Lock()
	c.messages++
	c.mu.Unlock()
}

// onReportBatch takes batched reports from a per-cluster
// sub-coordinator (the hierarchical deployment of the paper's §7). The
// kernel keeps only each node's freshest report.
func (c *Coordinator) onReportBatch(batch reportBatch, _ wire.Meta) {
	for _, rep := range batch.Reports {
		c.kern.Report(rep)
	}
	c.mu.Lock()
	c.messages++
	c.mu.Unlock()
}

// MessagesReceived counts report messages (single or batched) the main
// coordinator handled — the load the §7 hierarchy is designed to cut.
func (c *Coordinator) MessagesReceived() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages
}

func (c *Coordinator) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick is the driver's side of the adaptation loop: derive the live
// worker set from the registry, hand it to the shared kernel (which
// owns the whole Figure-2 policy), and log the period.
func (c *Coordinator) tick() {
	if c.rootk != nil {
		c.shardedTick()
		return
	}
	// Live workers according to the registry; the kernel drops reports
	// of departed nodes and tolerates missing reports of new ones —
	// both as in the paper.
	var live []NodeID
	for _, m := range c.reg.Members() {
		if m.Cluster != "" {
			live = append(live, m.ID)
		}
	}
	rec := c.kern.Tick(time.Since(c.start).Seconds(), live)
	c.mu.Lock()
	c.history = append(c.history, rec)
	c.mu.Unlock()
	if c.cfg.Observer != nil {
		c.cfg.Observer(rec)
	}
}

// runtimeActuator applies the kernel's effects through the real
// runtime: the grid scheduler provisions, the registry delivers leave
// signals. It deliberately does not implement coord.Migrator — the real
// scheduler cannot rank idle resources by application-specific speed.
type runtimeActuator struct{ c *Coordinator }

func (a runtimeActuator) Provision(n int, minBandwidth float64, veto coord.Veto) int {
	got := a.c.prov.Provision(n, minBandwidth, veto)
	if got > 0 {
		obs.Default.Counter("adapt/provisioned").Add(uint64(got))
	}
	return got
}

// Evict signals each victim to leave; a node whose signal fails (e.g.
// it already left) is not counted, so the kernel blacklists exactly the
// nodes that were told to go.
func (a runtimeActuator) Evict(victims []NodeID, reason string) []NodeID {
	evicted := make([]NodeID, 0, len(victims))
	for _, id := range victims {
		if err := a.c.reg.Signal(id, "leave"); err != nil {
			continue
		}
		evicted = append(evicted, id)
	}
	if len(evicted) > 0 {
		obs.Default.Counter("adapt/evicted").Add(uint64(len(evicted)))
	}
	return evicted
}

// ObservedBandwidth returns 0: the real deployment has no NWS-style
// link monitor, so the kernel falls back to the achieved per-report
// throughput (the capacity-preferred order is the kernel's).
func (a runtimeActuator) ObservedBandwidth(ClusterID) float64 { return 0 }

func (a runtimeActuator) Annotate(label string) {
	c := a.c
	c.mu.Lock()
	c.annotations = append(c.annotations, Annotation{
		Time: time.Since(c.start).Seconds(), Label: label,
	})
	c.mu.Unlock()
}

// ClusterNodes enumerates a cluster's live workers from the registry —
// the sharded root's whole-cluster eviction asks the runtime for the
// roster because the root kernel holds no per-node state.
func (a runtimeActuator) ClusterNodes(cl ClusterID) []NodeID {
	var out []NodeID
	for _, m := range a.c.reg.Members() {
		if m.Cluster == cl {
			out = append(out, m.ID)
		}
	}
	return out
}

var (
	_ coord.Actuator     = runtimeActuator{}
	_ coord.RootActuator = runtimeActuator{}
)
