// Package adapt is the adaptation coordinator of the paper: an extra
// process that periodically collects per-processor statistics
// (communication and idle time fractions plus benchmarked speeds),
// computes the weighted average efficiency, and keeps it between the
// E_min/E_max thresholds by asking the grid scheduler for nodes or
// signalling the worst nodes to leave — all without any application
// performance model.
//
// The same decision engine also drives the discrete-event simulator
// (package grid); this package runs it against the real work-stealing
// runtime (package satin) over a transport fabric and an Ibis-style
// registry.
package adapt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/transport"
)

// Re-exported core types so downstream users need only this package.
type (
	// NodeID identifies a processor.
	NodeID = core.NodeID
	// ClusterID identifies a site.
	ClusterID = core.ClusterID
	// NodeStats is one processor's per-period statistics.
	NodeStats = core.NodeStats
	// Thresholds holds E_min/E_max and the badness coefficients.
	Thresholds = core.Config
	// Decision is the engine's verdict for one monitoring period.
	Decision = core.Decision
	// Requirements is the learned blacklist + minimum bandwidth.
	Requirements = core.Requirements
)

// DefaultThresholds returns the paper's configuration: E_min 0.30,
// E_max 0.50, α/β/γ badness weights, 25% cluster-drop threshold.
func DefaultThresholds() Thresholds { return core.DefaultConfig() }

// WeightedAverageEfficiency re-exports the paper's metric.
func WeightedAverageEfficiency(stats []NodeStats) float64 {
	return core.WeightedAverageEfficiency(stats)
}

// Provisioner supplies processors — the grid scheduler's role
// (satin.Grid implements it).
type Provisioner interface {
	// Provision starts up to n new nodes, skipping any the veto
	// rejects, and returns how many actually started.
	Provision(n int, veto func(NodeID, ClusterID) bool) int
}

// EndpointName is the coordinator's well-known transport endpoint.
const EndpointName = "coordinator"

// Config tunes the coordinator.
type Config struct {
	// Thresholds configure the decision engine (DefaultThresholds()).
	Thresholds Thresholds
	// Period is the monitoring period. Nodes report on their own
	// clocks; the coordinator decides once per period on whatever
	// reports are in (the paper tolerates the skew explicitly).
	Period time.Duration
	// Protected nodes are never removed — the node hosting the root of
	// the computation (and, in the paper's deployment, the process the
	// user started).
	Protected []NodeID
	// MonitorOnly computes and records but never acts ("runtime 3").
	MonitorOnly bool
}

// PeriodRecord is one coordinator tick, kept for inspection.
type PeriodRecord struct {
	Time    time.Time
	WAE     float64
	Nodes   int
	Action  string
	Detail  string
	Added   int
	Removed int
}

// Coordinator is the running adaptation process.
type Coordinator struct {
	cfg  Config
	eng  *core.Engine
	reqs *core.Requirements
	prov Provisioner
	ep   transport.Endpoint
	reg  *registry.Client

	mu        sync.Mutex
	reports   map[NodeID]metrics.Report
	history   []PeriodRecord
	protected map[NodeID]bool
	messages  int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start launches the coordinator on the fabric. It joins the registry
// with an empty cluster, which marks it as a non-worker (nodes never
// steal from it).
func Start(f transport.Fabric, prov Provisioner, cfg Config) (*Coordinator, error) {
	if cfg.Period == 0 {
		cfg.Period = 2 * time.Second
	}
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	eng, err := core.NewEngine(cfg.Thresholds)
	if err != nil {
		return nil, err
	}
	ep, err := f.Endpoint(EndpointName)
	if err != nil {
		return nil, err
	}
	reg, err := registry.Join(f, registry.NodeInfo{ID: EndpointName, Cluster: ""}, registry.Options{})
	if err != nil {
		ep.Close()
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		eng:       eng,
		reqs:      core.NewRequirements(),
		prov:      prov,
		ep:        ep,
		reg:       reg,
		reports:   make(map[NodeID]metrics.Report),
		protected: make(map[NodeID]bool),
		stop:      make(chan struct{}),
	}
	for _, id := range cfg.Protected {
		c.protected[id] = true
	}
	ep.SetHandler(c.handle)
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Stop shuts the coordinator down. Safe to call multiple times and
// from concurrent goroutines.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
		c.reg.Close()
		c.ep.Close()
	})
}

// Protect marks a node as unremovable (e.g. after electing a new root
// host).
func (c *Coordinator) Protect(id NodeID) {
	c.mu.Lock()
	c.protected[id] = true
	c.mu.Unlock()
}

// History returns the period records so far.
func (c *Coordinator) History() []PeriodRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PeriodRecord(nil), c.history...)
}

// Requirements exposes what the run has taught the coordinator.
func (c *Coordinator) Requirements() *Requirements { return c.reqs }

func (c *Coordinator) handle(msg transport.Message) {
	switch msg.Kind {
	case "report":
		var rep metrics.Report
		if transport.Decode(msg.Payload, &rep) != nil {
			return
		}
		c.mu.Lock()
		c.reports[rep.Node] = rep
		c.messages++
		c.mu.Unlock()
	case "report-batch":
		// Batched reports from a per-cluster sub-coordinator (the
		// hierarchical deployment of the paper's §7). The batch keeps
		// only each node's freshest report.
		var batch reportBatch
		if transport.Decode(msg.Payload, &batch) != nil {
			return
		}
		c.mu.Lock()
		for _, rep := range batch.Reports {
			if cur, ok := c.reports[rep.Node]; !ok || rep.End >= cur.End {
				c.reports[rep.Node] = rep
			}
		}
		c.messages++
		c.mu.Unlock()
	}
}

// MessagesReceived counts report messages (single or batched) the main
// coordinator handled — the load the §7 hierarchy is designed to cut.
func (c *Coordinator) MessagesReceived() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages
}

func (c *Coordinator) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick is one pass of the paper's Figure-2 loop.
func (c *Coordinator) tick() {
	// Live workers according to the registry; reports of departed
	// nodes are dropped, reports of new nodes may be missing — both
	// tolerated, as in the paper.
	live := make(map[NodeID]registry.NodeInfo)
	for _, m := range c.reg.Members() {
		if m.Cluster != "" {
			live[m.ID] = m
		}
	}
	c.mu.Lock()
	var stats []NodeStats
	for id, rep := range c.reports {
		if _, ok := live[id]; ok {
			stats = append(stats, rep.Stats())
		} else {
			delete(c.reports, id)
		}
	}
	c.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Node < stats[j].Node })

	rec := PeriodRecord{Time: time.Now(), Nodes: len(live)}
	if len(stats) == 0 {
		c.mu.Lock()
		c.history = append(c.history, rec)
		c.mu.Unlock()
		return
	}

	d := c.eng.Decide(stats)
	rec.WAE = d.WAE
	rec.Action = d.Action.String()
	rec.Detail = d.Reason
	if !c.cfg.MonitorOnly {
		acted := false
		switch d.Action {
		case core.ActionAdd:
			rec.Added = c.prov.Provision(d.AddCount, c.veto)
			acted = rec.Added > 0
		case core.ActionRemoveNodes:
			rec.Removed = c.evict(d.RemoveNodes, "badness")
			acted = rec.Removed > 0
		case core.ActionRemoveCluster:
			if bw := c.observedBandwidth(d.RemoveCluster); bw > 0 {
				c.reqs.LearnMinBandwidth(bw)
			}
			removed := c.evict(d.RemoveNodes, "cluster uplink saturated")
			if removed > 0 {
				c.reqs.BlacklistCluster(d.RemoveCluster,
					fmt.Sprintf("inter-cluster overhead %.0f%%", d.ClusterInterComm*100))
			}
			rec.Removed = removed
			acted = removed > 0
		}
		if acted {
			// The stored reports describe the pre-action configuration;
			// deciding on them again would chain actions off stale data
			// (e.g. evicting a second cluster for overhead the first
			// one caused). Start the next period fresh.
			c.mu.Lock()
			c.reports = make(map[NodeID]metrics.Report)
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.history = append(c.history, rec)
	c.mu.Unlock()
}

func (c *Coordinator) veto(node NodeID, cluster ClusterID) bool {
	return c.reqs.NodeBlacklisted(node, cluster)
}

func (c *Coordinator) evict(victims []NodeID, reason string) int {
	c.mu.Lock()
	protected := make(map[NodeID]bool, len(c.protected))
	for id := range c.protected {
		protected[id] = true
	}
	c.mu.Unlock()
	removed := 0
	for _, id := range victims {
		if protected[id] {
			continue
		}
		if err := c.reg.Signal(id, "leave"); err != nil {
			continue
		}
		c.reqs.BlacklistNode(id, reason)
		c.mu.Lock()
		delete(c.reports, id)
		c.mu.Unlock()
		removed++
	}
	return removed
}

func (c *Coordinator) observedBandwidth(cluster ClusterID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum, n := 0.0, 0
	for _, rep := range c.reports {
		if rep.Cluster == cluster && rep.InterBandwidth > 0 {
			sum += rep.InterBandwidth
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
