package adapt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wirefmt/frametest"
)

// TestReportBatchWireParity is the ISSUE 7 golden suite for the
// hierarchy's sub→main batch frame.
func TestReportBatchWireParity(t *testing.T) {
	frametest.Parity[reportBatch, *reportBatch](t, []reportBatch{
		{},
		{Cluster: "grappe-é", Reports: []metrics.Report{}},
		{Cluster: "c0", Reports: []metrics.Report{
			{Node: "n0", Cluster: "c0", Start: 0, End: 2, BusySec: 1.5, Speed: 100},
			{Node: "узел-1", Cluster: "c0", Start: 2, End: 4, IdleSec: 2,
				Links: map[core.ClusterID]core.LinkSample{"c1": {Seconds: 0.5, Bytes: 4096}}},
		}},
	})
}

func TestReportBatchWireCorrupt(t *testing.T) {
	rb := reportBatch{Cluster: "c0", Reports: []metrics.Report{
		{Node: "n0", Cluster: "c0", End: 2, Speed: 1,
			Links: map[core.ClusterID]core.LinkSample{"c1": {Seconds: 1, Bytes: 2}}},
	}}
	enc, err := rb.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	frametest.Corrupt[reportBatch, *reportBatch](t, enc)
}
