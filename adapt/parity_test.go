package adapt

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/wirefmt/frametest"
)

// TestReportBatchWireParity is the ISSUE 7 golden suite for the
// hierarchy's sub→main batch frame.
func TestReportBatchWireParity(t *testing.T) {
	frametest.Parity[reportBatch, *reportBatch](t, []reportBatch{
		{},
		{Cluster: "grappe-é", Reports: []metrics.Report{}},
		{Cluster: "c0", Reports: []metrics.Report{
			{Node: "n0", Cluster: "c0", Start: 0, End: 2, BusySec: 1.5, Speed: 100},
			{Node: "узел-1", Cluster: "c0", Start: 2, End: 4, IdleSec: 2,
				Links: map[core.ClusterID]core.LinkSample{"c1": {Seconds: 0.5, Bytes: 4096}}},
		}},
	})
}

func TestReportBatchWireCorrupt(t *testing.T) {
	rb := reportBatch{Cluster: "c0", Reports: []metrics.Report{
		{Node: "n0", Cluster: "c0", End: 2, Speed: 1,
			Links: map[core.ClusterID]core.LinkSample{"c1": {Seconds: 1, Bytes: 2}}},
	}}
	enc, err := rb.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	frametest.Corrupt[reportBatch, *reportBatch](t, enc)
}

// The sharded tree's control frames (ISSUE 8): the root's summary
// receipt and its eager post-action reset push.
func TestSummaryAckWireParity(t *testing.T) {
	frametest.Parity[summaryAck, *summaryAck](t, []summaryAck{
		{},
		{Cluster: "c0", Seq: 7, Epoch: 3},
		{Cluster: "grappe-é", Seq: math.MaxUint64, Epoch: 1 << 40, Req: coord.ReqState{
			Nodes:        []core.NodeID{"c0/00", "узел-1"},
			Clusters:     []core.ClusterID{"bad"},
			MinBandwidth: 2e6,
		}},
	})
}

func TestShardResetWireParity(t *testing.T) {
	frametest.Parity[shardReset, *shardReset](t, []shardReset{
		{},
		{Epoch: 5},
		{Epoch: math.MaxUint64, Req: coord.ReqState{
			Nodes:        []core.NodeID{"a/00"},
			Clusters:     []core.ClusterID{"x", "y"},
			MinBandwidth: math.SmallestNonzeroFloat64,
		}},
	})
}

// TestClusterSummaryStreamAggregatesOverWire pins ISSUE 9's stream
// plumbing at the adapt layer: the "cluster-summary" frame this package
// registers must carry the streaming aggregates through a real wire
// round trip — envelope, binary codec, typed dispatch — byte-exact.
// (The decision sequences both objectives produce from these aggregates
// are pinned flat-vs-sharded by internal/coord's parity suite.)
func TestClusterSummaryStreamAggregatesOverWire(t *testing.T) {
	fab := transport.NewInProc(nil)
	defer fab.Close()
	epA, err := fab.Endpoint("parity-sender")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := fab.Endpoint("parity-receiver")
	if err != nil {
		t.Fatal(err)
	}
	wcA, wcB := wire.New(epA), wire.New(epB)
	defer wcA.Close()
	defer wcB.Close()
	got := make(chan coord.ClusterSummary, 1)
	wire.Handle(wcB, func(sum coord.ClusterSummary, _ wire.Meta) { got <- sum })

	want := coord.ClusterSummary{
		Cluster: "ca", Seq: 4, Epoch: 2, Time: 12.5, Nodes: 3, Stats: 3,
		SpeedMax: 100, SpeedMin: 50, WorkSum: 120, EffSum: 1.2, SpeedSum: 250,
		HasStream: true, StreamArrived: 33, StreamCompleted: 31,
		StreamLatencySum: 14.75, StreamBacklog: 6,
	}
	if err := wire.Send(wcA, "parity-receiver", want); err != nil {
		t.Fatal(err)
	}
	select {
	case sum := <-got:
		if !reflect.DeepEqual(sum, want) {
			t.Fatalf("stream aggregates mangled in flight:\n got %+v\nwant %+v", sum, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cluster-summary frame never arrived")
	}
}

func TestSummaryAckWireCorrupt(t *testing.T) {
	ack := summaryAck{Cluster: "c0", Seq: 9, Epoch: 2, Req: coord.ReqState{
		Nodes: []core.NodeID{"c0/01"}, Clusters: []core.ClusterID{"bad"}, MinBandwidth: 1e5,
	}}
	enc, err := ack.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	frametest.Corrupt[summaryAck, *summaryAck](t, enc)
}
