package adapt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Sharded coordination for the real runtime (ISSUE 8): the
// SubCoordinator stops being a batching relay and becomes a real
// sub-kernel driver — it ingests its cluster's reports into a
// coord.SubKernel, emits one fixed-shape ClusterSummary per period,
// and watches the root's acks. When FailoverAfter consecutive periods
// pass without an ack the subs deterministically elect the lowest
// sub-endpoint name as successor; the winner claims the root endpoint
// (the claim doubles as the election lock — the fabric rejects a
// second claimant) and re-bootstraps requirements state from its own
// cached ReqState plus the caches riding on the next round of
// summaries.

func init() {
	wire.Register[coord.ClusterSummary]("cluster-summary")
	wire.Register[summaryAck]("summary-ack")
	wire.Register[shardReset]("shard-reset")
}

// summaryAck is the root's receipt for one ClusterSummary. It carries
// the root's reset epoch (how subs learn to drop pre-action reports,
// and how a restarted sub catches back up) and the current
// requirements snapshot (the failover seed the subs cache).
type summaryAck struct {
	Cluster ClusterID
	Seq     uint64
	Epoch   uint64
	Req     coord.ReqState
}

// shardReset is the root's eager post-action push: acting invalidates
// every sub's pending reports, and waiting a full period for the next
// ack would let one stale summary round through.
type shardReset struct {
	Epoch uint64
	Req   coord.ReqState
}

// SubConfig tunes a sub-kernel-mode sub-coordinator.
type SubConfig struct {
	// Period is the summary period (matches the root's tick period).
	Period time.Duration
	// Thresholds supply the badness weights the sub pre-ranks eviction
	// proposals with; they must match the root's configuration.
	Thresholds Thresholds
	// ProposalCap bounds the eviction candidates per summary (0 = all
	// reporting nodes — exact parity with the flat kernel).
	ProposalCap int
	// FailoverAfter is how many consecutive unacknowledged periods the
	// sub tolerates before triggering an election (default 2).
	FailoverAfter int
	// Root is the configuration a promoted successor runs the root
	// coordinator with (Sharded is forced on; zero Period/Thresholds
	// inherit the sub's).
	Root Config
	// Prov is the provisioner handed to a promoted root.
	Prov Provisioner
	// Registry tunes the sub's registry client.
	Registry registry.Options
}

// subShard is the sub-kernel mode state hanging off a SubCoordinator.
type subShard struct {
	kern  *coord.SubKernel
	reg   *registry.Client
	f     transport.Fabric
	cfg   SubConfig
	start time.Time

	// Guarded by the SubCoordinator mutex.
	missed     int  // consecutive periods without an ack
	pendingAck bool // summary sent, ack not yet seen
	epoch      uint64
	reqCache   coord.ReqState
	promoted   *Coordinator // root this sub elected itself into, if any
}

// StartSubKernel launches a sub-coordinator in sub-kernel mode: the
// cluster's nodes report to its endpoint exactly as in relay mode, but
// the wire to the main coordinator carries one ClusterSummary per
// period instead of the raw batch, and the sub takes part in root
// failover.
func StartSubKernel(f transport.Fabric, cluster ClusterID, cfg SubConfig) (*SubCoordinator, error) {
	if cfg.Period == 0 {
		cfg.Period = 2 * time.Second
	}
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if cfg.FailoverAfter == 0 {
		cfg.FailoverAfter = 2
	}
	ep, err := f.Endpoint(SubEndpointName(cluster))
	if err != nil {
		return nil, err
	}
	// Joining with an empty cluster marks the sub as a non-worker; the
	// "coordinator/" ID prefix is what its peers enumerate during an
	// election.
	reg, err := registry.Join(f, registry.NodeInfo{
		ID: NodeID(SubEndpointName(cluster)), Cluster: "",
	}, cfg.Registry)
	if err != nil {
		ep.Close()
		return nil, err
	}
	sc := &SubCoordinator{
		cluster: cluster,
		wc:      wire.New(ep),
		main:    EndpointName,
		period:  cfg.Period,
		stop:    make(chan struct{}),
		shard: &subShard{
			kern:  coord.NewSubKernel(cluster, cfg.ProposalCap, cfg.Thresholds.Weights),
			reg:   reg,
			f:     f,
			cfg:   cfg,
			start: time.Now(),
		},
	}
	wire.Handle(sc.wc, sc.onReport)
	wire.Handle(sc.wc, sc.onAck)
	wire.Handle(sc.wc, sc.onShardReset)
	sc.wg.Add(1)
	go sc.loop()
	return sc, nil
}

// ObserveStream merges this cluster's share of a streaming-workload
// observation into the sub-kernel's current period; the next summary
// ships it to the root as ClusterSummary stream aggregates, where the
// partials of all clusters sum into the global observation the root's
// StreamSLO objective judges. No-op in relay mode, which forwards raw
// reports and has no per-period state.
func (sc *SubCoordinator) ObserveStream(o core.StreamObs) {
	if sc.shard != nil {
		sc.shard.kern.ObserveStream(o)
	}
}

// Promoted returns the root coordinator this sub elected itself into,
// or nil. The promoted root runs independently of the sub (which keeps
// serving its own cluster) and must be stopped separately.
func (sc *SubCoordinator) Promoted() *Coordinator {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.shard == nil {
		return nil
	}
	return sc.shard.promoted
}

// shardTick runs one sub period: summarize the cluster's reports, send
// the frame, account the root's silence, and — past the failover
// threshold — run the election.
func (sc *SubCoordinator) shardTick() {
	sh := sc.shard
	var live []NodeID
	for _, m := range sh.reg.Members() {
		if m.Cluster == sc.cluster {
			live = append(live, m.ID)
		}
	}
	sc.mu.Lock()
	if sh.pendingAck {
		// Last period's summary vanished without a receipt.
		sh.missed++
		sh.pendingAck = false
	}
	epoch, req := sh.epoch, sh.reqCache
	sc.mu.Unlock()

	sum := sh.kern.Summarize(time.Since(sh.start).Seconds(), live)
	sum.Epoch = epoch
	sum.Req = req
	if err := wire.Send(sc.wc, sc.main, sum); err != nil {
		// The root endpoint is gone — the fabric fails the send
		// synchronously, which counts as a missed ack immediately.
		obs.Default.Counter("adapt/summary_send_failures").Inc()
		sc.mu.Lock()
		sh.missed++
		sc.mu.Unlock()
	} else {
		sc.mu.Lock()
		sh.pendingAck = true
		sc.mu.Unlock()
	}

	sc.mu.Lock()
	starved := sh.missed >= sh.cfg.FailoverAfter && sh.promoted == nil
	sc.mu.Unlock()
	if starved {
		sc.tryElect()
	}
}

// onAck processes the root's receipt: reset the silence counter, cache
// the requirements snapshot, and adopt a newer reset epoch (dropping
// the pre-action reports, as the flat kernel's post-action reset
// does).
func (sc *SubCoordinator) onAck(ack summaryAck, _ wire.Meta) {
	sh := sc.shard
	if sh == nil || ack.Cluster != sc.cluster {
		return
	}
	sc.mu.Lock()
	sh.pendingAck = false
	sh.missed = 0
	sh.reqCache = ack.Req
	bump := ack.Epoch > sh.epoch
	if bump {
		sh.epoch = ack.Epoch
	}
	sc.mu.Unlock()
	if bump {
		sh.kern.Reset()
	}
}

// onShardReset is the root's eager post-action push.
func (sc *SubCoordinator) onShardReset(rst shardReset, _ wire.Meta) {
	sh := sc.shard
	if sh == nil {
		return
	}
	sc.mu.Lock()
	sh.reqCache = rst.Req
	bump := rst.Epoch > sh.epoch
	if bump {
		sh.epoch = rst.Epoch
	}
	sc.mu.Unlock()
	if bump {
		sh.kern.Reset()
	}
}

// tryElect runs the deterministic election: the live sub with the
// lowest endpoint name wins and claims the root endpoint. A loser does
// nothing — it keeps counting misses and re-checks next period (if the
// presumptive winner is itself dead, the registry's failure detector
// removes it and the next-lowest sub takes over a period later).
func (sc *SubCoordinator) tryElect() {
	sh := sc.shard
	self := SubEndpointName(sc.cluster)
	low := self
	for _, m := range sh.reg.Members() {
		id := string(m.ID)
		if m.Cluster == "" && strings.HasPrefix(id, EndpointName+"/") && id < low {
			low = id
		}
	}
	if low != self {
		return
	}
	rootCfg := sh.cfg.Root
	rootCfg.Sharded = true
	if rootCfg.Period == 0 {
		rootCfg.Period = sc.period
	}
	if rootCfg.Thresholds == (Thresholds{}) {
		rootCfg.Thresholds = sh.cfg.Thresholds
	}
	c, err := Start(sh.f, sh.cfg.Prov, rootCfg)
	if err != nil {
		// The endpoint claim failed: the old root is still alive after
		// all, or a rival claimed it first. Either way a root exists —
		// stand down and wait for its acks.
		obs.Default.Counter("adapt/failover_lost").Inc()
		return
	}
	sc.mu.Lock()
	epoch, req := sh.epoch, sh.reqCache
	sh.promoted = c
	sh.missed = 0
	sh.pendingAck = false
	sc.mu.Unlock()
	// Seed the successor from this sub's cache; the other subs' caches
	// union-merge in with their next summaries. Blacklists are monotone,
	// so the merge never regresses.
	c.rootk.AdoptReqState(req)
	c.rootk.StartEpoch(epoch)
	obs.Default.Counter("adapt/failover_elected").Inc()
	c.mu.Lock()
	c.annotations = append(c.annotations, Annotation{
		Time:  time.Since(c.start).Seconds(),
		Label: fmt.Sprintf("root coordinator failover: %s promoted", self),
	})
	c.mu.Unlock()
}

// onSummary is the sharded root's ingestion path: store the summary,
// merge the riding requirements cache, and acknowledge — even a
// stale-epoch frame, because the ack's epoch is how a lagging or
// restarted sub catches up.
func (c *Coordinator) onSummary(sum coord.ClusterSummary, m wire.Meta) {
	c.rootk.Ingest(sum)
	c.mu.Lock()
	c.messages++
	c.mu.Unlock()
	wire.Send(c.wc, m.From, summaryAck{
		Cluster: sum.Cluster,
		Seq:     sum.Seq,
		Epoch:   c.rootk.ResetEpoch(),
		Req:     c.rootk.ReqState(),
	})
}

// shardedTick is the root's period in sharded mode: census the workers
// per cluster from the registry, run the O(clusters) root kernel, and
// push the post-action reset to every sub when the tick acted.
func (c *Coordinator) shardedTick() {
	clusters := make(map[ClusterID]bool)
	total := 0
	var subs []string
	for _, m := range c.reg.Members() {
		if m.Cluster != "" {
			clusters[m.Cluster] = true
			total++
		} else if strings.HasPrefix(string(m.ID), EndpointName+"/") {
			subs = append(subs, string(m.ID))
		}
	}
	live := make([]ClusterID, 0, len(clusters))
	for cl := range clusters {
		live = append(live, cl)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })

	before := c.rootk.ResetEpoch()
	rec := c.rootk.Tick(time.Since(c.start).Seconds(), live, total)
	c.mu.Lock()
	c.history = append(c.history, rec)
	c.mu.Unlock()
	if c.cfg.Observer != nil {
		c.cfg.Observer(rec)
	}
	if after := c.rootk.ResetEpoch(); after != before {
		rst := shardReset{Epoch: after, Req: c.rootk.ReqState()}
		sort.Strings(subs)
		for _, s := range subs {
			wire.Send(c.wc, s, rst)
		}
	}
}
