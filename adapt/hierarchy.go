package adapt

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// SubCoordinator is the paper's §7 answer to the coordinator becoming
// a bottleneck on very large node counts: "a hierarchy of
// coordinators, one sub-coordinator per cluster which collects and
// processes statistics from its cluster, and one main coordinator
// which collects the information from the sub-coordinators."
//
// A SubCoordinator owns one cluster's endpoint; its nodes send their
// per-period reports there, and once per period the batch travels to
// the main coordinator as a single message, cutting the main
// coordinator's message load from O(nodes) to O(clusters) per period.
type SubCoordinator struct {
	cluster ClusterID
	wc      *wire.Conn
	main    string
	period  time.Duration

	mu      sync.Mutex
	pending []metrics.Report

	// Sub-kernel mode (ISSUE 8): instead of relaying raw reports the
	// sub runs a coord.SubKernel and emits one ClusterSummary per
	// period; these fields are nil/zero in relay mode. See shard.go.
	shard *subShard

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// SubEndpointName is the per-cluster endpoint the cluster's nodes
// report to when running hierarchically.
func SubEndpointName(cluster ClusterID) string {
	return EndpointName + "/" + string(cluster)
}

// reportBatch is the wire format from sub to main.
type reportBatch struct {
	Cluster ClusterID
	Reports []metrics.Report
}

// StartSub launches a sub-coordinator for one cluster, forwarding to
// the main coordinator's endpoint every period.
func StartSub(f transport.Fabric, cluster ClusterID, period time.Duration) (*SubCoordinator, error) {
	if period == 0 {
		period = 2 * time.Second
	}
	ep, err := f.Endpoint(SubEndpointName(cluster))
	if err != nil {
		return nil, err
	}
	sc := &SubCoordinator{
		cluster: cluster,
		wc:      wire.New(ep),
		main:    EndpointName,
		period:  period,
		stop:    make(chan struct{}),
	}
	wire.Handle(sc.wc, sc.onReport)
	sc.wg.Add(1)
	go sc.loop()
	return sc, nil
}

// Stop shuts the sub-coordinator down, flushing pending reports.
// Safe to call multiple times and from concurrent goroutines. A root
// coordinator this sub promoted during failover keeps running; stop it
// separately via Promoted().
func (sc *SubCoordinator) Stop() {
	sc.stopOnce.Do(func() {
		close(sc.stop)
		sc.wg.Wait()
		if sc.shard != nil {
			sc.shard.reg.Close()
		} else {
			sc.flush()
		}
		sc.wc.Close()
	})
}

func (sc *SubCoordinator) onReport(rep metrics.Report, _ wire.Meta) {
	if sc.shard != nil {
		sc.shard.kern.Report(rep)
		return
	}
	sc.mu.Lock()
	sc.pending = append(sc.pending, rep)
	sc.mu.Unlock()
}

func (sc *SubCoordinator) loop() {
	defer sc.wg.Done()
	ticker := time.NewTicker(sc.period)
	defer ticker.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-ticker.C:
			if sc.shard != nil {
				sc.shardTick()
			} else {
				sc.flush()
			}
		}
	}
}

func (sc *SubCoordinator) flush() {
	sc.mu.Lock()
	batch := sc.pending
	sc.pending = nil
	sc.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if err := wire.Send(sc.wc, sc.main, reportBatch{Cluster: sc.cluster, Reports: batch}); err != nil {
		// The main coordinator is unreachable (restarting, partitioned):
		// losing the batch silently would starve the kernel of exactly
		// the period that preceded the outage. Keep the reports and try
		// again next period — the kernel dedups per node by freshness,
		// so re-delivering alongside newer reports is harmless.
		obs.Default.Counter("adapt/forward_failures").Inc()
		sc.mu.Lock()
		sc.pending = append(batch, sc.pending...)
		sc.mu.Unlock()
	}
}
