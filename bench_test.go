// Benchmarks regenerating the paper's evaluation artefacts (one bench
// per table/figure) plus the ablations of DESIGN.md §5 and
// micro-benchmarks of the core metric. Custom metrics carry the
// numbers the paper reports:
//
//	runtime_s        total application runtime (virtual seconds)
//	improvement_pct  adaptive vs non-adaptive runtime reduction
//	overhead_pct     monitoring+benchmark cost vs plain run
//	iter_s           mean iteration duration
//
// Run:  go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/expt"
	"repro/satin"
)

// runScenario executes one scenario variant pair and reports the
// paper's headline numbers.
func runScenario(b *testing.B, id string, variants ...expt.Variant) {
	b.Helper()
	sc, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown scenario %s", id)
	}
	var out *expt.Outcome
	var err error
	for i := 0; i < b.N; i++ {
		out, err = expt.Run(sc, variants...)
		if err != nil {
			b.Fatal(err)
		}
	}
	if na, ok := out.Results[expt.NoAdapt]; ok {
		b.ReportMetric(na.Runtime, "noadapt_runtime_s")
	}
	if ad, ok := out.Results[expt.Adaptive]; ok {
		b.ReportMetric(ad.Runtime, "adaptive_runtime_s")
		b.ReportMetric(float64(ad.FinalNodes), "final_nodes")
	}
	if _, ok := out.Results[expt.NoAdapt]; ok {
		if _, ok2 := out.Results[expt.Adaptive]; ok2 {
			b.ReportMetric(out.Improvement()*100, "improvement_pct")
		}
	}
	if mo, ok := out.Results[expt.MonitorOnly]; ok {
		b.ReportMetric(mo.Runtime, "monitoronly_runtime_s")
		b.ReportMetric(out.Overhead(expt.MonitorOnly)*100, "overhead_pct")
	}
}

// ---- Figure 1: the runtime bars of every scenario ----

func BenchmarkFigure1_Scenario1_Overhead(b *testing.B) {
	runScenario(b, "1", expt.NoAdapt, expt.Adaptive, expt.MonitorOnly)
}

func BenchmarkFigure1_Scenario2a(b *testing.B) {
	runScenario(b, "2a", expt.NoAdapt, expt.Adaptive)
}

func BenchmarkFigure1_Scenario2b(b *testing.B) {
	runScenario(b, "2b", expt.NoAdapt, expt.Adaptive)
}

func BenchmarkFigure1_Scenario2c(b *testing.B) {
	runScenario(b, "2c", expt.NoAdapt, expt.Adaptive)
}

func BenchmarkFigure1_Scenario3(b *testing.B) {
	runScenario(b, "3", expt.NoAdapt, expt.Adaptive)
}

func BenchmarkFigure1_Scenario4(b *testing.B) {
	runScenario(b, "4", expt.NoAdapt, expt.Adaptive)
}

func BenchmarkFigure1_Scenario5(b *testing.B) {
	runScenario(b, "5", expt.NoAdapt, expt.Adaptive)
}

func BenchmarkFigure1_Scenario6(b *testing.B) {
	runScenario(b, "6", expt.NoAdapt, expt.Adaptive)
}

// ---- §5.1: adaptivity overhead vs monitoring period ----

func BenchmarkScenario1_OverheadLongPeriod(b *testing.B) {
	sc, _ := expt.ByID("1")
	var na, mo *des.Result
	for i := 0; i < b.N; i++ {
		pNA := sc.Build(expt.NoAdapt, sc.Seed)
		pMO := sc.Build(expt.MonitorOnly, sc.Seed)
		pMO.Mon.Period = 600 // paper: a longer period shrinks the overhead
		var err error
		if na, err = des.Run(pNA); err != nil {
			b.Fatal(err)
		}
		if mo, err = des.Run(pMO); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((mo.Runtime-na.Runtime)/na.Runtime*100, "overhead_pct")
	b.ReportMetric(mo.BenchOverhead()*100, "bench_time_pct")
}

// ---- Figures 3–7: iteration-duration series ----

// seriesMetrics reports the numbers the figures visualise: iteration
// time before/after the disturbance or expansion for both variants.
func seriesMetrics(b *testing.B, id string, splitIter int) {
	b.Helper()
	sc, _ := expt.ByID(id)
	var out *expt.Outcome
	var err error
	for i := 0; i < b.N; i++ {
		out, err = expt.Run(sc, expt.NoAdapt, expt.Adaptive)
		if err != nil {
			b.Fatal(err)
		}
	}
	na, ad := out.Results[expt.NoAdapt], out.Results[expt.Adaptive]
	b.ReportMetric(na.MeanIterDuration(0, splitIter), "na_early_iter_s")
	b.ReportMetric(na.MeanIterDuration(len(na.Iterations)-10, len(na.Iterations)), "na_late_iter_s")
	b.ReportMetric(ad.MeanIterDuration(0, splitIter), "ad_early_iter_s")
	b.ReportMetric(ad.MeanIterDuration(len(ad.Iterations)-10, len(ad.Iterations)), "ad_late_iter_s")
	b.ReportMetric(out.Improvement()*100, "improvement_pct")
}

func BenchmarkFigure3_ExpandFrom8(b *testing.B)    { seriesMetrics(b, "2a", 5) }
func BenchmarkFigure3_ExpandFrom16(b *testing.B)   { seriesMetrics(b, "2b", 5) }
func BenchmarkFigure3_ExpandFrom24(b *testing.B)   { seriesMetrics(b, "2c", 5) }
func BenchmarkFigure4_OverloadedCPUs(b *testing.B) { seriesMetrics(b, "3", 15) }
func BenchmarkFigure5_OverloadedLink(b *testing.B) { seriesMetrics(b, "4", 5) }
func BenchmarkFigure6_OverloadBoth(b *testing.B)   { seriesMetrics(b, "5", 5) }
func BenchmarkFigure7_CrashingNodes(b *testing.B)  { seriesMetrics(b, "6", 30) }

// ---- §3 extension: varying degree of parallelism ----

func BenchmarkScenario7_VaryingParallelism(b *testing.B) {
	sc, _ := expt.ByID("7")
	var out *expt.Outcome
	var err error
	for i := 0; i < b.N; i++ {
		out, err = expt.Run(sc, expt.NoAdapt, expt.Adaptive)
		if err != nil {
			b.Fatal(err)
		}
	}
	na, ad := out.Results[expt.NoAdapt], out.Results[expt.Adaptive]
	// The win here is capacity, not runtime: the adaptive run returns
	// nodes the application cannot use during the low-parallelism phase.
	b.ReportMetric(na.NodeSeconds, "na_node_seconds")
	b.ReportMetric(ad.NodeSeconds, "ad_node_seconds")
	b.ReportMetric((na.NodeSeconds-ad.NodeSeconds)/na.NodeSeconds*100, "capacity_saved_pct")
}

// ---- Ablations (DESIGN.md §5) ----

func scenario4Params(v expt.Variant) des.Params {
	sc, _ := expt.ByID("4")
	return sc.Build(v, sc.Seed)
}

// CRS vs uniform random stealing on the healthy 36-node setup.
func BenchmarkAblation_CRSvsRandomStealing(b *testing.B) {
	sc, _ := expt.ByID("1")
	var crs, rnd *des.Result
	for i := 0; i < b.N; i++ {
		pCRS := sc.Build(expt.NoAdapt, sc.Seed)
		pRND := sc.Build(expt.NoAdapt, sc.Seed)
		pRND.StealPolicy = des.StealRandom
		var err error
		if crs, err = des.Run(pCRS); err != nil {
			b.Fatal(err)
		}
		if rnd, err = des.Run(pRND); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(crs.Runtime, "crs_runtime_s")
	b.ReportMetric(rnd.Runtime, "random_runtime_s")
	b.ReportMetric((rnd.Runtime-crs.Runtime)/crs.Runtime*100, "crs_advantage_pct")
}

// β=100 vs β=0 in the badness formula under a saturated uplink, with
// the pair-bandwidth rule disabled so node-level removal must carry
// the adaptation. Finding: end-to-end runtimes converge either way —
// removal plus blacklisting is self-correcting over periods — so the
// value of β is ranking precision (unit-tested in internal/core), and
// the pair-bandwidth eviction rule supersedes it for link problems.
func BenchmarkAblation_BadnessBeta(b *testing.B) {
	var withBeta, noBeta *des.Result
	for i := 0; i < b.N; i++ {
		p1 := scenario4Params(expt.Adaptive)
		p2 := scenario4Params(expt.Adaptive)
		cfg1 := *p1.Adapt
		cfg1.ClusterDropBWRatio = 0 // node-level removal only, β=100
		cfg1.ClusterDropInterComm = 1.0
		p1.Adapt = &cfg1
		cfg := *p2.Adapt
		cfg.Weights.Beta = 0 // node-level removal only, β=0
		cfg.ClusterDropBWRatio = 0
		cfg.ClusterDropInterComm = 1.0 // strict >: never triggers
		p2.Adapt = &cfg
		var err error
		if withBeta, err = des.Run(p1); err != nil {
			b.Fatal(err)
		}
		if noBeta, err = des.Run(p2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(withBeta.Runtime, "beta100_runtime_s")
	b.ReportMetric(noBeta.Runtime, "beta0_runtime_s")
	// Whether the eviction actually drained the throttled cluster shows
	// in the tail iterations: β=0 ranks by speed alone, which is
	// uninformative here, so the bad nodes linger.
	nb := len(withBeta.Iterations)
	b.ReportMetric(withBeta.MeanIterDuration(nb-10, nb), "beta100_late_iter_s")
	nb = len(noBeta.Iterations)
	b.ReportMetric(noBeta.MeanIterDuration(nb-10, nb), "beta0_late_iter_s")
}

// Whole-cluster drop on vs off in the saturated-uplink scenario.
func BenchmarkAblation_ClusterDrop(b *testing.B) {
	var on, off *des.Result
	for i := 0; i < b.N; i++ {
		p1 := scenario4Params(expt.Adaptive)
		p2 := scenario4Params(expt.Adaptive)
		cfg := *p2.Adapt
		cfg.ClusterDropBWRatio = 0     // disable the bandwidth rule
		cfg.ClusterDropInterComm = 1.0 // and the overhead fallback
		p2.Adapt = &cfg
		var err error
		if on, err = des.Run(p1); err != nil {
			b.Fatal(err)
		}
		if off, err = des.Run(p2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(on.Runtime, "clusterdrop_runtime_s")
	b.ReportMetric(off.Runtime, "nodewise_runtime_s")
}

// Weighted vs unweighted efficiency with heterogeneous speeds
// (scenario 5's lightly loaded nodes).
func BenchmarkAblation_WeightedEfficiency(b *testing.B) {
	sc, _ := expt.ByID("5")
	var weighted, unweighted *des.Result
	for i := 0; i < b.N; i++ {
		p1 := sc.Build(expt.Adaptive, sc.Seed)
		p2 := sc.Build(expt.Adaptive, sc.Seed)
		cfg := *p2.Adapt
		cfg.UnweightedEfficiency = true
		p2.Adapt = &cfg
		var err error
		if weighted, err = des.Run(p1); err != nil {
			b.Fatal(err)
		}
		if unweighted, err = des.Run(p2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(weighted.Runtime, "weighted_runtime_s")
	b.ReportMetric(unweighted.Runtime, "unweighted_runtime_s")
	// The weighted metric's point is capacity valuation: the unweighted
	// engine overestimates slow nodes' contribution and holds more
	// capacity for the same work.
	b.ReportMetric(weighted.NodeSeconds, "weighted_node_seconds")
	b.ReportMetric(unweighted.NodeSeconds, "unweighted_node_seconds")
}

// Blacklisting on vs off with a persistently bad link when the bad
// cluster is the only spare capacity: without the blacklist the
// scheduler hands the bad nodes straight back and the coordinator
// oscillates between evicting and re-adding them.
func BenchmarkAblation_Blacklist(b *testing.B) {
	build := func(disable bool) des.Params {
		sc, _ := expt.ByID("4")
		p := sc.Build(expt.Adaptive, sc.Seed)
		// Shrink the grid to three clusters with no slack in the two
		// healthy ones, so replacements can only come from the
		// throttled cluster itself.
		p.Topo.Clusters = p.Topo.Clusters[:3]
		p.Topo.Clusters[0].Nodes = 12
		p.Topo.Clusters[1].Nodes = 12
		p.Topo.Clusters[2].Nodes = 24
		p.DisableBlacklist = disable
		return p
	}
	var on, off *des.Result
	for i := 0; i < b.N; i++ {
		var err error
		if on, err = des.Run(build(false)); err != nil {
			b.Fatal(err)
		}
		if off, err = des.Run(build(true)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(on.Runtime, "blacklist_runtime_s")
	b.ReportMetric(off.Runtime, "noblacklist_runtime_s")
	// Oscillation indicator: how many times the no-blacklist run added
	// nodes after its first removal.
	adds := 0
	for _, pr := range off.Periods {
		if pr.Added > 0 {
			adds++
		}
	}
	b.ReportMetric(float64(adds), "noblacklist_add_rounds")
}

// ---- real runtime benches ----

func benchGrid(b *testing.B, clusters, nodes int) (*satin.Grid, *satin.Node) {
	b.Helper()
	var specs []satin.ClusterSpec
	for i := 0; i < clusters; i++ {
		specs = append(specs, satin.ClusterSpec{
			Name: satin.ClusterID(fmt.Sprintf("fs%d", i)), Nodes: nodes,
		})
	}
	g, err := satin.NewGrid(satin.GridConfig{Clusters: specs})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	for _, c := range specs {
		if _, err := g.StartNodes(c.Name, nodes); err != nil {
			b.Fatal(err)
		}
	}
	return g, g.Node(satin.NodeID("fs0/00"))
}

func BenchmarkSatinFibSingleNode(b *testing.B) {
	_, master := benchGrid(b, 1, 1)
	want := apps.FibLeaves(22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, err := master.Run(apps.Fib{N: 22, SeqCutoff: 14})
		if err != nil {
			b.Fatal(err)
		}
		if val.(int) != want {
			b.Fatalf("wrong result %v", val)
		}
	}
}

func BenchmarkSatinFibTwoClusters(b *testing.B) {
	_, master := benchGrid(b, 2, 4)
	want := apps.FibLeaves(22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, err := master.Run(apps.Fib{N: 22, SeqCutoff: 14})
		if err != nil {
			b.Fatal(err)
		}
		if val.(int) != want {
			b.Fatalf("wrong result %v", val)
		}
	}
}

func BenchmarkSatinBarnesHutStep(b *testing.B) {
	_, master := benchGrid(b, 2, 2)
	bodies := apps.Plummer(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Run(apps.BHForces{
			Bodies: bodies, Lo: 0, Hi: len(bodies), Theta: 0.5, Grain: 128,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro benches of the decision machinery ----

func synthStats(n int) []core.NodeStats {
	stats := make([]core.NodeStats, n)
	for i := range stats {
		stats[i] = core.NodeStats{
			Node:      core.NodeID(fmt.Sprintf("n%03d", i)),
			Cluster:   core.ClusterID(fmt.Sprintf("c%d", i%5)),
			Speed:     1 + float64(i%7),
			Idle:      0.3,
			IntraComm: 0.05,
			InterComm: float64(i%4) * 0.05,
		}
	}
	return stats
}

func BenchmarkWeightedAverageEfficiency(b *testing.B) {
	stats := synthStats(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.WeightedAverageEfficiency(stats)
	}
}

func BenchmarkRankNodes(b *testing.B) {
	stats := synthStats(200)
	w := core.DefaultBadnessWeights()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.RankNodes(stats, w)
	}
}

func BenchmarkEngineDecide(b *testing.B) {
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	stats := synthStats(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Decide(stats)
	}
}

// Event throughput of the simulator kernel via a small full run.
func BenchmarkDESBaselineRun(b *testing.B) {
	sc, _ := expt.ByID("1")
	for i := 0; i < b.N; i++ {
		p := sc.Build(expt.NoAdapt, sc.Seed)
		p.Spec.Iterations = 10
		if _, err := des.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = time.Now // keep time import if benches above change
