package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLIFOOwnerFIFOThief(t *testing.T) {
	d := New[int]()
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	if n := d.Len(); n != 10 {
		t.Fatalf("Len = %d, want 10", n)
	}
	if v, ok := d.PopBottom(); !ok || v != 9 {
		t.Fatalf("PopBottom = %v,%v, want newest (9)", v, ok)
	}
	if v, ok := d.Steal(); !ok || v != 0 {
		t.Fatalf("Steal = %v,%v, want oldest (0)", v, ok)
	}
	for want := 8; want >= 1; want-- {
		if v, ok := d.PopBottom(); !ok || v != want {
			t.Fatalf("PopBottom = %v,%v, want %d", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty deque succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque succeeded")
	}
}

func TestGrowthPreservesElements(t *testing.T) {
	d := New[int]()
	const n = 10 * initialCap
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	for want := n - 1; want >= 0; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = %v,%v, want %d", v, ok, want)
		}
	}
}

func TestWrapAroundReuse(t *testing.T) {
	d := New[int]()
	// Push/pop churn far past the ring capacity without growing.
	for round := 0; round < 5*initialCap; round++ {
		d.Push(round)
		d.Push(round + 1)
		if v, ok := d.PopBottom(); !ok || v != round+1 {
			t.Fatalf("round %d: pop = %v,%v", round, v, ok)
		}
		if v, ok := d.Steal(); !ok {
			t.Fatalf("round %d: steal failed", round)
		} else if v > round {
			t.Fatalf("round %d: steal returned %d (not oldest)", round, v)
		}
	}
}

// TestConsumedSlotsZeroed pins the payload-retention fix: after an
// element is popped or stolen, the ring must not keep its pointer
// reachable.
func TestConsumedSlotsZeroed(t *testing.T) {
	d := New[*[]byte]()
	big := make([]byte, 1)
	d.Push(&big)
	d.Push(&big)
	if _, ok := d.PopBottom(); !ok {
		t.Fatal("pop failed")
	}
	if _, ok := d.Steal(); !ok {
		t.Fatal("steal failed")
	}
	a := d.arr.Load()
	for i := range a.slots {
		if a.slots[i].Load() != nil {
			t.Fatalf("slot %d still holds a pointer after consumption", i)
		}
	}
}

// TestStealStress is the satellite stress test: one owner goroutine
// racing M thief goroutines under -race; every pushed ID must be
// consumed exactly once — no job lost, none double-executed.
func TestStealStress(t *testing.T) {
	const (
		n       = 200000
		thieves = 4
	)
	d := New[int]()
	var seen [n]int32
	var consumed atomic.Int64

	take := func(v int) {
		if c := atomic.AddInt32(&seen[v], 1); c != 1 {
			t.Errorf("element %d consumed %d times", v, c)
		}
		consumed.Add(1)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if v, ok := d.Steal(); ok {
					take(v)
				}
			}
			// Final drain so nothing the owner left behind is lost.
			for {
				v, ok := d.Steal()
				if !ok {
					return
				}
				take(v)
			}
		}()
	}

	// Owner: bursts of pushes interleaved with pops, like a
	// divide-and-conquer worker splitting tasks and executing leaves.
	for i := 0; i < n; {
		burst := 1 + i%7
		for j := 0; j < burst && i < n; j++ {
			d.Push(i)
			i++
		}
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				take(v)
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		take(v)
	}
	done.Store(true)
	wg.Wait()

	// The owner's final PopBottom drain can race the thieves' final
	// Steal drain; together they must have taken everything.
	if got := consumed.Load(); got != n {
		t.Fatalf("consumed %d of %d elements", got, n)
	}
	for v := range seen {
		if seen[v] != 1 {
			t.Fatalf("element %d consumed %d times", v, seen[v])
		}
	}
}
