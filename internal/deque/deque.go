// Package deque implements a Chase–Lev lock-free work-stealing deque:
// the owner pushes and pops at the bottom without taking a lock, while
// any number of thieves take the oldest element from the top with a
// compare-and-swap. It replaces the mutex-guarded slice in the satin
// node so Spawn/popNewest (the path every task traverses) never
// contends with steal handlers.
//
// Contract: exactly ONE goroutine — the owner — may call Push and
// PopBottom. Steal and Len are safe from any goroutine. Elements are
// stored as freshly allocated pointers per Push, which is what makes
// the slot-release CAS in Steal ABA-free: a thief that won an element
// still references its pointer while clearing the slot, so the
// allocator cannot reuse that address for a concurrent Push.
//
// Consumed slots are zeroed (PopBottom stores nil, Steal CASes the
// taken pointer to nil), so the ring keeps no task payloads reachable
// after their jobs complete — the retention bug the old slice-backed
// deque had.
package deque

import "sync/atomic"

const initialCap = 64

// ring is one power-of-two circular buffer generation.
type ring[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) at(i int64) *atomic.Pointer[T] { return &r.slots[i&r.mask] }

// Deque is the work-stealing deque. The zero value is not usable; call
// New.
type Deque[T any] struct {
	top    atomic.Int64 // steal side: thieves advance it by CAS
	bottom atomic.Int64 // owner side: only the owner writes it
	arr    atomic.Pointer[ring[T]]

	// free recycles nodes the OWNER popped (owner-only, unsynchronised).
	// Recycling is ABA-safe because popped and stolen pointers are
	// disjoint sets — the CAS on top decides which side consumes an
	// element — so a recycled pointer can never equal the pointer a
	// winning thief is about to CAS out of a slot. Nodes are zeroed
	// before they enter the list, so recycling keeps no payloads alive.
	free []*T
}

// New returns an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.arr.Store(newRing[T](initialCap))
	return d
}

// Push appends v at the bottom (newest end). Owner only.
func (d *Deque[T]) Push(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t >= int64(len(a.slots)) {
		a = d.grow(a, t, b)
	}
	p := d.newNode()
	*p = v
	a.at(b).Store(p)
	d.bottom.Store(b + 1)
}

// newNode takes a recycled node or allocates a fresh one. Owner only.
func (d *Deque[T]) newNode() *T {
	if n := len(d.free); n > 0 {
		p := d.free[n-1]
		d.free = d.free[:n-1]
		return p
	}
	return new(T)
}

// recycle zeroes a popped node (releasing its payload) and caches it
// for the next Push. Owner only; only owner-popped nodes may enter.
// The cache is bounded by the ring capacity, which itself tracks the
// deepest burst seen: a spawn burst of N jobs pops N nodes, and all N
// must come back recyclable or every later burst re-allocates the
// overflow (the spawn-sync hot path's dominant allocation before
// ISSUE 7).
func (d *Deque[T]) recycle(p *T) {
	var zero T
	*p = zero
	if int64(len(d.free)) < int64(len(d.arr.Load().slots)) {
		d.free = append(d.free, p)
	}
}

// grow publishes a doubled ring holding the live range [t, b). Thieves
// holding the old ring stay correct: the copy preserves every live
// index, and the CAS on top decides who consumes an element regardless
// of which generation it was read from.
func (d *Deque[T]) grow(a *ring[T], t, b int64) *ring[T] {
	na := newRing[T](int64(len(a.slots)) * 2)
	for i := t; i < b; i++ {
		na.at(i).Store(a.at(i).Load())
	}
	d.arr.Store(na)
	return na
}

// PopBottom removes and returns the newest element. Owner only.
func (d *Deque[T]) PopBottom() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	a := d.arr.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical state.
		d.bottom.Store(b + 1)
		return zero, false
	}
	slot := a.at(b)
	if t == b {
		// Last element: race the thieves for it through the top CAS.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return zero, false
		}
		p := slot.Load()
		slot.Store(nil)
		v := *p
		d.recycle(p)
		return v, true
	}
	// More than one element: with bottom already published as b, no
	// thief whose top load reaches b can still read a stale larger
	// bottom, so index b is exclusively ours.
	p := slot.Load()
	slot.Store(nil)
	v := *p
	d.recycle(p)
	return v, true
}

// Steal removes and returns the oldest element. Safe from any
// goroutine; returns false on an empty deque or a lost race (callers
// treat both as "no work here right now").
func (d *Deque[T]) Steal() (T, bool) {
	var zero T
	t := d.top.Load() // must be loaded before bottom (Chase–Lev order)
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	a := d.arr.Load()
	p := a.at(t).Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, false
	}
	// We own index t; p was read while [t, b) was live so it is the
	// element. Release the slot unless a wrapped-around Push already
	// reused it (then the CAS fails harmlessly).
	a.at(t).CompareAndSwap(p, nil)
	return *p, true
}

// Len reports the current element count (approximate under
// concurrency, exact when the deque is quiescent).
func (d *Deque[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if n := b - t; n > 0 {
		return int(n)
	}
	return 0
}
