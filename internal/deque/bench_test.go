package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

// job mimics satin's jobMsg shape so the numbers transfer.
type job struct {
	ID    uint64
	Owner string
	Task  any
}

// mutexDeque is the baseline this package replaces: the satin node's
// old mutex-guarded slice, reproduced here so the before/after numbers
// in EXPERIMENTS.md stay regenerable. Note this baseline is KINDER
// than the real old code, whose deque lock was the big node mutex
// shared with the pending map, steal handlers and membership reclaims;
// the end-to-end comparison lives in satin's BenchmarkSpawnSync.
type mutexDeque struct {
	mu    sync.Mutex
	items []job
}

func (d *mutexDeque) push(j job) {
	d.mu.Lock()
	d.items = append(d.items, j)
	d.mu.Unlock()
}

func (d *mutexDeque) popBottom() (job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return job{}, false
	}
	j := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return j, true
}

func (d *mutexDeque) steal() (job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return job{}, false
	}
	j := d.items[0]
	d.items = d.items[1:]
	return j, true
}

// BenchmarkOwnerPushPop measures the uncontended owner hot path —
// satin's Spawn + popNewest per task. The Chase–Lev pair pays for the
// seq-cst store/load fence in PopBottom; that is the per-op price of
// the owner never blocking behind a steal handler.
func BenchmarkOwnerPushPop(b *testing.B) {
	d := New[job]()
	for i := 0; i < b.N; i++ {
		d.Push(job{ID: uint64(i), Owner: "n0"})
		d.PopBottom()
	}
}

func BenchmarkOwnerPushPopMutex(b *testing.B) {
	var d mutexDeque
	for i := 0; i < b.N; i++ {
		d.push(job{ID: uint64(i), Owner: "n0"})
		d.popBottom()
	}
}

// BenchmarkStealProbeEmpty measures the victim-side cost of an
// incoming steal probe that finds nothing — the common case while a
// node is working at the bottom of its own subtree. The lock-free
// probe is two atomic loads and never touches the owner; the mutex
// probe acquires the very lock the owner's every push/pop needs.
func BenchmarkStealProbeEmpty(b *testing.B) {
	d := New[job]()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}

func BenchmarkStealProbeEmptyMutex(b *testing.B) {
	var d mutexDeque
	for i := 0; i < b.N; i++ {
		d.steal()
	}
}

// BenchmarkStealGrant measures a granted steal paired with the push
// that fed it, serialised on one goroutine so the number is
// deterministic on any core count.
func BenchmarkStealGrant(b *testing.B) {
	d := New[job]()
	for i := 0; i < b.N; i++ {
		d.Push(job{ID: uint64(i), Owner: "n0"})
		d.Steal()
	}
}

func BenchmarkStealGrantMutex(b *testing.B) {
	var d mutexDeque
	for i := 0; i < b.N; i++ {
		d.push(job{ID: uint64(i), Owner: "n0"})
		d.steal()
	}
}

// BenchmarkStealLatency measures one thief draining a deque while the
// owner goroutine keeps it topped up — steal latency under live
// owner/thief contention. (On a single-CPU host the two goroutines
// time-share, so treat multi-core scaling conclusions with care; the
// per-op costs remain representative.)
func BenchmarkStealLatency(b *testing.B) {
	d := New[job]()
	for i := 0; i < 1024; i++ {
		d.Push(job{ID: uint64(i)})
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner keeps the deque non-empty
		defer wg.Done()
		var n uint64
		for !stop.Load() {
			if d.Len() < 512 {
				n++
				d.Push(job{ID: n})
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}

func BenchmarkStealLatencyMutex(b *testing.B) {
	var d mutexDeque
	for i := 0; i < 1024; i++ {
		d.push(job{ID: uint64(i)})
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var n uint64
		for !stop.Load() {
			d.mu.Lock()
			l := len(d.items)
			d.mu.Unlock()
			if l < 512 {
				n++
				d.push(job{ID: n})
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.steal()
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}
