package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// collector gathers delivered frame kinds in arrival order.
type collector struct {
	mu    sync.Mutex
	kinds []string
}

func (c *collector) handler(m transport.Message) {
	c.mu.Lock()
	c.kinds = append(c.kinds, m.Kind)
	c.mu.Unlock()
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.kinds...)
}

func (c *collector) waitLen(t *testing.T, n int, d time.Duration) []string {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		got := c.snapshot()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// pair builds a wrapped fabric with a sender in cluster "a" and a
// receiver in cluster "b".
func pair(t *testing.T, seed int64) (*FaultTransport, transport.Endpoint, *collector, func()) {
	t.Helper()
	inner := transport.NewInProc(nil)
	ft := NewFaultTransport(inner, seed, nil)
	src, err := ft.Endpoint("satin:a/00")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := ft.Endpoint("satin:b/00")
	if err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	dst.SetHandler(c.handler)
	return ft, src, c, func() { ft.Close(); inner.Close() }
}

// Same seed, same fault pattern: the drop sequence of a link is a pure
// function of the seed and the link's own frame order.
func TestChaosFaultTransportDeterministicDrop(t *testing.T) {
	run := func() []string {
		ft, src, c, done := pair(t, 42)
		defer done()
		ft.SetFaults("a", "b", Faults{Drop: 0.5})
		for i := 0; i < 50; i++ {
			if err := src.Send("satin:b/00", fmt.Sprintf("m%02d", i), nil); err != nil {
				t.Fatal(err)
			}
		}
		st := ft.Stats()
		got := c.waitLen(t, 50-int(st.Dropped), time.Second)
		if int(st.Dropped) == 0 || int(st.Dropped) == 50 {
			t.Fatalf("drop=0.5 dropped %d of 50 frames", st.Dropped)
		}
		if len(got) != 50-int(st.Dropped) {
			t.Fatalf("delivered %d frames, stats say %d dropped of 50", len(got), st.Dropped)
		}
		return got
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different survivors at %d: %s vs %s", i, first[i], second[i])
		}
	}
}

func TestChaosFaultTransportPartitionAndHeal(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ft := NewFaultTransport(inner, 1, nil)
	defer ft.Close()
	a, _ := ft.Endpoint("satin:a/00")
	b, _ := ft.Endpoint("satin:b/00")
	b2, _ := ft.Endpoint("satin:b/01")
	cb, cb2 := &collector{}, &collector{}
	b.SetHandler(cb.handler)
	b2.SetHandler(cb2.handler)

	ft.Partition("b")
	if err := a.Send("satin:b/00", "cross", nil); err != nil {
		t.Fatal(err)
	}
	// Intra-cluster traffic keeps flowing inside the partitioned site.
	if err := b.Send("satin:b/01", "lan", nil); err != nil {
		t.Fatal(err)
	}
	if got := cb2.waitLen(t, 1, time.Second); len(got) != 1 || got[0] != "lan" {
		t.Fatalf("intra-cluster frame lost during partition: %v", got)
	}
	if got := cb.snapshot(); len(got) != 0 {
		t.Fatalf("cross-cluster frame crossed a partition: %v", got)
	}
	if st := ft.Stats(); st.Partitioned != 1 {
		t.Fatalf("Partitioned = %d, want 1", st.Partitioned)
	}

	ft.Heal("b")
	if err := a.Send("satin:b/00", "after", nil); err != nil {
		t.Fatal(err)
	}
	if got := cb.waitLen(t, 1, time.Second); len(got) != 1 || got[0] != "after" {
		t.Fatalf("frame lost after heal: %v", got)
	}
}

func TestChaosFaultTransportCrashNode(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ft := NewFaultTransport(inner, 1, nil)
	defer ft.Close()
	a, _ := ft.Endpoint("satin:a/00")
	reg, _ := ft.Endpoint("reg:a/00") // same node, different prefix
	b, _ := ft.Endpoint("satin:b/00")
	cb := &collector{}
	b.SetHandler(cb.handler)

	ft.CrashNode("a/00")
	if err := a.Send("satin:b/00", "from-crashed", nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Send("satin:b/00", "heartbeat", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := cb.snapshot(); len(got) != 0 {
		t.Fatalf("crashed node's frames were delivered: %v", got)
	}
	if st := ft.Stats(); st.Crashed != 2 {
		t.Fatalf("Crashed = %d, want 2", st.Crashed)
	}
	// Frames TO the crashed node vanish too.
	ca := &collector{}
	a.SetHandler(ca.handler)
	if err := b.Send("satin:a/00", "to-crashed", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := ca.snapshot(); len(got) != 0 {
		t.Fatalf("frames reached a crashed node: %v", got)
	}
}

func TestChaosFaultTransportDuplicate(t *testing.T) {
	ft, src, c, done := pair(t, 3)
	defer done()
	ft.SetFaults("a", "b", Faults{Duplicate: 1.0})
	if err := src.Send("satin:b/00", "dup", nil); err != nil {
		t.Fatal(err)
	}
	got := c.waitLen(t, 2, time.Second)
	if len(got) != 2 || got[0] != "dup" || got[1] != "dup" {
		t.Fatalf("duplicate=1.0 delivered %v, want two copies", got)
	}
}

func TestChaosFaultTransportDelay(t *testing.T) {
	ft, src, c, done := pair(t, 3)
	defer done()
	ft.SetFaults("a", "b", Faults{Delay: 80 * time.Millisecond})
	start := time.Now()
	if err := src.Send("satin:b/00", "slow", nil); err != nil {
		t.Fatal(err)
	}
	if got := c.snapshot(); len(got) != 0 {
		t.Fatal("delayed frame arrived immediately")
	}
	got := c.waitLen(t, 1, time.Second)
	if len(got) != 1 {
		t.Fatalf("delayed frame never arrived: %v", got)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= ~80ms", el)
	}
}

// Jitter reorders: with per-frame random delays spread over 80ms, 30
// back-to-back frames cannot arrive in send order.
func TestChaosFaultTransportJitterReorders(t *testing.T) {
	ft, src, c, done := pair(t, 7)
	defer done()
	ft.SetFaults("a", "b", Faults{Jitter: 80 * time.Millisecond})
	for i := 0; i < 30; i++ {
		if err := src.Send("satin:b/00", fmt.Sprintf("m%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	got := c.waitLen(t, 30, 2*time.Second)
	if len(got) != 30 {
		t.Fatalf("delivered %d of 30 jittered frames", len(got))
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("30 frames with 80ms jitter arrived in perfect send order — no reordering happened")
	}
}

func TestChaosFaultTransportBandwidthSerialises(t *testing.T) {
	ft, src, c, done := pair(t, 3)
	defer done()
	// 100 KB/s link, 10 KB frames: each takes 100ms on the wire.
	ft.SetFaults("a", "b", Faults{Bandwidth: 100e3})
	payload := make([]byte, 10_000)
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := src.Send("satin:b/00", fmt.Sprintf("f%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	got := c.waitLen(t, 3, 2*time.Second)
	if len(got) != 3 {
		t.Fatalf("delivered %d of 3 frames", len(got))
	}
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("3x10KB over 100KB/s finished in %v, want >= ~300ms", el)
	}
}

// Wildcard rules shape only inter-cluster traffic; the LAN inside a
// cluster stays clean unless faulted explicitly.
func TestChaosFaultTransportWildcardSparesLAN(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ft := NewFaultTransport(inner, 1, nil)
	defer ft.Close()
	ft.SetFaults("*", "*", Faults{Drop: 1.0})
	a0, _ := ft.Endpoint("satin:a/00")
	a1, _ := ft.Endpoint("satin:a/01")
	b0, _ := ft.Endpoint("satin:b/00")
	ca, cb := &collector{}, &collector{}
	a1.SetHandler(ca.handler)
	b0.SetHandler(cb.handler)
	if err := a0.Send("satin:a/01", "lan", nil); err != nil {
		t.Fatal(err)
	}
	if err := a0.Send("satin:b/00", "wan", nil); err != nil {
		t.Fatal(err)
	}
	if got := ca.waitLen(t, 1, time.Second); len(got) != 1 {
		t.Fatalf("wildcard rule ate a LAN frame: %v", got)
	}
	time.Sleep(20 * time.Millisecond)
	if got := cb.snapshot(); len(got) != 0 {
		t.Fatalf("drop=1.0 wildcard delivered a WAN frame: %v", got)
	}
}
