package chaos

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/wirefmt"
)

// chaosBin is a binary-codec frame, so the batched path under chaos
// exercises the hand-rolled codec and not just session gob.
type chaosBin struct{ Seq uint64 }

func (m *chaosBin) AppendWire(b []byte) ([]byte, error) {
	return wirefmt.AppendUvarint(b, m.Seq), nil
}

func (m *chaosBin) DecodeWire(r *wirefmt.Reader) error {
	m.Seq = r.Uvarint()
	return r.Err()
}

func init() { wire.Register[chaosBin]("chaos-bin") }

func batchedPair(t *testing.T, ft *FaultTransport) (*wire.Conn, *wire.Conn) {
	t.Helper()
	epA, err := ft.Endpoint("satin:ca/0")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := ft.Endpoint("satin:cb/0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := wire.BatchConfig{Window: time.Millisecond, MaxFrames: 8}
	return wire.New(epA, wire.WithBatching(cfg)), wire.New(epB, wire.WithBatching(cfg))
}

// A batched link under corruption, duplication and loss must keep the
// unbatched invariants: coalescing actually happens (envelopes, not
// per-frame submissions), every corrupted envelope is a counted
// protocol error, duplicated envelopes never deliver a frame twice
// (the epoch/seq dedup sees the replayed sub-frames), and the session
// resynchronises once the link heals.
func TestChaosBatchedLinkInvariants(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ft := NewFaultTransport(inner, 41, nil)
	defer ft.Close()
	ca, cb := batchedPair(t, ft)
	defer ca.Close()
	defer cb.Close()

	var mu sync.Mutex
	seen := make(map[uint64]int)
	wire.Handle(cb, func(m chaosBin, _ wire.Meta) {
		mu.Lock()
		seen[m.Seq]++
		mu.Unlock()
	})
	wire.Handle(cb, func(chaosPing, wire.Meta) {}) // gob frames share the envelopes

	baseErr := protoErrTotal()
	baseOut := obs.Default.Total("wire/batches_out/")
	baseIn := obs.Default.Total("wire/batches_in/")

	ft.SetFaults("ca", "cb", Faults{Corrupt: 0.05, Duplicate: 0.2, Drop: 0.05})
	for i := 0; i < 400; i++ {
		wire.Send(ca, "satin:cb/0", chaosBin{Seq: uint64(i)})
		if i%4 == 0 {
			wire.Send(ca, "satin:cb/0", chaosPing{Seq: i})
		}
		if i%50 == 49 {
			// Let window flushes and the reset handshake land mid-barrage.
			time.Sleep(5 * time.Millisecond)
		}
	}
	st := ft.Stats()
	if st.Corrupted == 0 || st.Duplicated == 0 || st.Dropped == 0 {
		t.Fatalf("seeded fault plan too tame: %+v", st)
	}
	if d := obs.Default.Total("wire/batches_out/") - baseOut; d == 0 {
		t.Error("no envelopes sent: coalescing silently off")
	}
	if d := obs.Default.Total("wire/batches_in/") - baseIn; d == 0 {
		t.Error("no envelopes received")
	}
	if d := protoErrTotal() - baseErr; d == 0 {
		t.Errorf("%d corrupted envelopes invisible in obs protocol-error counters", st.Corrupted)
	}

	// The link heals; the session must resynchronise and deliver again.
	// Recovery probes use fresh Seq values so the dedup check below
	// stays meaningful.
	ft.ClearFaults()
	deadline := time.Now().Add(5 * time.Second)
	probe := uint64(1 << 32)
	for {
		mu.Lock()
		_, ok := seen[probe-1]
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batched session did not recover after faults cleared")
		}
		wire.Send(ca, "satin:cb/0", chaosBin{Seq: probe})
		probe++
		time.Sleep(10 * time.Millisecond)
	}

	// Dedup invariant: however envelopes were duplicated or replayed
	// around resets, no frame reached the handler twice.
	mu.Lock()
	defer mu.Unlock()
	for seq, n := range seen {
		if n > 1 {
			t.Fatalf("frame %d delivered %d times through the batched path", seq, n)
		}
	}
}

// A partition under batched traffic swallows whole envelopes — and the
// reset handshake with them. After healing, the receiver's poisoned
// session must force an epoch reset and deliveries must resume; the
// dedup invariant holds across the reset.
func TestChaosBatchedPartitionResync(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ft := NewFaultTransport(inner, 7, nil)
	defer ft.Close()
	ca, cb := batchedPair(t, ft)
	defer ca.Close()
	defer cb.Close()

	var mu sync.Mutex
	seen := make(map[uint64]int)
	wire.Handle(cb, func(m chaosBin, _ wire.Meta) {
		mu.Lock()
		seen[m.Seq]++
		mu.Unlock()
	})

	// Healthy traffic first, so the sessions are established.
	for i := 0; i < 20; i++ {
		wire.Send(ca, "satin:cb/0", chaosBin{Seq: uint64(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no deliveries on the healthy link")
		}
		time.Sleep(5 * time.Millisecond)
	}

	baseReset := obs.Default.Total("wire/reset/")
	ft.Partition("cb")
	for i := 100; i < 150; i++ {
		wire.Send(ca, "satin:cb/0", chaosBin{Seq: uint64(i)})
	}
	time.Sleep(10 * time.Millisecond) // window flushes fire into the void
	if st := ft.Stats(); st.Partitioned == 0 {
		t.Fatalf("partition ate nothing: %+v", st)
	}
	ft.Heal("cb")

	// Post-heal probes: the first arrivals expose the sequence gap, the
	// gap timer poisons the session, the reset handshake restarts it.
	probe := uint64(1 << 32)
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		_, ok := seen[probe-1]
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batched session did not resync after partition healed")
		}
		wire.Send(ca, "satin:cb/0", chaosBin{Seq: probe})
		probe++
		time.Sleep(10 * time.Millisecond)
	}
	if d := obs.Default.Total("wire/reset/") - baseReset; d == 0 {
		t.Error("recovery happened without an epoch reset — the partition gap went unnoticed")
	}
	mu.Lock()
	defer mu.Unlock()
	for seq, n := range seen {
		if n > 1 {
			t.Fatalf("frame %d delivered %d times across the partition reset", seq, n)
		}
	}
}
