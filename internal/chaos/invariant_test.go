package chaos

import (
	"testing"

	"repro/internal/coord"
)

// obsSeq builds a synthetic observation stream from (time, health,
// action) triples; every tick carries fresh statistics unless stats is
// zeroed afterwards.
func obsSeq(rows []struct {
	t      float64
	health float64
	action string
}) []Observation {
	out := make([]Observation, 0, len(rows))
	for _, r := range rows {
		out = append(out, Observation{Record: coord.PeriodRecord{
			Time: r.t, Stats: 4, WAE: r.health, Action: r.action,
		}})
	}
	return out
}

// TestInvariantSLORecovery: the slo-recovery invariant fires when the
// stream health never climbs back to the target after the disturbance,
// honours the tick budget, and ignores pre-disturbance and
// zero-statistics ticks.
func TestInvariantSLORecovery(t *testing.T) {
	healthy := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{
		{100, 0.2, "add"}, {200, 0.4, "none"}, {300, 0.6, "none"}, {400, 1.2, "none"},
	})
	if vs := Check(healthy, CheckConfig{DisturbEnd: 150, RequireSLORecovery: true}); len(vs) != 0 {
		t.Fatalf("recovered run flagged: %v", vs)
	}

	stuck := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{
		{100, 0.2, "add"}, {200, 0.4, "none"}, {300, 0.6, "none"}, {400, 0.9, "none"},
	})
	vs := Check(stuck, CheckConfig{DisturbEnd: 150, RequireSLORecovery: true})
	if len(vs) != 1 || vs[0].Invariant != "slo-recovery" {
		t.Fatalf("stuck run not flagged: %v", vs)
	}

	// Recovery outside the tick budget still counts as a violation.
	late := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{
		{100, 0.2, "add"}, {200, 0.4, "none"}, {300, 0.6, "none"}, {400, 1.2, "none"},
	})
	vs = Check(late, CheckConfig{DisturbEnd: 150, RequireSLORecovery: true, SLORecoverWithin: 2})
	if len(vs) != 1 || vs[0].Invariant != "slo-recovery" {
		t.Fatalf("late recovery not flagged under budget 2: %v", vs)
	}

	// A post-action reset tick (no statistics) must not burn the budget.
	withReset := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{
		{200, 0.4, "add"}, {300, 0, "none"}, {400, 1.2, "none"},
	})
	withReset[1].Record.Stats = 0
	if vs := Check(withReset, CheckConfig{DisturbEnd: 150, RequireSLORecovery: true, SLORecoverWithin: 2}); len(vs) != 0 {
		t.Fatalf("reset tick burned the recovery budget: %v", vs)
	}

	// The run ending before any post-disturbance tick is the completion
	// check's business, not a recovery violation.
	ended := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{{100, 0.2, "add"}})
	if vs := Check(ended, CheckConfig{DisturbEnd: 150, RequireSLORecovery: true}); len(vs) != 0 {
		t.Fatalf("run-ended case flagged: %v", vs)
	}
}

// TestInvariantNoOscillation: direction flips between grow and shrink
// actions are counted across the whole log; same-direction repeats and
// non-acting periods are free.
func TestInvariantNoOscillation(t *testing.T) {
	steady := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{
		{100, 0.5, "add"}, {200, 0.5, "add"}, {300, 2, "none"},
		{400, 3, "remove-nodes"}, {500, 3, "remove-nodes"}, {600, 2, "none"},
	})
	// One flip (add -> remove): within any positive bound.
	if vs := Check(steady, CheckConfig{MaxDirectionFlips: 1}); len(vs) != 0 {
		t.Fatalf("single reversal flagged: %v", vs)
	}

	thrash := obsSeq([]struct {
		t      float64
		health float64
		action string
	}{
		{100, 0.5, "add"}, {200, 3, "remove-nodes"}, {300, 0.5, "add"},
		{400, 3, "remove-cluster"}, {500, 0.5, "add"},
	})
	vs := Check(thrash, CheckConfig{MaxDirectionFlips: 2})
	if len(vs) != 1 || vs[0].Invariant != "no-oscillation" {
		t.Fatalf("thrashing not flagged: %v", vs)
	}
	if vs[0].Index != 4 {
		t.Fatalf("violation anchored at tick %d, want the last flip (4)", vs[0].Index)
	}

	// Zero disables the check entirely.
	if vs := Check(thrash, CheckConfig{}); len(vs) != 0 {
		t.Fatalf("disabled check still fired: %v", vs)
	}
}
