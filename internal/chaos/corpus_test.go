package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
)

// corpusSeeds is the deterministic chaos corpus: every seed is a full
// randomized scenario (topology, allocation, injection schedule). A
// failure names its seed; `go test -run 'ChaosCorpusDES/seed=N'`
// replays exactly that scenario.
var corpusSeeds = func() []int64 {
	s := make([]int64, 24)
	for i := range s {
		s[i] = int64(i + 1)
	}
	return s
}()

func TestChaosCorpusDES(t *testing.T) {
	seeds := corpusSeeds
	if testing.Short() {
		seeds = seeds[:6]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed, GenConfig{})
			res, obs, err := RunDES(sc)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			// Completion-or-reason: a chaos scenario must either finish
			// or the result must say how far it got before the abort.
			if !res.Completed {
				t.Errorf("seed %d: aborted at horizon %.0fs after %d/%d iterations (events: %v)",
					seed, sc.Horizon, len(res.Iterations), sc.Spec.Iterations, sc.Events)
			}
			for _, v := range Check(obs, CheckConfig{
				EMin:            sc.DESParams().Adapt.EMin,
				EMax:            sc.DESParams().Adapt.EMax,
				DisturbEnd:      sc.DisturbEnd(),
				RequireRecovery: true,
			}) {
				t.Errorf("seed %d: %s", seed, v)
			}
		})
	}
}

// TestChaosCorpusShardedDES is the coordinator-fault corpus (ISSUE 8):
// every scenario runs on the sharded tree with coordinator kills in
// the event mix. The invariants are the flat corpus's — blacklists
// monotone, no re-provisioning after eviction, actions grounded in
// fresh statistics — plus WAE recovery, which after a root kill can
// only hold if the subs detected the silence, elected a successor, and
// the successor resumed adaptation on fresh summaries.
func TestChaosCorpusShardedDES(t *testing.T) {
	seeds := make([]int64, 24)
	for i := range seeds {
		seeds[i] = int64(i + 101)
	}
	if testing.Short() {
		seeds = seeds[:6]
	}
	// Coverage guard: the corpus must actually exercise both
	// coordinator faults, or the failover path rots silently.
	rootKills, subKills := 0, 0
	for _, seed := range seeds {
		for _, e := range Generate(seed, GenConfig{CoordFaults: true}).Events {
			switch e.Kind {
			case EvRootCrash:
				rootKills++
			case EvSubCrash:
				subKills++
			}
		}
	}
	if rootKills == 0 || subKills == 0 {
		t.Fatalf("corpus seeds draw %d root kills and %d sub kills; shift the seed window",
			rootKills, subKills)
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed, GenConfig{CoordFaults: true})
			if !sc.Sharded {
				t.Fatal("CoordFaults scenario not marked Sharded")
			}
			res, obs, err := RunDES(sc)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !res.Completed {
				t.Errorf("seed %d: aborted at horizon %.0fs after %d/%d iterations (events: %v)",
					seed, sc.Horizon, len(res.Iterations), sc.Spec.Iterations, sc.Events)
			}
			for _, v := range Check(obs, CheckConfig{
				EMin:            sc.DESParams().Adapt.EMin,
				EMax:            sc.DESParams().Adapt.EMax,
				DisturbEnd:      sc.DisturbEnd(),
				RequireRecovery: true,
			}) {
				t.Errorf("seed %d: %s", seed, v)
			}
		})
	}
}

// TestChaosCorpusStreamingDES is the streaming-objective corpus
// (ISSUE 9): every scenario runs the open-loop pipeline workload under
// the latency-SLO objective with the same disturbance generator as the
// batch corpus. On top of the structural invariants it demands the two
// SLO-specific ones: after the last disturbance the stream health
// (target latency over observed mean) must climb back to 1.0 within a
// bounded number of ticks, and the grow/shrink sequence must not
// oscillate beyond what the disturbance schedule justifies.
func TestChaosCorpusStreamingDES(t *testing.T) {
	seeds := make([]int64, 24)
	for i := range seeds {
		seeds[i] = int64(i + 201)
	}
	if testing.Short() {
		seeds = seeds[:6]
	}
	// Coverage guard: the seed window must draw every DES-applicable
	// disturbance kind, or a whole recovery path goes untested.
	drawn := map[EventKind]int{}
	for _, seed := range seeds {
		for _, e := range Generate(seed, GenConfig{Streaming: true}).Events {
			drawn[e.Kind]++
		}
	}
	if drawn[EvLoad] == 0 || drawn[EvShape] == 0 || drawn[EvCrash] == 0 {
		t.Fatalf("streaming corpus draws load=%d shape=%d crash=%d events; shift the seed window",
			drawn[EvLoad], drawn[EvShape], drawn[EvCrash])
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed, GenConfig{Streaming: true})
			if sc.Stream == nil {
				t.Fatal("Streaming scenario has no stream spec")
			}
			res, obs, err := RunDES(sc)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !res.Completed {
				t.Errorf("seed %d: aborted at horizon %.0fs with %d/%d items through (events: %v)",
					seed, sc.Horizon, res.StreamCompleted, sc.Stream.Items, sc.Events)
			} else if res.StreamCompleted != sc.Stream.Items {
				t.Errorf("seed %d: completed run lost items: %d/%d", seed, res.StreamCompleted, sc.Stream.Items)
			}
			for _, v := range Check(obs, CheckConfig{
				DisturbEnd:         sc.DisturbEnd(),
				RequireSLORecovery: true,
				SLORecoverWithin:   15,
				MaxDirectionFlips:  2*len(sc.Events) + 2,
			}) {
				t.Errorf("seed %d: %s", seed, v)
			}
		})
	}
}

// The whole corpus is a pure function of its seeds.
func TestChaosGeneratorDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234} {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
	if reflect.DeepEqual(Generate(1, GenConfig{}), Generate(2, GenConfig{})) {
		t.Fatal("different seeds generated identical scenarios")
	}
	a := Generate(7, GenConfig{CoordFaults: true})
	if !reflect.DeepEqual(a, Generate(7, GenConfig{CoordFaults: true})) {
		t.Fatal("CoordFaults generator is not deterministic")
	}
	s := Generate(7, GenConfig{Streaming: true})
	if s.Stream == nil {
		t.Fatal("Streaming generator produced no stream spec")
	}
	if !reflect.DeepEqual(s, Generate(7, GenConfig{Streaming: true})) {
		t.Fatal("Streaming generator is not deterministic")
	}
}

// kernelActuator is a scripted runtime for driving coord.Kernel
// directly: grants whatever is asked, evicts whatever it is told.
type kernelActuator struct {
	provisioned int
	evicted     []core.NodeID
}

func (a *kernelActuator) Provision(n int, _ float64, _ coord.Veto) int {
	a.provisioned += n
	return n
}

func (a *kernelActuator) Evict(victims []core.NodeID, _ string) []core.NodeID {
	a.evicted = append(a.evicted, victims...)
	return victims
}

func (a *kernelActuator) ObservedBandwidth(core.ClusterID) float64 { return 0 }
func (a *kernelActuator) Annotate(string)                          {}

// idleReport builds a mostly idle period report: low WAE, so the
// decision engine wants to shrink.
func idleReport(id core.NodeID, cluster core.ClusterID, start, end float64) metrics.Report {
	dur := end - start
	return metrics.Report{
		Node: id, Cluster: cluster, Start: start, End: end,
		BusySec: 0.1 * dur, IdleSec: 0.9 * dur, Speed: 1,
	}
}

// No action may chain off pre-action stale statistics: after the
// kernel acts, its stored reports describe the pre-action grid, so the
// very next tick — before any fresh report arrives — must observe and
// do nothing. This is the kernel-level half of the invariant; the
// log-level half (action-needs-stats) runs over both runtimes' period
// logs in the corpus tests.
func TestChaosKernelNoStaleActionChain(t *testing.T) {
	cfg := core.DefaultConfig()
	act := &kernelActuator{}
	k, err := coord.New(coord.Config{Engine: &cfg}, act)
	if err != nil {
		t.Fatal(err)
	}
	var live []core.NodeID
	for i := 0; i < 6; i++ {
		live = append(live, core.NodeID(fmt.Sprintf("c0/%02d", i)))
	}
	k.Protect(live[0])
	for _, id := range live {
		k.Report(idleReport(id, "c0", 0, 180))
	}

	rec := k.Tick(180, live)
	if rec.Action != "remove-nodes" || rec.Removed == 0 {
		t.Fatalf("idle grid did not shrink: %+v", rec)
	}
	if rec.Stats != len(live) {
		t.Fatalf("first tick decided on %d reports, want %d", rec.Stats, len(live))
	}
	blacklisted := len(k.Requirements().BlacklistedNodes())
	if blacklisted != rec.Removed {
		t.Fatalf("evicted %d nodes but blacklisted %d", rec.Removed, blacklisted)
	}

	// Next period, zero fresh reports: the kernel must not reuse the
	// pre-action statistics it decided on last time.
	rec2 := k.Tick(360, live)
	if rec2.Stats != 0 {
		t.Fatalf("post-action tick saw %d stale reports, want 0", rec2.Stats)
	}
	if rec2.Action != "" && rec2.Action != "none" {
		t.Fatalf("action %q chained off stale pre-action stats: %+v", rec2.Action, rec2)
	}
	if rec2.Added != 0 || rec2.Removed != 0 {
		t.Fatalf("post-action tick changed the node set: %+v", rec2)
	}

	// Fresh reports restart the loop; the blacklist only ever grows.
	gone := make(map[core.NodeID]bool, len(act.evicted))
	for _, id := range act.evicted {
		gone[id] = true
	}
	var survivors []core.NodeID
	for _, id := range live {
		if !gone[id] {
			survivors = append(survivors, id)
		}
	}
	for _, id := range survivors {
		k.Report(idleReport(id, "c0", 180, 360))
	}
	rec3 := k.Tick(540, survivors)
	if rec3.Stats != len(survivors) {
		t.Fatalf("fresh reports not decided on: %+v", rec3)
	}
	if got := len(k.Requirements().BlacklistedNodes()); got < blacklisted {
		t.Fatalf("blacklist shrank: %d -> %d", blacklisted, got)
	}
}
