// Package chaos is the adversarial test bed for the adaptation loop:
// a fault-injecting transport wrapper, a seeded scenario generator
// usable by both the discrete-event simulator and the live Satin
// runtime, and an invariant checker over the unified coord.PeriodRecord
// log the shared kernel emits in both worlds.
//
// Everything is deterministic from a single seed: the fault transport
// derives one RNG per directed cluster link (seed ^ hash(link)), so a
// link's fault sequence depends only on the seed and the order of
// frames on that link, and a failing scenario reproduces from the seed
// printed in the failure message.
package chaos

import (
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/transport"
)

// Faults describes the disturbance applied to one directed cluster
// link. The zero value means "no fault" and removes the rule.
type Faults struct {
	// Drop is the probability a frame is silently lost.
	Drop float64
	// Duplicate is the probability a frame is delivered twice (the
	// second copy gets its own jitter, so duplicates also reorder).
	Duplicate float64
	// Delay is added to every frame on the link.
	Delay time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter) per
	// frame. Because the underlying fabric only preserves order of
	// frames handed to it, jitter yields genuine reordering.
	Jitter time.Duration
	// Bandwidth, when positive, serialises payloads through a degraded
	// link of that many bytes/second (on top of whatever the inner
	// fabric models).
	Bandwidth float64
	// Corrupt is the probability a frame is delivered with one payload
	// byte flipped — the receiver's codec must count and survive it.
	Corrupt float64
}

func (f Faults) zero() bool { return f == Faults{} }

// Stats counts what the transport did to traffic, for tests.
type Stats struct {
	Sent        uint64 // frames offered by senders
	Dropped     uint64 // lost to Drop probability
	Duplicated  uint64 // extra copies delivered
	Delayed     uint64 // frames given a non-zero delay
	Partitioned uint64 // frames eaten by a cluster partition
	Crashed     uint64 // frames eaten by a crashed endpoint
	Corrupted   uint64 // copies delivered with a flipped byte
}

// ClusterOf maps an endpoint name to its cluster. The default strips a
// "prefix:" and takes everything before the first '/', matching the
// satin runtime's naming ("satin:fs0/03" → "fs0"); infrastructure
// endpoints (registry, coordinator) map to "".
type ClusterOf func(endpoint string) string

// DefaultClusterOf is the satin/registry naming convention.
func DefaultClusterOf(ep string) string {
	if i := strings.IndexByte(ep, ':'); i >= 0 {
		ep = ep[i+1:]
	}
	if i := strings.IndexByte(ep, '/'); i >= 0 {
		return ep[:i]
	}
	return ""
}

// bareName strips the "prefix:" from an endpoint name, so a crashed
// node "fs0/03" blocks both its "satin:fs0/03" and "reg:fs0/03"
// endpoints.
func bareName(ep string) string {
	if i := strings.IndexByte(ep, ':'); i >= 0 {
		return ep[i+1:]
	}
	return ep
}

type linkKey struct{ from, to string } // cluster names; "*" matches any

// FaultTransport wraps a transport.Fabric and injects seeded,
// deterministic faults: drop, duplication, delay, reorder (via
// jitter), bandwidth degradation, full cluster partition, and abrupt
// node crash (the node's endpoints go unreachable while the process
// keeps running — the nastiest failure mode a failure detector faces).
//
// Fault rules are keyed by directed cluster pair; "*" is a wildcard.
// Wildcard rules apply only to inter-cluster (uplink/backbone)
// traffic, so "degrade everything" chaos leaves cluster-internal LANs
// alone, as real wide-area weather does; an exact rule (c, c) faults a
// LAN explicitly.
type FaultTransport struct {
	inner     transport.Fabric
	seed      int64
	clusterOf ClusterOf

	mu          sync.Mutex
	faults      map[linkKey]Faults
	partitioned map[string]bool
	crashed     map[string]bool
	rngs        map[linkKey]*rand.Rand
	free        map[linkKey]time.Time // degraded-link serialisation
	timers      map[*time.Timer]struct{}
	closed      bool
	stats       Stats
}

// NewFaultTransport wraps inner. clusterOf nil means DefaultClusterOf.
func NewFaultTransport(inner transport.Fabric, seed int64, clusterOf ClusterOf) *FaultTransport {
	if clusterOf == nil {
		clusterOf = DefaultClusterOf
	}
	return &FaultTransport{
		inner:       inner,
		seed:        seed,
		clusterOf:   clusterOf,
		faults:      make(map[linkKey]Faults),
		partitioned: make(map[string]bool),
		crashed:     make(map[string]bool),
		rngs:        make(map[linkKey]*rand.Rand),
		free:        make(map[linkKey]time.Time),
		timers:      make(map[*time.Timer]struct{}),
	}
}

// SetFaults installs (or, for the zero Faults, removes) the rule for
// the directed cluster pair. Use "*" for either side as a wildcard.
func (t *FaultTransport) SetFaults(fromCluster, toCluster string, f Faults) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := linkKey{fromCluster, toCluster}
	if f.zero() {
		delete(t.faults, k)
		return
	}
	t.faults[k] = f
}

// FaultBothWays installs the same rule for traffic entering and
// leaving the cluster (the usual "this site's uplink is sick" shape).
func (t *FaultTransport) FaultBothWays(cluster string, f Faults) {
	t.SetFaults(cluster, "*", f)
	t.SetFaults("*", cluster, f)
}

// ClearFaults removes every probabilistic/delay rule (partitions and
// crashes are separate and stay).
func (t *FaultTransport) ClearFaults() {
	t.mu.Lock()
	t.faults = make(map[linkKey]Faults)
	t.mu.Unlock()
}

// Partition cuts the cluster off from everything outside it: all
// inter-cluster frames to or from it vanish, including registry
// heartbeats, so from the rest of the grid the site looks dead.
// Intra-cluster traffic still flows.
func (t *FaultTransport) Partition(cluster string) {
	t.mu.Lock()
	t.partitioned[cluster] = true
	t.mu.Unlock()
}

// Heal reconnects a partitioned cluster.
func (t *FaultTransport) Heal(cluster string) {
	t.mu.Lock()
	delete(t.partitioned, cluster)
	t.mu.Unlock()
}

// CrashNode makes the named node unreachable: every frame to or from
// any of its endpoints is eaten. The name is the bare node name
// ("fs0/03"), matching endpoints of any prefix ("satin:fs0/03",
// "reg:fs0/03").
func (t *FaultTransport) CrashNode(name string) {
	t.mu.Lock()
	t.crashed[name] = true
	t.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (t *FaultTransport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Close stops all pending delayed deliveries. It does not close the
// inner fabric (the owner does that).
func (t *FaultTransport) Close() {
	t.mu.Lock()
	t.closed = true
	timers := make([]*time.Timer, 0, len(t.timers))
	for tm := range t.timers {
		timers = append(timers, tm)
	}
	t.timers = make(map[*time.Timer]struct{})
	t.mu.Unlock()
	for _, tm := range timers {
		tm.Stop()
	}
}

// Endpoint implements transport.Fabric.
func (t *FaultTransport) Endpoint(name string) (transport.Endpoint, error) {
	ep, err := t.inner.Endpoint(name)
	if err != nil {
		return nil, err
	}
	return &faultEP{t: t, inner: ep}, nil
}

// rngFor returns the deterministic RNG of one directed cluster link.
// Seeding with seed ^ fnv(link) makes each link's fault sequence a
// pure function of the scenario seed and that link's own frame order,
// independent of interleaving with other links.
func (t *FaultTransport) rngFor(k linkKey) *rand.Rand {
	if r, ok := t.rngs[k]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(k.from))
	h.Write([]byte{0})
	h.Write([]byte(k.to))
	r := rand.New(rand.NewSource(t.seed ^ int64(h.Sum64())))
	t.rngs[k] = r
	return r
}

// lookup finds the applicable rule. Exact pairs win; wildcards apply
// only to inter-cluster traffic.
func (t *FaultTransport) lookup(cf, ct string) (Faults, linkKey, bool) {
	if f, ok := t.faults[linkKey{cf, ct}]; ok {
		return f, linkKey{cf, ct}, true
	}
	if cf == ct {
		return Faults{}, linkKey{}, false
	}
	for _, k := range []linkKey{{cf, "*"}, {"*", ct}, {"*", "*"}} {
		if f, ok := t.faults[k]; ok {
			return f, k, true
		}
	}
	return Faults{}, linkKey{}, false
}

// delivery is one planned copy of a frame: when to hand it to the
// inner fabric, and whether to flip a payload byte first (flip < 0
// means deliver intact).
type delivery struct {
	delay time.Duration
	flip  int
}

// plan decides, under the lock, what happens to one frame: eaten
// (deliver == nil) or delivered once/twice with per-copy delays and
// corruption.
func (t *FaultTransport) plan(from, to string, size int) (deliver []delivery) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Sent++
	if t.closed {
		return nil
	}
	if t.crashed[bareName(from)] || t.crashed[bareName(to)] {
		t.stats.Crashed++
		return nil
	}
	cf, ct := t.clusterOf(from), t.clusterOf(to)
	if cf != ct && (t.partitioned[cf] || t.partitioned[ct]) {
		t.stats.Partitioned++
		return nil
	}
	f, key, ok := t.lookup(cf, ct)
	if !ok {
		return []delivery{{flip: -1}}
	}
	rng := t.rngFor(key)
	if f.Drop > 0 && rng.Float64() < f.Drop {
		t.stats.Dropped++
		return nil
	}
	corrupt := func() int {
		if f.Corrupt > 0 && size > 0 && rng.Float64() < f.Corrupt {
			t.stats.Corrupted++
			return rng.Intn(size)
		}
		return -1
	}
	d := f.Delay
	if f.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(f.Jitter)))
	}
	if f.Bandwidth > 0 {
		ser := time.Duration(float64(size) / f.Bandwidth * float64(time.Second))
		now := time.Now()
		start := now
		if free, ok := t.free[key]; ok && free.After(start) {
			start = free
		}
		t.free[key] = start.Add(ser)
		d += start.Sub(now) + ser
	}
	deliver = []delivery{{delay: d, flip: corrupt()}}
	if f.Duplicate > 0 && rng.Float64() < f.Duplicate {
		t.stats.Duplicated++
		dd := f.Delay
		if f.Jitter > 0 {
			dd += time.Duration(rng.Int63n(int64(f.Jitter)))
		}
		deliver = append(deliver, delivery{delay: dd, flip: corrupt()})
	}
	if d > 0 || len(deliver) > 1 {
		t.stats.Delayed++
	}
	return deliver
}

// after schedules fn once the delay elapses, unless the transport is
// closed first.
func (t *FaultTransport) after(d time.Duration, fn func()) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		t.mu.Lock()
		_, live := t.timers[tm]
		delete(t.timers, tm)
		closed := t.closed
		t.mu.Unlock()
		if live && !closed {
			fn()
		}
	})
	t.timers[tm] = struct{}{}
	t.mu.Unlock()
}

type faultEP struct {
	t     *FaultTransport
	inner transport.Endpoint
}

func (e *faultEP) Name() string                         { return e.inner.Name() }
func (e *faultEP) SetHandler(h transport.Handler)       { e.inner.SetHandler(h) }
func (e *faultEP) Close() error                         { return e.inner.Close() }
func (e *faultEP) send(to, kind string, p []byte) error { return e.inner.Send(to, kind, p) }

// Send applies the fault plan. A frame the chaos layer eats returns
// nil — from the sender a lossy network is indistinguishable from a
// slow one. Delayed copies that fail to send later are likewise lost
// silently (the destination died in the meantime: exactly the race a
// real network exhibits).
func (e *faultEP) Send(to, kind string, payload []byte) error {
	plan := e.t.plan(e.inner.Name(), to, len(payload))
	if plan == nil {
		return nil
	}
	var err error
	for i, dl := range plan {
		p := payload
		if dl.flip >= 0 && dl.flip < len(p) {
			// Corrupt a copy, never the caller's (possibly shared) slice.
			p = append([]byte(nil), payload...)
			p[dl.flip] ^= 0xFF
		}
		if dl.delay <= 0 && i == 0 {
			err = e.send(to, kind, p)
			continue
		}
		e.t.after(dl.delay, func() { _ = e.send(to, kind, p) })
	}
	return err
}

var _ transport.Fabric = (*FaultTransport)(nil)
