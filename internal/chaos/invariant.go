package chaos

import (
	"fmt"
	"sort"

	"repro/internal/coord"
	"repro/internal/core"
)

// Observation is one coordinator tick as the invariant checker sees
// it: the unified period record both runtimes emit, plus the learned
// requirements and the per-cluster occupation at that instant. The DES
// fills it from des.Params.Observe; the live harness samples
// adapt.Coordinator.History() alongside the grid's node census.
type Observation struct {
	Record              coord.PeriodRecord
	BlacklistedNodes    []core.NodeID
	BlacklistedClusters []core.ClusterID
	PerCluster          map[core.ClusterID]int
}

// NewObservation snapshots one tick; the requirement lists and the
// census are copied so later mutation cannot corrupt the log.
func NewObservation(rec coord.PeriodRecord, reqs *core.Requirements, perCluster map[core.ClusterID]int) Observation {
	o := Observation{Record: rec}
	if reqs != nil {
		o.BlacklistedNodes = reqs.BlacklistedNodes()
		o.BlacklistedClusters = reqs.BlacklistedClusters()
	}
	o.PerCluster = make(map[core.ClusterID]int, len(perCluster))
	for c, n := range perCluster {
		o.PerCluster[c] = n
	}
	return o
}

// CheckConfig parameterises the invariant checker.
type CheckConfig struct {
	// EMin/EMax are the WAE thresholds of the run under test.
	EMin, EMax float64

	// DisturbEnd is when the last disturbance landed or healed; the
	// recovery invariant only watches ticks after it.
	DisturbEnd float64

	// RequireRecovery asserts that after DisturbEnd some tick with
	// fresh statistics sees WAE back at or above EMin. (Above EMax
	// counts as recovered too: efficiency overshooting the band means
	// the application is healthy and merely under-provisioned, which
	// the growth path handles.)
	RequireRecovery bool

	// ProvisionGrace is how many observations after a cluster first
	// appears blacklisted its population may still grow: a grant
	// issued before the eviction decision can land afterwards
	// (deployment takes JoinDelay). Default 1.
	ProvisionGrace int

	// Streaming-objective invariants (ISSUE 9). In a streaming run the
	// period record's WAE column carries stream health — TargetLatency
	// over the period's mean end-to-end latency, so 1.0 means exactly on
	// target and higher is better.

	// RequireSLORecovery asserts that after DisturbEnd the stream
	// health climbs back to SLORecoverHealth or above within
	// SLORecoverWithin fresh-statistics ticks: the latency spike a
	// fault causes must be adapted away, not merely survived.
	RequireSLORecovery bool
	// SLORecoverHealth is the health level that counts as recovered
	// (default 1: mean latency back at or under the target).
	SLORecoverHealth float64
	// SLORecoverWithin bounds how many post-disturbance ticks with
	// fresh statistics the recovery may take (0 = any tick before the
	// run ends).
	SLORecoverWithin int

	// MaxDirectionFlips, when positive, bounds grow/shrink oscillation:
	// the acting decision sequence may reverse direction (add ->
	// remove, or remove -> add) at most this many times over the whole
	// run. A healthy hysteresis loop reverses about once per
	// disturbance (grow into the fault, release after the recovery); an
	// unstable one alternates every few periods.
	MaxDirectionFlips int
}

// Violation is one invariant breach, pointing at the observation where
// it happened.
type Violation struct {
	Invariant string
	Index     int
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at tick %d: %s", v.Invariant, v.Index, v.Detail)
}

// Check runs every cross-runtime invariant over an observation stream
// and returns all breaches. An empty result means the adaptation loop
// behaved: blacklists only grew, evicted clusters were never
// re-provisioned, every action was grounded in fresh statistics, and
// (if required) WAE re-entered the healthy band after the disturbance.
func Check(obs []Observation, cfg CheckConfig) []Violation {
	if cfg.ProvisionGrace == 0 {
		cfg.ProvisionGrace = 1
	}
	var out []Violation

	// Blacklists only grow: each tick's sets contain the previous
	// tick's. (The kernel has no pardon path during a run; shrinkage
	// would mean state was lost or rebuilt.)
	for i := 1; i < len(obs); i++ {
		if miss := missingNodes(obs[i-1].BlacklistedNodes, obs[i].BlacklistedNodes); len(miss) > 0 {
			out = append(out, Violation{
				Invariant: "blacklist-monotone-nodes", Index: i,
				Detail: fmt.Sprintf("nodes %v left the blacklist", miss),
			})
		}
		if miss := missingClusters(obs[i-1].BlacklistedClusters, obs[i].BlacklistedClusters); len(miss) > 0 {
			out = append(out, Violation{
				Invariant: "blacklist-monotone-clusters", Index: i,
				Detail: fmt.Sprintf("clusters %v left the blacklist", miss),
			})
		}
	}

	// Evicted clusters stay evicted: once a cluster is blacklisted its
	// population must never grow again (after the grace window for
	// grants already in flight when the decision fell).
	firstSeen := make(map[core.ClusterID]int)
	for i, o := range obs {
		for _, c := range o.BlacklistedClusters {
			if _, ok := firstSeen[c]; !ok {
				firstSeen[c] = i
			}
		}
	}
	for c, seen := range firstSeen {
		for j := seen + cfg.ProvisionGrace + 1; j < len(obs); j++ {
			prev, cur := obs[j-1].PerCluster[c], obs[j].PerCluster[c]
			if cur > prev {
				out = append(out, Violation{
					Invariant: "no-reprovision-after-eviction", Index: j,
					Detail: fmt.Sprintf("blacklisted cluster %s grew %d -> %d nodes", c, prev, cur),
				})
			}
		}
	}

	// Actions need fresh statistics: the kernel discards all reports
	// after acting, so a decision in a period that ingested zero
	// reports would be chained off pre-action stale state. The only
	// legitimate statless action is the bootstrap add when the
	// computation has no live nodes at all.
	for i, o := range obs {
		r := o.Record
		if r.Action == "" || r.Action == "none" {
			continue
		}
		if r.Stats == 0 && !(r.Action == "add" && r.Nodes == 0) {
			out = append(out, Violation{
				Invariant: "action-needs-stats", Index: i,
				Detail: fmt.Sprintf("action %q taken with zero node reports (nodes=%d)", r.Action, r.Nodes),
			})
		}
	}

	// WAE recovery: after the disturbance settles, some tick with real
	// statistics must see efficiency back at or above EMin.
	if cfg.RequireRecovery {
		recovered, watched := false, 0
		worst := -1.0
		for _, o := range obs {
			r := o.Record
			if r.Time <= cfg.DisturbEnd || r.Stats == 0 {
				continue
			}
			watched++
			if r.WAE > worst {
				worst = r.WAE
			}
			if r.WAE >= cfg.EMin {
				recovered = true
				break
			}
		}
		// Zero post-disturbance ticks means the run ended first; the
		// completion check owns that case.
		if watched > 0 && !recovered {
			out = append(out, Violation{
				Invariant: "wae-recovery", Index: len(obs) - 1,
				Detail: fmt.Sprintf("WAE never re-entered [%.2f,%.2f] after t=%.0f (best %.3f over %d ticks)",
					cfg.EMin, cfg.EMax, cfg.DisturbEnd, worst, watched),
			})
		}
	}

	// SLO recovery: after the disturbance settles, the stream health
	// must re-enter the target within the allowed number of ticks. The
	// watch counts only ticks with fresh statistics — a post-action
	// reset period judges nothing and should not burn the budget.
	if cfg.RequireSLORecovery {
		floor := cfg.SLORecoverHealth
		if floor == 0 {
			floor = 1
		}
		recovered, watched := false, 0
		best := -1.0
		for _, o := range obs {
			r := o.Record
			if r.Time <= cfg.DisturbEnd || r.Stats == 0 {
				continue
			}
			watched++
			if r.WAE > best {
				best = r.WAE
			}
			if r.WAE >= floor {
				recovered = true
				break
			}
			if cfg.SLORecoverWithin > 0 && watched >= cfg.SLORecoverWithin {
				break
			}
		}
		// Zero post-disturbance ticks means the run ended first; the
		// completion check owns that case.
		if watched > 0 && !recovered {
			out = append(out, Violation{
				Invariant: "slo-recovery", Index: len(obs) - 1,
				Detail: fmt.Sprintf("stream health never reached %.2f within %d ticks after t=%.0f (best %.3f)",
					floor, watched, cfg.DisturbEnd, best),
			})
		}
	}

	// No oscillation: the grow/shrink sequence may reverse direction
	// only as often as the disturbance schedule justifies. Same-direction
	// repeats (growing in steps, releasing one node per calm period) are
	// fine; alternation means the objective's hysteresis band is broken.
	if cfg.MaxDirectionFlips > 0 {
		flips, last, lastFlip := 0, 0, 0
		for i, o := range obs {
			var dir int
			switch o.Record.Action {
			case "add":
				dir = 1
			case "remove-nodes", "remove-cluster":
				dir = -1
			default:
				continue
			}
			if last != 0 && dir != last {
				flips++
				lastFlip = i
			}
			last = dir
		}
		if flips > cfg.MaxDirectionFlips {
			out = append(out, Violation{
				Invariant: "no-oscillation", Index: lastFlip,
				Detail: fmt.Sprintf("decision sequence reversed grow/shrink direction %d times (allowed %d)",
					flips, cfg.MaxDirectionFlips),
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func missingNodes(prev, cur []core.NodeID) []core.NodeID {
	set := make(map[core.NodeID]bool, len(cur))
	for _, n := range cur {
		set[n] = true
	}
	var miss []core.NodeID
	for _, n := range prev {
		if !set[n] {
			miss = append(miss, n)
		}
	}
	return miss
}

func missingClusters(prev, cur []core.ClusterID) []core.ClusterID {
	set := make(map[core.ClusterID]bool, len(cur))
	for _, c := range cur {
		set[c] = true
	}
	var miss []core.ClusterID
	for _, c := range prev {
		if !set[c] {
			miss = append(miss, c)
		}
	}
	return miss
}
