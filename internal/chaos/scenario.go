package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/topo"
	"repro/internal/workload"
)

// EventKind enumerates scenario disturbances. The first three map to
// des.Injection kinds and also apply to the live runtime through
// satin.Grid; the last two are transport-level faults only the live
// runtime (via FaultTransport) can experience — the DES abstracts
// messages away and its analogue is already covered by crash + shape.
type EventKind int

const (
	// EvLoad puts a competing CPU load on a cluster.
	EvLoad EventKind = iota
	// EvShape degrades a cluster's uplink bandwidth.
	EvShape
	// EvCrash kills Count nodes of a cluster abruptly (0 = all).
	EvCrash
	// EvDrop makes a cluster's uplink lossy and jittery (live only).
	EvDrop
	// EvPartition cuts a cluster off entirely until Heal (live only).
	EvPartition
	// EvRootCrash kills the root coordinator (sharded runs only):
	// adaptation pauses until the sub-coordinators elect a successor.
	EvRootCrash
	// EvSubCrash kills one cluster's sub-coordinator (sharded runs
	// only); it restarts empty and re-learns the epoch from the root.
	EvSubCrash
)

func (k EventKind) String() string {
	switch k {
	case EvLoad:
		return "load"
	case EvShape:
		return "shape"
	case EvCrash:
		return "crash"
	case EvDrop:
		return "drop"
	case EvPartition:
		return "partition"
	case EvRootCrash:
		return "root-crash"
	case EvSubCrash:
		return "sub-crash"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled disturbance, in scenario (virtual) seconds.
type Event struct {
	At      float64
	Kind    EventKind
	Cluster core.ClusterID

	Count     int     // EvCrash: victims (0 = whole cluster)
	Load      float64 // EvLoad: competing load factor
	Bandwidth float64 // EvShape: new uplink capacity, bytes/s
	Drop      float64 // EvDrop: per-frame loss probability
	Delay     float64 // EvDrop: added jitter ceiling, seconds
	Heal      float64 // EvDrop/EvPartition: when the fault clears (0 = never)
}

func (e Event) String() string {
	if e.Kind == EvRootCrash {
		// The root crash is a whole-tree fault; no cluster to name.
		return fmt.Sprintf("t=%.0f %s", e.At, e.Kind)
	}
	s := fmt.Sprintf("t=%.0f %s %s", e.At, e.Kind, e.Cluster)
	switch e.Kind {
	case EvLoad:
		s += fmt.Sprintf(" x%.1f", e.Load)
	case EvShape:
		s += fmt.Sprintf(" %.0fKB/s", e.Bandwidth/1e3)
	case EvCrash:
		if e.Count > 0 {
			s += fmt.Sprintf(" %d nodes", e.Count)
		} else {
			s += " all"
		}
	case EvDrop:
		s += fmt.Sprintf(" p=%.2f", e.Drop)
	}
	if e.Heal > 0 {
		s += fmt.Sprintf(" heal@%.0f", e.Heal)
	}
	return s
}

// Scenario is one generated chaos run: a topology, an initial
// allocation, and an injection schedule — all a pure function of Seed.
type Scenario struct {
	Seed    int64
	Topo    topo.Topology
	Initial []des.Alloc
	Spec    workload.Spec
	Period  float64
	Horizon float64 // abort bound, virtual seconds
	Events  []Event

	// Stream, when set, makes this a streaming-pipeline scenario
	// (ISSUE 9): Spec is ignored, the run adapts against the latency SLO
	// (core.StreamSLO on Stream.TargetLatency) instead of the WAE band,
	// and the invariants of interest become SLO recovery and
	// no-oscillation rather than WAE recovery.
	Stream *workload.StreamSpec

	// Refuge is a cluster the generator never disturbs, so the grid
	// always retains healthy capacity and WAE recovery is achievable.
	Refuge core.ClusterID

	// Sharded marks a scenario generated for the hierarchical
	// coordinator tree; coordinator-kill events require it.
	Sharded bool
}

// DisturbEnd is the time the last disturbance lands or heals — the
// point after which the WAE-recovery invariant starts watching.
func (sc Scenario) DisturbEnd() float64 {
	end := 0.0
	for _, e := range sc.Events {
		t := e.At
		if e.Heal > t {
			t = e.Heal
		}
		if t > end {
			end = t
		}
	}
	return end
}

// GenConfig bounds the randomized generator. The zero value gives the
// default corpus shape.
type GenConfig struct {
	MinClusters int // default 3
	MaxClusters int // default 5
	MinNodes    int // per cluster, default 2
	MaxNodes    int // per cluster, default 6
	MaxEvents   int // default 3
	Period      float64
	// LiveFaults includes transport-level kinds (EvDrop, EvPartition)
	// that only the live runtime can apply. Leave false for DES runs.
	LiveFaults bool
	// CoordFaults includes coordinator kills (EvRootCrash, EvSubCrash)
	// and marks the scenario Sharded — the flat coordinator has no
	// failover to test.
	CoordFaults bool
	// Streaming generates a streaming-pipeline scenario instead of a
	// batch one: Scenario.Stream is set and DESParams selects the
	// StreamSLO objective.
	Streaming bool
}

func (g *GenConfig) defaults() {
	if g.MinClusters == 0 {
		g.MinClusters = 3
	}
	if g.MaxClusters == 0 {
		g.MaxClusters = 5
	}
	if g.MinNodes == 0 {
		g.MinNodes = 2
	}
	if g.MaxNodes == 0 {
		g.MaxNodes = 6
	}
	if g.MaxEvents == 0 {
		g.MaxEvents = 3
	}
	if g.Period == 0 {
		g.Period = 180
	}
}

// Generate builds the scenario for a seed. Same seed, same scenario —
// the corpus tests rely on it, and a failure report is just the seed.
func Generate(seed int64, cfg GenConfig) Scenario {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	span := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

	nClusters := span(cfg.MinClusters, cfg.MaxClusters)
	speeds := []float64{0.75, 1, 1, 1.5}
	var t topo.Topology
	for i := 0; i < nClusters; i++ {
		t.Clusters = append(t.Clusters, topo.Cluster{
			ID:              core.ClusterID(fmt.Sprintf("ch%d", i)),
			Nodes:           span(cfg.MinNodes, cfg.MaxNodes),
			Speed:           speeds[rng.Intn(len(speeds))],
			LANLatency:      topo.LANLatency,
			LANBandwidth:    topo.FastEthernetBandwidth,
			WANLatency:      topo.WANLatencyOneWay,
			UplinkBandwidth: topo.BackboneUplink,
		})
	}

	// The refuge keeps recovery achievable: it is never disturbed and
	// is guaranteed real capacity at normal speed.
	refugeIdx := rng.Intn(nClusters)
	refuge := &t.Clusters[refugeIdx]
	if refuge.Nodes < 4 {
		refuge.Nodes = 4
	}
	refuge.Speed = 1

	// Initial allocation: the master's cluster plus possibly a second
	// site. The master cluster is also spared from crash events (the
	// kernel protects the master from eviction; the generator keeps
	// full-site losses away from it so every scenario can finish).
	masterIdx := rng.Intn(nClusters)
	sc := Scenario{
		Seed:   seed,
		Topo:   t,
		Period: cfg.Period,
		Refuge: t.Clusters[refugeIdx].ID,
	}
	first := t.Clusters[masterIdx]
	sc.Initial = append(sc.Initial, des.Alloc{Cluster: first.ID, Count: span(1, first.Nodes)})
	if rng.Float64() < 0.5 {
		secondIdx := rng.Intn(nClusters)
		if secondIdx != masterIdx {
			second := t.Clusters[secondIdx]
			sc.Initial = append(sc.Initial, des.Alloc{Cluster: second.ID, Count: span(1, second.Nodes)})
		}
	}

	startNodes := 0
	for _, a := range sc.Initial {
		startNodes += a.Count
	}
	// Sized so the run spans well past the event window (disturbances
	// land between periods 2 and 8): ~20 iterations of a couple of
	// monitoring periods each, whatever the adaptation does.
	if cfg.Streaming {
		// The open-loop source offers about half the initial capacity
		// (1.5 speed-seconds of stage work per item, nodes near speed 1),
		// so the pipeline starts healthy and only a disturbance pushes
		// latency over the SLO; the source runs ~30 periods, leaving a
		// long post-disturbance window for the recovery invariant.
		rate := float64(startNodes) / 3
		sc.Stream = &workload.StreamSpec{
			Name: fmt.Sprintf("chaos-stream-%d", seed),
			Stages: []workload.StreamStage{
				{Name: "decode", WorkPerItem: 0.3, BytesPerItem: 64 << 10},
				{Name: "transform", WorkPerItem: 0.9, BytesPerItem: 32 << 10},
				{Name: "encode", WorkPerItem: 0.3, BytesPerItem: 32 << 10},
			},
			RateHz:        rate,
			Items:         int(rate * 30 * cfg.Period),
			TargetLatency: 6,
		}
	} else {
		sc.Spec = workload.Spec{
			Name:                   fmt.Sprintf("chaos-%d", seed),
			Iterations:             20,
			WorkPerIteration:       150 * float64(startNodes),
			SequentialPerIteration: 2,
			Grain:                  0.25,
			Irregularity:           0.5,
			BytesPerNode:           8e6,
			ExchangeBytes:          0.5e6,
			StealMsgBytes:          4096,
		}
	}
	sc.Horizon = 80 * cfg.Period

	// Disturbances hit only clusters that are neither the refuge nor
	// (for crashes) the master's home — and prefer clusters the
	// application starts on, where a disturbance actually hurts.
	occupied := make(map[core.ClusterID]bool)
	for _, a := range sc.Initial {
		occupied[a.Cluster] = true
	}
	var targets, crashable []core.ClusterID
	for i, c := range t.Clusters {
		if i == refugeIdx {
			continue
		}
		targets = append(targets, c.ID)
		if occupied[c.ID] {
			targets = append(targets, c.ID, c.ID) // triple weight
		}
		if i != masterIdx {
			crashable = append(crashable, c.ID)
		}
	}
	kinds := []EventKind{EvLoad, EvShape, EvCrash}
	if cfg.LiveFaults {
		kinds = append(kinds, EvDrop, EvPartition)
	}
	if cfg.CoordFaults {
		sc.Sharded = true
		kinds = append(kinds, EvRootCrash, EvSubCrash)
	}
	nEvents := span(1, cfg.MaxEvents)
	for i := 0; i < nEvents && len(targets) > 0; i++ {
		e := Event{
			At:      cfg.Period * (2 + 4*rng.Float64()),
			Kind:    kinds[rng.Intn(len(kinds))],
			Cluster: targets[rng.Intn(len(targets))],
		}
		switch e.Kind {
		case EvLoad:
			e.Load = 4 + 12*rng.Float64()
		case EvShape:
			e.Bandwidth = 50e3 + 250e3*rng.Float64()
		case EvCrash:
			if len(crashable) == 0 {
				// Nothing safely crashable: degrade to a load burst.
				e.Kind = EvLoad
				e.Load = 4 + 12*rng.Float64()
				break
			}
			e.Cluster = crashable[rng.Intn(len(crashable))]
			c, _ := t.Cluster(e.Cluster)
			e.Count = rng.Intn(c.Nodes + 1) // 0 = all
		case EvDrop:
			e.Drop = 0.05 + 0.25*rng.Float64()
			e.Delay = 0.01 + 0.04*rng.Float64()
			e.Heal = e.At + cfg.Period*(1+2*rng.Float64())
		case EvPartition:
			e.Heal = e.At + cfg.Period*(0.5+rng.Float64())
		case EvRootCrash:
			// A whole-tree fault; recovery takes FailoverAfter summary
			// periods of silence plus the successor's first fresh tick.
			e.Cluster = ""
		case EvSubCrash:
			// Any disturbed-side cluster works: the sub restarts empty
			// after the detection delay and re-learns the epoch.
		}
		sc.Events = append(sc.Events, e)
	}
	return sc
}

// Injections maps the scenario onto the simulator's event model.
// Transport-level kinds have no DES representation and are skipped.
func (sc Scenario) Injections() []des.Injection {
	var out []des.Injection
	for _, e := range sc.Events {
		inj := des.Injection{
			At:      e.At,
			Cluster: e.Cluster,
			Label:   e.String(),
		}
		switch e.Kind {
		case EvLoad:
			inj.Kind = des.InjSetLoad
			inj.Load = e.Load
		case EvShape:
			inj.Kind = des.InjShapeUplink
			inj.Bandwidth = e.Bandwidth
		case EvCrash:
			inj.Kind = des.InjCrash
			inj.Count = e.Count
		case EvRootCrash:
			inj.Kind = des.InjCrashRoot
		case EvSubCrash:
			inj.Kind = des.InjCrashSub
		default:
			continue
		}
		out = append(out, inj)
	}
	return out
}

// DESParams assembles a full simulator run for the scenario: batch
// scenarios get the paper's default WAE-band configuration, streaming
// scenarios the default latency-SLO objective (the two are mutually
// exclusive — a run has one objective).
func (sc Scenario) DESParams() des.Params {
	p := des.Params{
		Topo:    sc.Topo,
		Spec:    sc.Spec,
		Seed:    sc.Seed,
		Initial: sc.Initial,
		Mon:     des.DefaultMonitor(),
		Events:  sc.Injections(),
		MaxTime: sc.Horizon,
	}
	if sc.Stream != nil {
		slo := core.DefaultStreamSLO(sc.Stream.TargetLatency)
		p.Stream = sc.Stream
		p.StreamSLO = &slo
	} else {
		adapt := core.DefaultConfig()
		p.Adapt = &adapt
	}
	p.Mon.Period = sc.Period
	p.Sharded = sc.Sharded
	return p
}

// RunDES executes the scenario on the simulator, recording an
// Observation per coordinator tick for the invariant checker.
func RunDES(sc Scenario) (*des.Result, []Observation, error) {
	p := sc.DESParams()
	var obs []Observation
	p.Observe = func(rec des.PeriodRecord, reqs *core.Requirements, per map[core.ClusterID]int) {
		obs = append(obs, NewObservation(rec, reqs, per))
	}
	res, err := des.Run(p)
	return res, obs, err
}
