package chaos

import (
	"testing"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/transport"
	"repro/satin"
)

func fastReg() registry.Options {
	return registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
}

// chaosGrid builds a two-cluster live deployment whose entire traffic
// — steals, reports, heartbeats — runs through a FaultTransport seeded
// from one value.
func chaosGrid(t *testing.T, seed int64, period time.Duration) (*satin.Grid, *FaultTransport) {
	t.Helper()
	var ft *FaultTransport
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "lc0", Nodes: 3},
			{Name: "lc1", Nodes: 4},
		},
		Registry:   fastReg(),
		LANLatency: 50 * time.Microsecond,
		WANLatency: time.Millisecond,
		Seed:       seed,
		WrapFabric: func(inner transport.Fabric) transport.Fabric {
			ft = NewFaultTransport(inner, seed, nil)
			return ft
		},
		Node: satin.NodeConfig{
			Registry:          fastReg(),
			Coordinator:       adapt.EndpointName,
			MonitorPeriod:     period,
			Bench:             apps.Fib{N: 16, SeqCutoff: 16},
			BenchWork:         float64(apps.FibLeaves(16)),
			BenchBudget:       0.05,
			LocalStealTimeout: 50 * time.Millisecond,
			WANStealTimeout:   300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.Close()
		ft.Close()
	})
	return g, ft
}

// census snapshots the live node count per cluster.
func census(g *satin.Grid) map[core.ClusterID]int {
	per := make(map[core.ClusterID]int)
	for _, n := range g.Nodes() {
		per[core.ClusterID(n.Cluster())]++
	}
	return per
}

// The live half of the cross-runtime invariant requirement: the same
// Check() that audits the DES corpus runs over the real runtime's
// coord.PeriodRecord log, while the real transport is lossy, jittery
// and duplicating AND a cluster gets overloaded mid-run. The
// coordinator must keep its blacklists monotone, ground every action
// in fresh statistics, and bring WAE back into the healthy band after
// the disturbance clears.
func TestChaosLiveInvariants(t *testing.T) {
	const seed = 7
	period := 300 * time.Millisecond
	baseDup := obs.Default.Total("wire/dup/")
	g, ft := chaosGrid(t, seed, period)
	masters, err := g.StartNodes("lc0", 1)
	if err != nil {
		t.Fatal(err)
	}
	master := masters[0]
	if _, err := g.StartNodes("lc1", 2); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:    period,
		Protected: []adapt.NodeID{master.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			master.Submit(apps.Fib{N: 21, SeqCutoff: 10, LeafDelay: 2 * time.Millisecond}).Wait()
		}
	}()
	defer func() { close(stop); <-done }()

	// Chaos phase: the WAN delays, jitters (= reorders) and duplicates
	// frames, and lc1 gets buried under competing load. No
	// probabilistic drop on the work protocol: the runtime's transport
	// contract is a stream — loss shows up as a connection/node
	// failure, which the partition and crash tests cover.
	ft.FaultBothWays("lc1", Faults{Delay: 2 * time.Millisecond,
		Jitter: 10 * time.Millisecond, Duplicate: 0.1})
	time.Sleep(3 * period)
	g.SetClusterLoad("lc1", 8)
	time.Sleep(4 * period)

	// Disturbance clears; from here the loop must recover.
	g.SetClusterLoad("lc1", 0)
	ft.ClearFaults()
	disturbEnd := time.Since(t0).Seconds()

	// Sample the unified period log until recovery shows (or time runs
	// out — then Check reports the recovery violation with the seed).
	var samples []Observation
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		hist := coord.History()
		for len(samples) < len(hist) {
			samples = append(samples, NewObservation(hist[len(samples)], coord.Requirements(), census(g)))
		}
		if n := len(samples); n > 0 {
			r := samples[n-1].Record
			if r.Time > disturbEnd && r.Stats > 0 && r.WAE >= 0.30 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	if len(samples) < 4 {
		t.Fatalf("seed %d: only %d coordinator ticks observed", seed, len(samples))
	}
	for _, v := range Check(samples, CheckConfig{
		EMin: 0.30, EMax: 0.50,
		DisturbEnd:      disturbEnd,
		RequireRecovery: true,
	}) {
		t.Errorf("seed %d (live): %s", seed, v)
	}
	if master.Stopped() {
		t.Errorf("seed %d: protected master was removed", seed)
	}
	if st := ft.Stats(); st.Dropped == 0 && st.Delayed == 0 {
		t.Errorf("seed %d: fault transport injected nothing (stats %+v)", seed, st)
	}
	// Injected duplicates must be accounted by the wire layer, not
	// silently re-delivered or dropped.
	if st := ft.Stats(); st.Duplicated > 0 && obs.Default.Total("wire/dup/") == baseDup {
		t.Errorf("seed %d: %d duplicated frames invisible in obs wire/dup counters",
			seed, st.Duplicated)
	}
}

// A partitioned cluster must look dead to the rest of the grid: the
// registry declares its nodes failed, the coordinator's live set
// shrinks, and the computation keeps completing on the surviving side.
func TestChaosLivePartitionIsolates(t *testing.T) {
	const seed = 11
	period := 300 * time.Millisecond
	g, ft := chaosGrid(t, seed, period)
	masters, err := g.StartNodes("lc0", 2)
	if err != nil {
		t.Fatal(err)
	}
	master := masters[0]
	if _, err := g.StartNodes("lc1", 2); err != nil {
		t.Fatal(err)
	}

	ft.Partition("lc1")
	deadline := time.Now().Add(10 * time.Second)
	for {
		members := g.Registry().Members()
		gone := true
		for _, m := range members {
			if DefaultClusterOf("x:"+string(m.ID)) == "lc1" {
				gone = false
			}
		}
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: partitioned cluster still in the registry after %v: %v",
				seed, 10*time.Second, members)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The surviving side still computes — and correctly.
	val, err := master.Run(apps.Fib{N: 18, SeqCutoff: 10})
	if err != nil {
		t.Fatalf("seed %d: computation failed under partition: %v", seed, err)
	}
	if want := apps.FibLeaves(18); val.(int) != want {
		t.Fatalf("seed %d: wrong result under partition: got %v want %d", seed, val, want)
	}
}
