package chaos

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

type chaosPing struct{ Seq int }

func init() { wire.Register[chaosPing]("chaos-ping") }

// protoErrTotal sums every obs counter a corrupted frame can land in:
// a flipped byte in the gob body is a decode error, a flipped header
// byte shows up as a stale/desynced frame on the session.
func protoErrTotal() uint64 {
	return obs.Default.Total("wire/decode_err/") +
		obs.Default.Total("wire/desync/") +
		obs.Default.Total("wire/stale/") +
		obs.Default.Total("wire/unknown_kind/")
}

// Corruption and duplication injected by the fault layer must be
// visible in the wire layer's obs counters — a flipped byte is a
// counted protocol error, never a silent drop — and the session must
// recover once the link heals.
func TestChaosCorruptionAccounted(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ft := NewFaultTransport(inner, 23, nil)
	defer ft.Close()

	epA, err := ft.Endpoint("satin:ca/0")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := ft.Endpoint("satin:cb/0")
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := wire.New(epA), wire.New(epB)
	defer ca.Close()
	defer cb.Close()

	var got atomic.Uint64
	wire.Handle(cb, func(chaosPing, wire.Meta) { got.Add(1) })

	baseErr := protoErrTotal()
	baseDup := obs.Default.Total("wire/dup/")

	ft.SetFaults("ca", "cb", Faults{Corrupt: 0.05, Duplicate: 0.2})
	for i := 0; i < 300; i++ {
		wire.Send(ca, "satin:cb/0", chaosPing{Seq: i})
		if i%50 == 49 {
			// Give the reset handshake a chance to land mid-barrage.
			time.Sleep(5 * time.Millisecond)
		}
	}
	st := ft.Stats()
	if st.Corrupted == 0 {
		t.Fatalf("seeded fault plan corrupted nothing (stats %+v)", st)
	}
	if st.Duplicated == 0 {
		t.Fatalf("seeded fault plan duplicated nothing (stats %+v)", st)
	}

	// Every corruption must be accounted somewhere in the wire counters.
	if d := protoErrTotal() - baseErr; d == 0 {
		t.Errorf("%d corrupted frames invisible in obs protocol-error counters", st.Corrupted)
	}
	if d := obs.Default.Total("wire/dup/") - baseDup; d == 0 {
		t.Errorf("%d duplicated frames invisible in obs wire/dup counters", st.Duplicated)
	}

	// The link heals; the session must resynchronise and deliver again.
	ft.ClearFaults()
	before := got.Load()
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("session did not recover after faults cleared")
		}
		wire.Send(ca, "satin:cb/0", chaosPing{Seq: -1})
		time.Sleep(10 * time.Millisecond)
	}
}
