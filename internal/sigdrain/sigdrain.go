// Package sigdrain is the binaries' shared SIGINT/SIGTERM handling:
// the first signal triggers a graceful drain (finish or cancel jobs,
// flush the recorder) and exits with the drain's code; a second signal
// while draining force-exits immediately. Both satinrun and satind
// install it, so ctrl-C never leaves half-flushed observability or
// orphaned jobs.
package sigdrain

import (
	"log"
	"os"
	"os/signal"
	"syscall"
)

// Install starts watching for SIGINT/SIGTERM. On the first signal the
// drain function runs once and the process exits with its return
// value; a second signal during the drain exits 130 at once. The
// returned release function uninstalls the handler (for a clean
// natural exit).
func Install(name string, drain func() int) (release func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			log.Printf("%s: received %v, draining (signal again to force quit)", name, sig)
			go func() {
				<-ch
				os.Exit(130)
			}()
			os.Exit(drain())
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
