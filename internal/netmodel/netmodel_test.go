package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topo"
	"repro/internal/vtime"
)

func TestPipeSingleTransfer(t *testing.T) {
	p := NewPipe(1e6, 0.01) // 1 MB/s, 10 ms
	done := p.Transfer(0, 5e5)
	want := vtime.Time(0.5 + 0.01)
	if math.Abs(float64(done-want)) > 1e-12 {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestPipeFIFOQueueing(t *testing.T) {
	p := NewPipe(1e6, 0) // 1 MB/s, no latency
	d1 := p.Transfer(0, 1e6)
	d2 := p.Transfer(0, 1e6) // queued behind d1
	if d1 != 1 || d2 != 2 {
		t.Fatalf("d1=%v d2=%v, want 1 and 2", d1, d2)
	}
	// A transfer after the link drained starts immediately.
	d3 := p.Transfer(5, 1e6)
	if d3 != 6 {
		t.Fatalf("d3=%v, want 6", d3)
	}
	if q := p.QueueDelay(5.5); q != 0.5 {
		t.Fatalf("QueueDelay = %v, want 0.5", q)
	}
	if q := p.QueueDelay(10); q != 0 {
		t.Fatalf("QueueDelay past free = %v, want 0", q)
	}
}

func TestPipeSetBandwidth(t *testing.T) {
	p := NewPipe(1e6, 0)
	p.SetBandwidth(1e5) // throttle to 100 KB/s
	if p.Bandwidth() != 1e5 {
		t.Fatalf("Bandwidth = %v", p.Bandwidth())
	}
	if done := p.Transfer(0, 1e5); done != 1 {
		t.Fatalf("throttled transfer done = %v, want 1", done)
	}
}

func TestPipeObservedBandwidth(t *testing.T) {
	p := NewPipe(2e6, 0.001)
	if p.ObservedBandwidth() != 0 {
		t.Fatal("idle pipe should observe 0")
	}
	p.Transfer(0, 4e6)
	if ob := p.ObservedBandwidth(); math.Abs(ob-2e6) > 1 {
		t.Fatalf("observed = %v, want 2e6", ob)
	}
}

func TestPipePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bandwidth": func() { NewPipe(0, 0) },
		"set zero":       func() { NewPipe(1, 0).SetBandwidth(0) },
		"negative size":  func() { NewPipe(1, 0).Transfer(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: FIFO pipes never reorder and completion times are
// non-decreasing in issue order.
func TestPipeFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := NewPipe(1e3, 0.002)
		prev := vtime.Time(-1)
		now := vtime.Time(0)
		for _, s := range sizes {
			done := p.Transfer(now, float64(s))
			if done < prev || done < now {
				return false
			}
			prev = done
			now += 0.001
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func testTopology() topo.Topology {
	mk := func(id topo.ClusterID) topo.Cluster {
		return topo.Cluster{
			ID: id, Nodes: 4, Speed: 1,
			LANLatency: 0.0001, LANBandwidth: 10e6,
			WANLatency: 0.002, UplinkBandwidth: 1e6,
		}
	}
	return topo.Topology{Clusters: []topo.Cluster{mk("A"), mk("B")}}
}

func TestNetIntraVsInter(t *testing.T) {
	n := New(testTopology())
	intra := n.Intra(0, "A", 1e6)
	inter := n.Inter(0, "A", "B", 1e6)
	if intra >= inter {
		t.Fatalf("intra %v should beat inter %v", intra, inter)
	}
	// intra: 0.0001 + 1e6/10e6 = 0.1001
	if math.Abs(float64(intra)-0.1001) > 1e-9 {
		t.Errorf("intra = %v, want 0.1001", intra)
	}
	// inter: both access links reserved in parallel; delivery at the
	// slower one (1s + 2ms latency)
	if math.Abs(float64(inter)-1.002) > 1e-9 {
		t.Errorf("inter = %v, want 1.002", inter)
	}
}

func TestNetThrottledUplinkDelaysEverything(t *testing.T) {
	n := New(testTopology())
	n.Uplink("B").SetBandwidth(1e3) // ~paper's 100KB/s scenario, scaled
	d := n.Inter(0, "A", "B", 1e5)
	// A side: 0.1s; B side: 100s. Total > 100.
	if d < 100 {
		t.Fatalf("throttled inter delivery %v, want > 100s", d)
	}
	// Traffic not involving B is unaffected.
	if d := n.Inter(0, "A", "A", 10); d > 1 {
		// (degenerate same-cluster inter call still works)
		t.Fatalf("same-cluster inter = %v", d)
	}
}

func TestNetLatencies(t *testing.T) {
	n := New(testTopology())
	if l := n.Latency("A", "A"); l != 0.0001 {
		t.Errorf("intra latency = %v", l)
	}
	if l := n.Latency("A", "B"); l != 0.004 {
		t.Errorf("inter latency = %v, want 0.004", l)
	}
	if l := n.LANLatency("missing"); l != 0 {
		t.Errorf("missing cluster LAN latency = %v", l)
	}
	if l := n.WANLatency("A", "B"); l != 0.004 {
		t.Errorf("WAN latency = %v", l)
	}
}

func TestNetUnknownClustersAreNoops(t *testing.T) {
	n := New(testTopology())
	if d := n.Intra(7, "missing", 1e6); d != 7 {
		t.Errorf("Intra on missing cluster = %v, want now", d)
	}
	if d := n.Inter(7, "missing", "B", 1e6); d != 7 {
		t.Errorf("Inter on missing cluster = %v, want now", d)
	}
}

func TestTopoDAS2(t *testing.T) {
	d := topo.DAS2()
	if err := d.Validate(); err != nil {
		t.Fatalf("DAS2 invalid: %v", err)
	}
	if got := d.TotalNodes(); got != 72+4*32 {
		t.Errorf("TotalNodes = %d, want 200", got)
	}
	c, ok := d.Cluster("fs0")
	if !ok || c.Nodes != 72 {
		t.Errorf("fs0 = %+v ok=%v", c, ok)
	}
	if _, ok := d.Cluster("nope"); ok {
		t.Error("unknown cluster found")
	}
	if name := topo.NodeName("fs1", 3); name != "fs1/03" {
		t.Errorf("NodeName = %q", name)
	}
}

func TestTopoValidate(t *testing.T) {
	bad := []topo.Topology{
		{},
		{Clusters: []topo.Cluster{{ID: "", Nodes: 1, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1}}},
		{Clusters: []topo.Cluster{{ID: "a", Nodes: -1, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1}}},
		{Clusters: []topo.Cluster{{ID: "a", Nodes: 1, Speed: 0, LANBandwidth: 1, UplinkBandwidth: 1}}},
		{Clusters: []topo.Cluster{{ID: "a", Nodes: 1, Speed: 1, LANBandwidth: 0, UplinkBandwidth: 1}}},
		{Clusters: []topo.Cluster{
			{ID: "a", Nodes: 1, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1},
			{ID: "a", Nodes: 1, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1},
		}},
		{Clusters: []topo.Cluster{{ID: "a", Nodes: 1, Speed: 1, LANLatency: -1, LANBandwidth: 1, UplinkBandwidth: 1}}},
	}
	for i, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("case %d: invalid topology accepted", i)
		}
	}
}
