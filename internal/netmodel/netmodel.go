// Package netmodel models the grid's network for the discrete-event
// simulator: per-cluster LANs (latency + bandwidth, uncontended thanks
// to switched Fast Ethernet) and per-cluster uplinks to the WAN
// backbone, modelled as FIFO pipes through which all of a cluster's
// inter-site traffic serialises. Uplink bandwidth can be changed
// mid-simulation, which is how the experiments reproduce the paper's
// traffic-shaping scenario (an uplink throttled to ~100 KB/s).
package netmodel

import (
	"fmt"

	"repro/internal/topo"
	"repro/internal/vtime"
)

// Pipe is a FIFO link: transfers queue behind each other and each takes
// size/bandwidth seconds of link time, plus the link's one-way latency
// added once per traversal.
type Pipe struct {
	bandwidth float64    // bytes/s
	latency   float64    // seconds, one-way
	free      vtime.Time // when the link next becomes free

	// accounting for bandwidth estimation (the coordinator learns the
	// application's minimum bandwidth requirement from these)
	bytes    float64
	busyTime float64
}

// NewPipe returns a pipe with the given capacity and one-way latency.
func NewPipe(bandwidth, latency float64) *Pipe {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netmodel: non-positive bandwidth %v", bandwidth))
	}
	return &Pipe{bandwidth: bandwidth, latency: latency}
}

// SetBandwidth changes the link capacity from now on; queued transfers
// keep their completion times (the change models slow background-
// traffic shifts, not per-packet fairness). The observation counters
// reset: a shaped link is a new regime, and bandwidth estimates mixing
// the old capacity would inflate any requirement learned from them.
func (p *Pipe) SetBandwidth(bw float64) {
	if bw <= 0 {
		panic(fmt.Sprintf("netmodel: non-positive bandwidth %v", bw))
	}
	p.bandwidth = bw
	p.bytes = 0
	p.busyTime = 0
}

// Bandwidth returns the current capacity in bytes/s.
func (p *Pipe) Bandwidth() float64 { return p.bandwidth }

// Latency returns the one-way latency in seconds.
func (p *Pipe) Latency() float64 { return p.latency }

// Transfer enqueues size bytes starting no earlier than now and returns
// the virtual time at which the last byte emerges from the link
// (including latency). The pipe stays busy until that time minus the
// latency, so subsequent transfers queue.
func (p *Pipe) Transfer(now vtime.Time, size float64) vtime.Time {
	if size < 0 {
		panic(fmt.Sprintf("netmodel: negative transfer size %v", size))
	}
	start := now
	if p.free > start {
		start = p.free
	}
	dur := size / p.bandwidth
	p.free = start + vtime.Time(dur)
	p.bytes += size
	p.busyTime += dur
	return p.free + vtime.Time(p.latency)
}

// QueueDelay returns how long a transfer issued now would wait before
// its first byte enters the link.
func (p *Pipe) QueueDelay(now vtime.Time) float64 {
	if p.free <= now {
		return 0
	}
	return float64(p.free - now)
}

// ObservedBandwidth is total bytes moved divided by link busy time — a
// coarse achieved-throughput estimate (equals capacity while loaded).
func (p *Pipe) ObservedBandwidth() float64 {
	if p.busyTime == 0 {
		return 0
	}
	return p.bytes / p.busyTime
}

// Net models the whole grid network for one topology.
type Net struct {
	lans    map[topo.ClusterID]*Pipe // per-cluster LAN fabric
	uplinks map[topo.ClusterID]*Pipe // per-cluster access link
	wanLat  map[topo.ClusterID]float64
}

// New builds the network for a topology.
func New(t topo.Topology) *Net {
	n := &Net{
		lans:    make(map[topo.ClusterID]*Pipe, len(t.Clusters)),
		uplinks: make(map[topo.ClusterID]*Pipe, len(t.Clusters)),
		wanLat:  make(map[topo.ClusterID]float64, len(t.Clusters)),
	}
	for _, c := range t.Clusters {
		// The LAN is switched: per-transfer bandwidth without queueing
		// against other nodes' transfers, modelled as an infinitely wide
		// pipe by computing duration inline in Intra below. We still keep
		// a Pipe for latency/bandwidth bookkeeping.
		n.lans[c.ID] = NewPipe(c.LANBandwidth, c.LANLatency)
		n.uplinks[c.ID] = NewPipe(c.UplinkBandwidth, c.WANLatency)
		n.wanLat[c.ID] = c.WANLatency
	}
	return n
}

// Uplink exposes a cluster's access link (for shaping in scenarios).
func (n *Net) Uplink(c topo.ClusterID) *Pipe { return n.uplinks[c] }

// LANLatency returns a cluster's one-way LAN latency.
func (n *Net) LANLatency(c topo.ClusterID) float64 {
	if p, ok := n.lans[c]; ok {
		return p.Latency()
	}
	return 0
}

// WANLatency returns the one-way site-to-site latency between two
// clusters (sum of both access latencies).
func (n *Net) WANLatency(from, to topo.ClusterID) float64 {
	return n.wanLat[from] + n.wanLat[to]
}

// Intra returns the delivery time of an intra-cluster message of size
// bytes sent at now within cluster c. Switched LAN: latency plus
// serialisation at LAN bandwidth, no cross-node contention.
func (n *Net) Intra(now vtime.Time, c topo.ClusterID, size float64) vtime.Time {
	p := n.lans[c]
	if p == nil {
		return now
	}
	return now + vtime.Time(p.Latency()+size/p.Bandwidth())
}

// Inter returns the delivery time of an inter-cluster message of size
// bytes from cluster a to cluster b sent at now. The payload must
// serialise through a's access link and through b's (the backbone
// itself is never the bottleneck); delivery is bounded by the slower
// of the two. Both reservations start at now: reserving the
// destination pipe only from the moment the payload clears the jammed
// source pipe would block unrelated traffic behind a future
// reservation, which a real link does not do.
func (n *Net) Inter(now vtime.Time, from, to topo.ClusterID, size float64) vtime.Time {
	up, down := n.uplinks[from], n.uplinks[to]
	if up == nil || down == nil {
		return now
	}
	d1 := up.Transfer(now, size)
	d2 := down.Transfer(now, size)
	if d2 > d1 {
		return d2
	}
	return d1
}

// Latency returns the one-way message latency between two clusters
// (LAN latency if equal, WAN otherwise) — used for small control
// messages such as steal requests, which don't consume link bandwidth.
func (n *Net) Latency(from, to topo.ClusterID) float64 {
	if from == to {
		return n.LANLatency(from)
	}
	return n.WANLatency(from, to)
}
