// The submit/status/cancel/result protocol of the multi-job service,
// riding the typed wire layer like every other protocol in the
// repository: each message type is Registered once, requests carry a
// client-chosen Token and replies echo it, so one control connection
// can have any number of requests in flight.
package job

import (
	"time"

	"repro/internal/transport/wire"
	"repro/internal/workload"
)

func init() {
	wire.Register[SubmitRequest]("job-submit")
	wire.Register[SubmitReply]("job-submit-reply")
	wire.Register[StatusRequest]("job-status")
	wire.Register[StatusReply]("job-status-reply")
	wire.Register[CancelRequest]("job-cancel")
	wire.Register[CancelReply]("job-cancel-reply")
	wire.Register[ResultRequest]("job-result")
	wire.Register[ResultReply]("job-result-reply")
	wire.Register[PingRequest]("job-ping")
	wire.Register[PingReply]("job-pong")
}

// PingRequest probes the control route. Dial retries it until the
// first PingReply arrives: over the TCP hub, frames sent before the
// peer has registered are dropped, so the handshake is what upgrades
// the best-effort link to a usable request channel.
type PingRequest struct{ Token uint64 }

// PingReply answers a PingRequest.
type PingReply struct{ Token uint64 }

// Spec describes one job: which application at which size, how often,
// and how it participates in the shared pool. Tasks are built
// server-side from App/Size (satin.Task is code, not data — it never
// crosses the wire).
type Spec struct {
	// App names a registered application: fib | nqueens | integrate |
	// tsp | knapsack | barneshut.
	App string
	// Size is the problem size (fib N, queens N, tsp cities, bodies).
	Size int
	// Iters repeats the computation (default 1) — the paper's iterative
	// applications.
	Iters int
	// MinNodes is the provisioning target before the run starts
	// (default 1). It is a target, not a barrier: after
	// ProvisionPatience the job starts with whatever it holds (at least
	// the master), and adaptation grows it from there.
	MinNodes int
	// MaxNodes caps the job's total allocation (0 = no cap).
	MaxNodes int
	// Weight scales the job's fair share of the pool (default 1).
	Weight float64
	// Adapt runs the adaptation coordinator next to the job.
	Adapt bool
	// Period overrides the manager's monitoring period for this job.
	Period time.Duration
	// Shape throttles cluster WAN links (cluster → bytes/s) before the
	// run starts; Load puts a competing CPU load on a cluster's nodes.
	Shape map[string]float64
	Load  map[string]float64
	// Class selects the workload class: "batch" (default — iterative
	// divide-and-conquer built from App/Size, adaptation keeps the WAE
	// band) or "stream" (an open-loop pipeline described by Stream,
	// adaptation keeps the latency SLO; App/Size/Iters are ignored).
	Class string
	// Stream is the pipeline description for Class == "stream" — the
	// same spec the simulator's virtual-time model runs, so one
	// experiment moves between satind and gridsim without translation.
	Stream *workload.StreamSpec
}

// SubmitRequest asks the service to enqueue a job.
type SubmitRequest struct {
	Token uint64
	Spec  Spec
}

// SubmitReply carries the assigned job ID, or a validation error.
type SubmitReply struct {
	Token uint64
	ID    string
	Err   string
}

// StatusRequest asks for one job's status (ID set) or all jobs'.
type StatusRequest struct {
	Token uint64
	ID    string
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID      string
	App     string
	Class   string // "" = batch
	Size    int
	Iters   int
	State   string
	Nodes   int     // live nodes the job holds right now
	Done    int     // iterations completed
	Seconds float64 // busy seconds so far (running) or total (finished)
	Err     string
}

// StatusReply answers a StatusRequest.
type StatusReply struct {
	Token uint64
	Jobs  []JobStatus
	Err   string
}

// CancelRequest asks the service to cancel a queued or running job.
type CancelRequest struct {
	Token uint64
	ID    string
}

// CancelReply acknowledges a cancel.
type CancelReply struct {
	Token uint64
	Err   string
}

// ResultRequest fetches a job's result; Wait blocks the reply until
// the job reaches a terminal state.
type ResultRequest struct {
	Token uint64
	ID    string
	Wait  bool
}

// ResultReply carries the formatted result of a finished job.
type ResultReply struct {
	Token      uint64
	ID         string
	State      string
	Result     string    // formatted final value
	Check      string    // "", "ok", or "WRONG RESULT: ..."
	Iterations []float64 // seconds per iteration
	Learned    string    // coordinator requirements, when adaptive
	Err        string
}
