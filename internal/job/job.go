// Package job is the multi-job layer of the runtime: a Job wraps one
// satin grid plus its optional adaptation coordinator behind an ID and
// a lifecycle, and a Manager runs many of them concurrently over one
// shared node pool. cmd/satinrun is a thin client of this layer (one
// job, wait, exit); cmd/satind serves it long-lived over the wire
// protocol in proto.go.
package job

import (
	"fmt"
	"sync"
	"time"

	"repro/adapt"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/satin"
)

// State is a job's lifecycle position. Transitions only move forward:
// Queued → Provisioning → Running → one of the terminal states; a
// cancel can strike at any non-terminal point.
type State int

const (
	// Queued: accepted, waiting for an execution slot.
	Queued State = iota
	// Provisioning: bidding for nodes in the shared pool.
	Provisioning
	// Running: the master is executing iterations.
	Running
	// Done: all iterations completed.
	Done
	// Failed: the runtime reported an error.
	Failed
	// Cancelled: stopped on request; its nodes went back to the pool.
	Cancelled
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Provisioning:
		return "provisioning"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Result is what a finished job leaves behind.
type Result struct {
	// Value is the final iteration's raw result (nil unless Done).
	Value any
	// Formatted is Value rendered for the wire (summarised if large).
	Formatted string
	// Check is "" (no checker), "ok", or "WRONG RESULT: ...".
	Check string
	// Iterations holds each completed iteration's wall time in seconds.
	Iterations []float64
	// Learned is the coordinator's requirements string, when adaptive.
	Learned string
	// History and Annotations are the coordinator's period log and
	// adaptation timeline (in-process callers only — too big for the
	// wire, where Learned summarises them).
	History     []adapt.PeriodRecord
	Annotations []adapt.Annotation
	// NodeReports snapshots each node's final statistics, taken just
	// before the job's deployment is torn down.
	NodeReports []metrics.Report
	// Stream figures (streaming jobs only): items that completed the
	// pipeline and the end-to-end latency's mean and maximum in seconds.
	StreamCompleted   int
	StreamMeanLatency float64
	StreamMaxLatency  float64
	// Err is the failure or cancellation reason.
	Err string
}

// Hooks are optional in-process callbacks for a job's run — what a
// thin interactive client (satinrun) uses for live output. They are
// never serialised; wire submissions have none.
type Hooks struct {
	// OnIteration fires after each completed iteration with its wall
	// time and the job's current node count.
	OnIteration func(i int, seconds float64, nodes int)
}

// Job is one submitted computation. All exported methods are safe for
// concurrent use; the Manager drives the lifecycle.
type Job struct {
	ID    string
	Spec  Spec
	hooks Hooks

	mu       sync.Mutex
	state    State
	result   Result
	grid     *satin.Grid // set while the job owns a deployment
	started  time.Time   // first entered Running
	finished time.Time
	cancelCh chan struct{}
	caOnce   sync.Once
	done     chan struct{}

	onState func(j *Job, from, to State) // manager's transition hook

	obsNodes *obs.Gauge
	obsIters *obs.Counter
}

func newJob(id string, spec Spec, hooks Hooks, onState func(*Job, State, State)) *Job {
	return &Job{
		ID:       id,
		Spec:     spec,
		hooks:    hooks,
		state:    Queued,
		cancelCh: make(chan struct{}),
		done:     make(chan struct{}),
		onState:  onState,
		// Per-job observability: the obs registry is flat, so the job ID
		// becomes a name segment — /metrics then exposes one counter and
		// gauge series per job.
		obsNodes: obs.Default.Gauge("job/" + id + "/nodes"),
		obsIters: obs.Default.Counter("job/" + id + "/iterations"),
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the (possibly partial) result snapshot.
func (j *Job) Result() Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.result
	r.Iterations = append([]float64(nil), j.result.Iterations...)
	return r
}

// Cancel asks the job to stop. Safe to call at any point and more than
// once: a queued job just flips to Cancelled; a provisioning or
// running one has its grid closed, which kills its nodes — each kill
// releases the node back to the shared pool, so a queued job can claim
// the freed capacity immediately.
func (j *Job) Cancel() {
	j.caOnce.Do(func() { close(j.cancelCh) })
	j.mu.Lock()
	g := j.grid
	j.mu.Unlock()
	if g != nil {
		g.Close()
	}
	obs.Default.Counter("job/cancelled").Inc()
}

func (j *Job) cancelled() bool {
	select {
	case <-j.cancelCh:
		return true
	default:
		return false
	}
}

// attachGrid hands the job its deployment; Cancel closes it.
func (j *Job) attachGrid(g *satin.Grid) {
	j.mu.Lock()
	j.grid = g
	cancelled := j.cancelled()
	j.mu.Unlock()
	if cancelled {
		g.Close()
	}
}

// setState performs a lifecycle transition. Terminal states are
// sticky; an attempt to move past one is ignored (e.g. the run loop
// reporting Done after a racing Cancel already finished the job).
func (j *Job) setState(to State) {
	j.mu.Lock()
	from := j.state
	if from.Terminal() || from == to {
		j.mu.Unlock()
		return
	}
	j.state = to
	if to == Running && j.started.IsZero() {
		j.started = time.Now()
	}
	if to.Terminal() {
		j.finished = time.Now()
		j.grid = nil
		close(j.done)
	}
	j.mu.Unlock()
	obs.Default.Counter("job/state/" + to.String()).Inc()
	if j.onState != nil {
		j.onState(j, from, to)
	}
}

// fail records the error and moves to Failed (or Cancelled, if a
// cancel was the cause).
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.result.Err = err.Error()
	j.mu.Unlock()
	if j.cancelled() {
		j.setState(Cancelled)
		return
	}
	j.setState(Failed)
}

// addIteration records one completed iteration.
func (j *Job) addIteration(seconds float64) {
	j.mu.Lock()
	j.result.Iterations = append(j.result.Iterations, seconds)
	j.mu.Unlock()
	j.obsIters.Inc()
}

// setValue records the final value and its check outcome.
func (j *Job) setValue(v any, check func(any) bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result.Value = v
	j.result.Formatted = formatValue(v)
	if check != nil {
		if check(v) {
			j.result.Check = "ok"
		} else {
			j.result.Check = fmt.Sprintf("WRONG RESULT: %s", formatValue(v))
		}
	}
}

// Status snapshots the job for the wire protocol.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:    j.ID,
		App:   j.Spec.App,
		Class: j.Spec.Class,
		Size:  j.Spec.Size,
		Iters: j.Spec.Iters,
		State: j.state.String(),
		Done:  len(j.result.Iterations),
		Err:   j.result.Err,
	}
	if j.grid != nil {
		st.Nodes = j.grid.NodeCount()
	}
	switch {
	case j.started.IsZero():
		// never ran (cancelled while queued): no time to report
	case !j.finished.IsZero():
		st.Seconds = j.finished.Sub(j.started).Seconds()
	case !j.started.IsZero():
		st.Seconds = time.Since(j.started).Seconds()
	}
	return st
}
