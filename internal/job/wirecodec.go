// Binary codecs for the job-service protocol (ISSUE 7). These frames
// cross the TCP hub between satinctl and satind, so they benefit twice:
// no per-frame gob descriptors on a link that is typically short-lived,
// and adversarial-input-safe decoding on the service's public port.
package job

import (
	"sort"
	"time"

	"repro/internal/wirefmt"
	"repro/internal/workload"
)

// appendF64Map writes a string→float64 map in sorted key order, so a
// given value always encodes to the same bytes. A presence byte keeps
// nil distinguishable from empty, exactly as gob keeps it.
func appendF64Map(b []byte, m map[string]float64) []byte {
	b = wirefmt.AppendBool(b, m != nil)
	if m == nil {
		return b
	}
	b = wirefmt.AppendUvarint(b, uint64(len(m)))
	if len(m) == 0 {
		return b
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = wirefmt.AppendString(b, k)
		b = wirefmt.AppendF64(b, m[k])
	}
	return b
}

func decodeF64Map(r *wirefmt.Reader) map[string]float64 {
	if !r.Bool() {
		return nil
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.Fail("map entry count exceeds frame")
		return nil
	}
	m := make(map[string]float64, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := r.String()
		m[k] = r.F64()
	}
	if r.Err() != nil {
		return nil
	}
	return m
}

// appendStream writes an optional streaming-pipeline spec behind a
// presence byte, stages in declaration order (order is meaning: the
// pipeline runs front to back).
func appendStream(b []byte, sp *workload.StreamSpec) []byte {
	b = wirefmt.AppendBool(b, sp != nil)
	if sp == nil {
		return b
	}
	b = wirefmt.AppendString(b, sp.Name)
	b = wirefmt.AppendUvarint(b, uint64(len(sp.Stages)))
	for _, st := range sp.Stages {
		b = wirefmt.AppendString(b, st.Name)
		b = wirefmt.AppendF64(b, st.WorkPerItem)
		b = wirefmt.AppendF64(b, st.BytesPerItem)
	}
	b = wirefmt.AppendF64(b, sp.RateHz)
	b = wirefmt.AppendVarint(b, int64(sp.Items))
	return wirefmt.AppendF64(b, sp.TargetLatency)
}

func decodeStream(r *wirefmt.Reader) *workload.StreamSpec {
	if !r.Bool() {
		return nil
	}
	sp := &workload.StreamSpec{}
	sp.Name = r.String()
	n := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.Fail("stage count exceeds frame")
		return nil
	}
	if n > 0 {
		sp.Stages = make([]workload.StreamStage, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			sp.Stages[i].Name = r.String()
			sp.Stages[i].WorkPerItem = r.F64()
			sp.Stages[i].BytesPerItem = r.F64()
		}
	}
	sp.RateHz = r.F64()
	sp.Items = int(r.Varint())
	sp.TargetLatency = r.F64()
	if r.Err() != nil {
		return nil
	}
	return sp
}

func appendSpec(b []byte, s *Spec) []byte {
	b = wirefmt.AppendString(b, s.App)
	b = wirefmt.AppendVarint(b, int64(s.Size))
	b = wirefmt.AppendVarint(b, int64(s.Iters))
	b = wirefmt.AppendVarint(b, int64(s.MinNodes))
	b = wirefmt.AppendVarint(b, int64(s.MaxNodes))
	b = wirefmt.AppendF64(b, s.Weight)
	b = wirefmt.AppendBool(b, s.Adapt)
	b = wirefmt.AppendVarint(b, int64(s.Period))
	b = appendF64Map(b, s.Shape)
	b = appendF64Map(b, s.Load)
	b = wirefmt.AppendString(b, s.Class)
	return appendStream(b, s.Stream)
}

func decodeSpec(r *wirefmt.Reader, s *Spec) {
	s.App = r.String()
	s.Size = int(r.Varint())
	s.Iters = int(r.Varint())
	s.MinNodes = int(r.Varint())
	s.MaxNodes = int(r.Varint())
	s.Weight = r.F64()
	s.Adapt = r.Bool()
	s.Period = time.Duration(r.Varint())
	s.Shape = decodeF64Map(r)
	s.Load = decodeF64Map(r)
	s.Class = r.String()
	s.Stream = decodeStream(r)
}

func appendStatus(b []byte, st *JobStatus) []byte {
	b = wirefmt.AppendString(b, st.ID)
	b = wirefmt.AppendString(b, st.App)
	b = wirefmt.AppendString(b, st.Class)
	b = wirefmt.AppendVarint(b, int64(st.Size))
	b = wirefmt.AppendVarint(b, int64(st.Iters))
	b = wirefmt.AppendString(b, st.State)
	b = wirefmt.AppendVarint(b, int64(st.Nodes))
	b = wirefmt.AppendVarint(b, int64(st.Done))
	b = wirefmt.AppendF64(b, st.Seconds)
	return wirefmt.AppendString(b, st.Err)
}

func decodeStatus(r *wirefmt.Reader, st *JobStatus) {
	st.ID = r.String()
	st.App = r.String()
	st.Class = r.String()
	st.Size = int(r.Varint())
	st.Iters = int(r.Varint())
	st.State = r.String()
	st.Nodes = int(r.Varint())
	st.Done = int(r.Varint())
	st.Seconds = r.F64()
	st.Err = r.String()
}

// AppendWire implements wirefmt.Frame.
func (m *PingRequest) AppendWire(b []byte) ([]byte, error) {
	return wirefmt.AppendUvarint(b, m.Token), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *PingRequest) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *PingReply) AppendWire(b []byte) ([]byte, error) {
	return wirefmt.AppendUvarint(b, m.Token), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *PingReply) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *SubmitRequest) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	return appendSpec(b, &m.Spec), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *SubmitRequest) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	decodeSpec(r, &m.Spec)
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *SubmitReply) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	b = wirefmt.AppendString(b, m.ID)
	return wirefmt.AppendString(b, m.Err), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *SubmitReply) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	m.ID = r.String()
	m.Err = r.String()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *StatusRequest) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	return wirefmt.AppendString(b, m.ID), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *StatusRequest) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	m.ID = r.String()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *StatusReply) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	b = wirefmt.AppendUvarint(b, uint64(len(m.Jobs)))
	for i := range m.Jobs {
		b = appendStatus(b, &m.Jobs[i])
	}
	return wirefmt.AppendString(b, m.Err), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *StatusReply) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		r.Fail("job count exceeds frame")
		return r.Err()
	}
	if n > 0 {
		m.Jobs = make([]JobStatus, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			decodeStatus(r, &m.Jobs[i])
		}
	}
	m.Err = r.String()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *CancelRequest) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	return wirefmt.AppendString(b, m.ID), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *CancelRequest) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	m.ID = r.String()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *CancelReply) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	return wirefmt.AppendString(b, m.Err), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *CancelReply) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	m.Err = r.String()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *ResultRequest) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	b = wirefmt.AppendString(b, m.ID)
	return wirefmt.AppendBool(b, m.Wait), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *ResultRequest) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	m.ID = r.String()
	m.Wait = r.Bool()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (m *ResultReply) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Token)
	b = wirefmt.AppendString(b, m.ID)
	b = wirefmt.AppendString(b, m.State)
	b = wirefmt.AppendString(b, m.Result)
	b = wirefmt.AppendString(b, m.Check)
	b = wirefmt.AppendUvarint(b, uint64(len(m.Iterations)))
	for _, v := range m.Iterations {
		b = wirefmt.AppendF64(b, v)
	}
	b = wirefmt.AppendString(b, m.Learned)
	return wirefmt.AppendString(b, m.Err), nil
}

// DecodeWire implements wirefmt.Frame.
func (m *ResultReply) DecodeWire(r *wirefmt.Reader) error {
	m.Token = r.Uvarint()
	m.ID = r.String()
	m.State = r.String()
	m.Result = r.String()
	m.Check = r.String()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining())/8 {
		r.Fail("iteration count exceeds frame")
		return r.Err()
	}
	if n > 0 {
		m.Iterations = make([]float64, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			m.Iterations[i] = r.F64()
		}
	}
	m.Learned = r.String()
	m.Err = r.String()
	return r.Err()
}
