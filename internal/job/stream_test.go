package job

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// fastPipeline is a test-sized stream: two 2ms stages, 100 items at
// 50/s — about two seconds of emission, comfortably parallelizable.
func fastPipeline(items int) workload.StreamSpec {
	return workload.StreamSpec{
		Name: "test-pipeline",
		Stages: []workload.StreamStage{
			{Name: "decode", WorkPerItem: 0.002},
			{Name: "encode", WorkPerItem: 0.002},
		},
		RateHz:        50,
		Items:         items,
		TargetLatency: 2,
	}
}

// TestStreamSubmitValidation: the class switch is strict — malformed
// combinations are rejected at the door.
func TestStreamSubmitValidation(t *testing.T) {
	m := testManager(t, 1, 2, nil)
	p3 := fastPipeline(100)
	bad := p3
	bad.RateHz = 0
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"unknown class", Spec{Class: "interactive", App: "fib", Size: 10}},
		{"stream without spec", Spec{Class: "stream"}},
		{"batch with stream spec", Spec{App: "fib", Size: 10, Stream: &p3}},
		{"invalid stream spec", Spec{Class: "stream", Stream: &bad}},
	} {
		if _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
	if _, err := m.Submit(Spec{Class: "stream", Stream: &p3}); err != nil {
		t.Errorf("valid stream spec rejected: %v", err)
	}
}

// TestBatchAndStreamShareOnePool is ISSUE 9's acceptance scenario for
// the service: one batch job and one streaming job run concurrently
// over the same shared pool, each to a verified result.
func TestBatchAndStreamShareOnePool(t *testing.T) {
	m := testManager(t, 2, 2, nil) // capacity 4
	batch, err := m.Submit(Spec{App: "fib", Size: 12, Iters: 2, MinNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	p3 := fastPipeline(100)
	stream, err := m.Submit(Spec{Class: "stream", Stream: &p3, MinNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both must be active at once — side by side, not serialized.
	deadline := time.Now().Add(5 * time.Second)
	for {
		active := 0
		for _, j := range []*Job{batch, stream} {
			if s := j.State(); s == Running || s == Provisioning {
				active++
			}
		}
		if active == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not concurrent: batch %s, stream %s", batch.State(), stream.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitTerminal(t, batch, 30*time.Second)
	waitTerminal(t, stream, 30*time.Second)
	if batch.State() != Done || batch.Result().Check != "ok" {
		t.Fatalf("batch: state %s, check %q, err %q",
			batch.State(), batch.Result().Check, batch.Result().Err)
	}
	r := stream.Result()
	if stream.State() != Done || r.Check != "ok" {
		t.Fatalf("stream: state %s, check %q, err %q", stream.State(), r.Check, r.Err)
	}
	if r.StreamCompleted != 100 {
		t.Fatalf("stream completed %d of 100 items", r.StreamCompleted)
	}
	if r.StreamMeanLatency <= 0 || r.StreamMaxLatency < r.StreamMeanLatency {
		t.Fatalf("implausible latency figures: mean %.3fs max %.3fs",
			r.StreamMeanLatency, r.StreamMaxLatency)
	}
	if len(r.Iterations) == 0 {
		t.Fatal("stream job recorded no windows")
	}
}

// TestStreamJobAdapts: a streaming job submitted with Adapt runs its
// own latency-SLO coordinator (not the batch WAE band) and finishes
// with a period history.
func TestStreamJobAdapts(t *testing.T) {
	m := testManager(t, 2, 2, nil)
	p3 := fastPipeline(150)
	j, err := m.Submit(Spec{Class: "stream", Stream: &p3, MinNodes: 1, Adapt: true})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j, 60*time.Second)
	r := j.Result()
	if j.State() != Done || r.Check != "ok" {
		t.Fatalf("state %s, check %q, err %q", j.State(), r.Check, r.Err)
	}
	if r.StreamCompleted != 150 {
		t.Fatalf("completed %d of 150 items", r.StreamCompleted)
	}
	if len(r.History) == 0 {
		t.Fatal("adaptive stream job recorded no coordinator periods")
	}
	if r.Learned == "" {
		t.Fatal("adaptive stream job recorded no learned requirements")
	}
}

// TestParseStages covers the stage-spec flag grammar both CLIs share.
func TestParseStages(t *testing.T) {
	stages, err := ParseStages("decode=0.3/262144,transform=0.9,encode=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 || stages[0].Name != "decode" ||
		stages[0].BytesPerItem != 262144 || stages[1].WorkPerItem != 0.9 {
		t.Fatalf("parsed %+v", stages)
	}
	for _, bad := range []string{
		"", "decode", "=0.3", "decode=zero", "decode=0", "decode=-1",
		"decode=0.3/x", "decode=0.3/-5", "decode=0.3,,encode=0.3",
	} {
		if _, err := ParseStages(bad); err == nil {
			t.Errorf("%q: accepted, want error", bad)
		}
	}
}
