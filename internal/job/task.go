package job

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/workload"
	"repro/satin"
)

// BuildTask turns an application name and problem size into a root
// task plus an optional correctness check. It is the single place the
// service and satinrun map the -app flag onto internal/apps, so submit
// validation and execution can never disagree on what is runnable.
func BuildTask(app string, size int) (satin.Task, func(any) bool, error) {
	if size < 1 {
		return nil, nil, fmt.Errorf("size must be >= 1, got %d", size)
	}
	switch app {
	case "fib":
		want := apps.FibLeaves(size)
		return apps.Fib{N: size, SeqCutoff: 12, LeafDelay: 3 * time.Millisecond},
			func(v any) bool { return v.(int) == want }, nil
	case "nqueens":
		want := apps.QueensSolutions(size)
		return apps.NQueens{N: size, SpawnDepth: 3},
			func(v any) bool { return want < 0 || v.(int) == want }, nil
	case "integrate":
		return apps.Integrate{Fn: "spiky", A: -3, B: 3, Eps: 1e-10}, nil, nil
	case "tsp":
		return apps.NewTSP(apps.RandomCities(size, 42), 3), nil, nil
	case "knapsack":
		k := apps.RandomKnapsack(size, 42)
		want := apps.KnapsackDP(k.Weights, k.Values, k.Capacity)
		return k, func(v any) bool { return v.(int) == want }, nil
	case "barneshut":
		bodies := apps.Plummer(size, 42)
		return apps.BHForces{Bodies: bodies, Lo: 0, Hi: len(bodies), Theta: 0.5, Grain: 128},
			func(v any) bool { return len(v.([]apps.Accel)) == len(bodies) }, nil
	default:
		return nil, nil, fmt.Errorf("unknown app %q (fib | nqueens | integrate | tsp | knapsack | barneshut)", app)
	}
}

// ParseKV parses a "cluster=value" disturbance spec (-shape fs1=5000,
// -load fs1=3) and validates the cluster against the deployment:
// unknown cluster names, non-numeric and non-positive values are
// errors, never silently ignored.
func ParseKV(spec string, clusters []satin.ClusterSpec) (satin.ClusterID, float64, error) {
	name, val, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("expected cluster=value, got %q", spec)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", spec, err)
	}
	if v <= 0 {
		return "", 0, fmt.Errorf("value in %q must be > 0", spec)
	}
	for _, c := range clusters {
		if string(c.Name) == name {
			return c.Name, v, nil
		}
	}
	return "", 0, fmt.Errorf("unknown cluster %q in %q (have %s)", name, spec, clusterNames(clusters))
}

// ParseStages parses a "-stages" pipeline spec: comma-separated
// name=work entries, work in seconds per item on an unloaded node,
// optionally name=work/bytes with a per-item payload shipped into the
// stage. It is the single mapping of the flag onto workload.StreamStage
// for both satinrun and the satind client, so their validation can
// never disagree.
func ParseStages(spec string) ([]workload.StreamStage, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty stage spec")
	}
	var out []workload.StreamStage
	for _, part := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("expected name=work in %q", part)
		}
		workStr, bytesStr, hasBytes := strings.Cut(rest, "/")
		w, err := strconv.ParseFloat(workStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad work in %q: %v", part, err)
		}
		if w <= 0 {
			return nil, fmt.Errorf("work in %q must be > 0", part)
		}
		st := workload.StreamStage{Name: name, WorkPerItem: w}
		if hasBytes {
			bv, err := strconv.ParseFloat(bytesStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad bytes in %q: %v", part, err)
			}
			if bv < 0 {
				return nil, fmt.Errorf("bytes in %q must be >= 0", part)
			}
			st.BytesPerItem = bv
		}
		out = append(out, st)
	}
	return out, nil
}

func clusterNames(clusters []satin.ClusterSpec) string {
	names := make([]string, len(clusters))
	for i, c := range clusters {
		names[i] = string(c.Name)
	}
	return strings.Join(names, ", ")
}

// formatValue renders a job's final value for the result protocol.
// Aggregate results (e.g. barneshut's acceleration slice) are
// summarised, not dumped.
func formatValue(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case []apps.Accel:
		return fmt.Sprintf("[%d accelerations]", len(t))
	}
	s := fmt.Sprintf("%v", v)
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
