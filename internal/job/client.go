package job

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Ctl is a control client of the service: it dials the fabric the
// daemon serves on (in-process in tests, the TCP hub in satind's
// client mode) and speaks the submit/status/cancel/result protocol.
// Replies are matched to requests by token, so one Ctl is safe for
// concurrent use.
type Ctl struct {
	wc *wire.Conn

	mu      sync.Mutex
	nextTok uint64
	waiters map[uint64]chan any
}

// Dial attaches a control client to the fabric under the given unique
// endpoint name (e.g. "satinctl-<pid>").
func Dial(f transport.Fabric, name string) (*Ctl, error) {
	ep, err := f.Endpoint(name)
	if err != nil {
		return nil, err
	}
	c := &Ctl{wc: wire.New(ep), waiters: make(map[uint64]chan any)}
	wire.Handle(c.wc, func(r SubmitReply, _ wire.Meta) { c.deliver(r.Token, r) })
	wire.Handle(c.wc, func(r StatusReply, _ wire.Meta) { c.deliver(r.Token, r) })
	wire.Handle(c.wc, func(r CancelReply, _ wire.Meta) { c.deliver(r.Token, r) })
	wire.Handle(c.wc, func(r ResultReply, _ wire.Meta) { c.deliver(r.Token, r) })
	wire.Handle(c.wc, func(r PingReply, _ wire.Meta) { c.deliver(r.Token, r) })
	if err := c.handshake(5 * time.Second); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// handshake pings until the daemon answers: the hub drops frames to
// names it has not seen register yet, so the first round-trip is what
// proves both directions route.
func (c *Ctl) handshake(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		left := time.Until(deadline)
		if left <= 0 {
			return fmt.Errorf("job: no answer from %s (is the daemon running?)", EndpointName)
		}
		probe := 200 * time.Millisecond
		if probe > left {
			probe = left
		}
		_, err := c.call(func(tok uint64) error {
			return wire.Send(c.wc, EndpointName, PingRequest{Token: tok})
		}, probe)
		if err == nil {
			return nil
		}
	}
}

// Close detaches the client.
func (c *Ctl) Close() { c.wc.Close() }

func (c *Ctl) deliver(tok uint64, reply any) {
	c.mu.Lock()
	ch, ok := c.waiters[tok]
	if ok {
		delete(c.waiters, tok)
	}
	c.mu.Unlock()
	if ok {
		ch <- reply // buffered; never blocks the fabric goroutine
	}
}

// call sends a request built from the allocated token and waits for
// its reply.
func (c *Ctl) call(build func(tok uint64) error, timeout time.Duration) (any, error) {
	c.mu.Lock()
	c.nextTok++
	tok := c.nextTok
	ch := make(chan any, 1)
	c.waiters[tok] = ch
	c.mu.Unlock()
	if err := build(tok); err != nil {
		c.mu.Lock()
		delete(c.waiters, tok)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.waiters, tok)
		c.mu.Unlock()
		return nil, fmt.Errorf("job: no reply from %s within %v", EndpointName, timeout)
	}
}

// Submit enqueues a job and returns its assigned ID.
func (c *Ctl) Submit(spec Spec, timeout time.Duration) (string, error) {
	reply, err := c.call(func(tok uint64) error {
		return wire.Send(c.wc, EndpointName, SubmitRequest{Token: tok, Spec: spec})
	}, timeout)
	if err != nil {
		return "", err
	}
	r := reply.(SubmitReply)
	if r.Err != "" {
		return "", fmt.Errorf("submit rejected: %s", r.Err)
	}
	return r.ID, nil
}

// Status fetches one job's status (or all jobs' when id is empty).
func (c *Ctl) Status(id string, timeout time.Duration) ([]JobStatus, error) {
	reply, err := c.call(func(tok uint64) error {
		return wire.Send(c.wc, EndpointName, StatusRequest{Token: tok, ID: id})
	}, timeout)
	if err != nil {
		return nil, err
	}
	r := reply.(StatusReply)
	if r.Err != "" {
		return nil, fmt.Errorf("status: %s", r.Err)
	}
	return r.Jobs, nil
}

// Cancel cancels a job.
func (c *Ctl) Cancel(id string, timeout time.Duration) error {
	reply, err := c.call(func(tok uint64) error {
		return wire.Send(c.wc, EndpointName, CancelRequest{Token: tok, ID: id})
	}, timeout)
	if err != nil {
		return err
	}
	if r := reply.(CancelReply); r.Err != "" {
		return fmt.Errorf("cancel: %s", r.Err)
	}
	return nil
}

// Result fetches a job's result; wait blocks server-side until the
// job finishes (the timeout still bounds the whole call).
func (c *Ctl) Result(id string, wait bool, timeout time.Duration) (ResultReply, error) {
	reply, err := c.call(func(tok uint64) error {
		return wire.Send(c.wc, EndpointName, ResultRequest{Token: tok, ID: id, Wait: wait})
	}, timeout)
	if err != nil {
		return ResultReply{}, err
	}
	r := reply.(ResultReply)
	if r.Err != "" && r.State == "" {
		return r, fmt.Errorf("result: %s", r.Err)
	}
	return r, nil
}
