package job

import (
	"math"
	"testing"
	"time"

	"repro/internal/wirefmt"
	"repro/internal/wirefmt/frametest"
	"repro/internal/workload"
)

// TestWireParity is the ISSUE 7 golden suite for the job-service
// protocol: all ten registered kinds through both codecs over zero
// values, max integers, negative sizes, unicode strings, empty and
// populated maps and slices.
func TestWireParity(t *testing.T) {
	frametest.Parity[PingRequest, *PingRequest](t, []PingRequest{{}, {Token: ^uint64(0)}})
	frametest.Parity[PingReply, *PingReply](t, []PingReply{{}, {Token: 1}})
	frametest.Parity[SubmitRequest, *SubmitRequest](t, []SubmitRequest{
		{},
		{Token: 7, Spec: Spec{App: "fib", Size: 30, Iters: 3, MinNodes: 2, MaxNodes: 8, Weight: 1.5, Adapt: true, Period: 2 * time.Second}},
		{Token: ^uint64(0), Spec: Spec{
			App: "nqueens-ü", Size: math.MaxInt32, Iters: -1,
			Period: -time.Hour,
			Shape:  map[string]float64{"c0": 1e6, "grappe-é": 0.5},
			Load:   map[string]float64{},
		}},
		{Token: 8, Spec: Spec{
			Class: "stream", Adapt: true, MinNodes: 4,
			Stream: &workload.StreamSpec{
				Name: "pipeline-π",
				Stages: []workload.StreamStage{
					{Name: "decode", WorkPerItem: 0.3, BytesPerItem: 256 << 10},
					{Name: "encode", WorkPerItem: math.SmallestNonzeroFloat64},
				},
				RateHz: 4, Items: math.MaxInt32, TargetLatency: 5,
			},
		}},
		{Token: 9, Spec: Spec{
			Class:  "stream",
			Stream: &workload.StreamSpec{}, // invalid, but the codec must not care
		}},
	})
	frametest.Parity[SubmitReply, *SubmitReply](t, []SubmitReply{
		{},
		{Token: 1, ID: "job-0001", Err: "недопустимый spec"},
	})
	frametest.Parity[StatusRequest, *StatusRequest](t, []StatusRequest{{}, {Token: 2, ID: "job-0002"}})
	frametest.Parity[StatusReply, *StatusReply](t, []StatusReply{
		{},
		{Token: 3, Jobs: []JobStatus{}},
		{Token: 4, Jobs: []JobStatus{
			{ID: "job-1", App: "tsp", Size: 12, Iters: 1, State: "running", Nodes: 5, Done: 0, Seconds: 1.5},
			{ID: "job-2", App: "fib", State: "failed", Err: "boom"},
			{ID: "job-3", Class: "stream", State: "running", Nodes: 6, Done: 40},
		}, Err: ""},
	})
	frametest.Parity[CancelRequest, *CancelRequest](t, []CancelRequest{{}, {Token: 5, ID: "job-5"}})
	frametest.Parity[CancelReply, *CancelReply](t, []CancelReply{{}, {Token: 6, Err: "unknown job"}})
	frametest.Parity[ResultRequest, *ResultRequest](t, []ResultRequest{{}, {Token: 7, ID: "job-7", Wait: true}})
	frametest.Parity[ResultReply, *ResultReply](t, []ResultReply{
		{},
		{Token: 8, ID: "job-8", State: "done", Result: "832040", Check: "ok",
			Iterations: []float64{1.25, 2.5, math.Inf(1)}, Learned: "minBW=1e6"},
		{Token: 9, Iterations: []float64{}},
	})
}

func TestWireCorrupt(t *testing.T) {
	enc := func(f wirefmt.Frame) []byte {
		b, err := f.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	frametest.Corrupt[SubmitRequest, *SubmitRequest](t, enc(&SubmitRequest{Token: 1, Spec: Spec{
		App: "fib", Size: 30, Period: time.Second, Shape: map[string]float64{"c0": 1}, Load: map[string]float64{"c1": 2},
	}}))
	stream := workload.Pipeline3(4, 200)
	frametest.Corrupt[SubmitRequest, *SubmitRequest](t, enc(&SubmitRequest{Token: 2, Spec: Spec{
		Class: "stream", Stream: &stream,
	}}))
	frametest.Corrupt[StatusReply, *StatusReply](t, enc(&StatusReply{Token: 2, Jobs: []JobStatus{{ID: "j", App: "a", Seconds: 1}}}))
	frametest.Corrupt[ResultReply, *ResultReply](t, enc(&ResultReply{Token: 3, ID: "j", Iterations: []float64{1, 2}}))
}
