package job

import (
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/satin"
)

// testService stands up a manager, its wire server, and a control
// client on one in-process fabric — the same wiring cmd/satind does
// over TCP.
func testService(t *testing.T) (*Manager, *Ctl) {
	t.Helper()
	m := testManager(t, 1, 2, nil)
	f := transport.NewInProc(nil)
	t.Cleanup(f.Close)
	srv, err := Serve(f, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ctl, err := Dial(f, "satinctl-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Close)
	return m, ctl
}

// TestProtocolRoundTrip drives the full submit → status → result →
// cancel surface over the typed wire layer.
func TestProtocolRoundTrip(t *testing.T) {
	const tmo = 10 * time.Second
	m, ctl := testService(t)

	id, err := ctl.Submit(Spec{App: "fib", Size: 12, Iters: 2}, tmo)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("submit returned empty job ID")
	}
	// Waiting result fetch: blocks server-side until the job finishes.
	res, err := ctl.Result(id, true, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "done" || res.Check != "ok" || len(res.Iterations) != 2 {
		t.Fatalf("result: state %q check %q iters %d", res.State, res.Check, len(res.Iterations))
	}

	// Status of all jobs and of one job agree.
	all, err := ctl.Status("", tmo)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != id || all[0].State != "done" {
		t.Fatalf("status all: %+v", all)
	}
	one, err := ctl.Status(id, tmo)
	if err != nil || len(one) != 1 || one[0].Done != 2 {
		t.Fatalf("status one: %+v err %v", one, err)
	}

	// Validation errors travel back as typed replies, not timeouts.
	if _, err := ctl.Submit(Spec{App: "no-such-app", Size: 5}, tmo); err == nil ||
		!strings.Contains(err.Error(), "unknown app") {
		t.Fatalf("bad submit: %v", err)
	}
	if _, err := ctl.Status("job-999", tmo); err == nil {
		t.Fatal("status of unknown job should error")
	}
	if err := ctl.Cancel("job-999", tmo); err == nil {
		t.Fatal("cancel of unknown job should error")
	}

	// Cancel over the wire: a long job dies and reports cancelled.
	id2, err := ctl.Submit(Spec{App: "fib", Size: 24, Iters: 60, MinNodes: 2}, tmo)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m.Job(id2), Running, tmo)
	if err := ctl.Cancel(id2, tmo); err != nil {
		t.Fatal(err)
	}
	res2, err := ctl.Result(id2, true, tmo)
	if err != nil {
		t.Fatal(err)
	}
	if res2.State != "cancelled" {
		t.Fatalf("after cancel: state %q", res2.State)
	}
}

// TestProtocolOverTCP runs the same control path over real sockets —
// the deployment satind uses.
func TestProtocolOverTCP(t *testing.T) {
	m := testManager(t, 1, 2, nil)
	hub, err := transport.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	srv, err := Serve(transport.NewTCP(hub.Addr()), m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ctl, err := Dial(transport.NewTCP(hub.Addr()), "satinctl-tcp-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Close)
	id, err := ctl.Submit(Spec{App: "nqueens", Size: 7}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Result(id, true, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "done" || res.Check != "ok" {
		t.Fatalf("tcp result: state %q check %q err %q", res.State, res.Check, res.Err)
	}
}

// TestParseKV is the satellite's table test: the -shape/-load parser
// must reject what it used to silently ignore.
func TestParseKV(t *testing.T) {
	clusters := []satin.ClusterSpec{{Name: "fs0", Nodes: 2}, {Name: "fs1", Nodes: 2}}
	for _, tc := range []struct {
		spec    string
		cluster satin.ClusterID
		v       float64
		wantErr string
	}{
		{spec: "fs1=5000", cluster: "fs1", v: 5000},
		{spec: "fs0=0.5", cluster: "fs0", v: 0.5},
		{spec: "fs1", wantErr: "expected cluster=value"},
		{spec: "=5000", wantErr: "expected cluster=value"},
		{spec: "fs1=", wantErr: "bad value"},
		{spec: "fs1=fast", wantErr: "bad value"},
		{spec: "fs1=-3", wantErr: "must be > 0"},
		{spec: "fs1=0", wantErr: "must be > 0"},
		{spec: "fs9=5000", wantErr: "unknown cluster"},
	} {
		cluster, v, err := ParseKV(tc.spec, clusters)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseKV(%q): err %v, want %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil || cluster != tc.cluster || v != tc.v {
			t.Errorf("ParseKV(%q) = %q, %v, %v; want %q, %v", tc.spec, cluster, v, err, tc.cluster, tc.v)
		}
	}
}
