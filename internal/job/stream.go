// The streaming workload class on the real runtime (ISSUE 9): the
// same open-loop pipeline the simulator models in virtual time
// (internal/des), executed as micro-batched windows of
// apps.StreamWindow tasks. An emitter goroutine stamps items at
// Stream.RateHz regardless of how far behind execution is; the driver
// drains whatever has arrived into one window task per master.Run, so
// backlog converts into queueing latency — exactly the signal the
// latency-SLO objective adapts on.
package job

import (
	"fmt"
	"sync"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/satin"
)

// runStream drives one streaming job end to end. Each completed window
// reports one StreamObs to the coordinator (arrivals, completions, the
// window's summed end-to-end latency, and the backlog left behind);
// with adaptation off the observations are simply dropped.
func (m *Manager) runStream(j *Job, g *satin.Grid, master *satin.Node, coord *adapt.Coordinator) error {
	spec := j.Spec.Stream
	// The real runtime collapses a window's stages into one grain — once
	// an item is at a worker there is no reason to ship it between
	// stages — so per-item work is the stages' summed service demand.
	itemWork := time.Duration(spec.ItemWork() * float64(time.Second))
	interval := time.Duration(float64(time.Second) / spec.RateHz)

	var (
		mu      sync.Mutex
		pending []time.Time // emission stamps of items awaiting a window
	)
	stopEmit := make(chan struct{})
	var emitWG sync.WaitGroup
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for n := 0; n < spec.Items; n++ {
			mu.Lock()
			pending = append(pending, time.Now())
			mu.Unlock()
			if n == spec.Items-1 {
				return
			}
			select {
			case <-tick.C:
			case <-stopEmit:
				return
			case <-j.cancelCh:
				return
			}
		}
	}()
	defer func() {
		close(stopEmit)
		emitWG.Wait()
	}()

	var (
		done    int
		latSum  float64
		latMax  float64
		windows int
	)
	for done < spec.Items && !j.cancelled() {
		mu.Lock()
		batch := pending
		pending = nil
		mu.Unlock()
		if len(batch) == 0 {
			select {
			case <-j.cancelCh:
			case <-time.After(interval / 4):
			}
			continue
		}
		val, err := master.Run(apps.StreamWindow{Items: len(batch), WorkPerItem: itemWork})
		if err != nil {
			return fmt.Errorf("window %d: %w", windows, err)
		}
		now := time.Now()
		if n, ok := val.(int); !ok || n != len(batch) {
			return fmt.Errorf("window %d: processed %v of %d items", windows, val, len(batch))
		}
		// An item's latency runs from its emission stamp to the end of
		// its window: queueing behind earlier windows is the cost of
		// falling behind the source, which is the figure of merit.
		var wSum float64
		for _, born := range batch {
			lat := now.Sub(born).Seconds()
			wSum += lat
			if lat > latMax {
				latMax = lat
			}
		}
		done += len(batch)
		latSum += wSum
		windows++
		j.addIteration(wSum / float64(len(batch))) // one entry per window: its mean latency
		mu.Lock()
		backlog := len(pending)
		mu.Unlock()
		if coord != nil {
			coord.ObserveStream(adapt.StreamObs{
				Arrived:    len(batch),
				Completed:  len(batch),
				LatencySum: wSum,
				Backlog:    backlog,
			})
		}
		nodes := g.NodeCount()
		j.obsNodes.Set(float64(nodes))
		m.record(j, "window", map[string]any{
			"items": len(batch), "mean_latency": wSum / float64(len(batch)),
			"backlog": backlog, "nodes": nodes,
		})
		if j.hooks.OnIteration != nil {
			j.hooks.OnIteration(windows-1, wSum/float64(len(batch)), nodes)
		}
	}

	mean := 0.0
	if done > 0 {
		mean = latSum / float64(done)
	}
	j.mu.Lock()
	j.result.StreamCompleted = done
	j.result.StreamMeanLatency = mean
	j.result.StreamMaxLatency = latMax
	j.mu.Unlock()
	completed := done
	j.setValue(fmt.Sprintf("%d/%d items, mean latency %.3fs", done, spec.Items, mean),
		func(any) bool { return completed == spec.Items })
	return nil
}
