package job

import (
	"fmt"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// EndpointName is the service's well-known control endpoint.
const EndpointName = "satind"

// Server exposes a Manager over the wire protocol. Handlers run on
// fabric delivery goroutines, so anything that can block (a waiting
// result fetch) is answered from its own goroutine.
type Server struct {
	m  *Manager
	wc *wire.Conn
}

// Serve attaches the control endpoint to the fabric.
func Serve(f transport.Fabric, m *Manager) (*Server, error) {
	ep, err := f.Endpoint(EndpointName)
	if err != nil {
		return nil, err
	}
	s := &Server{m: m, wc: wire.New(ep)}
	wire.Handle(s.wc, s.onSubmit)
	wire.Handle(s.wc, s.onStatus)
	wire.Handle(s.wc, s.onCancel)
	wire.Handle(s.wc, s.onResult)
	wire.Handle(s.wc, func(req PingRequest, m wire.Meta) {
		_ = wire.Send(s.wc, m.From, PingReply{Token: req.Token})
	})
	return s, nil
}

// Close detaches the control endpoint.
func (s *Server) Close() { s.wc.Close() }

func (s *Server) onSubmit(req SubmitRequest, m wire.Meta) {
	reply := SubmitReply{Token: req.Token}
	if j, err := s.m.Submit(req.Spec); err != nil {
		reply.Err = err.Error()
	} else {
		reply.ID = j.ID
	}
	_ = wire.Send(s.wc, m.From, reply)
}

func (s *Server) onStatus(req StatusRequest, m wire.Meta) {
	reply := StatusReply{Token: req.Token}
	if req.ID != "" {
		j := s.m.Job(req.ID)
		if j == nil {
			reply.Err = fmt.Sprintf("unknown job %q", req.ID)
		} else {
			reply.Jobs = []JobStatus{j.Status()}
		}
	} else {
		for _, j := range s.m.Jobs() {
			reply.Jobs = append(reply.Jobs, j.Status())
		}
	}
	_ = wire.Send(s.wc, m.From, reply)
}

func (s *Server) onCancel(req CancelRequest, m wire.Meta) {
	reply := CancelReply{Token: req.Token}
	if err := s.m.Cancel(req.ID); err != nil {
		reply.Err = err.Error()
	}
	_ = wire.Send(s.wc, m.From, reply)
}

func (s *Server) onResult(req ResultRequest, m wire.Meta) {
	j := s.m.Job(req.ID)
	if j == nil {
		_ = wire.Send(s.wc, m.From, ResultReply{
			Token: req.Token, ID: req.ID,
			Err: fmt.Sprintf("unknown job %q", req.ID),
		})
		return
	}
	send := func() {
		r := j.Result()
		reply := ResultReply{
			Token:      req.Token,
			ID:         j.ID,
			State:      j.State().String(),
			Result:     r.Formatted,
			Check:      r.Check,
			Iterations: r.Iterations,
			Learned:    r.Learned,
			Err:        r.Err,
		}
		if !j.State().Terminal() && !req.Wait {
			reply.Err = fmt.Sprintf("job %s is %s (use wait)", j.ID, j.State())
		}
		_ = wire.Send(s.wc, m.From, reply)
	}
	if req.Wait && !j.State().Terminal() {
		// Block off the fabric goroutine.
		go func() {
			<-j.Done()
			send()
		}()
		return
	}
	send()
}
