package job

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/record"
	"repro/internal/registry"
	"repro/internal/topo"
	"repro/satin"
)

// Config describes the service-wide deployment every job runs inside:
// the emulated clusters (owned by the shared pool, not by any job) and
// the execution limits.
type Config struct {
	// Clusters is the grid's capacity. Every job's deployment emulates
	// these same clusters; the shared arbiter owns the processors.
	Clusters []satin.ClusterSpec

	LANLatency   time.Duration // default 200µs
	WANLatency   time.Duration // default 5ms
	LANBandwidth float64       // bytes/s, default 100 MB/s
	WANBandwidth float64       // bytes/s, default 50 MB/s

	// MaxActive bounds concurrently executing jobs (default 8); queued
	// jobs also wait until the admitted jobs' MinNodes fit capacity.
	MaxActive int
	// Period is the default monitoring period (default 500ms).
	Period time.Duration
	// ProvisionPatience bounds how long a job waits for MinNodes before
	// starting with whatever it holds — at least the master (default 5s).
	ProvisionPatience time.Duration
	// DemandTTL is passed to the pool arbiter (default 10s).
	DemandTTL time.Duration
	// Registry tunes each job's registry (tests use fast heartbeats).
	Registry registry.Options
	// Node overrides per-node defaults (benchmark, steal timeouts).
	Node satin.NodeConfig
	// Recorder, when set, receives job lifecycle and iteration events.
	Recorder *record.Recorder
	// Seed, when non-zero, makes runs reproducible: job n uses Seed+n.
	Seed int64
}

func (c *Config) defaults() error {
	if len(c.Clusters) == 0 {
		return fmt.Errorf("job: manager needs at least one cluster")
	}
	if c.MaxActive == 0 {
		c.MaxActive = 8
	}
	if c.Period == 0 {
		c.Period = 500 * time.Millisecond
	}
	if c.ProvisionPatience == 0 {
		c.ProvisionPatience = 5 * time.Second
	}
	if c.LANLatency == 0 {
		c.LANLatency = 200 * time.Microsecond
	}
	if c.WANLatency == 0 {
		c.WANLatency = 5 * time.Millisecond
	}
	if c.LANBandwidth == 0 {
		c.LANBandwidth = 100e6
	}
	if c.WANBandwidth == 0 {
		c.WANBandwidth = 50e6
	}
	if c.Node.Bench == nil {
		c.Node.Bench = apps.Fib{N: 18, SeqCutoff: 18}
		c.Node.BenchWork = float64(apps.FibLeaves(18))
	}
	return nil
}

// Manager runs jobs over one shared node pool. One Manager per
// process; cmd/satind serves it, tests drive it directly.
type Manager struct {
	cfg Config
	arb *pool.Arbiter

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string
	queue       []*Job
	active      int
	minReserved int // sum of admitted jobs' MinNodes
	nextID      int
	draining    bool

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup // running jobs
	loop sync.WaitGroup // scheduler goroutine
}

// NewManager builds the shared pool and starts the admission
// scheduler.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	// The arbiter owns the whole topology — the same conversion a grid
	// does for its private pool, so node IDs and bandwidth bounds match.
	var t topo.Topology
	for _, c := range cfg.Clusters {
		t.Clusters = append(t.Clusters, topo.Cluster{
			ID: c.Name, Nodes: c.Nodes, Speed: 1,
			LANLatency: cfg.LANLatency.Seconds(), LANBandwidth: cfg.LANBandwidth,
			WANLatency: cfg.WANLatency.Seconds() / 2, UplinkBandwidth: cfg.WANBandwidth,
		})
	}
	arb, err := pool.New(t, pool.Config{DemandTTL: cfg.DemandTTL})
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:  cfg,
		arb:  arb,
		jobs: make(map[string]*Job),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	arb.Subscribe(m.wake)
	m.loop.Add(1)
	go m.scheduler()
	return m, nil
}

// Capacity returns the pool's (non-dead) node count.
func (m *Manager) Capacity() int { return m.arb.Capacity() }

// Arbiter exposes the shared pool (chaos and tests).
func (m *Manager) Arbiter() *pool.Arbiter { return m.arb }

// Submit validates a spec and enqueues the job. Validation is strict:
// an unknown application, impossible node counts, or a disturbance
// naming an unknown cluster is rejected here, before the job holds
// anything.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	return m.SubmitJob(spec, Hooks{})
}

// SubmitJob is Submit with in-process callbacks attached.
func (m *Manager) SubmitJob(spec Spec, hooks Hooks) (*Job, error) {
	switch spec.Class {
	case "", "batch":
		if spec.Stream != nil {
			return nil, fmt.Errorf("batch job carries a stream spec (submit with class=stream)")
		}
		if _, _, err := BuildTask(spec.App, spec.Size); err != nil {
			return nil, err
		}
	case "stream":
		if spec.Stream == nil {
			return nil, fmt.Errorf("stream job needs a pipeline spec")
		}
		if err := spec.Stream.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown class %q (batch | stream)", spec.Class)
	}
	if spec.Iters == 0 {
		spec.Iters = 1
	}
	if spec.Iters < 0 {
		return nil, fmt.Errorf("iters must be >= 1, got %d", spec.Iters)
	}
	if spec.MinNodes == 0 {
		spec.MinNodes = 1
	}
	if spec.MinNodes < 0 || spec.MinNodes > m.arb.Capacity() {
		return nil, fmt.Errorf("min nodes %d out of range (capacity %d)", spec.MinNodes, m.arb.Capacity())
	}
	if spec.MaxNodes != 0 && spec.MaxNodes < spec.MinNodes {
		return nil, fmt.Errorf("max nodes %d below min nodes %d", spec.MaxNodes, spec.MinNodes)
	}
	for _, dist := range []map[string]float64{spec.Shape, spec.Load} {
		for name, v := range dist {
			if _, _, err := ParseKV(fmt.Sprintf("%s=%g", name, v), m.cfg.Clusters); err != nil {
				return nil, err
			}
		}
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, fmt.Errorf("service is draining, not accepting jobs")
	}
	m.nextID++
	id := fmt.Sprintf("job-%03d", m.nextID)
	j := newJob(id, spec, hooks, m.onState)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.queue = append(m.queue, j)
	m.mu.Unlock()

	obs.Default.Counter("job/submitted").Inc()
	m.record(j, "job-submitted", map[string]any{
		"app": spec.App, "class": spec.Class, "size": spec.Size,
		"iters": spec.Iters, "min_nodes": spec.MinNodes, "adapt": spec.Adapt,
	})
	m.wakeUp()
	return j, nil
}

// Job returns a job by ID (nil if unknown).
func (m *Manager) Job(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job by ID.
func (m *Manager) Cancel(id string) error {
	j := m.Job(id)
	if j == nil {
		return fmt.Errorf("unknown job %q", id)
	}
	j.Cancel()
	m.wakeUp() // a cancelled queued job must leave the queue promptly
	return nil
}

// Drain stops admission, cancels queued jobs, and waits up to timeout
// for running jobs to finish; stragglers are cancelled. Returns how
// many jobs were cancelled.
func (m *Manager) Drain(timeout time.Duration) int {
	m.mu.Lock()
	m.draining = true
	queued := m.queue
	m.queue = nil
	m.mu.Unlock()
	cancelled := 0
	for _, j := range queued {
		j.Cancel()
		j.setState(Cancelled)
		cancelled++
	}
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		for _, j := range m.Jobs() {
			if !j.State().Terminal() {
				j.Cancel()
				cancelled++
			}
		}
		<-done // kills complete futures synchronously; jobs exit fast
	}
	return cancelled
}

// Close stops the scheduler. Call after Drain.
func (m *Manager) Close() {
	m.mu.Lock()
	draining := m.draining
	m.mu.Unlock()
	if !draining {
		m.Drain(time.Second)
	}
	close(m.stop)
	m.loop.Wait()
}

func (m *Manager) wakeUp() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Manager) record(j *Job, kind string, data map[string]any) {
	if m.cfg.Recorder == nil {
		return
	}
	// The job ID rides the event's own Job field so durable sinks can
	// index per-job timelines without digging through payloads.
	m.cfg.Recorder.RecordJob(j.ID, kind, data)
}

func (m *Manager) onState(j *Job, from, to State) {
	m.record(j, "job-state", map[string]any{"from": from.String(), "to": to.String()})
}

// scheduler is the admission loop: FIFO over the queue, bounded by
// MaxActive and by the invariant that every admitted job's MinNodes
// must fit in capacity together — so no admitted set can deadlock
// waiting for nodes that cannot exist.
func (m *Manager) scheduler() {
	defer m.loop.Done()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		m.admit()
		select {
		case <-m.stop:
			return
		case <-m.wake:
		case <-ticker.C:
		}
	}
}

func (m *Manager) admit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) > 0 {
		j := m.queue[0]
		if j.cancelled() {
			m.queue = m.queue[1:]
			j.setState(Cancelled)
			continue
		}
		if m.active >= m.cfg.MaxActive || m.minReserved+j.Spec.MinNodes > m.arb.Capacity() {
			return
		}
		m.queue = m.queue[1:]
		m.active++
		m.minReserved += j.Spec.MinNodes
		m.wg.Add(1)
		go m.run(j)
	}
}

// run executes one job end to end: register with the pool, build a
// private deployment over the shared capacity, bid for nodes, run the
// iterations, clean up. Every exit path releases everything the job
// held.
func (m *Manager) run(j *Job) {
	defer func() {
		m.mu.Lock()
		m.active--
		m.minReserved -= j.Spec.MinNodes
		m.mu.Unlock()
		m.wakeUp()
		m.wg.Done()
	}()

	client, err := m.arb.Register(j.ID, j.Spec.Weight, j.Spec.MaxNodes)
	if err != nil {
		j.fail(err)
		return
	}
	defer client.Close()

	m.mu.Lock()
	var seed int64
	if m.cfg.Seed != 0 {
		// Reproducible but distinct per job: the job index perturbs the
		// service seed.
		seed = m.cfg.Seed + int64(len(m.order))
	}
	m.mu.Unlock()

	nodeCfg := m.cfg.Node
	period := j.Spec.Period
	if period == 0 {
		period = m.cfg.Period
	}
	if j.Spec.Adapt {
		nodeCfg.Coordinator = adapt.EndpointName
		nodeCfg.MonitorPeriod = period
	}
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters:     m.cfg.Clusters,
		Pool:         client,
		LANLatency:   m.cfg.LANLatency,
		WANLatency:   m.cfg.WANLatency,
		LANBandwidth: m.cfg.LANBandwidth,
		WANBandwidth: m.cfg.WANBandwidth,
		Registry:     m.cfg.Registry,
		Seed:         seed,
		Node:         nodeCfg,
	})
	if err != nil {
		j.fail(err)
		return
	}
	defer g.Close()
	j.attachGrid(g)
	j.setState(Provisioning)

	master, err := m.provision(j, g)
	if err != nil {
		j.fail(err)
		return
	}
	j.obsNodes.Set(float64(g.NodeCount()))

	var coord *adapt.Coordinator
	if j.Spec.Adapt {
		cfg := adapt.Config{
			Period:    period,
			Protected: []adapt.NodeID{master.ID()},
			// The job's coordinator bids for nodes through the shared
			// pool (g.Provision goes through the fair-share client) and
			// yields its surplus when other jobs starve.
			Pressure: client.Pressure,
		}
		if j.Spec.Class == "stream" {
			// Streaming jobs adapt to their latency SLO, not the WAE band;
			// the window driver (runStream) feeds the observations.
			slo := adapt.DefaultStreamSLO(j.Spec.Stream.TargetLatency)
			cfg.StreamSLO = &slo
		}
		if rec := m.cfg.Recorder; rec != nil {
			id := j.ID
			cfg.Observer = func(pr adapt.PeriodRecord) {
				// Every tick lands as the job's period trajectory (the
				// replay tool reconstructs per-job health from these);
				// actions additionally land in the decision log.
				rec.RecordJob(id, "period", pr)
				if pr.Action != "" && pr.Action != "none" {
					rec.RecordJob(id, "decision", pr)
				}
			}
		}
		coord, err = adapt.Start(g.Fabric(), g, cfg)
		if err != nil {
			j.fail(err)
			return
		}
		defer coord.Stop()
	}
	for name, bw := range j.Spec.Shape {
		g.Shape(satin.ClusterID(name), bw)
	}
	for name, f := range j.Spec.Load {
		g.SetClusterLoad(satin.ClusterID(name), f)
	}

	j.setState(Running)
	if j.Spec.Class == "stream" {
		if err := m.runStream(j, g, master, coord); err != nil {
			j.fail(err)
			return
		}
	} else if err := m.runBatch(j, g, master); err != nil {
		j.fail(err)
		return
	}
	// Final snapshots for in-process callers, taken while the
	// deployment is still alive.
	var reports []metrics.Report
	for _, n := range g.Nodes() {
		reports = append(reports, n.Report())
	}
	j.mu.Lock()
	j.result.NodeReports = reports
	j.mu.Unlock()
	if coord != nil {
		j.mu.Lock()
		j.result.Learned = coord.Requirements().String()
		j.result.History = coord.History()
		j.result.Annotations = coord.Annotations()
		j.mu.Unlock()
	}
	if j.cancelled() {
		j.setState(Cancelled)
		return
	}
	j.setState(Done)
}

// runBatch is the classic iterative loop: run the job's task Iters
// times on the master, recording each iteration's wall time.
func (m *Manager) runBatch(j *Job, g *satin.Grid, master *satin.Node) error {
	task, check, _ := BuildTask(j.Spec.App, j.Spec.Size) // validated at submit
	for i := 0; i < j.Spec.Iters; i++ {
		if j.cancelled() {
			break
		}
		start := time.Now()
		val, err := master.Run(task)
		if err != nil {
			// A closed grid (cancel, drain) surfaces here as a node-
			// stopped error; fail() sorts cancel from genuine failure.
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		el := time.Since(start).Seconds()
		j.addIteration(el)
		j.setValue(val, check)
		nodes := g.NodeCount()
		j.obsNodes.Set(float64(nodes))
		m.record(j, "iteration", map[string]any{
			"i": i, "seconds": el, "nodes": nodes,
		})
		if j.hooks.OnIteration != nil {
			j.hooks.OnIteration(i, el, nodes)
		}
	}
	return nil
}

// provision bids for the job's MinNodes, retrying as the shared pool
// frees up. It returns once the target is met, or — after
// ProvisionPatience — as soon as the job holds at least one node (the
// master); MinNodes is a target, not a barrier, exactly like the
// paper's runtime starting before all requested machines arrive.
func (m *Manager) provision(j *Job, g *satin.Grid) (*satin.Node, error) {
	target := j.Spec.MinNodes
	deadline := time.Now().Add(m.cfg.ProvisionPatience)
	retry := time.NewTicker(25 * time.Millisecond)
	defer retry.Stop()
	for {
		if j.cancelled() {
			return nil, fmt.Errorf("cancelled while provisioning")
		}
		// Round-robin across clusters, one node at a time: the initial
		// deployment spreads evenly (a multi-cluster job should start
		// multi-cluster), and partial fair-share grants still make
		// progress. Later growth goes through the coordinator's
		// Provision, which prefers clusters already in use.
		for need := target - g.NodeCount(); need > 0; {
			progress := false
			for _, c := range m.cfg.Clusters {
				if need == 0 {
					break
				}
				if _, err := g.StartNodes(c.Name, 1); err == nil {
					need--
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		n := g.NodeCount()
		if n >= target || (n >= 1 && time.Now().After(deadline)) {
			break
		}
		select {
		case <-j.cancelCh:
		case <-retry.C:
		}
	}
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no nodes after provisioning")
	}
	// Deterministic master: the lowest node ID the job holds.
	sort.Slice(nodes, func(a, b int) bool { return nodes[a].ID() < nodes[b].ID() })
	return nodes[0], nil
}
