package job

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/satin"
)

func fastReg() registry.Options {
	return registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
}

func testManager(t *testing.T, clusters, nodes int, tune func(*Config)) *Manager {
	t.Helper()
	var specs []satin.ClusterSpec
	for i := 0; i < clusters; i++ {
		specs = append(specs, satin.ClusterSpec{
			Name: satin.ClusterID(fmt.Sprintf("fs%d", i)), Nodes: nodes,
		})
	}
	cfg := Config{
		Clusters:          specs,
		LANLatency:        50 * time.Microsecond,
		WANLatency:        time.Millisecond,
		Registry:          fastReg(),
		Period:            100 * time.Millisecond,
		ProvisionPatience: 300 * time.Millisecond,
		Node: satin.NodeConfig{
			LocalStealTimeout: 100 * time.Millisecond,
			WANStealTimeout:   500 * time.Millisecond,
		},
	}
	if tune != nil {
		tune(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("%s still %s after %v", j.ID, j.State(), timeout)
	}
}

func waitState(t *testing.T, j *Job, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s is %s, want %s after %v", j.ID, j.State(), want, timeout)
}

// TestConcurrentJobsShareOnePool is the service's core promise: four
// jobs run concurrently over one shared node pool, every one completes
// with a verified result, and per-job observability stays separate.
func TestConcurrentJobsShareOnePool(t *testing.T) {
	m := testManager(t, 2, 2, nil) // capacity 4, one node per job
	const n = 4
	jobs := make([]*Job, n)
	before := make([]uint64, n)
	for i := range jobs {
		j, err := m.Submit(Spec{App: "fib", Size: 12, Iters: 2, MinNodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
		before[i] = obs.Default.Counter("job/" + j.ID + "/iterations").Value()
	}
	// All four must be admitted together (MaxActive 8, 4 × MinNodes 1
	// fits capacity 4) — genuinely concurrent, not serialized.
	deadline := time.Now().Add(5 * time.Second)
	for {
		running := 0
		for _, j := range jobs {
			if s := j.State(); s == Running || s == Provisioning {
				running++
			}
		}
		if running == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs active concurrently", running, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, j := range jobs {
		waitTerminal(t, j, 30*time.Second)
		if j.State() != Done {
			t.Fatalf("%s: state %s, err %q", j.ID, j.State(), j.Result().Err)
		}
		r := j.Result()
		if r.Check != "ok" {
			t.Fatalf("%s: check %q", j.ID, r.Check)
		}
		if len(r.Iterations) != 2 {
			t.Fatalf("%s: %d iterations recorded, want 2", j.ID, len(r.Iterations))
		}
		// Per-job counters must not cross-contaminate: each job's series
		// advanced by exactly its own iterations.
		got := obs.Default.Counter("job/"+j.ID+"/iterations").Value() - before[i]
		if got != 2 {
			t.Fatalf("%s: per-job iteration counter advanced by %d, want 2", j.ID, got)
		}
	}
}

// TestCancelFreesNodesForQueued is the acceptance scenario: cancelling
// a running job returns its nodes to the shared pool, and a queued job
// claims them.
func TestCancelFreesNodesForQueued(t *testing.T) {
	m := testManager(t, 1, 2, nil) // capacity 2
	// hog needs both nodes and would run for ~40s if never cancelled
	// (fib 24 is ~233 cutoff tasks of 3ms per iteration).
	hog, err := m.Submit(Spec{App: "fib", Size: 24, Iters: 60, MinNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hog, Running, 10*time.Second)
	// queued also needs both nodes: admission holds it back (2+2 > 2).
	queued, err := m.Submit(Spec{App: "fib", Size: 10, MinNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if s := queued.State(); s != Queued {
		t.Fatalf("second job should be queued behind the hog, is %s", s)
	}
	if err := m.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, hog, 10*time.Second)
	if hog.State() != Cancelled {
		t.Fatalf("hog: state %s, want cancelled", hog.State())
	}
	// The freed nodes must let the queued job run to completion.
	waitTerminal(t, queued, 30*time.Second)
	if queued.State() != Done || queued.Result().Check != "ok" {
		t.Fatalf("queued job after cancel: state %s, check %q, err %q",
			queued.State(), queued.Result().Check, queued.Result().Err)
	}
}

// TestNoStarvation: more demand than the grid can hold at once — every
// job still finishes; nobody waits forever while others get nodes.
func TestNoStarvation(t *testing.T) {
	m := testManager(t, 1, 4, nil) // capacity 4
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(Spec{App: "fib", Size: 11, MinNodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitTerminal(t, j, 60*time.Second)
		if j.State() != Done {
			t.Fatalf("%s: state %s, err %q", j.ID, j.State(), j.Result().Err)
		}
	}
}

// TestSubmitValidation: malformed specs are rejected at the door, not
// silently ignored.
func TestSubmitValidation(t *testing.T) {
	m := testManager(t, 1, 2, nil)
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"unknown app", Spec{App: "sort", Size: 10}},
		{"zero size", Spec{App: "fib", Size: 0}},
		{"min above capacity", Spec{App: "fib", Size: 10, MinNodes: 99}},
		{"max below min", Spec{App: "fib", Size: 10, MinNodes: 2, MaxNodes: 1}},
		{"bad shape cluster", Spec{App: "fib", Size: 10, Shape: map[string]float64{"nope": 5000}}},
		{"bad load value", Spec{App: "fib", Size: 10, Load: map[string]float64{"fs0": -1}}},
	} {
		if _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

// TestDrainCancelsQueuedFinishesRunning: the SIGTERM path.
func TestDrainCancelsQueuedFinishesRunning(t *testing.T) {
	m := testManager(t, 1, 2, nil)
	running, err := m.Submit(Spec{App: "fib", Size: 24, Iters: 3, MinNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running, 10*time.Second)
	queued, err := m.Submit(Spec{App: "fib", Size: 10, MinNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Drain(30 * time.Second)
	if running.State() != Done {
		t.Fatalf("running job should finish during drain, is %s", running.State())
	}
	if queued.State() != Cancelled {
		t.Fatalf("queued job should be cancelled by drain, is %s", queued.State())
	}
	if _, err := m.Submit(Spec{App: "fib", Size: 10}); err == nil {
		t.Fatal("submissions during drain must be rejected")
	}
}
