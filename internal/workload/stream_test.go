package workload

import (
	"math"
	"testing"
)

func TestStreamSpecValidate(t *testing.T) {
	good := Pipeline3(4, 200)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	stage := StreamStage{Name: "s", WorkPerItem: 1}
	bad := []StreamSpec{
		{RateHz: 1, Items: 1, TargetLatency: 1},
		{Stages: []StreamStage{{Name: "s", WorkPerItem: 0}}, RateHz: 1, Items: 1, TargetLatency: 1},
		{Stages: []StreamStage{{Name: "s", WorkPerItem: 1, BytesPerItem: -1}}, RateHz: 1, Items: 1, TargetLatency: 1},
		{Stages: []StreamStage{stage}, RateHz: 0, Items: 1, TargetLatency: 1},
		{Stages: []StreamStage{stage}, RateHz: 1, Items: 0, TargetLatency: 1},
		{Stages: []StreamStage{stage}, RateHz: 1, Items: 1, TargetLatency: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid stream spec accepted: %+v", i, s)
		}
	}
}

func TestStreamSpecDerived(t *testing.T) {
	s := Pipeline3(4, 200)
	if w := s.ItemWork(); math.Abs(w-1.5) > 1e-12 {
		t.Errorf("item work = %v, want 1.5", w)
	}
	if d := s.Demand(); math.Abs(d-6) > 1e-12 {
		t.Errorf("demand = %v, want 6 speed-seconds/s", d)
	}
	if d := s.Duration(); math.Abs(d-50) > 1e-12 {
		t.Errorf("duration = %v, want 50s", d)
	}
}

func TestPipeline3Defaults(t *testing.T) {
	s := Pipeline3(0, 0)
	if s.RateHz != 4 || s.Items != 200 {
		t.Errorf("defaults: rate %v items %d", s.RateHz, s.Items)
	}
	if len(s.Stages) != 3 {
		t.Errorf("stages = %d", len(s.Stages))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
