package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBarnesHutCalibration(t *testing.T) {
	s := BarnesHut(100000, 30)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 30 {
		t.Errorf("iterations = %d", s.Iterations)
	}
	if math.Abs(s.WorkPerIteration-180) > 1e-9 {
		t.Errorf("work per iteration = %v, want 180 (calibration)", s.WorkPerIteration)
	}
	if math.Abs(s.SequentialPerIteration-5) > 0.01 {
		t.Errorf("sequential = %v, want ~5", s.SequentialPerIteration)
	}
	if s.BytesPerNode != 16*100000 {
		t.Errorf("bytes per node = %v", s.BytesPerNode)
	}
	// Scaling with N: more bodies, more work (superlinear via log).
	big := BarnesHut(200000, 30)
	if big.WorkPerIteration <= 2*s.WorkPerIteration*0.99 {
		t.Errorf("200k bodies work %v not > 2x 100k work %v", big.WorkPerIteration, s.WorkPerIteration)
	}
	// Default body count.
	if d := BarnesHut(0, 10); d.WorkPerIteration != s.WorkPerIteration {
		t.Errorf("default nBodies should be 100k")
	}
}

func TestSpecValidate(t *testing.T) {
	good := BarnesHut(1000, 5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Iterations: 0, WorkPerIteration: 1, Grain: 1},
		{Iterations: 1, WorkPerIteration: 0, Grain: 1},
		{Iterations: 1, WorkPerIteration: 1, Grain: 0},
		{Iterations: 1, WorkPerIteration: 1, Grain: 1, SequentialPerIteration: -1},
		{Iterations: 1, WorkPerIteration: 1, Grain: 1, Irregularity: 1},
		{Iterations: 1, WorkPerIteration: 1, Grain: 1, Irregularity: -0.1},
		{Iterations: 1, WorkPerIteration: 1, Grain: 1, BytesPerNode: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}

// Property: splitting conserves work exactly and both halves are
// positive for any irregularity below 1.
func TestSplitConservesWork(t *testing.T) {
	f := func(seed int64, workRaw uint16, irrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		work := float64(workRaw) + 0.5
		s := Spec{Irregularity: float64(irrRaw%100) / 100}
		a, b := s.Split(work, rng)
		return a > 0 && b > 0 && a+b == work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestShouldSplit(t *testing.T) {
	s := Spec{Grain: 0.1}
	if !s.ShouldSplit(0.2) || s.ShouldSplit(0.1) || s.ShouldSplit(0.05) {
		t.Error("grain boundary wrong")
	}
}

func TestIterWorkScaling(t *testing.T) {
	s := VaryingParallelism(BarnesHut(100000, 10), func(i int) float64 {
		if i%2 == 1 {
			return 0.5
		}
		return 1
	})
	if s.IterWork(0) != 180 || s.IterWork(1) != 90 {
		t.Errorf("scaled work: %v, %v", s.IterWork(0), s.IterWork(1))
	}
	base := BarnesHut(100000, 10)
	if base.IterWork(3) != 180 {
		t.Errorf("unscaled work = %v", base.IterWork(3))
	}
}

func TestProfileEagerConsistency(t *testing.T) {
	s := BarnesHut(100000, 10)
	t1, tinf := s.Profile(0)
	if t1 != 185 {
		t.Errorf("T1 = %v, want 185", t1)
	}
	if tinf <= s.SequentialPerIteration || tinf >= t1 {
		t.Errorf("Tinf = %v out of (%v, %v)", tinf, s.SequentialPerIteration, t1)
	}
	// Average parallelism should be in the tens: that is why ~36 nodes
	// is the paper's reasonable allocation.
	a := t1 / tinf
	if a < 10 || a > 60 {
		t.Errorf("average parallelism = %v, expected tens", a)
	}
}
