// Package workload describes the applications the grid experiments
// run: iterative divide-and-conquer computations in the style the paper
// evaluates (Barnes-Hut N-body simulation on Satin). A Spec gives the
// per-iteration work, its irregular recursive decomposition, the
// sequential (master-side) phase, and the data-exchange traffic each
// iteration generates — everything the simulator needs to reproduce
// the paper's performance behaviour without a performance model ever
// being given to the adaptation component.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Task is a subtree of the divide-and-conquer computation: Work is the
// total work under it, in speed-seconds (execution time on a speed-1
// processor).
type Task struct {
	Work float64
}

// Spec describes an iterative divide-and-conquer application.
type Spec struct {
	Name string

	// Iterations is the number of outer time steps.
	Iterations int

	// WorkPerIteration is the parallel work of one iteration in
	// speed-seconds; WorkScale (if set) multiplies it per iteration to
	// model a changing degree of parallelism.
	WorkPerIteration float64
	WorkScale        func(iter int) float64

	// SequentialPerIteration is the master-only phase (tree build,
	// result gathering) in speed-seconds; it bounds scalability the
	// Amdahl way and is what makes ~36 DAS-2 nodes the paper's
	// "reasonable" allocation at ~50% efficiency.
	SequentialPerIteration float64

	// Grain is the leaf threshold in speed-seconds: tasks with at most
	// this much work execute directly instead of splitting.
	Grain float64

	// Irregularity in [0,1) skews binary splits: 0 gives even halves,
	// values near 1 produce task sizes varying by orders of magnitude
	// (the paper notes divide-and-conquer trees are highly irregular).
	Irregularity float64

	// BytesPerNode is the application's full working set (all bodies in
	// Barnes-Hut): a joining node must fetch it before participating.
	BytesPerNode float64

	// ExchangeBytes is the per-node, per-iteration broadcast (the
	// updated tree summary); cross-cluster shares travel the uplinks
	// once per cluster pair, then fan out over the LAN.
	ExchangeBytes float64

	// StealMsgBytes is the fixed payload of one migrated job (job
	// descriptor plus its eventual result). The job's data rides along:
	// see JobBytes.
	StealMsgBytes float64
}

// JobBytes is the payload of a stolen subtree carrying the given
// amount of work: the fixed descriptor plus the proportional share of
// the working set (a Barnes-Hut subtree task carries its bodies, as in
// the Satin implementation). This is what concentrates bandwidth pain
// at a badly connected cluster: all work entering it crosses its
// uplink with its data attached.
func (s Spec) JobBytes(work float64) float64 {
	if s.WorkPerIteration <= 0 {
		return s.StealMsgBytes
	}
	return s.StealMsgBytes + work/s.WorkPerIteration*s.BytesPerNode
}

// Validate checks the spec is runnable.
func (s Spec) Validate() error {
	if s.Iterations <= 0 {
		return fmt.Errorf("workload %q: iterations %d must be positive", s.Name, s.Iterations)
	}
	if s.WorkPerIteration <= 0 {
		return fmt.Errorf("workload %q: work per iteration %v must be positive", s.Name, s.WorkPerIteration)
	}
	if s.SequentialPerIteration < 0 {
		return fmt.Errorf("workload %q: negative sequential work", s.Name)
	}
	if s.Grain <= 0 {
		return fmt.Errorf("workload %q: grain %v must be positive", s.Name, s.Grain)
	}
	if s.Irregularity < 0 || s.Irregularity >= 1 {
		return fmt.Errorf("workload %q: irregularity %v out of [0,1)", s.Name, s.Irregularity)
	}
	if s.BytesPerNode < 0 || s.ExchangeBytes < 0 || s.StealMsgBytes < 0 {
		return fmt.Errorf("workload %q: negative byte sizes", s.Name)
	}
	return nil
}

// IterWork returns iteration iter's parallel work in speed-seconds.
func (s Spec) IterWork(iter int) float64 {
	w := s.WorkPerIteration
	if s.WorkScale != nil {
		w *= s.WorkScale(iter)
	}
	return w
}

// ShouldSplit reports whether a task of the given work splits further.
func (s Spec) ShouldSplit(work float64) bool { return work > s.Grain }

// Split divides a task's work into two children. The split fraction is
// drawn from rng within [0.5−0.45·irr, 0.5+0.45·irr]; the children's
// work sums exactly to the parent's (b is computed by subtraction), so
// no work is created or lost by decomposition.
func (s Spec) Split(work float64, rng *rand.Rand) (a, b float64) {
	f := 0.5 + s.Irregularity*0.9*(rng.Float64()-0.5)
	a = work * f
	b = work - a
	return a, b
}

// Profile returns the Eager-et-al work profile of one iteration:
// T1 = sequential + parallel work; Tinf is approximated by the
// sequential phase plus the expected depth of the task tree times the
// grain (the longest chain of leaf executions).
func (s Spec) Profile(iter int) (t1, tinf float64) {
	w := s.IterWork(iter)
	t1 = s.SequentialPerIteration + w
	depth := math.Log2(w/s.Grain) + 1
	if depth < 1 {
		depth = 1
	}
	tinf = s.SequentialPerIteration + depth*s.Grain
	return t1, tinf
}

// BarnesHut returns the calibrated model of the Barnes-Hut N-body
// application the paper evaluates: nBodies bodies simulated for the
// given number of iterations. The constants are calibrated so that on
// 36 DAS-2 nodes (three clusters of twelve) an iteration takes ~10
// virtual seconds at a weighted average efficiency of ~0.5 — the
// paper's "reasonable set of nodes" for scenario 1.
func BarnesHut(nBodies, iterations int) Spec {
	if nBodies <= 0 {
		nBodies = 100000
	}
	// Force computation is O(N log N); normalised so N=100k gives 180
	// speed-seconds of parallel work per iteration.
	n := float64(nBodies)
	ref := 100000 * math.Log2(100000)
	work := 180 * (n * math.Log2(n)) / ref
	return Spec{
		Name:                   fmt.Sprintf("barnes-hut-%dk", nBodies/1000),
		Iterations:             iterations,
		WorkPerIteration:       work,
		SequentialPerIteration: work / 36, // tree build+gather, ~5s at N=100k
		Grain:                  0.1,
		Irregularity:           0.7,
		BytesPerNode:           16 * n, // full body set (join-state transfer)
		// No per-iteration broadcast: as in the Satin implementation,
		// body data travels with the jobs themselves (see JobBytes),
		// which is what makes the application latency-insensitive.
		ExchangeBytes: 0,
		StealMsgBytes: 4096,
	}
}

// VaryingParallelism wraps a spec so its work per iteration follows
// scale(iter) — the paper's scenario of an application whose degree of
// parallelism changes during the computation, to which the adaptation
// component responds by growing and shrinking the node set.
func VaryingParallelism(base Spec, scale func(iter int) float64) Spec {
	base.Name = base.Name + "-varying"
	base.WorkScale = scale
	return base
}
