// Streaming-pipeline workloads (ISSUE 9). Where Spec describes the
// paper's barrier-synchronised divide-and-conquer iterations, a
// StreamSpec describes the first non-batch workload class: an open-loop
// source emits items at a fixed rate into a linear pipeline of stages,
// each item pays per-stage service time on whichever node picks it up,
// and the figure of merit is the end-to-end latency against an SLO —
// not the efficiency of a fixed work budget. The adaptation objective
// for this class is core.StreamSLO; the spec itself stays policy-free,
// exactly as Spec never tells the batch objective anything.
package workload

import "fmt"

// StreamStage is one stage of a streaming pipeline.
type StreamStage struct {
	Name string
	// WorkPerItem is the stage's service demand per item in
	// speed-seconds (execution time on a speed-1 processor).
	WorkPerItem float64
	// BytesPerItem is the payload an item carries INTO this stage: the
	// transfer a node pays when it picks the item up from the previous
	// stage's queue across a network boundary.
	BytesPerItem float64
}

// StreamSpec describes an open-loop streaming pipeline.
type StreamSpec struct {
	Name string

	// Stages is the linear pipeline, in order. Every item traverses all
	// stages.
	Stages []StreamStage

	// RateHz is the open-loop arrival rate in items per second. The
	// source does not slow down when the pipeline falls behind — that is
	// what makes latency an adaptation signal rather than a constant.
	RateHz float64

	// Items is the total number of items the source emits (the run
	// drains the pipeline after the last one).
	Items int

	// TargetLatency is the end-to-end latency SLO in seconds an item
	// should spend from arrival to leaving the last stage.
	TargetLatency float64
}

// Validate checks the spec is runnable.
func (s StreamSpec) Validate() error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("stream %q: no stages", s.Name)
	}
	for i, st := range s.Stages {
		if st.WorkPerItem <= 0 {
			return fmt.Errorf("stream %q: stage %d (%s) work per item %v must be positive",
				s.Name, i, st.Name, st.WorkPerItem)
		}
		if st.BytesPerItem < 0 {
			return fmt.Errorf("stream %q: stage %d (%s) negative bytes per item",
				s.Name, i, st.Name)
		}
	}
	if s.RateHz <= 0 {
		return fmt.Errorf("stream %q: arrival rate %v must be positive", s.Name, s.RateHz)
	}
	if s.Items <= 0 {
		return fmt.Errorf("stream %q: item count %d must be positive", s.Name, s.Items)
	}
	if s.TargetLatency <= 0 {
		return fmt.Errorf("stream %q: target latency %v must be positive", s.Name, s.TargetLatency)
	}
	return nil
}

// ItemWork is the total service demand of one item across all stages,
// in speed-seconds.
func (s StreamSpec) ItemWork() float64 {
	var w float64
	for _, st := range s.Stages {
		w += st.WorkPerItem
	}
	return w
}

// Demand is the offered load in speed-seconds per second: the minimum
// aggregate speed the pipeline needs just to keep up with the source
// (utilisation 1). A sensible allocation provisions comfortably above
// it so queueing delay stays inside the latency SLO.
func (s StreamSpec) Demand() float64 { return s.RateHz * s.ItemWork() }

// Duration is the source's emission window in seconds.
func (s StreamSpec) Duration() float64 { return float64(s.Items) / s.RateHz }

// Pipeline3 returns the calibrated three-stage reference pipeline the
// streaming experiments use: decode → transform → encode, with the
// middle stage dominating. At the default 4 items/s the offered load is
// 6 speed-seconds per second, so ~8–10 speed-1 nodes hold the mean
// end-to-end latency comfortably inside the 5 s target while a single
// saturated node visibly violates it — the dynamic range the SLO
// objective needs.
func Pipeline3(rateHz float64, items int) StreamSpec {
	if rateHz <= 0 {
		rateHz = 4
	}
	if items <= 0 {
		items = 200
	}
	return StreamSpec{
		Name: "pipeline3",
		Stages: []StreamStage{
			{Name: "decode", WorkPerItem: 0.3, BytesPerItem: 256 << 10},
			{Name: "transform", WorkPerItem: 0.9, BytesPerItem: 128 << 10},
			{Name: "encode", WorkPerItem: 0.3, BytesPerItem: 128 << 10},
		},
		RateHz:        rateHz,
		Items:         items,
		TargetLatency: 5,
	}
}
