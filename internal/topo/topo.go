// Package topo describes grid topologies: sites (clusters) of
// processors joined by a wide-area network, with per-cluster LAN
// characteristics and a per-cluster uplink to the backbone — the
// resource model of the paper's §2. It also ships the DAS-2 preset the
// paper evaluates on.
package topo

import (
	"fmt"

	"repro/internal/core"
)

// Re-exported identifier types so callers need only one import.
type (
	// NodeID identifies a processor ("fs0/17").
	NodeID = core.NodeID
	// ClusterID identifies a site ("fs0").
	ClusterID = core.ClusterID
)

// Cluster describes one site: a set of identical processors on a fast
// LAN, attached to the WAN backbone through an uplink of finite
// bandwidth (the potential bottleneck the paper calls out).
type Cluster struct {
	ID    ClusterID
	Nodes int
	// Speed is each processor's base speed in work units per second.
	// Heterogeneity between sites is expressed here; heterogeneity over
	// time comes from load injection.
	Speed float64
	// LANLatency is the one-way intra-cluster message latency (seconds).
	LANLatency float64
	// LANBandwidth is the intra-cluster per-transfer bandwidth (bytes/s).
	LANBandwidth float64
	// WANLatency is the one-way latency from this cluster to the
	// backbone; cross-cluster latency is the sum of both sides (seconds).
	WANLatency float64
	// UplinkBandwidth is the capacity of the shared access link between
	// this cluster and the backbone (bytes/s). All inter-cluster traffic
	// of the cluster's nodes serialises through it.
	UplinkBandwidth float64
}

// Validate checks physical sanity.
func (c Cluster) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("topo: cluster with empty ID")
	}
	if c.Nodes < 0 {
		return fmt.Errorf("topo: cluster %s: negative node count %d", c.ID, c.Nodes)
	}
	if c.Speed <= 0 {
		return fmt.Errorf("topo: cluster %s: speed %v must be positive", c.ID, c.Speed)
	}
	if c.LANLatency < 0 || c.WANLatency < 0 {
		return fmt.Errorf("topo: cluster %s: negative latency", c.ID)
	}
	if c.LANBandwidth <= 0 || c.UplinkBandwidth <= 0 {
		return fmt.Errorf("topo: cluster %s: bandwidths must be positive", c.ID)
	}
	return nil
}

// Topology is a set of clusters.
type Topology struct {
	Clusters []Cluster
}

// Validate checks every cluster and ID uniqueness.
func (t Topology) Validate() error {
	if len(t.Clusters) == 0 {
		return fmt.Errorf("topo: topology with no clusters")
	}
	seen := make(map[ClusterID]bool, len(t.Clusters))
	for _, c := range t.Clusters {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.ID] {
			return fmt.Errorf("topo: duplicate cluster ID %s", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

// TotalNodes sums the cluster sizes.
func (t Topology) TotalNodes() int {
	n := 0
	for _, c := range t.Clusters {
		n += c.Nodes
	}
	return n
}

// Cluster returns the cluster with the given ID.
func (t Topology) Cluster(id ClusterID) (Cluster, bool) {
	for _, c := range t.Clusters {
		if c.ID == id {
			return c, true
		}
	}
	return Cluster{}, false
}

// NodeName builds the canonical processor name for the i-th node of a
// cluster: "<cluster>/<index>" with a two-digit index.
func NodeName(c ClusterID, i int) NodeID {
	return NodeID(fmt.Sprintf("%s/%02d", c, i))
}

// Uniform network constants used by the presets, chosen to match the
// paper's testbed description: Fast Ethernet LANs, Dutch university
// backbone WAN.
const (
	FastEthernetBandwidth = 12.5e6  // 100 Mbit/s in bytes/s
	LANLatency            = 0.00015 // 150 µs one-way
	BackboneUplink        = 60e6    // healthy uplink, far from saturation
	WANLatencyOneWay      = 0.0015  // 1.5 ms to backbone, 3 ms site-to-site
)

// DAS2 returns the Distributed ASCI Supercomputer 2 used in the paper's
// evaluation: five clusters at five Dutch universities, one of 72 nodes
// and four of 32 nodes, each node a dual 1 GHz Pentium III. Node speed
// is normalised to 1 work unit/second.
func DAS2() Topology {
	mk := func(id ClusterID, n int) Cluster {
		return Cluster{
			ID:              id,
			Nodes:           n,
			Speed:           1.0,
			LANLatency:      LANLatency,
			LANBandwidth:    FastEthernetBandwidth,
			WANLatency:      WANLatencyOneWay,
			UplinkBandwidth: BackboneUplink,
		}
	}
	return Topology{Clusters: []Cluster{
		mk("fs0", 72), // VU Amsterdam
		mk("fs1", 32), // Leiden
		mk("fs2", 32), // UvA Amsterdam
		mk("fs3", 32), // Delft
		mk("fs4", 32), // Utrecht
	}}
}
