// Package store is the durable backend behind internal/record's Sink
// seam: a single-file, append-only datastore holding a run's events,
// registry samples and per-job decision records, so a run's observed
// trajectory survives the process that produced it and can be
// replayed or compared against later runs (cmd/replay).
//
// It follows the embedded-datastore idiom: one writer goroutine owns
// the file and is fed through a bounded queue that NEVER blocks the
// producer — a full queue is a counted drop, not a stalled
// coordinator callback; typed query helpers per table form the read
// side; and the store carries obs telemetry on itself (rows written,
// queue depth, dropped rows, write errors, flush latency).
//
// On-disk format ("recdb/1"): one JSON object per line — a header row
// naming the format, a run-open row per Open, then one row per record
// with its table (event | sample | decision), run, timestamp,
// optional kind/job, and the raw payload. The format is deliberately
// dumb: it survives torn final writes (the reader stops at the first
// undecodable line and reports how many bytes it skipped), it appends
// across process restarts so one file accumulates many runs for
// cross-run regression comparison, and any JSONL tooling (jq,
// `sqlite3 .import`, a spreadsheet) can consume it directly. A real
// SQLite backend would slot behind the same record.Sink interface and
// query helpers, but this build is dependency-free by policy, so the
// helpers here are the query layer.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/record"
)

// Table names. Events carrying an adaptation decision are routed to
// their own table so the per-job decision log is a first-class query.
const (
	TableEvent    = "event"
	TableSample   = "sample"
	TableDecision = "decision"
)

// formatHeader is the first line of every new file.
const formatHeader = "recdb/1"

// Row is one persisted record — the store's wire-and-disk schema.
type Row struct {
	Format string          `json:"format,omitempty"` // header row only
	Run    string          `json:"run,omitempty"`
	Table  string          `json:"table,omitempty"`
	Time   float64         `json:"t"`
	Kind   string          `json:"kind,omitempty"`
	Job    string          `json:"job,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// pending defers JSON marshalling to the writer goroutine so the
// producer-side Put path stays allocation-bounded.
type pending struct {
	table string
	t     float64
	kind  string
	job   string
	data  any
}

// Options tunes a store.
type Options struct {
	// QueueSize bounds the writer queue (default 4096). Puts beyond a
	// full queue are dropped and counted, never blocked on.
	QueueSize int
}

// DB is one open, append-mode store. Put* methods are safe for
// concurrent use and never block; Close drains the queue, flushes and
// syncs the file.
type DB struct {
	path string
	run  string
	f    *os.File
	w    *bufio.Writer

	queue chan pending
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once

	closeMu  sync.Mutex
	closeErr error

	rows     *obs.Counter
	dropped  *obs.Counter
	writeErr *obs.Counter
	depth    *obs.Gauge
	flushLat *obs.Histogram
}

// Open appends to (or creates) the store at path and opens a run named
// run (empty = a UTC timestamp). reg receives the store's telemetry:
// store/rows_written, store/dropped_rows, store/write_err counters,
// the store/queue_depth gauge and the store/flush_latency histogram.
func Open(path, run string, reg *obs.Registry, opts ...Options) (*DB, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4096
	}
	if run == "" {
		run = time.Now().UTC().Format("20060102-150405")
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	db := &DB{
		path:     path,
		run:      run,
		f:        f,
		w:        bufio.NewWriter(f),
		queue:    make(chan pending, o.QueueSize),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		rows:     reg.Counter("store/rows_written"),
		dropped:  reg.Counter("store/dropped_rows"),
		writeErr: reg.Counter("store/write_err"),
		depth:    reg.Gauge("store/queue_depth"),
		flushLat: reg.Histogram("store/flush_latency", obs.LatencyBuckets),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() == 0 {
		if err := db.writeRow(Row{Format: formatHeader}); err != nil {
			f.Close()
			return nil, err
		}
	}
	// The run-open row anchors the run's virtual/relative time axis to
	// a wall-clock instant, for humans listing runs later.
	if err := db.writeRow(Row{
		Run: run, Table: "run", Kind: "open",
		Data: json.RawMessage(fmt.Sprintf(`{"started":%q}`, time.Now().UTC().Format(time.RFC3339))),
	}); err != nil {
		f.Close()
		return nil, err
	}
	if err := db.flush(); err != nil {
		f.Close()
		return nil, err
	}
	go db.writer()
	return db, nil
}

// Run returns the run ID rows are written under.
func (db *DB) Run() string { return db.run }

// Path returns the file backing the store.
func (db *DB) Path() string { return db.path }

// PutEvent implements record.Sink: events stream into the event table,
// adaptation decisions into their own. Never blocks; a full queue is
// a counted drop.
func (db *DB) PutEvent(e record.Event) {
	table := TableEvent
	if e.Kind == "decision" {
		table = TableDecision
	}
	db.put(pending{table: table, t: e.Time, kind: e.Kind, job: e.Job, data: e.Data})
}

// PutSample implements record.Sink for registry snapshots.
func (db *DB) PutSample(s record.Sample) {
	db.put(pending{table: TableSample, t: s.Time, data: sampleData{s.Counters, s.Gauges}})
}

// sampleData is the persisted payload of one registry sample.
type sampleData struct {
	Counters map[string]uint64  `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

func (db *DB) put(p pending) {
	select {
	case db.queue <- p:
		db.depth.Set(float64(len(db.queue)))
	default:
		db.dropped.Inc()
	}
}

// Close drains whatever the queue holds, flushes, syncs and closes
// the file. Idempotent; safe to call from both a signal-drain path
// and a deferred natural exit.
func (db *DB) Close() error {
	db.once.Do(func() { close(db.stop) })
	<-db.done
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	return db.closeErr
}

// writer is the single goroutine that owns the file: it drains the
// queue in batches, marshals off the producers' path, and flushes
// once per batch with the flush latency observed.
func (db *DB) writer() {
	defer close(db.done)
	for {
		select {
		case p := <-db.queue:
			db.writeBatch(p)
		case <-db.stop:
			for {
				select {
				case p := <-db.queue:
					db.writeBatch(p)
				default:
					db.closeMu.Lock()
					if err := db.flush(); err != nil {
						db.closeErr = err
					}
					if err := db.f.Close(); err != nil && db.closeErr == nil {
						db.closeErr = err
					}
					db.closeMu.Unlock()
					return
				}
			}
		}
	}
}

// writeBatch writes first plus everything currently queued (bounded),
// then flushes once.
func (db *DB) writeBatch(first pending) {
	start := time.Now()
	db.writePending(first)
drain:
	for i := 0; i < cap(db.queue); i++ {
		select {
		case p := <-db.queue:
			db.writePending(p)
		default:
			break drain
		}
	}
	if err := db.flush(); err != nil {
		db.writeErr.Inc()
	}
	db.depth.Set(float64(len(db.queue)))
	db.flushLat.Observe(time.Since(start).Seconds())
}

func (db *DB) writePending(p pending) {
	row := Row{Run: db.run, Table: p.table, Time: p.t, Kind: p.kind, Job: p.job}
	if p.data != nil {
		raw, err := json.Marshal(p.data)
		if err != nil {
			// The row still lands (time axis intact); the unmarshalable
			// payload is counted, never silently vanished.
			db.writeErr.Inc()
		} else {
			row.Data = raw
		}
	}
	if err := db.writeRow(row); err != nil {
		db.writeErr.Inc()
		return
	}
	db.rows.Inc()
}

func (db *DB) writeRow(row Row) error {
	b, err := json.Marshal(row)
	if err != nil {
		return err
	}
	if _, err := db.w.Write(b); err != nil {
		return err
	}
	return db.w.WriteByte('\n')
}

func (db *DB) flush() error {
	if err := db.w.Flush(); err != nil {
		return err
	}
	return db.f.Sync()
}
