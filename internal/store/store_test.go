package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/record"
)

func tmpDB(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.db")
}

func TestRoundTrip(t *testing.T) {
	path := tmpDB(t)
	reg := obs.NewRegistry()
	db, err := Open(path, "runA", reg)
	if err != nil {
		t.Fatal(err)
	}
	db.PutEvent(record.Event{Time: 1, Kind: "period", Data: map[string]any{"WAE": 0.5, "Nodes": 12}})
	db.PutEvent(record.Event{Time: 2, Kind: "decision", Job: "job-001", Data: map[string]any{"Action": "add"}})
	db.PutEvent(record.Event{Time: 3, Kind: "job-state", Job: "job-001", Data: map[string]any{"to": "running"}})
	db.PutSample(record.Sample{Time: 2.5, Counters: map[string]uint64{"a/b": 7}, Gauges: map[string]float64{"g": 1.5}})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store/rows_written").Value(); got < 4 {
		t.Fatalf("rows_written = %d, want >= 4", got)
	}

	l, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Skipped != 0 {
		t.Fatalf("skipped %d lines on a clean file", l.Skipped)
	}
	if runs := l.Runs(); len(runs) != 1 || runs[0] != "runA" {
		t.Fatalf("runs = %v", runs)
	}
	evs := l.Events("runA", "")
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 (decision must be in its own table): %+v", len(evs), evs)
	}
	if evs[0].Kind != "period" || evs[0].Time != 1 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	ds := l.Decisions("runA", "job-001")
	if len(ds) != 1 || ds[0].Job != "job-001" {
		t.Fatalf("decisions = %+v", ds)
	}
	var act struct{ Action string }
	if err := json.Unmarshal(ds[0].Data, &act); err != nil || act.Action != "add" {
		t.Fatalf("decision payload = %s (%v)", ds[0].Data, err)
	}
	ss := l.Samples("runA")
	if len(ss) != 1 || ss[0].Counters["a/b"] != 7 || ss[0].Gauges["g"] != 1.5 {
		t.Fatalf("samples = %+v", ss)
	}
	if jobs := l.Jobs("runA"); len(jobs) != 1 || jobs[0] != "job-001" {
		t.Fatalf("jobs = %v", jobs)
	}
}

func TestAppendAccumulatesRuns(t *testing.T) {
	path := tmpDB(t)
	for _, run := range []string{"first", "second"} {
		db, err := Open(path, run, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		db.PutEvent(record.Event{Time: 1, Kind: "period"})
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	l, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	runs := l.Runs()
	if len(runs) != 2 || runs[0] != "first" || runs[1] != "second" {
		t.Fatalf("runs = %v", runs)
	}
	if len(l.Events("second", "")) != 1 {
		t.Fatalf("second run's events = %+v", l.Events("second", ""))
	}
}

// A full queue must drop-and-count, never block the producer: the
// recorder's sink calls run inside coordinator observer callbacks.
func TestFullQueueDropsNotBlocks(t *testing.T) {
	path := tmpDB(t)
	reg := obs.NewRegistry()
	db, err := Open(path, "r", reg, Options{QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Close stops the writer; with nobody draining, the second put
	// must take the drop path immediately (a blocked put hangs the
	// test, which is the regression this guards).
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db.PutEvent(record.Event{Time: 1, Kind: "e"})
	db.PutEvent(record.Event{Time: 2, Kind: "e"})
	if got := reg.Counter("store/dropped_rows").Value(); got != 1 {
		t.Fatalf("dropped_rows = %d, want 1", got)
	}
}

func TestTornWriteRecovery(t *testing.T) {
	path := tmpDB(t)
	db, err := Open(path, "r", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	db.PutEvent(record.Event{Time: 1, Kind: "period"})
	db.PutEvent(record.Event{Time: 2, Kind: "period"})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unterminated final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"run":"r","table":"event","t":3,"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the torn tail)", l.Skipped)
	}
	if got := len(l.Events("r", "")); got != 2 {
		t.Fatalf("events after torn write = %d, want 2", got)
	}
}

func TestFromEventsJSONL(t *testing.T) {
	in := `{"kind":"dropped","count":3}
{"t":1,"kind":"period","data":{"WAE":0.4}}
{"t":2,"kind":"decision","job":"j1","data":{"Action":"add"}}
`
	l, err := FromEventsJSONL(strings.NewReader(in), "export")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Events("export", "")) != 1 || len(l.Decisions("export", "j1")) != 1 {
		t.Fatalf("rows = %+v", l.Rows)
	}
}

// The sink write path runs inside the coordinator's observer callback:
// it must stay allocation-bounded and must not marshal JSON inline
// (that happens on the writer goroutine).
func TestPutAllocsBounded(t *testing.T) {
	path := tmpDB(t)
	db, err := Open(path, "r", obs.NewRegistry(), Options{QueueSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ev := record.Event{Time: 1, Kind: "period", Job: "j", Data: map[string]any{"WAE": 0.5}}
	allocs := testing.AllocsPerRun(1000, func() { db.PutEvent(ev) })
	if allocs > 1 {
		t.Fatalf("PutEvent allocates %.1f/op, want <= 1", allocs)
	}
}
