package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/record"
)

// Log is one store file loaded for querying: the read side of the
// datastore. Rows are in file (i.e. write) order.
type Log struct {
	Path    string
	Rows    []Row
	Skipped int // undecodable lines (torn final write, corruption) skipped
}

// ReadLog loads the store at path.
func ReadLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	l, err := ReadLogFrom(f)
	if l != nil {
		l.Path = path
	}
	return l, err
}

// ReadLogFrom loads a store from any reader. Undecodable lines — a
// torn final write after a crash, or corruption — are skipped and
// counted in Skipped rather than failing the whole load: a durable
// history with one bad tail line is still a history.
func ReadLogFrom(rd io.Reader) (*Log, error) {
	l := &Log{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			l.Skipped++
			continue
		}
		if row.Format != "" {
			continue // format header
		}
		l.Rows = append(l.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return l, fmt.Errorf("store: %w", err)
	}
	return l, nil
}

// FromEventsJSONL builds a Log from a recorder's /events JSONL export
// (one record.Event per line, possibly led by a {"kind":"dropped"}
// marker), attributing every row to the given run name — so cmd/replay
// can reconstruct runs from either a store file or a plain export.
func FromEventsJSONL(rd io.Reader, run string) (*Log, error) {
	l := &Log{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Time  float64         `json:"t"`
			Kind  string          `json:"kind"`
			Job   string          `json:"job"`
			Count uint64          `json:"count"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			l.Skipped++
			continue
		}
		if ev.Kind == "dropped" && ev.Data == nil {
			continue // ring-wraparound marker, not an event
		}
		table := TableEvent
		if ev.Kind == "decision" {
			table = TableDecision
		}
		l.Rows = append(l.Rows, Row{
			Run: run, Table: table, Time: ev.Time, Kind: ev.Kind, Job: ev.Job, Data: ev.Data,
		})
	}
	if err := sc.Err(); err != nil {
		return l, fmt.Errorf("store: %w", err)
	}
	return l, nil
}

// Runs lists the run IDs present, in first-seen order.
func (l *Log) Runs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range l.Rows {
		if r.Run != "" && !seen[r.Run] {
			seen[r.Run] = true
			out = append(out, r.Run)
		}
	}
	return out
}

// Jobs lists the job IDs a run's rows are attributed to, in
// first-seen order ("" rows — service-level events — are excluded).
func (l *Log) Jobs(run string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range l.Rows {
		if r.Run == run && r.Job != "" && !seen[r.Job] {
			seen[r.Job] = true
			out = append(out, r.Job)
		}
	}
	return out
}

// Events returns a run's event-table rows in write order. job filters
// to one job's rows; "" returns every event including service-level
// ones.
func (l *Log) Events(run, job string) []Row {
	return l.table(TableEvent, run, job)
}

// Decisions returns a run's adaptation decisions in write order,
// optionally filtered to one job.
func (l *Log) Decisions(run, job string) []Row {
	return l.table(TableDecision, run, job)
}

// Samples returns a run's registry samples, decoded.
func (l *Log) Samples(run string) []record.Sample {
	var out []record.Sample
	for _, r := range l.table(TableSample, run, "") {
		var d sampleData
		if r.Data != nil && json.Unmarshal(r.Data, &d) != nil {
			continue
		}
		out = append(out, record.Sample{Time: r.Time, Counters: d.Counters, Gauges: d.Gauges})
	}
	return out
}

func (l *Log) table(table, run, job string) []Row {
	var out []Row
	for _, r := range l.Rows {
		if r.Table != table || r.Run != run {
			continue
		}
		if job != "" && r.Job != job {
			continue
		}
		out = append(out, r)
	}
	return out
}
