package vtime

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(1, func() { fired = true })
	tm.Cancel()
	if !tm.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if tm.When() != 1 {
		t.Errorf("When() = %v", tm.When())
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	s := New(1)
	a := s.At(1, func() {})
	s.At(2, func() {})
	if n := s.Pending(); n != 2 {
		t.Fatalf("Pending = %d, want 2", n)
	}
	a.Cancel()
	if n := s.Pending(); n != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %v", fired)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("remaining events not fired: %v", fired)
	}
	if s.Now() != 10 {
		t.Errorf("clock should advance to 10 even past last event, got %v", s.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	s := New(1)
	a := s.At(1, func() {})
	fired := false
	s.At(2, func() { fired = true })
	a.Cancel()
	s.RunUntil(2)
	if !fired {
		t.Error("event behind a cancelled head did not fire")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt Run: count = %d", count)
	}
	s.Run() // resumes
	if count != 2 {
		t.Fatalf("second Run did not resume: count = %d", count)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []float64 {
		s := New(seed)
		var out []float64
		var tick func()
		tick = func() {
			out = append(out, float64(s.Now()), s.Rand().Float64())
			if len(out) < 100 {
				s.After(s.Rand().Float64(), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

// Property: for any batch of events with arbitrary times, execution
// order is sorted by time with FIFO tie-break, and the clock ends at
// the max scheduled time.
func TestOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		s := New(1)
		var fired []Time
		for _, raw := range times {
			at := Time(raw % 100)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
