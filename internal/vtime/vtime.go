// Package vtime is a deterministic discrete-event simulation kernel:
// a virtual clock, a cancellable event queue, and a seeded random
// source. All grid experiments run on virtual seconds, so a scenario
// that models hours of DAS-2 time executes in milliseconds and two runs
// with the same seed produce identical traces.
package vtime

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Timer is a handle to a scheduled event; it can be cancelled.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int  // heap index, -1 once popped
	owner     *Sim // for indexed removal on Cancel
}

// Cancel prevents the event from firing and removes it from the queue
// immediately (O(log n)), so cancelled events don't pile up in
// long-running simulations with heavy timer churn. Safe to call
// multiple times and after the event fired (then it is a no-op).
func (t *Timer) Cancel() {
	t.cancelled = true
	if t.owner != nil && t.index >= 0 {
		heap.Remove(&t.owner.events, t.index)
	}
}

// Cancelled reports whether Cancel was called.
func (t *Timer) Cancelled() bool { return t.cancelled }

// When returns the virtual time the event is scheduled for.
func (t *Timer) When() Time { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Sim is the simulation kernel. It is not safe for concurrent use: the
// whole simulation runs single-threaded, which is what makes it
// deterministic.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns a kernel whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the kernel's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Sim) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("vtime: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	ev := &Timer{at: t, seq: s.seq, fn: fn, owner: s}
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn to run d virtual seconds from now (d < 0 panics).
func (s *Sim) After(d float64, fn func()) *Timer {
	return s.At(s.now+Time(d), fn)
}

// Pending returns the number of live scheduled events. Cancelled
// events leave the queue at Cancel time, so this is O(1).
func (s *Sim) Pending() int { return len(s.events) }

// Step executes the next event, advancing the clock. It returns false
// when the queue holds no runnable event.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t (if it is ahead of the last event).
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 {
			break
		}
		// Peek cheapest.
		next := s.events[0]
		if next.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (s *Sim) Stop() { s.stopped = true }
