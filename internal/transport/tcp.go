package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCPHub routes frames between endpoints connected over real sockets,
// in the style of the Ibis registry/hub deployment: every endpoint
// dials the hub, registers its name, and frames are forwarded by name.
// A hub keeps the fabric NAT- and discovery-free, which is exactly why
// the grid middleware the paper builds on used one.
type TCPHub struct {
	ln net.Listener

	mu    sync.Mutex
	conns map[string]*hubConn
	done  bool
}

type hubConn struct {
	c   net.Conn
	enc *gob.Encoder
	mu  sync.Mutex // serialises writes
}

// wire is the on-the-wire frame (registration uses Kind "\x00reg").
type wire struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

const regKind = "\x00reg"

// NewTCPHub starts a hub on addr ("127.0.0.1:0" for an ephemeral port).
func NewTCPHub(addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &TCPHub{ln: ln, conns: make(map[string]*hubConn)}
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address for clients to dial.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Close stops the hub and disconnects everyone.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	h.done = true
	for _, hc := range h.conns {
		hc.c.Close()
	}
	h.conns = map[string]*hubConn{}
	h.mu.Unlock()
	return h.ln.Close()
}

// DropEndpoint abruptly severs the named endpoint's hub connection —
// a connection reset mid-message, not a goodbye. The victim's socket is
// closed with linger disabled so in-flight bytes are discarded, the way
// a crashed process or a stateful firewall kills a long-lived grid
// connection. Returns whether the endpoint was connected.
func (h *TCPHub) DropEndpoint(name string) bool {
	h.mu.Lock()
	hc := h.conns[name]
	delete(h.conns, name)
	h.mu.Unlock()
	if hc == nil {
		return false
	}
	if tc, ok := hc.c.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST instead of FIN
	}
	hc.c.Close()
	return true
}

func (h *TCPHub) acceptLoop() {
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return
		}
		go h.serve(c)
	}
}

func (h *TCPHub) serve(c net.Conn) {
	dec := gob.NewDecoder(c)
	hc := &hubConn{c: c, enc: gob.NewEncoder(c)}
	var name string
	defer func() {
		if name != "" {
			h.mu.Lock()
			if h.conns[name] == hc {
				delete(h.conns, name)
			}
			h.mu.Unlock()
		}
		c.Close()
	}()
	for {
		var w wire
		if err := dec.Decode(&w); err != nil {
			return
		}
		if w.Kind == regKind {
			name = w.From
			h.mu.Lock()
			if h.done {
				h.mu.Unlock()
				return
			}
			h.conns[name] = hc
			h.mu.Unlock()
			continue
		}
		h.mu.Lock()
		dst := h.conns[w.To]
		h.mu.Unlock()
		if dst == nil {
			continue // destination gone: frames are best-effort, like UDP-ish grid links
		}
		dst.mu.Lock()
		err := dst.enc.Encode(&w)
		dst.mu.Unlock()
		if err != nil {
			dst.c.Close()
		}
	}
}

// TCP is the Fabric whose endpoints dial a hub.
type TCP struct {
	addr string
}

// NewTCP returns a fabric for the hub at addr.
func NewTCP(addr string) *TCP { return &TCP{addr: addr} }

// Endpoint implements Fabric: it dials the hub and registers name.
func (t *TCP) Endpoint(name string) (Endpoint, error) {
	c, err := net.Dial("tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing hub: %w", err)
	}
	ep := &tcpEP{
		name: name,
		c:    c,
		enc:  gob.NewEncoder(c),
		dec:  gob.NewDecoder(c),
	}
	if err := ep.write(wire{From: name, Kind: regKind}); err != nil {
		c.Close()
		return nil, err
	}
	go ep.readLoop()
	return ep, nil
}

type tcpEP struct {
	name string
	c    net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	wmu sync.Mutex
	mu  sync.Mutex
	h   Handler

	closed bool
}

func (e *tcpEP) Name() string { return e.name }

func (e *tcpEP) write(w wire) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.enc.Encode(&w)
}

func (e *tcpEP) Send(to, kind string, payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.write(wire{From: e.name, To: to, Kind: kind, Payload: payload})
}

func (e *tcpEP) SetHandler(h Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
}

func (e *tcpEP) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return e.c.Close()
}

func (e *tcpEP) readLoop() {
	for {
		var w wire
		if err := e.dec.Decode(&w); err != nil {
			return
		}
		e.mu.Lock()
		h := e.h
		e.mu.Unlock()
		if h != nil {
			h(Message{From: w.From, To: w.To, Kind: w.Kind, Payload: w.Payload})
		}
	}
}
