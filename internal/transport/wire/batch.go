// Frame coalescing: on busy links many small logical frames (steal
// replies, reports, job results) each pay a fabric submission. With
// batching enabled, a send session accumulates encoded frames and
// flushes them as one ctrlBatch envelope when the batch fills or a
// short window expires — the Gravity-Bridge move of batching many
// logical operations into one wire submission.
//
// The envelope is deliberately thin: a uvarint frame count, then per
// frame its kind string and its length-prefixed payload. Each payload
// is a complete headered frame (epoch + seq + body), so the receiver
// simply replays the envelope through the normal per-frame path: the
// epoch/seq dedup, reorder and poison/reset machinery see exactly the
// frames they would have seen unbatched. A corrupted envelope is a
// counted decode error; the sub-frames it carried become sequence gaps
// the existing gap-timer/reset recovery heals.
package wire

import (
	"encoding/binary"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wirefmt"
)

// BatchConfig tunes frame coalescing on a Conn's outgoing sessions.
// The zero value disables coalescing.
type BatchConfig struct {
	// Window bounds how long a frame may wait for companions.
	Window time.Duration
	// MaxFrames flushes the batch when this many frames are pending.
	MaxFrames int
	// MaxBytes flushes the batch when the envelope reaches this size.
	MaxBytes int
}

func (b BatchConfig) enabled() bool { return b.MaxFrames > 0 }

// WithBatching enables frame coalescing with cfg; zero fields take
// defaults (500µs window, 32 frames, 32 KiB).
func WithBatching(cfg BatchConfig) Option {
	if cfg.Window <= 0 {
		cfg.Window = 500 * time.Microsecond
	}
	if cfg.MaxFrames <= 0 {
		cfg.MaxFrames = 32
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 32 << 10
	}
	return func(c *Conn) { c.batch = cfg }
}

// dispatchLocked routes one fully headered frame to the fabric —
// directly when coalescing is off, through the batch buffer otherwise.
// Caller holds ss.mu.
func (ss *sendSession) dispatchLocked(c *Conn, kind string, p []byte) error {
	cfg := c.batch
	if !cfg.enabled() {
		return c.ep.Send(ss.to, kind, p)
	}
	ss.batchBuf = wirefmt.AppendString(ss.batchBuf, kind)
	ss.batchBuf = wirefmt.AppendBytes(ss.batchBuf, p)
	ss.batchN++
	if ss.batchN >= cfg.MaxFrames || len(ss.batchBuf) >= cfg.MaxBytes {
		return ss.flushLocked(c)
	}
	if ss.batchTimer == nil {
		ss.batchTimer = time.AfterFunc(cfg.Window, func() {
			if c.isClosed() {
				return
			}
			ss.mu.Lock()
			defer ss.mu.Unlock()
			ss.batchTimer = nil
			_ = ss.flushLocked(c)
		})
	}
	return nil
}

// flushLocked sends the accumulated frames as one envelope. A no-op on
// an empty batch, so it is safe from every restart/close path.
func (ss *sendSession) flushLocked(c *Conn) error {
	if ss.batchN == 0 {
		return nil
	}
	if ss.batchTimer != nil {
		ss.batchTimer.Stop()
		ss.batchTimer = nil
	}
	env := make([]byte, 0, binary.MaxVarintLen64+len(ss.batchBuf))
	env = binary.AppendUvarint(env, uint64(ss.batchN))
	env = append(env, ss.batchBuf...)
	ss.batchBuf = ss.batchBuf[:0]
	ss.batchN = 0
	ss.batchesOut.Inc()
	return c.ep.Send(ss.to, ctrlBatch, env)
}

// discardBatchLocked drops coalesced frames without sending them —
// they belong to an epoch being abandoned.
func (ss *sendSession) discardBatchLocked() {
	if ss.batchTimer != nil {
		ss.batchTimer.Stop()
		ss.batchTimer = nil
	}
	ss.batchBuf = ss.batchBuf[:0]
	ss.batchN = 0
}

// handleBatch unpacks one envelope and replays its frames through the
// normal delivery path. Parsing is bounds-checked end to end: a
// corrupted envelope yields at most a prefix of intact frames plus a
// counted decode error, never a panic or an over-read.
func (c *Conn) handleBatch(msg transport.Message) {
	obs.Default.Counter("wire/batches_in/" + pairLabel(msg.From, c.ep.Name())).Inc()
	r := wirefmt.NewReader(msg.Payload)
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		kind := r.String()
		ln := r.Len()
		if r.Err() != nil {
			break
		}
		payload := r.View(ln)
		if kind == "" || strings.HasPrefix(kind, "\x00") {
			// Control kinds must not nest: a batch smuggling a reset (or
			// another batch) is malformed, not a protocol action.
			r.Fail("control kind inside batch envelope")
			break
		}
		c.handle(transport.Message{From: msg.From, Kind: kind, Payload: payload})
	}
	if err := r.Finish(); err != nil {
		obs.Default.Counter("wire/decode_err/" + ctrlBatch).Inc()
		logKindOnce("malformed batch envelope", ctrlBatch, err)
	}
}
