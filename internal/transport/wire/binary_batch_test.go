package wire

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wirefmt"
)

// binEchoMsg is the package's binary-codec guinea pig: registered with
// a wirefmt.Frame implementation, so it bypasses the session gob
// stream.
type binEchoMsg struct {
	ID   string
	N    int64
	Good bool
}

func (m *binEchoMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, m.ID)
	b = wirefmt.AppendVarint(b, m.N)
	b = wirefmt.AppendBool(b, m.Good)
	return b, nil
}

func (m *binEchoMsg) DecodeWire(r *wirefmt.Reader) error {
	m.ID = r.String()
	m.N = r.Varint()
	m.Good = r.Bool()
	return r.Err()
}

func init() { Register[binEchoMsg]("test-bin") }

func TestBinaryKindDetected(t *testing.T) {
	if !isBinaryKind("test-bin") {
		t.Fatal("binEchoMsg registration did not mark the kind binary")
	}
	if isBinaryKind("test-ping") {
		t.Fatal("gob-only kind marked binary")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)

	var mu sync.Mutex
	var got []binEchoMsg
	var meta Meta
	Handle(b, func(m binEchoMsg, mt Meta) {
		mu.Lock()
		got = append(got, m)
		meta = mt
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		if err := Send(a, "b", binEchoMsg{ID: "wörker ✓", N: int64(-i), Good: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "10 binary messages", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 10
	})
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if m.N != int64(-i) || m.ID != "wörker ✓" || m.Good != (i%2 == 0) {
			t.Fatalf("message %d = %+v (order or content wrong)", i, m)
		}
	}
	if meta.From != "a" || meta.Bytes == 0 {
		t.Fatalf("meta = %+v", meta)
	}
}

// A malformed binary frame is stateless: it must be counted and
// skipped without poisoning the session — no desync, no epoch reset,
// and the very next frame flows.
func TestBinaryCorruptFrameSkippedNotPoisoned(t *testing.T) {
	var mu sync.Mutex
	truncateNext := false
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		doIt := truncateNext && kind == "test-bin"
		if doIt {
			truncateNext = false
		}
		mu.Unlock()
		if doIt {
			return send(to, kind, p[:headerLen+1]) // header intact, body gutted
		}
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	var recv []int64
	Handle(b, func(m binEchoMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})

	errBefore := obs.Default.Total("wire/decode_err/")
	desyncBefore := obs.Default.Total("wire/desync/")
	Send(a, "b", binEchoMsg{N: 0, ID: "x"})
	waitFor(t, "first", func() bool { mu.Lock(); defer mu.Unlock(); return len(recv) == 1 })
	mu.Lock()
	truncateNext = true
	mu.Unlock()
	Send(a, "b", binEchoMsg{N: 1, ID: "x"}) // mangled in flight
	Send(a, "b", binEchoMsg{N: 2, ID: "x"}) // must arrive with no reset round trip
	waitFor(t, "frame after corruption", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) == 2 && recv[1] == 2
	})
	if got := obs.Default.Total("wire/decode_err/"); got <= errBefore {
		t.Fatal("corrupted binary frame not counted as decode error")
	}
	if got := obs.Default.Total("wire/desync/"); got != desyncBefore {
		t.Fatal("binary decode error poisoned the session; it must only skip the frame")
	}
}

// With coalescing enabled, N logical frames ride fewer fabric
// submissions, and delivery preserves order and content exactly.
func TestBatchCoalescesAndDeliversInOrder(t *testing.T) {
	var mu sync.Mutex
	var envelopes, plain int
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		if kind == ctrlBatch {
			envelopes++
		} else if kind == "test-bin" || kind == "test-ping" {
			plain++
		}
		mu.Unlock()
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a := New(epA, WithBatching(BatchConfig{Window: time.Hour, MaxFrames: 4}))
	b := New(epB)
	var recv []int64
	Handle(b, func(m binEchoMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})
	Handle(b, func(m pingMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, int64(m.N))
		mu.Unlock()
	})
	// Interleave binary and gob kinds: the batch must preserve FIFO
	// across codecs (they share one seq space per pair).
	for i := 0; i < 8; i++ {
		var err error
		if i%2 == 0 {
			err = Send(a, "b", binEchoMsg{N: int64(i)})
		} else {
			err = Send(a, "b", pingMsg{N: i})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "8 batched deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) == 8
	})
	mu.Lock()
	defer mu.Unlock()
	for i, n := range recv {
		if n != int64(i) {
			t.Fatalf("batched delivery order broken: %v", recv)
		}
	}
	if envelopes != 2 {
		t.Fatalf("8 frames @ MaxFrames=4 rode %d envelopes, want 2", envelopes)
	}
	if plain != 0 {
		t.Fatalf("%d frames bypassed the batch", plain)
	}
}

// The window timer flushes a partial batch; nothing waits forever.
func TestBatchWindowFlushes(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	epA, _ := inner.Endpoint("a")
	epB, _ := inner.Endpoint("b")
	a := New(epA, WithBatching(BatchConfig{Window: 2 * time.Millisecond, MaxFrames: 1000}))
	b := New(epB)
	got := make(chan binEchoMsg, 4)
	Handle(b, func(m binEchoMsg, _ Meta) { got <- m })
	Send(a, "b", binEchoMsg{N: 42})
	select {
	case m := <-got:
		if m.N != 42 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("window flush never happened")
	}
}

// Close flushes the pending batch: frames accepted before Close are
// not silently dropped.
func TestCloseFlushesBatch(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	epA, _ := inner.Endpoint("a")
	epB, _ := inner.Endpoint("b")
	a := New(epA, WithBatching(BatchConfig{Window: time.Hour, MaxFrames: 1000}))
	b := New(epB)
	var mu sync.Mutex
	var recv []int64
	Handle(b, func(m binEchoMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		Send(a, "b", binEchoMsg{N: int64(i)})
	}
	a.Close()
	waitFor(t, "flush on close", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) == 3
	})
}

// A corrupted envelope is a counted protocol error, its frames become
// sequence gaps, and the existing gap-timer/reset machinery restores
// the flow — the batching layer adds no new failure mode.
func TestBatchEnvelopeCorruptionRecovers(t *testing.T) {
	old := gapTimeout
	gapTimeout = 10 * time.Millisecond
	defer func() { gapTimeout = old }()

	var mu sync.Mutex
	corruptNext := false
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		doIt := corruptNext && kind == ctrlBatch
		if doIt {
			corruptNext = false
		}
		mu.Unlock()
		if doIt {
			return send(to, kind, p[:1]) // the count survives, the records do not
		}
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a := New(epA, WithBatching(BatchConfig{Window: time.Millisecond, MaxFrames: 2}))
	b := New(epB)
	var recv []int64
	Handle(b, func(m binEchoMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})

	errBefore := obs.Default.Total("wire/decode_err/")
	Send(a, "b", binEchoMsg{N: 0})
	Send(a, "b", binEchoMsg{N: 1})
	waitFor(t, "first envelope", func() bool { mu.Lock(); defer mu.Unlock(); return len(recv) == 2 })
	mu.Lock()
	corruptNext = true
	mu.Unlock()
	Send(a, "b", binEchoMsg{N: 2}) // this envelope is mangled in flight
	Send(a, "b", binEchoMsg{N: 3})
	waitFor(t, "envelope decode error counted", func() bool {
		return obs.Default.Total("wire/decode_err/") > errBefore
	})
	waitFor(t, "recovery after envelope corruption", func() bool {
		Send(a, "b", binEchoMsg{N: 99})
		mu.Lock()
		defer mu.Unlock()
		return len(recv) > 2 && recv[len(recv)-1] == 99
	})
}

// FuzzBatchEnvelope throws arbitrary bytes at the envelope parser
// through the full delivery path: it must never panic or over-read,
// only deliver intact prefixes and count the rest.
func FuzzBatchEnvelope(f *testing.F) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	ep, _ := inner.Endpoint("fuzz-batch")
	c := New(ep)
	Handle(c, func(m binEchoMsg, _ Meta) {})

	// Seed: a well-formed two-frame envelope.
	frame := func(seq uint64, id string) []byte {
		p, _ := (&binEchoMsg{ID: id, N: 7}).AppendWire(make([]byte, headerLen))
		p[11] = byte(seq)
		return p
	}
	var env []byte
	env = wirefmt.AppendUvarint(env, 2)
	env = wirefmt.AppendString(env, "test-bin")
	env = wirefmt.AppendBytes(env, frame(0, "a"))
	env = wirefmt.AppendString(env, "test-bin")
	env = wirefmt.AppendBytes(env, frame(1, "b"))
	f.Add(env)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(wirefmt.AppendString(wirefmt.AppendUvarint(nil, 1), "\x00wire-reset"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c.handleBatch(transport.Message{From: "peer", Kind: ctrlBatch, Payload: data})
	})
}

// FuzzBinaryFrameDecode drives the registered binary handler path over
// arbitrary frame bodies: malformed bodies must error cleanly through
// the skip-and-count path, never panic.
func FuzzBinaryFrameDecode(f *testing.F) {
	good, _ := (&binEchoMsg{ID: "héllo", N: -5, Good: true}).AppendWire(nil)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x05, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m binEchoMsg
		r := wirefmt.NewReader(data)
		if err := m.DecodeWire(&r); err == nil {
			_ = r.Finish()
		}
		if r.Remaining() < 0 {
			t.Fatal("over-read")
		}
	})
}

// The wire round trip alloc ceiling (ISSUE 7): sending a binary
// control frame must stay allocation-lean. The ceiling is generous —
// it guards against regressions back to per-frame codec construction
// (which costs dozens), not against single-alloc noise.
func TestBinarySendAllocCeiling(t *testing.T) {
	inner := transport.NewInProc(nil)
	defer inner.Close()
	epA, _ := inner.Endpoint("a")
	epB, _ := inner.Endpoint("b")
	a, b := New(epA), New(epB)
	var n uint64
	var mu sync.Mutex
	Handle(b, func(m binEchoMsg, _ Meta) { mu.Lock(); n++; mu.Unlock() })
	msg := binEchoMsg{ID: "node/03", N: 12345, Good: true}
	Send(a, "b", msg) // warm the session and counters
	allocs := testing.AllocsPerRun(200, func() {
		if err := Send(a, "b", msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("binary Send allocates %.1f/op, ceiling 8", allocs)
	}
	waitFor(t, "deliveries drain", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return n >= 200
	})
}
