// Package wire is the typed, instrumented messaging layer on top of
// transport: the part of the Ibis stand-in that every protocol in the
// repository (satin's steal/result traffic, the registry, the
// adaptation report path) speaks instead of hand-rolling `switch
// msg.Kind` dispatch and a fresh gob codec per message.
//
// Three ideas:
//
//   - a frame registry: Register[T]("kind") once per message type, then
//     Send(conn, to, v) and Handle(conn, func(T, Meta)) are type-safe —
//     the kind string never appears at call sites again;
//   - session codecs: each directed endpoint pair shares one streaming
//     gob encoder/decoder, so type descriptors cross the link once per
//     session instead of once per message, and the per-message cost is
//     one small buffer reset instead of a fresh encoder + allocation.
//     Sessions carry an (epoch, seq) header; duplicated frames are
//     discarded by sequence number, reordered frames are buffered back
//     into order, and an unfillable gap (loss, partition, a rejoined
//     endpoint) triggers an epoch reset handshake that restarts the
//     stream instead of silently corrupting it;
//   - observability: every frame, byte, duplicate, stale frame and
//     decode error is counted in internal/obs, per message kind and per
//     directed cluster pair. A malformed frame is a counted, once-logged
//     protocol error — never a silent drop.
//
// Layering: obs depends on nothing; wire feeds obs; chaos and the
// binaries read obs. wire depends only on transport and obs.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"reflect"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wirefmt"
)

// ---- frame registry ----

var (
	regMu      sync.RWMutex
	kindByType = make(map[reflect.Type]string)
	typeByKind = make(map[string]reflect.Type)
	binByKind  = make(map[string]bool)
)

// frameType is the binary-codec marker interface: a registered type
// whose pointer implements wirefmt.Frame bypasses the session gob
// stream and encodes with the hand-rolled binary codec.
var frameType = reflect.TypeOf((*wirefmt.Frame)(nil)).Elem()

// Register associates a message type with its frame kind. Call once
// per type, at package init. Re-registering the identical pair is a
// no-op (several packages may share a kind, e.g. "report"); conflicts
// panic immediately — they are wiring bugs.
func Register[T any](kind string) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	if kind == "" || strings.HasPrefix(kind, "\x00") {
		panic(fmt.Sprintf("wire: invalid kind %q for %v", kind, t))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := typeByKind[kind]; ok {
		if prev == t {
			return
		}
		panic(fmt.Sprintf("wire: kind %q registered for both %v and %v", kind, prev, t))
	}
	if prev, ok := kindByType[t]; ok {
		panic(fmt.Sprintf("wire: type %v registered for both kinds %q and %q", t, prev, kind))
	}
	typeByKind[kind] = t
	kindByType[t] = kind
	binByKind[kind] = reflect.PointerTo(t).Implements(frameType)
}

func kindOf(t reflect.Type) (kind string, bin, ok bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	k, ok := kindByType[t]
	return k, binByKind[k], ok
}

func isBinaryKind(kind string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	return binByKind[kind]
}

// ---- frame format ----

// Each frame payload is a 12-byte header (epoch uint32, seq uint64,
// big endian) followed by the session stream's delta bytes for exactly
// one encoded value. ctrlReset frames carry the 4-byte epoch the
// receiver wants abandoned.
const headerLen = 12

// ctrlReset is the reserved control kind of the epoch-reset handshake;
// ctrlBatch carries a coalesced envelope of logical frames (batch.go).
const (
	ctrlReset = "\x00wire-reset"
	ctrlBatch = "\x00wire-batch"
)

// gapTimeout bounds how long a receive session waits for a reordered
// frame to fill a sequence gap before declaring the stream broken and
// requesting a fresh epoch. It must stay well below registry failure
// timeouts, or a lost frame could stall heartbeats long enough to look
// like a death. Variable for tests.
var gapTimeout = 100 * time.Millisecond

// maxPending bounds the receive-side reorder buffer per session.
const maxPending = 256

// Meta describes a delivered frame to its handler.
type Meta struct {
	// From is the sending endpoint's name.
	From string
	// Bytes is the frame's payload size on the wire (header included).
	Bytes int
}

// clusterLabel maps an endpoint name to its cluster for the per-pair
// counters, following the runtime's naming convention
// ("satin:fs0/03" → "fs0"); infrastructure endpoints map to "-".
func clusterLabel(ep string) string {
	if i := strings.IndexByte(ep, ':'); i >= 0 {
		ep = ep[i+1:]
	}
	if i := strings.IndexByte(ep, '/'); i >= 0 {
		return ep[:i]
	}
	return "-"
}

func pairLabel(from, to string) string {
	return clusterLabel(from) + ">" + clusterLabel(to)
}

// kindCounters caches the per-kind obs counters a session touches on
// its hot path, so steady-state counting is a map read plus an atomic.
type kindCounters struct {
	frames, bytes *obs.Counter
}

func newKindCounters(dir, kind string) *kindCounters {
	return &kindCounters{
		frames: obs.Default.Counter("wire/frames_" + dir + "/" + kind),
		bytes:  obs.Default.Counter("wire/bytes_" + dir + "/" + kind),
	}
}

// logOnce ensures each (problem, kind) pair is logged a single time per
// process; after that the obs counters carry the signal.
var logOnce sync.Map

func logKindOnce(problem, kind string, err error) {
	key := problem + "/" + kind
	if _, loaded := logOnce.LoadOrStore(key, struct{}{}); !loaded {
		if err != nil {
			log.Printf("wire: %s on kind %q: %v (counted in obs, logged once)", problem, kind, err)
		} else {
			log.Printf("wire: %s on kind %q (counted in obs, logged once)", problem, kind)
		}
	}
}

// ---- connection ----

// Conn wraps one transport endpoint with typed dispatch and session
// codecs. Create with New, register handlers with Handle, send with
// Send. Handlers run on the fabric's delivery goroutines, in per-pair
// order, and may call Send.
type Conn struct {
	ep    transport.Endpoint
	batch BatchConfig // zero = coalescing off

	mu       sync.RWMutex
	handlers map[string]handlerFunc
	sends    map[string]*sendSession
	recvs    map[string]*recvSession
	closed   bool
}

// handlerFunc dispatches one in-order frame. Binary-codec kinds decode
// from data; session-gob kinds decode from dec (fed with data by the
// caller).
type handlerFunc func(data []byte, dec *gob.Decoder, m Meta) error

// Option configures a Conn at New time.
type Option func(*Conn)

// New wraps ep, installing its delivery handler. The caller must not
// call ep.SetHandler afterwards.
func New(ep transport.Endpoint, opts ...Option) *Conn {
	c := &Conn{
		ep:       ep,
		handlers: make(map[string]handlerFunc),
		sends:    make(map[string]*sendSession),
		recvs:    make(map[string]*recvSession),
	}
	for _, o := range opts {
		o(c)
	}
	ep.SetHandler(c.handle)
	return c
}

// Name returns the underlying endpoint's name.
func (c *Conn) Name() string { return c.ep.Name() }

// Close flushes pending frame batches, detaches the endpoint and stops
// the sessions' timers.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	recvs := make([]*recvSession, 0, len(c.recvs))
	for _, rs := range c.recvs {
		recvs = append(recvs, rs)
	}
	sends := make([]*sendSession, 0, len(c.sends))
	for _, ss := range c.sends {
		sends = append(sends, ss)
	}
	c.mu.Unlock()
	for _, ss := range sends {
		ss.mu.Lock()
		ss.flushLocked(c) // best effort; the endpoint may already refuse
		ss.mu.Unlock()
	}
	for _, rs := range recvs {
		rs.mu.Lock()
		if rs.gapTimer != nil {
			rs.gapTimer.Stop()
			rs.gapTimer = nil
		}
		rs.mu.Unlock()
	}
	return c.ep.Close()
}

// Handle registers the typed handler for T's kind. One handler per
// kind per Conn; T must have been Registered.
func Handle[T any](c *Conn, h func(T, Meta)) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	kind, isBin, ok := kindOf(t)
	if !ok {
		panic(fmt.Sprintf("wire: Handle of unregistered type %v", t))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.handlers[kind]; dup {
		panic(fmt.Sprintf("wire: duplicate handler for kind %q on %s", kind, c.ep.Name()))
	}
	if isBin {
		c.handlers[kind] = func(data []byte, _ *gob.Decoder, m Meta) error {
			var v T
			r := wirefmt.NewReader(data)
			if err := any(&v).(wirefmt.Frame).DecodeWire(&r); err != nil {
				return err
			}
			if err := r.Finish(); err != nil {
				return err
			}
			h(v, m)
			return nil
		}
		return
	}
	c.handlers[kind] = func(_ []byte, dec *gob.Decoder, m Meta) error {
		var v T
		if err := dec.Decode(&v); err != nil {
			return err
		}
		h(v, m)
		return nil
	}
}

// Send encodes v on the session to the destination endpoint and sends
// it as one frame. An encoding failure (an unregistered concrete type
// inside an interface field) restarts the session stream and returns
// the error; the caller can then send a fallback message safely.
func Send[T any](c *Conn, to string, v T) error {
	t := reflect.TypeOf((*T)(nil)).Elem()
	kind, isBin, ok := kindOf(t)
	if !ok {
		return fmt.Errorf("wire: send of unregistered type %v", t)
	}
	ss := c.sendSession(to)
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var p []byte
	if isBin {
		var err error
		p, err = any(&v).(wirefmt.Frame).AppendWire(make([]byte, headerLen, headerLen+64))
		if err != nil {
			// Binary frames are stateless: nothing half-written crossed
			// the stream, so the session does not restart.
			obs.Default.Counter("wire/encode_err/" + kind).Inc()
			logKindOnce("encode error", kind, err)
			return fmt.Errorf("wire: encode %q: %w", kind, err)
		}
	} else {
		ss.buf.Reset()
		if err := ss.enc.Encode(v); err != nil {
			// The encoder may have half-written descriptors it now believes
			// the receiver has: the stream is unusable. Flush frames already
			// coalesced (they encode against the epoch being abandoned, and
			// must leave before the receiver adopts the new one), then
			// restart under a fresh epoch.
			_ = ss.flushLocked(c)
			ss.restartLocked()
			obs.Default.Counter("wire/encode_err/" + kind).Inc()
			logKindOnce("encode error", kind, err)
			return fmt.Errorf("wire: encode %q: %w", kind, err)
		}
		delta := ss.buf.Bytes()
		p = make([]byte, headerLen+len(delta))
		copy(p[headerLen:], delta)
	}
	binary.BigEndian.PutUint32(p[0:4], ss.epoch)
	binary.BigEndian.PutUint64(p[4:12], ss.seq)
	ss.seq++
	kc := ss.kindC[kind]
	if kc == nil {
		kc = newKindCounters("out", kind)
		ss.kindC[kind] = kc
	}
	kc.frames.Inc()
	kc.bytes.Add(uint64(len(p)))
	ss.pairFrames.Inc()
	ss.pairBytes.Add(uint64(len(p)))
	// Dispatch under the session lock: the fabric's per-pair FIFO must
	// see frames in sequence order.
	if err := ss.dispatchLocked(c, kind, p); err != nil {
		// The frame never left (endpoint gone, fabric refused) but its
		// sequence number — and, for gob kinds, encoder state the
		// receiver will never see — is already spent. Without a restart
		// the next successful send would open a permanent gap and be
		// discarded as stale after Send reported success. A fresh epoch
		// makes the next send self-contained; the receiver adopts it on
		// arrival.
		ss.restartLocked()
		obs.Default.Counter("wire/send_err/" + kind).Inc()
		return err
	}
	return nil
}

// ---- send sessions ----

type sendSession struct {
	mu    sync.Mutex
	to    string
	epoch uint32
	seq   uint64
	buf   byteBuffer
	enc   *gob.Encoder

	// coalescing state (batch.go); idle when the Conn has no BatchConfig
	batchBuf   []byte
	batchN     int
	batchTimer *time.Timer
	batchesOut *obs.Counter

	kindC                 map[string]*kindCounters
	pairFrames, pairBytes *obs.Counter
}

func (c *Conn) sendSession(to string) *sendSession {
	c.mu.RLock()
	ss, ok := c.sends[to]
	c.mu.RUnlock()
	if ok {
		return ss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ss, ok := c.sends[to]; ok {
		return ss
	}
	pair := pairLabel(c.ep.Name(), to)
	ss = &sendSession{
		to:         to,
		kindC:      make(map[string]*kindCounters),
		batchesOut: obs.Default.Counter("wire/batches_out/" + pair),
		pairFrames: obs.Default.Counter("wire/pair_frames_out/" + pair),
		pairBytes:  obs.Default.Counter("wire/pair_bytes_out/" + pair),
	}
	ss.enc = gob.NewEncoder(&ss.buf)
	c.sends[to] = ss
	return ss
}

// restartLocked begins a fresh stream under the next epoch. Frames
// still coalesced in the batch buffer encode against the abandoned
// epoch and would arrive stale; they are discarded, exactly as
// in-flight frames of the old epoch are.
func (ss *sendSession) restartLocked() {
	ss.epoch++
	ss.seq = 0
	ss.buf.Reset()
	ss.enc = gob.NewEncoder(&ss.buf)
	ss.discardBatchLocked()
}

// ---- receive sessions ----

type pframe struct {
	kind string
	data []byte
	size int
}

type recvSession struct {
	mu       sync.Mutex
	epoch    uint32
	next     uint64
	started  bool // decoded at least one frame of this epoch
	poisoned bool // stream broken; waiting for a fresh epoch
	lastReq  time.Time
	dec      *gob.Decoder
	feed     byteFeed
	pending  map[uint64]pframe
	gapTimer *time.Timer

	kindC                 map[string]*kindCounters
	pairFrames, pairBytes *obs.Counter
}

func (c *Conn) recvSession(from string) *recvSession {
	c.mu.RLock()
	rs, ok := c.recvs[from]
	c.mu.RUnlock()
	if ok {
		return rs
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rs, ok := c.recvs[from]; ok {
		return rs
	}
	pair := pairLabel(from, c.ep.Name())
	rs = &recvSession{
		pending:    make(map[uint64]pframe),
		kindC:      make(map[string]*kindCounters),
		pairFrames: obs.Default.Counter("wire/pair_frames_in/" + pair),
		pairBytes:  obs.Default.Counter("wire/pair_bytes_in/" + pair),
	}
	rs.dec = gob.NewDecoder(&rs.feed)
	c.recvs[from] = rs
	return rs
}

func (c *Conn) handler(kind string) (handlerFunc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.handlers[kind]
	return h, ok
}

func (c *Conn) isClosed() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.closed
}

// handle is the transport delivery callback: session bookkeeping, then
// typed dispatch of in-order frames.
func (c *Conn) handle(msg transport.Message) {
	if c.isClosed() {
		return
	}
	if msg.Kind == ctrlReset {
		c.handleReset(msg)
		return
	}
	if msg.Kind == ctrlBatch {
		c.handleBatch(msg)
		return
	}
	if len(msg.Payload) < headerLen {
		obs.Default.Counter("wire/decode_err/" + msg.Kind).Inc()
		logKindOnce("truncated frame", msg.Kind, nil)
		return
	}
	epoch := binary.BigEndian.Uint32(msg.Payload[0:4])
	seq := binary.BigEndian.Uint64(msg.Payload[4:12])
	data := msg.Payload[headerLen:]

	rs := c.recvSession(msg.From)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.pairFrames.Inc()
	rs.pairBytes.Add(uint64(len(msg.Payload)))
	kc := rs.kindC[msg.Kind]
	if kc == nil {
		kc = newKindCounters("in", msg.Kind)
		rs.kindC[msg.Kind] = kc
	}
	kc.frames.Inc()
	kc.bytes.Add(uint64(len(msg.Payload)))

	switch {
	case epoch < rs.epoch:
		// A frame of an abandoned stream arriving late (reorder across
		// a reset): its bytes are undecodable without the old stream.
		obs.Default.Counter("wire/stale/" + msg.Kind).Inc()
		return
	case epoch > rs.epoch:
		// The sender restarted the stream: adopt the new epoch, drop
		// whatever the old one still had buffered.
		c.adoptEpochLocked(rs, epoch)
	}
	if rs.poisoned {
		obs.Default.Counter("wire/stale/" + msg.Kind).Inc()
		// The reset request may itself have been lost (partition):
		// re-ask while broken frames keep arriving.
		c.maybeRequestResetLocked(rs, msg.From)
		return
	}
	switch {
	case seq < rs.next:
		// Already processed: a transport-level duplicate.
		obs.Default.Counter("wire/dup/" + msg.Kind).Inc()
		return
	case seq > rs.next:
		if _, dup := rs.pending[seq]; dup {
			obs.Default.Counter("wire/dup/" + msg.Kind).Inc()
			return
		}
		if len(rs.pending) >= maxPending {
			c.poisonLocked(rs, msg.From, "reorder buffer overflow")
			return
		}
		rs.pending[seq] = pframe{kind: msg.Kind, data: data, size: len(msg.Payload)}
		c.armGapTimerLocked(rs, msg.From)
		return
	}
	// In sequence: decode, then drain whatever the gap was holding back.
	c.deliverLocked(rs, msg.From, msg.Kind, data, len(msg.Payload))
	for !rs.poisoned {
		pf, ok := rs.pending[rs.next]
		if !ok {
			break
		}
		delete(rs.pending, rs.next)
		c.deliverLocked(rs, msg.From, pf.kind, pf.data, pf.size)
	}
	if len(rs.pending) == 0 && rs.gapTimer != nil {
		rs.gapTimer.Stop()
		rs.gapTimer = nil
	}
}

// deliverLocked dispatches one in-sequence frame. Binary-codec kinds
// decode statelessly: a malformed frame is counted and skipped, and the
// stream continues. Gob kinds feed the session stream decoder, where
// any failure poisons the session: a gob stream cannot be
// resynchronised mid-flight, only restarted.
func (c *Conn) deliverLocked(rs *recvSession, from, kind string, data []byte, size int) {
	h, ok := c.handler(kind)
	if !ok {
		obs.Default.Counter("wire/unknown_kind/" + kind).Inc()
		logKindOnce("no handler", kind, nil)
		c.poisonLocked(rs, from, "unknown kind")
		return
	}
	if isBinaryKind(kind) {
		if err := h(data, nil, Meta{From: from, Bytes: size}); err != nil {
			obs.Default.Counter("wire/decode_err/" + kind).Inc()
			logKindOnce("decode error", kind, err)
			rs.next++ // the frame consumed its slot; later frames are intact
			return
		}
		rs.next++
		rs.started = true
		return
	}
	rs.feed.set(data)
	err := h(nil, rs.dec, Meta{From: from, Bytes: size})
	if err == nil && rs.feed.len() > 0 {
		err = fmt.Errorf("%d trailing bytes after value", rs.feed.len())
	}
	if err != nil {
		obs.Default.Counter("wire/decode_err/" + kind).Inc()
		logKindOnce("decode error", kind, err)
		c.poisonLocked(rs, from, "decode error")
		return
	}
	rs.next++
	rs.started = true
}

// poisonLocked marks the stream broken, discards the reorder buffer
// (those frames depend on bytes that will never decode) and asks the
// sender for a fresh epoch.
func (c *Conn) poisonLocked(rs *recvSession, from, why string) {
	if !rs.poisoned {
		obs.Default.Counter("wire/desync/" + pairLabel(from, c.ep.Name())).Inc()
		logKindOnce("session desync ("+why+") from "+from, "session", nil)
	}
	rs.poisoned = true
	for seq, pf := range rs.pending {
		obs.Default.Counter("wire/stale/" + pf.kind).Inc()
		delete(rs.pending, seq)
	}
	if rs.gapTimer != nil {
		rs.gapTimer.Stop()
		rs.gapTimer = nil
	}
	rs.lastReq = time.Time{} // force an immediate request
	c.maybeRequestResetLocked(rs, from)
}

// adoptEpochLocked switches the session to a fresh stream.
func (c *Conn) adoptEpochLocked(rs *recvSession, epoch uint32) {
	for seq, pf := range rs.pending {
		obs.Default.Counter("wire/stale/" + pf.kind).Inc()
		delete(rs.pending, seq)
	}
	if rs.gapTimer != nil {
		rs.gapTimer.Stop()
		rs.gapTimer = nil
	}
	rs.epoch = epoch
	rs.next = 0
	rs.started = false
	rs.poisoned = false
	rs.dec = gob.NewDecoder(&rs.feed)
	rs.feed.set(nil)
}

// maybeRequestResetLocked sends the epoch-reset control frame, rate
// limited so a flood of stale frames does not become a flood of
// control traffic.
func (c *Conn) maybeRequestResetLocked(rs *recvSession, from string) {
	now := time.Now()
	if !rs.lastReq.IsZero() && now.Sub(rs.lastReq) < gapTimeout {
		return
	}
	rs.lastReq = now
	p := make([]byte, 4)
	binary.BigEndian.PutUint32(p, rs.epoch)
	obs.Default.Counter("wire/reset_req/" + pairLabel(from, c.ep.Name())).Inc()
	_ = c.ep.Send(from, ctrlReset, p) // sender may be gone; that is fine
}

// armGapTimerLocked starts the bounded wait for a reordered frame to
// fill the sequence gap; if the gap is still open when it fires, the
// frame was lost and the stream must restart.
func (c *Conn) armGapTimerLocked(rs *recvSession, from string) {
	if rs.gapTimer != nil {
		return
	}
	epoch, next := rs.epoch, rs.next
	rs.gapTimer = time.AfterFunc(gapTimeout, func() {
		if c.isClosed() {
			return
		}
		rs.mu.Lock()
		defer rs.mu.Unlock()
		rs.gapTimer = nil
		if rs.epoch == epoch && rs.next == next && len(rs.pending) > 0 && !rs.poisoned {
			c.poisonLocked(rs, from, "sequence gap")
		}
	})
}

// handleReset restarts the send session the peer declared broken.
func (c *Conn) handleReset(msg transport.Message) {
	if len(msg.Payload) != 4 {
		return
	}
	abandoned := binary.BigEndian.Uint32(msg.Payload)
	c.mu.RLock()
	ss, ok := c.sends[msg.From]
	c.mu.RUnlock()
	if !ok {
		return // never sent to them; nothing to reset
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.epoch > abandoned {
		return // already restarted past the abandoned epoch
	}
	ss.epoch = abandoned
	ss.restartLocked()
	obs.Default.Counter("wire/reset/" + pairLabel(c.ep.Name(), msg.From)).Inc()
}

// ---- small io plumbing ----

// byteBuffer is a minimal append-only buffer for the send stream (a
// bytes.Buffer would work; this keeps Reset/Bytes allocation-free and
// under our eyes).
type byteBuffer struct {
	b []byte
}

func (w *byteBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *byteBuffer) Reset()        { w.b = w.b[:0] }
func (w *byteBuffer) Bytes() []byte { return w.b }

// byteFeed hands the stream decoder exactly one frame's bytes. It
// implements io.ByteReader so gob does not wrap it in a bufio.Reader
// (which would read ahead across frame boundaries).
type byteFeed struct {
	b []byte
}

func (f *byteFeed) set(b []byte) { f.b = b }
func (f *byteFeed) len() int     { return len(f.b) }

func (f *byteFeed) Read(p []byte) (int, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.b)
	f.b = f.b[n:]
	return n, nil
}

func (f *byteFeed) ReadByte() (byte, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	c := f.b[0]
	f.b = f.b[1:]
	return c, nil
}
