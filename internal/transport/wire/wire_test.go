package wire

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// test message types, registered once for the whole package test run.
type pingMsg struct {
	N    int
	Note string
}

type pongMsg struct {
	N int
}

func init() {
	Register[pingMsg]("test-ping")
	Register[pongMsg]("test-pong")
}

// interceptFabric lets a test rewrite, duplicate, reorder or corrupt
// frames between wire endpoints.
type interceptFabric struct {
	inner     transport.Fabric
	intercept func(send func(to, kind string, payload []byte) error, to, kind string, payload []byte) error
}

func (f *interceptFabric) Endpoint(name string) (transport.Endpoint, error) {
	ep, err := f.inner.Endpoint(name)
	if err != nil {
		return nil, err
	}
	return &interceptEP{f: f, inner: ep}, nil
}

type interceptEP struct {
	f     *interceptFabric
	inner transport.Endpoint
}

func (e *interceptEP) Name() string                   { return e.inner.Name() }
func (e *interceptEP) SetHandler(h transport.Handler) { e.inner.SetHandler(h) }
func (e *interceptEP) Close() error                   { return e.inner.Close() }
func (e *interceptEP) Send(to, kind string, payload []byte) error {
	if e.f.intercept != nil {
		return e.f.intercept(e.inner.Send, to, kind, payload)
	}
	return e.inner.Send(to, kind, payload)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTypedRoundTrip(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)

	var mu sync.Mutex
	var got []pingMsg
	var from string
	Handle(b, func(m pingMsg, meta Meta) {
		mu.Lock()
		got = append(got, m)
		from = meta.From
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		if err := Send(a, "b", pingMsg{N: i, Note: "hello"}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "10 messages", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 10
	})
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if m.N != i || m.Note != "hello" {
			t.Fatalf("message %d = %+v (order or content wrong)", i, m)
		}
	}
	if from != "a" {
		t.Fatalf("meta.From = %q, want a", from)
	}
}

// The session codec's whole point: after the first frame carried the
// type descriptors, later frames are only the value bytes.
func TestSessionFramesShrinkAfterFirst(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		if kind == "test-ping" {
			mu.Lock()
			sizes = append(sizes, len(p))
			mu.Unlock()
		}
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	done := make(chan struct{}, 16)
	Handle(b, func(m pingMsg, _ Meta) { done <- struct{}{} })
	for i := 0; i < 3; i++ {
		if err := Send(a, "b", pingMsg{N: i, Note: "x"}); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 3 {
		t.Fatalf("saw %d frames, want 3", len(sizes))
	}
	if sizes[1] >= sizes[0] || sizes[2] >= sizes[0] {
		t.Fatalf("later frames not smaller than the descriptor-carrying first: %v", sizes)
	}
}

// A corrupted frame must be a counted, visible protocol error — and
// the stream must recover via the epoch reset handshake.
func TestCorruptFrameCountedAndRecovered(t *testing.T) {
	old := gapTimeout
	gapTimeout = 10 * time.Millisecond
	defer func() { gapTimeout = old }()

	var mu sync.Mutex
	corruptNext := false
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		doIt := corruptNext && kind == "test-ping"
		corruptNext = corruptNext && !doIt
		mu.Unlock()
		if doIt {
			q := append([]byte(nil), p...)
			q[len(q)-1] ^= 0xFF // flip a byte in the gob body
			return send(to, kind, q)
		}
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	var recv []int
	Handle(b, func(m pingMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})

	errBefore := obs.Default.Total("wire/decode_err/")
	if err := Send(a, "b", pingMsg{N: 0}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first message", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) == 1
	})
	mu.Lock()
	corruptNext = true
	mu.Unlock()
	if err := Send(a, "b", pingMsg{N: 1}); err != nil {
		t.Fatal(err) // corrupted in flight, not at encode time
	}
	waitFor(t, "decode error counted", func() bool {
		return obs.Default.Total("wire/decode_err/") > errBefore
	})
	// The session is now poisoned; further sends trigger the reset
	// handshake and must get through on the fresh epoch.
	waitFor(t, "recovery after corruption", func() bool {
		Send(a, "b", pingMsg{N: 2})
		mu.Lock()
		defer mu.Unlock()
		return len(recv) >= 2 && recv[len(recv)-1] == 2
	})
	mu.Lock()
	defer mu.Unlock()
	for _, n := range recv {
		if n == 1 {
			t.Fatal("corrupted frame was delivered")
		}
	}
}

// Transport-level duplicates are discarded by sequence number and
// accounted for.
func TestDuplicateFrameDiscardedAndCounted(t *testing.T) {
	var mu sync.Mutex
	dupAll := false
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		d := dupAll && kind == "test-ping"
		mu.Unlock()
		err := send(to, kind, p)
		if d {
			send(to, kind, p)
		}
		return err
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	var recv []int
	Handle(b, func(m pingMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})
	dupBefore := obs.Default.Total("wire/dup/")
	mu.Lock()
	dupAll = true
	mu.Unlock()
	for i := 0; i < 5; i++ {
		if err := Send(a, "b", pingMsg{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "5 deliveries and dup accounting", func() bool {
		mu.Lock()
		n := len(recv)
		mu.Unlock()
		return n == 5 && obs.Default.Total("wire/dup/") >= dupBefore+5
	})
	time.Sleep(20 * time.Millisecond) // a late duplicate must not slip in
	mu.Lock()
	defer mu.Unlock()
	if len(recv) != 5 {
		t.Fatalf("duplicates delivered: got %v", recv)
	}
	for i, n := range recv {
		if n != i {
			t.Fatalf("order broken: %v", recv)
		}
	}
}

// Reordered frames are buffered back into sequence: the handler sees
// them in send order.
func TestReorderedFramesDeliveredInOrder(t *testing.T) {
	var mu sync.Mutex
	var held []func()
	holdOne := false
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if holdOne && kind == "test-ping" {
			holdOne = false
			held = append(held, func() { send(to, kind, p) })
			return nil
		}
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	var recv []int
	Handle(b, func(m pingMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})
	Send(a, "b", pingMsg{N: 0})
	waitFor(t, "first", func() bool { mu.Lock(); defer mu.Unlock(); return len(recv) == 1 })
	mu.Lock()
	holdOne = true
	mu.Unlock()
	Send(a, "b", pingMsg{N: 1}) // held back
	Send(a, "b", pingMsg{N: 2}) // arrives first → buffered by receiver
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	if len(recv) != 1 {
		mu.Unlock()
		t.Fatalf("out-of-order frame delivered early: %v", recv)
	}
	release := held[0]
	held = nil
	mu.Unlock()
	release() // gap fills; both deliver in order
	waitFor(t, "in-order drain", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) == 3
	})
	mu.Lock()
	defer mu.Unlock()
	for i, n := range recv {
		if n != i {
			t.Fatalf("delivery order broken: %v", recv)
		}
	}
}

// A frame genuinely lost mid-stream (not just reordered) must not
// stall the link forever: the gap timer declares desync and the epoch
// reset restores the flow.
func TestLostFrameRecoversViaReset(t *testing.T) {
	old := gapTimeout
	gapTimeout = 10 * time.Millisecond
	defer func() { gapTimeout = old }()

	var mu sync.Mutex
	dropNext := false
	inner := transport.NewInProc(nil)
	defer inner.Close()
	f := &interceptFabric{inner: inner}
	f.intercept = func(send func(string, string, []byte) error, to, kind string, p []byte) error {
		mu.Lock()
		d := dropNext && kind == "test-ping"
		if d {
			dropNext = false
		}
		mu.Unlock()
		if d {
			return nil
		}
		return send(to, kind, p)
	}
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	var recv []int
	Handle(b, func(m pingMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})
	Send(a, "b", pingMsg{N: 0})
	waitFor(t, "first", func() bool { mu.Lock(); defer mu.Unlock(); return len(recv) == 1 })
	mu.Lock()
	dropNext = true
	mu.Unlock()
	Send(a, "b", pingMsg{N: 1}) // eaten
	Send(a, "b", pingMsg{N: 2}) // opens a gap that never fills
	waitFor(t, "recovery after loss", func() bool {
		Send(a, "b", pingMsg{N: 3})
		mu.Lock()
		defer mu.Unlock()
		return len(recv) >= 2 && recv[len(recv)-1] == 3
	})
}

// A receiver that restarts mid-stream (a rejoined endpoint) resyncs
// through the same reset handshake instead of dropping traffic forever.
func TestFreshReceiverResyncs(t *testing.T) {
	old := gapTimeout
	gapTimeout = 10 * time.Millisecond
	defer func() { gapTimeout = old }()

	inner := transport.NewInProc(nil)
	defer inner.Close()
	epA, _ := inner.Endpoint("a")
	a := New(epA)

	epB1, _ := inner.Endpoint("b")
	b1 := New(epB1)
	got1 := make(chan pingMsg, 16)
	Handle(b1, func(m pingMsg, _ Meta) { got1 <- m })
	Send(a, "b", pingMsg{N: 0})
	Send(a, "b", pingMsg{N: 1})
	for i := 0; i < 2; i++ {
		select {
		case <-got1:
		case <-time.After(5 * time.Second):
			t.Fatal("first endpoint never got its messages")
		}
	}
	b1.Close() // endpoint restarts under the same name
	epB2, _ := inner.Endpoint("b")
	b2 := New(epB2)
	var mu sync.Mutex
	var recv []int
	Handle(b2, func(m pingMsg, _ Meta) {
		mu.Lock()
		recv = append(recv, m.N)
		mu.Unlock()
	})
	// The sender's session is deep into its stream; the fresh receiver
	// cannot decode mid-stream and must force a new epoch.
	waitFor(t, "resync with restarted receiver", func() bool {
		Send(a, "b", pingMsg{N: 9})
		mu.Lock()
		defer mu.Unlock()
		return len(recv) > 0 && recv[len(recv)-1] == 9
	})
}

func TestSendUnregisteredTypeFails(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	ep, _ := f.Endpoint("solo")
	c := New(ep)
	type neverRegistered struct{ X int }
	if err := Send(c, "solo", neverRegistered{1}); err == nil {
		t.Fatal("sending an unregistered type must fail")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting Register must panic")
		}
	}()
	Register[pongMsg]("test-ping") // "test-ping" belongs to pingMsg
}

// Encode failures mid-session (unregistered concrete type in an
// interface field) must not corrupt the stream: the session restarts
// and later messages flow.
type carrierMsg struct {
	V any
}

func init() { Register[carrierMsg]("test-carrier") }

type unregisteredPayload struct{ X int }

func TestEncodeErrorRestartsSession(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, _ := f.Endpoint("a")
	epB, _ := f.Endpoint("b")
	a, b := New(epA), New(epB)
	got := make(chan carrierMsg, 16)
	Handle(b, func(m carrierMsg, _ Meta) { got <- m })

	if err := Send(a, "b", carrierMsg{V: 7}); err != nil {
		t.Fatal(err)
	}
	<-got
	if err := Send(a, "b", carrierMsg{V: unregisteredPayload{1}}); err == nil {
		t.Fatal("encoding an unregistered concrete type must fail")
	}
	if err := Send(a, "b", carrierMsg{V: 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.V.(int) != 8 {
			t.Fatalf("got %+v after encode error, want V=8", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message after encode error never arrived: stream corrupted")
	}
}

// A send that fails at dispatch (destination endpoint not yet up)
// burns a sequence number and, for gob kinds, encoder state the
// receiver will never see. The session must restart so the next
// successful Send is self-contained — not silently discarded as a
// stale frame behind a permanent gap.
func TestFailedSendRestartsSession(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	epA, _ := f.Endpoint("a")
	a := New(epA)

	// "b" does not exist yet: both sends must fail visibly.
	for i := 0; i < 2; i++ {
		if err := Send(a, "b", pingMsg{N: i}); err == nil {
			t.Fatal("send to a missing endpoint reported success")
		}
	}

	epB, _ := f.Endpoint("b")
	b := New(epB)
	var mu sync.Mutex
	var got []pingMsg
	Handle(b, func(m pingMsg, _ Meta) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})

	// The first send after the outage must be delivered — immediately,
	// with no gap-timer or reset round trip in between.
	if err := Send(a, "b", pingMsg{N: 42, Note: "post-outage"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-outage message", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0].N != 42 || got[0].Note != "post-outage" {
		t.Fatalf("delivered %+v, want the post-outage frame", got[0])
	}
}
