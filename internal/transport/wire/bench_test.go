package wire

import (
	"encoding/gob"
	"testing"

	"repro/internal/transport"
	"repro/internal/wirefmt"
)

// benchJob mirrors the shape of satin's steal-reply payload — the
// steal hot path the session codec exists for.
type benchJob struct {
	ID    uint64
	Owner string
	Args  [4]int
}

type benchReply struct {
	Seq    uint64
	HasJob bool
	Job    benchJob
}

// benchReplyBin is the same shape under the binary codec.
type benchReplyBin benchReply

func (m *benchReplyBin) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, m.Seq)
	b = wirefmt.AppendBool(b, m.HasJob)
	b = wirefmt.AppendUvarint(b, m.Job.ID)
	b = wirefmt.AppendString(b, m.Job.Owner)
	for _, a := range m.Job.Args {
		b = wirefmt.AppendVarint(b, int64(a))
	}
	return b, nil
}

func (m *benchReplyBin) DecodeWire(r *wirefmt.Reader) error {
	m.Seq = r.Uvarint()
	m.HasJob = r.Bool()
	m.Job.ID = r.Uvarint()
	m.Job.Owner = r.String()
	for i := range m.Job.Args {
		m.Job.Args[i] = int(r.Varint())
	}
	return r.Err()
}

func init() {
	Register[benchReply]("bench-reply")
	Register[benchReplyBin]("bench-reply-bin")
}

var benchValue = benchReply{
	Seq:    42,
	HasJob: true,
	Job:    benchJob{ID: 7, Owner: "fs0/03", Args: [4]int{1, 2, 3, 4}},
}

// BenchmarkWireEncode compares three codec generations: the original
// per-message gob codec (fresh encoder, descriptors resent every
// message — kept strictly as the historical baseline; no production
// path constructs per-message encoders anymore), the session gob codec
// (persistent stream, descriptors once), and the binary codec
// (wirefmt, no descriptors at all). Numbers in EXPERIMENTS.md.
func BenchmarkWireEncode(b *testing.B) {
	b.Run("per-message-gob-historical-baseline", func(b *testing.B) {
		b.ReportAllocs()
		var total int
		for i := 0; i < b.N; i++ {
			p, err := transport.Encode(benchValue)
			if err != nil {
				b.Fatal(err)
			}
			total += len(p)
		}
		reportFrameBytes(b, total)
	})
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		var buf byteBuffer
		enc := gob.NewEncoder(&buf)
		var total int
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(benchValue); err != nil {
				b.Fatal(err)
			}
			p := make([]byte, headerLen+len(buf.Bytes()))
			copy(p[headerLen:], buf.Bytes())
			total += len(p)
		}
		reportFrameBytes(b, total)
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		v := benchReplyBin(benchValue)
		var total int
		for i := 0; i < b.N; i++ {
			p, err := v.AppendWire(make([]byte, headerLen, headerLen+64))
			if err != nil {
				b.Fatal(err)
			}
			total += len(p)
		}
		reportFrameBytes(b, total)
	})
}

func reportFrameBytes(b *testing.B, total int) {
	if b.N > 0 {
		b.ReportMetric(float64(total)/float64(b.N), "frame-bytes/op")
	}
}

// BenchmarkWireRoundTrip measures whole frames through an ideal
// in-process fabric: encode, send, deliver, decode, dispatch. The
// per-message-gob arm is the historical baseline only.
func BenchmarkWireRoundTrip(b *testing.B) {
	b.Run("per-message-gob-historical-baseline", func(b *testing.B) {
		f := transport.NewInProc(nil)
		defer f.Close()
		epA, _ := f.Endpoint("a")
		epB, _ := f.Endpoint("b")
		done := make(chan struct{}, 1)
		epB.SetHandler(func(m transport.Message) {
			var v benchReply
			if err := transport.Decode(m.Payload, &v); err != nil {
				b.Error(err)
			}
			done <- struct{}{}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := transport.Encode(benchValue)
			if err != nil {
				b.Fatal(err)
			}
			if err := epA.Send("b", "bench-reply", p); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
	b.Run("session", func(b *testing.B) {
		f := transport.NewInProc(nil)
		defer f.Close()
		epA, _ := f.Endpoint("a")
		epB, _ := f.Endpoint("b")
		ca, cb := New(epA), New(epB)
		done := make(chan struct{}, 1)
		Handle(cb, func(v benchReply, _ Meta) { done <- struct{}{} })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := Send(ca, "b", benchValue); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
	b.Run("binary", func(b *testing.B) {
		f := transport.NewInProc(nil)
		defer f.Close()
		epA, _ := f.Endpoint("a")
		epB, _ := f.Endpoint("b")
		ca, cb := New(epA), New(epB)
		done := make(chan struct{}, 1)
		Handle(cb, func(v benchReplyBin, _ Meta) { done <- struct{}{} })
		v := benchReplyBin(benchValue)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := Send(ca, "b", v); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
}
