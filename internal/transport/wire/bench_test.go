package wire

import (
	"encoding/gob"
	"testing"

	"repro/internal/transport"
)

// benchJob mirrors the shape of satin's steal-reply payload — the
// steal hot path the session codec exists for.
type benchJob struct {
	ID    uint64
	Owner string
	Args  [4]int
}

type benchReply struct {
	Seq    uint64
	HasJob bool
	Job    benchJob
}

func init() { Register[benchReply]("bench-reply") }

var benchValue = benchReply{
	Seq:    42,
	HasJob: true,
	Job:    benchJob{ID: 7, Owner: "fs0/03", Args: [4]int{1, 2, 3, 4}},
}

// BenchmarkWireEncode compares the old per-message codec (fresh gob
// encoder, descriptors resent every message) against the session codec
// (persistent stream, descriptors once). Numbers in EXPERIMENTS.md.
func BenchmarkWireEncode(b *testing.B) {
	b.Run("per-message-gob", func(b *testing.B) {
		b.ReportAllocs()
		var total int
		for i := 0; i < b.N; i++ {
			p, err := transport.Encode(benchValue)
			if err != nil {
				b.Fatal(err)
			}
			total += len(p)
		}
		reportFrameBytes(b, total)
	})
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		var buf byteBuffer
		enc := gob.NewEncoder(&buf)
		var total int
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(benchValue); err != nil {
				b.Fatal(err)
			}
			p := make([]byte, headerLen+len(buf.Bytes()))
			copy(p[headerLen:], buf.Bytes())
			total += len(p)
		}
		reportFrameBytes(b, total)
	})
}

func reportFrameBytes(b *testing.B, total int) {
	if b.N > 0 {
		b.ReportMetric(float64(total)/float64(b.N), "frame-bytes/op")
	}
}

// BenchmarkWireRoundTrip measures whole frames through an ideal
// in-process fabric: encode, send, deliver, decode, dispatch.
func BenchmarkWireRoundTrip(b *testing.B) {
	b.Run("per-message-gob", func(b *testing.B) {
		f := transport.NewInProc(nil)
		defer f.Close()
		epA, _ := f.Endpoint("a")
		epB, _ := f.Endpoint("b")
		done := make(chan struct{}, 1)
		epB.SetHandler(func(m transport.Message) {
			var v benchReply
			if err := transport.Decode(m.Payload, &v); err != nil {
				b.Error(err)
			}
			done <- struct{}{}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := transport.Encode(benchValue)
			if err != nil {
				b.Fatal(err)
			}
			if err := epA.Send("b", "bench-reply", p); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
	b.Run("session", func(b *testing.B) {
		f := transport.NewInProc(nil)
		defer f.Close()
		epA, _ := f.Endpoint("a")
		epB, _ := f.Endpoint("b")
		ca, cb := New(epA), New(epB)
		done := make(chan struct{}, 1)
		Handle(cb, func(v benchReply, _ Meta) { done <- struct{}{} })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := Send(ca, "b", benchValue); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
}
