package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestInProcDelivery(t *testing.T) {
	f := NewInProc(nil)
	defer f.Close()
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Message, 1)
	b.SetHandler(func(m Message) { got <- m })
	if err := a.Send("b", "hello", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.From != "a" || m.To != "b" || m.Kind != "hello" || string(m.Payload) != "payload" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestInProcDuplicateName(t *testing.T) {
	f := NewInProc(nil)
	defer f.Close()
	if _, err := f.Endpoint("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("x"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestInProcUnknownDestination(t *testing.T) {
	f := NewInProc(nil)
	defer f.Close()
	a, _ := f.Endpoint("a")
	if err := a.Send("ghost", "k", nil); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestInProcClosedEndpoint(t *testing.T) {
	f := NewInProc(nil)
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	a.Close()
	if err := a.Send("b", "k", nil); err != ErrClosed {
		t.Fatalf("send from closed = %v, want ErrClosed", err)
	}
	if err := b.Send("a", "k", nil); err == nil {
		t.Fatal("send to detached endpoint succeeded")
	}
}

func TestInProcLatency(t *testing.T) {
	f := NewInProc(func(from, to string) LinkParams {
		return LinkParams{Latency: 30 * time.Millisecond}
	})
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan time.Time, 1)
	b.SetHandler(func(Message) { got <- time.Now() })
	start := time.Now()
	a.Send("b", "k", nil)
	at := <-got
	if d := at.Sub(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", d)
	}
}

func TestInProcBandwidthSerialises(t *testing.T) {
	f := NewInProc(func(from, to string) LinkParams {
		return LinkParams{Bandwidth: 100e3} // 100 KB/s
	})
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	var count atomic.Int32
	done := make(chan struct{}, 4)
	b.SetHandler(func(Message) { count.Add(1); done <- struct{}{} })
	payload := make([]byte, 2000) // 20 ms each at 100 KB/s
	start := time.Now()
	for i := 0; i < 3; i++ {
		a.Send("b", "k", payload)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("3 x 2KB at 100KB/s delivered in %v, want >= ~60ms (serialised)", d)
	}
}

func TestInProcOrderPreservedPerLink(t *testing.T) {
	f := NewInProc(func(from, to string) LinkParams {
		return LinkParams{Bandwidth: 1e6}
	})
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	var mu sync.Mutex
	var got []string
	done := make(chan struct{}, 16)
	b.SetHandler(func(m Message) {
		mu.Lock()
		got = append(got, m.Kind)
		mu.Unlock()
		done <- struct{}{}
	})
	for i := 0; i < 10; i++ {
		a.Send("b", string(rune('0'+i)), make([]byte, 1000))
	}
	for i := 0; i < 10; i++ {
		<-done
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("reordered delivery: %v", got)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	type payload struct {
		A int
		B string
		C []float64
	}
	in := payload{A: 7, B: "x", C: []float64{1, 2.5}}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || len(out.C) != 2 || out.C[1] != 2.5 {
		t.Fatalf("round trip = %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
	if got := MustEncode(in); len(got) == 0 {
		t.Fatal("MustEncode returned empty payload")
	}
}

func TestTCPHubRouting(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	fab := NewTCP(hub.Addr())
	a, err := fab.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := fab.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make(chan Message, 1)
	b.SetHandler(func(m Message) { got <- m })
	// Registration races with the first send; retry briefly.
	deadline := time.After(2 * time.Second)
	for {
		a.Send("b", "ping", []byte("x"))
		select {
		case m := <-got:
			if m.From != "a" || m.Kind != "ping" || string(m.Payload) != "x" {
				t.Fatalf("message = %+v", m)
			}
			return
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatal("TCP routing timed out")
		}
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	fab := NewTCP(hub.Addr())
	a, err := fab.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := a.Send("b", "k", nil); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// Per-pair serialisation (free) and link-worker (links) state must be
// released when endpoints close: a long-lived fabric with churning
// endpoints (provisioned and evicted grid nodes) must not grow without
// bound.
func TestInProcPairStateReleasedOnClose(t *testing.T) {
	link := func(from, to string) LinkParams {
		return LinkParams{Bandwidth: 1e9} // populate f.free on every send
	}
	f := NewInProc(link)
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan Message, 4)
	a.SetHandler(func(m Message) { got <- m })
	b.SetHandler(func(m Message) { got <- m })
	if err := a.Send("b", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", "k", []byte("y")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("delivery timed out")
		}
	}
	f.mu.Lock()
	frees, links := len(f.free), len(f.links)
	f.mu.Unlock()
	if frees == 0 || links == 0 {
		t.Fatalf("test did not populate pair state (free=%d links=%d)", frees, links)
	}
	a.Close()
	b.Close()
	f.mu.Lock()
	frees, links = len(f.free), len(f.links)
	f.mu.Unlock()
	if frees != 0 || links != 0 {
		t.Fatalf("pair state leaked after endpoint close: free=%d links=%d", frees, links)
	}
}

// Closing the fabric itself must also drop the accumulated pair state.
func TestInProcPairStateReleasedOnFabricClose(t *testing.T) {
	f := NewInProc(func(string, string) LinkParams { return LinkParams{Bandwidth: 1e9} })
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	b.SetHandler(func(Message) {})
	a.Send("b", "k", []byte("x"))
	f.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.free) != 0 || len(f.links) != 0 {
		t.Fatalf("pair state leaked after fabric close: free=%d links=%d",
			len(f.free), len(f.links))
	}
}
