package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Encode gob-serialises v into a frame payload.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode gob-deserialises a frame payload into v (a pointer).
func Decode(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode %T: %w", v, err)
	}
	return nil
}

// MustEncode is Encode for values that cannot fail (registered types);
// it panics otherwise, which surfaces registration bugs immediately.
func MustEncode(v any) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}
