// Package transport is the messaging substrate of the real runtime —
// the role the Ibis communication library plays in the paper. It
// offers named endpoints exchanging typed, gob-encoded frames over two
// interchangeable fabrics:
//
//   - InProc: an in-process fabric whose directed links carry
//     configurable latency and bandwidth (token-bucket serialisation),
//     used by tests, the examples, and the satin runtime's emulated
//     multi-cluster deployments — including the traffic-shaping
//     scenario (throttle one cluster's links at runtime);
//   - TCP: a hub-routed fabric over real sockets (stdlib net), in the
//     style of Ibis' registry/hub deployment, used when nodes run as
//     separate processes.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Message is one delivered frame.
type Message struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

// Handler consumes delivered frames. Handlers run on fabric goroutines
// and must not block for long.
type Handler func(Message)

// Endpoint is one attached party.
type Endpoint interface {
	// Name returns the endpoint's fabric-unique name.
	Name() string
	// Send delivers a frame to the named endpoint asynchronously.
	// Delivery order between one sender/receiver pair is preserved.
	Send(to, kind string, payload []byte) error
	// SetHandler installs the delivery callback. Must be called before
	// the first frame arrives; frames delivered earlier are dropped.
	SetHandler(Handler)
	// Close detaches the endpoint; subsequent sends to it fail.
	Close() error
}

// Fabric connects endpoints.
type Fabric interface {
	// Endpoint attaches a new named endpoint.
	Endpoint(name string) (Endpoint, error)
}

// ErrClosed is returned when sending from or to a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknown is returned when the destination is not attached.
var ErrUnknown = errors.New("transport: unknown endpoint")

// LinkParams shape one directed in-process link.
type LinkParams struct {
	// Latency is the one-way delivery delay.
	Latency time.Duration
	// Bandwidth in bytes/second serialises payloads; 0 means infinite.
	Bandwidth float64
}

// LinkFunc returns the current link parameters for a directed pair.
// It is consulted per send, so shaping changes take effect immediately.
type LinkFunc func(from, to string) LinkParams

// InProc is the in-process fabric.
type InProc struct {
	mu        sync.Mutex
	endpoints map[string]*inprocEP
	link      LinkFunc
	free      map[[2]string]time.Time     // directed-link serialisation
	order     map[[2]string]chan struct{} // per-pair delivery ordering
	wg        sync.WaitGroup
	closed    bool
}

// NewInProc builds a fabric; link may be nil (ideal network).
func NewInProc(link LinkFunc) *InProc {
	return &InProc{
		endpoints: make(map[string]*inprocEP),
		link:      link,
		free:      make(map[[2]string]time.Time),
		order:     make(map[[2]string]chan struct{}),
	}
}

// Endpoint implements Fabric.
func (f *InProc) Endpoint(name string) (Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, ok := f.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already attached", name)
	}
	ep := &inprocEP{fabric: f, name: name}
	f.endpoints[name] = ep
	return ep, nil
}

// Close tears the fabric down and waits for in-flight deliveries.
func (f *InProc) Close() {
	f.mu.Lock()
	f.closed = true
	eps := make([]*inprocEP, 0, len(f.endpoints))
	for _, ep := range f.endpoints {
		eps = append(eps, ep)
	}
	f.endpoints = map[string]*inprocEP{}
	f.free = map[[2]string]time.Time{}
	f.order = map[[2]string]chan struct{}{}
	f.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
	}
	f.wg.Wait()
}

func (f *InProc) send(from *inprocEP, to, kind string, payload []byte) error {
	from.mu.Lock()
	fromClosed := from.closed
	from.mu.Unlock()
	if fromClosed {
		return ErrClosed
	}
	f.mu.Lock()
	dst, ok := f.endpoints[to]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknown, to)
	}
	delay := time.Duration(0)
	if f.link != nil {
		lp := f.link(from.name, to)
		delay = lp.Latency
		if lp.Bandwidth > 0 {
			ser := time.Duration(float64(len(payload)) / lp.Bandwidth * float64(time.Second))
			key := [2]string{from.name, to}
			now := time.Now()
			start := now
			if free, ok := f.free[key]; ok && free.After(start) {
				start = free
			}
			f.free[key] = start.Add(ser)
			delay += start.Sub(now) + ser
		}
	}
	// Per-pair FIFO: each delivery waits for its predecessor on the
	// same directed link, as a stream transport would.
	key := [2]string{from.name, to}
	prev := f.order[key]
	done := make(chan struct{})
	f.order[key] = done
	deadline := time.Now().Add(delay)
	f.wg.Add(1)
	f.mu.Unlock()

	msg := Message{From: from.name, To: to, Kind: kind, Payload: payload}
	go func() {
		defer f.wg.Done()
		defer close(done)
		if prev != nil {
			<-prev
		}
		if d := time.Until(deadline); d > 0 {
			time.Sleep(d)
		}
		dst.mu.Lock()
		h := dst.handler
		closed := dst.closed
		dst.mu.Unlock()
		if h != nil && !closed {
			h(msg)
		}
	}()
	return nil
}

type inprocEP struct {
	fabric *InProc
	name   string

	mu      sync.Mutex
	handler Handler
	closed  bool
}

func (e *inprocEP) Name() string { return e.name }

func (e *inprocEP) Send(to, kind string, payload []byte) error {
	return e.fabric.send(e, to, kind, payload)
}

func (e *inprocEP) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

func (e *inprocEP) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	f := e.fabric
	f.mu.Lock()
	delete(f.endpoints, e.name)
	// Drop the per-pair serialisation and ordering state of every link
	// touching this endpoint: long-lived fabrics with churning
	// endpoints (the emulated grid provisions and evicts nodes all
	// run) must not accumulate dead-pair entries without bound.
	for key := range f.free {
		if key[0] == e.name || key[1] == e.name {
			delete(f.free, key)
		}
	}
	for key := range f.order {
		if key[0] == e.name || key[1] == e.name {
			delete(f.order, key)
		}
	}
	f.mu.Unlock()
	return nil
}
