// Package transport is the messaging substrate of the real runtime —
// the role the Ibis communication library plays in the paper. It
// offers named endpoints exchanging typed, gob-encoded frames over two
// interchangeable fabrics:
//
//   - InProc: an in-process fabric whose directed links carry
//     configurable latency and bandwidth (token-bucket serialisation),
//     used by tests, the examples, and the satin runtime's emulated
//     multi-cluster deployments — including the traffic-shaping
//     scenario (throttle one cluster's links at runtime);
//   - TCP: a hub-routed fabric over real sockets (stdlib net), in the
//     style of Ibis' registry/hub deployment, used when nodes run as
//     separate processes.
package transport

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Message is one delivered frame.
type Message struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

// Handler consumes delivered frames. Handlers run on fabric goroutines
// and must not block for long.
type Handler func(Message)

// Endpoint is one attached party.
type Endpoint interface {
	// Name returns the endpoint's fabric-unique name.
	Name() string
	// Send delivers a frame to the named endpoint asynchronously.
	// Delivery order between one sender/receiver pair is preserved.
	Send(to, kind string, payload []byte) error
	// SetHandler installs the delivery callback. Must be called before
	// the first frame arrives; frames delivered earlier are dropped.
	SetHandler(Handler)
	// Close detaches the endpoint; subsequent sends to it fail.
	Close() error
}

// Fabric connects endpoints.
type Fabric interface {
	// Endpoint attaches a new named endpoint.
	Endpoint(name string) (Endpoint, error)
}

// ErrClosed is returned when sending from or to a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknown is returned when the destination is not attached.
var ErrUnknown = errors.New("transport: unknown endpoint")

// LinkParams shape one directed in-process link.
type LinkParams struct {
	// Latency is the one-way delivery delay.
	Latency time.Duration
	// Bandwidth in bytes/second serialises payloads; 0 means infinite.
	Bandwidth float64
}

// LinkFunc returns the current link parameters for a directed pair.
// It is consulted per send, so shaping changes take effect immediately.
type LinkFunc func(from, to string) LinkParams

// InProc is the in-process fabric. Each directed endpoint pair owns a
// long-lived link worker draining a double-buffered queue: a send is
// an append plus a condition signal instead of a goroutine spawn, and
// per-pair FIFO falls out of the single consumer rather than a chain
// of predecessor channels.
type InProc struct {
	mu        sync.Mutex
	endpoints map[string]*inprocEP
	link      LinkFunc
	free      map[[2]string]time.Time   // directed-link serialisation
	links     map[[2]string]*inprocLink // per-pair delivery workers
	wg        sync.WaitGroup
	closed    bool
}

// NewInProc builds a fabric; link may be nil (ideal network).
func NewInProc(link LinkFunc) *InProc {
	return &InProc{
		endpoints: make(map[string]*inprocEP),
		link:      link,
		free:      make(map[[2]string]time.Time),
		links:     make(map[[2]string]*inprocLink),
	}
}

// linkFrame is one queued delivery on a directed link.
type linkFrame struct {
	msg      Message
	deadline time.Time
}

// inprocLink carries one directed pair's in-flight frames to its
// worker goroutine.
type inprocLink struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []linkFrame
	closed bool
}

// runLink is a directed pair's delivery worker: it swaps the queue
// against a reused local buffer (so senders never wait on delivery)
// and hands frames to the destination handler in FIFO order, honouring
// each frame's shaped deadline.
func (f *InProc) runLink(l *inprocLink, dst *inprocEP) {
	defer f.wg.Done()
	var local []linkFrame
	l.mu.Lock()
	for {
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 {
			l.mu.Unlock()
			return
		}
		local, l.queue = l.queue, local[:0]
		l.mu.Unlock()
		for i := range local {
			q := &local[i]
			if d := time.Until(q.deadline); d > 0 {
				time.Sleep(d)
			}
			dst.mu.Lock()
			h := dst.handler
			closed := dst.closed
			dst.mu.Unlock()
			if h != nil && !closed {
				h(q.msg)
			}
			q.msg = Message{} // release the payload before the buffer is reused
			// Yield between deliveries. Queued frames whose deadlines have
			// already passed are otherwise handed to consecutive handlers
			// with no scheduling point, which starves the goroutines those
			// handlers wake: a steal reply carrying a job and the next
			// incoming steal request would both run before the woken
			// worker, so the job is re-stolen out of the inbox every time
			// and ping-pongs between idle nodes instead of executing. The
			// old goroutine-per-frame fabric yielded implicitly on every
			// goroutine exit; keep that fairness explicitly.
			runtime.Gosched()
		}
		l.mu.Lock()
	}
}

// Endpoint implements Fabric.
func (f *InProc) Endpoint(name string) (Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, ok := f.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already attached", name)
	}
	ep := &inprocEP{fabric: f, name: name}
	f.endpoints[name] = ep
	return ep, nil
}

// Close tears the fabric down and waits for in-flight deliveries.
func (f *InProc) Close() {
	f.mu.Lock()
	f.closed = true
	eps := make([]*inprocEP, 0, len(f.endpoints))
	for _, ep := range f.endpoints {
		eps = append(eps, ep)
	}
	f.endpoints = map[string]*inprocEP{}
	f.free = map[[2]string]time.Time{}
	links := make([]*inprocLink, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.links = map[[2]string]*inprocLink{}
	f.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
	}
	for _, l := range links {
		l.mu.Lock()
		l.closed = true
		l.queue = nil // closed endpoints drop in-flight frames anyway
		l.cond.Signal()
		l.mu.Unlock()
	}
	f.wg.Wait()
}

func (f *InProc) send(from *inprocEP, to, kind string, payload []byte) error {
	from.mu.Lock()
	fromClosed := from.closed
	from.mu.Unlock()
	if fromClosed {
		return ErrClosed
	}
	f.mu.Lock()
	dst, ok := f.endpoints[to]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknown, to)
	}
	delay := time.Duration(0)
	if f.link != nil {
		lp := f.link(from.name, to)
		delay = lp.Latency
		if lp.Bandwidth > 0 {
			ser := time.Duration(float64(len(payload)) / lp.Bandwidth * float64(time.Second))
			key := [2]string{from.name, to}
			now := time.Now()
			start := now
			if free, ok := f.free[key]; ok && free.After(start) {
				start = free
			}
			f.free[key] = start.Add(ser)
			delay += start.Sub(now) + ser
		}
	}
	key := [2]string{from.name, to}
	l, ok := f.links[key]
	if !ok {
		l = &inprocLink{}
		l.cond = sync.NewCond(&l.mu)
		f.links[key] = l
		f.wg.Add(1)
		go f.runLink(l, dst)
	}
	var deadline time.Time
	if delay > 0 {
		deadline = time.Now().Add(delay)
	}
	f.mu.Unlock()

	l.mu.Lock()
	l.queue = append(l.queue, linkFrame{
		msg:      Message{From: from.name, To: to, Kind: kind, Payload: payload},
		deadline: deadline,
	})
	l.cond.Signal()
	l.mu.Unlock()
	return nil
}

type inprocEP struct {
	fabric *InProc
	name   string

	mu      sync.Mutex
	handler Handler
	closed  bool
}

func (e *inprocEP) Name() string { return e.name }

func (e *inprocEP) Send(to, kind string, payload []byte) error {
	return e.fabric.send(e, to, kind, payload)
}

func (e *inprocEP) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

func (e *inprocEP) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	f := e.fabric
	f.mu.Lock()
	delete(f.endpoints, e.name)
	// Retire the serialisation state and link workers of every pair
	// touching this endpoint: long-lived fabrics with churning
	// endpoints (the emulated grid provisions and evicts nodes all
	// run) must not accumulate dead-pair state without bound, and a
	// re-attached endpoint under the same name must get fresh links
	// bound to the new endpoint, not the dead one.
	for key := range f.free {
		if key[0] == e.name || key[1] == e.name {
			delete(f.free, key)
		}
	}
	var retired []*inprocLink
	for key, l := range f.links {
		if key[0] == e.name || key[1] == e.name {
			retired = append(retired, l)
			delete(f.links, key)
		}
	}
	f.mu.Unlock()
	for _, l := range retired {
		l.mu.Lock()
		l.closed = true
		l.cond.Signal()
		l.mu.Unlock()
	}
	return nil
}
