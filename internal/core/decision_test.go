package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func homogeneous(n int, overhead float64) []NodeStats {
	stats := make([]NodeStats, n)
	for i := range stats {
		stats[i] = NodeStats{
			Node:    NodeID(rune('a'+i%26)) + NodeID(rune('0'+i/26)),
			Cluster: "c0",
			Speed:   10,
			Idle:    overhead,
		}
	}
	return stats
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{EMin: 0, EMax: 0.5, ClusterDropInterComm: 0.25, MinNodes: 1, MaxGrowFactor: 1},
		{EMin: 0.5, EMax: 0.3, ClusterDropInterComm: 0.25, MinNodes: 1, MaxGrowFactor: 1},
		{EMin: 0.3, EMax: 1.5, ClusterDropInterComm: 0.25, MinNodes: 1, MaxGrowFactor: 1},
		{EMin: 0.3, EMax: 0.5, ClusterDropInterComm: 0, MinNodes: 1, MaxGrowFactor: 1},
		{EMin: 0.3, EMax: 0.5, ClusterDropInterComm: 0.25, MinNodes: 0, MaxGrowFactor: 1},
		{EMin: 0.3, EMax: 0.5, ClusterDropInterComm: 0.25, MinNodes: 1, MaxGrowFactor: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
		if _, err := NewEngine(c); err == nil {
			t.Errorf("case %d: NewEngine accepted invalid config", i)
		}
	}
}

func TestDecideAddsWhenEfficiencyHigh(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	// overhead 0.1 -> WAE 0.9 > EMax
	d := e.Decide(homogeneous(8, 0.1))
	if d.Action != ActionAdd {
		t.Fatalf("action = %v, want add (decision: %+v)", d.Action, d)
	}
	if d.AddCount < 1 {
		t.Errorf("AddCount = %d, want >= 1", d.AddCount)
	}
	// Growth is capped at MaxGrowFactor * n.
	if d.AddCount > 8 {
		t.Errorf("AddCount = %d exceeds MaxGrowFactor cap 8", d.AddCount)
	}
	// Higher efficiency must request at least as many processors.
	d2 := e.Decide(homogeneous(8, 0.45)) // WAE 0.55, barely above EMax
	if d2.Action != ActionAdd {
		t.Fatalf("action = %v, want add", d2.Action)
	}
	if d2.AddCount > d.AddCount {
		t.Errorf("lower efficiency requested more nodes: %d (WAE .55) > %d (WAE .9)",
			d2.AddCount, d.AddCount)
	}
}

func TestDecideNoneInsideBand(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	d := e.Decide(homogeneous(8, 0.6)) // WAE 0.4 in (0.3,0.5)
	if d.Action != ActionNone {
		t.Fatalf("action = %v, want none (%s)", d.Action, d.Reason)
	}
	if d.WAE < 0.39 || d.WAE > 0.41 {
		t.Errorf("WAE = %v, want 0.4", d.WAE)
	}
}

func TestDecideRemovesWhenEfficiencyLow(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	d := e.Decide(homogeneous(16, 0.85)) // WAE 0.15 < EMin
	if d.Action != ActionRemoveNodes {
		t.Fatalf("action = %v, want remove-nodes (%s)", d.Action, d.Reason)
	}
	if len(d.RemoveNodes) < 1 || len(d.RemoveNodes) >= 16 {
		t.Errorf("RemoveNodes = %d nodes, want in [1,15]", len(d.RemoveNodes))
	}
	// Lower efficiency removes at least as many.
	d2 := e.Decide(homogeneous(16, 0.72)) // WAE 0.28, barely below
	if d2.Action != ActionRemoveNodes {
		t.Fatalf("action = %v, want remove-nodes", d2.Action)
	}
	if len(d2.RemoveNodes) > len(d.RemoveNodes) {
		t.Errorf("higher efficiency removed more: %d (WAE .28) > %d (WAE .15)",
			len(d2.RemoveNodes), len(d.RemoveNodes))
	}
}

func TestDecideRemovesWorstNodesFirst(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	stats := []NodeStats{
		{Node: "fast1", Cluster: "A", Speed: 10, Idle: 0.8},
		{Node: "fast2", Cluster: "A", Speed: 10, Idle: 0.8},
		{Node: "fast3", Cluster: "A", Speed: 10, Idle: 0.8},
		{Node: "crawl", Cluster: "A", Speed: 1, Idle: 0.8},
	}
	d := e.Decide(stats)
	if d.Action != ActionRemoveNodes {
		t.Fatalf("action = %v (%s)", d.Action, d.Reason)
	}
	if d.RemoveNodes[0] != "crawl" {
		t.Errorf("the ~10x slower node must be evicted first, got %v", d.RemoveNodes)
	}
}

func TestDecideDropsSaturatedCluster(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	var stats []NodeStats
	for i := 0; i < 8; i++ {
		stats = append(stats, NodeStats{
			Node: NodeID(rune('a' + i)), Cluster: "ok", Speed: 10, Idle: 0.6,
		})
	}
	for i := 0; i < 4; i++ {
		stats = append(stats, NodeStats{
			Node: NodeID(rune('p' + i)), Cluster: "throttled", Speed: 10,
			Idle: 0.2, InterComm: 0.75,
		})
	}
	d := e.Decide(stats)
	if d.Action != ActionRemoveCluster {
		t.Fatalf("action = %v, want remove-cluster (%s)", d.Action, d.Reason)
	}
	if d.RemoveCluster != "throttled" {
		t.Errorf("RemoveCluster = %v", d.RemoveCluster)
	}
	if len(d.RemoveNodes) != 4 {
		t.Errorf("cluster eviction should list its 4 members, got %v", d.RemoveNodes)
	}
	if d.ClusterInterComm < 0.74 {
		t.Errorf("ClusterInterComm = %v, want ~0.75", d.ClusterInterComm)
	}
}

func TestDecideNeverDropsOnlyCluster(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	var stats []NodeStats
	for i := 0; i < 4; i++ {
		stats = append(stats, NodeStats{
			Node: NodeID(rune('a' + i)), Cluster: "only", Speed: 10,
			Idle: 0.2, InterComm: 0.7,
		})
	}
	d := e.Decide(stats)
	if d.Action == ActionRemoveCluster {
		t.Fatalf("must not evacuate the only cluster: %+v", d)
	}
}

func TestDecideRespectsMinNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinNodes = 4
	e := mustEngine(t, cfg)
	d := e.Decide(homogeneous(4, 0.95))
	if d.Action != ActionNone {
		t.Fatalf("at MinNodes the engine must hold: %+v", d)
	}
	d = e.Decide(homogeneous(6, 0.95))
	if d.Action != ActionRemoveNodes {
		t.Fatalf("action = %v", d.Action)
	}
	if len(d.RemoveNodes) > 2 {
		t.Errorf("removed %d nodes, would violate MinNodes=4", len(d.RemoveNodes))
	}
}

func TestDecideBootstrapsFromZeroNodes(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	d := e.Decide(nil)
	if d.Action != ActionAdd || d.AddCount != 1 {
		t.Fatalf("empty stats should bootstrap with one node: %+v", d)
	}
}

func TestGrowShrinkCounts(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	// WAE 0.8 on 10 nodes, target 0.4: ideal 20 -> add 10 (== cap).
	if got := e.GrowCount(10, 0.8); got != 10 {
		t.Errorf("GrowCount(10, .8) = %d, want 10", got)
	}
	// WAE 0.52, barely above: ideal 13 -> add 3.
	if got := e.GrowCount(10, 0.52); got != 3 {
		t.Errorf("GrowCount(10, .52) = %d, want 3", got)
	}
	if got := e.GrowCount(0, 0.9); got != 1 {
		t.Errorf("GrowCount(0, .9) = %d, want 1", got)
	}
	// WAE 0.2 on 10 nodes: ideal 5 -> remove 5.
	if got := e.ShrinkCount(10, 0.2); got != 5 {
		t.Errorf("ShrinkCount(10, .2) = %d, want 5", got)
	}
	if got := e.ShrinkCount(1, 0.1); got != 0 {
		t.Errorf("ShrinkCount(1, .1) = %d, want 0 (MinNodes)", got)
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		ActionNone:          "none",
		ActionAdd:           "add",
		ActionRemoveNodes:   "remove-nodes",
		ActionRemoveCluster: "remove-cluster",
		Action(99):          "Action(99)",
	} {
		if got := a.String(); got != want {
			t.Errorf("Action(%d).String() = %q, want %q", int(a), got, want)
		}
	}
}

// Property: the decision's action always agrees with where WAE sits
// relative to the thresholds, and removals never empty the computation.
func TestDecideConsistencyProperty(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	f := func(seed int64, nRaw uint8, clustersRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		nc := int(clustersRaw%5) + 1
		stats := make([]NodeStats, n)
		for i := range stats {
			idle := rng.Float64()
			inter := rng.Float64() * (1 - idle)
			stats[i] = NodeStats{
				Node:      NodeID(string(rune('a'+i%26)) + string(rune('0'+i/26))),
				Cluster:   ClusterID(rune('A' + i%nc)),
				Speed:     1 + rng.Float64()*9,
				Idle:      idle,
				InterComm: inter,
			}
		}
		d := e.Decide(stats)
		wae := WeightedAverageEfficiency(stats)
		switch d.Action {
		case ActionAdd:
			return wae > e.Config().EMax && d.AddCount >= 1
		case ActionRemoveNodes:
			return wae < e.Config().EMin &&
				len(d.RemoveNodes) >= 1 && len(d.RemoveNodes) < n
		case ActionRemoveCluster:
			return wae < e.Config().EMin && len(d.RemoveNodes) < n
		case ActionNone:
			return wae >= e.Config().EMin-1e-12 && wae <= e.Config().EMax+1e-12 ||
				n == e.Config().MinNodes
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
