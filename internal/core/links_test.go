package core

import (
	"testing"
	"testing/quick"
)

func linkStats() []NodeStats {
	// Three clusters; C's access link is congested: every pair with C
	// shows tiny achieved bandwidth, while A<->B stays healthy.
	mk := func(node NodeID, cluster ClusterID, links map[ClusterID]LinkSample) NodeStats {
		return NodeStats{Node: node, Cluster: cluster, Speed: 1, Idle: 0.8, Links: links}
	}
	return []NodeStats{
		mk("a0", "A", map[ClusterID]LinkSample{
			"B": {Seconds: 2, Bytes: 20e6}, // 10 MB/s
			"C": {Seconds: 50, Bytes: 4e5}, // 8 KB/s
		}),
		mk("b0", "B", map[ClusterID]LinkSample{
			"A": {Seconds: 1, Bytes: 12e6}, // 12 MB/s
			"C": {Seconds: 40, Bytes: 3e5}, // 7.5 KB/s
		}),
		mk("c0", "C", map[ClusterID]LinkSample{
			"A": {Seconds: 60, Bytes: 5e5},
			"B": {Seconds: 55, Bytes: 4e5},
		}),
	}
}

func TestLinkSampleBandwidth(t *testing.T) {
	if bw := (LinkSample{Seconds: 2, Bytes: 10}).Bandwidth(); bw != 5 {
		t.Errorf("bandwidth = %v, want 5", bw)
	}
	if bw := (LinkSample{}).Bandwidth(); bw != 0 {
		t.Errorf("empty sample bandwidth = %v", bw)
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if PairKey("B", "A") != PairKey("A", "B") {
		t.Fatal("pair keys not canonical")
	}
	if k := PairKey("A", "B"); k[0] != "A" || k[1] != "B" {
		t.Fatalf("key = %v", k)
	}
}

func TestPairBandwidthsCombinesDirections(t *testing.T) {
	pairs := PairBandwidths(linkStats(), 0)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	ab := pairs[PairKey("A", "B")]
	// Both directions combined: 32 MB over 3 s.
	if ab.Bytes != 32e6 || ab.Seconds != 3 {
		t.Errorf("A<->B sample = %+v", ab)
	}
	ac := pairs[PairKey("A", "C")]
	if bw := ac.Bandwidth(); bw > 1e4 {
		t.Errorf("A<->C bandwidth = %v, want thin", bw)
	}
}

func TestPairBandwidthsEvidenceFloor(t *testing.T) {
	pairs := PairBandwidths(linkStats(), 1e6)
	// Only A<->B moved more than 1 MB of evidence.
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs above floor, want 1: %v", len(pairs), pairs)
	}
	if _, ok := pairs[PairKey("A", "B")]; !ok {
		t.Error("A<->B missing")
	}
}

func TestBandwidthCulpritFindsCongestedCluster(t *testing.T) {
	culprit, bw, ref, ok := BandwidthCulprit(linkStats(), 0)
	if !ok {
		t.Fatal("no culprit found")
	}
	if culprit != "C" {
		t.Fatalf("culprit = %v, want C", culprit)
	}
	// C's best pair is ~8 KB/s; the reference is A<->B ~10.7 MB/s.
	if bw > 1e4 {
		t.Errorf("culprit best bw = %v, want thin", bw)
	}
	if ref < 1e6 {
		t.Errorf("reference bw = %v, want healthy", ref)
	}
}

func TestBandwidthCulpritNeedsTwoPairs(t *testing.T) {
	one := []NodeStats{{
		Node: "a", Cluster: "A", Speed: 1,
		Links: map[ClusterID]LinkSample{"B": {Seconds: 1, Bytes: 100}},
	}}
	if _, _, _, ok := BandwidthCulprit(one, 0); ok {
		t.Fatal("single pair should not identify a culprit")
	}
	if _, _, _, ok := BandwidthCulprit(nil, 0); ok {
		t.Fatal("no stats should not identify a culprit")
	}
}

func TestBandwidthCulpritHealthyGridHasHighRatio(t *testing.T) {
	healthy := []NodeStats{
		{Node: "a", Cluster: "A", Speed: 1, Links: map[ClusterID]LinkSample{
			"B": {Seconds: 1, Bytes: 10e6}, "C": {Seconds: 1, Bytes: 9e6}}},
		{Node: "b", Cluster: "B", Speed: 1, Links: map[ClusterID]LinkSample{
			"C": {Seconds: 1, Bytes: 11e6}}},
	}
	culprit, bw, ref, ok := BandwidthCulprit(healthy, 0)
	if !ok {
		t.Fatal("want a (harmless) culprit candidate")
	}
	if bw < ref*0.5 {
		t.Errorf("healthy grid: culprit %v bw %v vs ref %v should be comparable", culprit, bw, ref)
	}
}

// The decision engine evacuates the congested cluster via the
// bandwidth rule even when per-node overhead alone would be ambiguous.
func TestDecideBandwidthRuleEvictsCulprit(t *testing.T) {
	e := mustEngine(t, DefaultConfig())
	stats := linkStats()
	// Make everyone equally overloaded so the overhead fallback could
	// not discriminate (it would not even fire: ic fractions are 0).
	for i := range stats {
		stats[i].Idle = 0.9
	}
	d := e.Decide(stats)
	if d.Action != ActionRemoveCluster {
		t.Fatalf("action = %v (%s), want remove-cluster", d.Action, d.Reason)
	}
	if d.RemoveCluster != "C" {
		t.Errorf("evicted %v, want C", d.RemoveCluster)
	}
	if d.MeasuredBandwidth <= 0 || d.MeasuredBandwidth > 1e4 {
		t.Errorf("measured bandwidth = %v", d.MeasuredBandwidth)
	}
}

func TestDecideBandwidthRuleDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClusterDropBWRatio = 0
	e := mustEngine(t, cfg)
	stats := linkStats()
	for i := range stats {
		stats[i].Idle = 0.9
	}
	d := e.Decide(stats)
	if d.Action == ActionRemoveCluster {
		t.Fatalf("bandwidth rule should be disabled: %+v", d)
	}
}

// Property: the culprit's best-pair bandwidth never exceeds the
// reference, and the culprit is always a cluster that appears in some
// pair.
func TestBandwidthCulpritProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) < 4 {
			return true
		}
		clusters := []ClusterID{"A", "B", "C", "D"}
		var stats []NodeStats
		for i, raw := range seeds {
			c := clusters[i%len(clusters)]
			peer := clusters[(i+1+int(raw)%3)%len(clusters)]
			if peer == c {
				continue
			}
			stats = append(stats, NodeStats{
				Node: NodeID(rune('a' + i%26)), Cluster: c, Speed: 1,
				Links: map[ClusterID]LinkSample{
					peer: {Seconds: float64(raw%100) + 0.1, Bytes: float64(raw)*1000 + 1},
				},
			})
		}
		culprit, bw, ref, ok := BandwidthCulprit(stats, 0)
		if !ok {
			return true
		}
		if bw > ref {
			return false
		}
		pairs := PairBandwidths(stats, 0)
		for k := range pairs {
			if k[0] == culprit || k[1] == culprit {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
