package core

// This file implements the speedup-versus-efficiency theory of Eager,
// Zahorjan & Lazowska ("Speedup versus efficiency in parallel systems",
// IEEE Trans. Computers, 1989), which the paper uses to justify its
// EMax = 0.5 threshold: when a computation runs on the processor count
// that maximises the power metric (speedup/execution-time ratio), its
// efficiency is at least 50%, so adding processors while efficiency is
// at or below 0.5 cannot be worthwhile.

import "math"

// WorkProfile characterises a computation by its total work T1 (time on
// one processor) and its critical path Tinf (time on infinitely many
// processors). AverageParallelism A = T1/Tinf.
type WorkProfile struct {
	T1   float64 // total work (seconds on the fastest processor)
	Tinf float64 // critical-path length (seconds)
}

// AverageParallelism returns A = T1/Tinf, the average parallelism of
// the computation. A is the asymptotic speedup bound.
func (w WorkProfile) AverageParallelism() float64 {
	if w.Tinf <= 0 {
		return math.Inf(1)
	}
	return w.T1 / w.Tinf
}

// SpeedupLowerBound is Eager et al.'s guaranteed speedup on n
// processors for any work-conserving schedule:
//
//	S(n) >= n·A / (n + A − 1)
func (w WorkProfile) SpeedupLowerBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	a := w.AverageParallelism()
	if math.IsInf(a, 1) {
		return float64(n)
	}
	return float64(n) * a / (float64(n) + a - 1)
}

// SpeedupUpperBound is the trivial bound S(n) <= min(n, A).
func (w WorkProfile) SpeedupUpperBound(n int) float64 {
	a := w.AverageParallelism()
	return math.Min(float64(n), a)
}

// EfficiencyLowerBound is E(n) = S(n)/n using the guaranteed speedup:
//
//	E(n) >= A / (n + A − 1)
func (w WorkProfile) EfficiencyLowerBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return w.SpeedupLowerBound(n) / float64(n)
}

// Power is the metric maximised to define the optimal processor count:
// the ratio of efficiency to execution time,
//
//	Power(n) = E(n)/T(n) = S(n)² / (n · T1),
//
// computed from the guaranteed-speedup bound. For S(n) = nA/(n+A−1)
// the maximiser is n = A−1 (≈ the average parallelism), where the
// efficiency is A/(2A−2) >= 0.5 — the Eager et al. theorem behind EMax.
func (w WorkProfile) Power(n int) float64 {
	if n <= 0 || w.T1 <= 0 {
		return 0
	}
	s := w.SpeedupLowerBound(n)
	return s * s / (float64(n) * w.T1)
}

// OptimalProcessors returns the processor count in [1,maxN] maximising
// Power. For the Eager bound the maximiser is n ≈ A; the search is kept
// exhaustive so alternative speedup models can reuse it.
func (w WorkProfile) OptimalProcessors(maxN int) int {
	best, bestP := 1, w.Power(1)
	for n := 2; n <= maxN; n++ {
		if p := w.Power(n); p > bestP {
			best, bestP = n, p
		}
	}
	return best
}

// KneeEfficiency returns the efficiency at the power-optimal processor
// count. Eager et al. prove it is >= 0.5; the unit tests assert that
// property across profiles, which is exactly the theorem the paper's
// EMax threshold rests on.
func (w WorkProfile) KneeEfficiency(maxN int) float64 {
	return w.EfficiencyLowerBound(w.OptimalProcessors(maxN))
}
