package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupBoundsBasics(t *testing.T) {
	w := WorkProfile{T1: 100, Tinf: 10} // A = 10
	if a := w.AverageParallelism(); !almostEq(a, 10) {
		t.Fatalf("A = %v, want 10", a)
	}
	if s := w.SpeedupLowerBound(1); !almostEq(s, 1) {
		t.Errorf("S(1) = %v, want 1", s)
	}
	// S(10) >= 10*10/19
	if s := w.SpeedupLowerBound(10); !almostEq(s, 100.0/19) {
		t.Errorf("S(10) = %v, want %v", s, 100.0/19)
	}
	if s := w.SpeedupUpperBound(5); !almostEq(s, 5) {
		t.Errorf("upper S(5) = %v, want 5", s)
	}
	if s := w.SpeedupUpperBound(50); !almostEq(s, 10) {
		t.Errorf("upper S(50) = %v, want A=10", s)
	}
	if s := w.SpeedupLowerBound(0); s != 0 {
		t.Errorf("S(0) = %v, want 0", s)
	}
}

func TestSpeedupSequentialAndEmbarrassinglyParallel(t *testing.T) {
	seq := WorkProfile{T1: 100, Tinf: 100} // A = 1
	for _, n := range []int{1, 2, 16} {
		if s := seq.SpeedupLowerBound(n); !almostEq(s, 1) {
			t.Errorf("sequential S(%d) = %v, want 1", n, s)
		}
	}
	ep := WorkProfile{T1: 100, Tinf: 0} // A = inf
	if s := ep.SpeedupLowerBound(8); !almostEq(s, 8) {
		t.Errorf("embarrassingly-parallel S(8) = %v, want 8", s)
	}
}

func TestOptimalProcessorsNearAverageParallelism(t *testing.T) {
	w := WorkProfile{T1: 1000, Tinf: 50} // A = 20
	n := w.OptimalProcessors(200)
	// Analytically the power maximiser is n = A-1 = 19.
	if n != 19 {
		t.Errorf("optimal n = %d, want 19 (A-1)", n)
	}
}

// The theorem behind EMax: efficiency at the power-optimal processor
// count is at least 1/2, for any work profile.
func TestKneeEfficiencyAtLeastHalf(t *testing.T) {
	f := func(t1Raw, tinfRaw uint16) bool {
		t1 := float64(t1Raw%10000) + 1
		tinf := float64(tinfRaw%1000) + 0.5
		if tinf > t1 {
			t1, tinf = tinf, t1
		}
		w := WorkProfile{T1: t1, Tinf: tinf}
		return w.KneeEfficiency(4096) >= 0.5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Properties of the bounds: lower <= upper, both monotone non-decreasing
// in n, and efficiency monotone non-increasing in n.
func TestSpeedupBoundProperties(t *testing.T) {
	f := func(t1Raw, tinfRaw uint16, nRaw uint8) bool {
		t1 := float64(t1Raw%10000) + 1
		tinf := float64(tinfRaw%1000) + 0.5
		if tinf > t1 {
			t1, tinf = tinf, t1
		}
		w := WorkProfile{T1: t1, Tinf: tinf}
		n := int(nRaw%128) + 1
		lo, hi := w.SpeedupLowerBound(n), w.SpeedupUpperBound(n)
		if lo > hi+1e-9 {
			return false
		}
		if w.SpeedupLowerBound(n+1) < lo-1e-9 {
			return false
		}
		if w.EfficiencyLowerBound(n+1) > w.EfficiencyLowerBound(n)+1e-9 {
			return false
		}
		return !math.IsNaN(lo) && !math.IsNaN(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerEdgeCases(t *testing.T) {
	w := WorkProfile{T1: 0, Tinf: 0}
	if p := w.Power(4); p != 0 {
		t.Errorf("Power with T1=0 should be 0, got %v", p)
	}
	if p := (WorkProfile{T1: 10, Tinf: 1}).Power(0); p != 0 {
		t.Errorf("Power(0) should be 0, got %v", p)
	}
}
