package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Requirements records what the coordinator has learned about the
// application's needs during the run. The paper learns requirements
// instead of asking the programmer for a performance model:
//
//   - removed resources are blacklisted so the scheduler does not hand
//     them straight back (the paper notes this is conservative — a link
//     may recover — which is why entries can be expired);
//   - every time a cluster is evacuated for insufficient uplink
//     bandwidth, the estimated bandwidth to that cluster becomes a new
//     lower bound on the bandwidth the application requires.
//
// Requirements is safe for concurrent use: the real runtime's
// coordinator updates it from its event loop while schedulers query it.
type Requirements struct {
	mu sync.Mutex

	blackNodes    map[NodeID]string    // node -> reason
	blackClusters map[ClusterID]string // cluster -> reason

	// minBandwidth is the learned lower bound in bytes/second; zero
	// means nothing learned yet.
	minBandwidth float64
}

// NewRequirements returns an empty requirement set.
func NewRequirements() *Requirements {
	return &Requirements{
		blackNodes:    make(map[NodeID]string),
		blackClusters: make(map[ClusterID]string),
	}
}

// BlacklistNode records that node was removed and must not be re-added.
func (r *Requirements) BlacklistNode(id NodeID, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.blackNodes[id] = reason
}

// BlacklistCluster records that the whole cluster was evacuated.
func (r *Requirements) BlacklistCluster(id ClusterID, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.blackClusters[id] = reason
}

// NodeBlacklisted reports whether the node (or its cluster) is banned.
func (r *Requirements) NodeBlacklisted(node NodeID, cluster ClusterID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.blackNodes[node]; ok {
		return true
	}
	_, ok := r.blackClusters[cluster]
	return ok
}

// ClusterBlacklisted reports whether the cluster is banned.
func (r *Requirements) ClusterBlacklisted(id ClusterID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.blackClusters[id]
	return ok
}

// Pardon removes a cluster from the blacklist — used when the cause of
// the original problem is known to have disappeared (e.g. background
// traffic diminished), the relaxation the paper mentions as future work.
func (r *Requirements) Pardon(id ClusterID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.blackClusters, id)
	for n, reason := range r.blackNodes {
		if strings.HasPrefix(reason, "cluster:"+string(id)) {
			delete(r.blackNodes, n)
		}
	}
}

// LearnMinBandwidth tightens the minimum-bandwidth requirement: bw is
// the estimated bandwidth (bytes/s) to a cluster that proved
// insufficient, so the application needs strictly more than bw. The
// bound only ever increases.
func (r *Requirements) LearnMinBandwidth(bw float64) {
	if bw <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if bw > r.minBandwidth {
		r.minBandwidth = bw
	}
}

// MinBandwidth returns the learned lower bound in bytes/s (0 = none).
func (r *Requirements) MinBandwidth() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.minBandwidth
}

// BlacklistedNodes returns the banned node IDs in sorted order.
func (r *Requirements) BlacklistedNodes() []NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeID, 0, len(r.blackNodes))
	for n := range r.blackNodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlacklistedClusters returns the banned cluster IDs in sorted order.
func (r *Requirements) BlacklistedClusters() []ClusterID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ClusterID, 0, len(r.blackClusters))
	for c := range r.blackClusters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarises the learned requirements for logs and traces.
func (r *Requirements) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("requirements{blacklistedNodes=%d blacklistedClusters=%d minBandwidth=%.0fB/s}",
		len(r.blackNodes), len(r.blackClusters), r.minBandwidth)
}
