package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomStats builds a reproducible mixed fleet: several clusters,
// varied speeds and overheads, occasional link samples.
func randomStats(rng *rand.Rand, n int) []NodeStats {
	stats := make([]NodeStats, n)
	for i := range stats {
		c := ClusterID(fmt.Sprintf("c%d", rng.Intn(4)))
		s := NodeStats{
			Node:      NodeID(fmt.Sprintf("n%03d", i)),
			Cluster:   c,
			Speed:     0.5 + rng.Float64()*2,
			Idle:      rng.Float64() * 0.5,
			IntraComm: rng.Float64() * 0.2,
			InterComm: rng.Float64() * 0.4,
		}
		if rng.Intn(3) == 0 {
			s.Links = map[ClusterID]LinkSample{
				"c0": {Seconds: rng.Float64(), Bytes: rng.Float64() * 1e6},
			}
		}
		stats[i] = s
	}
	return stats
}

// TestBatchWAEMatchesEngineDecide is the extraction guarantee: wrapping
// the decision engine in the BatchWAE objective moves not a single
// decision — Assess must reproduce Decide byte for byte, victims,
// reasons and all.
func TestBatchWAEMatchesEngineDecide(t *testing.T) {
	cfg := DefaultConfig()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewBatchWAE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		stats := randomStats(rng, 1+rng.Intn(40))
		want := eng.Decide(stats)
		got := obj.Assess(PeriodObs{Stats: stats})
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: Decide %+v != Assess %+v", trial, want, got)
		}
	}
	// The empty fleet bootstraps identically too.
	if want, got := eng.Decide(nil), obj.Assess(PeriodObs{}); !reflect.DeepEqual(want, got) {
		t.Fatalf("empty: Decide %+v != Assess %+v", want, got)
	}
}

// TestBatchWAEJudgeMatchesBand: the verdict mapping agrees with the
// band comparison and the engine's step sizes.
func TestBatchWAEJudgeMatchesBand(t *testing.T) {
	cfg := DefaultConfig()
	obj, _ := NewBatchWAE(cfg)
	eng := obj.Engine()
	for _, tc := range []struct {
		health float64
		n      int
		want   Verdict
	}{
		{cfg.EMax + 0.1, 10, VerdictGrow},
		{cfg.EMin - 0.1, 10, VerdictShrink},
		{(cfg.EMin + cfg.EMax) / 2, 10, VerdictHold},
	} {
		v, cnt := obj.Judge(tc.health, tc.n)
		if v != tc.want {
			t.Fatalf("health %.2f: verdict %v, want %v", tc.health, v, tc.want)
		}
		switch v {
		case VerdictGrow:
			if cnt != eng.GrowCount(tc.n, tc.health) {
				t.Fatalf("grow count %d != engine %d", cnt, eng.GrowCount(tc.n, tc.health))
			}
		case VerdictShrink:
			if cnt != eng.ShrinkCount(tc.n, tc.health) {
				t.Fatalf("shrink count %d != engine %d", cnt, eng.ShrinkCount(tc.n, tc.health))
			}
		}
	}
}

func TestObjectiveTraits(t *testing.T) {
	b, _ := NewBatchWAE(DefaultConfig())
	if tr := b.Traits(); !tr.BlacklistVictims || !tr.ClusterEviction {
		t.Fatalf("batch traits %+v: want blacklist and cluster eviction", tr)
	}
	s, _ := NewStreamSLO(DefaultStreamSLO(5))
	if tr := s.Traits(); tr.BlacklistVictims || tr.ClusterEviction {
		t.Fatalf("stream traits %+v: capacity shrink must not blacklist or evict clusters", tr)
	}
}

func TestStreamObsMerge(t *testing.T) {
	a := StreamObs{Arrived: 3, Completed: 2, LatencySum: 1.5, Backlog: 4}
	a.Merge(StreamObs{Arrived: 1, Completed: 2, LatencySum: 0.5, Backlog: 1})
	want := StreamObs{Arrived: 4, Completed: 4, LatencySum: 2.0, Backlog: 5}
	if a != want {
		t.Fatalf("merged %+v, want %+v", a, want)
	}
	if m := a.MeanLatency(); m != 0.5 {
		t.Fatalf("mean %v, want 0.5", m)
	}
	if m := (StreamObs{}).MeanLatency(); m != 0 {
		t.Fatalf("empty mean %v, want 0", m)
	}
}

// TestStreamHealthEdges pins the health scalar's boundary behaviour:
// idle periods are healthy, stalled ones are dead, and nearly-instant
// latencies saturate at the cap instead of recording +Inf.
func TestStreamHealthEdges(t *testing.T) {
	for _, tc := range []struct {
		name string
		obs  StreamObs
		want float64
	}{
		{"idle", StreamObs{}, 1},
		{"stalled backlog", StreamObs{Backlog: 5}, 0},
		{"stalled arrivals", StreamObs{Arrived: 3}, 0},
		{"on target", StreamObs{Completed: 2, LatencySum: 10}, 1},
		{"half target", StreamObs{Completed: 1, LatencySum: 10}, 0.5},
		{"double target", StreamObs{Completed: 4, LatencySum: 10}, 2},
		{"instant caps", StreamObs{Completed: 1, LatencySum: 1e-9}, maxStreamHealth},
		{"zero latency caps", StreamObs{Completed: 1, LatencySum: 0}, maxStreamHealth},
	} {
		if got := StreamHealth(tc.obs, 5); got != tc.want {
			t.Errorf("%s: health %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestStreamSLOConfigValidate(t *testing.T) {
	good := DefaultStreamSLO(5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*StreamSLOConfig){
		"zero target":    func(c *StreamSLOConfig) { c.TargetLatency = 0 },
		"low above high": func(c *StreamSLOConfig) { c.LowRatio = 2 },
		"zero low":       func(c *StreamSLOConfig) { c.LowRatio = 0 },
		"zero shrink":    func(c *StreamSLOConfig) { c.ShrinkAfter = 0 },
		"zero min":       func(c *StreamSLOConfig) { c.MinNodes = 0 },
		"zero grow cap":  func(c *StreamSLOConfig) { c.MaxGrowFactor = 0 },
	} {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := NewStreamSLO(c); err == nil {
			t.Errorf("%s: constructor accepted", name)
		}
	}
}

// TestStreamSLOJudgeHysteresis walks the calm counter through its whole
// state machine: shrink only after ShrinkAfter consecutive calm
// periods, any violation or dead-band period resets the count, and the
// MinNodes floor blocks the release without consuming the calm streak's
// decision.
func TestStreamSLOJudgeHysteresis(t *testing.T) {
	cfg := DefaultStreamSLO(5) // ShrinkAfter 4, LowRatio 0.5, HighRatio 1.0
	s, _ := NewStreamSLO(cfg)
	calm, mid, bad := 3.0, 1.5, 0.5 // calm: 3*0.5>1; mid: dead band; bad: SLO violated

	// Three calm periods: no shrink yet.
	for i := 0; i < 3; i++ {
		if v, _ := s.Judge(calm, 8); v != VerdictHold {
			t.Fatalf("calm period %d: verdict %v, want hold", i, v)
		}
	}
	// A dead-band period resets the streak...
	if v, _ := s.Judge(mid, 8); v != VerdictHold {
		t.Fatal("dead band must hold")
	}
	// ...so three more calm periods still do not shrink.
	for i := 0; i < 3; i++ {
		if v, _ := s.Judge(calm, 8); v != VerdictHold {
			t.Fatalf("calm after reset %d: want hold", i)
		}
	}
	// The fourth consecutive calm period releases exactly one node.
	if v, cnt := s.Judge(calm, 8); v != VerdictShrink || cnt != 1 {
		t.Fatalf("4th calm: verdict %v count %d, want shrink 1", v, cnt)
	}
	// The shrink consumed the streak: the next calm period holds again.
	if v, _ := s.Judge(calm, 8); v != VerdictHold {
		t.Fatal("post-shrink calm must restart the streak")
	}
	// A violation resets the streak too.
	for i := 0; i < 3; i++ {
		s.Judge(calm, 8)
	}
	if v, _ := s.Judge(bad, 8); v != VerdictGrow {
		t.Fatal("violation must grow")
	}
	for i := 0; i < 3; i++ {
		if v, _ := s.Judge(calm, 8); v != VerdictHold {
			t.Fatalf("calm after violation %d: want hold", i)
		}
	}
	// At the MinNodes floor the release is blocked.
	s2, _ := NewStreamSLO(cfg)
	for i := 0; i < 10; i++ {
		if v, cnt := s2.Judge(calm, cfg.MinNodes); v != VerdictHold || cnt != 0 {
			t.Fatalf("at floor: verdict %v count %d, want hold 0", v, cnt)
		}
	}
}

// TestStreamSLOGrowProportional: the grow step tracks the latency
// overshoot and is capped by MaxGrowFactor.
func TestStreamSLOGrowProportional(t *testing.T) {
	s, _ := NewStreamSLO(DefaultStreamSLO(5)) // MaxGrowFactor 1.0
	// health 0.5 = latency at 2x target: ask for ~n more.
	if v, cnt := s.Judge(0.5, 4); v != VerdictGrow || cnt != 4 {
		t.Fatalf("2x overshoot on 4: %v %d, want grow 4", v, cnt)
	}
	// health 0.8 on 4 nodes: round(4*0.25) = 1.
	if v, cnt := s.Judge(0.8, 4); v != VerdictGrow || cnt != 1 {
		t.Fatalf("1.25x overshoot on 4: %v %d, want grow 1", v, cnt)
	}
	// A stalled pipeline (health 0) is capped by the factor, not by the
	// fictitious infinite overshoot.
	if v, cnt := s.Judge(0, 6); v != VerdictGrow || cnt != 6 {
		t.Fatalf("stall on 6: %v %d, want grow 6", v, cnt)
	}
	// Zero nodes bootstraps with one.
	if v, cnt := s.Judge(0, 0); v != VerdictGrow || cnt != 1 {
		t.Fatalf("bootstrap: %v %d, want grow 1", v, cnt)
	}
}

// TestStreamSLOReboundFloor: a violation chasing a release teaches the
// objective a capacity floor — the same level is never probed twice, so
// the loop cannot cycle release/violate/re-grow (the oscillation the
// chaos corpus's no-oscillation invariant watches for).
func TestStreamSLOReboundFloor(t *testing.T) {
	cfg := DefaultStreamSLO(5) // ShrinkAfter 4, ReboundWindow 2
	s, _ := NewStreamSLO(cfg)
	calm, bad := 3.0, 0.5

	shrinkAt := func(n int) {
		t.Helper()
		for i := 0; i < cfg.ShrinkAfter-1; i++ {
			if v, _ := s.Judge(calm, n); v != VerdictHold {
				t.Fatalf("calm %d: verdict %v, want hold", i, v)
			}
		}
		if v, cnt := s.Judge(calm, n); v != VerdictShrink || cnt != 1 {
			t.Fatalf("verdict %v count %d, want shrink 1", v, cnt)
		}
	}
	shrinkAt(2)
	// The violation lands one judged period after the release: rebound.
	if v, _ := s.Judge(bad, 1); v != VerdictGrow {
		t.Fatal("rebound violation must grow")
	}
	// Back at 2 nodes: the learned floor blocks every further release.
	for i := 0; i < 3*cfg.ShrinkAfter; i++ {
		if v, cnt := s.Judge(calm, 2); v != VerdictHold || cnt != 0 {
			t.Fatalf("probe %d after rebound: verdict %v count %d, want hold", i, v, cnt)
		}
	}
	// A larger fleet may still release down to (not through) the floor.
	s.Judge(1.5, 3) // dead band: restart the calm streak
	shrinkAt(3)

	// A violation beyond the window is new load, not a rebound: no floor.
	s2, _ := NewStreamSLO(cfg)
	for i := 0; i < cfg.ShrinkAfter-1; i++ {
		s2.Judge(calm, 2)
	}
	if v, _ := s2.Judge(calm, 2); v != VerdictShrink {
		t.Fatal("setup shrink missing")
	}
	for i := 0; i < cfg.ReboundWindow+1; i++ {
		s2.Judge(calm, 1)
	}
	if v, _ := s2.Judge(bad, 1); v != VerdictGrow {
		t.Fatal("late violation must grow")
	}
	for i := 0; i < cfg.ShrinkAfter-1; i++ {
		s2.Judge(calm, 2)
	}
	if v, _ := s2.Judge(calm, 2); v != VerdictShrink {
		t.Fatal("no floor should have been learned from a late violation")
	}
}

// TestStreamSLOStragglerShed: a violation streak with no capacity
// growth — the pool has nothing left to grant — flips the objective
// from growing to shedding the worst node, and fresh capacity resets
// the streak.
func TestStreamSLOStragglerShed(t *testing.T) {
	cfg := DefaultStreamSLO(5) // StuckAfter 3
	s, _ := NewStreamSLO(cfg)
	bad := 0.5

	// Violations while capacity is still arriving: grow every time.
	for _, n := range []int{4, 6, 8} {
		if v, _ := s.Judge(bad, n); v != VerdictGrow {
			t.Fatalf("growing fleet at %d: want grow", n)
		}
	}
	// Capacity stalls at 8: StuckAfter more violations still grow...
	for i := 0; i < cfg.StuckAfter-1; i++ {
		if v, _ := s.Judge(bad, 8); v != VerdictGrow {
			t.Fatalf("stuck violation %d: want grow", i)
		}
	}
	// ...then the objective sheds one straggler per violating period.
	for i := 0; i < 3; i++ {
		if v, cnt := s.Judge(bad, 8-i); v != VerdictShed || cnt != 1 {
			t.Fatalf("shed %d: verdict %v count %d, want shed 1", i, v, cnt)
		}
	}
	// New capacity (the provisioner found a node after all): back to grow.
	if v, _ := s.Judge(bad, 9); v != VerdictGrow {
		t.Fatal("fresh capacity must reset the stuck streak")
	}

	// The shed maps to a blacklisting removal on the flat path.
	s3, _ := NewStreamSLO(cfg)
	stats := []NodeStats{
		{Node: "good", Cluster: "c0", Speed: 2, Idle: 0.05},
		{Node: "bad", Cluster: "c1", Speed: 0.5, Idle: 0.3, InterComm: 0.5},
	}
	hot := &StreamObs{Completed: 10, LatencySum: 100} // mean 10s vs target 5s
	for i := 0; i <= cfg.StuckAfter; i++ {
		d := s3.Assess(PeriodObs{Stats: stats, Stream: hot})
		if i < cfg.StuckAfter {
			if d.Action != ActionAdd || d.Blacklist {
				t.Fatalf("violation %d: %+v, want plain add", i, d)
			}
			continue
		}
		if d.Action != ActionRemoveNodes || !d.Blacklist {
			t.Fatalf("stuck decision %+v, want blacklisting removal", d)
		}
		if len(d.RemoveNodes) != 1 || d.RemoveNodes[0] != "bad" {
			t.Fatalf("shed victims %v, want the worst node", d.RemoveNodes)
		}
		if !strings.Contains(d.Reason, "straggler") {
			t.Fatalf("reason %q", d.Reason)
		}
	}

	// A calm period also resets the streak.
	s4, _ := NewStreamSLO(cfg)
	for i := 0; i < cfg.StuckAfter; i++ {
		s4.Judge(bad, 4)
	}
	s4.Judge(3.0, 4) // calm
	if v, _ := s4.Judge(bad, 4); v != VerdictGrow {
		t.Fatal("calm period must reset the stuck streak")
	}
}

// TestStreamSLOAssessVictims: the flat-kernel path ranks shrink victims
// by badness — the slow, communication-bound node goes first.
func TestStreamSLOAssessVictims(t *testing.T) {
	cfg := DefaultStreamSLO(5)
	cfg.ShrinkAfter = 1
	s, _ := NewStreamSLO(cfg)
	stats := []NodeStats{
		{Node: "good", Cluster: "c0", Speed: 2, Idle: 0.05},
		{Node: "bad", Cluster: "c1", Speed: 0.5, Idle: 0.3, InterComm: 0.5},
		{Node: "ok", Cluster: "c0", Speed: 1.5, Idle: 0.1},
	}
	calm := &StreamObs{Completed: 10, LatencySum: 10} // mean 1s vs target 5s
	d := s.Assess(PeriodObs{Stats: stats, Stream: calm})
	if d.Action != ActionRemoveNodes || len(d.RemoveNodes) != 1 {
		t.Fatalf("decision %+v, want one removal", d)
	}
	if d.RemoveNodes[0] != "bad" {
		t.Fatalf("victim %s, want the worst node", d.RemoveNodes[0])
	}
	if !strings.Contains(d.Reason, "release") {
		t.Fatalf("reason %q", d.Reason)
	}
	// An empty fleet bootstraps.
	s2, _ := NewStreamSLO(cfg)
	if d := s2.Assess(PeriodObs{}); d.Action != ActionAdd || d.AddCount != 1 {
		t.Fatalf("bootstrap decision %+v", d)
	}
	// A violated SLO grows through Assess as well.
	s3, _ := NewStreamSLO(cfg)
	hot := &StreamObs{Completed: 10, LatencySum: 100} // mean 10s vs target 5s
	if d := s3.Assess(PeriodObs{Stats: stats, Stream: hot}); d.Action != ActionAdd {
		t.Fatalf("violation decision %+v, want add", d)
	}
}

// TestStreamSLOHealthFallbacks: without a stream observation the
// objective trusts the precomputed aggregate (sharded root) or reports
// neutral health.
func TestStreamSLOHealthFallbacks(t *testing.T) {
	s, _ := NewStreamSLO(DefaultStreamSLO(5))
	if h := s.Health(PeriodObs{}); h != 1 {
		t.Fatalf("no observation: health %v, want neutral 1", h)
	}
	if h := s.Health(PeriodObs{Health: 0.25, HasHealth: true}); h != 0.25 {
		t.Fatalf("precomputed: health %v, want 0.25", h)
	}
}

// TestObjectiveExplainStability pins the log wording both pipelines
// must render identically.
func TestObjectiveExplainStability(t *testing.T) {
	b, _ := NewBatchWAE(DefaultConfig())
	if got := b.Explain(VerdictGrow, 0.61, 8, 3); got != "WAE 0.610 > EMax 0.50 on 8 nodes: request 3 more" {
		t.Fatalf("batch grow: %q", got)
	}
	s, _ := NewStreamSLO(DefaultStreamSLO(5))
	if got := s.Explain(VerdictGrow, 0.500, 8, 3); got != "stream health 0.500 below SLO (target 5s) on 8 nodes: request 3 more" {
		t.Fatalf("stream grow: %q", got)
	}
	if got := s.Explain(VerdictShrink, 3.0, 8, 1); got != "stream health 3.000 calm for 4 periods on 8 nodes: release 1" {
		t.Fatalf("stream shrink: %q", got)
	}
}
