// Pluggable adaptation objectives (ISSUE 9). The paper's Figure-2 loop
// hard-codes one goal — keep the weighted average efficiency inside
// [EMin, EMax] — which fits barrier-synchronised batch jobs but not
// continuous workloads. An Objective owns the policy end of the loop:
// it reduces one monitoring period's observations to a health scalar,
// turns health into a grow/hold/shrink verdict, and declares whether
// shrink victims are blacklisted (a badness judgement: the resource is
// unfit) or merely released (a capacity judgement: the resource may
// come back). The coordinator kernels keep the mechanism — smoothing,
// report plumbing, eviction, requirements learning, post-action reset —
// and consult the objective instead of comparing WAE to EMin/EMax
// directly.
package core

import (
	"fmt"
	"math"
)

// StreamObs is one monitoring period's view of a streaming pipeline:
// open-loop arrivals in, completed items out, the latency they paid,
// and what is still queued. The sharded tree ships per-cluster partials
// of exactly these fields inside ClusterSummary; summing partials
// yields the global observation, so Merge must stay a plain
// field-by-field sum.
type StreamObs struct {
	// Arrived counts items that entered the pipeline this period.
	Arrived int
	// Completed counts items that left the last stage this period.
	Completed int
	// LatencySum is the summed end-to-end latency (seconds) of the
	// completed items; LatencySum/Completed is the period's mean.
	LatencySum float64
	// Backlog is the number of items queued or in flight at period end.
	Backlog int
}

// Merge adds another partial observation (the root kernel's summation
// over cluster partials).
func (o *StreamObs) Merge(p StreamObs) {
	o.Arrived += p.Arrived
	o.Completed += p.Completed
	o.LatencySum += p.LatencySum
	o.Backlog += p.Backlog
}

// MeanLatency is the period's mean end-to-end latency (0 if nothing
// completed).
func (o StreamObs) MeanLatency() float64 {
	if o.Completed == 0 {
		return 0
	}
	return o.LatencySum / float64(o.Completed)
}

// PeriodObs is everything an objective may observe about one period.
// The flat kernel and the sub-kernels fill Stats (smoothed per-node
// statistics); the sharded root has no per-node stats and instead
// provides the reconstructed aggregate via Health/HasHealth. Stream is
// set when the workload reports streaming observations.
type PeriodObs struct {
	// Stats are the smoothed per-node statistics (nil at the sharded
	// root, which only sees cluster summaries).
	Stats []NodeStats
	// Health is the precomputed aggregate efficiency when Stats is nil
	// (the root's reassociated WAE reconstruction).
	Health    float64
	HasHealth bool
	// Stream carries the period's streaming observation, when any.
	Stream *StreamObs
}

// Verdict is the objective's directional judgement on one period.
type Verdict int

const (
	// VerdictHold: the health scalar is inside the objective's band.
	VerdictHold Verdict = iota
	// VerdictGrow: request more nodes.
	VerdictGrow
	// VerdictShrink: release nodes (count may be 0 when the floor is
	// already reached — mapped to no action, with the floor reason).
	VerdictShrink
	// VerdictShed: release the worst nodes AND blacklist them. Unlike
	// VerdictShrink's surplus release this is a judgement on the nodes:
	// they are actively harming the objective (a straggler holding
	// pipeline items hostage), so the provisioner must not hand them
	// straight back.
	VerdictShed
)

// Traits are the static policy properties the kernels consult when
// turning a verdict into effects.
type Traits struct {
	// BlacklistVictims: shrink victims are blacklisted so the scheduler
	// cannot hand them straight back (the batch badness judgement).
	// Objectives that shrink on surplus capacity leave victims
	// pardonable — the same nodes must be re-grantable when load
	// returns, or every load swing would permanently drain the pool.
	BlacklistVictims bool
	// ClusterEviction: the shrink path may escalate to whole-cluster
	// eviction via the bandwidth-culprit and inter-comm dominance rules
	// (and thereby tighten the learned bandwidth requirement).
	ClusterEviction bool
}

// Objective is the pluggable policy of the adaptation loop. Judge may
// be stateful (hysteresis) and is called exactly once per monitoring
// period by whichever kernel drives the objective; Health and Explain
// must stay pure so the flat and sharded pipelines render identical
// period logs from identical inputs.
type Objective interface {
	// Name identifies the objective in traces and annotations.
	Name() string
	// Traits returns the static policy properties.
	Traits() Traits
	// Health reduces one period's observations to the scalar recorded
	// in the period log (WAE for batch, target/latency for streams).
	Health(po PeriodObs) float64
	// Judge maps health and the current node count to a verdict plus a
	// magnitude (nodes to add or remove).
	Judge(health float64, n int) (Verdict, int)
	// Explain renders the verdict's reason string; the flat kernel and
	// the sharded root both use it, so their period logs match
	// verbatim.
	Explain(v Verdict, health float64, n, count int) string
	// Assess is the full per-node decision for kernels that hold
	// per-node statistics (the flat kernel): verdict, magnitude, and
	// concrete victims. Implementations derive it from Judge so the
	// flat and sharded pipelines share one state machine.
	Assess(po PeriodObs) Decision
}

// ---- BatchWAE: the paper's efficiency band, extracted ----------------

// BatchWAE is the original objective: keep the weighted average
// efficiency inside [EMin, EMax], rank victims by badness, escalate to
// whole-cluster eviction on bandwidth emergencies, and blacklist what
// was removed. It wraps the decision Engine unchanged, so extracting
// the objective does not move a single decision.
type BatchWAE struct {
	eng *Engine
}

// NewBatchWAE validates cfg and returns the batch objective.
func NewBatchWAE(cfg Config) (*BatchWAE, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &BatchWAE{eng: eng}, nil
}

// Engine exposes the wrapped decision engine (the kernels' cluster
// eviction mechanics still need GrowCount/ShrinkCount and the culprit
// thresholds).
func (b *BatchWAE) Engine() *Engine { return b.eng }

// Name implements Objective.
func (b *BatchWAE) Name() string { return "batch-wae" }

// Traits implements Objective.
func (b *BatchWAE) Traits() Traits {
	return Traits{BlacklistVictims: true, ClusterEviction: true}
}

// Health implements Objective: the (weighted) average efficiency, or
// the root's precomputed reconstruction when per-node stats are absent.
func (b *BatchWAE) Health(po PeriodObs) float64 {
	if po.Stats == nil && po.HasHealth {
		return po.Health
	}
	if b.eng.cfg.UnweightedEfficiency {
		return Efficiency(po.Stats)
	}
	return WeightedAverageEfficiency(po.Stats)
}

// Judge implements Objective: the paper's band comparison with the
// Eager-derived grow step and the symmetric shrink step.
func (b *BatchWAE) Judge(health float64, n int) (Verdict, int) {
	switch {
	case health > b.eng.cfg.EMax:
		return VerdictGrow, b.eng.GrowCount(n, health)
	case health < b.eng.cfg.EMin:
		return VerdictShrink, b.eng.ShrinkCount(n, health)
	}
	return VerdictHold, 0
}

// Explain implements Objective, reproducing the engine's reason
// strings byte for byte (the flat/sharded parity suite compares them).
func (b *BatchWAE) Explain(v Verdict, health float64, n, count int) string {
	cfg := b.eng.cfg
	switch v {
	case VerdictGrow:
		return fmt.Sprintf("WAE %.3f > EMax %.2f on %d nodes: request %d more",
			health, cfg.EMax, n, count)
	case VerdictShrink:
		if count == 0 {
			return fmt.Sprintf("WAE %.3f < EMin %.2f but already at MinNodes=%d",
				health, cfg.EMin, cfg.MinNodes)
		}
		return fmt.Sprintf("WAE %.3f < EMin %.2f on %d nodes: remove %d worst",
			health, cfg.EMin, n, count)
	default:
		return fmt.Sprintf("WAE %.3f within [%.2f,%.2f]", health, cfg.EMin, cfg.EMax)
	}
}

// Assess implements Objective by delegating to the engine's Decide —
// including the cluster-eviction rules that need per-node link samples.
func (b *BatchWAE) Assess(po PeriodObs) Decision {
	return b.eng.Decide(po.Stats)
}

// ---- StreamSLO: throughput/latency targets for pipelines -------------

// StreamSLOConfig parameterises the streaming objective.
type StreamSLOConfig struct {
	// TargetLatency is the end-to-end latency SLO in seconds: the mean
	// latency of a period's completed items should stay below it.
	TargetLatency float64
	// HighRatio: the objective grows when mean latency exceeds
	// HighRatio × target (default 1.0 — any overshoot is a violation).
	HighRatio float64
	// LowRatio: a period counts as calm when mean latency is below
	// LowRatio × target AND the backlog is empty (default 0.5). The gap
	// between HighRatio and LowRatio is the hysteresis dead band that
	// prevents grow/shrink oscillation.
	LowRatio float64
	// ShrinkAfter is how many consecutive calm periods must pass before
	// one node is released (default 4).
	ShrinkAfter int
	// MaxGrowFactor caps a single grow step at factor × current nodes
	// (default 1.0).
	MaxGrowFactor float64
	// MinNodes is the floor below which the pipeline never shrinks.
	MinNodes int
	// StuckAfter is the straggler guard: after this many consecutive
	// violating periods during which the node count did not grow —
	// grow requests are being made but the pool has nothing left to
	// grant — more capacity is evidently not coming, so the objective
	// starts shedding the worst-badness node each violating period
	// instead. A degraded node poisons pipeline latency by holding
	// items hostage, and shedding (with blacklisting, so it is not
	// handed straight back) is the only remaining lever. 0 disables
	// the guard (default 3).
	StuckAfter int
	// ReboundWindow is the anti-oscillation guard: when an SLO
	// violation follows within this many judged periods of a release,
	// the release was a mistake — the survivors could not absorb the
	// load. The objective re-grows and learns the pre-release node
	// count as a capacity floor it never shrinks below again, so the
	// loop cannot cycle release/violate/re-grow around the same level.
	// 0 disables the guard (default 2).
	ReboundWindow int
	// Weights rank shrink victims (worst badness first), reusing the
	// batch badness formula: slow or communication-bound nodes go
	// first.
	Weights BadnessWeights
}

// DefaultStreamSLO returns the streaming objective's defaults for a
// given latency target (seconds).
func DefaultStreamSLO(targetLatency float64) StreamSLOConfig {
	return StreamSLOConfig{
		TargetLatency: targetLatency,
		HighRatio:     1.0,
		LowRatio:      0.5,
		ShrinkAfter:   4,
		MaxGrowFactor: 1.0,
		MinNodes:      1,
		StuckAfter:    3,
		ReboundWindow: 2,
		Weights:       DefaultBadnessWeights(),
	}
}

// Validate checks the configuration.
func (c StreamSLOConfig) Validate() error {
	if c.TargetLatency <= 0 {
		return fmt.Errorf("core: stream SLO needs TargetLatency > 0, got %v", c.TargetLatency)
	}
	if !(c.LowRatio > 0 && c.LowRatio < c.HighRatio) {
		return fmt.Errorf("core: need 0 < LowRatio < HighRatio, got %v/%v", c.LowRatio, c.HighRatio)
	}
	if c.ShrinkAfter < 1 {
		return fmt.Errorf("core: ShrinkAfter %d < 1", c.ShrinkAfter)
	}
	if c.MinNodes < 1 {
		return fmt.Errorf("core: MinNodes %d < 1", c.MinNodes)
	}
	if c.MaxGrowFactor <= 0 {
		return fmt.Errorf("core: MaxGrowFactor %v <= 0", c.MaxGrowFactor)
	}
	if c.ReboundWindow < 0 {
		return fmt.Errorf("core: ReboundWindow %d < 0", c.ReboundWindow)
	}
	if c.StuckAfter < 0 {
		return fmt.Errorf("core: StuckAfter %d < 0", c.StuckAfter)
	}
	return nil
}

// maxStreamHealth bounds the health scalar so a nearly-instant period
// cannot record +Inf (and histograms stay sane).
const maxStreamHealth = 100

// StreamHealth maps one period's stream observation to the health
// scalar: target/achieved mean latency, so 1.0 is exactly on target and
// larger is comfortably under it. An idle period (nothing arrived,
// nothing pending) is healthy; a stalled one (items waiting, none
// completed) scores 0.
func StreamHealth(o StreamObs, targetLatency float64) float64 {
	if o.Completed == 0 {
		if o.Backlog == 0 && o.Arrived == 0 {
			return 1
		}
		return 0
	}
	lat := o.MeanLatency()
	if lat <= 0 || targetLatency/lat > maxStreamHealth {
		return maxStreamHealth
	}
	return targetLatency / lat
}

// StreamSLO adapts a streaming pipeline to its latency SLO. Growth is
// immediate and proportional to the overshoot; shrink is deliberately
// sluggish — ShrinkAfter consecutive calm periods, one node at a time,
// victims never blacklisted — because releasing capacity is a
// reversible economy measure, not a verdict on the node, and the
// asymmetry is what keeps the loop from oscillating around the target.
// When the asymmetry is not enough — a release is followed so closely
// by a violation that the release itself must have caused it — the
// rebound guard (ReboundWindow) learns the pre-release node count as a
// capacity floor, so each level can be probed at most once.
type StreamSLO struct {
	cfg  StreamSLOConfig
	calm int // consecutive calm periods (hysteresis state)

	// Rebound tracking (the ReboundWindow guard). Like the batch
	// engine's blacklist, floor is a requirement learned during the
	// run: monotone, never unlearned, and carried across post-action
	// resets because the objective instance is long-lived.
	floor       int // learned capacity floor, 0 = none
	lastShrinkN int // node count just before the latest release, 0 = none pending
	sinceShrink int // judged periods since that release

	// Straggler tracking (the StuckAfter guard).
	stuck     int // consecutive violating periods without capacity growth
	prevViolN int // node count at the previous violating period
}

// NewStreamSLO validates cfg and returns the streaming objective.
func NewStreamSLO(cfg StreamSLOConfig) (*StreamSLO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &StreamSLO{cfg: cfg}, nil
}

// Config returns the objective's configuration.
func (s *StreamSLO) Config() StreamSLOConfig { return s.cfg }

// Name implements Objective.
func (s *StreamSLO) Name() string { return "stream-slo" }

// Traits implements Objective: capacity-only shrink, no blacklisting,
// no cluster eviction.
func (s *StreamSLO) Traits() Traits { return Traits{} }

// Health implements Objective.
func (s *StreamSLO) Health(po PeriodObs) float64 {
	if po.Stream == nil {
		if po.HasHealth {
			return po.Health
		}
		return 1 // no streaming observation yet: nothing to react to
	}
	return StreamHealth(*po.Stream, s.cfg.TargetLatency)
}

// minNodes is the effective shrink floor: the configured minimum,
// raised by whatever capacity level the rebound guard has learned to
// be load-bearing.
func (s *StreamSLO) minNodes() int {
	if s.floor > s.cfg.MinNodes {
		return s.floor
	}
	return s.cfg.MinNodes
}

// Judge implements Objective. health is target/latency: below
// 1/HighRatio the SLO is violated and the pipeline grows; above
// 1/LowRatio the period is calm and the hysteresis counter advances;
// anywhere between, the counter resets and nothing happens.
func (s *StreamSLO) Judge(health float64, n int) (Verdict, int) {
	if s.lastShrinkN > 0 {
		s.sinceShrink++
		if s.sinceShrink > s.cfg.ReboundWindow {
			// The release stuck: later violations are new load, not the
			// shrink's fault.
			s.lastShrinkN = 0
		}
	}
	switch {
	case health*s.cfg.HighRatio < 1:
		s.calm = 0
		if s.lastShrinkN > 0 {
			// The violation chased the release: that capacity was
			// load-bearing after all. Learn it as a floor so the loop
			// cannot oscillate release/violate/re-grow around it.
			if s.lastShrinkN > s.floor {
				s.floor = s.lastShrinkN
			}
			s.lastShrinkN = 0
		}
		if n <= 0 {
			s.stuck, s.prevViolN = 0, 0
			return VerdictGrow, 1
		}
		if n > s.prevViolN {
			// New capacity arrived since the last violating period; give
			// it a chance to absorb the load before concluding stuck.
			s.stuck = 0
		}
		s.prevViolN = n
		s.stuck++
		if s.cfg.StuckAfter > 0 && s.stuck > s.cfg.StuckAfter && n > s.minNodes() {
			return VerdictShed, 1
		}
		// Proportional response: latency overshoot 1/health means the
		// pipeline needs roughly that factor more capacity.
		overshoot := float64(maxStreamHealth)
		if health > 0 {
			overshoot = 1 / health
		}
		add := int(math.Round(float64(n) * (overshoot - 1)))
		if add < 1 {
			add = 1
		}
		if cap := int(math.Ceil(float64(n) * s.cfg.MaxGrowFactor)); add > cap {
			add = cap
		}
		return VerdictGrow, add
	case health*s.cfg.LowRatio > 1:
		s.calm++
		s.stuck, s.prevViolN = 0, 0
		if s.calm >= s.cfg.ShrinkAfter && n > s.minNodes() {
			s.calm = 0
			s.lastShrinkN = n
			s.sinceShrink = 0
			return VerdictShrink, 1
		}
		return VerdictHold, 0
	default:
		s.calm = 0
		s.stuck, s.prevViolN = 0, 0
		return VerdictHold, 0
	}
}

// Explain implements Objective.
func (s *StreamSLO) Explain(v Verdict, health float64, n, count int) string {
	switch v {
	case VerdictGrow:
		return fmt.Sprintf("stream health %.3f below SLO (target %.3gs) on %d nodes: request %d more",
			health, s.cfg.TargetLatency, n, count)
	case VerdictShrink:
		if count == 0 {
			return fmt.Sprintf("stream health %.3f but already at MinNodes=%d", health, s.minNodes())
		}
		return fmt.Sprintf("stream health %.3f calm for %d periods on %d nodes: release %d",
			health, s.cfg.ShrinkAfter, n, count)
	case VerdictShed:
		return fmt.Sprintf("stream health %.3f stuck below SLO on %d nodes with no capacity coming: shed %d straggler",
			health, n, count)
	default:
		return fmt.Sprintf("stream health %.3f within band", health)
	}
}

// Assess implements Objective for the flat kernel: judge the health
// scalar, then pick concrete shrink victims by badness from the
// per-node statistics — the same ranking the sharded root reproduces
// from proposal samples.
func (s *StreamSLO) Assess(po PeriodObs) Decision {
	n := len(po.Stats)
	h := s.Health(po)
	if n == 0 {
		return Decision{Action: ActionAdd, AddCount: 1,
			Reason: "no live nodes; bootstrap by requesting one"}
	}
	v, cnt := s.Judge(h, n)
	d := Decision{WAE: h}
	switch v {
	case VerdictGrow:
		d.Action = ActionAdd
		d.AddCount = cnt
	case VerdictShrink, VerdictShed:
		if cnt == 0 {
			d.Action = ActionNone
			break
		}
		ranked := RankNodes(po.Stats, s.cfg.Weights)
		if cnt > len(ranked) {
			cnt = len(ranked)
		}
		victims := make([]NodeID, 0, cnt)
		for _, nb := range ranked[:cnt] {
			victims = append(victims, nb.Node)
		}
		d.Action = ActionRemoveNodes
		d.RemoveNodes = victims
		d.Blacklist = v == VerdictShed
	default:
		d.Action = ActionNone
	}
	d.Reason = s.Explain(v, h, n, cnt)
	return d
}

var (
	_ Objective = (*BatchWAE)(nil)
	_ Objective = (*StreamSLO)(nil)
)
