package core

import "sort"

// BadnessWeights are the α, β, γ coefficients of the paper's heuristic
// badness formulas:
//
//	proc_badness_i    = α·(1/speed_i) + β·ic_overhead_i + γ·inWorstCluster(i)
//	cluster_badness_c = α·(1/speed_c) + β·ic_overhead_c
//
// Speeds are relative (fastest = 1), so 1/speed >= 1. The paper chooses
// the coefficients empirically such that a few percent of inter-cluster
// overhead already dominates (it indicates a bandwidth problem) and such
// that processors of the worst cluster are preferentially evacuated
// (removing processors of a single cluster reduces the amount of
// wide-area communication).
type BadnessWeights struct {
	Alpha float64 // weight of the inverse relative speed term
	Beta  float64 // weight of the inter-cluster overhead term
	Gamma float64 // bonus for membership in the worst cluster
}

// DefaultBadnessWeights mirrors the empirically established constants
// documented in DESIGN.md (the paper's exact numerals are unreadable in
// the text we received; these reproduce the described behaviour).
func DefaultBadnessWeights() BadnessWeights {
	return BadnessWeights{Alpha: 1.0, Beta: 100.0, Gamma: 10.0}
}

// NodeBadness is a node's score: higher is worse.
type NodeBadness struct {
	Node    NodeID
	Cluster ClusterID
	Badness float64
}

// ClusterBadness is a cluster's score: higher is worse.
type ClusterBadness struct {
	Cluster   ClusterID
	Badness   float64
	InterComm float64
	Nodes     []NodeID
}

// invSpeed guards the 1/speed term against zero speeds: an unmeasured or
// stopped node is maximally slow but must not produce +Inf, which would
// defeat the β and γ terms entirely.
func invSpeed(rel float64) float64 {
	const floor = 1e-3
	if rel < floor {
		rel = floor
	}
	return 1 / rel
}

// RankClusters computes cluster badness for every cluster present in
// stats and returns them sorted worst-first. Ties break on ClusterID so
// the ranking is deterministic.
func RankClusters(stats []NodeStats, w BadnessWeights) []ClusterBadness {
	agg := AggregateClusters(stats)
	out := make([]ClusterBadness, 0, len(agg))
	for _, c := range agg {
		out = append(out, ClusterBadness{
			Cluster:   c.Cluster,
			Badness:   w.Alpha*invSpeed(c.RelSpeed) + w.Beta*c.InterComm,
			InterComm: c.InterComm,
			Nodes:     c.Nodes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Badness != out[j].Badness {
			return out[i].Badness > out[j].Badness
		}
		return out[i].Cluster < out[j].Cluster
	})
	return out
}

// RankNodes computes per-node badness and returns the nodes sorted
// worst-first. The worst cluster (per RankClusters) contributes the γ
// bonus to its members. Ties break on NodeID for determinism.
func RankNodes(stats []NodeStats, w BadnessWeights) []NodeBadness {
	if len(stats) == 0 {
		return nil
	}
	rel := RelativeSpeeds(stats)
	var worst ClusterID
	if clusters := RankClusters(stats, w); len(clusters) > 0 {
		worst = clusters[0].Cluster
	}
	out := make([]NodeBadness, 0, len(stats))
	for i, s := range stats {
		b := w.Alpha*invSpeed(rel[i]) + w.Beta*s.InterComm
		if s.Cluster == worst {
			b += w.Gamma
		}
		out = append(out, NodeBadness{Node: s.Node, Cluster: s.Cluster, Badness: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Badness != out[j].Badness {
			return out[i].Badness > out[j].Badness
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// InvSpeed exposes the guarded 1/speed term of the badness formulas.
// The sharded root kernel (internal/coord) recomputes node badness from
// cluster summaries and must score proposals with exactly the same
// floor the flat ranking uses, or flat and hierarchical runs would
// diverge on unmeasured nodes.
func InvSpeed(rel float64) float64 { return invSpeed(rel) }
