package core

import (
	"fmt"
	"math"
)

// Config holds the adaptation thresholds and heuristic constants.
type Config struct {
	// EMin is the lower weighted-average-efficiency threshold. Below it
	// the coordinator removes the worst nodes: such low efficiency either
	// indicates a performance problem (overloaded link or processors), in
	// which case removal helps, or simply too many processors, in which
	// case removal at least does no harm. Paper value: 0.30.
	EMin float64
	// EMax is the upper threshold, derived from Eager, Zahorjan &
	// Lazowska: at the optimal processor count efficiency is at least
	// 0.5, so adding processors while efficiency <= 0.5 only lowers
	// utilisation without significant gain. Paper value: 0.50.
	EMax float64

	// Weights are the α/β/γ badness coefficients.
	Weights BadnessWeights

	// ClusterDropInterComm is the "exceptionally high" inter-cluster
	// overhead fraction above which the whole cluster is removed at once
	// (its uplink bandwidth is concluded to be insufficient) instead of
	// ranking and removing individual nodes.
	ClusterDropInterComm float64

	// ClusterDropRelative additionally requires the offending cluster's
	// inter-cluster overhead to exceed the runner-up's by this factor:
	// a saturated uplink also elevates its neighbours' overhead (their
	// steals cross the same link), and "exceptionally high" must single
	// out the culprit, not the collateral. 0 disables the check. Both
	// thresholds apply only to the overhead-based fallback; when the
	// statistics carry per-pair transfer samples the bandwidth rule
	// below takes precedence.
	ClusterDropRelative float64

	// ClusterDropBWRatio drives the primary, measurement-based rule:
	// when per-pair bandwidth estimates exist, the cluster whose BEST
	// pair bandwidth is below this fraction of the healthiest pair in
	// the grid is the congestion culprit and is evacuated. The paper
	// estimates exactly these pair bandwidths from data transfer times.
	ClusterDropBWRatio float64

	// MinPairBytes is the evidence floor: pair-bandwidth estimates
	// built on fewer transferred bytes are ignored as noise.
	MinPairBytes float64

	// MinNodes is the floor below which the engine never shrinks the
	// computation (at least 1).
	MinNodes int

	// MaxGrowFactor caps a single grow step at MaxGrowFactor × the
	// current node count, so one optimistic period cannot over-allocate.
	MaxGrowFactor float64

	// UnweightedEfficiency makes the engine use the classic
	// (speed-blind) parallel efficiency instead of the weighted average
	// efficiency — the ablation showing why the paper's weighting
	// matters on heterogeneous resources.
	UnweightedEfficiency bool
}

// DefaultConfig returns the paper's thresholds with the documented
// heuristic constants.
func DefaultConfig() Config {
	return Config{
		EMin:                 0.30,
		EMax:                 0.50,
		Weights:              DefaultBadnessWeights(),
		ClusterDropInterComm: 0.25,
		ClusterDropRelative:  1.5,
		ClusterDropBWRatio:   0.1,
		MinPairBytes:         256 << 10,
		MinNodes:             1,
		MaxGrowFactor:        1.0,
	}
}

// Validate checks threshold sanity.
func (c Config) Validate() error {
	if !(c.EMin > 0 && c.EMin < c.EMax && c.EMax <= 1) {
		return fmt.Errorf("core: need 0 < EMin < EMax <= 1, got EMin=%v EMax=%v", c.EMin, c.EMax)
	}
	if c.ClusterDropInterComm <= 0 || c.ClusterDropInterComm > 1 {
		return fmt.Errorf("core: ClusterDropInterComm %v out of (0,1]", c.ClusterDropInterComm)
	}
	if c.MinNodes < 1 {
		return fmt.Errorf("core: MinNodes %d < 1", c.MinNodes)
	}
	if c.MaxGrowFactor <= 0 {
		return fmt.Errorf("core: MaxGrowFactor %v <= 0", c.MaxGrowFactor)
	}
	return nil
}

// Action is the kind of adaptation step the engine decided on.
type Action int

const (
	// ActionNone: WAE is between the thresholds; leave the resource set
	// alone. (This is also where the paper notes opportunistic migration
	// would help but is not supported by current grid schedulers.)
	ActionNone Action = iota
	// ActionAdd: WAE exceeded EMax; request AddCount extra nodes.
	ActionAdd
	// ActionRemoveNodes: WAE fell below EMin; remove the listed worst
	// nodes.
	ActionRemoveNodes
	// ActionRemoveCluster: one cluster's inter-cluster overhead is
	// exceptionally high; evacuate that entire cluster.
	ActionRemoveCluster
)

// String implements fmt.Stringer for logging and traces.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionAdd:
		return "add"
	case ActionRemoveNodes:
		return "remove-nodes"
	case ActionRemoveCluster:
		return "remove-cluster"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Decision is the engine's output for one monitoring period.
type Decision struct {
	Action Action
	// WAE is the weighted average efficiency the decision is based on.
	WAE float64
	// AddCount is how many nodes to request (ActionAdd).
	AddCount int
	// RemoveNodes lists the nodes to evict, worst first
	// (ActionRemoveNodes).
	RemoveNodes []NodeID
	// Blacklist marks RemoveNodes as harmful rather than surplus: the
	// coordinator blacklists them even when the objective's traits
	// leave ordinary shrink victims pardonable (a shed straggler must
	// not be handed straight back by the provisioner).
	Blacklist bool
	// RemoveCluster is the cluster to evacuate (ActionRemoveCluster).
	RemoveCluster ClusterID
	// ClusterInterComm is the offending cluster's inter-cluster overhead
	// (ActionRemoveCluster); the coordinator uses it together with
	// bandwidth estimates to tighten the learned minimum-bandwidth
	// requirement.
	ClusterInterComm float64
	// MeasuredBandwidth is the culprit's best measured pair bandwidth
	// (bytes/s) when the bandwidth rule fired; 0 otherwise. It seeds
	// the learned minimum-bandwidth requirement directly.
	MeasuredBandwidth float64
	// Reason is a human-readable explanation for traces.
	Reason string
}

// Engine turns per-period statistics into adaptation decisions. It is
// purely functional over its configuration; learned requirements live in
// Requirements (see requirements.go) which the coordinator owns.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and returns an Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// GrowCount decides how many nodes to request when WAE=wae exceeded
// EMax on n nodes. Following the paper ("the higher the efficiency, the
// more processors are requested") the engine aims at the middle of the
// [EMin,EMax] band: assuming total useful throughput n·wae stays roughly
// constant while the overhead per node grows with n, the node count that
// would land at target efficiency t is n·wae/t. The step is capped by
// MaxGrowFactor and is at least 1.
func (e *Engine) GrowCount(n int, wae float64) int {
	if n <= 0 {
		return 1
	}
	target := (e.cfg.EMin + e.cfg.EMax) / 2
	ideal := float64(n) * wae / target
	add := int(math.Round(ideal)) - n
	if add < 1 {
		add = 1
	}
	if cap := int(math.Ceil(float64(n) * e.cfg.MaxGrowFactor)); add > cap {
		add = cap
	}
	return add
}

// ShrinkCount decides how many nodes to remove when WAE=wae fell below
// EMin on n nodes ("the lower the efficiency, the more nodes are
// removed"), symmetric to GrowCount, bounded so at least MinNodes
// remain and at least one node goes.
func (e *Engine) ShrinkCount(n int, wae float64) int {
	if n <= e.cfg.MinNodes {
		return 0
	}
	target := (e.cfg.EMin + e.cfg.EMax) / 2
	ideal := float64(n) * wae / target
	remove := n - int(math.Round(ideal))
	if remove < 1 {
		remove = 1
	}
	if remove > n-e.cfg.MinNodes {
		remove = n - e.cfg.MinNodes
	}
	return remove
}

// Decide implements the paper's adaptation strategy (Figure 2):
//
//	compute WAE;
//	if WAE > EMax: request nodes;
//	if WAE < EMin: if some cluster's inter-cluster overhead is
//	    exceptionally high, remove that whole cluster; otherwise rank
//	    nodes by badness and remove the worst ones;
//	otherwise: no action.
//
// The stats slice must contain one entry per live node for the period.
func (e *Engine) Decide(stats []NodeStats) Decision {
	var wae float64
	if e.cfg.UnweightedEfficiency {
		wae = Efficiency(stats)
	} else {
		wae = WeightedAverageEfficiency(stats)
	}
	n := len(stats)
	if n == 0 {
		return Decision{Action: ActionAdd, WAE: 0, AddCount: 1,
			Reason: "no live nodes; bootstrap by requesting one"}
	}

	switch {
	case wae > e.cfg.EMax:
		add := e.GrowCount(n, wae)
		return Decision{
			Action:   ActionAdd,
			WAE:      wae,
			AddCount: add,
			Reason: fmt.Sprintf("WAE %.3f > EMax %.2f on %d nodes: request %d more",
				wae, e.cfg.EMax, n, add),
		}

	case wae < e.cfg.EMin:
		// Bandwidth emergency: a single cluster saturating its uplink is
		// removed wholesale, rather than node by node. The relative
		// check singles out the culprit among clusters whose overhead
		// merely suffers from the same saturated link.
		clusters := RankClusters(stats, e.cfg.Weights)
		if d, ok := e.bandwidthDrop(stats, clusters, wae, n); ok {
			return d
		}
		// Fallback when no per-pair transfer samples exist: the cluster
		// with "exceptionally high" inter-cluster overhead, provided it
		// clearly dominates the runner-up.
		worst, second := 0, -1
		for i := 1; i < len(clusters); i++ {
			switch {
			case clusters[i].InterComm > clusters[worst].InterComm:
				second = worst
				worst = i
			case second < 0 || clusters[i].InterComm > clusters[second].InterComm:
				second = i
			}
		}
		dominates := len(clusters) > 1 &&
			clusters[worst].InterComm > e.cfg.ClusterDropInterComm
		if dominates && e.cfg.ClusterDropRelative > 0 && second >= 0 {
			dominates = clusters[worst].InterComm >
				clusters[second].InterComm*e.cfg.ClusterDropRelative
		}
		if dominates {
			c := clusters[worst]
			if n-len(c.Nodes) >= e.cfg.MinNodes {
				return Decision{
					Action:           ActionRemoveCluster,
					WAE:              wae,
					RemoveCluster:    c.Cluster,
					RemoveNodes:      c.Nodes,
					ClusterInterComm: c.InterComm,
					Reason: fmt.Sprintf("cluster %s inter-cluster overhead %.0f%% > %.0f%%: uplink bandwidth insufficient, evacuating cluster",
						c.Cluster, c.InterComm*100, e.cfg.ClusterDropInterComm*100),
				}
			}
		}
		k := e.ShrinkCount(n, wae)
		if k == 0 {
			return Decision{Action: ActionNone, WAE: wae,
				Reason: fmt.Sprintf("WAE %.3f < EMin %.2f but already at MinNodes=%d", wae, e.cfg.EMin, e.cfg.MinNodes)}
		}
		ranked := RankNodes(stats, e.cfg.Weights)
		victims := make([]NodeID, 0, k)
		for _, nb := range ranked[:k] {
			victims = append(victims, nb.Node)
		}
		return Decision{
			Action:      ActionRemoveNodes,
			WAE:         wae,
			RemoveNodes: victims,
			Reason: fmt.Sprintf("WAE %.3f < EMin %.2f on %d nodes: remove %d worst",
				wae, e.cfg.EMin, n, k),
		}

	default:
		return Decision{Action: ActionNone, WAE: wae,
			Reason: fmt.Sprintf("WAE %.3f within [%.2f,%.2f]", wae, e.cfg.EMin, e.cfg.EMax)}
	}
}

// bandwidthDrop is the primary cluster-eviction rule, available when
// the statistics carry per-pair transfer samples: estimate every
// cluster pair's achieved bandwidth from measured data transfer times
// (the paper's own proposal), identify the cluster whose best pair is
// the grid's bottleneck, and evacuate it when it is degraded by more
// than ClusterDropBWRatio relative to the healthiest pair.
func (e *Engine) bandwidthDrop(stats []NodeStats, clusters []ClusterBadness, wae float64, n int) (Decision, bool) {
	if e.cfg.ClusterDropBWRatio <= 0 {
		return Decision{}, false // rule disabled (ablations)
	}
	culprit, bw, ref, ok := BandwidthCulprit(stats, e.cfg.MinPairBytes)
	if !ok || ref <= 0 || bw > ref*e.cfg.ClusterDropBWRatio {
		return Decision{}, false
	}
	for _, c := range clusters {
		if c.Cluster != culprit {
			continue
		}
		if n-len(c.Nodes) < e.cfg.MinNodes {
			return Decision{}, false
		}
		return Decision{
			Action:            ActionRemoveCluster,
			WAE:               wae,
			RemoveCluster:     c.Cluster,
			RemoveNodes:       c.Nodes,
			ClusterInterComm:  c.InterComm,
			MeasuredBandwidth: bw,
			Reason: fmt.Sprintf("cluster %s best-pair bandwidth %.0f B/s vs %.0f B/s elsewhere: uplink insufficient, evacuating cluster",
				c.Cluster, bw, ref),
		}, true
	}
	return Decision{}, false
}
