// Package core implements the paper's primary contribution in pure,
// runtime-independent form: the weighted average efficiency metric, the
// node/cluster badness ranking, the threshold-driven adaptation decision
// engine, and the resource requirements (blacklist, minimum bandwidth)
// learned during a run.
//
// The package deliberately has no notion of real time, goroutines, or
// message transports: it consumes per-monitoring-period statistics and
// produces decisions. Both the discrete-event grid simulator
// (internal/des) and the real work-stealing runtime (satin) drive the
// same engine, which is the point of the paper: adaptation needs only
// the statistics, never an application performance model.
package core

import (
	"fmt"
	"sort"
)

// NodeID identifies a single processor taking part in the computation.
type NodeID string

// ClusterID identifies a site (cluster or supercomputer). Nodes within a
// cluster share a LAN; clusters are connected by WAN links.
type ClusterID string

// NodeStats is one processor's report for one monitoring period.
//
// Overhead fractions are in [0,1] and are fractions of the monitoring
// period: Idle + IntraComm + InterComm <= 1, and the remainder is useful
// work. Speed is the application-specific benchmark measurement in
// absolute units (work units per second); the engine normalises speeds
// internally, so reports from heterogeneous benchmark scales must use a
// single consistent unit.
type NodeStats struct {
	Node    NodeID
	Cluster ClusterID

	// Speed is the measured processor speed (work units/second) from the
	// application-specific benchmark. Zero means "unknown"; such nodes
	// are treated as having the slowest known speed.
	Speed float64

	// Idle is the fraction of the period the node spent with no work.
	Idle float64
	// IntraComm is the fraction spent communicating within the cluster.
	IntraComm float64
	// InterComm is the fraction spent communicating across clusters.
	InterComm float64

	// Links optionally records, per peer cluster, how long this node's
	// inter-cluster transfers with that cluster took and how many bytes
	// they moved — the paper's "bandwidth between each pair of clusters
	// is estimated during the computation by measuring data transfer
	// times". May be nil.
	Links map[ClusterID]LinkSample
}

// LinkSample accumulates transfer observations with one peer cluster.
type LinkSample struct {
	Seconds float64 // wire time of the transfers
	Bytes   float64 // payload moved
}

// Bandwidth returns the achieved throughput of the sample (0 if empty).
func (l LinkSample) Bandwidth() float64 {
	if l.Seconds <= 0 {
		return 0
	}
	return l.Bytes / l.Seconds
}

// Overhead returns the node's total overhead fraction for the period:
// the time not spent on useful application work, clamped to [0,1].
func (s NodeStats) Overhead() float64 {
	o := s.Idle + s.IntraComm + s.InterComm
	if o < 0 {
		return 0
	}
	if o > 1 {
		return 1
	}
	return o
}

// Validate reports whether the stats are internally consistent.
func (s NodeStats) Validate() error {
	if s.Node == "" {
		return fmt.Errorf("core: NodeStats with empty NodeID")
	}
	if s.Speed < 0 {
		return fmt.Errorf("core: node %s: negative speed %v", s.Node, s.Speed)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"idle", s.Idle}, {"intra", s.IntraComm}, {"inter", s.InterComm}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("core: node %s: %s fraction %v out of [0,1]", s.Node, f.name, f.v)
		}
	}
	if s.Idle+s.IntraComm+s.InterComm > 1+1e-9 {
		return fmt.Errorf("core: node %s: overhead fractions sum to %v > 1",
			s.Node, s.Idle+s.IntraComm+s.InterComm)
	}
	return nil
}

// RelativeSpeeds returns each node's speed divided by the fastest node's
// speed, so the fastest node has relative speed 1 and 0 < speed <= 1
// holds for all others. Nodes with unknown (zero) speed are assigned the
// smallest known relative speed (or 1 if no node has a known speed).
func RelativeSpeeds(stats []NodeStats) []float64 {
	rel := make([]float64, len(stats))
	max := 0.0
	minKnown := 0.0
	for _, s := range stats {
		if s.Speed > max {
			max = s.Speed
		}
		if s.Speed > 0 && (minKnown == 0 || s.Speed < minKnown) {
			minKnown = s.Speed
		}
	}
	for i, s := range stats {
		switch {
		case max == 0:
			rel[i] = 1 // nobody measured yet: treat as homogeneous
		case s.Speed > 0:
			rel[i] = s.Speed / max
		default:
			rel[i] = minKnown / max
		}
	}
	return rel
}

// WeightedAverageEfficiency computes the paper's central metric:
//
//	WAE = (1/n) * sum_i speed_i * (1 - overhead_i)
//
// where speed_i is relative to the fastest processor. Slow processors
// are thereby modelled as fast processors that are idle a large fraction
// of the time, so adding slow processors is correctly valued below
// adding fast ones. Returns 0 for an empty report set.
func WeightedAverageEfficiency(stats []NodeStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	rel := RelativeSpeeds(stats)
	sum := 0.0
	for i, s := range stats {
		sum += rel[i] * (1 - s.Overhead())
	}
	return sum / float64(len(stats))
}

// Efficiency is the classic homogeneous-machine parallel efficiency:
// the mean over nodes of (1 - overhead). It ignores processor speeds and
// is provided for the ablation comparing weighted vs unweighted
// efficiency under heterogeneity.
func Efficiency(stats []NodeStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range stats {
		sum += 1 - s.Overhead()
	}
	return sum / float64(len(stats))
}

// ClusterStats aggregates one cluster's nodes for one period.
type ClusterStats struct {
	Cluster ClusterID
	Nodes   []NodeID
	// Speed is the sum of the member nodes' absolute speeds.
	Speed float64
	// RelSpeed is Speed normalised to the fastest cluster (1 = fastest).
	RelSpeed float64
	// InterComm is the mean inter-cluster communication overhead of the
	// member nodes.
	InterComm float64
	// MeanOverhead is the mean total overhead of the member nodes.
	MeanOverhead float64
}

// AggregateClusters groups per-node stats by cluster, computing cluster
// speeds (sum of node speeds, normalised to the fastest cluster) and the
// mean inter-cluster overhead, in deterministic (sorted) cluster order.
func AggregateClusters(stats []NodeStats) []ClusterStats {
	byCluster := make(map[ClusterID]*ClusterStats)
	var order []ClusterID
	for _, s := range stats {
		c, ok := byCluster[s.Cluster]
		if !ok {
			c = &ClusterStats{Cluster: s.Cluster}
			byCluster[s.Cluster] = c
			order = append(order, s.Cluster)
		}
		c.Nodes = append(c.Nodes, s.Node)
		c.Speed += s.Speed
		c.InterComm += s.InterComm
		c.MeanOverhead += s.Overhead()
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]ClusterStats, 0, len(order))
	maxSpeed := 0.0
	for _, id := range order {
		c := byCluster[id]
		n := float64(len(c.Nodes))
		c.InterComm /= n
		c.MeanOverhead /= n
		sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i] < c.Nodes[j] })
		if c.Speed > maxSpeed {
			maxSpeed = c.Speed
		}
		out = append(out, *c)
	}
	for i := range out {
		if maxSpeed > 0 {
			out[i].RelSpeed = out[i].Speed / maxSpeed
		} else {
			out[i].RelSpeed = 1
		}
	}
	return out
}

// PairKey orders two cluster IDs canonically.
func PairKey(a, b ClusterID) [2]ClusterID {
	if b < a {
		a, b = b, a
	}
	return [2]ClusterID{a, b}
}

// PairBandwidths estimates the achieved bandwidth of every cluster pair
// from the nodes' transfer samples (both directions combined). Pairs
// with fewer than minBytes of evidence are omitted as noise.
func PairBandwidths(stats []NodeStats, minBytes float64) map[[2]ClusterID]LinkSample {
	pairs := make(map[[2]ClusterID]LinkSample)
	for _, s := range stats {
		for peer, sample := range s.Links {
			if peer == s.Cluster {
				continue
			}
			k := PairKey(s.Cluster, peer)
			agg := pairs[k]
			agg.Seconds += sample.Seconds
			agg.Bytes += sample.Bytes
			pairs[k] = agg
		}
	}
	for k, agg := range pairs {
		if agg.Bytes < minBytes {
			delete(pairs, k)
		}
	}
	return pairs
}

// BandwidthCulprit finds the cluster whose connectivity is the
// bottleneck: the participant cluster whose BEST pair bandwidth is the
// lowest. A congested access link degrades every pair the cluster is
// part of, while its neighbours keep healthy pairs among themselves —
// so comparing best-pair bandwidths separates the culprit from its
// collateral victims. Returns the culprit, its best-pair bandwidth and
// the best bandwidth observed anywhere (the reference); ok is false
// when fewer than two pairs have evidence.
func BandwidthCulprit(stats []NodeStats, minBytes float64) (culprit ClusterID, bw, ref float64, ok bool) {
	pairs := PairBandwidths(stats, minBytes)
	if len(pairs) < 2 {
		return "", 0, 0, false
	}
	best := make(map[ClusterID]float64)
	for k, sample := range pairs {
		b := sample.Bandwidth()
		if b > ref {
			ref = b
		}
		for _, c := range k {
			if b > best[c] {
				best[c] = b
			}
		}
	}
	first := true
	for c, b := range best {
		if first || b < bw || (b == bw && c < culprit) {
			culprit, bw = c, b
			first = false
		}
	}
	return culprit, bw, ref, true
}
