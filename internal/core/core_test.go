package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNodeStatsOverheadClamps(t *testing.T) {
	cases := []struct {
		in   NodeStats
		want float64
	}{
		{NodeStats{Idle: 0.2, IntraComm: 0.1, InterComm: 0.05}, 0.35},
		{NodeStats{}, 0},
		{NodeStats{Idle: 0.9, IntraComm: 0.9}, 1},   // clamps above
		{NodeStats{Idle: -0.5, IntraComm: -0.5}, 0}, // clamps below
		{NodeStats{InterComm: 1.0}, 1},              // exactly one
		{NodeStats{Idle: 1.0 / 3, IntraComm: 1.0 / 3, InterComm: 1.0 / 3}, 1},
	}
	for i, c := range cases {
		if got := c.in.Overhead(); !almostEq(got, c.want) {
			t.Errorf("case %d: Overhead() = %v, want %v", i, got, c.want)
		}
	}
}

func TestNodeStatsValidate(t *testing.T) {
	good := NodeStats{Node: "n0", Cluster: "c0", Speed: 1, Idle: 0.2, IntraComm: 0.1, InterComm: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid stats rejected: %v", err)
	}
	bad := []NodeStats{
		{Node: "", Speed: 1},
		{Node: "n", Speed: -1},
		{Node: "n", Idle: 1.5},
		{Node: "n", IntraComm: -0.1},
		{Node: "n", InterComm: 2},
		{Node: "n", Idle: 0.6, IntraComm: 0.6}, // sum > 1
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid stats %+v accepted", i, s)
		}
	}
}

func TestRelativeSpeeds(t *testing.T) {
	t.Run("normalises to fastest", func(t *testing.T) {
		stats := []NodeStats{
			{Node: "a", Speed: 50},
			{Node: "b", Speed: 100},
			{Node: "c", Speed: 25},
		}
		rel := RelativeSpeeds(stats)
		want := []float64{0.5, 1.0, 0.25}
		for i := range want {
			if !almostEq(rel[i], want[i]) {
				t.Errorf("rel[%d] = %v, want %v", i, rel[i], want[i])
			}
		}
	})
	t.Run("unknown speeds take slowest known", func(t *testing.T) {
		stats := []NodeStats{
			{Node: "a", Speed: 0},
			{Node: "b", Speed: 100},
			{Node: "c", Speed: 20},
		}
		rel := RelativeSpeeds(stats)
		if !almostEq(rel[0], 0.2) {
			t.Errorf("unknown speed got rel %v, want 0.2 (slowest known)", rel[0])
		}
	})
	t.Run("all unknown is homogeneous", func(t *testing.T) {
		stats := []NodeStats{{Node: "a"}, {Node: "b"}}
		rel := RelativeSpeeds(stats)
		if rel[0] != 1 || rel[1] != 1 {
			t.Errorf("all-unknown speeds should be 1, got %v", rel)
		}
	})
}

func TestWeightedAverageEfficiencyHomogeneousMatchesEfficiency(t *testing.T) {
	stats := []NodeStats{
		{Node: "a", Speed: 10, Idle: 0.3},
		{Node: "b", Speed: 10, InterComm: 0.1},
		{Node: "c", Speed: 10, IntraComm: 0.25},
	}
	if wae, e := WeightedAverageEfficiency(stats), Efficiency(stats); !almostEq(wae, e) {
		t.Errorf("homogeneous speeds: WAE %v != efficiency %v", wae, e)
	}
}

func TestWeightedAverageEfficiencyPenalisesSlowNodes(t *testing.T) {
	fast := []NodeStats{
		{Node: "a", Speed: 10, Idle: 0.2},
		{Node: "b", Speed: 10, Idle: 0.2},
	}
	mixed := []NodeStats{
		{Node: "a", Speed: 10, Idle: 0.2},
		{Node: "b", Speed: 2, Idle: 0.2}, // 5x slower, same overhead
	}
	if w1, w2 := WeightedAverageEfficiency(fast), WeightedAverageEfficiency(mixed); w2 >= w1 {
		t.Errorf("slow node should lower WAE: fast=%v mixed=%v", w1, w2)
	}
	// The slow node contributes speed*(1-overhead) = 0.2*0.8 = 0.16,
	// the fast one 0.8: WAE = 0.48.
	if w := WeightedAverageEfficiency(mixed); !almostEq(w, 0.48) {
		t.Errorf("mixed WAE = %v, want 0.48", w)
	}
}

func TestWeightedAverageEfficiencyEmpty(t *testing.T) {
	if w := WeightedAverageEfficiency(nil); w != 0 {
		t.Errorf("empty WAE = %v, want 0", w)
	}
	if e := Efficiency(nil); e != 0 {
		t.Errorf("empty efficiency = %v, want 0", e)
	}
}

// Property: WAE is always within [0,1] and never exceeds the unweighted
// efficiency (speeds are <= 1 after normalisation).
func TestWAEBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%32) + 1
		stats := make([]NodeStats, n)
		for i := range stats {
			idle := rng.Float64()
			intra := rng.Float64() * (1 - idle)
			inter := rng.Float64() * (1 - idle - intra)
			stats[i] = NodeStats{
				Node:      NodeID(rune('a' + i)),
				Cluster:   ClusterID("c"),
				Speed:     rng.Float64() * 100,
				Idle:      idle,
				IntraComm: intra,
				InterComm: inter,
			}
		}
		wae := WeightedAverageEfficiency(stats)
		eff := Efficiency(stats)
		return wae >= 0 && wae <= 1+1e-12 && wae <= eff+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateClusters(t *testing.T) {
	stats := []NodeStats{
		{Node: "b1", Cluster: "B", Speed: 5, InterComm: 0.4, Idle: 0.1},
		{Node: "a1", Cluster: "A", Speed: 10, InterComm: 0.1},
		{Node: "a2", Cluster: "A", Speed: 10, InterComm: 0.3},
		{Node: "b2", Cluster: "B", Speed: 5, InterComm: 0.2},
	}
	agg := AggregateClusters(stats)
	if len(agg) != 2 {
		t.Fatalf("got %d clusters, want 2", len(agg))
	}
	if agg[0].Cluster != "A" || agg[1].Cluster != "B" {
		t.Fatalf("clusters not in sorted order: %v %v", agg[0].Cluster, agg[1].Cluster)
	}
	a, b := agg[0], agg[1]
	if !almostEq(a.Speed, 20) || !almostEq(b.Speed, 10) {
		t.Errorf("cluster speeds = %v,%v want 20,10", a.Speed, b.Speed)
	}
	if !almostEq(a.RelSpeed, 1) || !almostEq(b.RelSpeed, 0.5) {
		t.Errorf("rel speeds = %v,%v want 1,0.5", a.RelSpeed, b.RelSpeed)
	}
	if !almostEq(a.InterComm, 0.2) || !almostEq(b.InterComm, 0.3) {
		t.Errorf("intercomm = %v,%v want 0.2,0.3", a.InterComm, b.InterComm)
	}
	if len(a.Nodes) != 2 || a.Nodes[0] != "a1" || a.Nodes[1] != "a2" {
		t.Errorf("cluster A nodes = %v", a.Nodes)
	}
}

func TestRankClustersWorstFirst(t *testing.T) {
	w := DefaultBadnessWeights()
	stats := []NodeStats{
		{Node: "g1", Cluster: "good", Speed: 10, InterComm: 0.02},
		{Node: "g2", Cluster: "good", Speed: 10, InterComm: 0.02},
		{Node: "s1", Cluster: "sat", Speed: 10, InterComm: 0.5},
		{Node: "s2", Cluster: "sat", Speed: 10, InterComm: 0.4},
	}
	ranked := RankClusters(stats, w)
	if ranked[0].Cluster != "sat" {
		t.Fatalf("saturated cluster should rank worst, got %v", ranked[0].Cluster)
	}
	if ranked[0].Badness <= ranked[1].Badness {
		t.Errorf("badness not descending: %v then %v", ranked[0].Badness, ranked[1].Badness)
	}
}

func TestRankNodesWorstClusterBonusAndSpeed(t *testing.T) {
	w := DefaultBadnessWeights()
	stats := []NodeStats{
		{Node: "fast", Cluster: "A", Speed: 10, InterComm: 0.01},
		{Node: "slow", Cluster: "A", Speed: 1, InterComm: 0.01},
		{Node: "wan1", Cluster: "B", Speed: 10, InterComm: 0.30},
		{Node: "wan2", Cluster: "B", Speed: 10, InterComm: 0.30},
	}
	ranked := RankNodes(stats, w)
	// Cluster B saturates its uplink: its members must outrank even the
	// very slow node in A, since β·0.3 + γ = 40 > α·10.
	if ranked[0].Cluster != "B" || ranked[1].Cluster != "B" {
		t.Fatalf("worst-cluster members should rank first: %+v", ranked)
	}
	if ranked[2].Node != "slow" {
		t.Errorf("slow node should be third, got %v", ranked[2].Node)
	}
	if ranked[3].Node != "fast" {
		t.Errorf("fast clean node should be last, got %v", ranked[3].Node)
	}
}

func TestRankNodesDeterministicTieBreak(t *testing.T) {
	w := DefaultBadnessWeights()
	stats := []NodeStats{
		{Node: "z", Cluster: "A", Speed: 5},
		{Node: "a", Cluster: "A", Speed: 5},
		{Node: "m", Cluster: "A", Speed: 5},
	}
	ranked := RankNodes(stats, w)
	if ranked[0].Node != "a" || ranked[1].Node != "m" || ranked[2].Node != "z" {
		t.Errorf("ties must break on NodeID: %+v", ranked)
	}
}

func TestRankNodesZeroSpeedFinite(t *testing.T) {
	ranked := RankNodes([]NodeStats{
		{Node: "dead", Cluster: "A", Speed: 0},
		{Node: "ok", Cluster: "A", Speed: 10},
	}, DefaultBadnessWeights())
	for _, r := range ranked {
		if math.IsInf(r.Badness, 0) || math.IsNaN(r.Badness) {
			t.Fatalf("badness must stay finite, got %v for %v", r.Badness, r.Node)
		}
	}
	if ranked[0].Node != "dead" {
		t.Errorf("zero-speed node should rank worst")
	}
}
