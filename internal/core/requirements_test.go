package core

import (
	"strings"
	"sync"
	"testing"
)

func TestRequirementsBlacklist(t *testing.T) {
	r := NewRequirements()
	if r.NodeBlacklisted("n1", "c1") {
		t.Fatal("fresh requirements should not blacklist anything")
	}
	r.BlacklistNode("n1", "overloaded")
	if !r.NodeBlacklisted("n1", "c1") {
		t.Error("n1 should be blacklisted")
	}
	if r.NodeBlacklisted("n2", "c1") {
		t.Error("n2 should not be blacklisted")
	}
	r.BlacklistCluster("c9", "bad uplink")
	if !r.NodeBlacklisted("anything", "c9") {
		t.Error("nodes of a blacklisted cluster are blacklisted")
	}
	if !r.ClusterBlacklisted("c9") {
		t.Error("c9 should be blacklisted")
	}
	got := r.BlacklistedNodes()
	if len(got) != 1 || got[0] != "n1" {
		t.Errorf("BlacklistedNodes = %v", got)
	}
	if cs := r.BlacklistedClusters(); len(cs) != 1 || cs[0] != "c9" {
		t.Errorf("BlacklistedClusters = %v", cs)
	}
}

func TestRequirementsPardon(t *testing.T) {
	r := NewRequirements()
	r.BlacklistCluster("c1", "bad uplink")
	r.BlacklistNode("c1n0", "cluster:c1 evacuated")
	r.BlacklistNode("other", "slow")
	r.Pardon("c1")
	if r.ClusterBlacklisted("c1") {
		t.Error("pardoned cluster still blacklisted")
	}
	if r.NodeBlacklisted("c1n0", "c1") {
		t.Error("node evicted as part of the cluster should be pardoned with it")
	}
	if !r.NodeBlacklisted("other", "cX") {
		t.Error("individually blacklisted node must stay blacklisted")
	}
}

func TestRequirementsMinBandwidthMonotone(t *testing.T) {
	r := NewRequirements()
	if bw := r.MinBandwidth(); bw != 0 {
		t.Fatalf("initial min bandwidth = %v, want 0", bw)
	}
	r.LearnMinBandwidth(100e3)
	r.LearnMinBandwidth(50e3) // lower estimate must not loosen the bound
	if bw := r.MinBandwidth(); bw != 100e3 {
		t.Errorf("min bandwidth = %v, want 100e3", bw)
	}
	r.LearnMinBandwidth(2e6)
	if bw := r.MinBandwidth(); bw != 2e6 {
		t.Errorf("min bandwidth = %v, want 2e6", bw)
	}
	r.LearnMinBandwidth(-5)
	r.LearnMinBandwidth(0)
	if bw := r.MinBandwidth(); bw != 2e6 {
		t.Errorf("non-positive estimates must be ignored, got %v", bw)
	}
}

func TestRequirementsConcurrent(t *testing.T) {
	r := NewRequirements()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := NodeID(rune('a' + i))
				r.BlacklistNode(id, "x")
				r.NodeBlacklisted(id, "c")
				r.LearnMinBandwidth(float64(j))
				r.BlacklistedNodes()
				r.MinBandwidth()
			}
		}(i)
	}
	wg.Wait()
	if n := len(r.BlacklistedNodes()); n != 8 {
		t.Errorf("got %d blacklisted nodes, want 8", n)
	}
}

func TestRequirementsString(t *testing.T) {
	r := NewRequirements()
	r.BlacklistNode("n", "slow")
	r.LearnMinBandwidth(1e5)
	s := r.String()
	if !strings.Contains(s, "blacklistedNodes=1") || !strings.Contains(s, "100000") {
		t.Errorf("String() = %q", s)
	}
}
