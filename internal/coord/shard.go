package coord

// The sharded coordinator tree (ISSUE 8): the paper's §7 answer to the
// coordinator becoming a bottleneck is "a hierarchy of coordinators,
// one sub-coordinator per cluster which collects and processes
// statistics from its cluster, and one main coordinator which collects
// the information from the sub-coordinators."
//
// SubKernel is the per-cluster half: it owns report ingestion, the
// freshest-per-node rule and the two-period smoothing for its cluster,
// and condenses each period into one fixed-shape ClusterSummary frame.
// RootKernel is the main coordinator's half: its Tick consumes the
// latest summary per cluster — O(clusters) state and messages — while
// keeping global authority over the blacklists, cluster eviction,
// provisioning and migration. The aggregate fields of ClusterSummary
// are chosen so the root reconstructs the global WAE, the cluster
// badness ranking and the pair-bandwidth culprit rule EXACTLY (up to
// floating-point association) from cluster partials; node eviction
// ranks the subs' proposed candidates with the same badness formula the
// flat Kernel applies, so on small worlds (proposal cap covering every
// node) the sharded tree reproduces the flat decision sequence — the
// parity the tests pin.
//
// The flat Kernel in coord.go remains the shim for small grids.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// NodeSample is one eviction candidate inside a ClusterSummary: the
// smoothed per-node statistics the root needs to re-rank the candidate
// globally (the γ worst-cluster bonus and the speed normalisation are
// only known at the root).
type NodeSample struct {
	Node      core.NodeID
	Speed     float64
	Idle      float64
	IntraComm float64
	InterComm float64
}

// ReqState is a serialisable snapshot of the learned requirements. It
// rides on every summary (sub → root) and every ack (root → sub): the
// subs cache the root's latest state, and after a root failover the
// elected successor re-bootstraps by union-merging the caches arriving
// with the next round of summaries. Blacklists are monotone, so the
// union is always safe.
type ReqState struct {
	Nodes        []core.NodeID
	Clusters     []core.ClusterID
	MinBandwidth float64
}

// ClusterSummary is the compact per-period frame a sub-kernel emits:
// one cluster's smoothed statistics reduced to the aggregates the root
// decision needs, plus the locally-worst eviction candidates. Its size
// is O(1) + O(proposal cap) + O(peer clusters), independent of the
// cluster's node count.
type ClusterSummary struct {
	Cluster core.ClusterID
	// Seq is the sub-kernel's monotone summary counter (dedup).
	Seq uint64
	// Epoch is the root reset epoch the sub had adopted when it built
	// the summary. The root discards summaries from older epochs: they
	// aggregate reports that predate the root's last action, exactly
	// the stale state the flat kernel's post-action reset throws away.
	Epoch uint64
	// Time is the sub's clock at summarize time (freshest-wins across
	// sub restarts, whose Seq starts over).
	Time float64

	Nodes int // live nodes in the cluster
	Stats int // smoothed reports aggregated below

	// WAE reconstruction: global max/minKnown speed come from the
	// per-cluster extrema; WorkSum/ZeroWork split measured from
	// unmeasured nodes so the root can apply the minKnown fallback.
	SpeedMax float64 // fastest measured speed (0 = none measured)
	SpeedMin float64 // slowest measured speed (0 = none measured)
	WorkSum  float64 // Σ speed·(1-overhead) over measured nodes
	ZeroWork float64 // Σ (1-overhead) over unmeasured nodes
	EffSum   float64 // Σ (1-overhead) over all nodes (unweighted ablation)

	// Cluster badness inputs (exact partials of AggregateClusters).
	SpeedSum float64 // Σ speeds
	InterSum float64 // Σ inter-cluster overhead fractions

	// Learned-bandwidth fallback: achieved inter-cluster throughput the
	// cluster's nodes reported (mean = InterBWSum/InterBWCnt).
	InterBWSum float64
	InterBWCnt int

	// Links is the cluster's summed smoothed link samples per peer —
	// the pair-bandwidth estimation input. May be nil.
	Links map[core.ClusterID]core.LinkSample

	// Proposals are the cluster's locally-worst nodes (badness order,
	// worst first), capped at the sub's proposal cap. The root re-ranks
	// them globally before evicting.
	Proposals []NodeSample

	// Streaming-objective partials: the cluster's share of the period's
	// stream observation (core.StreamObs fields, summed at the root).
	// HasStream distinguishes "no streaming workload" from an all-zero
	// observation.
	HasStream        bool
	StreamArrived    int
	StreamCompleted  int
	StreamLatencySum float64
	StreamBacklog    int

	// Req is the sub's cached requirements state (see ReqState).
	Req ReqState
}

// SubKernel is the per-cluster half of the sharded coordinator: report
// ingestion, smoothing and summary emission for one cluster. It is
// safe for concurrent use (the real runtime feeds Report from transport
// handlers while the sub-coordinator's ticker calls Summarize).
type SubKernel struct {
	cluster core.ClusterID
	cap     int
	weights core.BadnessWeights

	mu        sync.Mutex
	reports   map[core.NodeID]metrics.Report
	prevStats map[core.NodeID]core.NodeStats
	stream    *core.StreamObs // pending streaming partial for the next summary
	seq       uint64
}

// NewSubKernel builds the sub-kernel for one cluster. proposalCap
// bounds the eviction candidates per summary (0 = propose every node —
// exact flat parity, right for small clusters). weights must match the
// root's badness weights so the local pre-ranking selects the same
// candidates the global ranking would.
func NewSubKernel(cluster core.ClusterID, proposalCap int, weights core.BadnessWeights) *SubKernel {
	return &SubKernel{
		cluster:   cluster,
		cap:       proposalCap,
		weights:   weights,
		reports:   make(map[core.NodeID]metrics.Report),
		prevStats: make(map[core.NodeID]core.NodeStats),
	}
}

// Report ingests one node's per-period statistics (freshest-per-node,
// as in the flat kernel).
func (sk *SubKernel) Report(rep metrics.Report) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if cur, ok := sk.reports[rep.Node]; ok && rep.End < cur.End {
		return
	}
	sk.reports[rep.Node] = rep
}

// ObserveStream ingests the cluster's share of one period's streaming
// observation; the next Summarize ships it to the root as summary
// partials. Partials within a period merge by summation, mirroring
// Kernel.ObserveStream.
func (sk *SubKernel) ObserveStream(o core.StreamObs) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.stream == nil {
		cp := o
		sk.stream = &cp
		return
	}
	sk.stream.Merge(o)
}

// Forget drops a departed node's state immediately.
func (sk *SubKernel) Forget(id core.NodeID) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	delete(sk.reports, id)
	delete(sk.prevStats, id)
}

// Reset discards all stored reports and the smoothing window — the
// sub's share of the flat kernel's post-action reset, pushed down by
// the root after it acted.
func (sk *SubKernel) Reset() {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	sk.reports = make(map[core.NodeID]metrics.Report)
	sk.prevStats = make(map[core.NodeID]core.NodeStats)
}

// EachReport calls fn for every stored report under the sub's lock,
// stopping early when fn returns false. Allocation-free, like
// Kernel.EachReport.
func (sk *SubKernel) EachReport(fn func(metrics.Report) bool) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	for _, rep := range sk.reports {
		if !fn(rep) {
			return
		}
	}
}

// Pending returns how many node reports the sub currently holds.
func (sk *SubKernel) Pending() int {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return len(sk.reports)
}

// Summarize runs the sub's period: prune departed nodes, smooth over
// two periods exactly as the flat kernel does, and reduce the cluster
// to one ClusterSummary. The caller stamps Epoch and Req before
// sending.
func (sk *SubKernel) Summarize(now float64, live []core.NodeID) ClusterSummary {
	sk.mu.Lock()
	defer sk.mu.Unlock()

	liveSet := make(map[core.NodeID]bool, len(live))
	for _, id := range live {
		liveSet[id] = true
	}
	for id := range sk.reports {
		if !liveSet[id] {
			delete(sk.reports, id)
		}
	}

	ids := append([]core.NodeID(nil), live...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var stats []core.NodeStats
	next := make(map[core.NodeID]core.NodeStats, len(ids))
	for _, id := range ids {
		rep, ok := sk.reports[id]
		if !ok {
			continue
		}
		cur := rep.Stats()
		next[id] = cur
		if prev, ok := sk.prevStats[id]; ok {
			cur = smooth(cur, prev)
		}
		stats = append(stats, cur)
	}
	sk.prevStats = next

	sk.seq++
	sum := ClusterSummary{
		Cluster: sk.cluster,
		Seq:     sk.seq,
		Time:    now,
		Nodes:   len(live),
		Stats:   len(stats),
	}
	for _, st := range stats {
		eff := 1 - st.Overhead()
		if st.Speed > 0 {
			sum.WorkSum += st.Speed * eff
			if st.Speed > sum.SpeedMax {
				sum.SpeedMax = st.Speed
			}
			if sum.SpeedMin == 0 || st.Speed < sum.SpeedMin {
				sum.SpeedMin = st.Speed
			}
		} else {
			sum.ZeroWork += eff
		}
		sum.EffSum += eff
		sum.SpeedSum += st.Speed
		sum.InterSum += st.InterComm
		for peer, l := range st.Links {
			if sum.Links == nil {
				sum.Links = make(map[core.ClusterID]core.LinkSample)
			}
			agg := sum.Links[peer]
			agg.Seconds += l.Seconds
			agg.Bytes += l.Bytes
			sum.Links[peer] = agg
		}
	}
	// Achieved-throughput fallback for the learned bandwidth bound,
	// summed in sorted node order for determinism.
	for _, id := range ids {
		if rep, ok := sk.reports[id]; ok && rep.InterBandwidth > 0 {
			sum.InterBWSum += rep.InterBandwidth
			sum.InterBWCnt++
		}
	}
	if sk.stream != nil {
		sum.HasStream = true
		sum.StreamArrived = sk.stream.Arrived
		sum.StreamCompleted = sk.stream.Completed
		sum.StreamLatencySum = sk.stream.LatencySum
		sum.StreamBacklog = sk.stream.Backlog
		sk.stream = nil
	}
	sum.Proposals = sk.propose(stats)
	return sum
}

// propose selects the eviction candidates: every reporting node when
// uncapped (sorted-node order — the root re-sorts anyway), else the
// locally-worst cap nodes by the shared badness formula. Local badness
// uses cluster-local relative speeds; the ordering may differ slightly
// from the global one, which is the documented approximation of a
// capped summary (the cap exists precisely so frames stay O(1)).
func (sk *SubKernel) propose(stats []core.NodeStats) []NodeSample {
	if len(stats) == 0 {
		return nil
	}
	toSample := func(st core.NodeStats) NodeSample {
		return NodeSample{
			Node:      st.Node,
			Speed:     st.Speed,
			Idle:      st.Idle,
			IntraComm: st.IntraComm,
			InterComm: st.InterComm,
		}
	}
	if sk.cap <= 0 || len(stats) <= sk.cap {
		out := make([]NodeSample, 0, len(stats))
		for _, st := range stats {
			out = append(out, toSample(st))
		}
		return out
	}
	byNode := make(map[core.NodeID]core.NodeStats, len(stats))
	for _, st := range stats {
		byNode[st.Node] = st
	}
	ranked := core.RankNodes(stats, sk.weights)
	out := make([]NodeSample, 0, sk.cap)
	for _, nb := range ranked[:sk.cap] {
		out = append(out, toSample(byNode[nb.Node]))
	}
	return out
}

// RootActuator is the optional Actuator extension the root kernel uses
// for whole-cluster eviction: the runtime enumerates the cluster's live
// nodes (the root deliberately does not hold per-node state). Without
// it, the root falls back to evicting the cluster's proposed nodes.
type RootActuator interface {
	ClusterNodes(c core.ClusterID) []core.NodeID
}

// rootInstruments extends the kernel instruments with the summary
// ingestion counters.
type rootInstruments struct {
	kernelInstruments
	ingested   *obs.Counter
	staleEpoch *obs.Counter
	clusters   *obs.Gauge
}

func newRootInstruments() rootInstruments {
	return rootInstruments{
		kernelInstruments: newKernelInstruments(),
		ingested:          obs.Default.Counter("coord/summaries_ingested"),
		staleEpoch:        obs.Default.Counter("coord/summaries_stale_epoch"),
		clusters:          obs.Default.Gauge("coord/summary_clusters"),
	}
}

// RootKernel is the main coordinator of the sharded tree: it consumes
// ClusterSummary frames and runs the Figure-2 loop at cluster
// granularity — O(clusters) work per Tick regardless of node count —
// while retaining the flat kernel's global authority: requirements
// learning, blacklists, cluster eviction, provisioning, opportunistic
// migration and fair-share yield. Safe for concurrent use.
type RootKernel struct {
	cfg     Config
	eng     *core.Engine   // batch engine (nil for non-batch objectives)
	obj     core.Objective // nil = monitor-only
	weights core.BadnessWeights
	reqs    *core.Requirements
	act     Actuator

	mu         sync.Mutex
	sums       map[core.ClusterID]ClusterSummary
	protected  map[core.NodeID]bool
	resetEpoch uint64

	ins rootInstruments
}

// NewRoot builds a RootKernel. cfg is the same configuration the flat
// Kernel takes; cfg.Engine is validated when present.
func NewRoot(cfg Config, act Actuator) (*RootKernel, error) {
	if act == nil {
		return nil, fmt.Errorf("coord: nil actuator")
	}
	if cfg.OpportunisticFactor == 0 {
		cfg.OpportunisticFactor = 1.5
	}
	rk := &RootKernel{
		cfg:       cfg,
		reqs:      core.NewRequirements(),
		act:       act,
		sums:      make(map[core.ClusterID]ClusterSummary),
		protected: make(map[core.NodeID]bool),
		ins:       newRootInstruments(),
	}
	rk.weights = core.DefaultBadnessWeights()
	switch {
	case cfg.Objective != nil:
		rk.obj = cfg.Objective
		// The batch objective keeps its engine reachable: the root's
		// cluster-eviction rules still need the culprit thresholds and
		// ShrinkCount.
		if b, ok := cfg.Objective.(*core.BatchWAE); ok {
			rk.eng = b.Engine()
			rk.weights = rk.eng.Config().Weights
		} else if s, ok := cfg.Objective.(*core.StreamSLO); ok {
			rk.weights = s.Config().Weights
		}
	case cfg.Engine != nil:
		obj, err := core.NewBatchWAE(*cfg.Engine)
		if err != nil {
			return nil, err
		}
		rk.obj = obj
		rk.eng = obj.Engine()
		rk.weights = rk.eng.Config().Weights
	}
	return rk, nil
}

// Objective returns the root's adaptation objective (nil when the root
// only monitors).
func (rk *RootKernel) Objective() core.Objective { return rk.obj }

// Requirements exposes what the run has taught the root.
func (rk *RootKernel) Requirements() *core.Requirements { return rk.reqs }

// ResetEpoch returns the current post-action reset epoch. Drivers
// compare it around Tick: a bump means the root acted and every sub
// must reset (the tree-wide analogue of the flat kernel's post-action
// report reset).
func (rk *RootKernel) ResetEpoch() uint64 {
	rk.mu.Lock()
	defer rk.mu.Unlock()
	return rk.resetEpoch
}

// StartEpoch seeds the reset epoch — an elected successor starts at the
// epoch its subs already adopted, so their summaries are not rejected
// as stale.
func (rk *RootKernel) StartEpoch(e uint64) {
	rk.mu.Lock()
	defer rk.mu.Unlock()
	if e > rk.resetEpoch {
		rk.resetEpoch = e
	}
}

// ReqState snapshots the learned requirements for acks and failover.
func (rk *RootKernel) ReqState() ReqState {
	return ReqState{
		Nodes:        rk.reqs.BlacklistedNodes(),
		Clusters:     rk.reqs.BlacklistedClusters(),
		MinBandwidth: rk.reqs.MinBandwidth(),
	}
}

// AdoptReqState union-merges a requirements snapshot — how an elected
// root re-bootstraps from its own cache and the caches riding on the
// next round of summaries. Blacklists are monotone so the union never
// regresses; under DisableBlacklist only the bandwidth bound merges.
func (rk *RootKernel) AdoptReqState(st ReqState) {
	if !rk.cfg.DisableBlacklist {
		for _, n := range st.Nodes {
			if !rk.reqs.NodeBlacklisted(n, "") {
				rk.reqs.BlacklistNode(n, "failover-inherited")
			}
		}
		for _, c := range st.Clusters {
			if !rk.reqs.ClusterBlacklisted(c) {
				rk.reqs.BlacklistCluster(c, "failover-inherited")
			}
		}
	}
	if st.MinBandwidth > 0 {
		rk.reqs.LearnMinBandwidth(st.MinBandwidth)
	}
}

// Protect marks nodes as unremovable.
func (rk *RootKernel) Protect(ids ...core.NodeID) {
	rk.mu.Lock()
	defer rk.mu.Unlock()
	for _, id := range ids {
		rk.protected[id] = true
	}
}

// SetProtected replaces the protected set.
func (rk *RootKernel) SetProtected(ids ...core.NodeID) {
	rk.mu.Lock()
	defer rk.mu.Unlock()
	rk.protected = make(map[core.NodeID]bool, len(ids))
	for _, id := range ids {
		rk.protected[id] = true
	}
}

func (rk *RootKernel) veto(node core.NodeID, cluster core.ClusterID) bool {
	return rk.reqs.NodeBlacklisted(node, cluster)
}

// Ingest stores a cluster's summary (latest per cluster by Time) and
// union-merges the requirements cache riding on it. Summaries from
// before the root's last action (older Epoch) are discarded: they
// aggregate exactly the stale pre-action reports the flat kernel's
// post-action reset deletes. A summary from a NEWER epoch raises the
// root's own epoch — that is how an elected successor converges with
// subs that saw a reset push the successor missed. Returns whether the
// summary was accepted.
func (rk *RootKernel) Ingest(sum ClusterSummary) bool {
	rk.AdoptReqState(sum.Req)
	rk.mu.Lock()
	defer rk.mu.Unlock()
	if sum.Epoch > rk.resetEpoch {
		rk.resetEpoch = sum.Epoch
	}
	if sum.Epoch < rk.resetEpoch {
		rk.ins.staleEpoch.Inc()
		return false
	}
	if cur, ok := rk.sums[sum.Cluster]; ok && sum.Time < cur.Time {
		return false
	}
	rk.sums[sum.Cluster] = sum
	rk.ins.ingested.Inc()
	return true
}

// Forget drops a cluster's summary (the cluster's sub died or the
// cluster emptied; Tick also prunes clusters missing from the live
// set).
func (rk *RootKernel) Forget(c core.ClusterID) {
	rk.mu.Lock()
	defer rk.mu.Unlock()
	delete(rk.sums, c)
}

// Tick runs one root pass of the Figure-2 loop over the latest cluster
// summaries. liveClusters is the runtime's census of clusters that
// currently host participants (summaries of vanished clusters are
// pruned); totalNodes is the live participant count. The per-tick cost
// is O(clusters · proposal cap) — independent of the node count, which
// is the point of the shard split.
func (rk *RootKernel) Tick(now float64, liveClusters []core.ClusterID, totalNodes int) PeriodRecord {
	rk.mu.Lock()
	defer rk.mu.Unlock()

	liveSet := make(map[core.ClusterID]bool, len(liveClusters))
	for _, c := range liveClusters {
		liveSet[c] = true
	}
	for c := range rk.sums {
		if !liveSet[c] {
			delete(rk.sums, c)
		}
	}
	order := make([]core.ClusterID, 0, len(rk.sums))
	for c := range rk.sums {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// Global speed extrema and report count from the cluster partials.
	n := 0
	maxSp, minKnown := 0.0, 0.0
	for _, c := range order {
		s := rk.sums[c]
		n += s.Stats
		if s.SpeedMax > maxSp {
			maxSp = s.SpeedMax
		}
		if s.SpeedMin > 0 && (minKnown == 0 || s.SpeedMin < minKnown) {
			minKnown = s.SpeedMin
		}
	}
	// WAE = [Σ WorkSum/max + (minKnown/max)·Σ ZeroWork] / n — the flat
	// metric reassociated over cluster partials.
	var wae, eff float64
	if n > 0 {
		var sumW, sumE float64
		for _, c := range order {
			s := rk.sums[c]
			sumE += s.EffSum
			if maxSp == 0 {
				sumW += s.ZeroWork // nobody measured: rel = 1 everywhere
			} else {
				sumW += s.WorkSum/maxSp + (minKnown/maxSp)*s.ZeroWork
			}
		}
		wae = sumW / float64(n)
		eff = sumE / float64(n)
	}

	// Sum the clusters' streaming partials into the period's global
	// observation, consuming them (a summary's stream fields feed
	// exactly one tick, like the flat kernel's pending observation).
	var streamObs *core.StreamObs
	for _, c := range order {
		s := rk.sums[c]
		if !s.HasStream {
			continue
		}
		if streamObs == nil {
			streamObs = &core.StreamObs{}
		}
		streamObs.Merge(core.StreamObs{
			Arrived:    s.StreamArrived,
			Completed:  s.StreamCompleted,
			LatencySum: s.StreamLatencySum,
			Backlog:    s.StreamBacklog,
		})
		s.HasStream = false
		s.StreamArrived, s.StreamCompleted, s.StreamBacklog = 0, 0, 0
		s.StreamLatencySum = 0
		rk.sums[c] = s
	}

	dWAE := wae
	if rk.eng != nil && rk.eng.Config().UnweightedEfficiency {
		dWAE = eff
	}
	po := core.PeriodObs{Health: dWAE, HasHealth: n > 0, Stream: streamObs}
	health := dWAE
	if rk.obj != nil {
		health = rk.obj.Health(po)
	}

	rec := PeriodRecord{Time: now, WAE: health, Nodes: totalNodes, Stats: n}
	rk.ins.ticks.Inc()
	rk.ins.liveNodes.Set(float64(totalNodes))
	rk.ins.reported.Set(float64(n))
	rk.ins.clusters.Set(float64(len(order)))
	if n > 0 {
		rk.ins.health.Set(rec.WAE)
		rk.ins.periodHealth.Observe(rec.WAE)
	}
	defer func() {
		if rec.Action != "" && rec.Action != "none" {
			obs.Default.Counter("coord/decision/" + rec.Action).Inc()
		}
		if rec.Added > 0 {
			obs.Default.Counter("coord/nodes_added").Add(uint64(rec.Added))
		}
		if rec.Removed > 0 {
			obs.Default.Counter("coord/nodes_removed").Add(uint64(rec.Removed))
		}
	}()
	if rk.obj == nil || rk.cfg.MonitorOnly {
		if n > 0 {
			rec.Detail = fmt.Sprintf("monitor only: WAE %.3f on %d nodes", rec.WAE, n)
		}
		return rec
	}
	if n == 0 {
		if totalNodes == 0 {
			rec.Action = "add"
			rec.Added = rk.act.Provision(1, rk.reqs.MinBandwidth(), rk.veto)
			rec.Detail = "no live nodes; bootstrap by requesting one"
			if rec.Added > 0 {
				rk.act.Annotate("bootstrap: requested a replacement node")
			}
		}
		return rec
	}

	// Fair-share yield outranks the objective band, as in the flat
	// kernel.
	if rk.cfg.Pressure != nil {
		if p := rk.cfg.Pressure(); p > 0 {
			ranked := rk.rankProposals(order, maxSp, minKnown)
			var victims []core.NodeID
			for _, nb := range ranked {
				if len(victims) >= p {
					break
				}
				if !rk.protected[nb.Node] {
					victims = append(victims, nb.Node)
				}
			}
			if removed := rk.evict(victims, "fair-share yield", false); removed > 0 {
				rec.Action = "yield"
				rec.Removed = removed
				rec.Detail = fmt.Sprintf("pool reclaimed %d of %d surplus nodes", removed, p)
				obs.Default.Counter("coord/yielded").Add(uint64(removed))
				rk.act.Annotate(fmt.Sprintf("yielded %d nodes to the shared pool", removed))
				rk.resetLocked()
				return rec
			}
		}
	}

	acted := false
	v, cnt := rk.obj.Judge(health, n)
	switch v {
	case core.VerdictGrow:
		rec.Action = "add"
		rec.Detail = rk.obj.Explain(core.VerdictGrow, health, n, cnt)
		rec.Added = rk.act.Provision(cnt, rk.reqs.MinBandwidth(), rk.veto)
		if rec.Added > 0 {
			acted = true
			rk.act.Annotate(fmt.Sprintf("adding %d nodes (WAE %.2f)", rec.Added, health))
		}
	case core.VerdictShrink, core.VerdictShed:
		acted = rk.shrink(&rec, v, order, health, n, cnt, maxSp, minKnown)
	default:
		rec.Action = "none"
		rec.Detail = rk.obj.Explain(core.VerdictHold, health, n, 0)
		if rk.cfg.Opportunistic {
			if added, removed := rk.tryOpportunistic(order, maxSp, minKnown); added > 0 {
				rec.Action = "opportunistic-migrate"
				rec.Added = added
				rec.Removed = removed
				acted = true
				rk.act.Annotate(fmt.Sprintf("opportunistic migration: +%d faster nodes, -%d slow",
					added, removed))
			}
		}
	}
	if acted {
		rk.resetLocked()
	}
	return rec
}

// resetLocked is the root's post-action reset: the stored summaries
// describe the pre-action configuration. The epoch bump travels to the
// subs (via the driver) so they discard their pre-action reports too,
// and summaries already in flight from the old epoch are rejected.
func (rk *RootKernel) resetLocked() {
	rk.sums = make(map[core.ClusterID]ClusterSummary)
	rk.resetEpoch++
	rk.ins.resets.Inc()
}

// shrink is the objective's shrink (or shed) verdict: for objectives
// with the ClusterEviction trait, bandwidth-culprit cluster eviction
// first, then the inter-comm dominance fallback; then worst-node
// removal — the exact rule order of core.Engine.Decide, recomputed
// from cluster partials. cnt is the objective's node-removal magnitude
// (0 = floor reached). A VerdictShed blacklists its victims regardless
// of the objective's traits, mirroring Decision.Blacklist on the flat
// path.
func (rk *RootKernel) shrink(rec *PeriodRecord, v core.Verdict, order []core.ClusterID, health float64, n, cnt int, maxSp, minKnown float64) bool {
	tr := rk.obj.Traits()
	if tr.ClusterEviction && rk.eng != nil {
		ecfg := rk.eng.Config()

		// Primary rule: measured pair-bandwidth culprit.
		if ecfg.ClusterDropBWRatio > 0 {
			if culprit, bw, ref, ok := rk.bandwidthCulprit(order, ecfg.MinPairBytes); ok && ref > 0 && bw <= ref*ecfg.ClusterDropBWRatio {
				if s, here := rk.sums[culprit]; here && s.Stats > 0 && n-s.Stats >= ecfg.MinNodes {
					rec.Action = "remove-cluster"
					rec.Detail = fmt.Sprintf("cluster %s best-pair bandwidth %.0f B/s vs %.0f B/s elsewhere: uplink insufficient, evacuating cluster",
						culprit, bw, ref)
					interComm := s.InterSum / float64(s.Stats)
					rec.Removed = rk.evictCluster(rec, culprit, interComm, bw, health, n)
					return rec.Removed > 0
				}
			}
		}

		// Fallback rule: exceptionally high inter-cluster overhead that
		// clearly dominates the runner-up.
		clusters := rk.rankClusters(order)
		worst, second := -1, -1
		for i := range clusters {
			switch {
			case worst < 0 || clusters[i].InterComm > clusters[worst].InterComm:
				second = worst
				worst = i
			case second < 0 || clusters[i].InterComm > clusters[second].InterComm:
				second = i
			}
		}
		dominates := len(clusters) > 1 && worst >= 0 &&
			clusters[worst].InterComm > ecfg.ClusterDropInterComm
		if dominates && ecfg.ClusterDropRelative > 0 && second >= 0 {
			dominates = clusters[worst].InterComm >
				clusters[second].InterComm*ecfg.ClusterDropRelative
		}
		if dominates {
			c := clusters[worst]
			if s, ok := rk.sums[c.Cluster]; ok && n-s.Stats >= ecfg.MinNodes {
				rec.Action = "remove-cluster"
				rec.Detail = fmt.Sprintf("cluster %s inter-cluster overhead %.0f%% > %.0f%%: uplink bandwidth insufficient, evacuating cluster",
					c.Cluster, c.InterComm*100, ecfg.ClusterDropInterComm*100)
				rec.Removed = rk.evictCluster(rec, c.Cluster, c.InterComm, 0, health, n)
				return rec.Removed > 0
			}
		}
	}

	if cnt == 0 {
		rec.Action = "none"
		rec.Detail = rk.obj.Explain(v, health, n, 0)
		return false
	}
	ranked := rk.rankProposals(order, maxSp, minKnown)
	if len(ranked) > cnt {
		ranked = ranked[:cnt]
	}
	victims := make([]core.NodeID, 0, len(ranked))
	for _, nb := range ranked {
		victims = append(victims, nb.Node)
	}
	rec.Action = "remove-nodes"
	rec.Detail = rk.obj.Explain(v, health, n, cnt)
	rec.Removed = rk.evict(victims, "badness", tr.BlacklistVictims || v == core.VerdictShed)
	if rec.Removed > 0 {
		rk.act.Annotate(fmt.Sprintf("removed %d worst nodes (WAE %.2f)", rec.Removed, health))
		return true
	}
	return false
}

// evictCluster evacuates a whole cluster: learn the bandwidth bound
// before the summaries disappear, evict the cluster's live nodes (via
// the RootActuator enumeration when available, else the proposals),
// blacklist the cluster, and fall back to worst-node eviction when the
// cluster holds only protected nodes — mirroring the flat kernel.
func (rk *RootKernel) evictCluster(rec *PeriodRecord, c core.ClusterID, interComm, measuredBW, wae float64, n int) int {
	rk.learnClusterBandwidth(c, measuredBW)
	var victims []core.NodeID
	if ra, ok := rk.act.(RootActuator); ok {
		victims = ra.ClusterNodes(c)
	} else if s, ok := rk.sums[c]; ok {
		for _, p := range s.Proposals {
			victims = append(victims, p.Node)
		}
	}
	removed := rk.evict(victims, "cluster uplink saturated", true)
	if removed > 0 {
		if !rk.cfg.DisableBlacklist {
			rk.reqs.BlacklistCluster(c,
				fmt.Sprintf("inter-cluster overhead %.0f%%", interComm*100))
		}
		rk.act.Annotate(fmt.Sprintf("removed badly connected cluster %s (%d nodes)", c, removed))
		return removed
	}
	// Only protected nodes there: evict the worst ordinary nodes
	// instead, skipping the offending cluster.
	count := rk.eng.ShrinkCount(n, wae)
	var maxSp, minKnown float64
	order := make([]core.ClusterID, 0, len(rk.sums))
	for cc := range rk.sums {
		order = append(order, cc)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, cc := range order {
		s := rk.sums[cc]
		if s.SpeedMax > maxSp {
			maxSp = s.SpeedMax
		}
		if s.SpeedMin > 0 && (minKnown == 0 || s.SpeedMin < minKnown) {
			minKnown = s.SpeedMin
		}
	}
	ranked := rk.rankProposals(order, maxSp, minKnown)
	var fallback []core.NodeID
	for _, nb := range ranked {
		if len(fallback) >= count {
			break
		}
		if nb.Cluster != c {
			fallback = append(fallback, nb.Node)
		}
	}
	removed = rk.evict(fallback, "badness (cluster fallback)", true)
	if removed > 0 {
		rk.act.Annotate(fmt.Sprintf("removed %d worst nodes (WAE %.2f)", removed, wae))
	}
	return removed
}

// learnClusterBandwidth mirrors the flat kernel's capacity-first order:
// observed link capacity, then the cluster's reported mean achieved
// throughput, then the measured pair bandwidth from the culprit rule.
func (rk *RootKernel) learnClusterBandwidth(c core.ClusterID, measured float64) {
	bw := rk.act.ObservedBandwidth(c)
	if bw <= 0 {
		if s, ok := rk.sums[c]; ok && s.InterBWCnt > 0 {
			bw = s.InterBWSum / float64(s.InterBWCnt)
		}
	}
	if bw <= 0 {
		bw = measured
	}
	if bw > 0 {
		rk.reqs.LearnMinBandwidth(bw)
	}
}

// rankClusters recomputes core.RankClusters from the cluster partials:
// SpeedSum and the InterComm mean are exact sums/means over the same
// nodes in the same order, so the ranking matches the flat one exactly.
func (rk *RootKernel) rankClusters(order []core.ClusterID) []core.ClusterBadness {
	maxSpeed := 0.0
	for _, c := range order {
		if s := rk.sums[c]; s.Stats > 0 && s.SpeedSum > maxSpeed {
			maxSpeed = s.SpeedSum
		}
	}
	w := rk.weights
	out := make([]core.ClusterBadness, 0, len(order))
	for _, c := range order {
		s := rk.sums[c]
		if s.Stats == 0 {
			continue
		}
		rel := 1.0
		if maxSpeed > 0 {
			rel = s.SpeedSum / maxSpeed
		}
		inter := s.InterSum / float64(s.Stats)
		out = append(out, core.ClusterBadness{
			Cluster:   c,
			Badness:   w.Alpha*core.InvSpeed(rel) + w.Beta*inter,
			InterComm: inter,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Badness != out[j].Badness {
			return out[i].Badness > out[j].Badness
		}
		return out[i].Cluster < out[j].Cluster
	})
	return out
}

// rankProposals re-ranks every cluster's proposed candidates with the
// GLOBAL badness formula — global speed normalisation, global minKnown
// fallback and the γ bonus for the worst cluster — exactly
// core.RankNodes restricted to the proposed nodes.
func (rk *RootKernel) rankProposals(order []core.ClusterID, maxSp, minKnown float64) []core.NodeBadness {
	var worst core.ClusterID
	if clusters := rk.rankClusters(order); len(clusters) > 0 {
		worst = clusters[0].Cluster
	}
	var out []core.NodeBadness
	w := rk.weights
	for _, c := range order {
		s := rk.sums[c]
		for _, p := range s.Proposals {
			var rel float64
			switch {
			case maxSp == 0:
				rel = 1
			case p.Speed > 0:
				rel = p.Speed / maxSp
			default:
				rel = minKnown / maxSp
			}
			b := w.Alpha*core.InvSpeed(rel) + w.Beta*p.InterComm
			if c == worst {
				b += w.Gamma
			}
			out = append(out, core.NodeBadness{Node: p.Node, Cluster: c, Badness: b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Badness != out[j].Badness {
			return out[i].Badness > out[j].Badness
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// bandwidthCulprit rebuilds core.BandwidthCulprit from the clusters'
// summed link samples. Each pair's total is the same set of per-node
// samples the flat kernel sums, pre-reduced per cluster.
func (rk *RootKernel) bandwidthCulprit(order []core.ClusterID, minBytes float64) (culprit core.ClusterID, bw, ref float64, ok bool) {
	synth := make([]core.NodeStats, 0, len(order))
	for _, c := range order {
		s := rk.sums[c]
		if len(s.Links) == 0 {
			continue
		}
		synth = append(synth, core.NodeStats{
			Node:    core.NodeID("cluster:" + string(c)),
			Cluster: c,
			Links:   s.Links,
		})
	}
	return core.BandwidthCulprit(synth, minBytes)
}

// evict mirrors the flat kernel: filter protected, ask the actuator,
// blacklist exactly what left.
func (rk *RootKernel) evict(victims []core.NodeID, reason string, blacklist bool) int {
	want := make([]core.NodeID, 0, len(victims))
	for _, id := range victims {
		if !rk.protected[id] {
			want = append(want, id)
		}
	}
	if len(want) == 0 {
		return 0
	}
	evicted := rk.act.Evict(want, reason)
	for _, id := range evicted {
		if blacklist && !rk.cfg.DisableBlacklist {
			rk.reqs.BlacklistNode(id, reason)
		}
	}
	return len(evicted)
}

// tryOpportunistic is the root's opportunistic migration: the slowest
// measured speed is known globally (SpeedMin partials); the migration
// victim set comes from the proposals, which is exact when the
// proposal cap covers the cluster and a documented approximation
// otherwise.
func (rk *RootKernel) tryOpportunistic(order []core.ClusterID, maxSp, minKnown float64) (added, removed int) {
	mig, ok := rk.act.(Migrator)
	if !ok {
		return 0, 0
	}
	if minKnown == 0 {
		return 0, 0 // no measured speeds yet
	}
	cluster, speed, free := mig.BestAvailable(rk.veto)
	if cluster == "" || speed < minKnown*rk.cfg.OpportunisticFactor {
		return 0, 0
	}
	type cand struct {
		node    core.NodeID
		cluster core.ClusterID
		speed   float64
	}
	var slow []cand
	for _, c := range order {
		for _, p := range rk.sums[c].Proposals {
			if p.Speed > 0 && p.Speed*rk.cfg.OpportunisticFactor <= speed && !rk.protected[p.Node] {
				slow = append(slow, cand{p.Node, c, p.Speed})
			}
		}
	}
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].speed != slow[j].speed {
			return slow[i].speed < slow[j].speed
		}
		return slow[i].node < slow[j].node
	})
	want := len(slow)
	if want > free {
		want = free
	}
	if want == 0 {
		return 0, 0
	}
	added = mig.ProvisionFrom(cluster, want, rk.reqs.MinBandwidth(), rk.veto)
	victims := make([]core.NodeID, 0, added)
	for i := 0; i < added && i < len(slow); i++ {
		victims = append(victims, slow[i].node)
	}
	removed = rk.evict(victims, "opportunistic migration", true)
	return added, removed
}
