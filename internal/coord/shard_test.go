package coord

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wirefmt/frametest"
)

// --- wire codec golden suite ------------------------------------------

// TestClusterSummaryWireParity runs the summary frame's edge cases
// through the binary codec and gob: zero values, extreme floats,
// unicode IDs, nil-vs-populated link maps, and a fully loaded frame.
func TestClusterSummaryWireParity(t *testing.T) {
	frametest.Parity[ClusterSummary, *ClusterSummary](t, []ClusterSummary{
		{},
		{Cluster: "A", Seq: 1, Epoch: 0, Time: 100, Nodes: 4, Stats: 4,
			SpeedMax: 100, SpeedMin: 50, WorkSum: 180, ZeroWork: 0.5,
			EffSum: 2.5, SpeedSum: 300, InterSum: 0.75,
			InterBWSum: 4e6, InterBWCnt: 2},
		{Cluster: "кластер-ü", Seq: math.MaxUint64, Epoch: 7,
			Time: -1, Nodes: -1, Stats: 0,
			SpeedMax: math.MaxFloat64, SpeedMin: math.SmallestNonzeroFloat64,
			Links: map[core.ClusterID]core.LinkSample{
				"B":    {Seconds: 0.5, Bytes: 1 << 20},
				"远方集群": {Seconds: 3, Bytes: 7},
			},
			Proposals: []NodeSample{
				{Node: "n0", Speed: 100, Idle: 0.25, IntraComm: 0.125, InterComm: 0.5},
				{Node: "узел-1"},
			},
			Req: ReqState{
				Nodes:        []core.NodeID{"bad-1", "bad-2"},
				Clusters:     []core.ClusterID{"C"},
				MinBandwidth: 5e5,
			}},
		{Cluster: "A", Links: map[core.ClusterID]core.LinkSample{}},
		{Cluster: "stream-src", Seq: 9, Time: 300, Nodes: 6, Stats: 6,
			HasStream: true, StreamArrived: 120, StreamCompleted: 118,
			StreamLatencySum: 94.5, StreamBacklog: 17},
		{Cluster: "stream-edge", HasStream: true,
			StreamArrived: math.MaxInt32, StreamCompleted: -1,
			StreamLatencySum: math.Inf(1), StreamBacklog: 0},
	})
}

func TestReqStateWireParity(t *testing.T) {
	frametest.Parity[ReqState, *ReqState](t, []ReqState{
		{},
		{Nodes: []core.NodeID{"n1"}, MinBandwidth: 1e6},
		{Nodes: []core.NodeID{"n1", "узел-2"}, Clusters: []core.ClusterID{"A", "B"}, MinBandwidth: 0.5},
	})
}

func TestClusterSummaryWireCorrupt(t *testing.T) {
	sum := ClusterSummary{
		Cluster: "A", Seq: 3, Epoch: 1, Time: 200, Nodes: 2, Stats: 2,
		SpeedMax: 100, SpeedMin: 50, WorkSum: 75, EffSum: 1.5,
		SpeedSum: 150, InterSum: 0.25, InterBWSum: 2e6, InterBWCnt: 1,
		Links:     map[core.ClusterID]core.LinkSample{"B": {Seconds: 1, Bytes: 2e6}},
		Proposals: []NodeSample{{Node: "n0", Speed: 50, Idle: 0.5}},
		Req:       ReqState{Nodes: []core.NodeID{"bad"}, MinBandwidth: 1e5},
		HasStream: true, StreamArrived: 40, StreamCompleted: 39,
		StreamLatencySum: 12.25, StreamBacklog: 3,
	}
	enc, err := sum.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	frametest.Corrupt[ClusterSummary, *ClusterSummary](t, enc)
}

// --- flat vs sharded decision parity ----------------------------------

// parityActuator is the shared fake runtime for the parity harness: it
// grants every provision, evicts every victim from its own live world,
// and records all calls so the two pipelines' effect sequences can be
// compared verbatim.
type parityActuator struct {
	live       map[core.NodeID]core.ClusterID
	provisions []int
	evictions  [][]core.NodeID
	labels     []string
}

func (a *parityActuator) Provision(n int, minBandwidth float64, veto Veto) int {
	a.provisions = append(a.provisions, n)
	return n
}

func (a *parityActuator) Evict(victims []core.NodeID, reason string) []core.NodeID {
	for _, id := range victims {
		delete(a.live, id)
	}
	a.evictions = append(a.evictions, append([]core.NodeID(nil), victims...))
	return victims
}

func (a *parityActuator) ObservedBandwidth(core.ClusterID) float64 { return 0 }

func (a *parityActuator) Annotate(label string) { a.labels = append(a.labels, label) }

// ClusterNodes makes the actuator a RootActuator: sorted live roster of
// one cluster, which is exactly the flat kernel's eviction order for a
// cluster whose nodes all report.
func (a *parityActuator) ClusterNodes(c core.ClusterID) []core.NodeID {
	var out []core.NodeID
	for id, cl := range a.live {
		if cl == c {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var _ RootActuator = (*parityActuator)(nil)

// parityHarness drives the flat kernel and the sharded tree through the
// same report script and lets the test compare the period records.
type parityHarness struct {
	t    *testing.T
	fk   *Kernel
	fact *parityActuator
	rk   *RootKernel
	ract *parityActuator
	subs map[core.ClusterID]*SubKernel

	epoch uint64 // the subs' adopted root reset epoch
}

func newParityHarness(t *testing.T, world map[core.NodeID]core.ClusterID) *parityHarness {
	t.Helper()
	cp := func() map[core.NodeID]core.ClusterID {
		m := make(map[core.NodeID]core.ClusterID, len(world))
		for id, c := range world {
			m[id] = c
		}
		return m
	}
	h := &parityHarness{
		t:    t,
		fact: &parityActuator{live: cp()},
		ract: &parityActuator{live: cp()},
		subs: make(map[core.ClusterID]*SubKernel),
	}
	h.fk = newKernel(t, Config{}, h.fact)
	ecfg := core.DefaultConfig()
	rk, err := NewRoot(Config{Engine: &ecfg}, h.ract)
	if err != nil {
		t.Fatal(err)
	}
	h.rk = rk
	for _, c := range world {
		if _, ok := h.subs[c]; !ok {
			// Proposal cap 0: every reporting node is proposed, the
			// configuration under which the sharded ranking is exact.
			h.subs[c] = NewSubKernel(c, 0, ecfg.Weights)
		}
	}
	return h
}

// newStreamParityHarness is the harness under the streaming objective:
// the flat kernel and the sharded root each own a *separate* StreamSLO
// instance built from the same configuration, so the hysteresis state
// machines run independently over identical inputs — shared state would
// mask a divergence instead of exposing it.
func newStreamParityHarness(t *testing.T, world map[core.NodeID]core.ClusterID, scfg core.StreamSLOConfig) *parityHarness {
	t.Helper()
	cp := func() map[core.NodeID]core.ClusterID {
		m := make(map[core.NodeID]core.ClusterID, len(world))
		for id, c := range world {
			m[id] = c
		}
		return m
	}
	h := &parityHarness{
		t:    t,
		fact: &parityActuator{live: cp()},
		ract: &parityActuator{live: cp()},
		subs: make(map[core.ClusterID]*SubKernel),
	}
	fobj, err := core.NewStreamSLO(scfg)
	if err != nil {
		t.Fatal(err)
	}
	h.fk, err = New(Config{Objective: fobj}, h.fact)
	if err != nil {
		t.Fatal(err)
	}
	robj, err := core.NewStreamSLO(scfg)
	if err != nil {
		t.Fatal(err)
	}
	h.rk, err = NewRoot(Config{Objective: robj}, h.ract)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range world {
		if _, ok := h.subs[c]; !ok {
			h.subs[c] = NewSubKernel(c, 0, scfg.Weights)
		}
	}
	return h
}

// observeStream feeds one period's streaming partials to both
// pipelines: each cluster's share lands at its sub-kernel, and the flat
// kernel receives the same partials merged in sorted cluster order —
// the exact order the root sums summary partials in, so the float
// arithmetic cannot drift.
func (h *parityHarness) observeStream(partials map[core.ClusterID]core.StreamObs) {
	clusters := make([]core.ClusterID, 0, len(partials))
	for c := range partials {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	for _, c := range clusters {
		h.fk.ObserveStream(partials[c])
		h.subs[c].ObserveStream(partials[c])
	}
}

// period feeds one period's reports to both pipelines and runs both
// ticks. Reports of nodes a pipeline already evicted are dropped for
// that pipeline only, so a divergence would become visible instead of
// being masked.
func (h *parityHarness) period(pi int, reports []metrics.Report) (flat, sharded PeriodRecord) {
	now := float64(pi+1) * dur

	// Flat pipeline.
	for _, r := range reports {
		if _, ok := h.fact.live[r.Node]; ok {
			h.fk.Report(r)
		}
	}
	flatLive := make([]core.NodeID, 0, len(h.fact.live))
	for id := range h.fact.live {
		flatLive = append(flatLive, id)
	}
	flat = h.fk.Tick(now, flatLive)

	// Sharded pipeline: reports land at the cluster's sub-kernel, each
	// sub summarizes, the root ingests and ticks, and an epoch bump
	// resets every sub (the driver contract of des and adapt).
	byCluster := make(map[core.ClusterID][]core.NodeID)
	for id, c := range h.ract.live {
		byCluster[c] = append(byCluster[c], id)
	}
	for _, r := range reports {
		if _, ok := h.ract.live[r.Node]; ok {
			h.subs[r.Cluster].Report(r)
		}
	}
	clusters := make([]core.ClusterID, 0, len(byCluster))
	for c := range byCluster {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	for _, c := range clusters {
		sum := h.subs[c].Summarize(now, byCluster[c])
		sum.Epoch = h.epoch
		if !h.rk.Ingest(sum) {
			h.t.Fatalf("period %d: summary of %s rejected", pi, c)
		}
	}
	sharded = h.rk.Tick(now, clusters, len(h.ract.live))
	if after := h.rk.ResetEpoch(); after != h.epoch {
		h.epoch = after
		for _, sub := range h.subs {
			sub.Reset()
		}
	}
	return flat, sharded
}

func (h *parityHarness) compare(pi int, flat, sharded PeriodRecord) {
	h.t.Helper()
	if flat.Action != sharded.Action || flat.Detail != sharded.Detail {
		h.t.Fatalf("period %d: decisions diverge\n  flat:    %q %q\n  sharded: %q %q",
			pi, flat.Action, flat.Detail, sharded.Action, sharded.Detail)
	}
	if flat.Added != sharded.Added || flat.Removed != sharded.Removed {
		h.t.Fatalf("period %d: effects diverge: flat +%d/-%d, sharded +%d/-%d",
			pi, flat.Added, flat.Removed, sharded.Added, sharded.Removed)
	}
	if flat.Nodes != sharded.Nodes || flat.Stats != sharded.Stats {
		h.t.Fatalf("period %d: census diverges: flat %d/%d, sharded %d/%d",
			pi, flat.Nodes, flat.Stats, sharded.Nodes, sharded.Stats)
	}
	if !approx(flat.WAE, sharded.WAE) {
		h.t.Fatalf("period %d: WAE diverges: flat %v, sharded %v", pi, flat.WAE, sharded.WAE)
	}
}

// finish asserts the two runs left identical state behind: the same
// effect sequences, the same learned requirements, the same survivors.
func (h *parityHarness) finish() {
	h.t.Helper()
	if !equalIntSlices(h.fact.provisions, h.ract.provisions) {
		h.t.Errorf("provision sequences diverge: flat %v, sharded %v",
			h.fact.provisions, h.ract.provisions)
	}
	if len(h.fact.evictions) != len(h.ract.evictions) {
		h.t.Fatalf("eviction counts diverge: flat %v, sharded %v",
			h.fact.evictions, h.ract.evictions)
	}
	for i := range h.fact.evictions {
		if !equalNodeSlices(h.fact.evictions[i], h.ract.evictions[i]) {
			h.t.Errorf("eviction %d diverges: flat %v, sharded %v",
				i, h.fact.evictions[i], h.ract.evictions[i])
		}
	}
	if fmt.Sprint(h.fact.labels) != fmt.Sprint(h.ract.labels) {
		h.t.Errorf("annotations diverge:\n  flat:    %v\n  sharded: %v",
			h.fact.labels, h.ract.labels)
	}
	fr, sr := h.fk.Requirements(), h.rk.Requirements()
	if !equalNodeSlices(sortedNodes(fr.BlacklistedNodes()), sortedNodes(sr.BlacklistedNodes())) {
		h.t.Errorf("node blacklists diverge: flat %v, sharded %v",
			fr.BlacklistedNodes(), sr.BlacklistedNodes())
	}
	fc, sc := fr.BlacklistedClusters(), sr.BlacklistedClusters()
	sort.Slice(fc, func(i, j int) bool { return fc[i] < fc[j] })
	sort.Slice(sc, func(i, j int) bool { return sc[i] < sc[j] })
	if fmt.Sprint(fc) != fmt.Sprint(sc) {
		h.t.Errorf("cluster blacklists diverge: flat %v, sharded %v", fc, sc)
	}
	if fr.MinBandwidth() != sr.MinBandwidth() {
		h.t.Errorf("learned bandwidth diverges: flat %v, sharded %v",
			fr.MinBandwidth(), sr.MinBandwidth())
	}
	if fmt.Sprint(sortedLive(h.fact.live)) != fmt.Sprint(sortedLive(h.ract.live)) {
		h.t.Errorf("surviving nodes diverge: flat %v, sharded %v",
			sortedLive(h.fact.live), sortedLive(h.ract.live))
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNodeSlices(a, b []core.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedNodes(ids []core.NodeID) []core.NodeID {
	out := append([]core.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedLive(m map[core.NodeID]core.ClusterID) []core.NodeID {
	out := make([]core.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestFlatShardedDecisionParity is ISSUE 8's parity pin: on a small
// world with an uncapped proposal budget, the sharded tree must produce
// the flat kernel's decision sequence verbatim — same actions, same
// reason strings, same victims, same blacklists — across a script that
// exercises grow, the within-band case, worst-node shrink, and the
// inter-comm whole-cluster eviction. All report values are chosen
// binary-exact so the reassociated WAE arithmetic cannot drift.
func TestFlatShardedDecisionParity(t *testing.T) {
	h := newParityHarness(t, map[core.NodeID]core.ClusterID{
		"a1": "A", "a2": "A", "b1": "B", "b2": "B", "c1": "C", "c2": "C",
	})
	all := func(period int, mk func(n core.NodeID, c core.ClusterID) metrics.Report) []metrics.Report {
		var out []metrics.Report
		for _, nc := range []struct {
			n core.NodeID
			c core.ClusterID
		}{{"a1", "A"}, {"a2", "A"}, {"b1", "B"}, {"b2", "B"}, {"c1", "C"}, {"c2", "C"}} {
			out = append(out, mk(nc.n, nc.c))
		}
		return out
	}

	// Period 0: everyone 75% efficient -> WAE 0.750 > EMax, grow by
	// round(6·0.75/0.4)-6 = 5.
	f, s := h.period(0, all(0, func(n core.NodeID, c core.ClusterID) metrics.Report {
		return rep(n, c, 0, 25, 0, 0, 100, 0)
	}))
	h.compare(0, f, s)
	if f.Action != "add" || f.Added != 5 {
		t.Fatalf("period 0: want add 5, got %q +%d (%s)", f.Action, f.Added, f.Detail)
	}

	// Period 1: 43.75% efficient -> within band, no action.
	f, s = h.period(1, all(1, func(n core.NodeID, c core.ClusterID) metrics.Report {
		return rep(n, c, 1, 56.25, 0, 0, 100, 0)
	}))
	h.compare(1, f, s)
	if f.Action != "none" {
		t.Fatalf("period 1: want none, got %q (%s)", f.Action, f.Detail)
	}

	// Period 2: idle jumps to 87.5%; the two-period smoothing puts the
	// WAE at (0.4375+0.125)/2 = 0.28125 < EMin on both sides, and the
	// worst-cluster bonus (tie broken towards cluster A) selects a1, a2.
	f, s = h.period(2, all(2, func(n core.NodeID, c core.ClusterID) metrics.Report {
		return rep(n, c, 2, 87.5, 0, 0, 100, 0)
	}))
	h.compare(2, f, s)
	if f.Action != "remove-nodes" || f.Removed != 2 {
		t.Fatalf("period 2: want remove-nodes 2, got %q -%d (%s)", f.Action, f.Removed, f.Detail)
	}

	// Period 3: cluster B's inter-cluster overhead dominates (50% vs
	// 12.5%) with WAE 0.1875 < EMin -> whole-cluster eviction, learned
	// bandwidth from B's reported achieved throughput.
	f, s = h.period(3, []metrics.Report{
		rep("b1", "B", 3, 37.5, 0, 50, 100, 2e6),
		rep("b2", "B", 3, 37.5, 0, 50, 100, 2e6),
		rep("c1", "C", 3, 62.5, 0, 12.5, 100, 0),
		rep("c2", "C", 3, 62.5, 0, 12.5, 100, 0),
	})
	h.compare(3, f, s)
	if f.Action != "remove-cluster" || f.Removed != 2 {
		t.Fatalf("period 3: want remove-cluster 2, got %q -%d (%s)", f.Action, f.Removed, f.Detail)
	}

	// Period 4: the surviving cluster settles inside the band.
	f, s = h.period(4, []metrics.Report{
		rep("c1", "C", 4, 56.25, 0, 0, 100, 0),
		rep("c2", "C", 4, 56.25, 0, 0, 100, 0),
	})
	h.compare(4, f, s)
	if f.Action != "none" {
		t.Fatalf("period 4: want none, got %q (%s)", f.Action, f.Detail)
	}

	h.finish()
	req := h.rk.Requirements()
	if req.MinBandwidth() != 2e6 {
		t.Errorf("learned bandwidth = %v, want 2e6 from cluster B's reports", req.MinBandwidth())
	}
}

// TestFlatShardedBandwidthCulpritParity pins the measurement-based
// cluster-drop rule across the shard split: the per-cluster link-sample
// partials must reproduce the flat pair-bandwidth estimation exactly.
func TestFlatShardedBandwidthCulpritParity(t *testing.T) {
	h := newParityHarness(t, map[core.NodeID]core.ClusterID{
		"d1": "D", "d2": "D", "e1": "E", "e2": "E", "f1": "F", "f2": "F",
	})
	link := func(peer core.ClusterID, sec, bytes float64) map[core.ClusterID]core.LinkSample {
		return map[core.ClusterID]core.LinkSample{peer: {Seconds: sec, Bytes: bytes}}
	}
	mk := func(n core.NodeID, c core.ClusterID, links map[core.ClusterID]core.LinkSample) metrics.Report {
		r := rep(n, c, 0, 87.5, 0, 0, 100, 0)
		r.Links = links
		return r
	}
	// Pair D-F moves 10 MB at 10 MB/s; pair D-E moves 2 MB at 0.5 MB/s.
	// Cluster E's best pair (0.5 MB/s) is under 10% of the healthiest
	// pair -> E is the culprit, evacuated with the measured bandwidth
	// becoming the learned bound.
	f, s := h.period(0, []metrics.Report{
		mk("d1", "D", link("F", 0.5, 5e6)),
		mk("d2", "D", link("F", 0.5, 5e6)),
		mk("e1", "E", link("D", 2, 1e6)),
		mk("e2", "E", link("D", 2, 1e6)),
		mk("f1", "F", nil),
		mk("f2", "F", nil),
	})
	h.compare(0, f, s)
	if f.Action != "remove-cluster" || f.Removed != 2 {
		t.Fatalf("want remove-cluster 2, got %q -%d (%s)", f.Action, f.Removed, f.Detail)
	}
	h.finish()
	if bw := h.rk.Requirements().MinBandwidth(); bw != 5e5 {
		t.Errorf("learned bandwidth = %v, want the measured 5e5", bw)
	}
}

// TestFlatShardedStreamSLOParity is ISSUE 9's parity pin for the second
// objective: under the streaming latency SLO, the sharded tree (stream
// partials travelling as ClusterSummary aggregates, decisions from the
// root's merged observation) must reproduce the flat kernel's decision
// sequence verbatim across the whole hysteresis state machine — the
// proportional grow on a violation, the dead band, the calm streak, the
// single sluggish shrink with badness-ranked victims, and the streak
// restart after acting. All latency sums are chosen binary-exact so the
// sorted-order partial summation cannot drift.
func TestFlatShardedStreamSLOParity(t *testing.T) {
	h := newStreamParityHarness(t, map[core.NodeID]core.ClusterID{
		"a1": "A", "a2": "A", "b1": "B", "b2": "B",
	}, core.DefaultStreamSLO(2)) // target 2s; HighRatio 1, LowRatio 0.5, ShrinkAfter 4

	// Distinct badness per node so victim ranking has a unique order:
	// b2 is slow and mostly idle — the unambiguous first victim.
	reports := func(period int) []metrics.Report {
		return []metrics.Report{
			rep("a1", "A", period, 10, 0, 0, 100, 0),
			rep("a2", "A", period, 20, 0, 0, 100, 0),
			rep("b1", "B", period, 30, 0, 0, 100, 0),
			rep("b2", "B", period, 80, 0, 0, 50, 0),
		}
	}
	// Each cluster completes 10 items; per-item latency lat seconds.
	partials := func(lat float64) map[core.ClusterID]core.StreamObs {
		return map[core.ClusterID]core.StreamObs{
			"A": {Arrived: 10, Completed: 10, LatencySum: 10 * lat},
			"B": {Arrived: 10, Completed: 10, LatencySum: 10 * lat},
		}
	}

	// Period 0: mean latency 4s, health 0.5 -> SLO violated, grow
	// proportionally: round(4·(1/0.5 - 1)) = 4, within the 1x cap.
	h.observeStream(partials(4))
	f, s := h.period(0, reports(0))
	h.compare(0, f, s)
	if f.Action != "add" || f.Added != 4 {
		t.Fatalf("period 0: want add 4, got %q +%d (%s)", f.Action, f.Added, f.Detail)
	}
	if !approx(f.WAE, 0.5) {
		t.Fatalf("period 0: health %v, want 0.5", f.WAE)
	}

	// Period 1: mean latency exactly on target, health 1.0 — inside the
	// hysteresis dead band: no violation, not calm either.
	h.observeStream(partials(2))
	f, s = h.period(1, reports(1))
	h.compare(1, f, s)
	if f.Action != "none" {
		t.Fatalf("period 1: want none, got %q (%s)", f.Action, f.Detail)
	}

	// Periods 2-5: mean latency 0.5s, health 4 — calm. Three holds while
	// the streak builds, then the fourth consecutive calm period releases
	// exactly one node: the badness-worst b2, not blacklisted.
	for pi := 2; pi <= 4; pi++ {
		h.observeStream(partials(0.5))
		f, s = h.period(pi, reports(pi))
		h.compare(pi, f, s)
		if f.Action != "none" {
			t.Fatalf("period %d: want none while calm streak builds, got %q (%s)",
				pi, f.Action, f.Detail)
		}
	}
	h.observeStream(partials(0.5))
	f, s = h.period(5, reports(5))
	h.compare(5, f, s)
	if f.Action != "remove-nodes" || f.Removed != 1 {
		t.Fatalf("period 5: want remove-nodes 1, got %q -%d (%s)", f.Action, f.Removed, f.Detail)
	}
	if _, alive := h.fact.live["b2"]; alive {
		t.Fatal("period 5: flat victim was not b2")
	}

	// Period 6: still calm, but the shrink restarted the streak — one
	// calm period is not four, so both pipelines hold.
	h.observeStream(map[core.ClusterID]core.StreamObs{
		"A": {Arrived: 10, Completed: 10, LatencySum: 5},
		"B": {Arrived: 5, Completed: 5, LatencySum: 2.5},
	})
	f, s = h.period(6, reports(6))
	h.compare(6, f, s)
	if f.Action != "none" {
		t.Fatalf("period 6: want none after streak restart, got %q (%s)", f.Action, f.Detail)
	}

	h.finish()
	if bl := h.rk.Requirements().BlacklistedNodes(); len(bl) != 0 {
		t.Errorf("capacity shrink blacklisted nodes: %v", bl)
	}
}

// TestFlatShardedStreamSLOShedParity pins the straggler-shed path across
// the shard split. The parity actuator "grants" every provision but the
// granted nodes never report, so the census never moves — exactly the
// stuck-violation shape the shed guard watches for. Both pipelines must
// flip from growing to shedding the same badness-worst nodes, with the
// same shed wording, and blacklist them identically: a shed is a
// judgement on the node, so the provisioner must not hand it back.
func TestFlatShardedStreamSLOShedParity(t *testing.T) {
	h := newStreamParityHarness(t, map[core.NodeID]core.ClusterID{
		"a1": "A", "a2": "A", "b1": "B", "b2": "B",
	}, core.DefaultStreamSLO(2)) // StuckAfter 3: the fourth stuck violation sheds

	reports := func(period int) []metrics.Report {
		return []metrics.Report{
			rep("a1", "A", period, 10, 0, 0, 100, 0),
			rep("a2", "A", period, 20, 0, 0, 100, 0),
			rep("b1", "B", period, 30, 0, 0, 100, 0),
			rep("b2", "B", period, 80, 0, 0, 50, 0),
		}
	}
	// Mean latency 4s against a 2s target: health 0.5, every period.
	partials := func() map[core.ClusterID]core.StreamObs {
		return map[core.ClusterID]core.StreamObs{
			"A": {Arrived: 10, Completed: 10, LatencySum: 40},
			"B": {Arrived: 10, Completed: 10, LatencySum: 40},
		}
	}

	// Periods 0-2: three judged violations with no census growth — the
	// guard is still patient, so both pipelines keep asking for nodes.
	for pi := 0; pi <= 2; pi++ {
		h.observeStream(partials())
		f, s := h.period(pi, reports(pi))
		h.compare(pi, f, s)
		if f.Action != "add" || f.Added != 4 {
			t.Fatalf("period %d: want add 4 while the stuck streak builds, got %q +%d (%s)",
				pi, f.Action, f.Added, f.Detail)
		}
	}

	// Period 3: the fourth stuck violation gives up on growing and sheds
	// the badness-worst node instead.
	h.observeStream(partials())
	f, s := h.period(3, reports(3))
	h.compare(3, f, s)
	if f.Action != "remove-nodes" || f.Removed != 1 {
		t.Fatalf("period 3: want remove-nodes 1, got %q -%d (%s)", f.Action, f.Removed, f.Detail)
	}
	if !strings.Contains(f.Detail, "straggler") {
		t.Fatalf("period 3: detail %q does not name the straggler shed", f.Detail)
	}
	if _, alive := h.fact.live["b2"]; alive {
		t.Fatal("period 3: flat shed victim was not b2")
	}

	// Period 4: still stuck at the smaller census — shed the next-worst.
	h.observeStream(partials())
	f, s = h.period(4, reports(4))
	h.compare(4, f, s)
	if f.Action != "remove-nodes" || f.Removed != 1 {
		t.Fatalf("period 4: want remove-nodes 1, got %q -%d (%s)", f.Action, f.Removed, f.Detail)
	}
	if _, alive := h.fact.live["b1"]; alive {
		t.Fatal("period 4: flat shed victim was not b1")
	}

	h.finish()
	bl := sortedNodes(h.rk.Requirements().BlacklistedNodes())
	if fmt.Sprint(bl) != fmt.Sprint([]core.NodeID{"b1", "b2"}) {
		t.Errorf("shed victims not blacklisted: got %v, want [b1 b2]", bl)
	}
}

// --- allocation guards -------------------------------------------------

// TestEachReportNoAllocs pins the satellite fix for Reports(): the
// iteration-based accessors must not copy the report map.
func TestEachReportNoAllocs(t *testing.T) {
	k := newKernel(t, Config{}, &scriptedActuator{})
	for i := 0; i < 32; i++ {
		k.Report(rep(core.NodeID(fmt.Sprintf("n%02d", i)), "A", 0, 10, 0, 0, 100, 0))
	}
	count := 0
	fn := func(metrics.Report) bool { count++; return true }
	if allocs := testing.AllocsPerRun(100, func() { k.EachReport(fn) }); allocs != 0 {
		t.Errorf("Kernel.EachReport allocates %.1f per run, want 0", allocs)
	}
	if count == 0 {
		t.Fatal("EachReport visited no reports")
	}

	sk := NewSubKernel("A", 0, core.DefaultConfig().Weights)
	for i := 0; i < 32; i++ {
		sk.Report(rep(core.NodeID(fmt.Sprintf("n%02d", i)), "A", 0, 10, 0, 0, 100, 0))
	}
	if allocs := testing.AllocsPerRun(100, func() { sk.EachReport(fn) }); allocs != 0 {
		t.Errorf("SubKernel.EachReport allocates %.1f per run, want 0", allocs)
	}
}

// --- tick cost benchmarks ----------------------------------------------

// benchSummary fabricates one cluster's summary with a mid-band WAE so
// the benchmarked Tick never acts (no reset, state persists across
// iterations) and a bounded proposal list, the intended big-grid shape.
func benchSummary(i, nodes, proposals int) ClusterSummary {
	c := core.ClusterID(fmt.Sprintf("c%04d", i))
	sum := ClusterSummary{
		Cluster: c, Seq: 1, Time: 100,
		Nodes: nodes, Stats: nodes,
		SpeedMax: 100, SpeedMin: 100,
		WorkSum: 40 * float64(nodes), // eff 0.4 at speed 100
		EffSum:  0.4 * float64(nodes),
		SpeedSum: 100 * float64(nodes),
		InterSum: 0.05 * float64(nodes),
	}
	for p := 0; p < proposals; p++ {
		sum.Proposals = append(sum.Proposals, NodeSample{
			Node:  core.NodeID(fmt.Sprintf("%s-n%03d", c, p)),
			Speed: 100, Idle: 0.55, InterComm: 0.05,
		})
	}
	return sum
}

// BenchmarkRootKernelTick measures the sharded root's per-period cost:
// O(clusters · proposal cap), independent of the node count. The
// 10k/100k arms back the EXPERIMENTS.md table and the bench gate.
func BenchmarkRootKernelTick(b *testing.B) {
	for _, bc := range []struct {
		name              string
		clusters, perClus int
	}{
		{"200nodes_2clusters", 2, 100},
		{"2knodes_20clusters", 20, 100},
		{"10knodes_100clusters", 100, 100},
		{"100knodes_1000clusters", 1000, 100},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ecfg := core.DefaultConfig()
			rk, err := NewRoot(Config{Engine: &ecfg}, &parityActuator{live: map[core.NodeID]core.ClusterID{}})
			if err != nil {
				b.Fatal(err)
			}
			clusters := make([]core.ClusterID, 0, bc.clusters)
			for i := 0; i < bc.clusters; i++ {
				sum := benchSummary(i, bc.perClus, 8)
				clusters = append(clusters, sum.Cluster)
				rk.Ingest(sum)
			}
			total := bc.clusters * bc.perClus
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := rk.Tick(100, clusters, total)
				if rec.Action != "none" {
					b.Fatalf("benchmark tick acted: %q (%s)", rec.Action, rec.Detail)
				}
			}
		})
	}
}

// BenchmarkFlatKernelTick is the contrast arm: the flat kernel's tick
// is O(nodes log nodes) with per-node smoothing, the cost the shard
// split removes from the root.
func BenchmarkFlatKernelTick(b *testing.B) {
	for _, nodes := range []int{200, 2000, 10000} {
		b.Run(fmt.Sprintf("%dnodes", nodes), func(b *testing.B) {
			ecfg := core.DefaultConfig()
			k, err := New(Config{Engine: &ecfg}, &parityActuator{live: map[core.NodeID]core.ClusterID{}})
			if err != nil {
				b.Fatal(err)
			}
			live := make([]core.NodeID, 0, nodes)
			for i := 0; i < nodes; i++ {
				id := core.NodeID(fmt.Sprintf("n%05d", i))
				live = append(live, id)
				// Idle 55% at speed 100: eff 0.45, inside the band.
				k.Report(rep(id, core.ClusterID(fmt.Sprintf("c%04d", i/100)), 0, 55, 0, 0, 100, 0))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := k.Tick(100, live)
				if rec.Action != "none" {
					b.Fatalf("benchmark tick acted: %q (%s)", rec.Action, rec.Detail)
				}
			}
		})
	}
}
