// Package coord implements the paper's Figure-2 adaptation loop ONCE,
// independently of the runtime that executes the application. The
// Kernel owns everything between "statistics arrive" and "effects are
// requested": report ingestion, two-period smoothing, the decision
// engine call, requirements learning (minimum bandwidth, blacklists),
// the cluster-eviction fallback, bootstrap when the computation died,
// optional opportunistic migration, and the post-action report reset.
//
// Runtimes plug in through the small Actuator interface: the
// discrete-event simulator (internal/des) and the real
// registry+transport runtime (adapt) both feed metrics.Report values
// in and apply the kernel's effects out, so the adaptation policy can
// never diverge between them again. This is the separation the Cactus
// Worm line of work argues for — an adaptation manager decoupled from
// the execution substrate — and the precondition for hardening or
// replicating the coordinator without doing the work twice.
package coord

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Veto is the scheduler-side filter derived from the learned
// requirements: it rejects blacklisted nodes and clusters.
type Veto = func(core.NodeID, core.ClusterID) bool

// Actuator is the runtime-facing side of the kernel: the four effects
// an adaptation decision can require. Implementations must be safe to
// call from the kernel's Tick (they are invoked with the kernel's lock
// held, so they must not call back into the kernel synchronously).
//
// The contract per method:
//
//   - Provision asks the runtime's scheduler for up to n nodes that
//     meet the learned minimum uplink bandwidth (0 = no bound),
//     skipping anything the veto rejects, preferring sites the
//     application already occupies (locality). It returns how many
//     nodes were actually granted.
//   - Evict signals the listed nodes to leave and returns the subset
//     that was actually signalled; the kernel blacklists exactly that
//     subset. The kernel never passes protected nodes.
//   - ObservedBandwidth is the grid monitoring service's NWS-style
//     view of the cluster's access-link capacity (0 = no such service
//     or link never exercised). It is the preferred source for the
//     learned bandwidth bound; per-report achieved shares are only the
//     fallback (see learnClusterBandwidth).
//   - Annotate marks an adaptation event on the runtime's timeline
//     (figures, logs). Purely informational.
type Actuator interface {
	Provision(n int, minBandwidth float64, veto Veto) int
	Evict(victims []core.NodeID, reason string) []core.NodeID
	ObservedBandwidth(cluster core.ClusterID) float64
	Annotate(label string)
}

// Migrator is the optional Actuator extension for opportunistic
// migration (the paper's §7 future-work item): a scheduler that can
// rank idle resources by application-specific speed and grant nodes
// from a named site. Actuators that do not implement it simply never
// migrate opportunistically.
type Migrator interface {
	// BestAvailable returns the free, non-vetoed cluster with the
	// fastest processors, its per-processor speed, and how many nodes
	// it has free ("" when nothing is available).
	BestAvailable(veto Veto) (core.ClusterID, float64, int)
	// ProvisionFrom is Provision restricted to one cluster.
	ProvisionFrom(cluster core.ClusterID, n int, minBandwidth float64, veto Veto) int
}

// PeriodRecord is one coordinator tick — the unified period-log entry
// both runtimes (and internal/trace) render.
type PeriodRecord struct {
	Time    float64 // seconds (virtual for the DES, since start for the real runtime)
	WAE     float64
	Nodes   int    // live participants at the tick
	Stats   int    // node reports the tick decided on (0 = nothing to decide)
	Action  string // core.Action string, "" when idle/monitor-only
	Detail  string
	Added   int
	Removed int
}

// Annotation marks an adaptation or scenario event on the time axis.
type Annotation struct {
	Time  float64
	Label string
}

// Config tunes a Kernel.
type Config struct {
	// Engine configures the batch decision engine; when Objective is
	// nil and Engine is set, the kernel runs the classic WAE band
	// (core.BatchWAE). Nil Engine with nil Objective means the kernel
	// only monitors (it records health but never decides).
	Engine *core.Config
	// Objective overrides the adaptation objective: the policy that
	// turns one period's observations into a grow/hold/shrink verdict.
	// Objectives may be stateful (hysteresis) and must not be shared
	// between kernels.
	Objective core.Objective
	// MonitorOnly computes and records but never decides or acts (the
	// paper's "runtime 3", used to price the adaptation support).
	MonitorOnly bool
	// DisableBlacklist lets the scheduler hand back removed resources
	// (ablation: a persistent bad link then causes oscillation).
	DisableBlacklist bool
	// Opportunistic enables opportunistic migration when the actuator
	// implements Migrator.
	Opportunistic bool
	// OpportunisticFactor is how much faster an available cluster must
	// be than the slowest live node to trigger a migration (default 1.5).
	OpportunisticFactor float64
	// Pressure, when set, is the shared node pool's reclaim signal: how
	// many nodes this kernel's job holds beyond its fair share while
	// other jobs are starved. The kernel yields that many of its worst
	// nodes at the next tick — WITHOUT blacklisting them (they are not
	// bad, the grid is just contended; the pool may legitimately hand
	// them back later). This is how a coordinator participates in
	// multi-job arbitration instead of assuming it owns the scheduler.
	Pressure func() int
}

// Kernel is the runtime-independent adaptation coordinator. It is safe
// for concurrent use: the real runtime feeds Report from transport
// handlers while its ticker calls Tick.
type Kernel struct {
	cfg     Config
	eng     *core.Engine   // batch engine (nil for non-batch objectives)
	obj     core.Objective // nil = monitor-only
	weights core.BadnessWeights
	reqs    *core.Requirements
	act     Actuator

	mu      sync.Mutex
	stream  *core.StreamObs // pending streaming observation for the next tick
	reports map[core.NodeID]metrics.Report
	// prevStats keeps the previous period's per-node statistics: the
	// kernel decides on the average of two periods, smoothing out the
	// heavy-tailed per-period noise of a few large job transfers.
	prevStats map[core.NodeID]core.NodeStats
	protected map[core.NodeID]bool

	ins kernelInstruments
}

// kernelInstruments caches the obs instruments Tick touches, resolved
// once at kernel construction so the tick path never takes the
// registry lock.
type kernelInstruments struct {
	ticks        *obs.Counter
	smoothed     *obs.Counter
	resets       *obs.Counter
	health       *obs.Gauge
	liveNodes    *obs.Gauge
	reported     *obs.Gauge
	periodHealth *obs.Histogram
}

func newKernelInstruments() kernelInstruments {
	// The health series carry the objective's scalar (WAE for batch,
	// target/latency for streams). The pre-objective names stay
	// registered as aliases so existing scrapes keep working.
	obs.Default.Alias("coord/health", "coord/wae")
	obs.Default.Alias("coord/period_health", "coord/period_wae")
	return kernelInstruments{
		ticks:        obs.Default.Counter("coord/ticks"),
		smoothed:     obs.Default.Counter("coord/smoothed_reports"),
		resets:       obs.Default.Counter("coord/post_action_resets"),
		health:       obs.Default.Gauge("coord/health"),
		liveNodes:    obs.Default.Gauge("coord/live_nodes"),
		reported:     obs.Default.Gauge("coord/reported_nodes"),
		periodHealth: obs.Default.Histogram("coord/period_health", obs.HealthBuckets),
	}
}

// New builds a Kernel. cfg.Engine is validated when present.
func New(cfg Config, act Actuator) (*Kernel, error) {
	if act == nil {
		return nil, fmt.Errorf("coord: nil actuator")
	}
	if cfg.OpportunisticFactor == 0 {
		cfg.OpportunisticFactor = 1.5
	}
	k := &Kernel{
		cfg:       cfg,
		reqs:      core.NewRequirements(),
		act:       act,
		reports:   make(map[core.NodeID]metrics.Report),
		prevStats: make(map[core.NodeID]core.NodeStats),
		protected: make(map[core.NodeID]bool),
		ins:       newKernelInstruments(),
	}
	k.weights = core.DefaultBadnessWeights()
	switch {
	case cfg.Objective != nil:
		k.obj = cfg.Objective
		// The batch objective keeps its engine reachable: the kernel's
		// cluster-eviction fallback still needs ShrinkCount.
		if b, ok := cfg.Objective.(*core.BatchWAE); ok {
			k.eng = b.Engine()
			k.weights = k.eng.Config().Weights
		} else if s, ok := cfg.Objective.(*core.StreamSLO); ok {
			k.weights = s.Config().Weights
		}
	case cfg.Engine != nil:
		obj, err := core.NewBatchWAE(*cfg.Engine)
		if err != nil {
			return nil, err
		}
		k.obj = obj
		k.eng = obj.Engine()
		k.weights = k.eng.Config().Weights
	}
	return k, nil
}

// Objective returns the kernel's adaptation objective (nil when the
// kernel only monitors).
func (k *Kernel) Objective() core.Objective { return k.obj }

// ObserveStream ingests one period's streaming observation; the next
// Tick consumes it. Partial observations within a period merge by
// summation.
func (k *Kernel) ObserveStream(o core.StreamObs) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stream == nil {
		cp := o
		k.stream = &cp
		return
	}
	k.stream.Merge(o)
}

// Requirements exposes what the run has taught the kernel.
func (k *Kernel) Requirements() *core.Requirements { return k.reqs }

// Report ingests one node's per-period statistics. Only the freshest
// report per node is kept (batched deliveries may reorder).
func (k *Kernel) Report(rep metrics.Report) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if cur, ok := k.reports[rep.Node]; ok && rep.End < cur.End {
		return
	}
	k.reports[rep.Node] = rep
}

// Forget drops a departed node's state immediately (Tick also prunes
// nodes missing from the live set, so calling this is optional).
func (k *Kernel) Forget(id core.NodeID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.reports, id)
	delete(k.prevStats, id)
}

// Reports returns a copy of the kernel's current report view. Hot
// paths that only need to look should use EachReport instead — this
// copy allocates a fresh map per call.
func (k *Kernel) Reports() map[core.NodeID]metrics.Report {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[core.NodeID]metrics.Report, len(k.reports))
	for id, rep := range k.reports {
		out[id] = rep
	}
	return out
}

// EachReport calls fn for every stored report under the kernel lock,
// stopping early when fn returns false. It allocates nothing (pinned
// by an AllocsPerRun guard); fn must not call back into the kernel.
func (k *Kernel) EachReport(fn func(metrics.Report) bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, rep := range k.reports {
		if !fn(rep) {
			return
		}
	}
}

// Protect marks nodes as unremovable (the node hosting the root of the
// computation, and in the real system the process the user started).
func (k *Kernel) Protect(ids ...core.NodeID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, id := range ids {
		k.protected[id] = true
	}
}

// SetProtected replaces the protected set — used by runtimes where the
// protected role moves (a new master is elected after a crash).
func (k *Kernel) SetProtected(ids ...core.NodeID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.protected = make(map[core.NodeID]bool, len(ids))
	for _, id := range ids {
		k.protected[id] = true
	}
}

// veto is the scheduler filter derived from the learned requirements.
func (k *Kernel) veto(node core.NodeID, cluster core.ClusterID) bool {
	return k.reqs.NodeBlacklisted(node, cluster)
}

// Tick runs one pass of the paper's Figure-2 loop at time now over the
// runtime's current live set, and returns the period's record. Reports
// of nodes no longer live are pruned; live nodes whose first period has
// not completed are simply missing, as in the paper ("the coordinator
// may miss data ... this causes small inaccuracies but does not
// influence the adaptation").
func (k *Kernel) Tick(now float64, live []core.NodeID) PeriodRecord {
	k.mu.Lock()
	defer k.mu.Unlock()

	liveSet := make(map[core.NodeID]bool, len(live))
	for _, id := range live {
		liveSet[id] = true
	}
	for id := range k.reports {
		if !liveSet[id] {
			delete(k.reports, id)
		}
	}

	ids := append([]core.NodeID(nil), live...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var stats []core.NodeStats
	next := make(map[core.NodeID]core.NodeStats, len(ids))
	for _, id := range ids {
		rep, ok := k.reports[id]
		if !ok {
			continue
		}
		cur := rep.Stats()
		next[id] = cur
		if prev, ok := k.prevStats[id]; ok {
			cur = smooth(cur, prev)
			k.ins.smoothed.Inc()
		}
		stats = append(stats, cur)
	}
	k.prevStats = next

	// The period's streaming observation (if any) is consumed by this
	// tick whether or not the kernel decides on it.
	po := core.PeriodObs{Stats: stats, Stream: k.stream}
	k.stream = nil

	health := core.WeightedAverageEfficiency(stats)
	if k.obj != nil {
		health = k.obj.Health(po)
	}
	rec := PeriodRecord{
		Time:  now,
		WAE:   health,
		Nodes: len(live),
		Stats: len(stats),
	}
	k.ins.ticks.Inc()
	k.ins.liveNodes.Set(float64(len(live)))
	k.ins.reported.Set(float64(len(stats)))
	if len(stats) > 0 {
		k.ins.health.Set(rec.WAE)
		k.ins.periodHealth.Observe(rec.WAE)
	}
	defer func() {
		// "none" periods are already counted by coord/ticks; only real
		// decisions get a per-action counter.
		if rec.Action != "" && rec.Action != "none" {
			obs.Default.Counter("coord/decision/" + rec.Action).Inc()
		}
		if rec.Added > 0 {
			obs.Default.Counter("coord/nodes_added").Add(uint64(rec.Added))
		}
		if rec.Removed > 0 {
			obs.Default.Counter("coord/nodes_removed").Add(uint64(rec.Removed))
		}
	}()
	if k.obj == nil || k.cfg.MonitorOnly {
		if len(stats) > 0 {
			rec.Detail = fmt.Sprintf("monitor only: WAE %.3f on %d nodes", rec.WAE, len(stats))
		}
		return rec
	}
	if len(stats) == 0 {
		// Either no node has completed a period yet (let them report)
		// or the whole computation died — in the latter case bootstrap
		// by requesting a replacement node.
		if len(live) == 0 {
			rec.Action = "add"
			rec.Added = k.act.Provision(1, k.reqs.MinBandwidth(), k.veto)
			rec.Detail = "no live nodes; bootstrap by requesting one"
			if rec.Added > 0 {
				k.act.Annotate("bootstrap: requested a replacement node")
			}
		}
		return rec
	}

	// Fair-share yield outranks the WAE band: when the pool demands
	// capacity back for starved jobs, holding on to surplus nodes would
	// starve them for as long as this job runs. Yield the worst nodes
	// (least efficient by the badness heuristic) and decide afresh on
	// the shrunken configuration next period.
	if k.cfg.Pressure != nil {
		if p := k.cfg.Pressure(); p > 0 {
			ranked := core.RankNodes(stats, k.weights)
			var victims []core.NodeID
			for _, nb := range ranked {
				if len(victims) >= p {
					break
				}
				if !k.protected[nb.Node] {
					victims = append(victims, nb.Node)
				}
			}
			if removed := k.evict(victims, "fair-share yield", false); removed > 0 {
				rec.Action = "yield"
				rec.Removed = removed
				rec.Detail = fmt.Sprintf("pool reclaimed %d of %d surplus nodes", removed, p)
				obs.Default.Counter("coord/yielded").Add(uint64(removed))
				k.act.Annotate(fmt.Sprintf("yielded %d nodes to the shared pool", removed))
				k.reports = make(map[core.NodeID]metrics.Report)
				k.prevStats = make(map[core.NodeID]core.NodeStats)
				k.ins.resets.Inc()
				return rec
			}
		}
	}

	d := k.obj.Assess(po)
	rec.WAE = d.WAE
	rec.Action = d.Action.String()
	rec.Detail = d.Reason
	blacklist := k.obj.Traits().BlacklistVictims || d.Blacklist

	acted := false
	switch d.Action {
	case core.ActionNone:
		if k.cfg.Opportunistic {
			if added, removed := k.tryOpportunistic(stats); added > 0 {
				rec.Action = "opportunistic-migrate"
				rec.Added = added
				rec.Removed = removed
				acted = true
				k.act.Annotate(fmt.Sprintf("opportunistic migration: +%d faster nodes, -%d slow",
					added, removed))
			}
		}
	case core.ActionAdd:
		rec.Added = k.act.Provision(d.AddCount, k.reqs.MinBandwidth(), k.veto)
		if rec.Added > 0 {
			acted = true
			k.act.Annotate(fmt.Sprintf("adding %d nodes (WAE %.2f)", rec.Added, d.WAE))
		}
	case core.ActionRemoveNodes:
		rec.Removed = k.evict(d.RemoveNodes, "badness", blacklist)
		if rec.Removed > 0 {
			acted = true
			k.act.Annotate(fmt.Sprintf("removed %d worst nodes (WAE %.2f)", rec.Removed, d.WAE))
		}
	case core.ActionRemoveCluster:
		// Learn the bandwidth requirement before the reports disappear.
		k.learnClusterBandwidth(d)
		removed := k.evict(d.RemoveNodes, "cluster uplink saturated", true)
		if removed > 0 {
			if !k.cfg.DisableBlacklist {
				k.reqs.BlacklistCluster(d.RemoveCluster,
					fmt.Sprintf("inter-cluster overhead %.0f%%", d.ClusterInterComm*100))
			}
			k.act.Annotate(fmt.Sprintf("removed badly connected cluster %s (%d nodes)",
				d.RemoveCluster, removed))
		} else if k.eng != nil {
			// The offending cluster holds only protected nodes, which
			// cannot leave; fall back to evicting the worst ordinary
			// nodes so the coordinator does not spin on the same
			// decision. Only the batch objective emits cluster
			// evictions, so the engine is present here.
			count := k.eng.ShrinkCount(len(stats), d.WAE)
			ranked := core.RankNodes(stats, k.weights)
			var victims []core.NodeID
			for _, nb := range ranked {
				if len(victims) >= count {
					break
				}
				if nb.Cluster != d.RemoveCluster {
					victims = append(victims, nb.Node)
				}
			}
			removed = k.evict(victims, "badness (cluster fallback)", true)
			if removed > 0 {
				k.act.Annotate(fmt.Sprintf("removed %d worst nodes (WAE %.2f)", removed, d.WAE))
			}
		}
		rec.Removed = removed
		acted = removed > 0
	}
	if acted {
		// The stored reports describe the pre-action configuration;
		// deciding on them again would chain actions off stale data
		// (e.g. evicting a second cluster for overhead the first one
		// caused). Start the next period fresh — including the
		// smoothing window, whose previous period is just as stale.
		k.reports = make(map[core.NodeID]metrics.Report)
		k.prevStats = make(map[core.NodeID]core.NodeStats)
		k.ins.resets.Inc()
	}
	return rec
}

// smooth averages the overhead fractions of two consecutive periods
// and merges their link samples: per-period overheads are heavy-tailed
// (one big cross-cluster job transfer can dominate a node's period),
// and decisions as drastic as evacuating a cluster should not ride on
// one period's tail events. Speeds are always the latest benchmark
// measurement.
func smooth(cur, prev core.NodeStats) core.NodeStats {
	cur.Idle = (cur.Idle + prev.Idle) / 2
	cur.IntraComm = (cur.IntraComm + prev.IntraComm) / 2
	cur.InterComm = (cur.InterComm + prev.InterComm) / 2
	merged := make(map[core.ClusterID]core.LinkSample, len(cur.Links)+len(prev.Links))
	for _, links := range []map[core.ClusterID]core.LinkSample{cur.Links, prev.Links} {
		for peer, l := range links {
			m := merged[peer]
			m.Seconds += l.Seconds
			m.Bytes += l.Bytes
			merged[peer] = m
		}
	}
	if len(merged) > 0 {
		cur.Links = merged
	}
	return cur
}

// learnClusterBandwidth tightens the minimum-bandwidth requirement
// when a cluster is evacuated for insufficient uplink bandwidth. The
// bound must be a LINK CAPACITY (that is what the scheduler can
// compare against), so the sources are tried capacity-first:
//
//  1. the actuator's NWS-style observed link capacity,
//  2. the mean per-pair achieved share from the nodes' reports (which
//     divides the capacity among concurrent flows),
//  3. the decision's best measured pair bandwidth.
func (k *Kernel) learnClusterBandwidth(d core.Decision) {
	bw := k.act.ObservedBandwidth(d.RemoveCluster)
	if bw <= 0 {
		bw = k.reportedBandwidth(d.RemoveCluster)
	}
	if bw <= 0 {
		bw = d.MeasuredBandwidth
	}
	if bw > 0 {
		k.reqs.LearnMinBandwidth(bw)
	}
}

// reportedBandwidth is the fallback bandwidth estimate for a cluster:
// the mean achieved inter-cluster throughput its nodes reported.
func (k *Kernel) reportedBandwidth(c core.ClusterID) float64 {
	sum, n := 0.0, 0
	for _, rep := range k.reports {
		if rep.Cluster == c && rep.InterBandwidth > 0 {
			sum += rep.InterBandwidth
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// evict filters out protected nodes, asks the actuator to remove the
// rest, and — when blacklist is set — blacklists exactly the nodes
// that actually left so the scheduler does not hand them straight
// back. A fair-share yield evicts without blacklisting: the yielded
// nodes are healthy and may return once the pool decompresses.
func (k *Kernel) evict(victims []core.NodeID, reason string, blacklist bool) int {
	want := make([]core.NodeID, 0, len(victims))
	for _, id := range victims {
		if !k.protected[id] {
			want = append(want, id)
		}
	}
	if len(want) == 0 {
		return 0
	}
	evicted := k.act.Evict(want, reason)
	for _, id := range evicted {
		if blacklist && !k.cfg.DisableBlacklist {
			k.reqs.BlacklistNode(id, reason)
		}
		delete(k.reports, id)
		delete(k.prevStats, id)
	}
	return len(evicted)
}

// tryOpportunistic implements opportunistic migration: when clearly
// faster processors are idle in the grid, migrate to them even though
// WAE is inside the band — add replacements from the fastest site and
// evict the slow nodes they displace. The paper's scenario 5 is the
// motivating case: after the badly connected cluster left, ~3x slower
// nodes kept the WAE legal and nothing improved further without this.
func (k *Kernel) tryOpportunistic(stats []core.NodeStats) (added, removed int) {
	mig, ok := k.act.(Migrator)
	if !ok {
		return 0, 0 // the runtime's scheduler cannot rank idle resources
	}
	slowest := math.Inf(1)
	for _, st := range stats {
		if st.Speed > 0 && st.Speed < slowest {
			slowest = st.Speed
		}
	}
	if math.IsInf(slowest, 1) {
		return 0, 0 // no measured speeds yet
	}
	cluster, speed, free := mig.BestAvailable(k.veto)
	if cluster == "" || speed < slowest*k.cfg.OpportunisticFactor {
		return 0, 0
	}
	// The migration set: live nodes clearly slower than the candidate
	// site, slowest first; protected nodes stay where they are.
	var slow []core.NodeStats
	for _, st := range stats {
		if st.Speed > 0 && st.Speed*k.cfg.OpportunisticFactor <= speed && !k.protected[st.Node] {
			slow = append(slow, st)
		}
	}
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Speed != slow[j].Speed {
			return slow[i].Speed < slow[j].Speed
		}
		return slow[i].Node < slow[j].Node
	})
	want := len(slow)
	if want > free {
		want = free
	}
	if want == 0 {
		return 0, 0
	}
	added = mig.ProvisionFrom(cluster, want, k.reqs.MinBandwidth(), k.veto)
	victims := make([]core.NodeID, 0, added)
	for i := 0; i < added && i < len(slow); i++ {
		victims = append(victims, slow[i].Node)
	}
	removed = k.evict(victims, "opportunistic migration", true)
	return added, removed
}
