package coord

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

const dur = 100 // seconds per monitoring period in these scripts

// rep builds one node's period report; idle/intra/inter are seconds out
// of the period, so idle=60 means a 0.60 idle fraction.
func rep(node core.NodeID, cluster core.ClusterID, period int, idle, intra, inter, speed, interBW float64) metrics.Report {
	start := float64(period) * dur
	return metrics.Report{
		Node: node, Cluster: cluster,
		Start: start, End: start + dur,
		BusySec: dur - idle - intra - inter,
		IdleSec: idle, IntraSec: intra, InterSec: inter,
		Speed: speed, InterBandwidth: interBW,
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// scriptedActuator is the minimal fake runtime: it grants every
// provision, evicts every victim, and records the calls.
type scriptedActuator struct {
	mu         sync.Mutex
	observed   float64 // ObservedBandwidth return value
	provisions []int
	evictions  [][]core.NodeID
	labels     []string
}

func (a *scriptedActuator) Provision(n int, minBandwidth float64, veto Veto) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.provisions = append(a.provisions, n)
	return n
}

func (a *scriptedActuator) Evict(victims []core.NodeID, reason string) []core.NodeID {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.evictions = append(a.evictions, append([]core.NodeID(nil), victims...))
	return victims
}

func (a *scriptedActuator) ObservedBandwidth(core.ClusterID) float64 { return a.observed }

func (a *scriptedActuator) Annotate(label string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.labels = append(a.labels, label)
}

func newKernel(t *testing.T, cfg Config, act Actuator) *Kernel {
	t.Helper()
	if cfg.Engine == nil && !cfg.MonitorOnly {
		c := core.DefaultConfig()
		cfg.Engine = &c
	}
	k, err := New(cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// --- smoothing (the two-period window both runtimes must share) -------

// TestSmoothTwoPeriodAverage pins the smoothing arithmetic: overhead
// fractions are averaged, link samples are merged by summation, the
// speed is the latest benchmark measurement.
func TestSmoothTwoPeriodAverage(t *testing.T) {
	cur := core.NodeStats{Node: "n", Cluster: "A", Speed: 120,
		Idle: 0.2, IntraComm: 0.1, InterComm: 0.4,
		Links: map[core.ClusterID]core.LinkSample{"B": {Seconds: 2, Bytes: 4e6}}}
	prev := core.NodeStats{Node: "n", Cluster: "A", Speed: 80,
		Idle: 0.6, IntraComm: 0.3, InterComm: 0.2,
		Links: map[core.ClusterID]core.LinkSample{
			"B": {Seconds: 1, Bytes: 1e6},
			"C": {Seconds: 5, Bytes: 9e6},
		}}
	got := smooth(cur, prev)
	if !approx(got.Idle, 0.4) || !approx(got.IntraComm, 0.2) || !approx(got.InterComm, 0.3) {
		t.Errorf("smoothed fractions = %.3f/%.3f/%.3f, want 0.400/0.200/0.300",
			got.Idle, got.IntraComm, got.InterComm)
	}
	if got.Speed != 120 {
		t.Errorf("smoothed speed = %v, want the latest measurement 120", got.Speed)
	}
	if l := got.Links["B"]; l.Seconds != 3 || l.Bytes != 5e6 {
		t.Errorf("link B merged to %+v, want Seconds 3 Bytes 5e6", l)
	}
	if l := got.Links["C"]; l.Seconds != 5 || l.Bytes != 9e6 {
		t.Errorf("link C merged to %+v, want Seconds 5 Bytes 9e6", l)
	}
}

// TestTickSmoothsAcrossTwoPeriods is the regression test for the old
// real-runtime coordinator, which decided on raw single-period stats
// while the simulator smoothed: the kernel must report the two-period
// average. With idle fractions 0.60 then 0.90 the raw second-period WAE
// would be 0.10; the smoothed value is 1-(0.60+0.90)/2 = 0.25.
func TestTickSmoothsAcrossTwoPeriods(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{}, act)
	live := []core.NodeID{"n1"}

	k.Report(rep("n1", "A", 0, 60, 0, 0, 100, 0))
	r1 := k.Tick(dur, live)
	if !approx(r1.WAE, 0.40) {
		t.Fatalf("first period WAE = %v, want raw 0.40", r1.WAE)
	}

	k.Report(rep("n1", "A", 1, 90, 0, 0, 100, 0))
	r2 := k.Tick(2*dur, live)
	if !approx(r2.WAE, 0.25) {
		t.Fatalf("second period WAE = %v, want two-period average 0.25 (raw would be 0.10)", r2.WAE)
	}
}

// --- reset after acting -----------------------------------------------

// TestResetReportsAfterAction: once the kernel acts, the stored reports
// describe the pre-action configuration; deciding on them again would
// chain a second action off stale data. This is the divergence the old
// runtimes had (the simulator reset, the real runtime did not).
func TestResetReportsAfterAction(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{}, act)
	old := []core.NodeID{"n1", "n2"}
	for _, n := range old {
		k.Report(rep(n, "A", 0, 10, 0, 0, 100, 0)) // WAE 0.90 > EMax
	}
	r1 := k.Tick(dur, old)
	if r1.Action != "add" || r1.Added != 2 {
		t.Fatalf("high WAE did not grow: %+v", r1)
	}

	// Next period: the grants joined but nobody has reported yet. A
	// kernel that kept the stale reports would see WAE 0.90 again and
	// request MORE nodes.
	live := []core.NodeID{"n1", "n2", "g0", "g1"}
	r2 := k.Tick(2*dur, live)
	if r2.Action != "" || r2.Added != 0 {
		t.Fatalf("stale pre-action reports chained a second action: %+v", r2)
	}
	if len(act.provisions) != 1 {
		t.Fatalf("provision calls = %v, want exactly one", act.provisions)
	}
}

// TestResetSmoothingWindowAfterAction: the smoothing window is part of
// the stale state. If the pre-action period survived as the "previous"
// half of the average, the first post-action report (idle 0.60, WAE
// 0.40, inside the band) would be smoothed with the pre-action idle
// 0.10 to WAE 0.65 — above EMax, triggering a spurious grow.
func TestResetSmoothingWindowAfterAction(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{}, act)
	old := []core.NodeID{"n1", "n2"}
	for _, n := range old {
		k.Report(rep(n, "A", 0, 10, 0, 0, 100, 0))
	}
	if r := k.Tick(dur, old); r.Action != "add" {
		t.Fatalf("setup action = %+v, want add", r)
	}

	live := []core.NodeID{"n1", "n2", "g0", "g1"}
	for _, n := range old {
		k.Report(rep(n, "A", 1, 60, 0, 0, 100, 0))
	}
	r2 := k.Tick(2*dur, live)
	if !approx(r2.WAE, 0.40) {
		t.Fatalf("post-action WAE = %v, want raw 0.40 (stale smoothing window would give 0.65)", r2.WAE)
	}
	if r2.Action != "none" {
		t.Fatalf("post-action decision = %+v, want none", r2)
	}
}

// --- cross-runtime parity ---------------------------------------------

// runtimeFake is what the parity test needs from a fake runtime: the
// Actuator contract plus its own view of the live set and timeline.
type runtimeFake interface {
	Actuator
	live() []core.NodeID
	notes() []string
}

// desStyleActuator mimics the simulator driver: an ordered node list
// mutated synchronously inside the event loop.
type desStyleActuator struct {
	order  []core.NodeID
	next   int
	labels []string
}

func (a *desStyleActuator) Provision(n int, minBandwidth float64, veto Veto) int {
	granted := 0
	for i := 0; i < n; i++ {
		id := core.NodeID(fmt.Sprintf("g%d", a.next))
		a.next++
		if veto != nil && veto(id, "A") {
			continue
		}
		a.order = append(a.order, id)
		granted++
	}
	return granted
}

func (a *desStyleActuator) Evict(victims []core.NodeID, reason string) []core.NodeID {
	var evicted []core.NodeID
	for _, v := range victims {
		for i, id := range a.order {
			if id == v {
				a.order = append(a.order[:i], a.order[i+1:]...)
				evicted = append(evicted, v)
				break
			}
		}
	}
	return evicted
}

func (a *desStyleActuator) ObservedBandwidth(core.ClusterID) float64 { return 0 }
func (a *desStyleActuator) Annotate(l string)                        { a.labels = append(a.labels, l) }
func (a *desStyleActuator) live() []core.NodeID                      { return append([]core.NodeID(nil), a.order...) }
func (a *desStyleActuator) notes() []string                          { return a.labels }

// adaptStyleActuator mimics the real-runtime driver: registry-style
// membership (an unordered set), per-node leave signals, no NWS-style
// link monitor.
type adaptStyleActuator struct {
	members map[core.NodeID]bool
	next    int
	labels  []string
}

func (a *adaptStyleActuator) Provision(n int, minBandwidth float64, veto Veto) int {
	granted := 0
	for i := 0; i < n; i++ {
		id := core.NodeID(fmt.Sprintf("g%d", a.next))
		a.next++
		if veto != nil && veto(id, "A") {
			continue
		}
		a.members[id] = true
		granted++
	}
	return granted
}

func (a *adaptStyleActuator) Evict(victims []core.NodeID, reason string) []core.NodeID {
	evicted := make([]core.NodeID, 0, len(victims))
	for _, v := range victims {
		if !a.members[v] {
			continue // signal fails: the node already left
		}
		delete(a.members, v)
		evicted = append(evicted, v)
	}
	return evicted
}

func (a *adaptStyleActuator) ObservedBandwidth(core.ClusterID) float64 { return 0 }
func (a *adaptStyleActuator) Annotate(l string)                        { a.labels = append(a.labels, l) }
func (a *adaptStyleActuator) notes() []string                          { return a.labels }

func (a *adaptStyleActuator) live() []core.NodeID {
	out := make([]core.NodeID, 0, len(a.members))
	for id := range a.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// parityReport scripts one node's report for a period. Nodes whose ID
// starts with "b" live in cluster B; everything else (including grants)
// in cluster A.
func parityReport(p int, id core.NodeID) metrics.Report {
	cluster := core.ClusterID("A")
	if strings.HasPrefix(string(id), "b") {
		cluster = "B"
	}
	switch {
	case p == 0: // busy grid: WAE 0.90 → grow
		return rep(id, cluster, p, 10, 0, 0, 100, 0)
	case p == 1: // in band: WAE 0.40 → none
		return rep(id, cluster, p, 60, 0, 0, 100, 0)
	case p == 2: // cluster B saturates its uplink → evacuate it
		if cluster == "B" {
			bw := 0.8e6
			if id == "b2" {
				bw = 1.2e6
			}
			return rep(id, cluster, p, 35, 0, 60, 100, bw)
		}
		return rep(id, cluster, p, 88, 0, 2, 100, 0)
	case p == 3: // B is down to the protected b1 and still saturated
		if cluster == "B" {
			return rep(id, cluster, p, 55, 0, 40, 100, 0.8e6)
		}
		return rep(id, cluster, p, 88, 0, 2, 100, 0)
	case p == 4: // idle pair: WAE 0.10 → remove the worst node
		return rep(id, cluster, p, 90, 0, 0, 100, 0)
	default: // the survivor works at WAE 0.40 → none
		return rep(id, cluster, p, 60, 0, 0, 100, 0)
	}
}

func runParityScript(t *testing.T, rt runtimeFake) ([]PeriodRecord, *Kernel) {
	t.Helper()
	k := newKernel(t, Config{}, rt)
	k.Protect("b1")
	var recs []PeriodRecord
	for p := 0; p < 6; p++ {
		for _, id := range rt.live() {
			k.Report(parityReport(p, id))
		}
		recs = append(recs, k.Tick(float64((p+1)*dur), rt.live()))
	}
	return recs, k
}

// TestCrossRuntimeParity feeds an identical multi-period stats script
// to two kernels driven by mechanically different runtimes (the
// simulator's ordered synchronous world vs the real runtime's
// registry-style membership) and requires byte-identical period
// records, annotations, and learned requirements. This is the property
// the refactor exists for: the adaptation policy cannot diverge between
// the runtimes because there is only one of it.
func TestCrossRuntimeParity(t *testing.T) {
	start := []core.NodeID{"a1", "a2", "b1", "b2"}
	des := &desStyleActuator{order: append([]core.NodeID(nil), start...), next: 0}
	ada := &adaptStyleActuator{members: map[core.NodeID]bool{}, next: 0}
	for _, id := range start {
		ada.members[id] = true
	}

	desRecs, desKern := runParityScript(t, des)
	adaRecs, adaKern := runParityScript(t, ada)

	// The script walks the whole policy: grow, hold, evacuate the badly
	// connected cluster (only b2 can go, b1 is protected), evacuate it
	// again when only the protected node is left (the worst-node
	// fallback), shrink, hold. The WAE values pin the smoothing: period
	// 2 decides on the two-period average with period 1, periods that
	// follow an action decide on raw post-reset statistics.
	want := []struct {
		wae            float64
		nodes          int
		action         string
		added, removed int
	}{
		{0.9000, 4, "add", 4, 0},
		{0.4000, 8, "none", 0, 0},
		{0.24375, 8, "remove-cluster", 0, 1},  // smoothed with period 1
		{0.65 / 7, 7, "remove-cluster", 0, 5}, // b1 protected → worst-node fallback
		{0.1000, 2, "remove-nodes", 0, 1},
		{0.4000, 1, "none", 0, 0},
	}
	if len(desRecs) != len(want) {
		t.Fatalf("got %d records, want %d", len(desRecs), len(want))
	}
	for i, w := range want {
		r := desRecs[i]
		if !approx(r.WAE, w.wae) || r.Nodes != w.nodes || r.Action != w.action ||
			r.Added != w.added || r.Removed != w.removed {
			t.Errorf("period %d: got %+v, want WAE %.4f nodes %d action %q +%d -%d",
				i, r, w.wae, w.nodes, w.action, w.added, w.removed)
		}
	}

	if d, a := fmt.Sprintf("%#v", desRecs), fmt.Sprintf("%#v", adaRecs); d != a {
		t.Errorf("period records diverge between runtimes:\n des: %s\nreal: %s", d, a)
	}
	if d, a := des.notes(), ada.notes(); !reflect.DeepEqual(d, a) {
		t.Errorf("annotations diverge:\n des: %q\nreal: %q", d, a)
	}
	if d, a := des.live(), ada.live(); !reflect.DeepEqual(d, a) {
		t.Errorf("final live sets diverge: des %v, real %v", d, a)
	} else if !reflect.DeepEqual(d, []core.NodeID{"b1"}) {
		t.Errorf("final live set = %v, want the protected [b1]", d)
	}

	dr, ar := desKern.Requirements(), adaKern.Requirements()
	if !approx(dr.MinBandwidth(), 1e6) || !approx(ar.MinBandwidth(), 1e6) {
		t.Errorf("learned MinBandwidth des %v real %v, want the 1e6 report mean on both",
			dr.MinBandwidth(), ar.MinBandwidth())
	}
	if d, a := dr.BlacklistedClusters(), ar.BlacklistedClusters(); !reflect.DeepEqual(d, a) ||
		len(d) != 1 || d[0] != "B" {
		t.Errorf("blacklisted clusters des %v real %v, want [B] on both", d, a)
	}
}

// --- learned bandwidth: capacity-preferred fallback order -------------

// TestLearnClusterBandwidthFallbackOrder pins the unified source order
// for the learned minimum-bandwidth bound when a cluster is evacuated:
// the runtime's observed link capacity first, then the mean per-report
// achieved throughput, then the decision's measured pair bandwidth.
func TestLearnClusterBandwidthFallbackOrder(t *testing.T) {
	d := core.Decision{Action: core.ActionRemoveCluster, RemoveCluster: "B", MeasuredBandwidth: 7e5}
	mk := func(observed float64, withReports bool) *Kernel {
		k := newKernel(t, Config{}, &scriptedActuator{observed: observed})
		if withReports {
			k.Report(rep("b1", "B", 0, 55, 0, 40, 100, 0.8e6))
			k.Report(rep("b2", "B", 0, 55, 0, 40, 100, 1.2e6))
			k.Report(rep("a1", "A", 0, 55, 0, 40, 100, 9e9)) // other cluster: ignored
		}
		return k
	}

	k := mk(5e6, true)
	k.learnClusterBandwidth(d)
	if got := k.Requirements().MinBandwidth(); !approx(got, 5e6) {
		t.Errorf("with observed capacity: learned %v, want the capacity 5e6", got)
	}

	k = mk(0, true)
	k.learnClusterBandwidth(d)
	if got := k.Requirements().MinBandwidth(); !approx(got, 1e6) {
		t.Errorf("without capacity: learned %v, want the 1e6 mean of the cluster's reports", got)
	}

	k = mk(0, false)
	k.learnClusterBandwidth(d)
	if got := k.Requirements().MinBandwidth(); !approx(got, 7e5) {
		t.Errorf("without capacity or reports: learned %v, want the measured pair bandwidth 7e5", got)
	}

	k = mk(0, false)
	k.learnClusterBandwidth(core.Decision{Action: core.ActionRemoveCluster, RemoveCluster: "B"})
	if got := k.Requirements().MinBandwidth(); got != 0 {
		t.Errorf("with no bandwidth information: learned %v, want no bound", got)
	}
}

// --- bootstrap, monitor-only, protection ------------------------------

func TestBootstrapWhenComputationDied(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{}, act)
	r := k.Tick(dur, nil)
	if r.Action != "add" || r.Added != 1 || !strings.Contains(r.Detail, "bootstrap") {
		t.Fatalf("empty live set did not bootstrap: %+v", r)
	}
	// Live nodes that simply have not reported yet must NOT trigger a
	// bootstrap (first-period skew is normal).
	r2 := k.Tick(2*dur, []core.NodeID{"n1"})
	if r2.Action != "" || len(act.provisions) != 1 {
		t.Fatalf("unreported live node triggered an action: %+v (provisions %v)", r2, act.provisions)
	}
}

func TestMonitorOnlyRecordsWithoutActing(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{MonitorOnly: true}, act)
	live := []core.NodeID{"n1", "n2", "n3"}
	for _, n := range live {
		k.Report(rep(n, "A", 0, 90, 0, 0, 100, 0)) // WAE 0.10: an acting kernel would shrink
	}
	r := k.Tick(dur, live)
	if r.Action != "" || r.Added != 0 || r.Removed != 0 {
		t.Fatalf("monitor-only kernel acted: %+v", r)
	}
	if !approx(r.WAE, 0.10) || !strings.Contains(r.Detail, "on 3 nodes") {
		t.Fatalf("monitor-only record = %+v, want WAE 0.10 noted on 3 nodes", r)
	}
	// Not even a bootstrap when the computation dies.
	if r := k.Tick(2*dur, nil); r.Action != "" || len(act.provisions) != 0 {
		t.Fatalf("monitor-only kernel bootstrapped: %+v (provisions %v)", r, act.provisions)
	}
}

func TestProtectedNodesSurvive(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{}, act)
	k.Protect("n1")
	live := []core.NodeID{"n1", "n2"}
	// WAE 0.10 on 2 nodes → remove 1 worst; the tie-ranked worst is n1,
	// which is protected, so nothing may be evicted.
	for _, n := range live {
		k.Report(rep(n, "A", 0, 90, 0, 0, 100, 0))
	}
	r := k.Tick(dur, live)
	if r.Action != "remove-nodes" {
		t.Fatalf("decision = %+v, want remove-nodes", r)
	}
	if r.Removed != 0 || len(act.evictions) != 0 {
		t.Fatalf("protected node was put up for eviction: %+v (evictions %v)", r, act.evictions)
	}
	if len(k.Requirements().BlacklistedNodes()) != 0 {
		t.Fatal("nothing left, but nodes were blacklisted")
	}
}

// --- report freshness --------------------------------------------------

func TestReportKeepsFreshest(t *testing.T) {
	k := newKernel(t, Config{MonitorOnly: true}, &scriptedActuator{})
	k.Report(rep("n1", "A", 2, 10, 0, 0, 100, 0))
	k.Report(rep("n1", "A", 1, 90, 0, 0, 100, 0)) // older: batched redelivery
	if got := k.Reports()["n1"]; got.IdleSec != 10 {
		t.Fatalf("stale report overwrote the fresh one: %+v", got)
	}
}

// --- opportunistic migration ------------------------------------------

type migratingActuator struct {
	scriptedActuator
	cluster core.ClusterID
	speed   float64
	free    int
}

func (a *migratingActuator) BestAvailable(veto Veto) (core.ClusterID, float64, int) {
	return a.cluster, a.speed, a.free
}

func (a *migratingActuator) ProvisionFrom(c core.ClusterID, n int, minBandwidth float64, veto Veto) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.provisions = append(a.provisions, n)
	return n
}

func TestOpportunisticMigration(t *testing.T) {
	act := &migratingActuator{cluster: "F", speed: 200, free: 2}
	k := newKernel(t, Config{Opportunistic: true}, act)
	k.Protect("n1")
	live := []core.NodeID{"n1", "n2", "n3"}
	for _, n := range live {
		k.Report(rep(n, "A", 0, 60, 0, 0, 100, 0)) // WAE 0.40: inside the band
	}
	r := k.Tick(dur, live)
	// A free cluster 2x faster than every live node: migrate onto it
	// even though the WAE would not trigger any adaptation.
	if r.Action != "opportunistic-migrate" || r.Added != 2 || r.Removed != 2 {
		t.Fatalf("migration record = %+v, want opportunistic-migrate +2 -2", r)
	}
	if len(act.evictions) != 1 || !reflect.DeepEqual(act.evictions[0], []core.NodeID{"n2", "n3"}) {
		t.Fatalf("evicted %v, want the slow unprotected [n2 n3]", act.evictions)
	}

	// The same situation with a plain (non-Migrator) actuator stays put:
	// the real scheduler cannot rank idle resources by speed.
	plain := &scriptedActuator{}
	kp := newKernel(t, Config{Opportunistic: true}, plain)
	for _, n := range live {
		kp.Report(rep(n, "A", 0, 60, 0, 0, 100, 0))
	}
	if r := kp.Tick(dur, live); r.Action != "none" || len(plain.provisions) != 0 {
		t.Fatalf("non-migrating runtime migrated: %+v", r)
	}
}

// --- concurrency (the real runtime feeds Report from transport
// handlers while its ticker calls Tick; must hold under -race) ---------

func TestConcurrentReportAndTick(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{}, act)
	live := []core.NodeID{"n0", "n1", "n2", "n3"}
	var wg sync.WaitGroup
	for w := 0; w < len(live); w++ {
		wg.Add(1)
		go func(id core.NodeID) {
			defer wg.Done()
			for p := 0; p < 200; p++ {
				k.Report(rep(id, "A", p, 60, 0, 0, 100, 0))
			}
		}(live[w])
	}
	for p := 0; p < 50; p++ {
		k.Tick(float64((p+1)*dur), live)
	}
	wg.Wait()
	if got := len(k.Reports()); got != len(live) {
		t.Fatalf("kernel tracks %d reports, want %d", got, len(live))
	}
}

// --- fair-share yield (multi-job pool arbitration) --------------------

// TestFairShareYield: when the shared pool signals reclaim pressure,
// the kernel evicts that many of its WORST nodes even though the WAE
// is inside the band, does not blacklist them (they are healthy; the
// grid is merely contended), and never yields a protected node.
func TestFairShareYield(t *testing.T) {
	act := &scriptedActuator{}
	pressure := 2
	k := newKernel(t, Config{Pressure: func() int { return pressure }}, act)
	k.Protect("A/0")

	live := []core.NodeID{"A/0", "A/1", "B/0", "B/1"}
	// Healthy efficiencies; B's nodes carry more inter-cluster overhead
	// (the dominant badness term), so B/1 then B/0 are the worst two —
	// those must be the yield victims.
	feed := func(period int) {
		k.Report(rep("A/0", "A", period, 10, 2, 1, 100, 0))
		k.Report(rep("A/1", "A", period, 12, 2, 1, 100, 0))
		k.Report(rep("B/0", "B", period, 20, 2, 4, 100, 0))
		k.Report(rep("B/1", "B", period, 30, 2, 5, 100, 0))
	}
	feed(0)
	recA := k.Tick(dur, live)
	if recA.Action != "yield" || recA.Removed != 2 {
		t.Fatalf("want yield of 2, got action %q removed %d (%s)", recA.Action, recA.Removed, recA.Detail)
	}
	if len(act.evictions) != 1 {
		t.Fatalf("want one eviction call, got %v", act.evictions)
	}
	got := append([]core.NodeID(nil), act.evictions[0]...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []core.NodeID{"B/0", "B/1"}) {
		t.Fatalf("want worst nodes B/0+B/1 yielded, got %v", got)
	}
	// Yielded nodes are NOT blacklisted: the pool may hand them back.
	if bl := k.Requirements().BlacklistedNodes(); len(bl) != 0 {
		t.Fatalf("yield must not blacklist, got %v", bl)
	}
	// Pressure gone: the next tick decides normally (WAE in band -> none).
	pressure = 0
	feed(2)
	recB := k.Tick(3*dur, []core.NodeID{"A/0", "A/1"})
	if recB.Action == "yield" || recB.Removed != 0 {
		t.Fatalf("no pressure must mean no yield, got %+v", recB)
	}
}

// TestFairShareYieldSparesProtected: pressure larger than the number of
// evictable nodes yields only the unprotected ones.
func TestFairShareYieldSparesProtected(t *testing.T) {
	act := &scriptedActuator{}
	k := newKernel(t, Config{Pressure: func() int { return 5 }}, act)
	k.Protect("A/0")
	k.Report(rep("A/0", "A", 0, 10, 2, 2, 100, 0))
	k.Report(rep("A/1", "A", 0, 12, 2, 2, 100, 0))
	rec := k.Tick(dur, []core.NodeID{"A/0", "A/1"})
	if rec.Action != "yield" || rec.Removed != 1 {
		t.Fatalf("want yield of the single unprotected node, got %+v", rec)
	}
	if len(act.evictions) != 1 || len(act.evictions[0]) != 1 || act.evictions[0][0] != "A/1" {
		t.Fatalf("want A/1 evicted, got %v", act.evictions)
	}
}
