package coord

import (
	"sort"

	"repro/internal/core"
	"repro/internal/wirefmt"
)

// Binary codec for the sharded-coordination frames. A ClusterSummary
// crosses the wire once per cluster per period — the whole point of the
// shard split is that this is the ONLY recurring control traffic the
// root sees, so it rides the wirefmt fast path like every other
// fixed-shape frame. Link samples and blacklists are written in sorted
// order so the encoding of a given summary is byte-for-byte stable.

// AppendWire implements wirefmt.Frame.
func (st *ReqState) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, uint64(len(st.Nodes)))
	for _, n := range st.Nodes {
		b = wirefmt.AppendString(b, string(n))
	}
	b = wirefmt.AppendUvarint(b, uint64(len(st.Clusters)))
	for _, c := range st.Clusters {
		b = wirefmt.AppendString(b, string(c))
	}
	b = wirefmt.AppendF64(b, st.MinBandwidth)
	return b, nil
}

// DecodeWire implements wirefmt.Frame.
func (st *ReqState) DecodeWire(r *wirefmt.Reader) error {
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		r.Fail("blacklisted-node count exceeds frame")
		return r.Err()
	}
	if n > 0 {
		st.Nodes = make([]core.NodeID, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			st.Nodes = append(st.Nodes, core.NodeID(r.String()))
		}
	}
	n = r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		r.Fail("blacklisted-cluster count exceeds frame")
		return r.Err()
	}
	if n > 0 {
		st.Clusters = make([]core.ClusterID, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			st.Clusters = append(st.Clusters, core.ClusterID(r.String()))
		}
	}
	st.MinBandwidth = r.F64()
	return r.Err()
}

// AppendWire implements wirefmt.Frame.
func (sum *ClusterSummary) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, string(sum.Cluster))
	b = wirefmt.AppendUvarint(b, sum.Seq)
	b = wirefmt.AppendUvarint(b, sum.Epoch)
	b = wirefmt.AppendF64(b, sum.Time)
	b = wirefmt.AppendVarint(b, int64(sum.Nodes))
	b = wirefmt.AppendVarint(b, int64(sum.Stats))
	b = wirefmt.AppendF64(b, sum.SpeedMax)
	b = wirefmt.AppendF64(b, sum.SpeedMin)
	b = wirefmt.AppendF64(b, sum.WorkSum)
	b = wirefmt.AppendF64(b, sum.ZeroWork)
	b = wirefmt.AppendF64(b, sum.EffSum)
	b = wirefmt.AppendF64(b, sum.SpeedSum)
	b = wirefmt.AppendF64(b, sum.InterSum)
	b = wirefmt.AppendF64(b, sum.InterBWSum)
	b = wirefmt.AppendVarint(b, int64(sum.InterBWCnt))
	// Streaming partials ride behind a presence byte: most summaries
	// carry no streaming workload and pay one byte for it.
	b = wirefmt.AppendBool(b, sum.HasStream)
	if sum.HasStream {
		b = wirefmt.AppendVarint(b, int64(sum.StreamArrived))
		b = wirefmt.AppendVarint(b, int64(sum.StreamCompleted))
		b = wirefmt.AppendF64(b, sum.StreamLatencySum)
		b = wirefmt.AppendVarint(b, int64(sum.StreamBacklog))
	}
	// Presence byte keeps a nil link map distinguishable from an empty
	// one, exactly as gob keeps it.
	b = wirefmt.AppendBool(b, sum.Links != nil)
	if sum.Links != nil {
		b = wirefmt.AppendUvarint(b, uint64(len(sum.Links)))
		peers := make([]string, 0, len(sum.Links))
		for p := range sum.Links {
			peers = append(peers, string(p))
		}
		sort.Strings(peers)
		for _, p := range peers {
			l := sum.Links[core.ClusterID(p)]
			b = wirefmt.AppendString(b, p)
			b = wirefmt.AppendF64(b, l.Seconds)
			b = wirefmt.AppendF64(b, l.Bytes)
		}
	}
	b = wirefmt.AppendUvarint(b, uint64(len(sum.Proposals)))
	for _, p := range sum.Proposals {
		b = wirefmt.AppendString(b, string(p.Node))
		b = wirefmt.AppendF64(b, p.Speed)
		b = wirefmt.AppendF64(b, p.Idle)
		b = wirefmt.AppendF64(b, p.IntraComm)
		b = wirefmt.AppendF64(b, p.InterComm)
	}
	return sum.Req.AppendWire(b)
}

// DecodeWire implements wirefmt.Frame.
func (sum *ClusterSummary) DecodeWire(r *wirefmt.Reader) error {
	sum.Cluster = core.ClusterID(r.String())
	sum.Seq = r.Uvarint()
	sum.Epoch = r.Uvarint()
	sum.Time = r.F64()
	sum.Nodes = int(r.Varint())
	sum.Stats = int(r.Varint())
	sum.SpeedMax = r.F64()
	sum.SpeedMin = r.F64()
	sum.WorkSum = r.F64()
	sum.ZeroWork = r.F64()
	sum.EffSum = r.F64()
	sum.SpeedSum = r.F64()
	sum.InterSum = r.F64()
	sum.InterBWSum = r.F64()
	sum.InterBWCnt = int(r.Varint())
	if r.Bool() {
		sum.HasStream = true
		sum.StreamArrived = int(r.Varint())
		sum.StreamCompleted = int(r.Varint())
		sum.StreamLatencySum = r.F64()
		sum.StreamBacklog = int(r.Varint())
	}
	if r.Bool() {
		n := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		if n > uint64(r.Remaining()) {
			r.Fail("link sample count exceeds frame")
			return r.Err()
		}
		sum.Links = make(map[core.ClusterID]core.LinkSample, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			peer := core.ClusterID(r.String())
			var l core.LinkSample
			l.Seconds = r.F64()
			l.Bytes = r.F64()
			sum.Links[peer] = l
		}
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		r.Fail("proposal count exceeds frame")
		return r.Err()
	}
	if n > 0 {
		sum.Proposals = make([]NodeSample, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			var p NodeSample
			p.Node = core.NodeID(r.String())
			p.Speed = r.F64()
			p.Idle = r.F64()
			p.IntraComm = r.F64()
			p.InterComm = r.F64()
			sum.Proposals = append(sum.Proposals, p)
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	return sum.Req.DecodeWire(r)
}
