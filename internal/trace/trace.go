// Package trace renders experiment results the way the paper reports
// them: the Figure-1 runtime table, per-iteration duration series
// (Figures 3–7) as aligned text or CSV, and the coordinator's period
// log. Output goes to any io.Writer, so the same renderers back the
// gridsim CLI, the test logs, and EXPERIMENTS.md.
//
// The package renders the runtime-independent types — coord.PeriodRecord
// and the Series defined here — so any driver (the simulator, the real
// runtime, a future one) can feed it; it does not depend on the
// simulator.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/coord"
)

// Iteration is one application iteration in a result series — the unit
// the paper's figures 3–7 plot.
type Iteration struct {
	Index    int
	Start    float64
	Duration float64
	Nodes    int // live nodes when the iteration completed
}

// Series is the renderable view of one run: its iteration durations
// plus the coordinator's period log and annotations.
type Series struct {
	Iterations  []Iteration
	Periods     []coord.PeriodRecord
	Annotations []coord.Annotation
}

// RuntimeTable writes the Figure-1 style table: one row per scenario,
// columns for the three runtime variants and the derived numbers.
// rows maps scenario label -> variant -> runtime seconds; missing
// variants render as "-".
type RuntimeRow struct {
	Label       string
	NoAdapt     float64
	Adaptive    float64
	MonitorOnly float64 // 0 = not run
}

// Improvement is the adaptive runtime reduction vs the plain run.
func (r RuntimeRow) Improvement() float64 {
	if r.NoAdapt == 0 {
		return 0
	}
	return (r.NoAdapt - r.Adaptive) / r.NoAdapt
}

// WriteRuntimeTable renders rows as a markdown table.
func WriteRuntimeTable(w io.Writer, rows []RuntimeRow) {
	fmt.Fprintln(w, "| scenario | runtime 1 (no adapt) | runtime 2 (adaptive) | runtime 3 (monitor only) | improvement |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, r := range rows {
		mo := "-"
		if r.MonitorOnly > 0 {
			mo = fmt.Sprintf("%.0f s", r.MonitorOnly)
		}
		fmt.Fprintf(w, "| %s | %.0f s | %.0f s | %s | %.0f%% |\n",
			r.Label, r.NoAdapt, r.Adaptive, mo, r.Improvement()*100)
	}
}

// WriteIterationsCSV writes one scenario's iteration-duration series
// for multiple variants side by side (the Figures 3–7 data): columns
// iteration, then one duration column per variant.
func WriteIterationsCSV(w io.Writer, variants map[string]Series) {
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "iteration")
	for _, name := range names {
		fmt.Fprintf(w, ",%s_duration_s,%s_nodes", name, name)
	}
	fmt.Fprintln(w)
	maxIters := 0
	for _, s := range variants {
		if len(s.Iterations) > maxIters {
			maxIters = len(s.Iterations)
		}
	}
	for i := 0; i < maxIters; i++ {
		fmt.Fprintf(w, "%d", i)
		for _, name := range names {
			s := variants[name]
			if i < len(s.Iterations) {
				it := s.Iterations[i]
				fmt.Fprintf(w, ",%.3f,%d", it.Duration, it.Nodes)
			} else {
				fmt.Fprintf(w, ",,")
			}
		}
		fmt.Fprintln(w)
	}
}

// WritePeriods logs the coordinator's view: time, WAE, node count and
// the action taken — the trajectory the paper narrates per scenario.
// Both runtimes produce this record type, so their logs read the same.
func WritePeriods(w io.Writer, periods []coord.PeriodRecord) {
	fmt.Fprintln(w, "time_s  WAE    nodes  action")
	for _, p := range periods {
		action := p.Action
		if action == "" {
			action = "(monitor)"
		}
		extra := ""
		if p.Added > 0 {
			extra = fmt.Sprintf(" +%d", p.Added)
		}
		if p.Removed > 0 {
			extra += fmt.Sprintf(" -%d", p.Removed)
		}
		fmt.Fprintf(w, "%6.0f  %.3f  %5d  %s%s\n", p.Time, p.WAE, p.Nodes, action, extra)
	}
}

// Decision is one adaptation action on a run's time axis, replayed
// from a recorded event stream — the per-job decision-log entry the
// durable store (internal/store) keeps and cmd/replay renders.
type Decision struct {
	Time   float64
	Job    string // "" for single-job drivers (gridsim, satinrun)
	Record coord.PeriodRecord
}

// WriteDecisions renders a decision log: every adaptation action with
// its job attribution, action, node delta and detail. The multi-job
// sibling of WritePeriods.
func WriteDecisions(w io.Writer, ds []Decision) {
	fmt.Fprintln(w, "time_s  job         action          delta  detail")
	for _, d := range ds {
		job := d.Job
		if job == "" {
			job = "-"
		}
		delta := ""
		if d.Record.Added > 0 {
			delta = fmt.Sprintf("+%d", d.Record.Added)
		}
		if d.Record.Removed > 0 {
			delta += fmt.Sprintf("-%d", d.Record.Removed)
		}
		fmt.Fprintf(w, "%6.0f  %-10s  %-14s  %5s  %s\n",
			d.Time, job, d.Record.Action, delta, d.Record.Detail)
	}
}

// WriteAnnotations lists the scenario's injected events and the
// coordinator's reactions on the time axis.
func WriteAnnotations(w io.Writer, anns []coord.Annotation) {
	for _, a := range anns {
		fmt.Fprintf(w, "%7.0f s  %s\n", a.Time, a.Label)
	}
}

// Sparkline renders a coarse text plot of iteration durations — enough
// to see the Figures 3–7 shapes in a terminal.
func Sparkline(s Series, width int) string {
	if len(s.Iterations) == 0 {
		return ""
	}
	max := 0.0
	for _, it := range s.Iterations {
		if it.Duration > max {
			max = it.Duration
		}
	}
	if max == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	step := 1
	if width > 0 && len(s.Iterations) > width {
		step = (len(s.Iterations) + width - 1) / width
	}
	for i := 0; i < len(s.Iterations); i += step {
		d := s.Iterations[i].Duration
		idx := int(d / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
