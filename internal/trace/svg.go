package trace

import (
	"fmt"
	"io"
	"sort"
)

// WriteIterationsSVG renders a scenario's iteration-duration series as
// a self-contained SVG line chart in the style of the paper's Figures
// 3–7: iteration number on the x axis, duration in seconds on the y
// axis, one line per variant, with the coordinator's annotations
// marked on the adaptive run's timeline.
func WriteIterationsSVG(w io.Writer, title string, variants map[string]Series) {
	const (
		width   = 720
		height  = 380
		marginL = 56
		marginR = 16
		marginT = 40
		marginB = 44
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	names := make([]string, 0, len(variants))
	maxIter, maxDur := 1, 0.0
	for name, s := range variants {
		names = append(names, name)
		if len(s.Iterations) > maxIter {
			maxIter = len(s.Iterations)
		}
		for _, it := range s.Iterations {
			if it.Duration > maxDur {
				maxDur = it.Duration
			}
		}
	}
	sort.Strings(names)
	if maxDur == 0 {
		maxDur = 1
	}
	maxDur *= 1.08 // headroom

	x := func(iter int) float64 {
		return marginL + plotW*float64(iter)/float64(maxIter-1+1)
	}
	y := func(dur float64) float64 {
		return marginT + plotH*(1-dur/maxDur)
	}

	colors := []string{"#c0392b", "#2471a3", "#1e8449", "#8e44ad"}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(title))

	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := maxDur * float64(i) / 4
		yy := y(v)
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, yy, width-marginR, yy)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			marginL-6, yy+4, v)
	}
	// X ticks (every ~10 iterations).
	step := maxIter / 6
	if step < 1 {
		step = 1
	}
	for i := 0; i < maxIter; i += step {
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%d</text>`+"\n",
			x(i), height-marginB+16, i)
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="12" text-anchor="middle">iteration</text>`+"\n",
		marginL+int(plotW/2), height-8)
	fmt.Fprintf(w, `<text x="14" y="%d" font-size="12" transform="rotate(-90 14 %d)" text-anchor="middle">iteration duration (s)</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2))

	// Series.
	for vi, name := range names {
		res := variants[name]
		color := colors[vi%len(colors)]
		points := ""
		for i, it := range res.Iterations {
			points += fmt.Sprintf("%.1f,%.1f ", x(i), y(it.Duration))
		}
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.6" points="%s"/>`+"\n",
			color, points)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="12" height="3" fill="%s"/>`+"\n",
			width-marginR-170, marginT+16*vi, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR-152, marginT+16*vi+4, xmlEscape(name))
	}

	// Annotations from the adaptive run, positioned by iteration start.
	if ad, ok := variants["adaptive"]; ok {
		for ai, ann := range ad.Annotations {
			iter := iterAt(ad, ann.Time)
			xx := x(iter)
			fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999" stroke-dasharray="3,3"/>`+"\n",
				xx, marginT, xx, height-marginB)
			fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="9" fill="#555">%s</text>`+"\n",
				xx+3, marginT+12+(ai%4)*11, xmlEscape(truncate(ann.Label, 38)))
		}
	}
	fmt.Fprintln(w, `</svg>`)
}

// iterAt finds the iteration index running at time t.
func iterAt(s Series, t float64) int {
	for i, it := range s.Iterations {
		if it.Start+it.Duration >= t {
			return i
		}
	}
	return len(s.Iterations) - 1
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func xmlEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
