package trace

import (
	"strings"
	"testing"

	"repro/internal/coord"
)

func sampleSeries() Series {
	return Series{
		Iterations: []Iteration{
			{Index: 0, Start: 0, Duration: 10, Nodes: 4},
			{Index: 1, Start: 10, Duration: 20, Nodes: 4},
			{Index: 2, Start: 30, Duration: 5, Nodes: 6},
		},
		Periods: []coord.PeriodRecord{
			{Time: 50, WAE: 0.42, Nodes: 4, Action: "add", Added: 2},
			{Time: 100, WAE: 0.38, Nodes: 6},
		},
		Annotations: []coord.Annotation{{Time: 12, Label: "load introduced"}},
	}
}

func TestWriteRuntimeTable(t *testing.T) {
	var sb strings.Builder
	WriteRuntimeTable(&sb, []RuntimeRow{
		{Label: "s1", NoAdapt: 100, Adaptive: 60, MonitorOnly: 104},
		{Label: "s2", NoAdapt: 200, Adaptive: 100},
	})
	out := sb.String()
	if !strings.Contains(out, "| s1 | 100 s | 60 s | 104 s | 40% |") {
		t.Errorf("row s1 wrong:\n%s", out)
	}
	if !strings.Contains(out, "| s2 | 200 s | 100 s | - | 50% |") {
		t.Errorf("row s2 wrong:\n%s", out)
	}
}

func TestRuntimeRowImprovement(t *testing.T) {
	if (RuntimeRow{}).Improvement() != 0 {
		t.Error("zero row should have zero improvement")
	}
	r := RuntimeRow{NoAdapt: 100, Adaptive: 75}
	if r.Improvement() != 0.25 {
		t.Errorf("improvement = %v", r.Improvement())
	}
}

func TestWriteIterationsCSV(t *testing.T) {
	var sb strings.Builder
	short := Series{Iterations: []Iteration{{Index: 0, Duration: 7, Nodes: 2}}}
	WriteIterationsCSV(&sb, map[string]Series{
		"adaptive": sampleSeries(),
		"no-adapt": short,
	})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 iterations
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	if lines[0] != "iteration,adaptive_duration_s,adaptive_nodes,no-adapt_duration_s,no-adapt_nodes" {
		t.Errorf("header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,10.000,4,7.000,2") {
		t.Errorf("row 0 = %s", lines[1])
	}
	// The shorter variant's columns go empty past its end.
	if !strings.HasPrefix(lines[2], "1,20.000,4,,") {
		t.Errorf("row 1 = %s", lines[2])
	}
}

func TestWritePeriodsAndAnnotations(t *testing.T) {
	var sb strings.Builder
	s := sampleSeries()
	WritePeriods(&sb, s.Periods)
	out := sb.String()
	if !strings.Contains(out, "0.420") || !strings.Contains(out, "add +2") {
		t.Errorf("periods output:\n%s", out)
	}
	if !strings.Contains(out, "(monitor)") {
		t.Errorf("empty action should render as (monitor):\n%s", out)
	}
	sb.Reset()
	WriteAnnotations(&sb, s.Annotations)
	if !strings.Contains(sb.String(), "load introduced") {
		t.Errorf("annotations output: %s", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline(sampleSeries(), 80)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q should have 3 cells", s)
	}
	runes := []rune(s)
	if runes[1] <= runes[0] || runes[2] >= runes[0] {
		t.Errorf("sparkline shape wrong: %q (20 > 10 > 5)", s)
	}
	if Sparkline(Series{}, 10) != "" {
		t.Error("empty series should give empty sparkline")
	}
	// Width compression.
	var long Series
	for i := 0; i < 100; i++ {
		long.Iterations = append(long.Iterations, Iteration{Duration: 1})
	}
	if got := len([]rune(Sparkline(long, 50))); got > 50 {
		t.Errorf("sparkline not compressed: %d cells", got)
	}
}

func TestWriteIterationsSVG(t *testing.T) {
	var sb strings.Builder
	WriteIterationsSVG(&sb, "Scenario 4 <test>", map[string]Series{
		"adaptive": sampleSeries(),
		"no-adapt": {Iterations: []Iteration{{Duration: 12}, {Duration: 13}}},
	})
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "Scenario 4 &lt;test&gt;",
		"adaptive", "no-adapt", "load introduced", "iteration duration"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("want 2 series, got %d", strings.Count(out, "<polyline"))
	}
	// Degenerate inputs must not panic or divide by zero.
	sb.Reset()
	WriteIterationsSVG(&sb, "empty", map[string]Series{"x": {}})
	if !strings.Contains(sb.String(), "</svg>") {
		t.Error("empty-result SVG malformed")
	}
}

func TestWriteDecisions(t *testing.T) {
	var sb strings.Builder
	WriteDecisions(&sb, []Decision{
		{Time: 50, Job: "job-001", Record: coord.PeriodRecord{Action: "add", Added: 2, Detail: "grow to band"}},
		{Time: 120, Record: coord.PeriodRecord{Action: "evict-cluster", Removed: 12, Detail: "fs2 throttled"}},
	})
	out := sb.String()
	if !strings.Contains(out, "time_s  job         action") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "job-001") || !strings.Contains(out, "+2") {
		t.Errorf("job decision wrong:\n%s", out)
	}
	// Jobless drivers render "-" in the job column.
	if !strings.Contains(out, "-           evict-cluster") || !strings.Contains(out, "-12") {
		t.Errorf("jobless decision wrong:\n%s", out)
	}
}
