package metrics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/wirefmt/frametest"
)

// TestReportWireParity is the ISSUE 7 golden suite for the statistics
// report: binary and gob codecs must agree on zero values, extreme
// floats, unicode IDs and nil-vs-populated link maps.
func TestReportWireParity(t *testing.T) {
	frametest.Parity[Report, *Report](t, []Report{
		{},
		{
			Node: "узел-0", Cluster: "cluster-ü",
			Start: 1.5, End: 3.25,
			BusySec: 0.5, IntraSec: 0.25, InterSec: 0.125, BenchSec: 0.0625, IdleSec: 1.0,
			Speed: 12345.678, InterBandwidth: 1e9,
		},
		{
			Node: "n0", Cluster: "c0",
			Start: -1, End: math.MaxFloat64, Speed: math.SmallestNonzeroFloat64,
			Links: map[core.ClusterID]core.LinkSample{
				"c1":     {Seconds: 0.5, Bytes: 1 << 20},
				"c2-ü":   {Seconds: 1e-9, Bytes: 0},
				"远方集群": {Seconds: 3, Bytes: 7},
			},
		},
		{Node: "n1", Links: map[core.ClusterID]core.LinkSample{}},
	})
}

func TestReportWireCorrupt(t *testing.T) {
	rep := Report{
		Node: "n0", Cluster: "c0", Start: 1, End: 2, BusySec: 0.5, Speed: 100,
		Links: map[core.ClusterID]core.LinkSample{"c1": {Seconds: 1, Bytes: 2}},
	}
	enc, err := rep.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	frametest.Corrupt[Report, *Report](t, enc)
}

// TestReportEncodingDeterministic: the link map is written in sorted
// peer order, so the same report always encodes to the same bytes.
func TestReportEncodingDeterministic(t *testing.T) {
	rep := Report{
		Node: "n0",
		Links: map[core.ClusterID]core.LinkSample{
			"c3": {Seconds: 3}, "c1": {Seconds: 1}, "c2": {Seconds: 2}, "c0": {Seconds: 0.5},
		},
	}
	first, err := rep.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := rep.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encoding not deterministic:\n  %x\n  %x", first, again)
		}
	}
}
