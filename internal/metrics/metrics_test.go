package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorSnapshot(t *testing.T) {
	a := NewAccumulator("n0", "c0", 100)
	a.Add(Busy, 50)
	a.Add(Intra, 10)
	a.Add(Inter, 20)
	a.Add(Bench, 5)
	a.AddInterBytes(2e6)
	a.SetSpeed(1.5)
	r := a.Snapshot(200)

	if r.Node != "n0" || r.Cluster != "c0" {
		t.Errorf("identity lost: %+v", r)
	}
	if r.Start != 100 || r.End != 200 || r.Duration() != 100 {
		t.Errorf("period bounds: %+v", r)
	}
	if r.BusySec != 50 || r.IntraSec != 10 || r.InterSec != 20 || r.BenchSec != 5 {
		t.Errorf("buckets: %+v", r)
	}
	if r.IdleSec != 15 {
		t.Errorf("idle = %v, want 15 (remainder)", r.IdleSec)
	}
	if r.Speed != 1.5 {
		t.Errorf("speed = %v", r.Speed)
	}
	if r.InterBandwidth != 1e5 {
		t.Errorf("inter bandwidth = %v, want 1e5", r.InterBandwidth)
	}
}

func TestSnapshotResetsButKeepsSpeed(t *testing.T) {
	a := NewAccumulator("n0", "c0", 0)
	a.Add(Busy, 5)
	a.SetSpeed(2)
	_ = a.Snapshot(10)
	r := a.Snapshot(20)
	if r.BusySec != 0 || r.IdleSec != 10 {
		t.Errorf("second period not reset: %+v", r)
	}
	if r.Speed != 2 {
		t.Errorf("speed should carry over, got %v", r.Speed)
	}
	if r.Start != 10 || r.End != 20 {
		t.Errorf("second period bounds: %+v", r)
	}
}

func TestReportStatsFractions(t *testing.T) {
	r := Report{
		Node: "n", Cluster: "c", Start: 0, End: 100,
		BusySec: 40, IntraSec: 10, InterSec: 20, BenchSec: 5, IdleSec: 25,
		Speed: 3,
	}
	s := r.Stats()
	if s.Speed != 3 {
		t.Errorf("speed = %v", s.Speed)
	}
	if math.Abs(s.IntraComm-0.1) > 1e-12 || math.Abs(s.InterComm-0.2) > 1e-12 {
		t.Errorf("comm fractions: %+v", s)
	}
	// Bench folds into idle: (25+5)/100.
	if math.Abs(s.Idle-0.3) > 1e-12 {
		t.Errorf("idle = %v, want 0.3", s.Idle)
	}
	if math.Abs(s.Overhead()-0.6) > 1e-12 {
		t.Errorf("overhead = %v, want 0.6", s.Overhead())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("stats invalid: %v", err)
	}
}

func TestReportStatsZeroDuration(t *testing.T) {
	r := Report{Node: "n", Cluster: "c", Start: 5, End: 5, Speed: 2}
	s := r.Stats()
	if s.Overhead() != 0 || s.Speed != 2 {
		t.Errorf("zero-duration stats: %+v", s)
	}
}

func TestOverfullPeriodClamps(t *testing.T) {
	a := NewAccumulator("n", "c", 0)
	a.Add(Busy, 15) // activity completed after straddling the boundary
	r := a.Snapshot(10)
	if r.IdleSec != 0 {
		t.Errorf("idle = %v, want clamped 0", r.IdleSec)
	}
	s := r.Stats()
	if err := s.Validate(); err == nil {
		// Busy isn't part of overhead so stats stay in range; overhead 0.
		if s.Overhead() != 0 {
			t.Errorf("overhead = %v", s.Overhead())
		}
	}
}

func TestPanics(t *testing.T) {
	a := NewAccumulator("n", "c", 10)
	for name, fn := range map[string]func(){
		"negative add":   func() { a.Add(Busy, -1) },
		"negative bytes": func() { a.AddInterBytes(-1) },
		"snapshot past":  func() { a.Snapshot(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBucketString(t *testing.T) {
	for b, want := range map[Bucket]string{
		Busy: "busy", Intra: "intra", Inter: "inter", Bench: "bench",
		Bucket(42): "Bucket(42)",
	} {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestStatsFromReports(t *testing.T) {
	rs := []Report{
		{Node: "a", Cluster: "c", Start: 0, End: 10, BusySec: 10},
		{Node: "b", Cluster: "c", Start: 0, End: 10, IdleSec: 10},
	}
	stats := StatsFromReports(rs)
	if len(stats) != 2 || stats[0].Node != "a" || stats[1].Idle != 1 {
		t.Errorf("StatsFromReports = %+v", stats)
	}
}

// Property: for any bucket filling within the period, the derived
// fractions are valid NodeStats and overhead = 1 - busy fraction.
func TestStatsValidityProperty(t *testing.T) {
	f := func(busyRaw, intraRaw, interRaw, benchRaw uint8) bool {
		total := float64(busyRaw) + float64(intraRaw) + float64(interRaw) + float64(benchRaw) + 1
		a := NewAccumulator("n", "c", 0)
		a.Add(Busy, float64(busyRaw))
		a.Add(Intra, float64(intraRaw))
		a.Add(Inter, float64(interRaw))
		a.Add(Bench, float64(benchRaw))
		r := a.Snapshot(total) // period 1s longer than activity
		s := r.Stats()
		if err := s.Validate(); err != nil {
			return false
		}
		wantOverhead := 1 - float64(busyRaw)/total
		return math.Abs(s.Overhead()-wantOverhead) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSamples(t *testing.T) {
	a := NewAccumulator("n0", "A", 0)
	a.Add(Inter, 5)
	a.AddLinkSample("B", 3, 3000)
	a.AddLinkSample("B", 2, 1000)
	a.AddLinkSample("C", 1, 500)
	r := a.Snapshot(100)
	if len(r.Links) != 2 {
		t.Fatalf("links = %v", r.Links)
	}
	if b := r.Links["B"]; b.Seconds != 5 || b.Bytes != 4000 {
		t.Errorf("B sample = %+v", b)
	}
	s := r.Stats()
	if s.Links["C"].Bytes != 500 {
		t.Errorf("stats links = %+v", s.Links)
	}
	// Reset between periods.
	r2 := a.Snapshot(200)
	if len(r2.Links) != 0 {
		t.Errorf("second period inherited links: %v", r2.Links)
	}
}

func TestLinkSamplePanicsOnNegative(t *testing.T) {
	a := NewAccumulator("n", "c", 0)
	defer func() {
		if recover() == nil {
			t.Error("negative link sample accepted")
		}
	}()
	a.AddLinkSample("B", -1, 5)
}

// TestZeroLengthPeriod: a snapshot taken at the exact period start (a
// coordinator tick racing a node's own report) must not divide by zero
// — fractions come back zero and the carried speed survives.
func TestZeroLengthPeriod(t *testing.T) {
	a := NewAccumulator("n", "c", 10)
	a.SetSpeed(123)
	r := a.Snapshot(10)
	if r.Duration() != 0 {
		t.Fatalf("duration = %g, want 0", r.Duration())
	}
	s := r.Stats()
	if s.Idle != 0 || s.IntraComm != 0 || s.InterComm != 0 {
		t.Fatalf("zero-length period produced fractions: %+v", s)
	}
	if s.Speed != 123 {
		t.Fatalf("speed = %g, want 123 (must survive an empty period)", s.Speed)
	}
	// The next period starts where the empty one ended.
	a.Add(Busy, 1)
	r2 := a.Snapshot(12)
	if r2.Start != 10 || r2.BusySec != 1 {
		t.Fatalf("period after empty snapshot = %+v", r2)
	}
}

// TestOverFullPeriod: activities straddling the boundary are attributed
// to the period they complete in, which can overfill it. Idle must
// clamp to zero (never negative) and the fractions to one.
func TestOverFullPeriod(t *testing.T) {
	a := NewAccumulator("n", "c", 0)
	a.Add(Busy, 3)
	a.Add(Inter, 2)
	r := a.Snapshot(4) // 5s of activity in a 4s period
	if r.IdleSec != 0 {
		t.Fatalf("idle = %g, want 0 (clamped)", r.IdleSec)
	}
	s := r.Stats()
	if s.InterComm != 0.5 {
		t.Fatalf("inter fraction = %g, want 0.5", s.InterComm)
	}
	// A single bucket larger than the whole period clamps at 1.
	a.Add(Inter, 9)
	r2 := a.Snapshot(8)
	if got := r2.Stats().InterComm; got != 1 {
		t.Fatalf("overfull inter fraction = %g, want 1", got)
	}
}

// TestSnapshotBeforeStartPanics pins the time-goes-backwards guard.
func TestSnapshotBeforeStartPanics(t *testing.T) {
	a := NewAccumulator("n", "c", 10)
	defer func() {
		if recover() == nil {
			t.Error("snapshot before period start accepted")
		}
	}()
	a.Snapshot(9)
}
