package metrics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/wirefmt"
)

// Binary codec for Report (ISSUE 7): reports cross the wire once per
// node per monitoring period, and in big runs they dominate the control
// traffic — a fixed-shape hand encoding beats a gob round trip per
// frame. Link samples are written in sorted peer order so the encoding
// of a given report is deterministic (byte-for-byte stable across
// sends), which the golden parity tests rely on.

// AppendWire implements wirefmt.Frame.
func (rep *Report) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, string(rep.Node))
	b = wirefmt.AppendString(b, string(rep.Cluster))
	b = wirefmt.AppendF64(b, rep.Start)
	b = wirefmt.AppendF64(b, rep.End)
	b = wirefmt.AppendF64(b, rep.BusySec)
	b = wirefmt.AppendF64(b, rep.IntraSec)
	b = wirefmt.AppendF64(b, rep.InterSec)
	b = wirefmt.AppendF64(b, rep.BenchSec)
	b = wirefmt.AppendF64(b, rep.IdleSec)
	b = wirefmt.AppendF64(b, rep.Speed)
	b = wirefmt.AppendF64(b, rep.InterBandwidth)
	// Presence byte keeps a nil map distinguishable from an empty one,
	// exactly as gob keeps it.
	b = wirefmt.AppendBool(b, rep.Links != nil)
	if rep.Links == nil {
		return b, nil
	}
	b = wirefmt.AppendUvarint(b, uint64(len(rep.Links)))
	if len(rep.Links) > 0 {
		peers := make([]string, 0, len(rep.Links))
		for p := range rep.Links {
			peers = append(peers, string(p))
		}
		sort.Strings(peers)
		for _, p := range peers {
			l := rep.Links[core.ClusterID(p)]
			b = wirefmt.AppendString(b, p)
			b = wirefmt.AppendF64(b, l.Seconds)
			b = wirefmt.AppendF64(b, l.Bytes)
		}
	}
	return b, nil
}

// DecodeWire implements wirefmt.Frame.
func (rep *Report) DecodeWire(r *wirefmt.Reader) error {
	rep.Node = core.NodeID(r.String())
	rep.Cluster = core.ClusterID(r.String())
	rep.Start = r.F64()
	rep.End = r.F64()
	rep.BusySec = r.F64()
	rep.IntraSec = r.F64()
	rep.InterSec = r.F64()
	rep.BenchSec = r.F64()
	rep.IdleSec = r.F64()
	rep.Speed = r.F64()
	rep.InterBandwidth = r.F64()
	if !r.Bool() {
		return r.Err()
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	// Each sample takes at least 17 bytes; a count past the remaining
	// bytes is hostile, not short.
	if n > uint64(r.Remaining()) {
		r.Fail("link sample count exceeds frame")
		return r.Err()
	}
	rep.Links = make(map[core.ClusterID]core.LinkSample, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		peer := core.ClusterID(r.String())
		var l core.LinkSample
		l.Seconds = r.F64()
		l.Bytes = r.F64()
		rep.Links[peer] = l
	}
	return r.Err()
}
