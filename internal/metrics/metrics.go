// Package metrics implements the per-monitoring-period statistics
// accounting the paper's application monitoring is built on: every
// processor tracks how much of the period it spent doing useful work,
// communicating inside its cluster, communicating across clusters,
// running the speed benchmark, or sitting idle. At the end of each
// period the accumulator is snapshotted into a Report, which converts
// to the core.NodeStats the adaptation coordinator consumes.
//
// The package is time-representation agnostic (plain float64 seconds),
// so the discrete-event simulator and the real runtime share it.
package metrics

import (
	"fmt"

	"repro/internal/core"
)

// Bucket labels one kind of accounted time.
type Bucket int

const (
	// Busy is useful application work.
	Busy Bucket = iota
	// Intra is intra-cluster communication (local steals, LAN traffic).
	Intra
	// Inter is inter-cluster communication (wide-area steals, body
	// exchange crossing an uplink).
	Inter
	// Bench is time spent running the application-specific speed
	// benchmark — overhead introduced by the adaptation support itself.
	Bench
	numBuckets
)

// String implements fmt.Stringer.
func (b Bucket) String() string {
	switch b {
	case Busy:
		return "busy"
	case Intra:
		return "intra"
	case Inter:
		return "inter"
	case Bench:
		return "bench"
	default:
		return fmt.Sprintf("Bucket(%d)", int(b))
	}
}

// Accumulator collects one node's time accounting for the current
// monitoring period. Idle time is implicit: whatever part of the
// period is not covered by any bucket. Not safe for concurrent use;
// the real runtime wraps it in the node's own lock.
type Accumulator struct {
	node    core.NodeID
	cluster core.ClusterID

	periodStart float64
	buckets     [numBuckets]float64

	speed      float64 // latest measured speed (work units/s)
	interBytes float64 // bytes moved across clusters this period
	links      map[core.ClusterID]core.LinkSample
}

// NewAccumulator starts accounting for a node at time now.
func NewAccumulator(node core.NodeID, cluster core.ClusterID, now float64) *Accumulator {
	return &Accumulator{node: node, cluster: cluster, periodStart: now}
}

// Node returns the owning node's ID.
func (a *Accumulator) Node() core.NodeID { return a.node }

// Cluster returns the owning node's cluster.
func (a *Accumulator) Cluster() core.ClusterID { return a.cluster }

// Add records d seconds of activity in bucket b. Negative d panics.
func (a *Accumulator) Add(b Bucket, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative duration %v for %v", d, b))
	}
	a.buckets[b] += d
}

// AddLinkSample records one inter-cluster transfer with a peer cluster:
// its wire time and payload size — the raw material of the paper's
// per-cluster-pair bandwidth estimation ("measuring data transfer
// times").
func (a *Accumulator) AddLinkSample(peer core.ClusterID, seconds, bytes float64) {
	if seconds < 0 || bytes < 0 {
		panic(fmt.Sprintf("metrics: negative link sample (%v s, %v B) for peer %s", seconds, bytes, peer))
	}
	if a.links == nil {
		a.links = make(map[core.ClusterID]core.LinkSample)
	}
	l := a.links[peer]
	l.Seconds += seconds
	l.Bytes += bytes
	a.links[peer] = l
}

// AddInterBytes records payload moved across clusters (for bandwidth
// estimation feeding the learned minimum-bandwidth requirement).
func (a *Accumulator) AddInterBytes(n float64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative byte count %v", n))
	}
	a.interBytes += n
}

// SetSpeed records the latest benchmark measurement.
func (a *Accumulator) SetSpeed(s float64) { a.speed = s }

// Speed returns the latest benchmark measurement (0 = not measured).
func (a *Accumulator) Speed() float64 { return a.speed }

// Report is one node's statistics for one completed monitoring period.
type Report struct {
	Node    core.NodeID
	Cluster core.ClusterID

	Start, End float64 // period bounds, seconds

	BusySec  float64 // useful work
	IntraSec float64 // intra-cluster communication
	InterSec float64 // inter-cluster communication
	BenchSec float64 // benchmarking overhead
	IdleSec  float64 // remainder of the period

	Speed float64 // measured speed, work units/s

	// InterBandwidth is the achieved inter-cluster throughput this
	// period (bytes moved / seconds spent in inter-cluster
	// communication); 0 when no inter traffic happened.
	InterBandwidth float64

	// Links carries per-peer-cluster transfer samples (nil when
	// untracked) for pair-bandwidth estimation.
	Links map[core.ClusterID]core.LinkSample
}

// Duration returns the period length in seconds.
func (r Report) Duration() float64 { return r.End - r.Start }

// Stats converts the report to the fractions core's decision engine
// consumes. Benchmark time counts as idle: it is not useful application
// work, and folding it in means the adaptation overhead is visible to
// the efficiency metric rather than hidden from it.
func (r Report) Stats() core.NodeStats {
	dur := r.Duration()
	if dur <= 0 {
		return core.NodeStats{Node: r.Node, Cluster: r.Cluster, Speed: r.Speed}
	}
	frac := func(s float64) float64 {
		f := s / dur
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	st := core.NodeStats{
		Node:      r.Node,
		Cluster:   r.Cluster,
		Speed:     r.Speed,
		Idle:      frac(r.IdleSec + r.BenchSec),
		IntraComm: frac(r.IntraSec),
		InterComm: frac(r.InterSec),
	}
	if len(r.Links) > 0 {
		st.Links = make(map[core.ClusterID]core.LinkSample, len(r.Links))
		for peer, l := range r.Links {
			st.Links[peer] = l
		}
	}
	return st
}

// Snapshot closes the current period at time now, returning its Report
// and resetting the accumulator for the next period. The measured
// speed carries over (it is remeasured on the benchmark's own
// schedule, not the monitoring period's).
func (a *Accumulator) Snapshot(now float64) Report {
	dur := now - a.periodStart
	if dur < 0 {
		panic(fmt.Sprintf("metrics: snapshot at %v before period start %v", now, a.periodStart))
	}
	covered := 0.0
	for _, v := range a.buckets {
		covered += v
	}
	idle := dur - covered
	if idle < 0 {
		// Activities that straddle the period boundary are attributed to
		// the period they complete in, which can overfill it slightly;
		// clamp rather than report negative idle.
		idle = 0
	}
	r := Report{
		Node:     a.node,
		Cluster:  a.cluster,
		Start:    a.periodStart,
		End:      now,
		BusySec:  a.buckets[Busy],
		IntraSec: a.buckets[Intra],
		InterSec: a.buckets[Inter],
		BenchSec: a.buckets[Bench],
		IdleSec:  idle,
		Speed:    a.speed,
	}
	if a.buckets[Inter] > 0 {
		r.InterBandwidth = a.interBytes / a.buckets[Inter]
	}
	if len(a.links) > 0 {
		r.Links = a.links
	}
	a.periodStart = now
	a.buckets = [numBuckets]float64{}
	a.interBytes = 0
	a.links = nil
	return r
}

// StatsFromReports converts a batch of reports for the coordinator.
func StatsFromReports(reports []Report) []core.NodeStats {
	out := make([]core.NodeStats, 0, len(reports))
	for _, r := range reports {
		out = append(out, r.Stats())
	}
	return out
}
