package registry

import (
	"testing"

	"repro/internal/wirefmt"
	"repro/internal/wirefmt/frametest"
)

// TestWireParity is the ISSUE 7 golden suite for the registry
// protocol: every registered kind through both codecs over zero
// values, unicode IDs, empty and populated member lists.
func TestWireParity(t *testing.T) {
	uni := NodeInfo{ID: "узел/α-1", Cluster: "grappe-é"}
	frametest.Parity[joinMsg, *joinMsg](t, []joinMsg{
		{},
		{Info: NodeInfo{ID: "n0", Cluster: "c0"}},
		{Info: uni},
	})
	frametest.Parity[joinAck, *joinAck](t, []joinAck{
		{},
		{Members: []NodeInfo{}},
		{Members: []NodeInfo{{ID: "n0", Cluster: "c0"}, uni}},
	})
	frametest.Parity[leaveMsg, *leaveMsg](t, []leaveMsg{{}, {ID: uni.ID}})
	frametest.Parity[heartbeatMsg, *heartbeatMsg](t, []heartbeatMsg{{}, {ID: "n0"}})
	frametest.Parity[eventMsg, *eventMsg](t, []eventMsg{
		{},
		{Event: Event{Kind: Joined, Node: uni}},
		{Event: Event{Kind: SignalEvent, Node: NodeInfo{ID: "n1", Cluster: "c1"}, Signal: "leave"}},
		{Event: Event{Kind: EventKind(-5), Signal: "future-kind"}},
	})
	frametest.Parity[signalReq, *signalReq](t, []signalReq{
		{},
		{To: uni.ID, Signal: "leave"},
	})
}

func TestWireCorrupt(t *testing.T) {
	enc := func(f wirefmt.Frame) []byte {
		b, err := f.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	frametest.Corrupt[joinAck, *joinAck](t, enc(&joinAck{Members: []NodeInfo{{ID: "n0", Cluster: "c0"}, {ID: "n1", Cluster: "c1"}}}))
	frametest.Corrupt[eventMsg, *eventMsg](t, enc(&eventMsg{Event: Event{Kind: Died, Node: NodeInfo{ID: "n0", Cluster: "c0"}, Signal: "s"}}))
	frametest.Corrupt[heartbeatMsg, *heartbeatMsg](t, enc(&heartbeatMsg{ID: "n0"}))
}
