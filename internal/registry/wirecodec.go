package registry

import (
	"repro/internal/core"
	"repro/internal/wirefmt"
)

// Binary codecs for the registry protocol (ISSUE 7). Heartbeats are
// the chattiest control frames in the system — every member, every
// interval, forever — so they in particular must not pay a gob round
// trip each.

func appendNodeInfo(b []byte, ni NodeInfo) []byte {
	b = wirefmt.AppendString(b, string(ni.ID))
	return wirefmt.AppendString(b, string(ni.Cluster))
}

func decodeNodeInfo(r *wirefmt.Reader) NodeInfo {
	var ni NodeInfo
	ni.ID = core.NodeID(r.String())
	ni.Cluster = core.ClusterID(r.String())
	return ni
}

func (m *joinMsg) AppendWire(b []byte) ([]byte, error) {
	return appendNodeInfo(b, m.Info), nil
}

func (m *joinMsg) DecodeWire(r *wirefmt.Reader) error {
	m.Info = decodeNodeInfo(r)
	return r.Err()
}

func (m *joinAck) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendUvarint(b, uint64(len(m.Members)))
	for _, ni := range m.Members {
		b = appendNodeInfo(b, ni)
	}
	return b, nil
}

func (m *joinAck) DecodeWire(r *wirefmt.Reader) error {
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n == 0 {
		return nil // empty decodes as nil, matching gob
	}
	// Each member takes at least two length prefixes; a count past the
	// remaining bytes is hostile, not short.
	if n > uint64(r.Remaining()) {
		r.Fail("member count exceeds frame")
		return r.Err()
	}
	m.Members = make([]NodeInfo, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Members = append(m.Members, decodeNodeInfo(r))
	}
	return r.Err()
}

func (m *leaveMsg) AppendWire(b []byte) ([]byte, error) {
	return wirefmt.AppendString(b, string(m.ID)), nil
}

func (m *leaveMsg) DecodeWire(r *wirefmt.Reader) error {
	m.ID = core.NodeID(r.String())
	return r.Err()
}

func (m *heartbeatMsg) AppendWire(b []byte) ([]byte, error) {
	return wirefmt.AppendString(b, string(m.ID)), nil
}

func (m *heartbeatMsg) DecodeWire(r *wirefmt.Reader) error {
	m.ID = core.NodeID(r.String())
	return r.Err()
}

func (m *eventMsg) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendVarint(b, int64(m.Event.Kind))
	b = appendNodeInfo(b, m.Event.Node)
	return wirefmt.AppendString(b, m.Event.Signal), nil
}

func (m *eventMsg) DecodeWire(r *wirefmt.Reader) error {
	m.Event.Kind = EventKind(r.Varint())
	m.Event.Node = decodeNodeInfo(r)
	m.Event.Signal = r.String()
	return r.Err()
}

func (m *signalReq) AppendWire(b []byte) ([]byte, error) {
	b = wirefmt.AppendString(b, string(m.To))
	return wirefmt.AppendString(b, m.Signal), nil
}

func (m *signalReq) DecodeWire(r *wirefmt.Reader) error {
	m.To = core.NodeID(r.String())
	m.Signal = r.String()
	return r.Err()
}
