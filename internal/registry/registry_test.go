package registry

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func fastOpts() Options {
	return Options{HeartbeatInterval: 20 * time.Millisecond, FailureTimeout: 80 * time.Millisecond}
}

func waitEvent(t *testing.T, c *Client, kind EventKind) Event {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("event channel closed while waiting for %v", kind)
			}
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", kind)
		}
	}
}

func TestJoinAndMembership(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	srv, err := NewServer(f, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a, err := Join(f, NodeInfo{ID: "a", Cluster: "c0"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Join(f, NodeInfo{ID: "b", Cluster: "c1"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ev := waitEvent(t, a, Joined)
	if ev.Node.ID != "b" || ev.Node.Cluster != "c1" {
		t.Fatalf("joined event = %+v", ev)
	}
	if got := len(srv.Members()); got != 2 {
		t.Fatalf("server members = %d, want 2", got)
	}
	if got := len(b.Members()); got != 2 {
		t.Fatalf("b's view = %d members, want 2 (join-ack includes existing)", got)
	}
}

func TestGracefulLeave(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	srv, _ := NewServer(f, fastOpts())
	defer srv.Close()
	a, _ := Join(f, NodeInfo{ID: "a"}, fastOpts())
	defer a.Close()
	b, _ := Join(f, NodeInfo{ID: "b"}, fastOpts())
	waitEvent(t, a, Joined)

	b.Leave()
	ev := waitEvent(t, a, Left)
	if ev.Node.ID != "b" {
		t.Fatalf("left event = %+v", ev)
	}
	if got := len(srv.Members()); got != 1 {
		t.Fatalf("server members = %d after leave, want 1", got)
	}
}

func TestCrashDetection(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	srv, _ := NewServer(f, fastOpts())
	defer srv.Close()
	a, _ := Join(f, NodeInfo{ID: "a"}, fastOpts())
	defer a.Close()
	b, _ := Join(f, NodeInfo{ID: "b"}, fastOpts())
	waitEvent(t, a, Joined)

	b.Close() // abrupt: heartbeats stop, no leave message
	ev := waitEvent(t, a, Died)
	if ev.Node.ID != "b" {
		t.Fatalf("died event = %+v", ev)
	}
	// Membership views converge.
	deadline := time.Now().Add(time.Second)
	for len(a.Members()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("a's view = %v, want only itself", a.Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSignalDelivery(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	srv, _ := NewServer(f, fastOpts())
	defer srv.Close()
	a, _ := Join(f, NodeInfo{ID: "a"}, fastOpts())
	defer a.Close()

	if err := srv.Signal("a", "leave"); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, a, SignalEvent)
	if ev.Signal != "leave" || ev.Node.ID != "a" {
		t.Fatalf("signal event = %+v", ev)
	}
	if err := srv.Signal("ghost", "leave"); err == nil {
		t.Fatal("signal to unknown member succeeded")
	}
}

func TestClientToClientSignal(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	srv, _ := NewServer(f, fastOpts())
	defer srv.Close()
	coord, _ := Join(f, NodeInfo{ID: "coordinator"}, fastOpts())
	defer coord.Close()
	worker, _ := Join(f, NodeInfo{ID: "worker"}, fastOpts())
	defer worker.Close()

	if err := coord.Signal("worker", "leave"); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, worker, SignalEvent)
	if ev.Signal != "leave" {
		t.Fatalf("signal = %+v", ev)
	}
}

func TestHeartbeatsKeepMemberAlive(t *testing.T) {
	f := transport.NewInProc(nil)
	defer f.Close()
	srv, _ := NewServer(f, fastOpts())
	defer srv.Close()
	a, _ := Join(f, NodeInfo{ID: "a"}, fastOpts())
	defer a.Close()

	time.Sleep(300 * time.Millisecond) // several failure timeouts
	if got := len(srv.Members()); got != 1 {
		t.Fatalf("heartbeating member was dropped: members = %d", got)
	}
}

func TestRegistryOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	f := transport.NewTCP(hub.Addr())
	srv, err := NewServer(f, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a, err := Join(f, NodeInfo{ID: "a", Cluster: "c0"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Join(f, NodeInfo{ID: "b", Cluster: "c1"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitEvent(t, a, Joined)
	if got := len(srv.Members()); got != 2 {
		t.Fatalf("members over TCP = %d, want 2", got)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		Joined: "joined", Left: "left", Died: "died", SignalEvent: "signal",
		EventKind(9): "EventKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
