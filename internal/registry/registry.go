// Package registry is the Ibis registry substrate the paper's runtime
// depends on: a centralised membership service that tells the
// application processes about each other, detects faults through
// heartbeats, and carries signals — the mechanism the adaptation
// coordinator uses to tell processors to leave the computation.
//
// The server and its clients talk over any transport.Fabric, so the
// same code runs in-process (tests, examples, emulated clusters) and
// across machines (TCP hub).
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// ServerName is the registry's well-known endpoint name.
const ServerName = "registry"

// NodeInfo describes one member.
type NodeInfo struct {
	ID      core.NodeID
	Cluster core.ClusterID
}

// EventKind labels membership events.
type EventKind int

const (
	// Joined: a new member entered the run.
	Joined EventKind = iota
	// Left: a member departed gracefully.
	Left
	// Died: the server's failure detector declared a member dead.
	Died
	// SignalEvent: a signal (e.g. "leave") addressed to this client.
	SignalEvent
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Joined:
		return "joined"
	case Left:
		return "left"
	case Died:
		return "died"
	case SignalEvent:
		return "signal"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one membership or signal notification.
type Event struct {
	Kind   EventKind
	Node   NodeInfo
	Signal string
}

// Options tune the failure detector.
type Options struct {
	// HeartbeatInterval is how often clients report liveness.
	HeartbeatInterval time.Duration
	// FailureTimeout is the silence after which a member is declared
	// dead (default 3 heartbeat intervals).
	FailureTimeout time.Duration
}

func (o *Options) defaults() {
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 200 * time.Millisecond
	}
	if o.FailureTimeout == 0 {
		o.FailureTimeout = 3 * o.HeartbeatInterval
	}
}

// wire payloads
type joinMsg struct{ Info NodeInfo }
type joinAck struct{ Members []NodeInfo }
type leaveMsg struct{ ID core.NodeID }
type heartbeatMsg struct{ ID core.NodeID }
type eventMsg struct{ Event Event }
type signalReq struct {
	To     core.NodeID
	Signal string
}

func init() {
	wire.Register[joinMsg]("join")
	wire.Register[joinAck]("join-ack")
	wire.Register[leaveMsg]("leave")
	wire.Register[heartbeatMsg]("hb")
	wire.Register[eventMsg]("event")
	wire.Register[signalReq]("signal-req")
}

func clientEP(id core.NodeID) string { return "reg:" + string(id) }

// Server is the central registry process.
type Server struct {
	wc  *wire.Conn
	opt Options

	mu      sync.Mutex
	members map[core.NodeID]*member
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type member struct {
	info     NodeInfo
	lastSeen time.Time
}

// NewServer starts the registry on the fabric.
func NewServer(f transport.Fabric, opt Options) (*Server, error) {
	opt.defaults()
	ep, err := f.Endpoint(ServerName)
	if err != nil {
		return nil, err
	}
	s := &Server{
		wc:      wire.New(ep),
		opt:     opt,
		members: make(map[core.NodeID]*member),
		stop:    make(chan struct{}),
	}
	wire.Handle(s.wc, s.onJoin)
	wire.Handle(s.wc, s.onLeave)
	wire.Handle(s.wc, s.onHeartbeat)
	wire.Handle(s.wc, s.onSignalReq)
	s.wg.Add(1)
	go s.failureDetector()
	return s, nil
}

// Close shuts the server down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.wc.Close()
}

// Members returns the current membership, sorted by ID.
func (s *Server) Members() []NodeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeInfo, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Signal asks a member to act (the coordinator's "leave" messages).
func (s *Server) Signal(id core.NodeID, signal string) error {
	s.mu.Lock()
	m, ok := s.members[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("registry: signal %q to unknown member %s", signal, id)
	}
	ev := Event{Kind: SignalEvent, Node: m.info, Signal: signal}
	return wire.Send(s.wc, clientEP(id), eventMsg{Event: ev})
}

func (s *Server) onJoin(jm joinMsg, _ wire.Meta) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	_, rejoin := s.members[jm.Info.ID]
	s.members[jm.Info.ID] = &member{info: jm.Info, lastSeen: time.Now()}
	ack := joinAck{Members: s.membersLocked()}
	others := s.otherEPsLocked(jm.Info.ID)
	s.mu.Unlock()
	wire.Send(s.wc, clientEP(jm.Info.ID), ack)
	if !rejoin { // retried joins must not duplicate the broadcast
		s.broadcast(others, Event{Kind: Joined, Node: jm.Info})
	}
}

func (s *Server) onLeave(lm leaveMsg, _ wire.Meta) {
	s.drop(lm.ID, Left)
}

func (s *Server) onHeartbeat(hb heartbeatMsg, _ wire.Meta) {
	s.mu.Lock()
	if m, ok := s.members[hb.ID]; ok {
		m.lastSeen = time.Now()
	}
	s.mu.Unlock()
}

func (s *Server) onSignalReq(sr signalReq, _ wire.Meta) {
	s.Signal(sr.To, sr.Signal)
}

func (s *Server) membersLocked() []NodeInfo {
	out := make([]NodeInfo, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, m.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Server) otherEPsLocked(except core.NodeID) []string {
	var eps []string
	for id := range s.members {
		if id != except {
			eps = append(eps, clientEP(id))
		}
	}
	sort.Strings(eps)
	return eps
}

func (s *Server) broadcast(eps []string, ev Event) {
	// Each destination has its own session stream, so the event is
	// encoded per recipient (the descriptors already crossed each link).
	for _, ep := range eps {
		wire.Send(s.wc, ep, eventMsg{Event: ev})
	}
}

func (s *Server) drop(id core.NodeID, kind EventKind) {
	s.mu.Lock()
	m, ok := s.members[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.members, id)
	eps := s.otherEPsLocked(id)
	info := m.info
	s.mu.Unlock()
	s.broadcast(eps, Event{Kind: kind, Node: info})
}

func (s *Server) failureDetector() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opt.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			cutoff := time.Now().Add(-s.opt.FailureTimeout)
			s.mu.Lock()
			var dead []core.NodeID
			for id, m := range s.members {
				if m.lastSeen.Before(cutoff) {
					dead = append(dead, id)
				}
			}
			s.mu.Unlock()
			sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
			for _, id := range dead {
				s.drop(id, Died)
			}
		}
	}
}
