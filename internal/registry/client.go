package registry

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Client is one member's registry session. It keeps an up-to-date
// membership view, heartbeats automatically, and delivers membership
// events and signals through an unbounded internal queue (so slow
// consumers never block the transport and never lose a Died event the
// fault-tolerance layer depends on).
type Client struct {
	info NodeInfo
	wc   *wire.Conn
	opt  Options

	mu      sync.Mutex
	members map[core.NodeID]NodeInfo
	joined  chan struct{} // closed on join-ack
	once    sync.Once
	queue   []Event
	cond    *sync.Cond
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	events chan Event
}

// Join attaches a member to the registry and waits for the ack.
func Join(f transport.Fabric, info NodeInfo, opt Options) (*Client, error) {
	opt.defaults()
	ep, err := f.Endpoint(clientEP(info.ID))
	if err != nil {
		return nil, err
	}
	c := &Client{
		info:    info,
		wc:      wire.New(ep),
		opt:     opt,
		members: make(map[core.NodeID]NodeInfo),
		joined:  make(chan struct{}),
		stop:    make(chan struct{}),
		events:  make(chan Event, 16),
	}
	c.cond = sync.NewCond(&c.mu)
	wire.Handle(c.wc, c.onJoinAck)
	wire.Handle(c.wc, c.onEvent)
	// The join is retried until acknowledged: on hub-routed fabrics the
	// first frames can race the endpoints' registration, and joining is
	// idempotent on the server.
	join := joinMsg{Info: info}
	deadline := time.After(5 * time.Second)
	if err := wire.Send(c.wc, ServerName, join); err != nil {
		c.wc.Close()
		return nil, err
	}
joinWait:
	for {
		select {
		case <-c.joined:
			break joinWait
		case <-time.After(100 * time.Millisecond):
			wire.Send(c.wc, ServerName, join)
		case <-deadline:
			c.wc.Close()
			return nil, fmt.Errorf("registry: join of %s timed out", info.ID)
		}
	}
	c.wg.Add(2)
	go c.heartbeatLoop()
	go c.pump()
	return c, nil
}

// Info returns this member's identity.
func (c *Client) Info() NodeInfo { return c.info }

// Events delivers membership events and signals in order.
func (c *Client) Events() <-chan Event { return c.events }

// Members returns the current membership view, including self.
func (c *Client) Members() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeInfo, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m)
	}
	return out
}

// Signal routes a signal to another member through the server.
func (c *Client) Signal(to core.NodeID, signal string) error {
	return wire.Send(c.wc, ServerName, signalReq{To: to, Signal: signal})
}

// Leave departs gracefully and shuts the session down.
func (c *Client) Leave() error {
	err := wire.Send(c.wc, ServerName, leaveMsg{ID: c.info.ID})
	c.Close()
	return err
}

// Close stops the session abruptly — from the server's point of view
// the member just went silent, so the failure detector will declare it
// dead: exactly how a crash looks.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	c.wc.Close()
}

func (c *Client) onJoinAck(ack joinAck, _ wire.Meta) {
	c.mu.Lock()
	for _, m := range ack.Members {
		c.members[m.ID] = m
	}
	c.mu.Unlock()
	c.once.Do(func() { close(c.joined) })
}

func (c *Client) onEvent(em eventMsg, _ wire.Meta) {
	c.mu.Lock()
	switch em.Event.Kind {
	case Joined:
		c.members[em.Event.Node.ID] = em.Event.Node
	case Left, Died:
		delete(c.members, em.Event.Node.ID)
	}
	c.queue = append(c.queue, em.Event)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// pump moves events from the unbounded queue to the consumer channel.
func (c *Client) pump() {
	defer c.wg.Done()
	defer close(c.events)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		ev := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		select {
		case c.events <- ev:
		case <-c.stop:
			return
		}
	}
}

func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opt.HeartbeatInterval)
	defer ticker.Stop()
	hb := heartbeatMsg{ID: c.info.ID}
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			wire.Send(c.wc, ServerName, hb)
		}
	}
}
