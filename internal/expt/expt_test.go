package expt

import (
	"testing"

	"repro/internal/des"
)

func TestAllScenariosWellFormed(t *testing.T) {
	scs := All()
	if len(scs) != 13 {
		t.Fatalf("got %d scenarios, want 13", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.ID] {
			t.Errorf("duplicate id %s", sc.ID)
		}
		seen[sc.ID] = true
		if sc.Name == "" || sc.Figure == "" || sc.Description == "" {
			t.Errorf("scenario %s under-documented", sc.ID)
		}
		for _, v := range []Variant{NoAdapt, Adaptive, MonitorOnly} {
			p := sc.Build(v, 1)
			if err := p.Validate(); err == nil {
				p.Defaults()
				if err2 := p.Validate(); err2 != nil {
					t.Errorf("scenario %s variant %s invalid: %v", sc.ID, v, err2)
				}
			}
			switch v {
			case NoAdapt:
				if p.Adapt != nil || p.Mon.Enabled {
					t.Errorf("scenario %s: no-adapt variant has monitoring on", sc.ID)
				}
			case Adaptive:
				// A run has exactly one objective: the WAE band for batch
				// scenarios, the latency SLO for streaming ones.
				if (p.Adapt == nil) == (p.StreamSLO == nil) || !p.Mon.Enabled || p.MonitorOnly {
					t.Errorf("scenario %s: adaptive variant misconfigured", sc.ID)
				}
			case MonitorOnly:
				if !p.MonitorOnly || !p.Mon.Enabled {
					t.Errorf("scenario %s: monitor-only variant misconfigured", sc.ID)
				}
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("2b"); !ok {
		t.Error("2b missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("found nonexistent scenario")
	}
}

func TestOutcomeMath(t *testing.T) {
	o := &Outcome{Results: map[Variant]*des.Result{
		NoAdapt:     {Runtime: 200},
		Adaptive:    {Runtime: 150},
		MonitorOnly: {Runtime: 210},
	}}
	if got := o.Improvement(); got != 0.25 {
		t.Errorf("improvement = %v", got)
	}
	if got := o.Overhead(MonitorOnly); got != 0.05 {
		t.Errorf("overhead = %v", got)
	}
	empty := &Outcome{Results: map[Variant]*des.Result{}}
	if empty.Improvement() != 0 || empty.Overhead(Adaptive) != 0 {
		t.Error("missing variants should give 0")
	}
}

// Scenario 1 end to end, all three variants: the adaptivity-overhead
// measurement of §5.1. The monitoring cost must be positive but small.
func TestScenario1OverheadSmall(t *testing.T) {
	sc, _ := ByID("1")
	out, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	na := out.Results[NoAdapt]
	ad := out.Results[Adaptive]
	mo := out.Results[MonitorOnly]
	if !na.Completed || !ad.Completed || !mo.Completed {
		t.Fatal("scenario 1 runs incomplete")
	}
	overhead := out.Overhead(MonitorOnly)
	t.Logf("runtimes: na=%.0f ad=%.0f mo=%.0f overhead=%.1f%%",
		na.Runtime, ad.Runtime, mo.Runtime, overhead*100)
	if overhead < 0 {
		t.Errorf("monitoring made the run faster? overhead=%v", overhead)
	}
	if overhead > 0.12 {
		t.Errorf("overhead %.1f%% too large (paper: a few percent)", overhead*100)
	}
	// In the no-disturbance scenario, the adaptive run must not wreck
	// the node set: the paper expects it to hold near the initial 36.
	if ad.FinalNodes < 24 {
		t.Errorf("adaptive run shrank to %d nodes in the ideal scenario", ad.FinalNodes)
	}
	if mo.BenchSec == 0 || na.BenchSec != 0 {
		t.Errorf("bench accounting: na=%v mo=%v", na.BenchSec, mo.BenchSec)
	}
}

// The paper's headline: scenarios 2a-6 all improve with adaptation.
func TestAdaptationImprovesAllDisturbedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation")
	}
	for _, id := range []string{"2a", "2b", "3", "4", "5", "6"} {
		sc, _ := ByID(id)
		out, err := Run(sc, NoAdapt, Adaptive)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		imp := out.Improvement()
		t.Logf("scenario %s: improvement %.0f%%", id, imp*100)
		if imp <= 0 {
			t.Errorf("scenario %s: adaptation did not improve runtime (%.1f%%)", id, imp*100)
		}
		if !out.Results[Adaptive].Completed {
			t.Errorf("scenario %s: adaptive run incomplete", id)
		}
	}
}

// Scenario 10 end to end: under the mid-stream slowdown the latency-SLO
// objective must bring mean item latency back inside the target while
// the static run's open-loop backlog blows far past it — the
// EXPERIMENTS.md streaming table.
func TestScenario10StreamingSLO(t *testing.T) {
	sc, _ := ByID("10")
	out, err := Run(sc, NoAdapt, Adaptive)
	if err != nil {
		t.Fatal(err)
	}
	na, ad := out.Results[NoAdapt], out.Results[Adaptive]
	if !na.Completed || !ad.Completed {
		t.Fatalf("scenario 10 runs incomplete: na=%v ad=%v", na.Completed, ad.Completed)
	}
	target := sc.Build(NoAdapt, sc.Seed).Stream.TargetLatency
	t.Logf("mean latency: na=%.1fs ad=%.1fs (target %.0fs); runtimes na=%.0f ad=%.0f",
		na.MeanStreamLatency(), ad.MeanStreamLatency(), target, na.Runtime, ad.Runtime)
	if m := ad.MeanStreamLatency(); m > target {
		t.Errorf("adaptive mean latency %.1fs misses the %.0fs target", m, target)
	}
	if m := na.MeanStreamLatency(); m < 4*target {
		t.Errorf("static run too healthy to demonstrate the slowdown (mean %.1fs)", m)
	}
	if ad.PeakNodes <= 10 {
		t.Errorf("SLO objective never grew past the initial 10 (peak %d)", ad.PeakNodes)
	}
}

// Scenario 8 end to end: the first badly connected site is evacuated
// and teaches a minimum-bandwidth requirement; the identically slow
// second site is then never allocated at all, even though it was never
// blacklisted.
func TestScenario8LearnedBandwidthRequirement(t *testing.T) {
	sc, _ := ByID("8")
	out, err := Run(sc, Adaptive)
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[Adaptive]
	if !res.Completed {
		t.Fatal("incomplete")
	}
	foundDSL1 := false
	for _, c := range res.BlacklistedClusters {
		if c == "dsl1" {
			foundDSL1 = true
		}
		if c == "dsl2" {
			t.Error("dsl2 was blacklisted — it should have been excluded by the learned requirement, not tried")
		}
	}
	if !foundDSL1 {
		t.Errorf("dsl1 not blacklisted: %v", res.BlacklistedClusters)
	}
	if res.MinBandwidth <= 0 {
		t.Error("no minimum-bandwidth requirement learned")
	}
	for _, c := range res.UsedClusters {
		if c == "dsl2" {
			t.Error("dsl2 hosted nodes despite the learned bandwidth requirement")
		}
	}
}

// Scenario 5x: opportunistic migration strictly improves on scenario 5.
func TestScenario5xOpportunisticBeatsPlain(t *testing.T) {
	plain, _ := ByID("5")
	opp, _ := ByID("5x")
	p, err := Run(plain, Adaptive)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Run(opp, Adaptive)
	if err != nil {
		t.Fatal(err)
	}
	tp, to := p.Results[Adaptive].Runtime, o.Results[Adaptive].Runtime
	t.Logf("plain=%.0fs opportunistic=%.0fs", tp, to)
	if to >= tp {
		t.Errorf("opportunistic migration (%.0fs) did not beat plain adaptation (%.0fs)", to, tp)
	}
}

// Scenario 9: load-aware benchmarking shrinks the adaptivity overhead.
func TestScenario9LoadAwareBenchmarking(t *testing.T) {
	plain, _ := ByID("1")
	aware, _ := ByID("9")
	po, err := Run(plain, NoAdapt, MonitorOnly)
	if err != nil {
		t.Fatal(err)
	}
	ao, err := Run(aware, NoAdapt, MonitorOnly)
	if err != nil {
		t.Fatal(err)
	}
	plainOverhead := po.Overhead(MonitorOnly)
	awareOverhead := ao.Overhead(MonitorOnly)
	t.Logf("plain overhead=%.2f%% load-aware=%.2f%%", plainOverhead*100, awareOverhead*100)
	if awareOverhead >= plainOverhead {
		t.Errorf("load-aware benchmarking did not reduce overhead: %.2f%% vs %.2f%%",
			awareOverhead*100, plainOverhead*100)
	}
	if ao.Results[MonitorOnly].BenchSec >= po.Results[MonitorOnly].BenchSec {
		t.Errorf("bench time not reduced: %.0f vs %.0f",
			ao.Results[MonitorOnly].BenchSec, po.Results[MonitorOnly].BenchSec)
	}
}
