// Package expt wires up the paper's evaluation (§5): the six Barnes-Hut
// scenarios on DAS-2, each runnable in three variants — without
// monitoring and adaptation ("runtime 1"), with both ("runtime 2"), and
// with monitoring/benchmarking but no adaptation ("runtime 3") — and
// produces the runtime table of Figure 1 and the iteration-duration
// series of Figures 3–7.
package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Variant selects the measurement mode of a run.
type Variant string

const (
	// NoAdapt is the paper's "runtime 1": no statistics, no
	// benchmarking, no adaptation.
	NoAdapt Variant = "no-adapt"
	// Adaptive is "runtime 2": monitoring plus adaptation.
	Adaptive Variant = "adaptive"
	// MonitorOnly is "runtime 3": monitoring and benchmarking on, but
	// the node set never changes — it prices the adaptation support.
	MonitorOnly Variant = "monitor-only"
)

// Scenario is one experiment of the evaluation section.
type Scenario struct {
	ID          string // "1", "2a".."2c", "3".."6", extensions "7"+
	Name        string
	Figure      string // the paper artefact it reproduces
	Description string
	Seed        int64
	Build       func(v Variant, seed int64) des.Params
}

// Outcome holds one scenario's results per variant.
type Outcome struct {
	Scenario Scenario
	Results  map[Variant]*des.Result
}

// Improvement is the paper's headline number per scenario: the runtime
// reduction of the adaptive run relative to the non-adaptive one.
func (o *Outcome) Improvement() float64 {
	na, ad := o.Results[NoAdapt], o.Results[Adaptive]
	if na == nil || ad == nil || na.Runtime == 0 {
		return 0
	}
	return (na.Runtime - ad.Runtime) / na.Runtime
}

// Overhead is scenario 1's number: the cost of monitoring plus
// benchmarking relative to the plain run.
func (o *Outcome) Overhead(v Variant) float64 {
	na, x := o.Results[NoAdapt], o.Results[v]
	if na == nil || x == nil || na.Runtime == 0 {
		return 0
	}
	return (x.Runtime - na.Runtime) / na.Runtime
}

// Run executes the scenario in the requested variants (all three when
// none are given).
func Run(sc Scenario, variants ...Variant) (*Outcome, error) {
	return RunWith(sc, nil, variants...)
}

// RunWith executes like Run but lets the caller decorate each
// variant's simulator parameters just before the run — observability
// hooks, recorders — without the scenario definitions knowing about
// them (gridsim uses this to put the recorder's clock on the
// simulator's virtual-time axis).
func RunWith(sc Scenario, decorate func(v Variant, p *des.Params), variants ...Variant) (*Outcome, error) {
	if len(variants) == 0 {
		variants = []Variant{NoAdapt, Adaptive, MonitorOnly}
	}
	out := &Outcome{Scenario: sc, Results: make(map[Variant]*des.Result, len(variants))}
	for _, v := range variants {
		p := sc.Build(v, sc.Seed)
		if decorate != nil {
			decorate(v, &p)
		}
		res, err := des.Run(p)
		if err != nil {
			return nil, fmt.Errorf("expt: scenario %s variant %s: %w", sc.ID, v, err)
		}
		out.Results[v] = res
	}
	return out, nil
}

// base returns the standard experimental setup: Barnes-Hut with 100k
// bodies on DAS-2, started on the given allocation, with the variant's
// monitoring/adaptation settings applied.
func base(v Variant, seed int64, iters int, initial []des.Alloc) des.Params {
	p := des.Params{
		Topo:    topo.DAS2(),
		Spec:    workload.BarnesHut(100000, iters),
		Seed:    seed,
		Initial: initial,
	}
	switch v {
	case Adaptive:
		p.Mon = des.DefaultMonitor()
		cfg := core.DefaultConfig()
		p.Adapt = &cfg
	case MonitorOnly:
		p.Mon = des.DefaultMonitor()
		cfg := core.DefaultConfig()
		p.Adapt = &cfg
		p.MonitorOnly = true
	}
	return p
}

// threeClusters is the paper's reasonable allocation: 36 nodes spread
// over three sites.
func threeClusters() []des.Alloc {
	return []des.Alloc{
		{Cluster: "fs0", Count: 12},
		{Cluster: "fs1", Count: 12},
		{Cluster: "fs2", Count: 12},
	}
}

// All returns the scenarios of the paper's evaluation plus the
// varying-parallelism extension.
func All() []Scenario {
	return []Scenario{
		{
			ID:     "1",
			Name:   "adaptivity overhead",
			Figure: "Figure 1 group 1 / §5.1",
			Description: "36 nodes in 3 clusters, no disturbances: prices the monitoring " +
				"and benchmarking support (runtime 2 and 3 vs runtime 1).",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				return base(v, seed, 30, threeClusters())
			},
		},
		{
			ID:     "2a",
			Name:   "expand from 8 nodes",
			Figure: "Figure 3 / §5.2",
			Description: "Started on far too few nodes (8, one cluster); the adaptive run " +
				"grows to the efficient allocation.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				return base(v, seed, 60, []des.Alloc{{Cluster: "fs0", Count: 8}})
			},
		},
		{
			ID:          "2b",
			Name:        "expand from 16 nodes",
			Figure:      "Figure 3 / §5.2",
			Description: "Started on 16 nodes in one cluster.",
			Seed:        42,
			Build: func(v Variant, seed int64) des.Params {
				return base(v, seed, 60, []des.Alloc{{Cluster: "fs0", Count: 16}})
			},
		},
		{
			ID:          "2c",
			Name:        "expand from 24 nodes",
			Figure:      "Figure 3 / §5.2",
			Description: "Started on 24 nodes in two clusters.",
			Seed:        42,
			Build: func(v Variant, seed int64) des.Params {
				return base(v, seed, 60, []des.Alloc{
					{Cluster: "fs0", Count: 12}, {Cluster: "fs1", Count: 12},
				})
			},
		},
		{
			ID:     "3",
			Name:   "overloaded processors",
			Figure: "Figure 4 / §5.3",
			Description: "A heavy competing load lands on one cluster after 200 s; the " +
				"coordinator evicts the overloaded nodes and replaces them.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 80, threeClusters())
				p.Events = []des.Injection{{
					At: 200, Kind: des.InjSetLoad, Cluster: "fs1", Load: 20,
					Label: "cpu load introduced",
				}}
				return p
			},
		},
		{
			ID:     "4",
			Name:   "overloaded network link",
			Figure: "Figure 5 / §5.4",
			Description: "One cluster's uplink is shaped to ~100 KB/s; the coordinator " +
				"drops the whole cluster after the first monitoring period and re-expands.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 60, threeClusters())
				p.Events = []des.Injection{{
					At: 1, Kind: des.InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3,
					Label: "one cluster is badly connected",
				}}
				return p
			},
		},
		{
			ID:     "5",
			Name:   "overloaded processors and link",
			Figure: "Figure 6 / §5.5",
			Description: "A throttled uplink plus lightly (~3x) loaded nodes elsewhere: " +
				"the bad cluster goes, then WAE sits between the thresholds so the slow " +
				"nodes stay — the paper's case for opportunistic migration.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 60, threeClusters())
				p.Events = []des.Injection{
					{At: 1, Kind: des.InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3,
						Label: "one cluster is badly connected"},
					{At: 1, Kind: des.InjSetLoad, Cluster: "fs1", Count: 6, Load: 2,
						Label: "6 nodes lightly overloaded"},
				}
				return p
			},
		},
		{
			ID:     "6",
			Name:   "crashing nodes",
			Figure: "Figure 7 / §5.6",
			Description: "Two of the three clusters crash after 500 s; the adaptive run " +
				"replaces the lost capacity within a few periods.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 80, threeClusters())
				p.Events = []des.Injection{
					{At: 500, Kind: des.InjCrash, Cluster: "fs1", Label: "2 out of 3 clusters crash"},
					{At: 500, Kind: des.InjCrash, Cluster: "fs2", Label: ""},
				}
				return p
			},
		},
		{
			ID:     "5x",
			Name:   "opportunistic migration (extension)",
			Figure: "§7 future work / §5.5 discussion",
			Description: "Scenario 5 with opportunistic migration enabled: after the bad " +
				"cluster leaves, faster idle processors are added even though WAE sits " +
				"between the thresholds, displacing the slow nodes — the paper's 'iteration " +
				"duration could be reduced even further'.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 60, threeClusters())
				p.Events = []des.Injection{
					{At: 1, Kind: des.InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3,
						Label: "one cluster is badly connected"},
					{At: 1, Kind: des.InjSetLoad, Cluster: "fs1", Count: 6, Load: 2,
						Label: "6 nodes lightly overloaded"},
				}
				p.Opportunistic = true
				return p
			},
		},
		{
			ID:     "8",
			Name:   "learned bandwidth requirement (extension)",
			Figure: "§3.3 'minimal bandwidth required by the application'",
			Description: "Two distinct badly connected sites: evicting the first teaches the " +
				"coordinator a minimum-bandwidth requirement, which the scheduler then uses " +
				"to refuse the second — something blacklisting alone cannot do.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 60, nil)
				dsl := func(id core.ClusterID) topo.Cluster {
					return topo.Cluster{
						ID: id, Nodes: 12, Speed: 1,
						LANLatency: topo.LANLatency, LANBandwidth: topo.FastEthernetBandwidth,
						WANLatency: topo.WANLatencyOneWay, UplinkBandwidth: 100e3,
					}
				}
				p.Topo = topo.Topology{Clusters: []topo.Cluster{
					{ID: "fs0", Nodes: 24, Speed: 1, LANLatency: topo.LANLatency,
						LANBandwidth: topo.FastEthernetBandwidth,
						WANLatency:   topo.WANLatencyOneWay, UplinkBandwidth: topo.BackboneUplink},
					{ID: "fs1", Nodes: 12, Speed: 1, LANLatency: topo.LANLatency,
						LANBandwidth: topo.FastEthernetBandwidth,
						WANLatency:   topo.WANLatencyOneWay, UplinkBandwidth: topo.BackboneUplink},
					dsl("dsl1"), dsl("dsl2"),
				}}
				p.Initial = []des.Alloc{
					{Cluster: "fs0", Count: 12},
					{Cluster: "fs1", Count: 12},
					{Cluster: "dsl1", Count: 12},
				}
				return p
			},
		},
		{
			ID:     "9",
			Name:   "load-aware benchmarking (extension)",
			Figure: "§3.2 / §5.1: 'would reduce the benchmarking overhead to almost zero'",
			Description: "Scenario 1 with the benchmark re-run only on processor load " +
				"changes: the adaptivity overhead collapses while scenario-3-style load " +
				"changes still get detected.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 30, threeClusters())
				p.Mon.LoadAware = true
				return p
			},
		},
		{
			ID:     "7",
			Name:   "varying degree of parallelism",
			Figure: "§3 bullet 5 (no paper figure)",
			Description: "The application's parallel work shrinks to a third mid-run and " +
				"recovers; the node set follows automatically — the paper's fifth " +
				"adaptation case, which it describes but does not plot.",
			Seed: 42,
			Build: func(v Variant, seed int64) des.Params {
				p := base(v, seed, 150, threeClusters())
				p.Spec = workload.VaryingParallelism(p.Spec, func(iter int) float64 {
					if iter >= 40 && iter < 110 {
						return 0.25
					}
					return 1
				})
				return p
			},
		},
		{
			ID:     "10",
			Name:   "streaming latency SLO (extension)",
			Figure: "workload classes beyond the batch WAE band",
			Description: "An open-loop 3-stage pipeline (4 items/s against a 5 s latency " +
				"target) on 10 nodes, 6 of which are slowed 10x mid-stream. The latency-SLO " +
				"objective grows the allocation until latency re-enters the target; without " +
				"adaptation the deficit queues items behind the slowed nodes for the rest " +
				"of the emission window.",
			Seed:  42,
			Build: buildStreaming,
		},
	}
}

// buildStreaming is scenario 10: the streaming workload class under an
// injected node slowdown. Offered load is 6 speed-seconds/s (4 items/s
// x 1.5 s/item) against 10 speed-1 nodes; the injection cuts effective
// capacity to ~4.5 speed-seconds/s, so the open-loop source outruns the
// pipeline unless the coordinator acts on the latency SLO.
func buildStreaming(v Variant, seed int64) des.Params {
	spec := workload.Pipeline3(4, 3000)
	p := des.Params{
		Topo:    topo.DAS2(),
		Stream:  &spec,
		Seed:    seed,
		Initial: []des.Alloc{{Cluster: "fs0", Count: 10}},
		Events: []des.Injection{
			{At: 150, Kind: des.InjSetLoad, Cluster: "fs0", Count: 6, Load: 9,
				Label: "6 nodes slowed 10x"},
		},
	}
	switch v {
	case Adaptive, MonitorOnly:
		p.Mon = des.DefaultMonitor()
		p.Mon.Period = 30
		slo := core.DefaultStreamSLO(spec.TargetLatency)
		p.StreamSLO = &slo
		p.MonitorOnly = v == MonitorOnly
	}
	return p
}

// ByID finds a scenario.
func ByID(id string) (Scenario, bool) {
	for _, sc := range All() {
		if sc.ID == id {
			return sc, true
		}
	}
	return Scenario{}, false
}
