package apps

import (
	"time"

	"repro/satin"
)

// StreamWindow is the streaming workload class's unit of execution on
// the real runtime: one window's worth of pipeline items, expressed as
// divide-and-conquer so work stealing spreads the items over whatever
// nodes the job holds. WorkPerItem is the summed per-item service
// demand of every pipeline stage — on the real runtime a window's
// stages collapse into one grain, because once an item's payload is at
// a worker there is no reason to ship it again between stages.
type StreamWindow struct {
	Items       int
	WorkPerItem time.Duration
	Grain       int // items per sequential leaf (default 1)
}

// Execute implements satin.Task. Leaves sleep for their items' work:
// the emulated-load machinery stretches sleep-busy intervals exactly
// like compute, so a loaded cluster genuinely slows the stream down.
func (w StreamWindow) Execute(ctx *satin.Context) (any, error) {
	grain := w.Grain
	if grain < 1 {
		grain = 1
	}
	if w.Items <= grain {
		time.Sleep(time.Duration(w.Items) * w.WorkPerItem)
		return w.Items, nil
	}
	half := w.Items / 2
	a := ctx.Spawn(StreamWindow{Items: half, WorkPerItem: w.WorkPerItem, Grain: grain})
	b := ctx.Spawn(StreamWindow{Items: w.Items - half, WorkPerItem: w.WorkPerItem, Grain: grain})
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	return a.Int() + b.Int(), nil
}

func init() {
	satin.Register(StreamWindow{})
}
