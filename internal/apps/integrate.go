package apps

import (
	"fmt"
	"math"

	"repro/satin"
)

// Integrate computes a definite integral by adaptive quadrature:
// intervals whose Simpson estimate disagrees with its refinement split
// into two subtasks. Task sizes depend on where the integrand
// misbehaves — a naturally irregular divide-and-conquer tree.
//
// The integrand is selected by name so tasks stay serialisable.
type Integrate struct {
	Fn       string
	A, B     float64
	Eps      float64
	MaxDepth int
	Depth    int
}

// integrands the tasks can reference by name.
var integrands = map[string]func(float64) float64{
	"poly":     func(x float64) float64 { return x*x*x - 2*x + 1 },
	"sin":      math.Sin,
	"gauss":    func(x float64) float64 { return math.Exp(-x * x) },
	"spiky":    func(x float64) float64 { return math.Sin(1/(0.01+x*x)) + 1 },
	"needle":   func(x float64) float64 { return 1 / (1e-4 + x*x) },
	"constant": func(float64) float64 { return 1 },
}

// IntegrandNames lists the available integrands.
func IntegrandNames() []string {
	return []string{"poly", "sin", "gauss", "spiky", "needle", "constant"}
}

func simpson(f func(float64) float64, a, b float64) float64 {
	return (b - a) / 6 * (f(a) + 4*f((a+b)/2) + f(b))
}

// Execute implements satin.Task.
func (in Integrate) Execute(ctx *satin.Context) (any, error) {
	f, ok := integrands[in.Fn]
	if !ok {
		return nil, fmt.Errorf("apps: unknown integrand %q", in.Fn)
	}
	if in.MaxDepth == 0 {
		in.MaxDepth = 40
	}
	mid := (in.A + in.B) / 2
	whole := simpson(f, in.A, in.B)
	left := simpson(f, in.A, mid)
	right := simpson(f, mid, in.B)
	if math.Abs(left+right-whole) < 15*in.Eps || in.Depth >= in.MaxDepth {
		return left + right + (left+right-whole)/15, nil
	}
	// Below a modest depth the subintervals are worth distributing;
	// deeper refinement runs sequentially to keep tasks coarse enough.
	if in.Depth >= 8 {
		l, err := (Integrate{Fn: in.Fn, A: in.A, B: mid, Eps: in.Eps / 2,
			MaxDepth: in.MaxDepth, Depth: in.Depth + 1}).Execute(ctx)
		if err != nil {
			return nil, err
		}
		r, err := (Integrate{Fn: in.Fn, A: mid, B: in.B, Eps: in.Eps / 2,
			MaxDepth: in.MaxDepth, Depth: in.Depth + 1}).Execute(ctx)
		if err != nil {
			return nil, err
		}
		return l.(float64) + r.(float64), nil
	}
	lf := ctx.Spawn(Integrate{Fn: in.Fn, A: in.A, B: mid, Eps: in.Eps / 2,
		MaxDepth: in.MaxDepth, Depth: in.Depth + 1})
	rf := ctx.Spawn(Integrate{Fn: in.Fn, A: mid, B: in.B, Eps: in.Eps / 2,
		MaxDepth: in.MaxDepth, Depth: in.Depth + 1})
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	return lf.Float() + rf.Float(), nil
}

func init() {
	satin.Register(Integrate{})
	satin.RegisterValue(float64(0))
}
