package apps

import (
	"fmt"

	"repro/satin"
)

// NQueens counts the placements of N non-attacking queens using the
// bitmask backtracking recursion. Each partial board is a task; the
// search tree is highly irregular, which is exactly the workload shape
// the paper says makes benchmark-free speed measurement necessary.
type NQueens struct {
	N int
	// Row and the occupancy masks describe the partial board.
	Row                int
	Cols, Diag1, Diag2 uint32
	// SpawnDepth: boards with fewer placed rows spawn children; deeper
	// boards solve sequentially.
	SpawnDepth int
}

// Execute implements satin.Task.
func (q NQueens) Execute(ctx *satin.Context) (any, error) {
	if q.N <= 0 || q.N > 20 {
		return nil, fmt.Errorf("apps: nqueens size %d out of range", q.N)
	}
	if q.Row >= q.SpawnDepth {
		return q.countSequential(q.Row, q.Cols, q.Diag1, q.Diag2), nil
	}
	full := uint32(1<<q.N) - 1
	free := full &^ (q.Cols | q.Diag1 | q.Diag2)
	var futures []*satin.Future
	for free != 0 {
		bit := free & -free
		free &^= bit
		futures = append(futures, ctx.Spawn(NQueens{
			N:          q.N,
			Row:        q.Row + 1,
			Cols:       q.Cols | bit,
			Diag1:      (q.Diag1 | bit) << 1 & full,
			Diag2:      (q.Diag2 | bit) >> 1,
			SpawnDepth: q.SpawnDepth,
		}))
	}
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	total := 0
	for _, f := range futures {
		total += f.Int()
	}
	return total, nil
}

func (q NQueens) countSequential(row int, cols, d1, d2 uint32) int {
	if row == q.N {
		return 1
	}
	full := uint32(1<<q.N) - 1
	free := full &^ (cols | d1 | d2)
	count := 0
	for free != 0 {
		bit := free & -free
		free &^= bit
		count += q.countSequential(row+1, cols|bit, (d1|bit)<<1&full, (d2|bit)>>1)
	}
	return count
}

// QueensSolutions returns the known solution counts for checking.
func QueensSolutions(n int) int {
	known := []int{1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712}
	if n >= 0 && n < len(known) {
		return known[n]
	}
	return -1
}

func init() {
	satin.Register(NQueens{})
}
