package apps

import (
	"math"
	"math/rand"

	"repro/satin"
)

// Barnes-Hut N-body simulation — the application of the paper's
// evaluation. Bodies evolve under gravity; each time step builds an
// octree and approximates far-away groups by their centre of mass
// (opening angle theta). The force phase is the parallel part: body
// ranges are divide-and-conquer tasks, exactly how the Satin version
// parallelised it (with the tree replicated per node per iteration —
// here each executing task rebuilds it from the body snapshot it
// carries, the in-process analogue of the per-iteration broadcast).

// Body is one particle.
type Body struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	Mass       float64
}

// Accel is the force-phase output per body.
type Accel struct{ AX, AY, AZ float64 }

// cell is one octree node.
type cell struct {
	cx, cy, cz, half float64 // cube centre and half-width
	mass             float64
	mx, my, mz       float64 // centre of mass (accumulated, then normalised)
	body             int     // body index if leaf (-1 otherwise)
	children         [8]*cell
	leaf             bool
}

// BuildTree constructs the octree over the bodies.
func BuildTree(bodies []Body) *cell {
	if len(bodies) == 0 {
		return nil
	}
	lo, hi := bodies[0], bodies[0]
	for _, b := range bodies {
		lo.X, lo.Y, lo.Z = math.Min(lo.X, b.X), math.Min(lo.Y, b.Y), math.Min(lo.Z, b.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, b.X), math.Max(hi.Y, b.Y), math.Max(hi.Z, b.Z)
	}
	half := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))/2 + 1e-9
	root := &cell{
		cx: (lo.X + hi.X) / 2, cy: (lo.Y + hi.Y) / 2, cz: (lo.Z + hi.Z) / 2,
		half: half, body: -1, leaf: true,
	}
	for i := range bodies {
		root.insert(bodies, i)
	}
	root.finish()
	return root
}

func (c *cell) octant(b Body) int {
	o := 0
	if b.X > c.cx {
		o |= 1
	}
	if b.Y > c.cy {
		o |= 2
	}
	if b.Z > c.cz {
		o |= 4
	}
	return o
}

func (c *cell) childCell(o int) *cell {
	if c.children[o] == nil {
		h := c.half / 2
		nc := &cell{cx: c.cx, cy: c.cy, cz: c.cz, half: h, body: -1, leaf: true}
		if o&1 != 0 {
			nc.cx += h
		} else {
			nc.cx -= h
		}
		if o&2 != 0 {
			nc.cy += h
		} else {
			nc.cy -= h
		}
		if o&4 != 0 {
			nc.cz += h
		} else {
			nc.cz -= h
		}
		c.children[o] = nc
	}
	return c.children[o]
}

func (c *cell) insert(bodies []Body, i int) {
	b := bodies[i]
	c.mass += b.Mass
	c.mx += b.X * b.Mass
	c.my += b.Y * b.Mass
	c.mz += b.Z * b.Mass
	if c.leaf && c.body < 0 {
		c.body = i
		return
	}
	if c.leaf {
		// Split: push the resident body down, unless the cell has
		// become degenerately small (coincident bodies).
		if c.half < 1e-12 {
			return
		}
		old := c.body
		c.body = -1
		c.leaf = false
		c.childCell(c.octant(bodies[old])).insert(bodies, old)
	}
	c.childCell(c.octant(b)).insert(bodies, i)
}

func (c *cell) finish() {
	if c.mass > 0 {
		c.mx /= c.mass
		c.my /= c.mass
		c.mz /= c.mass
	}
	for _, ch := range c.children {
		if ch != nil {
			ch.finish()
		}
	}
}

// force accumulates the acceleration on body i from the subtree.
func (c *cell) force(bodies []Body, i int, theta, softening float64, a *Accel) {
	if c == nil || c.mass == 0 {
		return
	}
	b := bodies[i]
	dx, dy, dz := c.mx-b.X, c.my-b.Y, c.mz-b.Z
	d2 := dx*dx + dy*dy + dz*dz + softening
	if c.leaf {
		if c.body == i || c.body < 0 {
			return
		}
		inv := 1 / (d2 * math.Sqrt(d2))
		a.AX += c.mass * dx * inv
		a.AY += c.mass * dy * inv
		a.AZ += c.mass * dz * inv
		return
	}
	// Opening criterion: treat the cell as one mass when it is far.
	if (2*c.half)*(2*c.half) < theta*theta*d2 {
		inv := 1 / (d2 * math.Sqrt(d2))
		a.AX += c.mass * dx * inv
		a.AY += c.mass * dy * inv
		a.AZ += c.mass * dz * inv
		return
	}
	for _, ch := range c.children {
		if ch != nil {
			ch.force(bodies, i, theta, softening, a)
		}
	}
}

// ForcesSequential computes all accelerations directly (reference).
func ForcesSequential(bodies []Body, theta float64) []Accel {
	tree := BuildTree(bodies)
	out := make([]Accel, len(bodies))
	for i := range bodies {
		tree.force(bodies, i, theta, 1e-6, &out[i])
	}
	return out
}

// BHForces is the satin task of the force phase: compute accelerations
// for bodies[Lo:Hi). Tasks split ranges until Grain; every executing
// node rebuilds the tree from the snapshot (the replicated tree of the
// Satin implementation).
type BHForces struct {
	Bodies []Body
	Lo, Hi int
	Theta  float64
	Grain  int
}

// Execute implements satin.Task.
func (t BHForces) Execute(ctx *satin.Context) (any, error) {
	if t.Grain <= 0 {
		t.Grain = 64
	}
	if t.Hi-t.Lo <= t.Grain {
		tree := BuildTree(t.Bodies)
		out := make([]Accel, t.Hi-t.Lo)
		for i := t.Lo; i < t.Hi; i++ {
			tree.force(t.Bodies, i, t.Theta, 1e-6, &out[i-t.Lo])
		}
		return out, nil
	}
	mid := (t.Lo + t.Hi) / 2
	left := ctx.Spawn(BHForces{Bodies: t.Bodies, Lo: t.Lo, Hi: mid, Theta: t.Theta, Grain: t.Grain})
	right := ctx.Spawn(BHForces{Bodies: t.Bodies, Lo: mid, Hi: t.Hi, Theta: t.Theta, Grain: t.Grain})
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	la, _ := left.Value().([]Accel)
	ra, _ := right.Value().([]Accel)
	return append(append([]Accel{}, la...), ra...), nil
}

// StepBodies advances the bodies one leapfrog step using accs.
func StepBodies(bodies []Body, accs []Accel, dt float64) {
	for i := range bodies {
		bodies[i].VX += accs[i].AX * dt
		bodies[i].VY += accs[i].AY * dt
		bodies[i].VZ += accs[i].AZ * dt
		bodies[i].X += bodies[i].VX * dt
		bodies[i].Y += bodies[i].VY * dt
		bodies[i].Z += bodies[i].VZ * dt
	}
}

// Plummer samples a reproducible spherical star cluster.
func Plummer(n int, seed int64) []Body {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]Body, n)
	for i := range bodies {
		r := 1 / math.Sqrt(math.Pow(rng.Float64()*0.99+1e-6, -2.0/3)-1)
		u, v := rng.Float64()*2-1, rng.Float64()*2*math.Pi
		s := math.Sqrt(1 - u*u)
		bodies[i] = Body{
			X: r * s * math.Cos(v), Y: r * s * math.Sin(v), Z: r * u,
			Mass: 1.0 / float64(n),
		}
	}
	return bodies
}

func init() {
	satin.Register(BHForces{})
	satin.RegisterValue([]Accel{})
}
