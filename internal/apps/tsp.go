package apps

import (
	"fmt"
	"math"
	"math/rand"

	"repro/satin"
)

// TSP solves the travelling-salesman problem exactly by
// divide-and-conquer search with partial-cost pruning: each task
// extends a partial tour by one city and searches the remainder. The
// distance matrix travels with stolen tasks (Satin replicated static
// data the same way).
type TSP struct {
	Dist [][]float64
	Path []int
	Cost float64
	// UpperBound prunes branches; tasks inherit the bound known when
	// they were spawned (a distributed global bound would need the
	// shared-object extension the paper leaves out).
	UpperBound float64
	// SpawnDepth: tours shorter than this spawn children.
	SpawnDepth int
}

// TourResult is a TSP task's answer.
type TourResult struct {
	Cost float64
	Path []int
}

// RandomCities builds a reproducible random distance matrix.
func RandomCities(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64()*100, rng.Float64()*100
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		}
	}
	return d
}

// NewTSP builds the root task for a distance matrix.
func NewTSP(dist [][]float64, spawnDepth int) TSP {
	return TSP{
		Dist:       dist,
		Path:       []int{0},
		UpperBound: math.Inf(1),
		SpawnDepth: spawnDepth,
	}
}

// Execute implements satin.Task.
func (t TSP) Execute(ctx *satin.Context) (any, error) {
	n := len(t.Dist)
	if n == 0 {
		return nil, fmt.Errorf("apps: tsp with empty distance matrix")
	}
	if len(t.Path) < t.SpawnDepth && len(t.Path) < n {
		visited := make([]bool, n)
		for _, c := range t.Path {
			visited[c] = true
		}
		last := t.Path[len(t.Path)-1]
		var futures []*satin.Future
		for c := 0; c < n; c++ {
			if visited[c] {
				continue
			}
			child := TSP{
				Dist:       t.Dist,
				Path:       append(append([]int(nil), t.Path...), c),
				Cost:       t.Cost + t.Dist[last][c],
				UpperBound: t.UpperBound,
				SpawnDepth: t.SpawnDepth,
			}
			futures = append(futures, ctx.Spawn(child))
		}
		if err := ctx.Sync(); err != nil {
			return nil, err
		}
		best := TourResult{Cost: math.Inf(1)}
		for _, f := range futures {
			if r, ok := f.Value().(TourResult); ok && r.Cost < best.Cost {
				best = r
			}
		}
		return best, nil
	}
	best := TourResult{Cost: t.UpperBound}
	visited := make([]bool, n)
	for _, c := range t.Path {
		visited[c] = true
	}
	path := append([]int(nil), t.Path...)
	t.search(path, visited, t.Cost, &best)
	return best, nil
}

func (t TSP) search(path []int, visited []bool, cost float64, best *TourResult) {
	n := len(t.Dist)
	if cost >= best.Cost {
		return // prune: the partial tour is already worse
	}
	if len(path) == n {
		total := cost + t.Dist[path[n-1]][path[0]]
		if total < best.Cost {
			best.Cost = total
			best.Path = append([]int(nil), path...)
		}
		return
	}
	last := path[len(path)-1]
	for c := 0; c < n; c++ {
		if visited[c] {
			continue
		}
		visited[c] = true
		t.search(append(path, c), visited, cost+t.Dist[last][c], best)
		visited[c] = false
	}
}

func init() {
	satin.Register(TSP{})
	satin.RegisterValue(TourResult{})
}
