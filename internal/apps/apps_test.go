package apps

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/registry"
	"repro/satin"
)

func newTestGrid(t *testing.T, clusters ...satin.ClusterSpec) *satin.Grid {
	t.Helper()
	fast := registry.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    100 * time.Millisecond,
	}
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters:   clusters,
		Registry:   fast,
		LANLatency: 50 * time.Microsecond,
		WANLatency: time.Millisecond,
		Node: satin.NodeConfig{
			Registry:          fast,
			LocalStealTimeout: 100 * time.Millisecond,
			WANStealTimeout:   500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func runOn(t *testing.T, nodes int, task satin.Task) any {
	t.Helper()
	g := newTestGrid(t, satin.ClusterSpec{Name: "c0", Nodes: nodes})
	ns, err := g.StartNodes("c0", nodes)
	if err != nil {
		t.Fatal(err)
	}
	val, err := ns[0].Run(task)
	if err != nil {
		t.Fatal(err)
	}
	return val
}

func TestFibDistributed(t *testing.T) {
	val := runOn(t, 3, Fib{N: 20, SeqCutoff: 8})
	if val.(int) != FibLeaves(20) {
		t.Fatalf("fib(20) = %v, want %d", val, FibLeaves(20))
	}
}

func TestFibLeavesClosedForm(t *testing.T) {
	want := 1
	prev := 1
	for n := 2; n < 20; n++ {
		want, prev = want+prev, want
		got := FibLeaves(n)
		if got != want {
			t.Fatalf("FibLeaves(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNQueensDistributed(t *testing.T) {
	for _, n := range []int{6, 8} {
		val := runOn(t, 2, NQueens{N: n, SpawnDepth: 2})
		if val.(int) != QueensSolutions(n) {
			t.Fatalf("queens(%d) = %v, want %d", n, val, QueensSolutions(n))
		}
	}
}

func TestNQueensRejectsBadSize(t *testing.T) {
	g := newTestGrid(t, satin.ClusterSpec{Name: "c0", Nodes: 1})
	ns, _ := g.StartNodes("c0", 1)
	if _, err := ns[0].Run(NQueens{N: 0}); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestIntegrateKnownValues(t *testing.T) {
	cases := []struct {
		fn      string
		a, b    float64
		want    float64
		withinn float64
	}{
		{"constant", 0, 5, 5, 1e-9},
		{"poly", 0, 2, 2, 1e-6},                    // x^3-2x+1 over [0,2] = 4-4+2
		{"sin", 0, math.Pi, 2, 1e-6},               // ∫sin = 2
		{"gauss", -6, 6, math.Sqrt(math.Pi), 1e-5}, // erf-complete
	}
	g := newTestGrid(t, satin.ClusterSpec{Name: "c0", Nodes: 2})
	ns, err := g.StartNodes("c0", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		val, err := ns[0].Run(Integrate{Fn: c.fn, A: c.a, B: c.b, Eps: 1e-9})
		if err != nil {
			t.Fatalf("%s: %v", c.fn, err)
		}
		if got := val.(float64); math.Abs(got-c.want) > c.withinn {
			t.Errorf("∫%s over [%v,%v] = %v, want %v", c.fn, c.a, c.b, got, c.want)
		}
	}
}

func TestIntegrateUnknownIntegrand(t *testing.T) {
	g := newTestGrid(t, satin.ClusterSpec{Name: "c0", Nodes: 1})
	ns, _ := g.StartNodes("c0", 1)
	if _, err := ns[0].Run(Integrate{Fn: "nope", A: 0, B: 1, Eps: 1e-6}); err == nil {
		t.Fatal("unknown integrand accepted")
	}
}

func TestTSPMatchesBruteForce(t *testing.T) {
	dist := RandomCities(8, 7)
	val := runOn(t, 2, NewTSP(dist, 3))
	got := val.(TourResult)

	// Brute force reference.
	best := math.Inf(1)
	perm := make([]int, 0, 8)
	used := make([]bool, 8)
	var rec func(last int, cost float64)
	rec = func(last int, cost float64) {
		if len(perm) == 8 {
			if total := cost + dist[last][0]; total < best {
				best = total
			}
			return
		}
		for c := 1; c < 8; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			perm = append(perm, c)
			rec(c, cost+dist[last][c])
			perm = perm[:len(perm)-1]
			used[c] = false
		}
	}
	perm = append(perm, 0)
	rec(0, 0)
	perm = perm[:0]

	if math.Abs(got.Cost-best) > 1e-9 {
		t.Fatalf("tsp cost = %v, brute force = %v", got.Cost, best)
	}
	if len(got.Path) != 8 {
		t.Fatalf("tour length = %d", len(got.Path))
	}
}

func TestBarnesHutTreeMassConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		bodies := Plummer(n, seed)
		tree := BuildTree(bodies)
		total := 0.0
		for _, b := range bodies {
			total += b.Mass
		}
		return tree != nil && math.Abs(treeMass(tree)-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func treeMass(c *cell) float64 {
	if c == nil {
		return 0
	}
	return c.mass
}

func TestBarnesHutThetaZeroMatchesDirect(t *testing.T) {
	bodies := Plummer(64, 3)
	// theta=0 never opens cells as groups: exact pairwise sums.
	approx := ForcesSequential(bodies, 0)
	for i := range bodies {
		var want Accel
		for j := range bodies {
			if i == j {
				continue
			}
			dx := bodies[j].X - bodies[i].X
			dy := bodies[j].Y - bodies[i].Y
			dz := bodies[j].Z - bodies[i].Z
			d2 := dx*dx + dy*dy + dz*dz + 1e-6
			inv := 1 / (d2 * math.Sqrt(d2))
			want.AX += bodies[j].Mass * dx * inv
			want.AY += bodies[j].Mass * dy * inv
			want.AZ += bodies[j].Mass * dz * inv
		}
		if math.Abs(approx[i].AX-want.AX) > 1e-6 ||
			math.Abs(approx[i].AY-want.AY) > 1e-6 ||
			math.Abs(approx[i].AZ-want.AZ) > 1e-6 {
			t.Fatalf("body %d: tree %v vs direct %v", i, approx[i], want)
		}
	}
}

func TestBarnesHutDistributedMatchesSequential(t *testing.T) {
	bodies := Plummer(512, 5)
	seq := ForcesSequential(bodies, 0.5)
	val := runOn(t, 3, BHForces{Bodies: bodies, Lo: 0, Hi: len(bodies), Theta: 0.5, Grain: 64})
	par := val.([]Accel)
	if len(par) != len(seq) {
		t.Fatalf("lengths differ: %d vs %d", len(par), len(seq))
	}
	for i := range seq {
		if math.Abs(par[i].AX-seq[i].AX) > 1e-9 ||
			math.Abs(par[i].AY-seq[i].AY) > 1e-9 ||
			math.Abs(par[i].AZ-seq[i].AZ) > 1e-9 {
			t.Fatalf("body %d: parallel %v vs sequential %v", i, par[i], seq[i])
		}
	}
}

func TestBarnesHutStepConservesMomentumApproximately(t *testing.T) {
	bodies := Plummer(128, 9)
	for iter := 0; iter < 3; iter++ {
		accs := ForcesSequential(bodies, 0.3)
		StepBodies(bodies, accs, 0.01)
	}
	var px, py, pz float64
	for _, b := range bodies {
		px += b.VX * b.Mass
		py += b.VY * b.Mass
		pz += b.VZ * b.Mass
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 0.05 {
		t.Errorf("net momentum drifted: (%v, %v, %v)", px, py, pz)
	}
}

func TestPlummerReproducible(t *testing.T) {
	a, b := Plummer(32, 11), Plummer(32, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different bodies")
		}
	}
	c := Plummer(32, 12)
	if a[0] == c[0] {
		t.Fatal("different seeds produced identical first body")
	}
}

func TestIntegrandNames(t *testing.T) {
	for _, name := range IntegrandNames() {
		if _, ok := integrands[name]; !ok {
			t.Errorf("listed integrand %q missing", name)
		}
	}
}

func TestKnapsackMatchesDP(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		k := RandomKnapsack(18, seed)
		want := KnapsackDP(k.Weights, k.Values, k.Capacity)
		val := runOn(t, 2, k)
		if val.(int) != want {
			t.Fatalf("seed %d: branch-and-bound = %v, DP = %d", seed, val, want)
		}
	}
}

func TestKnapsackEmptyAndTight(t *testing.T) {
	k := Knapsack{Weights: []int{5, 5}, Values: []int{10, 10}, Capacity: 0, SpawnDepth: 1}
	if val := runOn(t, 1, k); val.(int) != 0 {
		t.Fatalf("zero capacity = %v, want 0", val)
	}
	k2 := Knapsack{Weights: []int{3, 4, 5}, Values: []int{3, 4, 5}, Capacity: 12, SpawnDepth: 2}
	if val := runOn(t, 1, k2); val.(int) != 12 {
		t.Fatalf("take-everything = %v, want 12", val)
	}
}
