// Package apps contains real divide-and-conquer applications for the
// satin runtime: the classic recursion benchmarks (Fibonacci,
// N-Queens, adaptive quadrature, TSP) and a genuine Barnes-Hut N-body
// simulation — the application class the paper targets, with task
// sizes varying over orders of magnitude and dynamic load balancing by
// work stealing.
package apps

import (
	"time"

	"repro/satin"
)

// Fib counts the calls of the naive Fibonacci recursion — the standard
// divide-and-conquer microbenchmark. LeafDelay adds that much
// simulated work to every sequential subtask (one block per task at
// the cutoff), so small instances have coarse enough grains to load-
// balance visibly even on few-core machines.
type Fib struct {
	N         int
	SeqCutoff int
	LeafDelay time.Duration
}

// Execute implements satin.Task.
func (f Fib) Execute(ctx *satin.Context) (any, error) {
	if f.N <= f.SeqCutoff || f.N < 2 {
		if f.LeafDelay > 0 {
			time.Sleep(f.LeafDelay)
		}
		return f.sequential(f.N), nil
	}
	a := ctx.Spawn(Fib{N: f.N - 1, SeqCutoff: f.SeqCutoff, LeafDelay: f.LeafDelay})
	b := ctx.Spawn(Fib{N: f.N - 2, SeqCutoff: f.SeqCutoff, LeafDelay: f.LeafDelay})
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	return a.Int() + b.Int(), nil
}

func (f Fib) sequential(n int) int {
	if n < 2 {
		return 1
	}
	return f.sequential(n-1) + f.sequential(n-2)
}

// FibLeaves is the expected result: the call-leaf count of fib(n).
func FibLeaves(n int) int {
	if n < 2 {
		return 1
	}
	a, b := 1, 1
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

func init() {
	satin.Register(Fib{})
}
