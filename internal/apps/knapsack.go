package apps

import (
	"math/rand"
	"sort"

	"repro/satin"
)

// Knapsack solves 0/1 knapsack exactly by divide-and-conquer branch
// and bound: each task fixes the decision for one item and searches
// the rest, pruning with the fractional upper bound. Like TSP, the
// bound each task inherits is the best known when it was spawned —
// distributed bound sharing would need the shared-object layer the
// paper's system does not include.
type Knapsack struct {
	Weights  []int
	Values   []int
	Capacity int
	// Index is the next item to decide; Value/Weight the committed
	// partial solution.
	Index  int
	Value  int
	Weight int
	// Best is the bound known at spawn time.
	Best int
	// SpawnDepth: decisions shallower than this spawn subtasks.
	SpawnDepth int
}

// RandomKnapsack builds a reproducible instance with n items.
func RandomKnapsack(n int, seed int64) Knapsack {
	rng := rand.New(rand.NewSource(seed))
	w := make([]int, n)
	v := make([]int, n)
	total := 0
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		v[i] = 1 + rng.Intn(100)
		total += w[i]
	}
	return Knapsack{Weights: w, Values: v, Capacity: total / 2, SpawnDepth: 4}
}

// upperBound is the fractional-relaxation bound for the remaining
// items; items must be pre-sorted by value density (see Execute).
func (k Knapsack) upperBound() int {
	cap := k.Capacity - k.Weight
	bound := k.Value
	for i := k.Index; i < len(k.Weights) && cap > 0; i++ {
		if k.Weights[i] <= cap {
			cap -= k.Weights[i]
			bound += k.Values[i]
		} else {
			bound += k.Values[i] * cap / k.Weights[i]
			cap = 0
		}
	}
	return bound
}

// normalize sorts items by value density once, at the root.
func (k Knapsack) normalize() Knapsack {
	type item struct{ w, v int }
	items := make([]item, len(k.Weights))
	for i := range items {
		items[i] = item{k.Weights[i], k.Values[i]}
	}
	sort.SliceStable(items, func(i, j int) bool {
		return items[i].v*items[j].w > items[j].v*items[i].w
	})
	w := make([]int, len(items))
	v := make([]int, len(items))
	for i, it := range items {
		w[i], v[i] = it.w, it.v
	}
	k.Weights, k.Values = w, v
	return k
}

// Execute implements satin.Task; the result is the best total value.
func (k Knapsack) Execute(ctx *satin.Context) (any, error) {
	if k.Index == 0 && k.Weight == 0 && k.Value == 0 {
		k = k.normalize()
	}
	if k.Index >= len(k.Weights) {
		return k.Value, nil
	}
	if k.upperBound() <= k.Best {
		return k.Value, nil // prune: cannot beat the inherited bound
	}
	if k.Index >= k.SpawnDepth {
		best := k.Best
		k.searchSequential(&best)
		if best < k.Value {
			best = k.Value
		}
		return best, nil
	}
	take := k
	take.Index++
	var futures []*satin.Future
	if k.Weight+k.Weights[k.Index] <= k.Capacity {
		with := take
		with.Weight += k.Weights[k.Index]
		with.Value += k.Values[k.Index]
		futures = append(futures, ctx.Spawn(with))
	}
	futures = append(futures, ctx.Spawn(take)) // skip the item
	if err := ctx.Sync(); err != nil {
		return nil, err
	}
	best := k.Value
	for _, f := range futures {
		if v := f.Int(); v > best {
			best = v
		}
	}
	return best, nil
}

// searchSequential explores the remaining decisions depth-first with
// a live local bound.
func (k Knapsack) searchSequential(best *int) {
	if k.Value > *best {
		*best = k.Value
	}
	if k.Index >= len(k.Weights) || k.upperBound() <= *best {
		return
	}
	if k.Weight+k.Weights[k.Index] <= k.Capacity {
		with := k
		with.Weight += k.Weights[k.Index]
		with.Value += k.Values[k.Index]
		with.Index++
		with.searchSequential(best)
	}
	skip := k
	skip.Index++
	skip.searchSequential(best)
}

// KnapsackDP is the dynamic-programming reference solution.
func KnapsackDP(weights, values []int, capacity int) int {
	dp := make([]int, capacity+1)
	for i := range weights {
		for c := capacity; c >= weights[i]; c-- {
			if v := dp[c-weights[i]] + values[i]; v > dp[c] {
				dp[c] = v
			}
		}
	}
	return dp[capacity]
}

func init() {
	satin.Register(Knapsack{})
}
