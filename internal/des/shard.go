package des

import (
	"fmt"
	"sort"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
)

// The simulator's mirror of the sharded coordinator tree (ISSUE 8):
// one coord.SubKernel per cluster ingests that cluster's reports and
// condenses each period into a ClusterSummary; the root consumes only
// summaries, so its per-tick cost is O(clusters) however many nodes the
// world holds. The message flow mirrors the real runtime — summaries
// and acks travel with network latency, the root pushes resets after
// acting, subs detect root death through missed acks and elect the
// lowest live cluster as successor.

// desSub is one cluster's sub-coordinator.
type desSub struct {
	cluster core.ClusterID
	kern    *coord.SubKernel
	crashed bool

	missed     int  // consecutive periods without an ack
	pendingAck bool // summary sent, ack not yet seen
	epoch      uint64
	req        coord.ReqState // cached root requirements (failover seed)
}

// desRoot is the root coordinator instance; a failover replaces it
// wholesale, which is what makes "the old root is dead" unambiguous in
// the delivery closures below.
type desRoot struct {
	host    core.ClusterID
	kern    *coord.RootKernel
	crashed bool
}

// sharded reports whether this run drives the sharded tree (then
// s.kern is nil and s.subs/s.root carry the coordination state).
func (s *Sim) sharded() bool { return s.kern == nil }

// subFor lazily creates the sub-coordinator of a cluster the first
// time a node of that cluster appears.
func (s *Sim) subFor(c core.ClusterID) *desSub {
	sub, ok := s.subs[c]
	if !ok {
		w := s.subWeights()
		sub = &desSub{
			cluster: c,
			kern:    coord.NewSubKernel(c, s.p.ProposalCap, w),
		}
		s.subs[c] = sub
	}
	return sub
}

// subWeights are the badness weights the sub-kernels rank their
// eviction proposals with — from whichever objective the run adapts
// under.
func (s *Sim) subWeights() core.BadnessWeights {
	switch {
	case s.p.Adapt != nil:
		return s.p.Adapt.Weights
	case s.p.StreamSLO != nil:
		return s.p.StreamSLO.Weights
	default:
		return core.DefaultConfig().Weights
	}
}

// subOrder returns the sub-coordinators' clusters in deterministic
// order.
func (s *Sim) subOrder() []core.ClusterID {
	out := make([]core.ClusterID, 0, len(s.subs))
	for c := range s.subs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// forgetNode routes a departure to whichever kernel holds the node's
// reports.
func (s *Sim) forgetNode(n *simNode) {
	if s.kern != nil {
		s.kern.Forget(n.id)
		return
	}
	if sub, ok := s.subs[n.cluster]; ok {
		sub.kern.Forget(n.id)
	}
}

// requirements returns the live coordinator's learned requirements.
func (s *Sim) requirements() *core.Requirements {
	if s.kern != nil {
		return s.kern.Requirements()
	}
	return s.root.kern.Requirements()
}

// syncProtected pushes the protected set to the live root kernel.
func (s *Sim) syncProtected() {
	if s.root == nil {
		return
	}
	if s.master != nil {
		s.root.kern.SetProtected(s.master.id)
	} else {
		s.root.kern.SetProtected()
	}
}

// deliverReport lands one node's report at its cluster's
// sub-coordinator (sharded mode's analogue of the flat kernel's
// Report). Reports sent while the sub is down are lost, exactly as
// messages to a crashed process are.
func (s *Sim) deliverReport(c core.ClusterID, rep metrics.Report) {
	if sub, ok := s.subs[c]; ok && !sub.crashed {
		sub.kern.Report(rep)
	}
}

// subsTick runs every sub-coordinator's period: summarize the cluster,
// send the summary to the root, count missed acks, and — when the root
// has been silent for FailoverAfter periods — elect a successor. One
// recurring event iterates all subs (the real subs tick independently;
// collapsing them keeps the event queue small at 10k nodes without
// changing what the root observes).
func (s *Sim) subsTick() {
	if s.done {
		return
	}
	defer func() {
		if !s.done {
			s.k.After(s.p.Mon.Period, s.subsTick)
		}
	}()
	// One pass over the live set gives every cluster's census.
	liveBy := make(map[core.ClusterID][]core.NodeID, len(s.subs))
	for _, n := range s.order {
		liveBy[n.cluster] = append(liveBy[n.cluster], n.id)
	}
	// Streaming runs: hand each cluster its local arrival/completion
	// partial; the anchor cluster (where the source emits) additionally
	// snapshots the global backlog. Partials addressed to a crashed sub
	// are lost, exactly as reports to a crashed process are.
	var streamParts map[core.ClusterID]core.StreamObs
	if s.stream != nil {
		streamParts = make(map[core.ClusterID]core.StreamObs, len(s.stream.obsBy)+1)
		for c, o := range s.stream.obsBy {
			streamParts[c] = *o
		}
		s.stream.obsBy = make(map[core.ClusterID]*core.StreamObs)
		anchor := s.coordClst
		if s.master != nil {
			anchor = s.master.cluster
		}
		p := streamParts[anchor]
		p.Backlog = s.stream.backlog()
		streamParts[anchor] = p
	}
	now := float64(s.k.Now())
	anyStarved := false
	for _, c := range s.subOrder() {
		sub := s.subs[c]
		if sub.crashed {
			continue
		}
		if part, ok := streamParts[c]; ok {
			sub.kern.ObserveStream(part)
		}
		if sub.pendingAck {
			// Last period's summary was never acknowledged.
			sub.missed++
			sub.pendingAck = false
		}
		sum := sub.kern.Summarize(now, liveBy[c])
		sum.Epoch = sub.epoch
		sum.Req = sub.req
		rt := s.root
		if rt == nil || rt.crashed {
			// Connection refused — the real wire layer fails the send
			// synchronously when the root endpoint is gone.
			sub.missed++
		} else {
			sub.pendingAck = true
			lat := s.net.Latency(c, rt.host)
			s.k.After(lat, func() {
				if s.done || rt != s.root || rt.crashed {
					return // the root died (or was replaced) in flight
				}
				rt.kern.Ingest(sum)
				// Ack even a stale-epoch summary: the ack's epoch is how
				// a restarted sub catches back up.
				epoch, req := rt.kern.ResetEpoch(), rt.kern.ReqState()
				s.k.After(lat, func() {
					if s.done || sub.crashed || rt != s.root {
						return
					}
					sub.pendingAck = false
					sub.missed = 0
					sub.req = req
					s.syncSubEpoch(sub, epoch)
				})
			})
		}
		if sub.missed >= s.p.FailoverAfter {
			anyStarved = true
		}
	}
	if anyStarved && (s.root == nil || s.root.crashed) {
		s.electRoot(liveBy)
	}
}

// syncSubEpoch adopts a newer root epoch at a sub: the root acted, so
// the sub's pending reports describe the pre-action world and are
// dropped — the distributed half of the flat kernel's post-action
// reset.
func (s *Sim) syncSubEpoch(sub *desSub, epoch uint64) {
	if epoch > sub.epoch {
		sub.epoch = epoch
		sub.kern.Reset()
	}
}

// electRoot deterministically promotes the sub-coordinator of the
// lowest live cluster to root. The successor seeds its kernel from the
// electing sub's cached requirements; the other subs' caches merge in
// with their next summaries (blacklists are monotone, so the union
// can only be complete or short-lived-incomplete, never wrong).
func (s *Sim) electRoot(liveBy map[core.ClusterID][]core.NodeID) {
	var winner *desSub
	for _, c := range s.subOrder() {
		sub := s.subs[c]
		if sub.crashed || len(liveBy[c]) == 0 {
			continue
		}
		winner = sub
		break
	}
	if winner == nil {
		return // nobody left to elect; a later join re-triggers
	}
	rk, err := coord.NewRoot(s.rootConfig(), &simActuator{s})
	if err != nil {
		panic(err) // config was validated at startup
	}
	rk.AdoptReqState(winner.req)
	rk.StartEpoch(winner.epoch)
	s.root = &desRoot{host: winner.cluster, kern: rk}
	s.coordClst = winner.cluster
	s.syncProtected()
	for _, c := range s.subOrder() {
		sub := s.subs[c]
		sub.missed = 0
		sub.pendingAck = false
	}
	s.annotate(fmt.Sprintf("root coordinator failover: cluster %s elected", winner.cluster))
}

// rootConfig is the kernel configuration both the initial root and any
// elected successor run.
func (s *Sim) rootConfig() coord.Config {
	cfg := coord.Config{
		Engine:              s.p.Adapt,
		MonitorOnly:         s.p.MonitorOnly,
		DisableBlacklist:    s.p.DisableBlacklist,
		Opportunistic:       s.p.Opportunistic,
		OpportunisticFactor: s.p.OpportunisticFactor,
	}
	if s.p.StreamSLO != nil {
		// Each root instance (initial or elected successor) gets a fresh
		// objective: StreamSLO carries hysteresis state that must not
		// outlive the kernel it advised.
		obj, err := core.NewStreamSLO(*s.p.StreamSLO)
		if err != nil {
			panic(err) // config was validated at startup
		}
		cfg.Objective = obj
	}
	return cfg
}

// rootTick is the sharded run's coordinator tick: consume the latest
// summaries, decide, and push the post-action reset down the tree.
// While the root is crashed the timer keeps firing but nothing
// happens — adaptation is paused until the subs elect a successor.
func (s *Sim) rootTick() {
	if s.done {
		return
	}
	defer func() {
		if !s.done {
			s.k.After(s.p.Mon.Period, s.rootTick)
		}
	}()
	rt := s.root
	if rt == nil || rt.crashed {
		return
	}
	liveBy := make(map[core.ClusterID]int)
	for _, n := range s.order {
		liveBy[n.cluster]++
	}
	liveClusters := make([]core.ClusterID, 0, len(liveBy))
	for c := range liveBy {
		liveClusters = append(liveClusters, c)
	}
	sort.Slice(liveClusters, func(i, j int) bool { return liveClusters[i] < liveClusters[j] })

	before := rt.kern.ResetEpoch()
	rec := rt.kern.Tick(float64(s.k.Now()), liveClusters, len(s.order))
	s.res.Periods = append(s.res.Periods, rec)
	if s.p.Observe != nil {
		s.p.Observe(rec, rt.kern.Requirements(), liveBy)
	}
	if after := rt.kern.ResetEpoch(); after != before {
		// The root acted: push the reset (and the fresh requirements
		// snapshot) to every sub so pre-action reports die everywhere.
		req := rt.kern.ReqState()
		for _, c := range s.subOrder() {
			sub := s.subs[c]
			lat := s.net.Latency(rt.host, c)
			s.k.After(lat, func() {
				if s.done || sub.crashed || rt != s.root {
					return
				}
				sub.req = req
				s.syncSubEpoch(sub, after)
			})
		}
	}
}

// crashRoot kills the root coordinator process. The host cluster's
// nodes keep computing — only coordination stops until failover.
func (s *Sim) crashRoot() {
	if s.root == nil || s.root.crashed {
		return
	}
	s.root.crashed = true
}

// crashSub kills one cluster's sub-coordinator; reports from that
// cluster are lost until the sub restarts after CrashDetect with empty
// state (it re-learns the epoch from the first ack).
func (s *Sim) crashSub(c core.ClusterID) {
	sub, ok := s.subs[c]
	if !ok || sub.crashed {
		return
	}
	sub.crashed = true
	s.k.After(s.p.CrashDetect, func() {
		if s.done {
			return
		}
		sub.kern = coord.NewSubKernel(c, s.p.ProposalCap, s.subWeights())
		sub.crashed = false
		sub.missed = 0
		sub.pendingAck = false
		sub.epoch = 0
		sub.req = coord.ReqState{}
	})
}
