//go:build !race

package des

// raceEnabled reports whether the race detector is compiled in; the
// 10k-node world test skips under it (the detector's ~10× slowdown
// turns a 4-minute run into an hour, and the simulator is
// single-goroutine — race coverage of the sharded protocol comes from
// the chaos corpus and the live adapt failover tests).
const raceEnabled = false
