package des

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	good := baseParams(5)
	good.Defaults()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Topo = topo.Topology{} },
		func(p *Params) { p.Spec = workload.Spec{} },
		func(p *Params) { p.Initial = nil },
		func(p *Params) { p.Initial = []Alloc{{Cluster: "ghost", Count: 3}} },
		func(p *Params) { p.Initial = []Alloc{{Cluster: "fs0", Count: 0}} },
		func(p *Params) { p.Initial = []Alloc{{Cluster: "fs0", Count: 1000}} },
		func(p *Params) {
			cfg := core.DefaultConfig()
			p.Adapt = &cfg // adaptation without monitoring
		},
		func(p *Params) {
			cfg := core.Config{EMin: 0.9, EMax: 0.1, ClusterDropInterComm: 0.2, MinNodes: 1, MaxGrowFactor: 1}
			p.Mon = DefaultMonitor()
			p.Adapt = &cfg
		},
	}
	for i, mutate := range cases {
		p := baseParams(5)
		p.Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestDefaultsFillZeroes(t *testing.T) {
	var p Params
	p.Defaults()
	if p.JoinDelay == 0 || p.CrashDetect == 0 || p.PollInterval == 0 ||
		p.MaxTime == 0 || p.Mon.Period == 0 || p.Mon.BenchWork == 0 || p.Mon.BenchBudget == 0 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() *Result {
		p := baseParams(8)
		p = adaptive(p)
		p.Initial = []Alloc{{Cluster: "fs0", Count: 8}}
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime || len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("same seed diverged: %v vs %v", a.Runtime, b.Runtime)
	}
	for i := range a.Iterations {
		if a.Iterations[i] != b.Iterations[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a.Iterations[i], b.Iterations[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p1 := baseParams(8)
	p2 := baseParams(8)
	p2.Seed = 999
	r1, err := Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Runtime == r2.Runtime {
		t.Error("different seeds produced byte-identical runtimes (suspicious)")
	}
}

func TestMaxTimeAborts(t *testing.T) {
	p := baseParams(1000) // would run ~11k virtual seconds
	p.MaxTime = 50
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run past MaxTime claims completion")
	}
	if len(res.Iterations) == 0 || len(res.Iterations) >= 1000 {
		t.Errorf("iterations = %d", len(res.Iterations))
	}
}

func TestMonitorOnlyBenchAccounting(t *testing.T) {
	p := baseParams(20)
	p.Mon = DefaultMonitor()
	cfg := core.DefaultConfig()
	p.Adapt = &cfg
	p.MonitorOnly = true
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BenchSec <= 0 {
		t.Error("monitor-only run recorded no benchmarking time")
	}
	if res.BenchOverhead() <= 0 || res.BenchOverhead() > 0.2 {
		t.Errorf("bench overhead = %v", res.BenchOverhead())
	}
	if res.FinalNodes != 36 {
		t.Errorf("monitor-only changed node count: %d", res.FinalNodes)
	}
	for _, pr := range res.Periods {
		if pr.Action != "" || pr.Added != 0 || pr.Removed != 0 {
			t.Errorf("monitor-only acted: %+v", pr)
		}
	}
}

func TestNodeSecondsAccounting(t *testing.T) {
	p := baseParams(10)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 36 * res.Runtime
	if res.NodeSeconds < want*0.99 || res.NodeSeconds > want*1.01 {
		t.Errorf("node-seconds = %v, want ~%v (36 nodes x runtime)", res.NodeSeconds, want)
	}
}

func TestInjectionTargetsSubset(t *testing.T) {
	p := baseParams(30)
	p = adaptive(p)
	p.MonitorOnly = true // observe without reacting
	p.Events = []Injection{{
		At: 10, Kind: InjSetLoad, Cluster: "fs1", Count: 3, Load: 50,
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// With 3 of 36 nodes nearly dead, capacity drops ~8%: iterations
	// slow but nowhere near the full-cluster case.
	slow := res.MeanIterDuration(10, len(res.Iterations))
	base := res.Iterations[0].Duration
	if slow < base {
		t.Logf("note: iterations did not slow (%.1f vs %.1f)", slow, base)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
}

func TestStealRandomPolicyRuns(t *testing.T) {
	p := baseParams(10)
	p.StealPolicy = StealRandom
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("random-stealing run incomplete")
	}
	// CRS should beat uniform random stealing across clusters.
	p2 := baseParams(10)
	crs, err := Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime < crs.Runtime*0.95 {
		t.Errorf("random stealing (%.0fs) substantially beat CRS (%.0fs)?", res.Runtime, crs.Runtime)
	}
}

func TestDisableBlacklistReAddsBadCluster(t *testing.T) {
	mk := func(disable bool) *Result {
		p := baseParams(60)
		p = adaptive(p)
		p.DisableBlacklist = disable
		p.Events = []Injection{{
			At: 1, Kind: InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3,
		}}
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := mk(false)
	without := mk(true)
	if len(with.BlacklistedClusters) == 0 {
		t.Error("blacklist run did not blacklist the bad cluster")
	}
	if len(without.BlacklistedClusters) != 0 {
		t.Error("DisableBlacklist still blacklisted")
	}
	t.Logf("with blacklist: %.0fs; without: %.0fs", with.Runtime, without.Runtime)
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Iterations: []IterRecord{
		{Duration: 10}, {Duration: 20}, {Duration: 30},
	}}
	if m := r.MeanIterDuration(0, 3); m != 20 {
		t.Errorf("mean = %v", m)
	}
	if m := r.MeanIterDuration(1, 100); m != 25 {
		t.Errorf("clamped mean = %v", m)
	}
	if m := r.MeanIterDuration(-5, 1); m != 10 {
		t.Errorf("negative-from mean = %v", m)
	}
	if m := r.MeanIterDuration(2, 2); m != 0 {
		t.Errorf("empty range mean = %v", m)
	}
	if m := r.MaxIterDuration(0, 3); m != 30 {
		t.Errorf("max = %v", m)
	}
	if (&Result{}).BenchOverhead() != 0 {
		t.Error("empty result bench overhead")
	}
}

// The crash of the master mid-run: a new master takes over and the
// run still completes (Satin's fault tolerance).
func TestMasterCrashRecovered(t *testing.T) {
	p := baseParams(40)
	p.Events = []Injection{{
		At: 100, Kind: InjCrash, Cluster: "fs0", Count: 1, // fs0/00 is the master
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run with crashed master did not complete: %d iterations", len(res.Iterations))
	}
	if res.FinalNodes != 35 {
		t.Errorf("final nodes = %d, want 35", res.FinalNodes)
	}
}

// Scenario 5's signature: after the bad cluster goes, WAE sits between
// the thresholds, so the lightly loaded slow nodes are kept — the
// situation the paper uses to motivate opportunistic migration.
func TestScenario5NoActionBetweenThresholds(t *testing.T) {
	p := baseParams(60)
	p = adaptive(p)
	p.Events = []Injection{
		{At: 1, Kind: InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3},
		{At: 1, Kind: InjSetLoad, Cluster: "fs1", Count: 6, Load: 2},
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// After the cluster removal settles, later periods should be
	// mostly no-action with WAE inside the band.
	inBand := 0
	late := res.Periods[len(res.Periods)/2:]
	for _, pr := range late {
		if pr.Action == "none" && pr.WAE >= 0.28 && pr.WAE <= 0.52 {
			inBand++
		}
	}
	if inBand < len(late)/2 {
		for _, pr := range res.Periods {
			t.Logf("t=%.0f WAE=%.3f action=%s", pr.Time, pr.WAE, pr.Action)
		}
		t.Errorf("expected a settled WAE between thresholds; %d/%d periods in band", inBand, len(late))
	}
}

// Work conservation: without faults, the busy time booked across all
// nodes equals the work the application defines — splitting conserves
// work exactly and no leaf runs twice.
func TestWorkConservation(t *testing.T) {
	p := baseParams(10)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * (p.Spec.WorkPerIteration + p.Spec.SequentialPerIteration)
	if diff := res.BusySec - want; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("busy = %v, want exactly %v (no faults, speed 1)", res.BusySec, want)
	}
}

// With crashes, busy time can only exceed the nominal work (orphaned
// leaves re-execute) — never fall short.
func TestWorkConservationUnderCrash(t *testing.T) {
	p := baseParams(20)
	p.Events = []Injection{{At: 60, Kind: InjCrash, Cluster: "fs1", Count: 6}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	want := 20 * (p.Spec.WorkPerIteration + p.Spec.SequentialPerIteration)
	if res.BusySec < want-1e-6 {
		t.Fatalf("busy = %v < nominal %v: work was lost", res.BusySec, want)
	}
}

// Iteration starts are contiguous: each iteration begins exactly when
// the previous ended, and durations are positive.
func TestIterationTimelineContiguous(t *testing.T) {
	p := baseParams(12)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := 0.0
	for i, it := range res.Iterations {
		if it.Duration <= 0 {
			t.Fatalf("iteration %d duration %v", i, it.Duration)
		}
		if it.Start < prevEnd-1e-9 || it.Start > prevEnd+1e-9 {
			t.Fatalf("iteration %d starts at %v, previous ended at %v", i, it.Start, prevEnd)
		}
		prevEnd = it.Start + it.Duration
	}
	if res.Runtime != prevEnd {
		t.Fatalf("runtime %v != last iteration end %v", res.Runtime, prevEnd)
	}
}
