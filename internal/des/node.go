package des

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/steal"
	"repro/internal/vtime"
)

// nodeIdle is the node's dispatch loop: run a due benchmark, else pop
// the newest task off the own end of the deque (splitting it down to a
// leaf, which fills the deque with the subtree's other halves — the
// work-first execution order of Satin/Cilk), else go stealing.
func (s *Sim) nodeIdle(n *simNode) {
	if s.done || n.gone() || !n.joined || n.busy() ||
		(s.phase != phaseCompute && s.phase != phaseStream) {
		return
	}
	if n.benchPending {
		s.startBench(n)
		return
	}
	if s.phase == phaseStream {
		s.streamDispatch(n)
		return
	}
	if len(n.deque) > 0 {
		t := n.deque[len(n.deque)-1]
		n.deque = n.deque[:len(n.deque)-1]
		// Split down to a leaf: each split pushes the sibling subtree
		// onto the steal side of the computation (the front stays the
		// oldest = biggest task, which is what thieves take).
		for s.p.Spec.ShouldSplit(t.work) {
			a, b := s.p.Spec.Split(t.work, s.k.Rand())
			n.deque = append(n.deque, simTask{work: b})
			s.outstanding++
			t = simTask{work: a}
		}
		s.execute(n, t)
		return
	}
	s.tryStealing(n)
}

// execute runs a leaf to completion; leaves are not preemptible, which
// is why a big leaf on a heavily loaded node produces the long
// end-of-iteration tails of the paper's scenario 3.
func (s *Sim) execute(n *simNode, t simTask) {
	dur := t.work / n.effSpeed()
	n.curWork = t.work
	n.busyUntil = s.k.Now() + vtime.Time(dur)
	n.curDone = s.k.After(dur, func() {
		n.curDone = nil
		n.curWork = 0
		n.lastWorkAt = s.k.Now()
		s.addTime(n, metrics.Busy, dur)
		s.outstanding--
		if s.outstanding == 0 && s.phase == phaseCompute {
			s.endIteration()
			return
		}
		s.nodeIdle(n)
	})
}

// tryStealing drives the shared steal-policy kernel (internal/steal):
// a membership snapshot goes in, victim directives come out. Under
// CRS one asynchronous wide-area steal stays outstanding while the
// node issues synchronous local steals, hiding WAN latency behind LAN
// attempts; the StealRandom ablation picks victims uniformly and pays
// every WAN round trip synchronously.
func (s *Sim) tryStealing(n *simNode) {
	if s.done || n.gone() || !n.joined || n.busy() || s.phase != phaseCompute || len(n.deque) > 0 {
		return
	}
	d := n.eng.NextView(float64(s.k.Now()), s.stealSnapshot())
	if d.HasAsync {
		s.sendSteal(n, s.nodes[d.Async.ID], true, true)
	}
	if d.HasSync {
		v := s.nodes[d.Sync.ID]
		s.sendSteal(n, v, v.cluster != n.cluster, false)
	} else if !d.HasAsync && !n.eng.Outstanding() {
		// Nobody to steal from at all: back off and retry.
		s.scheduleRetry(n)
	}
}

// stealSnapshot returns the shared pre-indexed membership view the
// steal engines pick victims from, rebuilt only when membership
// changed (NextView excludes the caller itself, so one view serves
// every thief). Rebuilding a slice per attempt was the simulator's
// dominant cost at 10k nodes; after sharing the slice, the O(nodes)
// partition inside Engine.Next took its place — the View's indexed
// draws remove that too.
func (s *Sim) stealSnapshot() *steal.View {
	if s.membersDirty {
		s.stealMembers = s.stealMembers[:0]
		for _, v := range s.order {
			if v.joined {
				s.stealMembers = append(s.stealMembers, steal.Member{ID: v.id, Cluster: v.cluster})
			}
		}
		s.stealView.Rebuild(s.stealMembers)
		s.membersDirty = false
	}
	return s.stealView
}

// scheduleRetry arms an exponential-backoff re-attempt so an idle node
// keeps probing for work without flooding the event queue.
func (s *Sim) scheduleRetry(n *simNode) {
	if n.retry != nil {
		return
	}
	n.retry = s.k.After(n.eng.BackoffSec(), func() {
		n.retry = nil
		s.nodeIdle(n)
	})
}

// sendSteal delivers a steal request from thief n to victim v. The
// request is a small control message (latency only); the victim
// serialises request handling (a loaded victim's runtime thread runs
// rarely, so its handling delay scales with the competing load); a
// stolen job's payload then travels back through the real links.
func (s *Sim) sendSteal(n, v *simNode, inter, wanSlot bool) {
	lat := s.net.Latency(n.cluster, v.cluster)
	issuedAt := s.k.Now()
	s.k.After(lat, func() {
		if s.done {
			return
		}
		if v.gone() || !v.joined {
			// Connection refused — fast failure back to the thief.
			s.k.After(lat, func() { s.stealReply(n, nil, 2*lat, v.cluster, 0, 0, inter, wanSlot) })
			return
		}
		// The victim handles the request at the next poll point: after
		// its current leaf or benchmark (the runtime only polls between
		// tasks) and after previously queued requests, with a handling
		// delay that competing load stretches (a loaded machine's
		// runtime thread is scheduled rarely).
		handleAt := s.k.Now()
		if v.stealFree > handleAt {
			handleAt = v.stealFree
		}
		if v.busyUntil > handleAt {
			handleAt = v.busyUntil
		}
		v.stealFree = handleAt + vtime.Time(s.p.PollInterval*(1+v.load))
		s.k.At(v.stealFree, func() {
			if s.done {
				return
			}
			var stolen *simTask
			if !v.gone() && s.phase == phaseCompute && len(v.deque) > 0 {
				t := v.deque[0] // steal the oldest = biggest subtree
				v.deque = v.deque[1:]
				stolen = &t
			}
			if stolen == nil {
				s.k.After(lat, func() { s.stealReply(n, nil, 2*lat, v.cluster, 0, 0, inter, wanSlot) })
				return
			}
			handover := s.k.Now()
			// The job carries its data: a big subtree entering a
			// badly connected cluster drags its body share through
			// the thin uplink.
			jobBytes := s.p.Spec.JobBytes(stolen.work)
			var deliverAt vtime.Time
			if inter {
				deliverAt = s.net.Inter(handover, v.cluster, n.cluster, jobBytes)
			} else {
				deliverAt = s.net.Intra(handover, v.cluster, jobBytes)
			}
			// Only genuine network time counts as communication: the
			// request latency plus the reply's transfer time (including
			// any queueing on a congested uplink). Time spent waiting
			// for the victim's poll point is idle time at the thief.
			wireSec := lat + float64(deliverAt-handover)
			s.k.At(deliverAt, func() {
				commSec := wireSec
				if wanSlot && n.lastWorkAt > issuedAt {
					// The asynchronous wide-area steal overlapped with
					// local work — which is CRS's whole point — so the
					// transfer cost the thief only the round trips, not
					// the wire time. A starved thief (no work completed
					// since issuing) truly waited on the WAN and is
					// charged in full. The wire time still feeds the
					// pair-bandwidth estimate either way.
					commSec = 2 * lat
				}
				s.stealReply(n, stolen, commSec, v.cluster, wireSec, jobBytes, inter, wanSlot)
			})
		})
	})
}

// stealReply lands at the thief: either a job or a failure. commSec is
// the attempt's network time, booked as intra- or inter-cluster
// communication — the signal the coordinator's badness formula keys on
// (the rest of the attempt is implicit idle time).
func (s *Sim) stealReply(n *simNode, t *simTask, commSec float64, peer core.ClusterID, wireSec, wireBytes float64, inter, wanSlot bool) {
	if wanSlot {
		n.eng.AsyncDone(t != nil)
	} else {
		n.eng.SyncDone(t != nil)
	}
	if s.done {
		if t != nil {
			s.requeue(*t)
		}
		return
	}
	if n.gone() {
		if t != nil {
			// The thief left while the job was in flight: the job is
			// orphaned and gets recomputed via the master.
			s.requeue(*t)
		}
		return
	}
	bucket := metrics.Intra
	if inter {
		bucket = metrics.Inter
	}
	s.addTime(n, bucket, commSec)
	if t == nil {
		if !n.busy() && len(n.deque) == 0 && s.phase == phaseCompute {
			s.scheduleRetry(n)
		}
		return
	}
	if inter {
		n.acc.AddInterBytes(wireBytes)
		if wireSec > 0 && wireBytes > 0 {
			// One observed data transfer with the victim's cluster —
			// the pair-bandwidth estimation the coordinator's cluster
			// eviction rule runs on.
			n.acc.AddLinkSample(peer, wireSec, wireBytes)
		}
	}
	if s.phase != phaseCompute {
		// Iteration ended while the job was in flight — cannot happen
		// for live jobs (they count as outstanding), but guard anyway.
		s.requeue(*t)
		return
	}
	n.deque = append(n.deque, *t)
	s.nodeIdle(n)
}

// ---- benchmarking and monitoring ----

// startBench runs the application-specific speed benchmark: the
// application itself with a small problem size (BenchWork). Its
// duration on the current effective speed *is* the measurement.
func (s *Sim) startBench(n *simNode) {
	n.benchPending = false
	n.benching = true
	dur := s.p.Mon.BenchWork / n.effSpeed()
	n.busyUntil = s.k.Now() + vtime.Time(dur)
	s.k.After(dur, func() {
		n.benching = false
		if n.gone() || s.done {
			return
		}
		s.addTime(n, metrics.Bench, dur)
		noise := 1 + s.p.Mon.SpeedNoise*(2*s.k.Rand().Float64()-1)
		n.acc.SetSpeed(n.effSpeed() * noise)
		n.loadAtBench = n.load
		// Re-run at the frequency the overhead budget allows: a run of
		// dur seconds every dur/budget seconds costs exactly budget.
		interval := dur / s.p.Mon.BenchBudget
		var rearm func()
		rearm = func() {
			n.benchTimer = s.k.After(interval, func() {
				n.benchTimer = nil
				if n.gone() || s.done {
					return
				}
				if s.p.Mon.LoadAware && n.load == n.loadAtBench {
					// Load-aware optimisation (§3.2): the OS-level load
					// did not change, so the speed cannot have either —
					// skip the run and keep the previous measurement.
					rearm()
					return
				}
				n.benchPending = true
				if !n.busy() && (s.phase == phaseCompute || s.phase == phaseStream) {
					s.nodeIdle(n)
				}
			})
		}
		rearm()
		if s.phase == phaseSeq && n == s.master {
			s.startSeq()
			return
		}
		s.nodeIdle(n)
	})
}

// scheduleMonitor arms a node's periodic statistics snapshot. Each node
// keeps its own period phase (clocks are not synchronised with the
// coordinator, as in the paper); reports travel to the coordinator
// with normal message latency.
func (s *Sim) scheduleMonitor(n *simNode) {
	n.monTimer = s.k.After(s.p.Mon.Period, func() {
		n.monTimer = nil
		if n.gone() || s.done {
			return
		}
		rep := n.acc.Snapshot(float64(s.k.Now()))
		if s.sharded() {
			// Reports stay inside the cluster: the sub-coordinator is
			// co-located, one LAN latency away.
			lat := s.net.Latency(n.cluster, n.cluster)
			cluster := n.cluster
			s.k.After(lat, func() {
				if s.done {
					return
				}
				if _, live := s.nodes[n.id]; live {
					s.deliverReport(cluster, rep)
				}
			})
		} else {
			lat := s.net.Latency(n.cluster, s.coordClst)
			s.k.After(lat, func() {
				if s.done {
					return
				}
				if _, live := s.nodes[n.id]; live {
					s.kern.Report(rep)
				}
			})
		}
		s.scheduleMonitor(n)
	})
}
