package des

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/workload"
)

// streamParams is a well-provisioned streaming run: offered load 6
// speed-seconds/s on 10 speed-1 nodes, no monitoring.
func streamParams(items int) Params {
	spec := workload.Pipeline3(4, items)
	return Params{
		Topo:    topo.DAS2(),
		Stream:  &spec,
		Seed:    1,
		Initial: []Alloc{{Cluster: "fs0", Count: 10}},
	}
}

// streamAdaptive enables the latency-SLO objective with short periods
// so the coordinator gets enough decisions inside a test-sized run.
func streamAdaptive(p Params) Params {
	p.Mon = DefaultMonitor()
	p.Mon.Period = 30
	cfg := core.DefaultStreamSLO(p.Stream.TargetLatency)
	p.StreamSLO = &cfg
	return p
}

func TestStreamValidate(t *testing.T) {
	good := streamAdaptive(streamParams(100))
	good.Defaults()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { // two objectives at once
			cfg := core.DefaultConfig()
			p.Adapt = &cfg
		},
		func(p *Params) { p.Stream = nil }, // SLO without a stream
		func(p *Params) { p.Mon.Enabled = false },
		func(p *Params) { p.StreamSLO.HighRatio = -1 },
		func(p *Params) { p.Stream.RateHz = 0 },
	}
	for i, mutate := range cases {
		p := streamAdaptive(streamParams(100))
		p.Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid streaming params accepted", i)
		}
	}
}

// A well-provisioned pipeline completes every item comfortably inside
// the latency target without any coordinator at all.
func TestStreamRunCompletes(t *testing.T) {
	p := streamParams(200)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("streaming run did not complete: %+v", res)
	}
	if res.StreamCompleted != 200 {
		t.Fatalf("completed %d of 200 items", res.StreamCompleted)
	}
	if m := res.MeanStreamLatency(); m <= 0 || m > p.Stream.TargetLatency {
		t.Fatalf("mean latency %.2fs outside (0, %.0fs] on an over-provisioned run", m, p.Stream.TargetLatency)
	}
	if len(res.Iterations) != 0 {
		t.Fatalf("streaming run recorded %d batch iterations", len(res.Iterations))
	}
}

func TestStreamDeterminismSameSeed(t *testing.T) {
	run := func() *Result {
		p := streamAdaptive(streamParams(600))
		p.Initial = []Alloc{{Cluster: "fs0", Count: 4}}
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime || a.StreamLatencySum != b.StreamLatencySum ||
		len(a.Periods) != len(b.Periods) || a.PeakNodes != b.PeakNodes {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// Under-provisioned open-loop pipeline: 4 speed-1 nodes against an
// offered load of 6 speed-seconds/s. Without adaptation the backlog
// (and latency) grows for the whole emission window; with the SLO
// objective the coordinator must grow the allocation and keep latency
// near the target.
func TestStreamAdaptsUnderOverload(t *testing.T) {
	base := streamParams(2000)
	base.Initial = []Alloc{{Cluster: "fs0", Count: 4}}

	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(streamAdaptive(base))
	if err != nil {
		t.Fatal(err)
	}
	if !static.Completed || !adaptive.Completed {
		t.Fatalf("runs did not complete: static %v adaptive %v", static.Completed, adaptive.Completed)
	}
	if adaptive.PeakNodes <= 4 {
		t.Fatalf("SLO objective never grew past the starved allocation (peak %d)", adaptive.PeakNodes)
	}
	if am, sm := adaptive.MeanStreamLatency(), static.MeanStreamLatency(); am >= sm/2 {
		t.Fatalf("adaptation did not help: adaptive mean latency %.1fs vs static %.1fs", am, sm)
	}
	grew := false
	for _, rec := range adaptive.Periods {
		if rec.Action == "add" && rec.Added > 0 {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatalf("no grow decision in the period log: %+v", adaptive.Periods)
	}
}

// The same overload scenario through the sharded coordinator tree:
// stream partials ride the ClusterSummary wire, the root judges them.
func TestStreamShardedAdapts(t *testing.T) {
	p := streamAdaptive(streamParams(2000))
	p.Initial = []Alloc{{Cluster: "fs0", Count: 4}}
	p.Sharded = true
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sharded streaming run did not complete: %+v", res)
	}
	if res.PeakNodes <= 4 {
		t.Fatalf("sharded SLO objective never grew (peak %d)", res.PeakNodes)
	}
	if res.StreamCompleted != 2000 {
		t.Fatalf("completed %d of 2000 items", res.StreamCompleted)
	}
}

// Crashing nodes mid-stream loses no items: in-service items reappear
// at their stage head after detection, paying the fault as latency.
func TestStreamSurvivesCrashes(t *testing.T) {
	p := streamAdaptive(streamParams(800))
	p.Events = []Injection{
		{At: 60, Kind: InjCrash, Cluster: "fs0", Count: 3},
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not survive the crash: %+v", res)
	}
	if res.StreamCompleted != 800 {
		t.Fatalf("items lost to the crash: completed %d of 800", res.StreamCompleted)
	}
}

// A graceful shrink (coordinator eviction) must also preserve every
// item: calm periods on an over-provisioned run trigger releases.
func TestStreamShrinksWhenCalm(t *testing.T) {
	p := streamAdaptive(streamParams(2400))
	p.Initial = []Alloc{{Cluster: "fs0", Count: 24}} // 4x the demand
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.StreamCompleted != 2400 {
		t.Fatalf("run incomplete: %+v", res)
	}
	if res.FinalNodes >= 24 {
		t.Fatalf("SLO objective never released idle capacity (final %d)", res.FinalNodes)
	}
}
