// Package des is the discrete-event grid simulator that stands in for
// the paper's testbed: DAS-2 hardware, the Satin divide-and-conquer
// runtime with cluster-aware random work stealing, the Ibis monitoring
// hooks, and the Zorilla scheduler. It executes an iterative
// divide-and-conquer workload (internal/workload) on a simulated
// heterogeneous grid (internal/topo + internal/netmodel), collects the
// per-period statistics of internal/metrics, and optionally runs the
// paper's adaptation coordinator (internal/core) against them.
//
// Everything runs in virtual time (internal/vtime), so the scenarios —
// hours of grid time — execute deterministically in milliseconds.
package des

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/steal"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Alloc is part of an initial allocation: Count nodes of one cluster.
type Alloc struct {
	Cluster core.ClusterID
	Count   int
}

// MonitorParams configures application monitoring and the
// application-specific speed benchmark.
type MonitorParams struct {
	// Enabled turns on statistics collection and benchmarking. The
	// paper's "runtime 1" baseline has it off; "runtime 2" (adaptive)
	// and "runtime 3" (monitoring only) have it on.
	Enabled bool
	// Period is the monitoring period in seconds (paper: 180).
	Period float64
	// BenchWork is the work of one benchmark run in speed-seconds: the
	// application itself with a small problem size.
	BenchWork float64
	// BenchBudget is the maximal fraction of a node's time the
	// benchmark may consume; it sets the re-run frequency.
	BenchBudget float64
	// SpeedNoise is the relative measurement error (±fraction).
	SpeedNoise float64
	// LoadAware re-runs the benchmark only when the processor's load
	// changed since the last run — the paper's §3.2 optimisation that
	// "would reduce the benchmarking overhead to almost zero since the
	// processor load is not changing".
	LoadAware bool
}

// DefaultMonitor mirrors the paper's setup: 3-minute periods and a
// benchmark (~2 speed-seconds) budgeted at 3% overhead, i.e. roughly
// 2–3 runs per monitoring period.
func DefaultMonitor() MonitorParams {
	return MonitorParams{
		Enabled:     true,
		Period:      180,
		BenchWork:   2.0,
		BenchBudget: 0.03,
		SpeedNoise:  0.02,
	}
}

// InjKind enumerates scenario injections.
type InjKind int

const (
	// InjSetLoad puts a competing CPU load on nodes: effective speed
	// becomes base/(1+Load) and message handling slows accordingly.
	InjSetLoad InjKind = iota
	// InjShapeUplink changes a cluster's uplink bandwidth (the paper's
	// traffic-shaping experiment).
	InjShapeUplink
	// InjCrash makes nodes fail abruptly: their queued and running
	// jobs are recomputed elsewhere after the fault is detected.
	InjCrash
	// InjCrashRoot kills the root coordinator (sharded runs only):
	// adaptation pauses until the sub-coordinators detect the silence
	// and elect a successor.
	InjCrashRoot
	// InjCrashSub kills one cluster's sub-coordinator (sharded runs
	// only); it restarts empty after CrashDetect and re-learns the
	// reset epoch from the root's next ack.
	InjCrashSub
)

// Injection is a scheduled disturbance of the environment.
type Injection struct {
	At    float64
	Kind  InjKind
	Label string // annotation for the figures

	Cluster core.ClusterID
	// Count limits how many of the cluster's live nodes are affected
	// (0 = all of them).
	Count int

	Load      float64 // InjSetLoad: competing load factor (0 clears it)
	Bandwidth float64 // InjShapeUplink: new uplink capacity, bytes/s
}

// Params configures one simulated run.
type Params struct {
	Topo topo.Topology
	Spec workload.Spec
	Seed int64

	// Stream, when set, replaces the iterative divide-and-conquer
	// workload with an open-loop streaming pipeline: Spec is ignored and
	// the run ends when every item has left the last stage. Streaming
	// runs adapt against the latency SLO (StreamSLO), not the WAE band.
	Stream *workload.StreamSpec

	// StreamSLO enables the adaptation coordinator with the streaming
	// latency objective (core.StreamSLO). Mutually exclusive with Adapt:
	// a run has exactly one objective.
	StreamSLO *core.StreamSLOConfig

	// Initial is the user-chosen starting allocation.
	Initial []Alloc

	Mon MonitorParams

	// Adapt enables the adaptation coordinator with the given
	// configuration. nil = non-adaptive run. With MonitorOnly set the
	// coordinator computes everything but never acts (the paper's
	// "runtime 3", used to price monitoring and benchmarking).
	Adapt       *core.Config
	MonitorOnly bool

	Events []Injection

	// JoinDelay is the seconds between the scheduler granting a node
	// and the node taking part (deployment plus state transfer setup).
	JoinDelay float64
	// CrashDetect is the failure-detection latency before a crashed
	// node's work is recomputed elsewhere.
	CrashDetect float64
	// PollInterval is the victim-side delay to handle one steal
	// request; competing load multiplies it (a loaded machine's runtime
	// thread is scheduled rarely).
	PollInterval float64
	// MaxTime aborts runs that stopped making progress (safety net).
	MaxTime float64

	// StealPolicy selects the load-balancing algorithm (ablation).
	StealPolicy StealPolicy

	// DisableBlacklist lets the scheduler hand back resources the
	// coordinator removed (ablation: without blacklisting, a persistent
	// bad link causes remove/re-add oscillation).
	DisableBlacklist bool

	// Opportunistic enables opportunistic migration — the paper's main
	// future-work item: even when WAE sits between the thresholds, the
	// coordinator asks the scheduler whether clearly faster processors
	// are available and adds them; the ordinary loop then sheds the
	// slower nodes. Requires a scheduler that can rank idle resources
	// by application-specific speed (sched.Pool.BestAvailable).
	Opportunistic bool

	// OpportunisticFactor is how much faster an available cluster must
	// be than the slowest live node to trigger a migration (default
	// 1.5).
	OpportunisticFactor float64

	// Sharded runs the hierarchical coordinator tree instead of the
	// flat kernel: one sub-coordinator per cluster aggregates its
	// cluster's reports into a ClusterSummary, and the root tick costs
	// O(clusters) however many nodes the world holds.
	Sharded bool
	// ProposalCap bounds the eviction candidates each ClusterSummary
	// carries (0 = all reporting nodes, which keeps flat/sharded
	// decision parity exact on small worlds).
	ProposalCap int
	// FailoverAfter is how many consecutive unacknowledged summary
	// periods a sub-coordinator tolerates before electing a new root
	// (default 2).
	FailoverAfter int

	// Observe, when set, is called after every coordinator tick with
	// the period record, the learned requirements, and the per-cluster
	// live-node counts at that instant. The chaos harness uses it to
	// assert cross-runtime invariants (monotone blacklists, no
	// re-provisioning of evicted clusters) over the same unified log
	// the real runtime emits. Purely observational: the callback must
	// not mutate the simulation.
	Observe func(rec PeriodRecord, reqs *core.Requirements, perCluster map[core.ClusterID]int)
}

// StealPolicy is the work-stealing victim-selection algorithm. The
// policy itself lives in internal/steal — one kernel drives both this
// simulator and the live satin runtime.
type StealPolicy = steal.Policy

const (
	// StealCRS is cluster-aware random stealing: one asynchronous
	// wide-area steal outstanding while local steals run — Satin's
	// algorithm, the default.
	StealCRS = steal.CRS
	// StealRandom picks victims uniformly from all nodes and steals
	// synchronously, paying the WAN round trip in the idle path — the
	// baseline CRS was invented to beat.
	StealRandom = steal.Random
)

// Defaults fills zero fields with sensible values.
func (p *Params) Defaults() {
	if p.JoinDelay == 0 {
		p.JoinDelay = 5
	}
	if p.OpportunisticFactor == 0 {
		p.OpportunisticFactor = 1.5
	}
	if p.CrashDetect == 0 {
		p.CrashDetect = 10
	}
	if p.PollInterval == 0 {
		p.PollInterval = 0.002
	}
	if p.MaxTime == 0 {
		p.MaxTime = 200000
	}
	if p.Mon.Period == 0 {
		p.Mon.Period = 180
	}
	if p.Mon.BenchWork == 0 {
		p.Mon.BenchWork = 2
	}
	if p.Mon.BenchBudget == 0 {
		p.Mon.BenchBudget = 0.03
	}
	if p.FailoverAfter == 0 {
		p.FailoverAfter = 2
	}
}

// Validate checks the run is well-formed.
func (p *Params) Validate() error {
	if err := p.Topo.Validate(); err != nil {
		return err
	}
	if p.Stream != nil {
		if err := p.Stream.Validate(); err != nil {
			return err
		}
	} else if err := p.Spec.Validate(); err != nil {
		return err
	}
	if len(p.Initial) == 0 {
		return fmt.Errorf("des: empty initial allocation")
	}
	total := 0
	for _, a := range p.Initial {
		c, ok := p.Topo.Cluster(a.Cluster)
		if !ok {
			return fmt.Errorf("des: initial allocation names unknown cluster %s", a.Cluster)
		}
		if a.Count <= 0 || a.Count > c.Nodes {
			return fmt.Errorf("des: initial allocation of %d nodes in cluster %s (has %d)",
				a.Count, a.Cluster, c.Nodes)
		}
		total += a.Count
	}
	if total == 0 {
		return fmt.Errorf("des: zero initial nodes")
	}
	if p.Adapt != nil {
		if err := p.Adapt.Validate(); err != nil {
			return err
		}
		if !p.Mon.Enabled {
			return fmt.Errorf("des: adaptation requires monitoring to be enabled")
		}
	}
	if p.StreamSLO != nil {
		if p.Adapt != nil {
			return fmt.Errorf("des: Adapt and StreamSLO are mutually exclusive — a run has one objective")
		}
		if p.Stream == nil {
			return fmt.Errorf("des: StreamSLO set without a streaming workload")
		}
		if err := p.StreamSLO.Validate(); err != nil {
			return err
		}
		if !p.Mon.Enabled {
			return fmt.Errorf("des: adaptation requires monitoring to be enabled")
		}
	}
	return nil
}

// IterRecord is one application iteration in the result series — the
// unit the paper's figures 3–7 plot.
type IterRecord struct {
	Index    int
	Start    float64
	Duration float64
	Nodes    int // live nodes when the iteration completed
}

// PeriodRecord is one coordinator tick — the unified record emitted by
// the shared adaptation kernel (the real runtime logs the same type).
type PeriodRecord = coord.PeriodRecord

// Annotation marks a scenario event on the time axis.
type Annotation = coord.Annotation

// Result is everything a run produces.
type Result struct {
	Completed bool
	Runtime   float64 // time the last iteration finished

	Iterations  []IterRecord
	Periods     []PeriodRecord
	Annotations []Annotation

	// Aggregate node-time accounting across the whole run (seconds).
	BusySec, IdleSec, IntraSec, InterSec, BenchSec float64

	// NodeSeconds is the integral of live nodes over time — the grid
	// capacity the run consumed. The varying-parallelism scenario's win
	// is here: adaptation releases capacity the application cannot use.
	NodeSeconds float64

	// FinalNodes is the live node count at completion.
	FinalNodes int

	// PeakNodes is the maximum concurrently live node count.
	PeakNodes int

	// Learned requirements (adaptive runs).
	MinBandwidth        float64
	BlacklistedClusters []core.ClusterID

	// UsedClusters lists every cluster that hosted a participant at any
	// point of the run, sorted.
	UsedClusters []core.ClusterID

	// Streaming-run figures of merit (zero for batch runs).
	StreamCompleted  int     // items that left the last stage
	StreamLatencySum float64 // summed end-to-end latency, seconds
	StreamMaxLatency float64 // worst end-to-end latency, seconds
}

// MeanStreamLatency is the average end-to-end item latency of a
// streaming run, in seconds.
func (r *Result) MeanStreamLatency() float64 {
	if r.StreamCompleted == 0 {
		return 0
	}
	return r.StreamLatencySum / float64(r.StreamCompleted)
}

// MeanIterDuration averages iteration durations over [from, to).
func (r *Result) MeanIterDuration(from, to int) float64 {
	if to > len(r.Iterations) {
		to = len(r.Iterations)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	for _, it := range r.Iterations[from:to] {
		sum += it.Duration
	}
	return sum / float64(to-from)
}

// MaxIterDuration returns the longest iteration in [from, to).
func (r *Result) MaxIterDuration(from, to int) float64 {
	if to > len(r.Iterations) {
		to = len(r.Iterations)
	}
	max := 0.0
	for i := from; i >= 0 && i < to; i++ {
		if d := r.Iterations[i].Duration; d > max {
			max = d
		}
	}
	return max
}

// BenchOverhead is the fraction of all node time spent benchmarking —
// the adaptivity overhead scenario 1 measures.
func (r *Result) BenchOverhead() float64 {
	total := r.BusySec + r.IdleSec + r.IntraSec + r.InterSec + r.BenchSec
	if total == 0 {
		return 0
	}
	return r.BenchSec / total
}
