package des

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func adaptive(p Params) Params {
	p.Mon = DefaultMonitor()
	cfg := core.DefaultConfig()
	p.Adapt = &cfg
	return p
}

func annotations(res *Result) string {
	var sb strings.Builder
	for _, a := range res.Annotations {
		sb.WriteString(a.Label)
		sb.WriteString("; ")
	}
	return sb.String()
}

// Scenario 2 dynamics: started on far too few nodes, the adaptive run
// must grow towards the efficient allocation and speed iterations up.
func TestScenarioExpandFromTooFewNodes(t *testing.T) {
	p := baseParams(60)
	p.Initial = []Alloc{{Cluster: "fs0", Count: 8}}
	p = adaptive(p)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("did not complete; iters=%d", len(res.Iterations))
	}
	for _, pr := range res.Periods {
		t.Logf("t=%.0f WAE=%.3f nodes=%d action=%s added=%d removed=%d",
			pr.Time, pr.WAE, pr.Nodes, pr.Action, pr.Added, pr.Removed)
	}
	first := res.MeanIterDuration(0, 5)
	last := res.MeanIterDuration(len(res.Iterations)-5, len(res.Iterations))
	t.Logf("first5=%.1fs last5=%.1fs final=%d peak=%d runtime=%.0f",
		first, last, res.FinalNodes, res.PeakNodes, res.Runtime)
	if res.FinalNodes < 24 {
		t.Errorf("expected expansion to >=24 nodes, final=%d", res.FinalNodes)
	}
	if last >= first*0.7 {
		t.Errorf("iterations should speed up substantially: first5=%.1f last5=%.1f", first, last)
	}
}

// Scenario 3 dynamics: a heavy competing load lands on one cluster;
// the coordinator must evict the overloaded nodes and replace them.
func TestScenarioOverloadedCPUs(t *testing.T) {
	p := baseParams(80)
	p = adaptive(p)
	p.Events = []Injection{{
		At: 200, Kind: InjSetLoad, Cluster: "fs1", Load: 20,
		Label: "cpu load introduced",
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Periods {
		t.Logf("t=%.0f WAE=%.3f nodes=%d action=%s added=%d removed=%d detail=%s",
			pr.Time, pr.WAE, pr.Nodes, pr.Action, pr.Added, pr.Removed, pr.Detail)
	}
	t.Logf("annotations: %s", annotations(res))
	t.Logf("final=%d runtime=%.0f completed=%v", res.FinalNodes, res.Runtime, res.Completed)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if !strings.Contains(annotations(res), "removed") {
		t.Error("expected the coordinator to remove overloaded nodes")
	}
	// The overloaded nodes must eventually be replaced: final node
	// count back to a healthy level.
	if res.FinalNodes < 24 {
		t.Errorf("final nodes = %d, want recovery to >=24", res.FinalNodes)
	}
}

// Scenario 4 dynamics: one cluster's uplink is throttled to ~100 KB/s;
// the coordinator must drop the whole cluster, learn a bandwidth
// requirement, and re-expand elsewhere.
func TestScenarioThrottledUplink(t *testing.T) {
	p := baseParams(60)
	p = adaptive(p)
	p.Events = []Injection{{
		At: 1, Kind: InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3,
		Label: "one cluster is badly connected",
	}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Periods {
		t.Logf("t=%.0f WAE=%.3f nodes=%d action=%s added=%d removed=%d detail=%s",
			pr.Time, pr.WAE, pr.Nodes, pr.Action, pr.Added, pr.Removed, pr.Detail)
	}
	t.Logf("annotations: %s", annotations(res))
	t.Logf("final=%d runtime=%.0f blacklisted=%v minBW=%.0f",
		res.FinalNodes, res.Runtime, res.BlacklistedClusters, res.MinBandwidth)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	found := false
	for _, c := range res.BlacklistedClusters {
		if c == "fs2" {
			found = true
		}
	}
	if !found {
		t.Error("expected fs2 to be blacklisted")
	}
	if res.MinBandwidth <= 0 {
		t.Error("expected a learned minimum-bandwidth requirement")
	}
}

// Scenario 6 dynamics: two of three clusters crash; the adaptive run
// replaces the lost capacity and finishes.
func TestScenarioCrash(t *testing.T) {
	p := baseParams(80)
	p = adaptive(p)
	p.Events = []Injection{
		{At: 500, Kind: InjCrash, Cluster: "fs1", Label: "cluster fs1 crashed"},
		{At: 500, Kind: InjCrash, Cluster: "fs2", Label: "cluster fs2 crashed"},
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Periods {
		t.Logf("t=%.0f WAE=%.3f nodes=%d action=%s added=%d removed=%d",
			pr.Time, pr.WAE, pr.Nodes, pr.Action, pr.Added, pr.Removed)
	}
	t.Logf("final=%d runtime=%.0f completed=%v", res.FinalNodes, res.Runtime, res.Completed)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.FinalNodes < 24 {
		t.Errorf("final nodes = %d, want the crash capacity largely replaced (>=24)", res.FinalNodes)
	}
}

// Non-adaptive comparison for the crash: capacity stays lost.
func TestScenarioCrashNonAdaptive(t *testing.T) {
	p := baseParams(40)
	p.Events = []Injection{
		{At: 300, Kind: InjCrash, Cluster: "fs1"},
		{At: 300, Kind: InjCrash, Cluster: "fs2"},
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("did not complete; iters=%d runtime=%.0f", len(res.Iterations), res.Runtime)
	}
	if res.FinalNodes != 12 {
		t.Errorf("final nodes = %d, want 12 (no replacements without adaptation)", res.FinalNodes)
	}
	t.Logf("runtime=%.0f meanIterAfter=%.1f", res.Runtime,
		res.MeanIterDuration(len(res.Iterations)-5, len(res.Iterations)))
}
