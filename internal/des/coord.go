package des

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
)

// coordinatorTick is the adaptation coordinator's periodic job: gather
// the latest per-node reports, compute the weighted average efficiency,
// and — unless this is a monitor-only run — act on the decision engine's
// verdict by requesting nodes from the scheduler or signalling nodes to
// leave. This is the paper's Figure 2 loop.
func (s *Sim) coordinatorTick() {
	if s.done {
		return
	}
	defer func() {
		if !s.done {
			s.k.After(s.p.Mon.Period, s.coordinatorTick)
		}
	}()

	// Use the most recent report of every live participant; nodes whose
	// first period has not completed yet are simply missing, as in the
	// paper ("the coordinator may miss data ... this causes small
	// inaccuracies but does not influence the adaptation").
	var stats []core.NodeStats
	next := make(map[core.NodeID]core.NodeStats, len(s.order))
	for _, n := range s.order {
		rep, ok := s.reports[n.id]
		if !ok {
			continue
		}
		cur := rep.Stats()
		next[n.id] = cur
		// Smooth over two periods: per-period overhead fractions are
		// heavy-tailed (one big cross-cluster job transfer can dominate
		// a node's period), and decisions as drastic as evacuating a
		// cluster should not ride on one period's tail events. Speeds
		// are always the latest benchmark measurement.
		if prev, ok := s.prevStats[n.id]; ok {
			cur.Idle = (cur.Idle + prev.Idle) / 2
			cur.IntraComm = (cur.IntraComm + prev.IntraComm) / 2
			cur.InterComm = (cur.InterComm + prev.InterComm) / 2
			merged := make(map[core.ClusterID]core.LinkSample, len(cur.Links)+len(prev.Links))
			for peer, l := range cur.Links {
				m := merged[peer]
				m.Seconds += l.Seconds
				m.Bytes += l.Bytes
				merged[peer] = m
			}
			for peer, l := range prev.Links {
				m := merged[peer]
				m.Seconds += l.Seconds
				m.Bytes += l.Bytes
				merged[peer] = m
			}
			if len(merged) > 0 {
				cur.Links = merged
			}
		}
		stats = append(stats, cur)
	}
	s.prevStats = next
	rec := PeriodRecord{
		Time:  float64(s.k.Now()),
		WAE:   core.WeightedAverageEfficiency(stats),
		Nodes: len(s.order),
	}
	if s.eng == nil || s.MonitorOnlyRun() {
		s.res.Periods = append(s.res.Periods, rec)
		return
	}
	if len(stats) == 0 {
		// Either no node has completed a period yet (let them report)
		// or the whole computation died — in the latter case the engine
		// bootstraps by requesting a replacement node.
		if len(s.order) == 0 {
			rec.Action = "add"
			rec.Added = s.applyAdd(1)
			rec.Detail = "no live nodes; bootstrap by requesting one"
			if rec.Added > 0 {
				s.annotate("bootstrap: requested a replacement node")
			}
		}
		s.res.Periods = append(s.res.Periods, rec)
		return
	}

	d := s.eng.Decide(stats)
	rec.WAE = d.WAE
	rec.Action = d.Action.String()
	rec.Detail = d.Reason

	switch d.Action {
	case core.ActionNone:
		if s.p.Opportunistic {
			if added, removed := s.tryOpportunistic(stats); added > 0 {
				rec.Action = "opportunistic-migrate"
				rec.Added = added
				rec.Removed = removed
				s.annotate(fmt.Sprintf("opportunistic migration: +%d faster nodes, -%d slow",
					added, removed))
			}
		}
	case core.ActionAdd:
		added := s.applyAdd(d.AddCount)
		rec.Added = added
		if added > 0 {
			s.annotate(fmt.Sprintf("adding %d nodes (WAE %.2f)", added, d.WAE))
		}
	case core.ActionRemoveNodes:
		removed := s.applyRemove(d.RemoveNodes, "badness")
		rec.Removed = removed
		if removed > 0 {
			s.annotate(fmt.Sprintf("removed %d worst nodes (WAE %.2f)", removed, d.WAE))
		}
	case core.ActionRemoveCluster:
		// Learn the bandwidth requirement before the reports disappear.
		// The bound must be a LINK CAPACITY (that is what the scheduler
		// can compare against), so the NWS-style observed link rate is
		// preferred; the per-pair achieved share (which divides the
		// capacity among concurrent flows) is only the fallback.
		bw := s.observedClusterBandwidth(d.RemoveCluster)
		if bw <= 0 {
			bw = d.MeasuredBandwidth
		}
		if bw > 0 {
			s.reqs.LearnMinBandwidth(bw)
		}
		removed := s.applyRemove(d.RemoveNodes, "cluster uplink saturated")
		if removed > 0 {
			if !s.p.DisableBlacklist {
				s.reqs.BlacklistCluster(d.RemoveCluster,
					fmt.Sprintf("inter-cluster overhead %.0f%%", d.ClusterInterComm*100))
			}
			s.annotate(fmt.Sprintf("removed badly connected cluster %s (%d nodes)",
				d.RemoveCluster, removed))
		} else {
			// The offending cluster holds only the master, which cannot
			// leave; fall back to evicting the worst ordinary nodes so
			// the coordinator does not spin on the same decision.
			k := s.eng.ShrinkCount(len(stats), d.WAE)
			ranked := core.RankNodes(stats, s.eng.Config().Weights)
			var victims []core.NodeID
			for _, nb := range ranked {
				if len(victims) >= k {
					break
				}
				if nb.Cluster != d.RemoveCluster {
					victims = append(victims, nb.Node)
				}
			}
			removed = s.applyRemove(victims, "badness (cluster fallback)")
			if removed > 0 {
				s.annotate(fmt.Sprintf("removed %d worst nodes (WAE %.2f)", removed, d.WAE))
			}
		}
		rec.Removed = removed
	}
	s.res.Periods = append(s.res.Periods, rec)
}

// MonitorOnlyRun reports whether this run only measures (runtime 3).
func (s *Sim) MonitorOnlyRun() bool { return s.p.MonitorOnly }

// observedClusterBandwidth estimates the bandwidth to a cluster. The
// primary source is the grid monitoring service's view of the cluster's
// access link (the NWS-style alternative the paper names), which sees
// the achieved link rate; the per-node reports' achieved throughput is
// the fallback when the link was never exercised.
func (s *Sim) observedClusterBandwidth(c core.ClusterID) float64 {
	if up := s.net.Uplink(c); up != nil {
		if bw := up.ObservedBandwidth(); bw > 0 {
			return bw
		}
	}
	sum, n := 0.0, 0
	for _, rep := range s.reports {
		if rep.Cluster == c && rep.InterBandwidth > 0 {
			sum += rep.InterBandwidth
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// applyAdd asks the scheduler for count nodes, preferring the clusters
// the application already occupies (locality) and excluding everything
// the learned requirements veto.
func (s *Sim) applyAdd(count int) int {
	type cc struct {
		id core.ClusterID
		n  int
	}
	per := make(map[core.ClusterID]int)
	for _, n := range s.order {
		per[n.cluster]++
	}
	var prefs []cc
	for id, n := range per {
		prefs = append(prefs, cc{id, n})
	}
	sort.Slice(prefs, func(i, j int) bool {
		if prefs[i].n != prefs[j].n {
			return prefs[i].n > prefs[j].n
		}
		return prefs[i].id < prefs[j].id
	})
	prefer := make([]core.ClusterID, 0, len(prefs))
	for _, p := range prefs {
		prefer = append(prefer, p.id)
	}
	veto := func(node core.NodeID, cluster core.ClusterID) bool {
		return s.reqs.NodeBlacklisted(node, cluster)
	}
	// The learned minimum-bandwidth requirement travels to the
	// scheduler: clusters with insufficient uplinks are never handed
	// out, even ones the application has not tried yet.
	refs := s.pool.RequestBandwidth(count, prefer, veto, s.reqs.MinBandwidth())
	for _, ref := range refs {
		s.addNode(ref, false)
	}
	return len(refs)
}

// tryOpportunistic implements opportunistic migration: when clearly
// faster processors are idle in the grid, migrate to them even though
// WAE is inside the band — add replacements from the fastest site and
// evict the slow nodes they displace. The paper's scenario 5 is the
// motivating case: after the badly connected cluster left, ~3x slower
// nodes kept the WAE legal and nothing improved further without this.
func (s *Sim) tryOpportunistic(stats []core.NodeStats) (added, removed int) {
	slowest := math.Inf(1)
	for _, st := range stats {
		if st.Speed > 0 && st.Speed < slowest {
			slowest = st.Speed
		}
	}
	if math.IsInf(slowest, 1) {
		return 0, 0 // no measured speeds yet
	}
	veto := func(node core.NodeID, cluster core.ClusterID) bool {
		return s.reqs.NodeBlacklisted(node, cluster)
	}
	cluster, speed, free := s.pool.BestAvailable(veto)
	if cluster == "" || speed < slowest*s.p.OpportunisticFactor {
		return 0, 0
	}
	// The migration set: live nodes clearly slower than the candidate
	// site, slowest first; the master stays where it is.
	var slow []core.NodeStats
	for _, st := range stats {
		if st.Speed > 0 && st.Speed*s.p.OpportunisticFactor <= speed {
			if n, ok := s.nodes[st.Node]; ok && n != s.master {
				slow = append(slow, st)
			}
		}
	}
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Speed != slow[j].Speed {
			return slow[i].Speed < slow[j].Speed
		}
		return slow[i].Node < slow[j].Node
	})
	want := len(slow)
	if want > free {
		want = free
	}
	if want == 0 {
		return 0, 0
	}
	refs := s.pool.RequestBandwidth(want, []core.ClusterID{cluster}, veto, s.reqs.MinBandwidth())
	for _, ref := range refs {
		s.addNode(ref, false)
	}
	victims := make([]core.NodeID, 0, len(refs))
	for i := 0; i < len(refs) && i < len(slow); i++ {
		victims = append(victims, slow[i].Node)
	}
	removed = s.applyRemove(victims, "opportunistic migration")
	return len(refs), removed
}

// applyRemove signals the listed nodes to leave and blacklists them so
// the scheduler does not hand them straight back. The master is never
// removed: it hosts the root of the computation (and, in the real
// system, the process the user started).
func (s *Sim) applyRemove(victims []core.NodeID, reason string) int {
	removed := 0
	for _, id := range victims {
		n, ok := s.nodes[id]
		if !ok || n.gone() {
			continue
		}
		if n == s.master {
			continue
		}
		if !s.p.DisableBlacklist {
			s.reqs.BlacklistNode(id, reason)
		}
		// The leave signal travels to the node; departure is cheap
		// (Satin's malleability), so apply it after one message latency.
		lat := s.net.Latency(s.coordClst, n.cluster)
		node := n
		s.k.After(lat, func() {
			if !s.done {
				s.leave(node)
			}
		})
		removed++
	}
	return removed
}

// Stats helpers used by tests and the expt harness.

// LastReports returns a copy of the coordinator's current report view.
func (s *Sim) LastReports() map[core.NodeID]metrics.Report {
	out := make(map[core.NodeID]metrics.Report, len(s.reports))
	for k, v := range s.reports {
		out[k] = v
	}
	return out
}
