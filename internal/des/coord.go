package des

import (
	"sort"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
)

// coordinatorTick is the simulator's side of the adaptation loop: it
// re-arms the timer, hands the live set to the shared coord.Kernel
// (which owns the whole Figure-2 policy — smoothing, deciding, learning,
// acting through simActuator), and records the period.
func (s *Sim) coordinatorTick() {
	if s.done {
		return
	}
	defer func() {
		if !s.done {
			s.k.After(s.p.Mon.Period, s.coordinatorTick)
		}
	}()
	live := make([]core.NodeID, 0, len(s.order))
	for _, n := range s.order {
		live = append(live, n.id)
	}
	if s.stream != nil {
		s.kern.ObserveStream(s.takeStreamObs())
	}
	rec := s.kern.Tick(float64(s.k.Now()), live)
	s.res.Periods = append(s.res.Periods, rec)
	if s.p.Observe != nil {
		perCluster := make(map[core.ClusterID]int)
		for _, n := range s.order {
			perCluster[n.cluster]++
		}
		s.p.Observe(rec, s.kern.Requirements(), perCluster)
	}
}

// MonitorOnlyRun reports whether this run only measures (runtime 3).
func (s *Sim) MonitorOnlyRun() bool { return s.p.MonitorOnly }

// EachReport iterates the coordinator's current report view without
// copying it (flat kernel in flat mode, the per-cluster sub-kernels in
// sharded mode).
func (s *Sim) EachReport(fn func(metrics.Report) bool) {
	if s.kern != nil {
		s.kern.EachReport(fn)
		return
	}
	for _, c := range s.subOrder() {
		stop := false
		s.subs[c].kern.EachReport(func(rep metrics.Report) bool {
			stop = !fn(rep)
			return !stop
		})
		if stop {
			return
		}
	}
}

// simActuator applies the kernel's effects inside the simulation. It
// also implements coord.Migrator: the simulated Zorilla pool can rank
// idle resources by application-specific speed, which enables the
// kernel's opportunistic migration.
type simActuator struct{ s *Sim }

// Provision asks the scheduler for count nodes, preferring the clusters
// the application already occupies (locality) and excluding everything
// the veto (the learned requirements) rejects.
func (a *simActuator) Provision(count int, minBandwidth float64, veto coord.Veto) int {
	s := a.s
	type cc struct {
		id core.ClusterID
		n  int
	}
	per := make(map[core.ClusterID]int)
	for _, n := range s.order {
		per[n.cluster]++
	}
	var prefs []cc
	for id, n := range per {
		prefs = append(prefs, cc{id, n})
	}
	sort.Slice(prefs, func(i, j int) bool {
		if prefs[i].n != prefs[j].n {
			return prefs[i].n > prefs[j].n
		}
		return prefs[i].id < prefs[j].id
	})
	prefer := make([]core.ClusterID, 0, len(prefs))
	for _, p := range prefs {
		prefer = append(prefer, p.id)
	}
	// The learned minimum-bandwidth requirement travels to the
	// scheduler: clusters with insufficient uplinks are never handed
	// out, even ones the application has not tried yet.
	refs := s.pool.RequestBandwidth(count, prefer, veto, minBandwidth)
	for _, ref := range refs {
		s.addNode(ref, false)
	}
	return len(refs)
}

// ProvisionFrom is Provision restricted to one cluster (migration
// target chosen by the kernel).
func (a *simActuator) ProvisionFrom(cluster core.ClusterID, count int, minBandwidth float64, veto coord.Veto) int {
	s := a.s
	refs := s.pool.RequestBandwidth(count, []core.ClusterID{cluster}, veto, minBandwidth)
	for _, ref := range refs {
		s.addNode(ref, false)
	}
	return len(refs)
}

// BestAvailable exposes the pool's speed ranking of free resources.
func (a *simActuator) BestAvailable(veto coord.Veto) (core.ClusterID, float64, int) {
	return a.s.pool.BestAvailable(veto)
}

// Evict signals the listed nodes to leave. Departure is cheap (Satin's
// malleability), so it applies after one message latency. The master is
// skipped as a second line of defence — the kernel already protects it.
func (a *simActuator) Evict(victims []core.NodeID, reason string) []core.NodeID {
	s := a.s
	evicted := make([]core.NodeID, 0, len(victims))
	for _, id := range victims {
		n, ok := s.nodes[id]
		if !ok || n.gone() || n == s.master {
			continue
		}
		lat := s.net.Latency(s.coordClst, n.cluster)
		node := n
		s.k.After(lat, func() {
			if !s.done {
				s.leave(node)
			}
		})
		evicted = append(evicted, id)
	}
	return evicted
}

// ObservedBandwidth is the grid monitoring service's view of a
// cluster's access link (the NWS-style alternative the paper names),
// which sees the achieved link rate; 0 when the link was never
// exercised.
func (a *simActuator) ObservedBandwidth(c core.ClusterID) float64 {
	if up := a.s.net.Uplink(c); up != nil {
		return up.ObservedBandwidth()
	}
	return 0
}

func (a *simActuator) Annotate(label string) { a.s.annotate(label) }

// ClusterNodes enumerates a cluster's live participants — the root
// kernel's whole-cluster eviction asks the runtime for the roster
// because the root deliberately holds no per-node state.
func (a *simActuator) ClusterNodes(c core.ClusterID) []core.NodeID {
	var out []core.NodeID
	for _, n := range a.s.order {
		if n.cluster == c {
			out = append(out, n.id)
		}
	}
	return out
}

var (
	_ coord.Actuator     = (*simActuator)(nil)
	_ coord.Migrator     = (*simActuator)(nil)
	_ coord.RootActuator = (*simActuator)(nil)
)
