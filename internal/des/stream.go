package des

import (
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// The streaming workload class in virtual time (ISSUE 9): an open-loop
// source at the master's cluster emits items at Spec.RateHz into the
// first stage's queue; any idle node pulls the head of the deepest
// non-empty stage (drain-downstream-first keeps completed work moving
// and bounds in-pipeline inventory), pays the item's payload transfer
// when it crosses a network boundary, services the stage, and pushes
// the item into the next queue. The figure of merit is end-to-end
// latency: born at emission, stopped when the item leaves the last
// stage. Faults never stop an item's clock — a crashed node's item
// reappears at its stage's head only after CrashDetect, which is
// exactly the latency spike the StreamSLO objective must adapt away.

// streamItem is one unit of work travelling the pipeline.
type streamItem struct {
	born  vtime.Time     // emission time — the latency clock's zero
	stage int            // next stage to service
	loc   core.ClusterID // cluster holding the item's payload
}

// streamState is the run-wide pipeline state.
type streamState struct {
	spec      *workload.StreamSpec
	emitted   int
	queues    [][]*streamItem // one FIFO per stage
	inFlight  int             // items currently being serviced
	completed int
	finished  bool

	// obsBy accumulates the per-cluster observation partials of the
	// current monitoring period: arrivals at the source's cluster,
	// completions (and latency) where the last stage ran. The
	// coordinator consumes and resets them each period — the streaming
	// analogue of metrics.Accumulator.Snapshot.
	obsBy map[core.ClusterID]*core.StreamObs
}

// backlog counts every item still inside the pipeline.
func (st *streamState) backlog() int {
	n := st.inFlight
	for _, q := range st.queues {
		n += len(q)
	}
	return n
}

// startStream switches the run into the streaming phase and opens the
// source.
func (s *Sim) startStream() {
	s.stream = &streamState{
		spec:   s.p.Stream,
		queues: make([][]*streamItem, len(s.p.Stream.Stages)),
		obsBy:  make(map[core.ClusterID]*core.StreamObs),
	}
	s.phase = phaseStream
	s.emitItem()
}

// sourceCluster is where items are born: the master's site (the user's
// process feeds the pipeline), falling back to the coordinator's.
func (s *Sim) sourceCluster() core.ClusterID {
	if s.master != nil {
		return s.master.cluster
	}
	return s.coordClst
}

// emitItem is the open-loop source: one item now, the next in 1/RateHz
// seconds, regardless of how far behind the pipeline is — that refusal
// to slow down is what turns overload into latency the SLO objective
// can see.
func (s *Sim) emitItem() {
	if s.done {
		return
	}
	st := s.stream
	it := &streamItem{born: s.k.Now(), loc: s.sourceCluster()}
	st.queues[0] = append(st.queues[0], it)
	st.emitted++
	s.streamObsFor(it.loc).Arrived++
	s.wakeStreamWorkers()
	if st.emitted < st.spec.Items {
		s.k.After(1/st.spec.RateHz, func() { s.emitItem() })
	}
}

// wakeStreamWorkers offers queued items to every idle participant.
func (s *Sim) wakeStreamWorkers() {
	for _, n := range s.order {
		if n.joined && !n.gone() && !n.busy() {
			s.nodeIdle(n)
		}
	}
}

// streamDispatch is the idle node's pull: take the head of the deepest
// non-empty stage queue.
func (s *Sim) streamDispatch(n *simNode) {
	st := s.stream
	if st == nil || st.finished {
		return
	}
	for stage := len(st.queues) - 1; stage >= 0; stage-- {
		q := st.queues[stage]
		if len(q) == 0 {
			continue
		}
		it := q[0]
		st.queues[stage] = q[1:]
		it.stage = stage
		st.inFlight++
		s.streamRun(n, it)
		return
	}
}

// streamRun services one stage of one item on n: fetch the payload if
// it lives elsewhere (genuine network time, booked as intra/inter
// communication — the same signal the badness formula keys on for
// batch runs), then compute for WorkPerItem/effSpeed seconds.
func (s *Sim) streamRun(n *simNode, it *streamItem) {
	stg := s.stream.spec.Stages[it.stage]
	now := s.k.Now()
	start := now
	if stg.BytesPerItem > 0 {
		if it.loc == n.cluster {
			start = s.net.Intra(now, n.cluster, stg.BytesPerItem)
			s.addTime(n, metrics.Intra, float64(start-now))
		} else {
			start = s.net.Inter(now, it.loc, n.cluster, stg.BytesPerItem)
			wire := float64(start - now)
			s.addTime(n, metrics.Inter, wire)
			n.acc.AddInterBytes(stg.BytesPerItem)
			if wire > 0 {
				n.acc.AddLinkSample(it.loc, wire, stg.BytesPerItem)
			}
		}
	}
	dur := stg.WorkPerItem / n.effSpeed()
	n.curItem = it
	n.busyUntil = start + vtime.Time(dur)
	n.curDone = s.k.After(float64(start-now)+dur, func() {
		n.curDone = nil
		n.curItem = nil
		n.lastWorkAt = s.k.Now()
		s.addTime(n, metrics.Busy, dur)
		s.streamStageDone(n, it)
	})
}

// streamStageDone advances the item: into the next queue, or out of
// the pipeline with its latency recorded at the completing cluster.
func (s *Sim) streamStageDone(n *simNode, it *streamItem) {
	st := s.stream
	st.inFlight--
	it.stage++
	it.loc = n.cluster
	if it.stage >= len(st.spec.Stages) {
		st.completed++
		lat := float64(s.k.Now() - it.born)
		o := s.streamObsFor(n.cluster)
		o.Completed++
		o.LatencySum += lat
		s.res.StreamCompleted++
		s.res.StreamLatencySum += lat
		if lat > s.res.StreamMaxLatency {
			s.res.StreamMaxLatency = lat
		}
		if st.completed >= st.spec.Items {
			s.streamFinish()
			return
		}
	} else {
		st.queues[it.stage] = append(st.queues[it.stage], it)
	}
	s.nodeIdle(n)
}

// streamFinish ends the run: the last item left the last stage.
func (s *Sim) streamFinish() {
	s.stream.finished = true
	s.phase = phaseDone
	s.done = true
	s.res.Runtime = float64(s.k.Now())
	s.k.Stop()
}

// streamRequeue puts a displaced item (graceful leave, or crash after
// detection) back at the head of its stage's queue. The born clock is
// untouched: recomputation shows up as latency.
func (s *Sim) streamRequeue(it *streamItem) {
	st := s.stream
	if st == nil || st.finished {
		return
	}
	st.inFlight--
	st.queues[it.stage] = append([]*streamItem{it}, st.queues[it.stage]...)
	s.wakeStreamWorkers()
}

// streamObsFor returns (creating on first touch) a cluster's partial
// for the current monitoring period.
func (s *Sim) streamObsFor(c core.ClusterID) *core.StreamObs {
	o, ok := s.stream.obsBy[c]
	if !ok {
		o = &core.StreamObs{}
		s.stream.obsBy[c] = o
	}
	return o
}

// takeStreamObs drains the period's partials into one observation for
// the flat kernel, merging in sorted cluster order — the same order
// the sharded root merges summaries in, so both pipelines see
// bit-identical float sums.
func (s *Sim) takeStreamObs() core.StreamObs {
	st := s.stream
	keys := make([]core.ClusterID, 0, len(st.obsBy))
	for c := range st.obsBy {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var o core.StreamObs
	for _, c := range keys {
		o.Merge(*st.obsBy[c])
	}
	st.obsBy = make(map[core.ClusterID]*core.StreamObs)
	o.Backlog = st.backlog()
	return o
}
