//go:build race

package des

const raceEnabled = true
