package des

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// TestProbeClusterInterComm logs the per-cluster inter-communication
// fractions the coordinator sees in the bandwidth scenarios — the data
// behind the ClusterDropInterComm calibration in core.DefaultConfig.
func TestProbeClusterInterComm(t *testing.T) {
	probe := func(name string, p Params) {
		p.Mon = DefaultMonitor()
		cfg := core.DefaultConfig()
		cfg.ClusterDropInterComm = 0.999 // never fires; keep nodes in place
		p.Adapt = &cfg
		p.MonitorOnly = true
		p.Spec.Iterations = 18 // ~one monitoring period
		s, err := newProbeSim(p)
		if err != nil {
			t.Fatal(err)
		}
		s.k.Run()
		var stats []core.NodeStats
		s.EachReport(func(rep metrics.Report) bool {
			stats = append(stats, rep.Stats())
			return true
		})
		t.Logf("--- %s (WAE %.3f)", name, core.WeightedAverageEfficiency(stats))
		for _, c := range core.AggregateClusters(stats) {
			t.Logf("cluster %-5s nodes=%2d relSpeed=%.2f interComm=%.3f meanOverhead=%.3f",
				c.Cluster, len(c.Nodes), c.RelSpeed, c.InterComm, c.MeanOverhead)
		}
		for pair, sample := range core.PairBandwidths(stats, 0) {
			t.Logf("pair %s<->%s  bw=%.0f B/s (%.0f B over %.2f s)",
				pair[0], pair[1], sample.Bandwidth(), sample.Bytes, sample.Seconds)
		}
	}

	p4 := baseParams(25)
	p4.Events = []Injection{{At: 1, Kind: InjShapeUplink, Cluster: "fs2", Bandwidth: 100e3}}
	probe("scenario 4 (shaped fs2)", p4)

	p1 := baseParams(25)
	probe("scenario 1 (healthy)", p1)

	p3 := baseParams(25)
	p3.Events = []Injection{{At: 1, Kind: InjSetLoad, Cluster: "fs1", Load: 20}}
	probe("scenario 3 (loaded fs1)", p3)

	p8 := baseParams(25)
	p8.Topo.Clusters[2].UplinkBandwidth = 100e3 // a natively thin uplink
	probe("scenario 8-like (dsl uplink)", p8)

	if sc, ok := probeScenario("8"); ok {
		probe("scenario 8 exact", sc)
	}
}

// newProbeSim runs a full simulation and returns the Sim for
// inspection (the reports map survives the run).
func newProbeSim(p Params) (*Sim, error) {
	res, s, err := runReturningSim(p)
	_ = res
	return s, err
}

// probeScenario rebuilds a named expt scenario's params without
// importing expt (which would cycle); only scenario 8 is needed.
func probeScenario(id string) (Params, bool) {
	if id != "8" {
		return Params{}, false
	}
	p := baseParams(25)
	dsl := func(cid string) topoCluster {
		return topoCluster{ID: cid, Nodes: 12, Uplink: 100e3}
	}
	_ = dsl
	// Mirror expt scenario 8's topology inline.
	p.Topo.Clusters = p.Topo.Clusters[:0]
	p.Topo.Clusters = append(p.Topo.Clusters, mkCluster("fs0", 24, 60e6),
		mkCluster("fs1", 12, 60e6), mkCluster("dsl1", 12, 100e3), mkCluster("dsl2", 12, 100e3))
	p.Initial = []Alloc{{Cluster: "fs0", Count: 12}, {Cluster: "fs1", Count: 12}, {Cluster: "dsl1", Count: 12}}
	return p, true
}

func mkCluster(id string, n int, uplink float64) topo.Cluster {
	return topo.Cluster{
		ID: core.ClusterID(id), Nodes: n, Speed: 1,
		LANLatency: topo.LANLatency, LANBandwidth: topo.FastEthernetBandwidth,
		WANLatency: topo.WANLatencyOneWay, UplinkBandwidth: uplink,
	}
}

type topoCluster struct {
	ID     string
	Nodes  int
	Uplink float64
}
